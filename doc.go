// Package hfetch is a reproduction of "HFetch: Hierarchical Data
// Prefetching for Scientific Workflows in Multi-Tiered Storage
// Environments" (Devarajan, Kougkas, Sun — IPDPS 2020).
//
// HFetch is a server-push, data-centric data prefetcher for deep memory
// and storage hierarchies (DMSH). Instead of predicting what one
// application will read next (the client-pull model of classical
// prefetchers), HFetch watches system-generated file events, scores file
// segments by access frequency, recency and sequencing — Equation (1):
//
//	Score_s(t) = Σ_{i=1..k} (1/p)^{(t-t_i)/n}
//
// — and maps the resulting file heatmap onto the tiers of the hierarchy:
// hotter segments in faster tiers (RAM), colder ones lower (NVMe, burst
// buffers), with the parallel file system as the origin. The cache is
// exclusive and spans all tiers, accesses from any process or
// application contribute to the same global heatmap, and placement is
// recomputed whenever segment scores change.
//
// The package exposes an emulated-cluster deployment: tier and PFS
// hardware are performance models (latency + bandwidth + channel
// contention anchored to wall time), applications are goroutines using
// the Client/File API, and everything else — the event substrate, the
// distributed hashmap holding segment statistics, the placement engine,
// the node-to-node communicator — is the real HFetch implementation.
//
// Quickstart:
//
//	cfg := hfetch.DefaultConfig()
//	cluster, _ := hfetch.NewCluster(cfg)
//	defer cluster.Stop()
//	cluster.CreateFile("data/x", 64<<20)
//	client := cluster.Node(0).NewClient()
//	f, _ := client.Open("data/x")
//	buf := make([]byte, 1<<20)
//	f.ReadAt(buf, 0) // cold: PFS
//	cluster.Node(0).Flush()
//	f.ReadAt(buf, 0) // warm: served from a tier
//	f.Close()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-figure reproductions.
package hfetch
