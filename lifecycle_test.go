package hfetch

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"hfetch/internal/events"
	"hfetch/internal/telemetry"
)

// TestLifecycleTraceEndToEnd drives one segment through the whole
// pipeline — access event, audit, placement decision, mover queue, PFS
// fetch, landing, demand read — and asserts a single trace ID links
// every stage in the exported Perfetto JSON, with the segment counted
// exactly once as a timely prefetch.
func TestLifecycleTraceEndToEnd(t *testing.T) {
	cfg := fastConfig(1)
	cfg.EnableTelemetry = true
	cfg.EnableLifecycle = true
	cfg.LifecycleSampleEvery = 1
	cfg.TimeSampleEvery = 1
	cfg.SpanSampleEvery = 1
	cfg.AsyncMover = true
	cfg.FetchWait = 2 * time.Millisecond
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	const (
		file = "data/lifecycle"
		segs = 8
	)
	if err := cluster.CreateFile(file, segs*4096); err != nil {
		t.Fatal(err)
	}
	node := cluster.Node(0)
	lc := node.Telemetry().Lifecycle()
	if lc == nil {
		t.Fatal("EnableLifecycle did not attach a tracer")
	}

	// Open first so the auditor has an epoch, then heat the file with
	// posted access events: the engine prefetches without any demand read
	// having touched the segments.
	client := node.NewClient()
	f, err := client.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mon := node.Server().Monitor()
	for s := int64(0); s < segs; s++ {
		mon.Post(events.Event{Op: events.OpRead, File: file, Offset: s * 4096, Length: 4096})
	}
	node.Flush() // decide, queue, fetch, land — all before the read

	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}

	timely, late, _, _ := lc.EffCounts()
	if timely+late < 1 {
		t.Fatalf("no prefetch served the read (timely %d, late %d)", timely, late)
	}

	// Segment 0 must appear exactly once in the flight recorder, as
	// timely: classification happens once per generation.
	var rec telemetry.TraceRecord
	count := 0
	for _, r := range lc.Completed() {
		if r.File == file && r.Seg == 0 && r.Done {
			rec = r
			count++
		}
	}
	if count != 1 {
		t.Fatalf("segment 0 classified %d times, want exactly once", count)
	}
	if rec.Class != telemetry.ClassTimely {
		t.Fatalf("segment 0 class = %s, want timely (events: %+v)", rec.Class, rec.Events)
	}

	// Export and re-find the trace by ID: every stage must share it.
	var out bytes.Buffer
	if err := telemetry.WriteTraceJSON(&out, node.Server().Node(), lc.Export()); err != nil {
		t.Fatal(err)
	}
	if errs := telemetry.ValidateTraceJSON(out.Bytes()); len(errs) != 0 {
		t.Fatalf("exported trace fails schema validation: %v", errs)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  uint64  `json:"tid"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Tid == rec.ID && e.Ph != "M" {
			got[e.Name] = true
		}
	}
	for _, stage := range []string{
		telemetry.StageEvent,
		telemetry.StageAudit,
		telemetry.StageDecide,
		telemetry.StageMoverQueue,
		telemetry.StageFetch,
		telemetry.StageLand,
		telemetry.StageRead,
	} {
		if !got[stage] {
			t.Errorf("trace %d is missing stage %q (saw %v)", rec.ID, stage, got)
		}
	}
}

// TestLifecycleAccessCSV checks the folded access recorder end to end:
// timed reads appear in the CSV export with tier attribution.
func TestLifecycleAccessCSV(t *testing.T) {
	cfg := fastConfig(1)
	cfg.EnableTelemetry = true
	cfg.EnableLifecycle = true
	cfg.TimeSampleEvery = 1
	cluster, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if err := cluster.CreateFile("data/csv", 4*4096); err != nil {
		t.Fatal(err)
	}
	node := cluster.Node(0)
	f, err := node.NewClient().Open("data/csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	for s := int64(0); s < 4; s++ {
		if _, err := f.ReadAt(buf, s*4096); err != nil {
			t.Fatal(err)
		}
	}
	al := node.Telemetry().Lifecycle().AccessLog()
	if al.Len() == 0 {
		t.Fatal("no access samples recorded despite TimeSampleEvery=1")
	}
	var out bytes.Buffer
	if err := telemetry.WriteAccessCSV(&out, al.Samples()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(out.Bytes()), []byte("\n"))
	if len(lines) != al.Len()+1 {
		t.Fatalf("csv rows = %d, want %d samples + header", len(lines), al.Len())
	}
	if !bytes.Contains(lines[1], []byte("data/csv")) {
		t.Fatalf("sample row = %q", lines[1])
	}
}
