package hfetch

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"hfetch/internal/cluster"
	"hfetch/internal/comm"
	"hfetch/internal/core/agent"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/server"
	"hfetch/internal/devsim"
	"hfetch/internal/dhm"
	"hfetch/internal/gateway"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// TierSpec describes one tier of the deep memory and storage hierarchy.
type TierSpec struct {
	// Name identifies the tier ("ram", "nvme", "bb", ...).
	Name string
	// Capacity is the prefetching cache capacity in bytes. For shared
	// tiers this is the total across the cluster; for local tiers it is
	// per node.
	Capacity int64
	// Latency and Bandwidth model the device; Channels is its internal
	// parallelism.
	Latency   time.Duration
	Bandwidth float64 // bytes per second
	Channels  int
	// Shared marks a tier backed by one cluster-wide store (burst
	// buffers) instead of per-node stores (RAM, NVMe).
	Shared bool
}

// PFSSpec models the remote parallel file system.
type PFSSpec struct {
	Latency   time.Duration
	Bandwidth float64 // bytes per second, per server channel
	Servers   int     // number of storage servers (device channels)
}

// Config configures a Cluster.
type Config struct {
	// Nodes is the number of compute nodes (HFetch servers). Default 1.
	Nodes int
	// SegmentSize is the prefetching grain in bytes (default 1 MiB).
	SegmentSize int64
	// DecayBase is p of Equation (1), ≥ 2 (default 2).
	DecayBase float64
	// DecayUnit is one decay time step (default 1s).
	DecayUnit time.Duration
	// SeqBoost is the sequencing readahead weight (default 0.5; negative
	// disables).
	SeqBoost float64
	// HeatDir enables heatmap persistence when non-empty.
	HeatDir string
	// DaemonThreads is the hardware monitor pool size per server for the
	// legacy single-queue pipeline; ignored when EventShards > 1.
	DaemonThreads int
	// EventShards selects the monitor's event pipeline: > 1 hashes
	// events by file onto that many independent rings (one worker each,
	// preserving per-file event order); <= 1 keeps the single
	// mutex-guarded queue drained by DaemonThreads workers. Default 1
	// (legacy), so existing callers are unchanged; cmd/hfetchd defaults
	// to 8.
	EventShards int
	// WorkersPerShard is the worker count per event shard (default 1;
	// values > 1 trade per-file ordering for intra-shard parallelism).
	WorkersPerShard int
	// DropEvents selects the queue overflow policy: false (default)
	// blocks producers, true drops events when the target ring is full.
	DropEvents bool
	// EngineThreads is the placement engine worker count per server.
	EngineThreads int
	// EngineInterval is placement trigger (a) (default 1s).
	EngineInterval time.Duration
	// EngineUpdateThreshold is placement trigger (b); use
	// ReactivenessHigh/Medium/Low (default Medium = 100).
	EngineUpdateThreshold int
	// AsyncMover decouples placement decisions from move execution: the
	// engine commits its residency model and returns, while a persistent
	// per-tier mover pipeline executes the device transfers. Off by
	// default in the library (existing callers keep the synchronous
	// engine); cmd/hfetchd defaults to on.
	AsyncMover bool
	// MoverConcurrency is the async mover's per-tier worker count,
	// fastest tier first (missing entries use max(2, 8>>tier)).
	MoverConcurrency []int
	// MoverQueueDepth bounds each per-tier mover queue (default 256).
	MoverQueueDepth int
	// FetchCoalesce merges adjacent queued PFS fetches of one file into
	// a single origin read (async mover only).
	FetchCoalesce bool
	// FetchWait bounds how long a missing read waits for an in-flight
	// mover fetch of the same segment before falling back to the PFS
	// (async mover only; zero disables).
	FetchWait time.Duration
	// EnableML turns on the learned-scoring extension: an online
	// logistic model (trained from the cluster's own re-access history)
	// scales Equation (1) scores by the predicted re-access probability.
	EnableML bool
	// TimeScale multiplies all modeled device times (default 1).
	TimeScale float64
	// EnableTelemetry gives every node its own metric registry
	// (per-tier read/movement histograms, queue depth, pipeline stage
	// timings; see Node.Telemetry and Cluster.TelemetrySnapshot). Off by
	// default: the instrumentation then costs ~nothing on the read path.
	EnableTelemetry bool
	// SpanLogSize and SpanSampleEvery tune the sampled pipeline-span ring
	// each node keeps when telemetry is on (defaults 256 and 16).
	SpanLogSize     int
	SpanSampleEvery int
	// EnableLifecycle attaches the causal segment tracer and the
	// prefetch-effectiveness ledger to each node's registry (requires
	// EnableTelemetry). Every prefetch is then classified
	// timely/late/wasted/redundant, and whole-lifecycle traces are kept in
	// a fixed-memory flight recorder (export with hfetchctl trace).
	EnableLifecycle bool
	// LifecycleRing is the completed-trace flight-recorder size (default
	// telemetry.DefaultLifecycleRing).
	LifecycleRing int
	// LifecycleSampleEvery samples one event-rooted trace in every N
	// access events (default telemetry.DefaultLifecycleSampleEvery; 1
	// traces everything — tests and debugging only).
	LifecycleSampleEvery int
	// LifecycleMaxActive caps in-flight traces (default
	// telemetry.DefaultLifecycleMaxActive).
	LifecycleMaxActive int
	// TimeSampleEvery sets how often hot-path latency observations read
	// the clock: one in every N operations (default
	// telemetry.DefaultTimeSampleEvery; 1 times everything). Counters are
	// never sampled.
	TimeSampleEvery int
	// Gateway tunes the per-node HTTP range-read gateway obtained from
	// Node.GatewayHandler. The zero value uses the gateway's defaults
	// (no tenant rate limit, stream detection off — set StreamDetect to
	// let external sequential readers drive prefetching for themselves).
	Gateway GatewaySpec
	// Tiers lists the hierarchy fastest-first. Defaults to
	// DefaultTiers() when empty.
	Tiers []TierSpec
	// PFS models the origin file system.
	PFS PFSSpec
	// ClusterFabric runs the real multi-node fabric (internal/cluster)
	// over the emulated in-process network: heartbeat membership,
	// view-change hashmap rebalancing, node-aware update routing, and
	// the guarded cross-node fetch path. Off by default — the legacy
	// static wiring is kept for existing callers — and effective only
	// when Nodes > 1. Killed nodes (Cluster.KillNode) are then detected
	// by the survivors, which rebalance around them.
	ClusterFabric bool
	// ClusterHeartbeat is the fabric's heartbeat interval (default 50ms;
	// suspect and dead thresholds scale from it).
	ClusterHeartbeat time.Duration
	// ClusterTransport selects how fabric peers talk: "" or "inproc"
	// (emulated in-process network) or "tcp" (real framed-gob TCP on
	// loopback — the same transport cmd/hfetchd deploys, so benchmarks
	// and smoke tests exercise true serialization and socket costs).
	// Only meaningful with ClusterFabric.
	ClusterTransport string
}

// GatewaySpec tunes a node's HTTP range-read gateway (the serving
// surface cmd/hfetchd exposes as GET /files/{path}; see GATEWAY.md).
// Zero fields select the gateway's built-in defaults.
type GatewaySpec struct {
	// MaxInflight caps concurrently served requests (default 256).
	MaxInflight int
	// ClientInflight caps concurrent requests per client IP (default 64).
	ClientInflight int
	// TenantRPS is the per-tenant token-bucket admission rate in
	// requests per second; 0 disables tenant rate limiting.
	TenantRPS float64
	// TenantBurst is the bucket depth (default 2×TenantRPS).
	TenantBurst float64
	// AdmitWait bounds the over-rate pacing wait before a request is
	// shed with 429 + Retry-After (default 10ms).
	AdmitWait time.Duration
	// StreamDetect turns detected sequential client streams into
	// readahead hint events — the paper's sequencing signal from
	// external readers.
	StreamDetect bool
	// StreamWindow is the sequentiality byte tolerance (default: one
	// segment).
	StreamWindow int64
	// StreamLookahead is how many segments ahead a stream hints
	// (default 4).
	StreamLookahead int
}

// Reactiveness presets for Config.EngineUpdateThreshold (paper Fig 3b).
const (
	ReactivenessHigh   = placement.High
	ReactivenessMedium = placement.Medium
	ReactivenessLow    = placement.Low
)

// DefaultTiers returns the paper's three-level prefetching cache: RAM,
// node-local NVMe, and shared burst buffers, with the given capacities.
func DefaultTiers(ram, nvme, bb int64) []TierSpec {
	return []TierSpec{
		{Name: "ram", Capacity: ram, Latency: devsim.RAMProfile.Latency,
			Bandwidth: devsim.RAMProfile.BytesPerSec, Channels: devsim.RAMProfile.Channels},
		{Name: "nvme", Capacity: nvme, Latency: devsim.NVMeProfile.Latency,
			Bandwidth: devsim.NVMeProfile.BytesPerSec, Channels: devsim.NVMeProfile.Channels},
		{Name: "bb", Capacity: bb, Latency: devsim.BurstBufferProfile.Latency,
			Bandwidth: devsim.BurstBufferProfile.BytesPerSec, Channels: devsim.BurstBufferProfile.Channels, Shared: true},
	}
}

// DefaultConfig returns a single-node configuration with 64 MiB of total
// prefetching cache split 8/24/32 across RAM/NVMe/burst buffers.
func DefaultConfig() Config {
	return Config{
		Nodes:       1,
		SegmentSize: 1 << 20,
		Tiers:       DefaultTiers(8<<20, 24<<20, 32<<20),
		PFS: PFSSpec{
			Latency:   devsim.PFSProfile.Latency,
			Bandwidth: devsim.PFSProfile.BytesPerSec,
			Servers:   devsim.PFSProfile.Channels,
		},
	}
}

// Cluster is an emulated multi-node HFetch deployment sharing one PFS
// and one distributed hashmap.
type Cluster struct {
	cfg     Config
	fs      *pfs.FS
	net     *comm.InprocNetwork
	nodes   []*Node
	learner *score.Learned
}

// Node is one compute node: an HFetch server plus its tier hierarchy.
type Node struct {
	name string
	srv  *server.Server
	cn   *cluster.Node   // fabric membership; nil unless ClusterFabric
	tcp  *comm.TCPServer // peer listener; nil unless ClusterTransport "tcp"

	gwSpec GatewaySpec
	gwOnce sync.Once
	gw     *gateway.Gateway
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if len(cfg.Tiers) == 0 {
		cfg.Tiers = DefaultTiers(8<<20, 24<<20, 32<<20)
	}
	if cfg.SpanLogSize <= 0 {
		cfg.SpanLogSize = 256
	}
	if cfg.SpanSampleEvery <= 0 {
		cfg.SpanSampleEvery = 16
	}
	pfsProf := devsim.Profile{
		Name:        "pfs",
		Latency:     cfg.PFS.Latency,
		BytesPerSec: cfg.PFS.Bandwidth,
		Channels:    cfg.PFS.Servers,
	}
	fs := pfs.New(devsim.New(pfsProf, cfg.TimeScale))

	// Shared tiers are single store+device instances used by all nodes.
	shared := make(map[string]*tiers.Store)
	for _, ts := range cfg.Tiers {
		if ts.Shared {
			shared[ts.Name] = newStore(ts, cfg.TimeScale)
		}
	}

	// One in-process fabric for the distributed hashmap.
	names := make([]string, cfg.Nodes)
	for i := range names {
		names[i] = fmt.Sprintf("node%d", i)
	}
	net := comm.NewInprocNetwork(nil)
	dial := inprocDialer{net}
	fabric := cfg.ClusterFabric && cfg.Nodes > 1
	useTCP := fabric && cfg.ClusterTransport == "tcp"
	// Every node's mux exists before any node boots: the fabric needs the
	// full roster (and, over TCP, every peer's bound address) up front so
	// boot skips the discovery churn and the rebalances it would trigger.
	muxes := make([]*comm.Mux, cfg.Nodes)
	for i := range muxes {
		muxes[i] = comm.NewMux()
	}
	var static map[string]string
	var tcpSrvs []*comm.TCPServer
	if fabric {
		static = make(map[string]string, cfg.Nodes)
		if useTCP {
			tcpSrvs = make([]*comm.TCPServer, cfg.Nodes)
			for i := range muxes {
				ts, err := comm.ListenTCP("127.0.0.1:0", muxes[i])
				if err != nil {
					for _, prev := range tcpSrvs {
						if prev != nil {
							prev.Close()
						}
					}
					return nil, err
				}
				tcpSrvs[i] = ts
				static[names[i]] = ts.Addr()
			}
		} else {
			// The in-process fabric addresses peers by node name.
			for _, name := range names {
				static[name] = name
			}
		}
	}

	c := &Cluster{cfg: cfg, fs: fs, net: net}
	if cfg.EnableML {
		c.learner = score.NewLearned(0, cfg.DecayUnit)
	}
	for i := 0; i < cfg.Nodes; i++ {
		var stores []*tiers.Store
		for _, ts := range cfg.Tiers {
			if ts.Shared {
				stores = append(stores, shared[ts.Name])
			} else {
				stores = append(stores, newStore(ts, cfg.TimeScale))
			}
		}
		hier := tiers.NewHierarchy(stores...)

		var reg *telemetry.Registry
		if cfg.EnableTelemetry {
			// One registry per node: snapshot-time closures (queue depth,
			// tier occupancy) are bound to a single server each; merge
			// per-node snapshots with Cluster.TelemetrySnapshot.
			reg = telemetry.NewRegistry()
			reg.EnableSpans(cfg.SpanLogSize, cfg.SpanSampleEvery)
			if cfg.TimeSampleEvery > 0 {
				reg.SetTimeSampling(cfg.TimeSampleEvery)
			}
			if cfg.EnableLifecycle {
				reg.EnableLifecycle(cfg.LifecycleRing, cfg.LifecycleSampleEvery, cfg.LifecycleMaxActive)
			}
		}

		mux := muxes[i]
		var cn *cluster.Node
		var dl dhm.Dialer
		var nodeList []string
		if cfg.Nodes > 1 {
			dl = dial
			nodeList = names
		}
		if fabric {
			dialAddr := func(addr string) (comm.Peer, error) { return net.Dial(addr), nil }
			if useTCP {
				cstats := comm.NewStats(reg)
				dialAddr = func(addr string) (comm.Peer, error) {
					return comm.DialTCPOpts(addr, comm.PeerOptions{
						DialTimeout:    time.Second,
						RequestTimeout: 2 * time.Second,
						DialAttempts:   2,
						Stats:          cstats,
					})
				}
				tcpSrvs[i].SetStats(cstats)
			}
			cn = cluster.New(cluster.Config{
				Self:              names[i],
				Addr:              static[names[i]],
				Ops:               static[names[i]],
				Static:            static,
				HeartbeatInterval: cfg.ClusterHeartbeat,
				Mux:               mux,
				DialAddr:          dialAddr,
				Telemetry:         reg,
			})
			dl = cn.Dialer()
		}
		stats := dhm.New(dhm.Config{Name: "hfetch-stats", Self: names[i], Nodes: nodeList, Dialer: dl}, mux)
		maps := dhm.New(dhm.Config{Name: "hfetch-maps", Self: names[i], Nodes: nodeList, Dialer: dl}, mux)
		net.Join(names[i], mux)

		var sharedNames []string
		for _, ts := range cfg.Tiers {
			if ts.Shared {
				sharedNames = append(sharedNames, ts.Name)
			}
		}
		srvCfg := server.Config{
			Node:        names[i],
			SegmentSize: cfg.SegmentSize,
			Score:       score.Params{P: cfg.DecayBase, Unit: cfg.DecayUnit},
			SeqBoost:    cfg.SeqBoost,
			HeatDir:     cfg.HeatDir,
			SharedTiers: sharedNames,
			Learner:     c.learner,
		}
		srvCfg.Telemetry = reg
		srvCfg.Monitor.Daemons = cfg.DaemonThreads
		srvCfg.Monitor.Shards = cfg.EventShards
		srvCfg.Monitor.WorkersPerShard = cfg.WorkersPerShard
		srvCfg.Monitor.Drop = cfg.DropEvents
		srvCfg.Engine = placement.Config{
			Interval:         cfg.EngineInterval,
			UpdateThreshold:  cfg.EngineUpdateThreshold,
			Workers:          cfg.EngineThreads,
			Async:            cfg.AsyncMover,
			MoverConcurrency: cfg.MoverConcurrency,
			MoverQueueDepth:  cfg.MoverQueueDepth,
			FetchCoalesce:    cfg.FetchCoalesce,
		}
		srvCfg.FetchWait = cfg.FetchWait
		srv, err := server.New(srvCfg, fs, hier, stats, maps)
		if err != nil {
			return nil, err
		}
		if cn != nil {
			cn.Attach(srv, stats, maps)
		} else if cfg.Nodes > 1 {
			srv.EnableRemote(mux, dial)
		}
		srv.Start()
		if cn != nil {
			cn.Start()
		}
		node := &Node{name: names[i], srv: srv, cn: cn, gwSpec: cfg.Gateway}
		if useTCP {
			node.tcp = tcpSrvs[i]
		}
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

func newStore(ts TierSpec, scale float64) *tiers.Store {
	dev := devsim.New(devsim.Profile{
		Name: ts.Name, Latency: ts.Latency, BytesPerSec: ts.Bandwidth, Channels: ts.Channels,
	}, scale)
	return tiers.NewStore(ts.Name, ts.Capacity, dev)
}

type inprocDialer struct{ net *comm.InprocNetwork }

func (d inprocDialer) Dial(node string) comm.Peer { return d.net.Dial(node) }

// Stop shuts down every node.
func (c *Cluster) Stop() {
	for _, n := range c.nodes {
		if n.gw != nil {
			n.gw.Close()
		}
		if n.tcp != nil {
			n.tcp.Close()
		}
		if n.cn != nil {
			n.cn.Stop()
		}
		n.srv.Stop()
	}
}

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// KillNode simulates node i crashing: it is torn off the in-process
// network (peers' requests to it start failing), its fabric agent and
// server stop. With ClusterFabric on, the survivors age it to suspect,
// then dead, and rebalance the hashmaps around it; reads that mapped to
// its tiers degrade to PFS passthrough.
func (c *Cluster) KillNode(i int) {
	n := c.nodes[i]
	c.net.Leave(n.name)
	if n.tcp != nil {
		n.tcp.Close()
	}
	if n.cn != nil {
		n.cn.Stop()
	}
	n.srv.Stop()
}

// ClusterNode exposes node i's fabric agent (nil unless ClusterFabric).
func (c *Cluster) ClusterNode(i int) *cluster.Node { return c.nodes[i].cn }

// CreateFile registers a synthetic file of the given size in the PFS.
func (c *Cluster) CreateFile(name string, size int64) error {
	return c.fs.Create(name, size)
}

// FS exposes the emulated parallel file system.
func (c *Cluster) FS() *pfs.FS { return c.fs }

// MLStats reports the learned-scoring extension's training progress:
// positive and negative examples absorbed. ok is false when EnableML
// was not set.
func (c *Cluster) MLStats() (pos, neg int64, ok bool) {
	if c.learner == nil {
		return 0, 0, false
	}
	pos, neg = c.learner.Examples()
	return pos, neg, true
}

// TelemetrySnapshot merges every node's metric registry into one
// cluster-wide snapshot (counters and histograms sum; rendering it with
// WriteText gives the aggregate Prometheus view). ok is false when
// EnableTelemetry was not set.
func (c *Cluster) TelemetrySnapshot() (telemetry.Snapshot, bool) {
	var out telemetry.Snapshot
	any := false
	for _, n := range c.nodes {
		if reg := n.srv.Telemetry(); reg != nil {
			out.Merge(reg.Snapshot())
			any = true
		}
	}
	return out, any
}

// FleetTrace writes the fleet-merged Perfetto trace: every node's
// lifecycle records on its own process lane, so a segment whose
// lifecycle crossed nodes (event on one, fetch served by another) shows
// its spans side by side under one trace ID. Requires EnableLifecycle;
// with it off the export is empty but valid.
func (c *Cluster) FleetTrace(w io.Writer) error {
	lanes := make([]telemetry.NodeTraces, 0, len(c.nodes))
	for _, n := range c.nodes {
		if lc := n.srv.Telemetry().Lifecycle(); lc != nil {
			lanes = append(lanes, telemetry.NodeTraces{Node: n.name, Recs: lc.Export()})
		}
	}
	return telemetry.WriteFleetTraceJSON(w, lanes)
}

// Name returns the node's cluster name.
func (n *Node) Name() string { return n.name }

// Telemetry returns the node's metric registry (nil unless
// Config.EnableTelemetry was set).
func (n *Node) Telemetry() *telemetry.Registry { return n.srv.Telemetry() }

// Server exposes the node's HFetch server (advanced use: metrics,
// hierarchy inspection).
func (n *Node) Server() *server.Server { return n.srv }

// Flush synchronously drains pending events and runs a placement pass.
func (n *Node) Flush() { n.srv.Flush() }

// GatewayHandler returns this node's HTTP range-read gateway, building
// it on first call from Config.Gateway (mount it on any http.Server or
// httptest.Server; see GATEWAY.md for the endpoint semantics). The
// gateway is closed with the cluster.
func (n *Node) GatewayHandler() http.Handler {
	n.gwOnce.Do(func() {
		n.gw = gateway.New(n.srv, gateway.Config{
			MaxInflight:     n.gwSpec.MaxInflight,
			ClientInflight:  n.gwSpec.ClientInflight,
			TenantRPS:       n.gwSpec.TenantRPS,
			TenantBurst:     n.gwSpec.TenantBurst,
			AdmitWait:       n.gwSpec.AdmitWait,
			StreamDetect:    n.gwSpec.StreamDetect,
			StreamWindow:    n.gwSpec.StreamWindow,
			StreamLookahead: n.gwSpec.StreamLookahead,
			Telemetry:       n.srv.Telemetry(),
		})
	})
	return n.gw
}

// NewClient creates a client (application process) attached to this
// node's server. Clients sharing one application should share stats via
// NewClientWithStats.
func (n *Node) NewClient() *Client {
	return n.NewClientWithStats(nil)
}

// NewClientWithStats creates a client recording into the given stats
// collector (nil allocates a private one).
func (n *Node) NewClientWithStats(stats *metrics.IOStats) *Client {
	ag := agent.New(n.srv, n.srv.FS(), stats)
	ag.SetTelemetry(n.srv.Telemetry())
	return &Client{agent: ag}
}

// Client is an application's connection to HFetch (the agent).
type Client struct {
	agent *agent.Agent
}

// Open opens a file for reading and begins its prefetching epoch.
func (c *Client) Open(name string) (*File, error) {
	f, err := c.agent.Open(name)
	if err != nil {
		return nil, err
	}
	return &File{f}, nil
}

// Stats returns the client's I/O statistics (hits, misses, per-tier).
func (c *Client) Stats() *metrics.IOStats { return c.agent.Stats() }

// File is an open file handle; reads are transparently served from the
// hierarchy.
type File struct {
	*agent.File
}
