package hfetch_test

// One benchmark per figure of the paper's evaluation section, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// figure benchmark executes the same harness cmd/hfbench uses (quick
// scales) and reports the figure's headline metrics through
// b.ReportMetric, so `go test -bench .` regenerates the whole evaluation.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"hfetch"

	"hfetch/internal/baselines"
	"hfetch/internal/core/auditor"
	"hfetch/internal/core/ioclient"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/harness"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

func reportRows(b *testing.B, rows []harness.Row) {
	b.Helper()
	for _, r := range rows {
		// ReportMetric units must not contain whitespace.
		key := strings.ReplaceAll(r.Config+"/"+r.System, " ", "_")
		if r.Seconds > 0 {
			b.ReportMetric(r.Seconds, key+":sec")
		}
		if r.HitRatio > 0 {
			b.ReportMetric(r.HitRatio*100, key+":hit%")
		}
		for k, v := range r.Extra {
			b.ReportMetric(v, key+":"+k)
		}
	}
}

func benchFigure(b *testing.B, fn func(harness.Opts) ([]harness.Row, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := fn(harness.Opts{Quick: true, Repeats: 1})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportRows(b, rows)
		}
	}
}

// BenchmarkFig3aEventConsumption regenerates Figure 3(a): server event
// consumption rate vs client cores for daemon::engine splits.
func BenchmarkFig3aEventConsumption(b *testing.B) { benchFigure(b, harness.Fig3a) }

// BenchmarkFig3bReactiveness regenerates Figure 3(b): engine trigger
// sensitivity vs workload class.
func BenchmarkFig3bReactiveness(b *testing.B) { benchFigure(b, harness.Fig3b) }

// BenchmarkFig4aRAMFootprint regenerates Figure 4(a): hierarchical
// prefetching with an 8x smaller RAM footprint vs single-tier
// serial/parallel prefetchers.
func BenchmarkFig4aRAMFootprint(b *testing.B) { benchFigure(b, harness.Fig4a) }

// BenchmarkFig4bCacheExtension regenerates Figure 4(b): extending the
// prefetching cache across tiers under weak scaling.
func BenchmarkFig4bCacheExtension(b *testing.B) { benchFigure(b, harness.Fig4b) }

// BenchmarkFig5DataCentric regenerates Figure 5: application-centric vs
// data-centric prefetching across access patterns.
func BenchmarkFig5DataCentric(b *testing.B) { benchFigure(b, harness.Fig5) }

// BenchmarkFig6aMontage regenerates Figure 6(a): the Montage workflow,
// weak scaling.
func BenchmarkFig6aMontage(b *testing.B) { benchFigure(b, harness.Fig6a) }

// BenchmarkFig6bWRF regenerates Figure 6(b): the WRF workflow, strong
// scaling.
func BenchmarkFig6bWRF(b *testing.B) { benchFigure(b, harness.Fig6b) }

// ---- ablations ----

// BenchmarkAblationScoring sweeps the decay base p of Equation (1) and
// measures scoring throughput (updates/sec) for the incremental form.
func BenchmarkAblationScoring(b *testing.B) {
	for _, p := range []float64{2, 4, 8} {
		b.Run(fmt.Sprintf("p=%g", p), func(b *testing.B) {
			m := score.NewModel(score.Params{P: p, Unit: 100 * time.Millisecond})
			var st score.Stats
			t0 := time.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.OnAccess(&st, t0.Add(time.Duration(i)*time.Millisecond))
			}
		})
	}
}

// BenchmarkAblationPlacement compares Algorithm 1 against random and
// round-robin placement on a skewed update stream, reporting the
// fraction of the hottest decile resident in the fastest tier.
func BenchmarkAblationPlacement(b *testing.B) {
	policies := []struct {
		name string
		p    placement.Policy
	}{
		{"score", placement.PolicyScore},
		{"random", placement.PolicyRandom},
		{"roundrobin", placement.PolicyRoundRobin},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var hotInRAM float64
			for i := 0; i < b.N; i++ {
				fs := pfs.New(nil)
				fs.Create("f", 1<<30)
				segr := seg.NewSegmenter(1 << 10)
				ram := tiers.NewStore("ram", 32<<10, nil)
				nvme := tiers.NewStore("nvme", 96<<10, nil)
				hier := tiers.NewHierarchy(ram, nvme)
				stats := dhm.New(dhm.Config{Name: "s", Self: "n0"}, nil)
				maps := dhm.New(dhm.Config{Name: "m", Self: "n0"}, nil)
				aud := auditor.New(auditor.Config{Node: "n0", Segmenter: segr}, stats, maps)
				eng := placement.New(placement.Config{Policy: pol.p, Workers: 4},
					hier, ioclient.New(fs, segr), aud)
				rng := rand.New(rand.NewSource(1))
				// Zipf-ish: segment k gets score 1/(k+1); 256 segments.
				for j := 0; j < 2048; j++ {
					k := int64(rng.Intn(256))
					eng.ScoreUpdated(auditor.Update{
						ID: seg.ID{File: "f", Index: k}, Score: 1 / float64(k+1), Size: 1 << 10,
					})
				}
				eng.Flush()
				hot := 0
				for k := int64(0); k < 26; k++ { // hottest decile
					if ram.Has(seg.ID{File: "f", Index: k}) {
						hot++
					}
				}
				hotInRAM = float64(hot) / 26
				eng.Stop()
			}
			b.ReportMetric(hotInRAM*100, "hot-decile-in-ram%")
		})
	}
}

// BenchmarkAblationSegmentation compares fixed-grain and adaptive
// segmentation overhead on a mixed request stream.
func BenchmarkAblationSegmentation(b *testing.B) {
	b.Run("fixed", func(b *testing.B) {
		s := seg.NewSegmenter(64 << 10)
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(rng.Intn(1 << 24))
			s.Cover("f", off, int64(rng.Intn(256<<10)+1))
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		a := seg.NewAdaptive(4096)
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := int64(rng.Intn(1 << 24))
			a.Observe(off, int64(rng.Intn(256<<10)+1))
		}
	})
}

// ---- microbenchmarks of the hot paths ----

// BenchmarkSegmentAuditing measures the auditor's event-processing rate
// (the Figure 3a hot path).
func BenchmarkSegmentAuditing(b *testing.B) {
	stats := dhm.New(dhm.Config{Name: "s", Self: "n0"}, nil)
	maps := dhm.New(dhm.Config{Name: "m", Self: "n0"}, nil)
	aud := auditor.New(auditor.Config{Node: "n0", Segmenter: seg.NewSegmenter(1 << 20)}, stats, maps)
	aud.StartEpoch("f", 1<<30)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			aud.HandleEvent(readEvent("f", int64(rng.Intn(1<<30-4096)), 4096))
		}
	})
}

// BenchmarkDHMApply measures atomic read-modify-write throughput of the
// distributed hashmap (local owner).
func BenchmarkDHMApply(b *testing.B) {
	m := dhm.New(dhm.Config{Name: "bench", Self: "n0"}, nil)
	m.RegisterOp("inc", func(cur any, arg []byte) any {
		var c int64
		if cur != nil {
			c = cur.(int64)
		}
		return c + 1
	})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Apply(fmt.Sprintf("k%d", i%512), "inc", nil)
			i++
		}
	})
}

// BenchmarkTierReadAt measures the tier-store read path.
func BenchmarkTierReadAt(b *testing.B) {
	st := tiers.NewStore("ram", 1<<26, nil)
	id := seg.ID{File: "f", Index: 0}
	st.Put(id, make([]byte, 1<<20))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ReadAt(id, int64(i)%(1<<20-4096), buf)
	}
}

// BenchmarkEndToEndWarmRead measures a fully warm read through the
// public client API (segment resident in RAM).
func BenchmarkEndToEndWarmRead(b *testing.B) {
	cfg := hfetch.DefaultConfig()
	cfg.SegmentSize = 1 << 20
	cfg.EngineUpdateThreshold = hfetch.ReactivenessHigh
	for i := range cfg.Tiers {
		cfg.Tiers[i].Latency = 0
		cfg.Tiers[i].Bandwidth = 0
	}
	cfg.PFS = hfetch.PFSSpec{}
	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Stop()
	cluster.CreateFile("f", 8<<20)
	c := cluster.Node(0).NewClient()
	f, err := c.Open("f")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	cluster.Node(0).Flush()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.ReadAt(buf, 0)
	}
}

// BenchmarkBaselineWarmRead is the comparator for EndToEndWarmRead: the
// same warm read through the single-tier prefetcher cache.
func BenchmarkBaselineWarmRead(b *testing.B) {
	fs := pfs.New(nil)
	fs.Create("f", 8<<20)
	sys := baselines.NewPrefetcher(fs, baselines.PrefetcherConfig{
		CacheBytes: 8 << 20, SegmentSize: 1 << 20, Workers: 2,
	})
	defer sys.Stop()
	h, err := sys.Open("a", "f")
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	buf := make([]byte, 4096)
	h.ReadAt(buf, 0) // prime
	time.Sleep(10 * time.Millisecond)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ReadAt(buf, 0)
	}
}

// BenchmarkExtMultiNode runs the multi-node extension experiment:
// clients spread over 1/2/4 nodes sharing one global heatmap, with
// remote tier reads over the node-to-node communicator.
func BenchmarkExtMultiNode(b *testing.B) { benchFigure(b, harness.ExtMultiNode) }
