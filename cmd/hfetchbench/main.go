// Command hfetchbench runs the reproducible wall-clock benchmark suite:
// weak- and strong-scaling event-drain workloads against the sharded and
// legacy pipelines, an application-read pass for the hit ratio, the
// multi-node cluster fabric weak-scale (in-proc 1→8 nodes plus a
// real-TCP point), and writes the schema-versioned report to
// BENCH_<rev>.json.
//
// Usage:
//
//	hfetchbench [-short] [-out file] [-clients 320,640,...]
//	            [-min-speedup 1.0] [-min-decision-speedup 1.0]
//	            [-max-cluster-hit-drop 0.05] [-min-gateway-hit 0.2]
//	            [-max-bytes-copied 1024] [-trace-out trace.json] [-quiet]
//	hfetchbench -validate BENCH_abc1234.json
//	hfetchbench -validate-trace trace.json
//
// -min-speedup N exits non-zero when any sharded/legacy throughput
// comparison falls below N (the CI smoke job uses 1.0: sharded must not
// regress below the legacy path). -min-decision-speedup N does the same
// for the movement scenario's sync/async decision-pass p99 ratio: below
// N means the async mover no longer returns decision passes faster than
// inline execution. -max-cluster-hit-drop N fails when any multi-node
// fabric scale's aggregate hit ratio falls more than N below the
// single-node baseline (cross-node serves should keep the fabric at
// parity). -min-gateway-hit N fails when the HTTP gateway scenario's
// stream-detect-on tier hit ratio falls below N (sequential readers
// must keep landing on prefetched segments). -max-bytes-copied N fails
// when the alloc scenario's warm range-view pass copied more than N
// payload bytes per read — the zero-copy serve path must stay
// zero-copy (a fully copying path shows a whole segment per read).
// -validate checks an existing report against the schema and
// exits. -trace-out exports the read scenario's lifecycle traces as
// Chrome trace_event JSON (load in Perfetto), validated on write;
// -validate-trace checks an existing trace file and exits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"hfetch/internal/bench"
	"hfetch/internal/telemetry"
)

func main() {
	short := flag.Bool("short", false, "shrink scales for a CI smoke run")
	out := flag.String("out", "", "output path (default BENCH_<rev>.json)")
	rev := flag.String("rev", "", "revision label (default: git rev-parse --short HEAD)")
	clientsFlag := flag.String("clients", "", "comma-separated client counts (default 320,640,1280,2560; 64,128 short)")
	minSpeedup := flag.Float64("min-speedup", 0, "fail when any sharded/legacy speedup is below this (0 disables)")
	minDecision := flag.Float64("min-decision-speedup", 0, "fail when the movement scenario's sync/async decision-pass p99 ratio is below this (0 disables)")
	maxHitDrop := flag.Float64("max-cluster-hit-drop", -1, "fail when any multi-node fabric scale's aggregate hit ratio falls more than this below the single-node baseline (negative disables)")
	minGatewayHit := flag.Float64("min-gateway-hit", -1, "fail when the gateway scenario's stream-detect-on hit ratio is below this (negative disables)")
	maxBytesCopied := flag.Float64("max-bytes-copied", -1, "fail when the alloc scenario's warm range-view pass copied more than this many payload bytes per read (negative disables)")
	validate := flag.String("validate", "", "validate an existing report file and exit")
	traceOut := flag.String("trace-out", "", "export the read scenario's lifecycle traces as Perfetto-loadable JSON to this file")
	validateTrace := flag.String("validate-trace", "", "validate an existing trace JSON file and exit")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *validateTrace != "" {
		raw, err := os.ReadFile(*validateTrace)
		if err != nil {
			fatalf("%v", err)
		}
		if errs := telemetry.ValidateTraceJSON(raw); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "hfetchbench: %s: %v\n", *validateTrace, e)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: valid trace JSON\n", *validateTrace)
		return
	}

	if *validate != "" {
		raw, err := os.ReadFile(*validate)
		if err != nil {
			fatalf("%v", err)
		}
		if errs := bench.Validate(raw); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "hfetchbench: %s: %v\n", *validate, e)
			}
			os.Exit(1)
		}
		fmt.Printf("%s: valid (schema version %d)\n", *validate, bench.SchemaVersion)
		return
	}

	if *rev == "" {
		*rev = gitRev()
	}
	opts := bench.Options{Short: *short, Rev: *rev, Now: time.Now(), TracePath: *traceOut}
	if *clientsFlag != "" {
		for _, part := range strings.Split(*clientsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				fatalf("bad -clients value %q", part)
			}
			opts.Clients = append(opts.Clients, n)
		}
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	rep, err := bench.Run(opts, logf)
	if err != nil {
		fatalf("%v", err)
	}

	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	if errs := bench.Validate(raw); len(errs) != 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "hfetchbench: self-check: %v\n", e)
		}
		os.Exit(1)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", rep.Rev)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		fatalf("%v", err)
	}

	if *traceOut != "" {
		traw, err := os.ReadFile(*traceOut)
		if err != nil {
			fatalf("trace self-check: %v", err)
		}
		if errs := telemetry.ValidateTraceJSON(traw); len(errs) != 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "hfetchbench: trace self-check: %v\n", e)
			}
			os.Exit(1)
		}
		fmt.Printf("wrote %s (valid trace JSON)\n", *traceOut)
	}

	fmt.Printf("wrote %s (%d drain points, min speedup %.2fx", path, len(rep.Drain), rep.MinSpeedup())
	if rep.Reads != nil {
		fmt.Printf(", hit ratio %.3f", rep.Reads.HitRatio)
	}
	fmt.Println(")")
	for _, c := range rep.Comparisons {
		fmt.Printf("  %-6s %4d clients: sharded %10.0f ev/s  legacy %10.0f ev/s  %.2fx\n",
			c.Mode, c.Clients, c.ShardedEPS, c.LegacyEPS, c.Speedup)
	}
	if rep.Movement != nil {
		m := rep.Movement
		fmt.Printf("  movement: decide p99 sync %.0fµs vs async %.1fµs (%.1fx), hit ratio sync %.3f async %.3f\n",
			m.Sync.Decide.P99us, m.Async.Decide.P99us, m.DecisionSpeedup,
			m.Sync.HitRatio, m.Async.HitRatio)
	}
	if rep.Gateway != nil {
		g := rep.Gateway
		for _, v := range []bench.GatewayVariant{g.On, g.Off} {
			fmt.Printf("  gateway detect=%-5v: %6.0f req/s  ttfb p50 %.0fµs p99 %.0fµs  hit %.3f  timely %d\n",
				v.StreamDetect, v.ReqPerSec, v.TTFBP50us, v.TTFBP99us, v.HitRatio, v.Prefetch.Timely)
		}
		fmt.Printf("  gateway timely delta on-off %+d, shed %d (retry-after %v)\n",
			g.TimelyDelta, g.ShedRequests, g.ShedRetryAfter)
	}
	if rep.Alloc != nil {
		for _, p := range []struct {
			name string
			v    bench.AllocVariant
		}{{"reads", rep.Alloc.Reads}, {"gateway", rep.Alloc.Gateway}} {
			fmt.Printf("  alloc %-7s: %4d warm reads  %.1f B copied/read  %.1f allocs/op  slab hit %.2f  zero-copy %d B\n",
				p.name, p.v.Ops, p.v.BytesCopiedPerRead, p.v.AllocsPerOp, p.v.SlabHitRatio, p.v.ZeroCopyBytes)
		}
	}
	if rep.Cluster != nil {
		c := rep.Cluster
		scales := c.Scales
		if c.TCP != nil {
			scales = append(append([]bench.ClusterScale{}, scales...), *c.TCP)
		}
		for _, s := range scales {
			fmt.Printf("  cluster %-6s %d nodes: hit %.3f (baseline %.3f)  remote %d/%d fetch/serve  fetch p99 %.1fµs\n",
				s.Transport, s.Nodes, s.HitRatio, c.BaselineHitRatio,
				s.RemoteFetches, s.RemoteServes, s.FetchP99us)
		}
	}

	if *minSpeedup > 0 && rep.MinSpeedup() < *minSpeedup {
		fatalf("sharded pipeline regressed: min speedup %.2fx < required %.2fx",
			rep.MinSpeedup(), *minSpeedup)
	}
	if *minDecision > 0 {
		if rep.Movement == nil {
			fatalf("-min-decision-speedup set but the report has no movement scenario")
		}
		if rep.Movement.DecisionSpeedup < *minDecision {
			fatalf("async mover regressed: decision speedup %.2fx < required %.2fx",
				rep.Movement.DecisionSpeedup, *minDecision)
		}
	}
	if *maxHitDrop >= 0 {
		if rep.Cluster == nil {
			fatalf("-max-cluster-hit-drop set but the report has no cluster scenario")
		}
		min := rep.Cluster.MinMultiNodeHitRatio()
		if min < 0 {
			fatalf("-max-cluster-hit-drop set but the cluster scenario has no multi-node scales")
		}
		if drop := rep.Cluster.BaselineHitRatio - min; drop > *maxHitDrop {
			fatalf("cluster fabric regressed: aggregate hit ratio dropped %.3f below the single-node baseline (max allowed %.3f)",
				drop, *maxHitDrop)
		}
	}
	if *minGatewayHit >= 0 {
		if rep.Gateway == nil {
			fatalf("-min-gateway-hit set but the report has no gateway scenario")
		}
		if hit := rep.GatewayHitRatio(); hit < *minGatewayHit {
			fatalf("gateway regressed: stream-detect-on hit ratio %.3f < required %.3f",
				hit, *minGatewayHit)
		}
	}
	if *maxBytesCopied >= 0 {
		if rep.Alloc == nil {
			fatalf("-max-bytes-copied set but the report has no alloc scenario")
		}
		if bc := rep.ReadBytesCopiedPerRead(); bc > *maxBytesCopied {
			fatalf("zero-copy read path regressed: %.1f payload bytes copied per warm read > allowed %.1f",
				bc, *maxBytesCopied)
		}
	}
}

func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "dev"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hfetchbench: "+format+"\n", args...)
	os.Exit(1)
}
