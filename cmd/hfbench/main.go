// Command hfbench regenerates the paper's evaluation figures. Each
// figure prints one table row per bar/point of the original plot.
//
// Usage:
//
//	hfbench -fig 3a|3b|4a|4b|5|6a|6b|all [-quick] [-repeats N] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hfetch/internal/harness"
)

var figures = map[string]func(harness.Opts) ([]harness.Row, error){
	"3a":        harness.Fig3a,
	"3b":        harness.Fig3b,
	"4a":        harness.Fig4a,
	"4b":        harness.Fig4b,
	"5":         harness.Fig5,
	"6a":        harness.Fig6a,
	"6b":        harness.Fig6b,
	"abl-place": harness.AblationPlacement,
	"abl-score": harness.AblationScoring,
	"abl-seg":   harness.AblationSegmentation,
	"abl-cache": harness.AblationCachePolicy,
	"ext-nodes": harness.ExtMultiNode,
}

var figureOrder = []string{"3a", "3b", "4a", "4b", "5", "6a", "6b", "abl-place", "abl-score", "abl-seg", "abl-cache", "ext-nodes"}

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3a, 3b, 4a, 4b, 5, 6a, 6b, abl-place, abl-score, abl-seg, or all")
	quick := flag.Bool("quick", false, "shrink scales for a fast run")
	repeats := flag.Int("repeats", 0, "measured runs per point (default 3, paper uses 5)")
	csv := flag.Bool("csv", false, "emit CSV instead of the aligned table")
	flag.Parse()

	opts := harness.Opts{Repeats: *repeats, Quick: *quick}

	var names []string
	if *fig == "all" {
		names = figureOrder
	} else {
		for _, n := range strings.Split(*fig, ",") {
			if _, ok := figures[n]; !ok {
				fmt.Fprintf(os.Stderr, "hfbench: unknown figure %q (have %s)\n",
					n, strings.Join(figureOrder, ", "))
				os.Exit(2)
			}
			names = append(names, n)
		}
	}

	if *csv {
		fmt.Println("figure,config,system,seconds,variance,hit_ratio,extra")
	}
	for _, name := range names {
		if !*csv {
			fmt.Printf("== Figure %s ==\n", name)
		}
		rows, err := figures[name](opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hfbench: figure %s: %v\n", name, err)
			os.Exit(1)
		}
		for _, r := range rows {
			if *csv {
				extra := ""
				for k, v := range r.Extra {
					extra += fmt.Sprintf("%s=%g;", k, v)
				}
				fmt.Printf("%s,%s,%s,%.4f,%.6f,%.4f,%s\n",
					r.Figure, r.Config, r.System, r.Seconds, r.Variance, r.HitRatio, extra)
			} else {
				fmt.Println(r)
			}
		}
	}
}
