// Command hfdrive generates load against a running hfetchd daemon: it
// emulates N application processes reading a shared dataset with one of
// the canonical access patterns and reports end-to-end time, hit ratio,
// and a latency summary. With -trace it writes per-access samples as
// CSV for offline analysis.
//
// Usage:
//
//	hfdrive -addr host:port [-procs 8] [-pattern sequential]
//	        [-file bench/data] [-size 16777216] [-req 65536]
//	        [-passes 3] [-think 5ms] [-trace out.csv]
//	hfdrive -addr host:port -script workload.json [-trace out.csv]
//
// With -script, a serialized workload document (see
// internal/workloads.Document) is replayed instead of the synthetic
// pattern: its files are created on the daemon and every application
// process runs as one goroutine.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"hfetch/internal/core/remote"
	"hfetch/internal/telemetry"
	"hfetch/internal/workloads"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "hfetchd address")
	procs := flag.Int("procs", 8, "emulated application processes")
	pattern := flag.String("pattern", "sequential", "sequential|strided|repetitive|irregular")
	file := flag.String("file", "bench/data", "dataset file name")
	size := flag.Int64("size", 16<<20, "dataset size in bytes")
	req := flag.Int64("req", 64<<10, "request size in bytes")
	passes := flag.Int("passes", 3, "passes over the dataset per process")
	think := flag.Duration("think", 5*time.Millisecond, "compute time per request")
	traceOut := flag.String("trace", "", "write per-access CSV samples to this file")
	script := flag.String("script", "", "replay a serialized workload document instead")
	flag.Parse()

	if *script != "" {
		replayScript(*addr, *script, *traceOut)
		return
	}

	p := workloads.Pattern(*pattern)
	switch p {
	case workloads.Sequential, workloads.Strided, workloads.Repetitive, workloads.Irregular:
	default:
		log.Fatalf("hfdrive: unknown pattern %q", *pattern)
	}

	admin, err := remote.Dial(*addr)
	if err != nil {
		log.Fatalf("hfdrive: %v", err)
	}
	defer admin.Close()
	if err := admin.CreateFile(*file, *size); err != nil {
		log.Fatalf("hfdrive: create: %v", err)
	}

	rec := telemetry.NewAccessLog(1<<16, 1)
	total := *size * int64(*passes)
	fmt.Printf("driving %s: %d procs, %s pattern, %d MiB x %d passes\n",
		*addr, *procs, p, *size>>20, *passes)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := remote.Dial(*addr)
			if err != nil {
				log.Printf("proc %d: %v", w, err)
				return
			}
			defer client.Close()
			f, err := client.Open(*file)
			if err != nil {
				log.Printf("proc %d: %v", w, err)
				return
			}
			defer f.Close()
			script := workloads.PatternScript(p, *file, *size, *req, total, *think, int64(w))
			buf := make([]byte, *req)
			for _, acc := range script {
				if acc.Think > 0 {
					time.Sleep(acc.Think)
				}
				t0 := time.Now()
				n, tier, err := f.ReadAtTier(buf[:acc.Len], acc.Off)
				if err != nil {
					log.Printf("proc %d: read: %v", w, err)
					return
				}
				rec.Record(telemetry.AccessSample{
					When: t0, File: *file, Offset: acc.Off, Length: int64(n),
					Tier: tier, Latency: time.Since(t0),
				})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("elapsed: %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("trace:   %s\n", rec.Summary())
	if st, err := admin.ServerStats(); err == nil {
		fmt.Printf("server:  events=%d placements=%d promotions=%d demotions=%d evictions=%d\n",
			st.Events, st.Placements, st.Promotions, st.Demotions, st.Evictions)
	}
	writeTrace(rec, *traceOut)
}

// replayScript replays a serialized workload document against the
// daemon.
func replayScript(addr, path, traceOut string) {
	doc, err := workloads.LoadFile(path)
	if err != nil {
		log.Fatalf("hfdrive: %v", err)
	}
	admin, err := remote.Dial(addr)
	if err != nil {
		log.Fatalf("hfdrive: %v", err)
	}
	defer admin.Close()
	for name, size := range doc.Files {
		if err := admin.CreateFile(name, size); err != nil {
			log.Fatalf("hfdrive: create %s: %v", name, err)
		}
	}
	apps := doc.AppList()
	procs := 0
	for _, a := range apps {
		procs += len(a.Procs)
	}
	fmt.Printf("replaying %q: %d apps, %d procs, %d files\n",
		doc.Name, len(apps), procs, len(doc.Files))

	rec := telemetry.NewAccessLog(1<<16, 1)
	start := time.Now()
	var wg sync.WaitGroup
	for _, app := range apps {
		for _, sc := range app.Procs {
			wg.Add(1)
			go func(sc workloads.Script) {
				defer wg.Done()
				client, err := remote.Dial(addr)
				if err != nil {
					log.Print(err)
					return
				}
				defer client.Close()
				handles := map[string]*remote.File{}
				defer func() {
					for _, f := range handles {
						f.Close()
					}
				}()
				var buf []byte
				for _, acc := range sc {
					if acc.Think > 0 {
						time.Sleep(acc.Think)
					}
					f := handles[acc.File]
					if f == nil {
						f, err = client.Open(acc.File)
						if err != nil {
							log.Print(err)
							return
						}
						handles[acc.File] = f
					}
					if int64(len(buf)) < acc.Len {
						buf = make([]byte, acc.Len)
					}
					t0 := time.Now()
					n, tier, err := f.ReadAtTier(buf[:acc.Len], acc.Off)
					if err != nil {
						log.Print(err)
						return
					}
					rec.Record(telemetry.AccessSample{
						When: t0, File: acc.File, Offset: acc.Off, Length: int64(n),
						Tier: tier, Latency: time.Since(t0),
					})
				}
			}(sc)
		}
	}
	wg.Wait()
	fmt.Printf("elapsed: %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("trace:   %s\n", rec.Summary())
	writeTrace(rec, traceOut)
}

func writeTrace(rec *telemetry.AccessLog, path string) {
	if path == "" {
		return
	}
	out, err := os.Create(path)
	if err != nil {
		log.Fatalf("hfdrive: %v", err)
	}
	defer out.Close()
	if err := telemetry.WriteAccessCSV(out, rec.Samples()); err != nil {
		log.Fatalf("hfdrive: %v", err)
	}
	fmt.Printf("wrote %d samples to %s\n", rec.Len(), path)
}
