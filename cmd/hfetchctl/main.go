// Command hfetchctl inspects and exercises a running hfetchd daemon.
//
// Usage:
//
//	hfetchctl -addr host:port stats
//	hfetchctl -addr host:port tiers
//	hfetchctl -addr host:port metrics [raw]
//	hfetchctl -addr host:port spans
//	hfetchctl -addr host:port create <name> <size>
//	hfetchctl -addr host:port read <name> <off> <len>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hfetch/internal/core/remote"
	"hfetch/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "hfetchd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := remote.Dial(*addr)
	if err != nil {
		log.Fatalf("hfetchctl: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "ping":
		start := time.Now()
		if !c.Ping() {
			log.Fatalf("hfetchctl: daemon at %s did not answer", *addr)
		}
		fmt.Printf("pong from %s in %v\n", *addr, time.Since(start).Round(time.Microsecond))
	case "stats":
		st, err := c.ServerStats()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("node            %s\n", st.Node)
		fmt.Printf("events          %d (reads %d, invalidations %d)\n",
			st.Events, st.Reads, st.Invalidations)
		fmt.Printf("segments seen   %d\n", st.SegmentsSeen)
		fmt.Printf("engine runs     %d\n", st.EngineRuns)
		fmt.Printf("placements      %d (promotions %d, demotions %d, evictions %d)\n",
			st.Placements, st.Promotions, st.Demotions, st.Evictions)
		fmt.Printf("remote traffic  %d reads issued, %d served\n", st.RemoteReads, st.RemoteServes)
		fmt.Printf("server I/O      %s\n", st.IO)
	case "metrics":
		snap, err := c.Metrics()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		if len(snap.Metrics) == 0 {
			fmt.Println("no metrics (daemon runs with telemetry disabled)")
			return
		}
		if len(args) > 1 && args[1] == "raw" {
			snap.WriteText(os.Stdout)
			return
		}
		printMetrics(snap)
	case "spans":
		recs, err := c.Spans()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		if len(recs) == 0 {
			fmt.Println("no sampled spans (telemetry or span log disabled, or no traffic yet)")
			return
		}
		fmt.Printf("%-12s %-24s %8s %-8s %12s\n", "STAGE", "FILE", "SEG", "TIER", "DURATION")
		for _, r := range recs {
			seg := "-"
			if r.Seg >= 0 {
				seg = strconv.FormatInt(r.Seg, 10)
			}
			fmt.Printf("%-12s %-24s %8s %-8s %12v\n",
				r.Stage, ellipsis(r.File, 24), seg, orDash(r.Tier), time.Duration(r.Nanos).Round(time.Microsecond))
		}
	case "tiers":
		ti, err := c.Tiers()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("%-8s %12s %12s %10s\n", "TIER", "CAPACITY", "USED", "SEGMENTS")
		for _, t := range ti {
			fmt.Printf("%-8s %12d %12d %10d\n", t.Name, t.Capacity, t.Used, t.Segments)
		}
	case "create":
		if len(args) != 3 {
			usage()
		}
		size := mustInt(args[2])
		if err := c.CreateFile(args[1], size); err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("created %s (%d bytes)\n", args[1], size)
	case "read":
		if len(args) != 4 {
			usage()
		}
		f, err := c.Open(args[1])
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		defer f.Close()
		off, ln := mustInt(args[2]), mustInt(args[3])
		buf := make([]byte, ln)
		n, err := f.ReadAt(buf, off)
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("read %d bytes; client stats: %s\n", n, c.Stats())
	default:
		usage()
	}
}

// printMetrics renders a telemetry snapshot for humans: counters and
// gauges as plain values, histograms as count/mean/p50/p90/p99/max,
// with *_nanos series shown as durations.
func printMetrics(snap telemetry.Snapshot) {
	ms := append([]telemetry.MetricSnapshot(nil), snap.Metrics...)
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].Labels < ms[j].Labels
	})
	for _, m := range ms {
		name := m.Name + m.Labels
		if m.Hist != nil {
			h := m.Hist
			if h.Count == 0 {
				fmt.Printf("%-64s (no samples)\n", name)
				continue
			}
			if strings.Contains(m.Name, "_nanos") {
				fmt.Printf("%-64s count %-8d mean %-10v p50 %-10v p90 %-10v p99 %-10v max %v\n",
					name, h.Count, dur(int64(h.Mean())), dur(h.Quantile(0.5)),
					dur(h.Quantile(0.9)), dur(h.Quantile(0.99)), dur(h.Max))
			} else {
				fmt.Printf("%-64s count %-8d mean %-10.0f p50 %-10d p90 %-10d p99 %-10d max %d\n",
					name, h.Count, h.Mean(), h.Quantile(0.5),
					h.Quantile(0.9), h.Quantile(0.99), h.Max)
			}
			continue
		}
		fmt.Printf("%-64s %d\n", name, m.Value)
	}
}

func dur(nanos int64) time.Duration {
	return time.Duration(nanos).Round(time.Microsecond)
}

func ellipsis(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func mustInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		log.Fatalf("hfetchctl: bad number %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hfetchctl [-addr host:port] <command>
commands:
  ping                      liveness probe
  stats                     show server counters
  tiers                     show tier occupancy
  metrics [raw]             show telemetry (raw = Prometheus text)
  spans                     show sampled pipeline spans
  create <name> <size>      register a synthetic file
  read <name> <off> <len>   read through the prefetcher`)
	os.Exit(2)
}
