// Command hfetchctl inspects and exercises a running hfetchd daemon.
//
// Usage:
//
//	hfetchctl -addr host:port stats
//	hfetchctl -addr host:port tiers
//	hfetchctl -addr host:port create <name> <size>
//	hfetchctl -addr host:port read <name> <off> <len>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"hfetch/internal/core/remote"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "hfetchd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := remote.Dial(*addr)
	if err != nil {
		log.Fatalf("hfetchctl: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "ping":
		start := time.Now()
		if !c.Ping() {
			log.Fatalf("hfetchctl: daemon at %s did not answer", *addr)
		}
		fmt.Printf("pong from %s in %v\n", *addr, time.Since(start).Round(time.Microsecond))
	case "stats":
		st, err := c.ServerStats()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("node            %s\n", st.Node)
		fmt.Printf("events          %d (reads %d, invalidations %d)\n",
			st.Events, st.Reads, st.Invalidations)
		fmt.Printf("segments seen   %d\n", st.SegmentsSeen)
		fmt.Printf("engine runs     %d\n", st.EngineRuns)
		fmt.Printf("placements      %d (promotions %d, demotions %d, evictions %d)\n",
			st.Placements, st.Promotions, st.Demotions, st.Evictions)
		fmt.Printf("remote traffic  %d reads issued, %d served\n", st.RemoteReads, st.RemoteServes)
	case "tiers":
		ti, err := c.Tiers()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("%-8s %12s %12s %10s\n", "TIER", "CAPACITY", "USED", "SEGMENTS")
		for _, t := range ti {
			fmt.Printf("%-8s %12d %12d %10d\n", t.Name, t.Capacity, t.Used, t.Segments)
		}
	case "create":
		if len(args) != 3 {
			usage()
		}
		size := mustInt(args[2])
		if err := c.CreateFile(args[1], size); err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("created %s (%d bytes)\n", args[1], size)
	case "read":
		if len(args) != 4 {
			usage()
		}
		f, err := c.Open(args[1])
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		defer f.Close()
		off, ln := mustInt(args[2]), mustInt(args[3])
		buf := make([]byte, ln)
		n, err := f.ReadAt(buf, off)
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("read %d bytes; client stats: %s\n", n, c.Stats())
	default:
		usage()
	}
}

func mustInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		log.Fatalf("hfetchctl: bad number %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hfetchctl [-addr host:port] <command>
commands:
  ping                      liveness probe
  stats                     show server counters
  tiers                     show tier occupancy
  create <name> <size>      register a synthetic file
  read <name> <off> <len>   read through the prefetcher`)
	os.Exit(2)
}
