// Command hfetchctl inspects and exercises a running hfetchd daemon.
//
// Usage:
//
//	hfetchctl -addr host:port stats
//	hfetchctl -addr host:port tiers
//	hfetchctl -addr host:port nodes
//	hfetchctl -addr host:port metrics [raw]
//	hfetchctl -addr host:port spans
//	hfetchctl -addr host:port trace [-csv] [-o file]
//	hfetchctl -addr host:port top [-interval 2s] [-n count]
//	hfetchctl -addr host:port create <name> <size>
//	hfetchctl -addr host:port read <name> <off> <len>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hfetch/internal/core/remote"
	"hfetch/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "hfetchd address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := remote.Dial(*addr)
	if err != nil {
		log.Fatalf("hfetchctl: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "ping":
		start := time.Now()
		if !c.Ping() {
			log.Fatalf("hfetchctl: daemon at %s did not answer", *addr)
		}
		fmt.Printf("pong from %s in %v\n", *addr, time.Since(start).Round(time.Microsecond))
	case "stats":
		st, err := c.ServerStats()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("node            %s\n", st.Node)
		fmt.Printf("events          %d (reads %d, invalidations %d)\n",
			st.Events, st.Reads, st.Invalidations)
		fmt.Printf("segments seen   %d\n", st.SegmentsSeen)
		fmt.Printf("engine runs     %d\n", st.EngineRuns)
		fmt.Printf("placements      %d (promotions %d, demotions %d, evictions %d)\n",
			st.Placements, st.Promotions, st.Demotions, st.Evictions)
		fmt.Printf("remote traffic  %d reads issued, %d served\n", st.RemoteReads, st.RemoteServes)
		fmt.Printf("server I/O      %s\n", st.IO)
	case "metrics":
		fs := flag.NewFlagSet("metrics", flag.ExitOnError)
		fleet := fs.Bool("fleet", false, "merge metrics from every reachable cluster member")
		fs.Parse(args[1:]) //nolint:errcheck // ExitOnError
		raw := fs.NArg() > 0 && fs.Arg(0) == "raw"
		var snap telemetry.Snapshot
		if *fleet {
			nodes, stale, err := fleetMetrics(c)
			if err != nil {
				log.Fatalf("hfetchctl: %v", err)
			}
			snaps := make([]telemetry.Snapshot, 0, len(nodes))
			for _, fn := range nodes {
				snaps = append(snaps, fn.Snap)
			}
			snap = telemetry.MergeSnapshots(snaps...)
			fmt.Printf("# fleet: %d nodes merged", len(nodes))
			if len(stale) > 0 {
				fmt.Printf(", stale_nodes: %s", strings.Join(stale, ","))
			}
			fmt.Println()
		} else {
			var err error
			snap, err = c.Metrics()
			if err != nil {
				log.Fatalf("hfetchctl: %v", err)
			}
		}
		if len(snap.Metrics) == 0 {
			fmt.Println("no metrics (daemon runs with telemetry disabled)")
			return
		}
		if raw {
			snap.WriteText(os.Stdout)
			return
		}
		printMetrics(snap)
	case "spans":
		recs, err := c.Spans()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		if len(recs) == 0 {
			fmt.Println("no sampled spans (telemetry or span log disabled, or no traffic yet)")
			return
		}
		fmt.Printf("%-12s %-24s %8s %-8s %12s\n", "STAGE", "FILE", "SEG", "TIER", "DURATION")
		for _, r := range recs {
			seg := "-"
			if r.Seg >= 0 {
				seg = strconv.FormatInt(r.Seg, 10)
			}
			fmt.Printf("%-12s %-24s %8s %-8s %12v\n",
				r.Stage, ellipsis(r.File, 24), seg, orDash(r.Tier), time.Duration(r.Nanos).Round(time.Microsecond))
		}
	case "tiers":
		ti, err := c.Tiers()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("%-8s %12s %12s %10s\n", "TIER", "CAPACITY", "USED", "SEGMENTS")
		for _, t := range ti {
			fmt.Printf("%-8s %12d %12d %10d\n", t.Name, t.Capacity, t.Used, t.Segments)
		}
	case "nodes":
		nodes, err := c.Nodes()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("%-12s %-22s %-22s %-8s %12s %10s %12s\n",
			"NODE", "ADDR", "OPS", "STATE", "HEARTBEAT", "KEYS", "FETCH P99")
		for _, n := range nodes {
			hb := "-"
			if n.HeartbeatAgeNanos > 0 {
				hb = time.Duration(n.HeartbeatAgeNanos).Round(time.Millisecond).String()
			}
			p99 := "-"
			if n.FetchP99Nanos > 0 {
				p99 = time.Duration(n.FetchP99Nanos).Round(time.Microsecond).String()
			}
			fmt.Printf("%-12s %-22s %-22s %-8s %12s %10d %12s\n",
				n.Name, ellipsis(n.Addr, 22), ellipsis(orDash(n.Ops), 22), n.State, hb, n.Keys, p99)
		}
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		csv := fs.Bool("csv", false, "export the access-record CSV instead of trace JSON")
		fleet := fs.Bool("fleet", false, "merge lifecycle traces from every reachable member (one Perfetto lane per node)")
		out := fs.String("o", "", "write to file instead of stdout")
		fs.Parse(args[1:]) //nolint:errcheck // ExitOnError
		var data []byte
		var err error
		if *fleet {
			if *csv {
				log.Fatalf("hfetchctl: -fleet and -csv are mutually exclusive")
			}
			data, err = fleetTrace(c)
		} else {
			data, err = c.Trace(*csv)
		}
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		if *out == "" {
			os.Stdout.Write(data) //nolint:errcheck // best-effort stdout
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		kind := "trace JSON (load in Perfetto or chrome://tracing)"
		if *csv {
			kind = "access CSV"
		}
		fmt.Printf("wrote %d bytes of %s to %s\n", len(data), kind, *out)
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		interval := fs.Duration("interval", 2*time.Second, "refresh interval")
		count := fs.Int("n", 0, "number of refreshes (0 = until interrupted)")
		fleet := fs.Bool("fleet", false, "merge the view across every reachable cluster member")
		fs.Parse(args[1:]) //nolint:errcheck // ExitOnError
		if *fleet {
			runTopFleet(c, *addr, *interval, *count)
		} else {
			runTop(c, *addr, *interval, *count)
		}
	case "create":
		if len(args) != 3 {
			usage()
		}
		size := mustInt(args[2])
		if err := c.CreateFile(args[1], size); err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("created %s (%d bytes)\n", args[1], size)
	case "read":
		if len(args) != 4 {
			usage()
		}
		f, err := c.Open(args[1])
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		defer f.Close()
		off, ln := mustInt(args[2]), mustInt(args[3])
		buf := make([]byte, ln)
		n, err := f.ReadAt(buf, off)
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Printf("read %d bytes; client stats: %s\n", n, c.Stats())
	default:
		usage()
	}
}

// runTop renders a refreshing terminal status view: hit ratio, tier
// occupancy, mover queue depths, the HTTP gateway's request rate and
// QoS counters (when the daemon runs one), and the
// prefetch-effectiveness ledger.
func runTop(c *remote.Client, addr string, interval time.Duration, count int) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var prevGwReqs int64
	var prevAt time.Time
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		snap, err := c.Metrics()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		ti, err := c.Tiers()
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		fmt.Printf("hfetch top — %s — %s (refresh %v, ctrl-c to quit)\n\n",
			addr, time.Now().Format("15:04:05"), interval)

		hits := metricSum(snap, "hfetch_tier_read_hits_total")
		misses := metricSum(snap, "hfetch_read_misses_total")
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		stalls := metricSum(snap, "hfetch_read_stalls_total")
		rescues := metricSum(snap, "hfetch_read_stall_rescues_total")
		fmt.Printf("reads      hits %-10d misses %-10d hit ratio %.3f\n", hits, misses, ratio)
		fmt.Printf("stalls     %-10d rescued %-10d\n\n", stalls, rescues)

		depths := metricByLabel(snap, "hfetch_mover_queue_depth")
		fmt.Printf("%-8s %12s %12s %10s %8s %11s\n",
			"TIER", "CAPACITY", "USED", "SEGMENTS", "FILL%", "MOVER-QUEUE")
		for _, t := range ti {
			fill := 0.0
			if t.Capacity > 0 {
				fill = 100 * float64(t.Used) / float64(t.Capacity)
			}
			fmt.Printf("%-8s %12d %12d %10d %7.1f%% %11d\n",
				t.Name, t.Capacity, t.Used, t.Segments, fill,
				depths[telemetry.RenderLabels("tier", t.Name)])
		}
		fmt.Printf("mover inflight %d\n\n", metricSum(snap, "hfetch_mover_inflight"))

		// Gateway section: rendered only when the daemon serves the
		// HTTP range-read gateway (the family is registered at New).
		// Rate is the counter delta across refreshes, so the first
		// frame shows "-".
		if hasFamily(snap, "hfetch_gateway_requests_total") {
			gwReqs := metricSum(snap, "hfetch_gateway_requests_total")
			now := time.Now()
			rate := "-"
			if i > 0 && now.After(prevAt) {
				rate = fmt.Sprintf("%.0f/s", float64(gwReqs-prevGwReqs)/now.Sub(prevAt).Seconds())
			}
			prevGwReqs, prevAt = gwReqs, now
			fmt.Printf("gateway    req %-10d rate %-9s bytes %-12d inflight %d\n",
				gwReqs, rate, metricSum(snap, "hfetch_gateway_bytes_total"),
				metricSum(snap, "hfetch_gateway_inflight"))
			fmt.Printf("           shed %-8d degraded %-8d aborted %-8d streams %-6d hints %d\n",
				metricSum(snap, "hfetch_gateway_shed_total"),
				metricSum(snap, "hfetch_gateway_degraded_total"),
				metricSum(snap, "hfetch_gateway_aborted_total"),
				metricSum(snap, "hfetch_gateway_streams_detected_total"),
				metricSum(snap, "hfetch_gateway_hints_total"))
			if h := metricHist(snap, "hfetch_gateway_ttfb_nanos"); h != nil && h.Count > 0 {
				fmt.Printf("           ttfb p50 %v p99 %v max %v\n",
					dur(h.Quantile(0.5)), dur(h.Quantile(0.99)), dur(h.Max))
			}
			fmt.Println()
		}

		timely := metricSum(snap, "hfetch_prefetch_timely_total")
		late := metricSum(snap, "hfetch_prefetch_late_total")
		wasted := metricSum(snap, "hfetch_prefetch_wasted_total")
		redundant := metricSum(snap, "hfetch_prefetch_redundant_total")
		if timely+late+wasted+redundant == 0 && metricSum(snap, "hfetch_lifecycle_active") == 0 {
			fmt.Println("prefetch effectiveness: (lifecycle tracing disabled or no prefetches yet)")
		} else {
			fmt.Printf("prefetch   timely %-8d late %-8d wasted %-8d redundant %-8d\n",
				timely, late, wasted, redundant)
			fmt.Printf("           effectiveness %.1f%% (rolling)   traces active %d, completed %d, dropped %d\n",
				float64(metricSum(snap, "hfetch_prefetch_effectiveness_ppm"))/1e4,
				metricSum(snap, "hfetch_lifecycle_active"),
				metricSum(snap, "hfetch_lifecycle_completed_total"),
				metricSum(snap, "hfetch_lifecycle_dropped_total"))
			if h := metricHist(snap, "hfetch_prefetch_lead_nanos"); h != nil && h.Count > 0 {
				fmt.Printf("           lead time p50 %v p99 %v max %v\n",
					dur(h.Quantile(0.5)), dur(h.Quantile(0.99)), dur(h.Max))
			}
		}
	}
}

// fleetNode is one member's telemetry snapshot in a fleet fan-out.
type fleetNode struct {
	Name string
	Snap telemetry.Snapshot
}

// fleetDial runs fn against every member of the primary daemon's
// membership view, fanning out over the gossiped ops addresses. Members
// that are dead, have no ops address, or fail the dial/request land in
// stale — a partial fleet view with the gaps named beats no view.
func fleetDial(c *remote.Client, fn func(name string, fc *remote.Client) error) (stale []string, err error) {
	nodes, err := c.Nodes()
	if err != nil {
		return nil, fmt.Errorf("membership query: %w", err)
	}
	for _, n := range nodes {
		if n.State == "dead" || n.Ops == "" {
			stale = append(stale, n.Name)
			continue
		}
		fc, derr := remote.Dial(n.Ops)
		if derr != nil {
			stale = append(stale, n.Name)
			continue
		}
		ferr := fn(n.Name, fc)
		fc.Close() //nolint:errcheck // read-only connection
		if ferr != nil {
			stale = append(stale, n.Name)
		}
	}
	sort.Strings(stale)
	return stale, nil
}

// fleetMetrics fans the metrics query out across the membership.
func fleetMetrics(c *remote.Client) (nodes []fleetNode, stale []string, err error) {
	stale, err = fleetDial(c, func(name string, fc *remote.Client) error {
		snap, merr := fc.Metrics()
		if merr != nil {
			return merr
		}
		nodes = append(nodes, fleetNode{Name: name, Snap: snap})
		return nil
	})
	return nodes, stale, err
}

// fleetTrace assembles the fleet-merged Perfetto export: every
// reachable member's raw lifecycle records on its own process lane.
func fleetTrace(c *remote.Client) ([]byte, error) {
	var lanes []telemetry.NodeTraces
	stale, err := fleetDial(c, func(name string, fc *remote.Client) error {
		node, recs, terr := fc.TraceRecords()
		if terr != nil {
			return terr
		}
		if node == "" {
			node = name
		}
		lanes = append(lanes, telemetry.NodeTraces{Node: node, Recs: recs})
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(stale) > 0 {
		fmt.Fprintf(os.Stderr, "hfetchctl: stale_nodes: %s\n", strings.Join(stale, ","))
	}
	var buf strings.Builder
	if err := telemetry.WriteFleetTraceJSON(&buf, lanes); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}

// runTopFleet renders the refreshing fleet view: cluster-merged hit
// ratio and prefetch effectiveness, then one breakdown row per member.
// Unreachable members are listed as stale instead of aborting the view.
func runTopFleet(c *remote.Client, addr string, interval time.Duration, count int) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for i := 0; count == 0 || i < count; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		nodes, stale, err := fleetMetrics(c)
		if err != nil {
			log.Fatalf("hfetchctl: %v", err)
		}
		snaps := make([]telemetry.Snapshot, 0, len(nodes))
		for _, fn := range nodes {
			snaps = append(snaps, fn.Snap)
		}
		merged := telemetry.MergeSnapshots(snaps...)

		fmt.Print("\x1b[2J\x1b[H")
		fmt.Printf("hfetch top — fleet via %s — %s (refresh %v, ctrl-c to quit)\n\n",
			addr, time.Now().Format("15:04:05"), interval)

		hits := metricSum(merged, "hfetch_tier_read_hits_total")
		misses := metricSum(merged, "hfetch_read_misses_total")
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("fleet      nodes %-4d hits %-10d misses %-10d hit ratio %.3f\n",
			len(nodes), hits, misses, ratio)
		timely := metricSum(merged, "hfetch_prefetch_timely_total")
		late := metricSum(merged, "hfetch_prefetch_late_total")
		wasted := metricSum(merged, "hfetch_prefetch_wasted_total")
		redundant := metricSum(merged, "hfetch_prefetch_redundant_total")
		if total := timely + late + wasted + redundant; total > 0 {
			fmt.Printf("prefetch   timely %-8d late %-8d wasted %-8d redundant %-8d effectiveness %.1f%%\n",
				timely, late, wasted, redundant, 100*float64(timely)/float64(total))
		}
		fmt.Printf("routing    shipped %-8d received %-8d peer fetches %d   watchdog trips %d\n\n",
			metricSum(merged, "hfetch_cluster_updates_routed_total"),
			metricSum(merged, "hfetch_cluster_updates_received_total"),
			metricSum(merged, "hfetch_remote_reads_total"),
			metricSum(merged, "hfetch_watchdog_trips_total"))

		fmt.Printf("%-12s %10s %10s %8s %8s %8s %9s %10s\n",
			"NODE", "HITS", "MISSES", "RATIO", "TIMELY", "LATE", "EFFECT%", "GW-REQS")
		for _, fn := range nodes {
			nh := metricSum(fn.Snap, "hfetch_tier_read_hits_total")
			nm := metricSum(fn.Snap, "hfetch_read_misses_total")
			nr := 0.0
			if nh+nm > 0 {
				nr = float64(nh) / float64(nh+nm)
			}
			nt := metricSum(fn.Snap, "hfetch_prefetch_timely_total")
			nl := metricSum(fn.Snap, "hfetch_prefetch_late_total")
			eff := float64(metricSum(fn.Snap, "hfetch_prefetch_effectiveness_ppm")) / 1e4
			fmt.Printf("%-12s %10d %10d %8.3f %8d %8d %8.1f%% %10d\n",
				fn.Name, nh, nm, nr, nt, nl, eff,
				metricSum(fn.Snap, "hfetch_gateway_requests_total"))
		}
		if len(stale) > 0 {
			fmt.Printf("\nstale_nodes: %s (dead, no ops address, or unreachable)\n",
				strings.Join(stale, ","))
		}
	}
}

// metricSum sums all series of one metric family across labels.
func metricSum(snap telemetry.Snapshot, name string) int64 {
	var v int64
	for _, m := range snap.Metrics {
		if m.Name == name && m.Hist == nil {
			v += m.Value
		}
	}
	return v
}

// hasFamily reports whether any series of the family exists in the
// snapshot (distinguishing "subsystem absent" from "counted zero").
func hasFamily(snap telemetry.Snapshot, name string) bool {
	for _, m := range snap.Metrics {
		if m.Name == name {
			return true
		}
	}
	return false
}

// metricByLabel maps a family's rendered label string to its value.
func metricByLabel(snap telemetry.Snapshot, name string) map[string]int64 {
	out := make(map[string]int64)
	for _, m := range snap.Metrics {
		if m.Name == name && m.Hist == nil {
			out[m.Labels] += m.Value
		}
	}
	return out
}

// metricHist returns the merged histogram of one family (nil when absent).
func metricHist(snap telemetry.Snapshot, name string) *telemetry.HistSnapshot {
	var out *telemetry.HistSnapshot
	for _, m := range snap.Metrics {
		if m.Name == name && m.Hist != nil {
			if out == nil {
				h := *m.Hist
				out = &h
			} else {
				out.Merge(*m.Hist)
			}
		}
	}
	return out
}

// printMetrics renders a telemetry snapshot for humans: counters and
// gauges as plain values, histograms as count/mean/p50/p90/p99/max,
// with *_nanos series shown as durations.
func printMetrics(snap telemetry.Snapshot) {
	ms := append([]telemetry.MetricSnapshot(nil), snap.Metrics...)
	sort.SliceStable(ms, func(i, j int) bool {
		if ms[i].Name != ms[j].Name {
			return ms[i].Name < ms[j].Name
		}
		return ms[i].Labels < ms[j].Labels
	})
	for _, m := range ms {
		name := m.Name + m.Labels
		if m.Hist != nil {
			h := m.Hist
			if h.Count == 0 {
				fmt.Printf("%-64s (no samples)\n", name)
				continue
			}
			if strings.Contains(m.Name, "_nanos") {
				fmt.Printf("%-64s count %-8d mean %-10v p50 %-10v p90 %-10v p99 %-10v max %v\n",
					name, h.Count, dur(int64(h.Mean())), dur(h.Quantile(0.5)),
					dur(h.Quantile(0.9)), dur(h.Quantile(0.99)), dur(h.Max))
			} else {
				fmt.Printf("%-64s count %-8d mean %-10.0f p50 %-10d p90 %-10d p99 %-10d max %d\n",
					name, h.Count, h.Mean(), h.Quantile(0.5),
					h.Quantile(0.9), h.Quantile(0.99), h.Max)
			}
			continue
		}
		fmt.Printf("%-64s %d\n", name, m.Value)
	}
}

func dur(nanos int64) time.Duration {
	return time.Duration(nanos).Round(time.Microsecond)
}

func ellipsis(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return "…" + s[len(s)-n+1:]
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func mustInt(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		log.Fatalf("hfetchctl: bad number %q", s)
	}
	return v
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: hfetchctl [-addr host:port] <command>
commands:
  ping                      liveness probe
  stats                     show server counters
  tiers                     show tier occupancy
  nodes                     show cluster membership (state, heartbeat age, keys, fetch p99)
  metrics [-fleet] [raw]    show telemetry (raw = Prometheus text; -fleet merges all members)
  spans                     show sampled pipeline spans
  trace [-csv|-fleet] [-o file]  export lifecycle traces (Perfetto JSON; -fleet = one lane per node)
  top [-interval d] [-n k] [-fleet]  live status view (hit ratio, tiers, mover, gateway, effectiveness)
  create <name> <size>      register a synthetic file
  read <name> <off> <len>   read through the prefetcher`)
	os.Exit(2)
}
