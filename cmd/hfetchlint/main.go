// Command hfetchlint runs the repo's custom static analyzers — the
// mechanical form of ARCHITECTURE.md's concurrency and hot-path rules.
//
// Usage:
//
//	go run ./cmd/hfetchlint [-analyzers lockorder,hotpath] [-list] [-json] [packages]
//
// With no packages it analyzes ./... . Exit status is 1 when any
// finding survives //lint:allow filtering, 2 on usage or load errors.
// -json emits one object per finding on stdout instead of the
// file:line:col text form. See STATIC_ANALYSIS.md for each analyzer's
// rule and the annotation grammar.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hfetch/internal/analysis/atomicmix"
	"hfetch/internal/analysis/bufown"
	"hfetch/internal/analysis/driftcheck"
	"hfetch/internal/analysis/framework"
	"hfetch/internal/analysis/goleak"
	"hfetch/internal/analysis/hotpath"
	"hfetch/internal/analysis/lockorder"
	"hfetch/internal/analysis/nilsafe"
	"hfetch/internal/analysis/pairing"
)

var suite = []*framework.Analyzer{
	lockorder.Analyzer,
	hotpath.Analyzer,
	nilsafe.Analyzer,
	atomicmix.Analyzer,
	pairing.Analyzer,
	bufown.Analyzer,
	goleak.Analyzer,
	driftcheck.Analyzer,
}

// finding is the -json output shape, one object per diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	var (
		list    = flag.Bool("list", false, "list analyzers and exit")
		names   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		strict  = flag.Bool("strict-types", false, "fail on typechecking errors instead of warning")
		jsonOut = flag.Bool("json", false, "emit findings as JSON objects, one per line")
	)
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite
	if *names != "" {
		byName := make(map[string]*framework.Analyzer)
		for _, a := range suite {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			a, ok := byName[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "hfetchlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := framework.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hfetchlint: %v\n", err)
		os.Exit(2)
	}
	typeErrs := 0
	for _, p := range pkgs {
		for _, te := range p.TypeErrors {
			fmt.Fprintf(os.Stderr, "hfetchlint: type error in %s: %v\n", p.PkgPath, te)
			typeErrs++
		}
	}
	if typeErrs > 0 && *strict {
		os.Exit(2)
	}

	diags, err := framework.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hfetchlint: %v\n", err)
		os.Exit(2)
	}
	if len(diags) == 0 {
		return
	}
	fset := pkgs[0].Fset
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if err := enc.Encode(finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Column:   pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintf(os.Stderr, "hfetchlint: %v\n", err)
				os.Exit(2)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
	os.Exit(1)
}
