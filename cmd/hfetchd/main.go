// Command hfetchd runs a standalone HFetch server node: it builds the
// configured tier hierarchy over the emulated PFS, starts the hardware
// monitor and the hierarchical data placement engine, and serves the
// agent protocol (open/read/write/close + admin/ctl) over TCP.
//
// Usage:
//
//	hfetchd [-config hfetch.json] [-listen addr] [-write-default path]
//
// Agents connect with internal/core/remote.Dial (see examples/remote in
// the README) or via cmd/hfetchctl for inspection.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/config"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/remote"
	"hfetch/internal/core/score"
	"hfetch/internal/core/server"
	"hfetch/internal/devsim"
	"hfetch/internal/dhm"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

func main() {
	cfgPath := flag.String("config", "", "path to the JSON configuration (defaults built in)")
	listen := flag.String("listen", "", "override the listen address")
	writeDefault := flag.String("write-default", "", "write the default configuration to this path and exit")
	flag.Parse()

	if *writeDefault != "" {
		if err := config.Default().Save(*writeDefault); err != nil {
			log.Fatalf("hfetchd: %v", err)
		}
		fmt.Printf("wrote default configuration to %s\n", *writeDefault)
		return
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			log.Fatalf("hfetchd: %v", err)
		}
	}
	if *listen != "" {
		cfg.Listen = *listen
	}

	srv, fs, err := build(cfg)
	if err != nil {
		log.Fatalf("hfetchd: %v", err)
	}
	srv.Start()
	defer srv.Stop()

	mux := comm.NewMux()
	mux.RegisterPing()
	remote.Serve(mux, srv)
	remote.ServeAdmin(mux, fs)
	ts, err := comm.ListenTCP(cfg.Listen, mux)
	if err != nil {
		log.Fatalf("hfetchd: %v", err)
	}
	defer ts.Close()
	log.Printf("hfetchd: node %s serving on %s (%d tiers, segment %d bytes)",
		cfg.Node, ts.Addr(), len(cfg.Tiers), cfg.SegmentSize)

	if cfg.HTTPListen != "" {
		go func() {
			log.Printf("hfetchd: status API on http://%s", cfg.HTTPListen)
			if err := http.ListenAndServe(cfg.HTTPListen, remote.NewHTTPHandler(srv)); err != nil {
				log.Printf("hfetchd: status API: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("hfetchd: shutting down")
}

// build assembles the server from the configuration.
func build(cfg config.Config) (*server.Server, *pfs.FS, error) {
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	fs := pfs.New(devsim.New(devsim.Profile{
		Name:        "pfs",
		Latency:     time.Duration(cfg.PFS.LatencyUS * float64(time.Microsecond)),
		BytesPerSec: cfg.PFS.BandwidthMBps * 1e6,
		Channels:    cfg.PFS.Servers,
	}, scale))
	for _, f := range cfg.Files {
		if err := fs.Create(f.Name, f.Size); err != nil {
			return nil, nil, err
		}
	}
	var stores []*tiers.Store
	var shared []string
	for _, t := range cfg.Tiers {
		dev := devsim.New(devsim.Profile{
			Name:        t.Name,
			Latency:     time.Duration(t.LatencyUS * float64(time.Microsecond)),
			BytesPerSec: t.BandwidthMBps * 1e6,
			Channels:    t.Channels,
		}, scale)
		stores = append(stores, tiers.NewStore(t.Name, t.CapacityBytes, dev))
		if t.Shared {
			shared = append(shared, t.Name)
		}
	}
	var stats, maps *dhm.Map
	if cfg.WALPath != "" {
		var err error
		stats, maps, _, err = server.NewPersistentMaps(cfg.Node, cfg.WALPath)
		if err != nil {
			return nil, nil, err
		}
	} else {
		stats, maps = server.NewLocalMaps(cfg.Node)
	}
	scfg := server.Config{
		Node:        cfg.Node,
		SegmentSize: cfg.SegmentSize,
		Score:       score.Params{P: cfg.DecayBase, Unit: cfg.DecayUnit()},
		SeqBoost:    cfg.SeqBoost,
		HeatDir:     cfg.HeatDir,
		SharedTiers: shared,
	}
	scfg.Monitor.Daemons = cfg.Daemons
	scfg.Engine = placement.Config{
		Interval:        cfg.EngineInterval(),
		UpdateThreshold: cfg.EngineUpdateThreshold,
		Workers:         cfg.EngineWorkers,
	}
	srv, err := server.New(scfg, fs, tiers.NewHierarchy(stores...), stats, maps)
	if err != nil {
		return nil, nil, err
	}
	return srv, fs, nil
}
