// Command hfetchd runs a standalone HFetch server node: it builds the
// configured tier hierarchy over the emulated PFS, starts the hardware
// monitor and the hierarchical data placement engine, and serves the
// agent protocol (open/read/write/close + admin/ctl) over TCP. When
// http_listen is configured it also serves the observability API:
// /metrics (Prometheus text), /healthz, /stats, /tiers, /spans,
// /debug/trace (Perfetto-loadable lifecycle traces), and /debug/pprof.
//
// Usage:
//
//	hfetchd [-config hfetch.json] [-listen addr] [-write-default path]
//	        [-log-level info] [-log-format text|json]
//
// Agents connect with internal/core/remote.Dial (see examples/remote in
// the README) or via cmd/hfetchctl for inspection (see hfetchctl top and
// hfetchctl trace).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hfetch/internal/cluster"
	"hfetch/internal/comm"
	"hfetch/internal/config"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/remote"
	"hfetch/internal/core/score"
	"hfetch/internal/core/server"
	"hfetch/internal/devsim"
	"hfetch/internal/dhm"
	"hfetch/internal/gateway"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

func main() {
	cfgPath := flag.String("config", "", "path to the JSON configuration (defaults built in)")
	listen := flag.String("listen", "", "override the listen address")
	httpListen := flag.String("http-listen", "", "override the HTTP listen address (range-read gateway + observability API)")
	node := flag.String("node", "", "override the node name")
	peerListen := flag.String("peer-listen", "", "peer-facing listen address; non-empty joins/forms a cluster")
	seeds := flag.String("seeds", "", "comma-separated peer_listen addresses of existing cluster members")
	writeDefault := flag.String("write-default", "", "write the default configuration to this path and exit")
	asyncMover := flag.Bool("async-mover", true, "decouple placement decisions from move execution (async mover pipeline)")
	moverQueueDepth := flag.Int("mover-queue-depth", 0, "override the per-tier mover queue bound (0 = config/default 256)")
	fetchCoalesce := flag.Bool("fetch-coalesce", true, "merge adjacent queued PFS fetches into one origin read")
	fetchWaitMS := flag.Float64("fetch-wait-ms", -1, "bounded read wait for an in-flight fetch in ms (-1 = config/default 2)")
	streamDetect := flag.Bool("stream-detect", true, "detect sequential gateway streams and post readahead hints")
	tenantRPS := flag.Float64("tenant-rps", 0, "per-tenant gateway admission rate in req/s (0 = unlimited)")
	disableWatchdog := flag.Bool("disable-watchdog", false, "turn off the stall watchdog")
	watchdogStallMS := flag.Int("watchdog-stall-ms", 0, "stall window before the watchdog trips in ms (0 = config/default 5000)")
	watchdogDir := flag.String("watchdog-dir", "", "directory for watchdog diagnostic bundles (default working directory)")
	logLevel := flag.String("log-level", "", "minimum log level: debug, info, warn, error (default config/info)")
	logFormat := flag.String("log-format", "", "log encoding: text or json (default config/text)")
	flag.Parse()

	// Bootstrap logger for errors before the config is loaded; replaced
	// by the configured one below.
	logger := newLogger("info", "text")

	if *writeDefault != "" {
		if err := config.Default().Save(*writeDefault); err != nil {
			fail(logger, "write default config", err)
		}
		fmt.Printf("wrote default configuration to %s\n", *writeDefault)
		return
	}

	cfg := config.Default()
	if *cfgPath != "" {
		var err error
		cfg, err = config.Load(*cfgPath)
		if err != nil {
			fail(logger, "load config", err)
		}
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *httpListen != "" {
		cfg.HTTPListen = *httpListen
	}
	if *node != "" {
		cfg.Node = *node
	}
	if *peerListen != "" {
		cfg.PeerListen = *peerListen
	}
	if *seeds != "" {
		cfg.Seeds = nil
		for _, s := range strings.Split(*seeds, ",") {
			if s = strings.TrimSpace(s); s != "" {
				cfg.Seeds = append(cfg.Seeds, s)
			}
		}
	}
	// Flags override the file only when set on the command line, so a
	// config file's async_mover / fetch_coalesce choices survive bare
	// invocations.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "async-mover":
			cfg.AsyncMover = *asyncMover
		case "mover-queue-depth":
			cfg.MoverQueueDepth = *moverQueueDepth
		case "fetch-coalesce":
			cfg.FetchCoalesce = *fetchCoalesce
		case "fetch-wait-ms":
			cfg.FetchWaitMS = *fetchWaitMS
		case "stream-detect":
			cfg.StreamDetect = *streamDetect
		case "tenant-rps":
			cfg.TenantRPS = *tenantRPS
		case "disable-watchdog":
			cfg.DisableWatchdog = *disableWatchdog
		case "watchdog-stall-ms":
			cfg.WatchdogStallMS = *watchdogStallMS
		case "watchdog-dir":
			cfg.WatchdogDir = *watchdogDir
		case "log-level":
			cfg.LogLevel = *logLevel
		case "log-format":
			cfg.LogFormat = *logFormat
		}
	})
	if err := cfg.Validate(); err != nil {
		fail(logger, "validate config", err)
	}
	logger = newLogger(cfg.LogLevel, cfg.LogFormat)
	slog.SetDefault(logger)

	d, err := build(cfg)
	if err != nil {
		fail(logger, "build server", err)
	}
	d.srv.Start()
	defer d.srv.Stop()

	if d.cnode != nil {
		peerSrv, err := comm.ListenTCP(cfg.PeerListen, d.peerMux)
		if err != nil {
			fail(logger, "peer listen", err)
		}
		peerSrv.SetStats(d.cnode.CommStats())
		defer peerSrv.Close()
		d.cnode.Start()
		defer d.cnode.Stop()
		logger.Info("joined cluster fabric",
			"component", "cluster",
			"node", cfg.Node,
			"peer_addr", peerSrv.Addr(),
			"seeds", len(cfg.Seeds))
	}

	mux := comm.NewMux()
	mux.RegisterPing()
	remote.Serve(mux, d.srv)
	remote.ServeAdmin(mux, d.fs)
	remote.ServeNodes(mux, d.nodeInfos)
	ts, err := comm.ListenTCP(cfg.Listen, mux)
	if err != nil {
		fail(logger, "listen", err)
	}
	defer ts.Close()
	logger.Info("serving agent protocol",
		"component", "daemon",
		"node", cfg.Node,
		"addr", ts.Addr(),
		"tiers", len(cfg.Tiers),
		"segment_bytes", cfg.SegmentSize,
		"async_mover", cfg.AsyncMover,
		"clustered", d.cnode != nil)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Stall watchdog: probes every pipeline that can wedge (event shards,
	// mover, membership, and the gateway below), dumps a diagnostic
	// bundle when one stops progressing with work pending.
	var wd *telemetry.Watchdog
	if reg := d.srv.Telemetry(); reg != nil && !cfg.DisableWatchdog {
		wd = telemetry.NewWatchdog(telemetry.WatchdogConfig{
			Stall:      cfg.WatchdogStall(),
			Dir:        cfg.WatchdogDir,
			MaxBundles: cfg.WatchdogMaxBundles,
			Registry:   reg,
		})
	}
	if wd != nil {
		mon := d.srv.Monitor()
		wd.AddProbe(telemetry.WatchdogProbe{
			Name:     "monitor",
			Pending:  func() int64 { return int64(mon.Backlog()) },
			Progress: mon.Consumed,
		})
		eng := d.srv.Engine()
		wd.AddProbe(telemetry.WatchdogProbe{
			Name:    "mover",
			Pending: func() int64 { return int64(eng.MoverStats().Outstanding) },
			Progress: func() int64 {
				ms := eng.MoverStats()
				return ms.Executed + ms.Failed + ms.Cancelled + ms.Superseded
			},
		})
		wd.AddDump("mover", func() string {
			ms := eng.MoverStats()
			return fmt.Sprintf("submitted=%d executed=%d failed=%d coalesced=%d superseded=%d cancelled=%d retried=%d outstanding=%d queue_depths=%v",
				ms.Submitted, ms.Executed, ms.Failed, ms.Coalesced, ms.Superseded, ms.Cancelled, ms.Retried, ms.Outstanding, ms.QueueDepths)
		})
		if d.cnode != nil {
			mem := d.cnode.Membership()
			wd.AddProbe(telemetry.WatchdogProbe{
				Name:     "membership",
				Pending:  mem.SuspectCount,
				Progress: mem.HeartbeatsSent,
			})
		}
	}

	var httpSrv *http.Server
	var gw *gateway.Gateway
	httpErr := make(chan error, 1)
	if cfg.HTTPListen != "" {
		gcfg := gatewayConfig(cfg, d.srv)
		if cfg.SlogLevel() <= slog.LevelDebug {
			gcfg.Logger = logger
		}
		gw = gateway.New(d.srv, gcfg)
		if wd != nil {
			wd.AddProbe(telemetry.WatchdogProbe{
				Name:     "gateway",
				Pending:  gw.InflightNow,
				Progress: gw.Completed,
			})
		}
		root := http.NewServeMux()
		root.Handle("/files/", gw)
		root.Handle("/", remote.NewHTTPHandler(d.srv))
		httpSrv = &http.Server{
			Addr:              cfg.HTTPListen,
			Handler:           root,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("serving HTTP API",
				"component", "http",
				"addr", cfg.HTTPListen,
				"endpoints", "/files/{path} /metrics /healthz /stats /tiers /spans /debug/trace /debug/pprof",
				"stream_detect", cfg.StreamDetect,
				"tenant_rps", cfg.TenantRPS)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				httpErr <- err
			}
		}()
	}
	if wd != nil {
		wd.Start()
		defer wd.Stop()
	}

	select {
	case <-ctx.Done():
		logger.Info("shutting down", "component", "daemon")
	case err := <-httpErr:
		logger.Error("HTTP API failed", "component", "http", "err", err)
	}
	if httpSrv != nil {
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shCtx); err != nil {
			logger.Warn("http shutdown", "component", "http", "err", err)
		}
	}
	if gw != nil {
		gw.Close()
	}
}

// gatewayConfig maps the daemon configuration onto the gateway's knobs.
func gatewayConfig(cfg config.Config, srv *server.Server) gateway.Config {
	return gateway.Config{
		MaxInflight:     cfg.GatewayMaxInflight,
		ClientInflight:  cfg.GatewayClientInflight,
		TenantRPS:       cfg.TenantRPS,
		TenantBurst:     cfg.TenantBurst,
		AdmitWait:       cfg.GatewayWait(),
		StreamDetect:    cfg.StreamDetect,
		StreamWindow:    cfg.StreamDetectWindow,
		StreamLookahead: cfg.StreamLookahead,
		Telemetry:       srv.Telemetry(),
	}
}

// newLogger builds the daemon's structured logger; every record carries
// at least a component attribute at the call sites.
func newLogger(level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: config.Config{LogLevel: level}.SlogLevel()}
	var h slog.Handler
	if format == "json" {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h)
}

func fail(logger *slog.Logger, msg string, err error) {
	logger.Error(msg, "component", "daemon", "err", err)
	os.Exit(1)
}

// daemon bundles the built node: the server, its PFS, and (when
// peer_listen is configured) the cluster fabric pieces.
type daemon struct {
	srv     *server.Server
	fs      *pfs.FS
	cnode   *cluster.Node
	peerMux *comm.Mux
	cfg     config.Config
}

// nodeInfos answers ctl.nodes: the fabric view when clustered, a single
// self row otherwise.
func (d *daemon) nodeInfos() []remote.NodeInfo {
	if d.cnode == nil {
		return []remote.NodeInfo{{Name: d.cfg.Node, Addr: d.cfg.Listen, Ops: d.cfg.Listen, State: "alive"}}
	}
	infos := d.cnode.Infos()
	out := make([]remote.NodeInfo, 0, len(infos))
	for _, mi := range infos {
		out = append(out, remote.NodeInfo{
			Name:              mi.Name,
			Addr:              mi.Addr,
			Ops:               mi.Ops,
			State:             mi.State,
			HeartbeatAgeNanos: int64(mi.HeartbeatAge),
			Keys:              mi.Keys,
			FetchP99Nanos:     mi.FetchP99,
		})
	}
	return out
}

// build assembles the server (and, when configured, the cluster fabric)
// from the configuration. The caller starts the peer listener and the
// fabric after the server is running.
func build(cfg config.Config) (*daemon, error) {
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	fs := pfs.New(devsim.New(devsim.Profile{
		Name:        "pfs",
		Latency:     time.Duration(cfg.PFS.LatencyUS * float64(time.Microsecond)),
		BytesPerSec: cfg.PFS.BandwidthMBps * 1e6,
		Channels:    cfg.PFS.Servers,
	}, scale))
	for _, f := range cfg.Files {
		if err := fs.Create(f.Name, f.Size); err != nil {
			return nil, err
		}
	}
	var stores []*tiers.Store
	var shared []string
	for _, t := range cfg.Tiers {
		dev := devsim.New(devsim.Profile{
			Name:        t.Name,
			Latency:     time.Duration(t.LatencyUS * float64(time.Microsecond)),
			BytesPerSec: t.BandwidthMBps * 1e6,
			Channels:    t.Channels,
		}, scale)
		stores = append(stores, tiers.NewStore(t.Name, t.CapacityBytes, dev))
		if t.Shared {
			shared = append(shared, t.Name)
		}
	}

	var reg *telemetry.Registry
	if !cfg.DisableTelemetry {
		size, every := cfg.SpanLogSize, cfg.SpanSampleEvery
		if size <= 0 {
			size = 256
		}
		if every <= 0 {
			every = 16
		}
		reg = telemetry.NewRegistry()
		reg.EnableSpans(size, every)
		if cfg.TimeSampleEvery > 0 {
			reg.SetTimeSampling(cfg.TimeSampleEvery)
		}
		if !cfg.DisableLifecycle {
			reg.EnableLifecycle(cfg.LifecycleRing, cfg.LifecycleSampleEvery, cfg.LifecycleMaxActive)
		}
	}

	d := &daemon{fs: fs, cfg: cfg}
	var stats, maps *dhm.Map
	if cfg.Clustered() {
		hb, suspect, dead := cfg.ClusterTimings()
		reqTimeout := cfg.PeerRequestTimeout()
		d.peerMux = comm.NewMux()
		d.peerMux.RegisterPing()
		// One comm.Stats instance per registry: cluster.New builds its own
		// from the same registry, and duplicate registration returns the
		// same underlying series, so both count into one family.
		cstats := comm.NewStats(reg)
		d.cnode = cluster.New(cluster.Config{
			Self:              cfg.Node,
			Addr:              cfg.PeerListen,
			Ops:               cfg.Listen,
			Seeds:             cfg.Seeds,
			HeartbeatInterval: hb,
			SuspectAfter:      suspect,
			DeadAfter:         dead,
			Mux:               d.peerMux,
			DialAddr: func(addr string) (comm.Peer, error) {
				return comm.DialTCPOpts(addr, comm.PeerOptions{
					DialTimeout:    reqTimeout,
					RequestTimeout: reqTimeout,
					DialAttempts:   2,
					Stats:          cstats,
				})
			},
			Telemetry: reg,
		})
		var err error
		stats, maps, _, err = server.NewClusterMaps(cfg.Node, cfg.WALPath, d.cnode.Dialer(), d.peerMux)
		if err != nil {
			return nil, err
		}
	} else if cfg.WALPath != "" {
		var err error
		stats, maps, _, err = server.NewPersistentMaps(cfg.Node, cfg.WALPath)
		if err != nil {
			return nil, err
		}
	} else {
		stats, maps = server.NewLocalMaps(cfg.Node)
	}

	scfg := server.Config{
		Node:        cfg.Node,
		SegmentSize: cfg.SegmentSize,
		Score:       score.Params{P: cfg.DecayBase, Unit: cfg.DecayUnit()},
		SeqBoost:    cfg.SeqBoost,
		HeatDir:     cfg.HeatDir,
		SharedTiers: shared,
		Telemetry:   reg,
	}
	scfg.Monitor.Daemons = cfg.Daemons
	scfg.Monitor.Shards = cfg.EventShards
	scfg.Monitor.WorkersPerShard = cfg.WorkersPerShard
	scfg.Monitor.QueueCap = cfg.EventQueueCap
	scfg.Monitor.Drop = cfg.DropEvents()
	scfg.Engine = placement.Config{
		Interval:         cfg.EngineInterval(),
		UpdateThreshold:  cfg.EngineUpdateThreshold,
		Workers:          cfg.EngineWorkers,
		Async:            cfg.AsyncMover,
		MoverConcurrency: cfg.MoverConcurrency,
		MoverQueueDepth:  cfg.MoverQueueDepth,
		FetchCoalesce:    cfg.FetchCoalesce,
	}
	scfg.FetchWait = cfg.FetchWait()
	srv, err := server.New(scfg, fs, tiers.NewHierarchy(stores...), stats, maps)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	if d.cnode != nil {
		d.cnode.Attach(srv, stats, maps)
	}
	return d, nil
}
