// Command hfetchload drives mixed sequential/random range-read load
// against a live hfetchd HTTP gateway and reports what the client saw:
// request rate, status mix, client-observed TTFB quantiles, and —
// scraped from the daemon's /metrics endpoint after the run — the
// prefetch-effectiveness counters the load should have moved. The CI
// gateway-smoke job uses it as the external load half of a live-daemon
// check: any 5xx fails the run, and -min-timely asserts the sequential
// streams actually produced timely prefetches.
//
// Usage:
//
//	hfetchload [-url http://127.0.0.1:8080] [-ctl 127.0.0.1:7070]
//	           [-files 8] [-file-size 4194304] [-chunk 65536]
//	           [-duration 30s] [-workers 8] [-tenant name]
//	           [-min-timely 1] [-out summary.json]
//
// Unless -ctl is empty, the generator first dials the daemon's control
// port and registers -files synthetic files (load/gw-NN.dat) so the run
// is self-contained against a fresh daemon. Three of every four
// workers stream their file sequentially — the access shape the
// gateway's stream detector turns into readahead hints — and the rest
// read at random offsets to keep the tier mix honest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"hfetch/internal/core/remote"
	"hfetch/internal/telemetry"
)

// summary is the machine-readable run report written to -out (and
// always printed to stdout).
type summary struct {
	URL       string  `json:"url"`
	Duration  float64 `json:"duration_seconds"`
	Workers   int     `json:"workers"`
	Files     int     `json:"files"`
	Requests  int64   `json:"requests"`
	ReqPerSec float64 `json:"req_per_sec"`
	Status2xx int64   `json:"status_2xx"`
	Status429 int64   `json:"status_429"`
	Status5xx int64   `json:"status_5xx"`
	Other     int64   `json:"status_other"`
	Bytes     int64   `json:"bytes"`
	TTFBP50us float64 `json:"ttfb_p50_us"`
	TTFBP99us float64 `json:"ttfb_p99_us"`
	// Timely/Late/Wasted are the daemon's prefetch lifecycle counters
	// scraped after the run (-1 when /metrics was unreachable). With
	// -targets they are summed across every reachable target daemon.
	Timely int64 `json:"prefetch_timely_total"`
	Late   int64 `json:"prefetch_late_total"`
	Wasted int64 `json:"prefetch_wasted_total"`
	// ScrapedNodes counts the -targets daemons that answered the
	// post-run metrics scrape; StaleTargets names the ones that did not.
	// Both are omitted in single-target runs.
	ScrapedNodes int      `json:"scraped_nodes,omitempty"`
	StaleTargets []string `json:"stale_targets,omitempty"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "gateway base URL")
	ctl := flag.String("ctl", "127.0.0.1:7070", "daemon control address for file creation (empty: files must already exist)")
	files := flag.Int("files", 8, "number of synthetic files to create and read")
	fileSize := flag.Int64("file-size", 4<<20, "size of each synthetic file in bytes")
	chunk := flag.Int64("chunk", 64<<10, "bytes per range request")
	duration := flag.Duration("duration", 30*time.Second, "how long to drive load")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	tenant := flag.String("tenant", "", "X-Tenant header value (empty: default tenant)")
	targets := flag.String("targets", "", "comma-separated daemon ctl addresses; after the run their telemetry snapshots are scraped and merged (fleet runs)")
	minTimely := flag.Int64("min-timely", -1, "fail unless hfetch_prefetch_timely_total reaches this after the run (negative disables)")
	out := flag.String("out", "", "write the JSON summary to this path as well as stdout")
	flag.Parse()

	if *files <= 0 || *workers <= 0 || *chunk <= 0 || *fileSize < *chunk {
		fatalf("need files/workers > 0 and file-size >= chunk > 0")
	}

	names := make([]string, *files)
	for i := range names {
		names[i] = fmt.Sprintf("load/gw-%02d.dat", i)
	}
	if *ctl != "" {
		c, err := remote.Dial(*ctl)
		if err != nil {
			fatalf("dial ctl %s: %v", *ctl, err)
		}
		for _, name := range names {
			if err := c.CreateFile(name, *fileSize); err != nil {
				c.Close()
				fatalf("create %s: %v", name, err)
			}
		}
		c.Close()
	}

	base := strings.TrimSuffix(*url, "/")
	ttfb := &telemetry.Histogram{}
	var mu sync.Mutex
	var total counts
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, *workers)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local, err := drive(w, base, names[w%len(names)], *fileSize, *chunk, *tenant, deadline, ttfb)
			mu.Lock()
			total.merge(local)
			mu.Unlock()
			if err != nil {
				errCh <- err
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	elapsed := time.Since(start)
	for err := range errCh {
		fatalf("%v", err)
	}

	s := summary{
		URL:       base,
		Duration:  elapsed.Seconds(),
		Workers:   *workers,
		Files:     *files,
		Requests:  total.total(),
		ReqPerSec: float64(total.total()) / elapsed.Seconds(),
		Status2xx: total.s2xx,
		Status429: total.s429,
		Status5xx: total.s5xx,
		Other:     total.other,
		Bytes:     total.bytes,
	}
	hist := ttfb.Snapshot()
	s.TTFBP50us = float64(hist.Quantile(0.50)) / 1e3
	s.TTFBP99us = float64(hist.Quantile(0.99)) / 1e3
	if *targets != "" {
		s.Timely, s.Late, s.Wasted, s.ScrapedNodes, s.StaleTargets = scrapeTargets(*targets)
	} else {
		s.Timely, s.Late, s.Wasted = scrapePrefetch(base)
	}

	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	raw = append(raw, '\n')
	os.Stdout.Write(raw) //nolint:errcheck // best-effort report
	if *out != "" {
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			fatalf("%v", err)
		}
	}

	if s.Status5xx > 0 {
		fatalf("%d 5xx responses", s.Status5xx)
	}
	if s.Requests == 0 {
		fatalf("no requests completed")
	}
	if *minTimely >= 0 {
		if s.Timely < 0 {
			fatalf("-min-timely set but %s/metrics was unreachable", base)
		}
		if s.Timely < *minTimely {
			fatalf("timely prefetches %d < required %d", s.Timely, *minTimely)
		}
	}
}

type counts struct {
	s2xx, s429, s5xx, other int64
	bytes                   int64
}

func (c *counts) merge(o counts) {
	c.s2xx += o.s2xx
	c.s429 += o.s429
	c.s5xx += o.s5xx
	c.other += o.other
	c.bytes += o.bytes
}

func (c *counts) total() int64 { return c.s2xx + c.s429 + c.s5xx + c.other }

// drive loops range reads over one file until the deadline. Workers
// 0,1,2 of every four stream sequentially (wrapping at EOF); worker 3
// reads chunk-aligned random offsets.
func drive(w int, base, name string, size, chunk int64, tenant string, deadline time.Time, ttfb *telemetry.Histogram) (counts, error) {
	var local counts
	sequential := w%4 != 3
	rng := rand.New(rand.NewSource(int64(w) + 1))
	client := &http.Client{Timeout: 30 * time.Second}
	chunks := size / chunk
	var next int64
	for time.Now().Before(deadline) {
		off := next * chunk
		if sequential {
			next = (next + 1) % chunks
		} else {
			next = rng.Int63n(chunks)
		}
		req, err := http.NewRequest("GET", base+"/files/"+name, nil)
		if err != nil {
			return local, err
		}
		req.Header.Set("Range",
			"bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+chunk-1, 10))
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		start := time.Now()
		resp, err := client.Do(req)
		if err != nil {
			return local, err
		}
		var first [1]byte
		if n, _ := resp.Body.Read(first[:]); n > 0 {
			ttfb.Observe(int64(time.Since(start)))
			local.bytes += int64(n)
		}
		n, _ := io.Copy(io.Discard, resp.Body)
		local.bytes += n
		resp.Body.Close()
		switch {
		case resp.StatusCode >= 200 && resp.StatusCode < 300:
			local.s2xx++
		case resp.StatusCode == http.StatusTooManyRequests:
			local.s429++
			time.Sleep(5 * time.Millisecond) // back off instead of hammering a shedding gateway
		case resp.StatusCode >= 500:
			local.s5xx++
		default:
			local.other++
		}
	}
	return local, nil
}

// scrapeTargets dials every -targets ctl address, fetches each daemon's
// telemetry snapshot, and merges them into one fleet view; the prefetch
// counters come out of the merged snapshot. Unreachable targets are
// reported, not fatal: a fleet run should survive one dead member.
func scrapeTargets(list string) (timely, late, wasted int64, scraped int, stale []string) {
	timely, late, wasted = -1, -1, -1
	var snaps []telemetry.Snapshot
	for _, addr := range strings.Split(list, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		c, err := remote.Dial(addr)
		if err != nil {
			stale = append(stale, addr)
			continue
		}
		snap, err := c.Metrics()
		c.Close() //nolint:errcheck // read-only connection
		if err != nil {
			stale = append(stale, addr)
			continue
		}
		snaps = append(snaps, snap)
		scraped++
	}
	if scraped == 0 {
		return timely, late, wasted, scraped, stale
	}
	merged := telemetry.MergeSnapshots(snaps...)
	sum := func(name string) int64 {
		var v int64
		for _, m := range merged.Metrics {
			if m.Name == name && m.Hist == nil {
				v += m.Value
			}
		}
		return v
	}
	return sum("hfetch_prefetch_timely_total"), sum("hfetch_prefetch_late_total"),
		sum("hfetch_prefetch_wasted_total"), scraped, stale
}

// scrapePrefetch reads the daemon's Prometheus text endpoint and pulls
// the prefetch lifecycle counters; all -1 when the scrape fails.
func scrapePrefetch(base string) (timely, late, wasted int64) {
	timely, late, wasted = -1, -1, -1
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(strings.TrimSpace(val), 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "hfetch_prefetch_timely_total":
			timely = n
		case "hfetch_prefetch_late_total":
			late = n
		case "hfetch_prefetch_wasted_total":
			wasted = n
		}
	}
	return
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hfetchload: "+format+"\n", args...)
	os.Exit(1)
}
