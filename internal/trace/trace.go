// Package trace records per-access samples during experiment runs and
// exports them as CSV for offline analysis (latency distributions,
// hit-ratio time series, per-tier breakdowns). The recorder is a fixed
// capacity ring so tracing a long run costs constant memory; sampling
// keeps the hot path cheap.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Sample is one recorded access.
type Sample struct {
	When    time.Time
	File    string
	Offset  int64
	Length  int64
	Tier    string // "" = PFS (miss)
	Latency time.Duration
}

// Hit reports whether the sample was served from a tier.
func (s Sample) Hit() bool { return s.Tier != "" }

// Recorder is a sampling ring buffer of access samples. Safe for
// concurrent use.
type Recorder struct {
	mu   sync.Mutex
	buf  []Sample
	next int
	full bool

	sampleEvery int64
	counter     atomic.Int64

	recorded atomic.Int64
	dropped  atomic.Int64
}

// NewRecorder creates a recorder holding up to capacity samples,
// recording every sampleEvery-th access (1 = record everything).
func NewRecorder(capacity int, sampleEvery int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	if sampleEvery <= 0 {
		sampleEvery = 1
	}
	return &Recorder{buf: make([]Sample, capacity), sampleEvery: int64(sampleEvery)}
}

// Record stores (or samples away) one access.
func (r *Recorder) Record(s Sample) {
	if n := r.counter.Add(1); (n-1)%r.sampleEvery != 0 {
		r.dropped.Add(1)
		return
	}
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
	r.recorded.Add(1)
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Counts returns (recorded, sampled-away).
func (r *Recorder) Counts() (recorded, dropped int64) {
	return r.recorded.Load(), r.dropped.Load()
}

// Samples returns the retained samples in arrival order.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Sample, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Sample, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteCSV streams the retained samples as CSV.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"when_unix_ns", "file", "offset", "length", "tier", "hit", "latency_us"}); err != nil {
		return err
	}
	for _, s := range r.Samples() {
		rec := []string{
			strconv.FormatInt(s.When.UnixNano(), 10),
			s.File,
			strconv.FormatInt(s.Offset, 10),
			strconv.FormatInt(s.Length, 10),
			s.Tier,
			strconv.FormatBool(s.Hit()),
			strconv.FormatFloat(float64(s.Latency)/float64(time.Microsecond), 'f', 2, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary aggregates retained samples.
type Summary struct {
	Samples   int
	Hits      int
	HitRatio  float64
	ByTier    map[string]int
	MeanLatUS float64
	P99LatUS  float64
}

// Summarize computes a Summary of the retained samples.
func (r *Recorder) Summarize() Summary {
	samples := r.Samples()
	sum := Summary{Samples: len(samples), ByTier: make(map[string]int)}
	if len(samples) == 0 {
		return sum
	}
	lats := make([]float64, 0, len(samples))
	var total float64
	for _, s := range samples {
		if s.Hit() {
			sum.Hits++
			sum.ByTier[s.Tier]++
		}
		us := float64(s.Latency) / float64(time.Microsecond)
		lats = append(lats, us)
		total += us
	}
	sum.HitRatio = float64(sum.Hits) / float64(len(samples))
	sum.MeanLatUS = total / float64(len(samples))
	sort.Float64s(lats) // nearest-rank p99
	idx := int(0.99*float64(len(lats))) - 1
	if idx < 0 {
		idx = 0
	}
	sum.P99LatUS = lats[idx]
	return sum
}

func (s Summary) String() string {
	return fmt.Sprintf("samples=%d hit=%.1f%% mean=%.1fµs p99=%.1fµs tiers=%v",
		s.Samples, s.HitRatio*100, s.MeanLatUS, s.P99LatUS, s.ByTier)
}
