package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func sample(tier string, lat time.Duration) Sample {
	return Sample{When: time.Unix(0, 1), File: "f", Offset: 0, Length: 100, Tier: tier, Latency: lat}
}

func TestRecordAndSamplesOrder(t *testing.T) {
	r := NewRecorder(8, 1)
	for i := 0; i < 5; i++ {
		r.Record(Sample{Offset: int64(i)})
	}
	got := r.Samples()
	if len(got) != 5 || r.Len() != 5 {
		t.Fatalf("len = %d/%d", len(got), r.Len())
	}
	for i, s := range got {
		if s.Offset != int64(i) {
			t.Fatalf("order wrong at %d: %d", i, s.Offset)
		}
	}
}

func TestRingWrapsKeepingNewest(t *testing.T) {
	r := NewRecorder(4, 1)
	for i := 0; i < 10; i++ {
		r.Record(Sample{Offset: int64(i)})
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("retained = %d, want 4", len(got))
	}
	for i, s := range got {
		if s.Offset != int64(6+i) {
			t.Fatalf("ring kept wrong samples: %+v", got)
		}
	}
}

func TestSampling(t *testing.T) {
	r := NewRecorder(100, 10)
	for i := 0; i < 100; i++ {
		r.Record(Sample{})
	}
	rec, drop := r.Counts()
	if rec != 10 || drop != 90 {
		t.Fatalf("counts = %d/%d, want 10/90", rec, drop)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder(8, 1)
	r.Record(sample("ram", 5*time.Microsecond))
	r.Record(sample("", 100*time.Microsecond))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2", len(lines))
	}
	if !strings.Contains(lines[1], "ram") || !strings.Contains(lines[1], "true") {
		t.Fatalf("hit row wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "false") {
		t.Fatalf("miss row wrong: %s", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	r := NewRecorder(16, 1)
	for i := 0; i < 9; i++ {
		r.Record(sample("ram", 10*time.Microsecond))
	}
	r.Record(sample("", 1000*time.Microsecond))
	s := r.Summarize()
	if s.Samples != 10 || s.Hits != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.HitRatio != 0.9 || s.ByTier["ram"] != 9 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MeanLatUS < 100 || s.MeanLatUS > 120 {
		t.Fatalf("mean = %v", s.MeanLatUS)
	}
	if s.P99LatUS != 10 { // nearest rank of 10 samples at p99 -> 9th
		t.Logf("p99 = %v (nearest-rank)", s.P99LatUS)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	r := NewRecorder(4, 1)
	s := r.Summarize()
	if s.Samples != 0 || s.HitRatio != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(1024, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(sample("ram", time.Microsecond))
			}
		}()
	}
	wg.Wait()
	rec, _ := r.Counts()
	if rec != 4000 {
		t.Fatalf("recorded = %d, want 4000", rec)
	}
	if r.Len() != 1024 {
		t.Fatalf("retained = %d, want capacity", r.Len())
	}
}
