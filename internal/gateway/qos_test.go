package gateway

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTenantRateShedsWithRetryAfter(t *testing.T) {
	g, _, fs := newTestNode(t, Config{
		TenantRPS:   1,
		TenantBurst: 1,
		AdmitWait:   time.Millisecond,
	})
	if err := fs.Create("data/q", 1000); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	get := func(tenant string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+"/files/data/q", nil)
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := get("acme"); resp.StatusCode != 200 {
		t.Fatalf("first request: status = %d, want 200", resp.StatusCode)
	}
	resp := get("acme")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	// A different tenant has its own bucket.
	if resp := get("other"); resp.StatusCode != 200 {
		t.Fatalf("other tenant: status = %d, want 200", resp.StatusCode)
	}
	if g.shedVec.With("tenant_rps").Value() == 0 {
		t.Fatal("tenant_rps shed counter did not move")
	}
}

// TestConcurrentTenantNoOverAdmission races many goroutines of one
// tenant against the bucket (run under -race in CI) and asserts the
// admitted total never exceeds rate·elapsed + burst.
func TestConcurrentTenantNoOverAdmission(t *testing.T) {
	const (
		rps   = 200.0
		burst = 10.0
	)
	q := newQOS(Config{
		MaxInflight:    100000,
		ClientInflight: 100000,
		TenantRPS:      rps,
		TenantBurst:    burst,
		AdmitWait:      time.Nanosecond,
	}.withDefaults(1 << 20))

	var admitted atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := "c" + strconv.Itoa(w)
			for i := 0; i < 200; i++ {
				if adm := q.admit("acme", client); adm.ok {
					admitted.Add(1)
					q.release("acme", client)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	limit := int64(rps*elapsed+burst) + 1
	if got := admitted.Load(); got > limit {
		t.Fatalf("over-admission: %d admitted, limit %d (%.3fs elapsed)", got, limit, elapsed)
	}
	if admitted.Load() < int64(burst) {
		t.Fatalf("bucket admitted %d, want at least the burst %v", admitted.Load(), burst)
	}
}

func TestInflightCaps(t *testing.T) {
	q := newQOS(Config{MaxInflight: 2, ClientInflight: 1}.withDefaults(1 << 20))

	a1 := q.admit("t", "c1")
	if !a1.ok {
		t.Fatal("first admit refused")
	}
	if adm := q.admit("t", "c1"); adm.ok || adm.reason != "client_inflight" {
		t.Fatalf("same-client second admit = %+v, want client_inflight shed", adm)
	}
	a2 := q.admit("t", "c2")
	if !a2.ok {
		t.Fatal("second client refused")
	}
	if adm := q.admit("t", "c3"); adm.ok || adm.reason != "max_inflight" {
		t.Fatalf("third concurrent admit = %+v, want max_inflight shed", adm)
	}
	q.release("t", "c1")
	q.release("t", "c2")
	if adm := q.admit("t", "c3"); !adm.ok {
		t.Fatalf("admit after release refused: %+v", adm)
	}
	q.release("t", "c3")
	if n := q.inflightNow(); n != 0 {
		t.Fatalf("inflight = %d after all releases, want 0", n)
	}
}

func TestBoundedWaitAdmits(t *testing.T) {
	q := newQOS(Config{
		MaxInflight:    10,
		ClientInflight: 10,
		TenantRPS:      1000,
		TenantBurst:    1,
		AdmitWait:      50 * time.Millisecond,
	}.withDefaults(1 << 20))
	if adm := q.admit("t", "c"); !adm.ok || adm.wait != 0 {
		t.Fatalf("burst admit = %+v, want immediate", adm)
	}
	// Bucket is now in debt; the next request should be admitted with a
	// small pacing wait rather than shed (1/1000 rps ≈ 1ms < AdmitWait).
	adm := q.admit("t", "c")
	if !adm.ok {
		t.Fatalf("in-debt admit refused: %+v", adm)
	}
	if adm.wait <= 0 || adm.wait > 50*time.Millisecond {
		t.Fatalf("pacing wait = %v, want within (0, AdmitWait]", adm.wait)
	}
}

func TestStreamTableWindowAndReset(t *testing.T) {
	tb := newStreamTable(100)
	if tb.note("c", "f", 0, 100) {
		t.Fatal("first range already a stream")
	}
	if !tb.note("c", "f", 100, 100) {
		t.Fatal("contiguous continuation not detected")
	}
	if !tb.note("c", "f", 250, 100) {
		t.Fatal("in-window gap broke the stream")
	}
	if tb.note("c", "f", 10_000, 100) {
		t.Fatal("far jump still counted as a stream")
	}
	if tb.note("other", "f", 100, 100) {
		t.Fatal("fresh client inherited another client's stream")
	}
}
