package gateway

import (
	"sync"
)

// streamShards stripes the tracker so concurrent clients don't
// serialize on one mutex.
const streamShards = 16

// maxStreamsPerShard bounds tracker memory: when a shard fills, it is
// reset wholesale. Losing tracked streams only delays re-detection by
// one request; the bound matters more than the tail.
const maxStreamsPerShard = 4096

// streamTable detects per-client sequential range streams: it remembers
// the byte each (client, file) pair is expected to read next, and two
// consecutive requests within the window make a stream. The detected
// stream is the paper's sequencing signal as seen from outside the
// process — the gateway turns it into readahead hints.
type streamTable struct {
	window int64
	shards [streamShards]struct {
		mu sync.Mutex
		m  map[string]*streamState
	}
}

type streamState struct {
	next   int64 // offset the stream is expected to continue at
	streak int   // consecutive continuations observed
}

func newStreamTable(window int64) *streamTable {
	t := &streamTable{window: window}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*streamState)
	}
	return t
}

// note records one request and reports whether it continues a detected
// sequential stream (two or more back-to-back in-window ranges).
func (t *streamTable) note(client, file string, off, length int64) bool {
	key := client + "\x00" + file
	sh := &t.shards[fnv32(key)%streamShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := sh.m[key]
	if st == nil {
		if len(sh.m) >= maxStreamsPerShard {
			sh.m = make(map[string]*streamState)
		}
		st = &streamState{}
		sh.m[key] = st
	}
	gap := off - st.next
	if st.streak > 0 && gap >= -t.window && gap <= t.window {
		st.streak++
	} else {
		st.streak = 1
	}
	st.next = off + length
	return st.streak >= 2
}

// fnv32 hashes the tracker key (FNV-1a) for shard selection.
func fnv32(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}
