// Package gateway is the HTTP/1.1 range-read serving surface in front of
// an HFetch node: GET/HEAD /files/{path} with Range and If-Range
// semantics, streaming responses served straight from the tier hierarchy
// (falling back to PFS passthrough when tiers are cold), per-tenant
// token-bucket admission with a bounded wait, and a per-client range
// continuity tracker whose detected sequential streams feed synthetic
// readahead hints into the event pipeline — external readers drive
// prefetching for themselves, which is exactly the paper's sequencing
// signal arriving over the wire instead of through the client agent.
package gateway

import (
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/core/server"
	"hfetch/internal/events"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Config tunes the gateway. The zero value of every field selects a
// sensible default; see the field comments for what zero means.
type Config struct {
	// MaxInflight caps concurrently served requests across all clients
	// (default 256). Excess requests are shed with 429.
	MaxInflight int
	// ClientInflight caps concurrently served requests per client IP
	// (default 64).
	ClientInflight int
	// TenantRPS is the per-tenant token-bucket refill rate in requests
	// per second; 0 disables tenant rate limiting.
	TenantRPS float64
	// TenantBurst is the bucket depth (default 2×TenantRPS, minimum 1).
	TenantBurst float64
	// AdmitWait bounds how long an over-rate request may wait for a
	// token before being shed with 429 + Retry-After (default 10ms).
	AdmitWait time.Duration
	// StreamDetect enables the sequential-stream detector and its
	// readahead hint events.
	StreamDetect bool
	// StreamWindow is the byte tolerance between the end of one request
	// and the start of the next for the pair to count as one sequential
	// stream (default: the node's segment size).
	StreamWindow int64
	// StreamLookahead is how many segments ahead of a detected stream
	// the gateway hints (default 4).
	StreamLookahead int
	// ChunkBytes is the streaming copy granularity (default 256 KiB).
	// Each chunk re-checks the file generation so a response never
	// mixes bytes of two generations.
	ChunkBytes int
	// Telemetry receives the gateway metric families; nil disables
	// instrumentation.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, emits one debug-level line per finished
	// request (tenant, client, range, status, TTFB, and the segment's
	// lifecycle trace ID when sampled). Nil disables request logging.
	Logger *slog.Logger
	// LogMaxPerSec caps emitted request lines per second so debug logging
	// on a hot gateway cannot drown the node (default 100; excess
	// requests are served unlogged).
	LogMaxPerSec int
}

func (c Config) withDefaults(segSize int64) Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = 256
	}
	if c.ClientInflight <= 0 {
		c.ClientInflight = 64
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 2 * c.TenantRPS
	}
	if c.TenantBurst < 1 {
		c.TenantBurst = 1
	}
	if c.AdmitWait <= 0 {
		c.AdmitWait = 10 * time.Millisecond
	}
	if c.StreamWindow <= 0 {
		c.StreamWindow = segSize
	}
	if c.StreamLookahead <= 0 {
		c.StreamLookahead = 4
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 256 << 10
	}
	if c.LogMaxPerSec <= 0 {
		c.LogMaxPerSec = 100
	}
	return c
}

// Gateway serves the range-read API over one node's server. Create with
// New, mount as an http.Handler, and Close when done: the gateway holds
// one epoch reference per file it has served (it is a long-lived reader
// in the watch registry's eyes), released on Close.
type Gateway struct {
	srv *server.Server
	fs  *pfs.FS
	cfg Config

	mux     *http.ServeMux
	qos     *qos
	streams *streamTable

	// mu guards the epoch table and the closed flag. It is the
	// outermost lock of the node (see ARCHITECTURE.md "Lock ordering")
	// and must be released before calling into the server.
	mu     sync.Mutex
	closed bool
	epochs map[string]int64 // file -> size pinned at first serve

	// completed counts finished requests (any status, including aborts):
	// the progress signal the stall watchdog pairs with the inflight
	// gauge.
	completed atomic.Int64

	log    *slog.Logger
	logLim logLimiter

	reqVec     *telemetry.CounterVec
	tenantVec  *telemetry.CounterVec
	bytesCtr   *telemetry.Counter
	ttfbHist   *telemetry.Histogram
	fullHist   *telemetry.Histogram
	shedVec    *telemetry.CounterVec
	degradeCtr *telemetry.Counter
	streamCtr  *telemetry.Counter
	hintCtr    *telemetry.Counter
	abortCtr   *telemetry.Counter
}

// New builds a gateway over srv. The server must outlive the gateway.
func New(srv *server.Server, cfg Config) *Gateway {
	cfg = cfg.withDefaults(srv.Segmenter().Size())
	g := &Gateway{
		srv:     srv,
		fs:      srv.FS(),
		cfg:     cfg,
		qos:     newQOS(cfg),
		streams: newStreamTable(cfg.StreamWindow),
		epochs:  make(map[string]int64),
	}
	g.log = cfg.Logger
	g.logLim.max = cfg.LogMaxPerSec
	g.mux = http.NewServeMux()
	g.mux.HandleFunc("GET /files/{path...}", g.serve)
	g.mux.HandleFunc("HEAD /files/{path...}", g.serve)
	if reg := cfg.Telemetry; reg != nil {
		g.reqVec = reg.CounterVec("hfetch_gateway_requests_total", "gateway requests by HTTP status code", "code")
		g.tenantVec = reg.CounterVec("hfetch_gateway_tenant_requests_total", "gateway requests admitted per tenant", "tenant")
		g.bytesCtr = reg.Counter("hfetch_gateway_bytes_total", "response body bytes served by the gateway")
		g.ttfbHist = reg.Histogram("hfetch_gateway_ttfb_nanos", "request start to first body byte in nanoseconds")
		g.fullHist = reg.Histogram("hfetch_gateway_request_nanos", "request start to last body byte in nanoseconds")
		g.shedVec = reg.CounterVec("hfetch_gateway_shed_total", "requests shed by QoS admission, by reason", "reason")
		g.degradeCtr = reg.Counter("hfetch_gateway_degraded_total", "responses served entirely from the PFS (no tier hit)")
		g.streamCtr = reg.Counter("hfetch_gateway_streams_detected_total", "sequential client streams detected")
		g.hintCtr = reg.Counter("hfetch_gateway_hints_total", "synthetic readahead hint events posted")
		g.abortCtr = reg.Counter("hfetch_gateway_aborted_total", "responses aborted mid-stream by a generation change")
		reg.GaugeFunc("hfetch_gateway_inflight", "gateway requests currently being served", g.qos.inflightNow)
	}
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// Close releases every epoch reference the gateway holds. The gateway
// sheds all subsequent requests with 503.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	files := make([]string, 0, len(g.epochs))
	for f := range g.epochs {
		files = append(files, f)
	}
	g.mu.Unlock()
	for _, f := range files {
		g.srv.EndEpoch(f)
	}
}

// trackEpoch records the file in the epoch table. started is true when
// this call added it (the caller must then StartEpoch outside gw.mu);
// ok is false when the gateway is closed.
func (g *Gateway) trackEpoch(file string, size int64) (started, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false, false
	}
	if _, exists := g.epochs[file]; exists {
		return false, true
	}
	g.epochs[file] = size
	return true, true
}

// clientOf extracts the client identity (IP without port) used for
// per-client caps and stream tracking.
func clientOf(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// tenantOf maps a request to its tenant: the X-Tenant header, or
// "default".
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (g *Gateway) countCode(code int) {
	g.reqVec.With(strconv.Itoa(code)).Inc()
}

// serve wraps handleFile with completion accounting and, when a logger
// is configured, per-request debug logging. The abort panic
// (http.ErrAbortHandler) is logged and re-raised so net/http still cuts
// the connection.
func (g *Gateway) serve(w http.ResponseWriter, r *http.Request) {
	defer g.completed.Add(1)
	if g.log == nil {
		g.handleFile(w, r)
		return
	}
	lw := &logWriter{ResponseWriter: w, start: time.Now(), status: http.StatusOK}
	defer func() {
		if p := recover(); p != nil {
			lw.aborted = true
			g.logRequest(lw, r)
			panic(p)
		}
		g.logRequest(lw, r)
	}()
	g.handleFile(lw, r)
}

func (g *Gateway) logRequest(lw *logWriter, r *http.Request) {
	if !g.logLim.allow(time.Now()) {
		return
	}
	path := lw.path
	if path == "" {
		path = r.PathValue("path")
	}
	attrs := []any{
		"method", r.Method,
		"path", path,
		"tenant", tenantOf(r),
		"client", clientOf(r),
		"status", lw.status,
		"range_off", lw.off,
		"range_len", lw.ln,
		"bytes", lw.n,
		"dur", time.Since(lw.start),
	}
	if lw.ttfb > 0 {
		attrs = append(attrs, "ttfb", lw.ttfb)
	}
	if lw.aborted {
		attrs = append(attrs, "aborted", true)
	}
	if lc := g.srv.Telemetry().Lifecycle(); lc != nil && lw.path != "" {
		if tid := lc.Current(lw.path, g.srv.Segmenter().IndexOf(lw.off)); tid != 0 {
			attrs = append(attrs, "trace_id", tid)
		}
	}
	g.log.Debug("gateway request", attrs...)
}

// logWriter records the response facts the request log line needs;
// handleFile fills path and range via noteRange once they are parsed.
type logWriter struct {
	http.ResponseWriter
	start   time.Time
	status  int
	ttfb    time.Duration
	n       int64
	path    string
	off, ln int64
	aborted bool
}

func (lw *logWriter) WriteHeader(code int) {
	lw.status = code
	lw.ResponseWriter.WriteHeader(code)
}

func (lw *logWriter) Write(p []byte) (int, error) {
	if lw.ttfb == 0 {
		lw.ttfb = time.Since(lw.start)
	}
	n, err := lw.ResponseWriter.Write(p)
	lw.n += int64(n)
	return n, err
}

// logLimiter is a one-second fixed window over emitted lines: cheap, and
// off the request path entirely when logging is disabled.
type logLimiter struct {
	mu     sync.Mutex
	window time.Time
	count  int
	max    int
}

func (l *logLimiter) allow(now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.Sub(l.window) >= time.Second {
		l.window = now
		l.count = 0
	}
	l.count++
	return l.count <= l.max
}

func (g *Gateway) handleFile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	tenant, client := tenantOf(r), clientOf(r)

	adm := g.qos.admit(tenant, client)
	if !adm.ok {
		g.shedVec.With(adm.reason).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(adm.retryAfter))
		g.countCode(http.StatusTooManyRequests)
		http.Error(w, "over capacity: "+adm.reason, http.StatusTooManyRequests)
		return
	}
	defer g.qos.release(tenant, client)
	if adm.wait > 0 {
		time.Sleep(adm.wait)
	}
	g.tenantVec.With(tenant).Inc()

	path := r.PathValue("path")
	fi, err := g.fs.Stat(path)
	if err != nil {
		g.countCode(http.StatusNotFound)
		http.Error(w, "no such file", http.StatusNotFound)
		return
	}

	started, open := g.trackEpoch(path, fi.Size)
	if !open {
		g.countCode(http.StatusServiceUnavailable)
		http.Error(w, "gateway closed", http.StatusServiceUnavailable)
		return
	}
	if started {
		g.srv.StartEpoch(path, fi.Size)
	}

	etag := `"g` + strconv.FormatInt(fi.Version, 10) + `"`
	h := w.Header()
	h.Set("Accept-Ranges", "bytes")
	h.Set("ETag", etag)
	h.Set("Content-Type", "application/octet-stream")

	// Conditional GET (RFC 9110 §13.1.2): a client revalidating a cached
	// copy whose entity tag still matches the current generation gets 304
	// and no body is read at all — the cheapest read is no read. No
	// access event is posted either: nothing was accessed, so the
	// prefetching pipeline should not warm tiers for it.
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		g.countCode(http.StatusNotModified)
		w.WriteHeader(http.StatusNotModified)
		g.ttfbHist.Observe(int64(time.Since(start)))
		g.fullHist.Observe(int64(time.Since(start)))
		return
	}

	rangeHdr := r.Header.Get("Range")
	// If-Range: serve the requested range only when the validator still
	// matches; otherwise fall back to the full representation (RFC 9110
	// §13.1.5), which is exactly what a resumed download needs after the
	// file changed under it.
	if ir := r.Header.Get("If-Range"); ir != "" && ir != etag {
		rangeHdr = ""
	}

	br, mode := parseRange(rangeHdr, fi.Size)
	if mode == rangeUnsatisfiable {
		h.Set("Content-Range", "bytes */"+strconv.FormatInt(fi.Size, 10))
		g.countCode(http.StatusRequestedRangeNotSatisfiable)
		http.Error(w, "unsatisfiable range", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	status := http.StatusOK
	if mode == rangePartial {
		status = http.StatusPartialContent
		h.Set("Content-Range",
			"bytes "+strconv.FormatInt(br.start, 10)+"-"+
				strconv.FormatInt(br.start+br.length-1, 10)+"/"+
				strconv.FormatInt(fi.Size, 10))
	}
	h.Set("Content-Length", strconv.FormatInt(br.length, 10))
	if lw, ok := w.(*logWriter); ok {
		lw.path, lw.off, lw.ln = path, br.start, br.length
	}

	// Every request is an access event: the gateway is just another
	// reader as far as the prefetching pipeline is concerned.
	g.srv.PostEvent(events.Event{
		Op: events.OpRead, File: path, Offset: br.start, Length: br.length,
		Time: start, Via: events.ViaGateway,
	})
	if g.cfg.StreamDetect && br.length > 0 {
		if detected := g.streams.note(client, path, br.start, br.length); detected {
			g.streamCtr.Inc()
			g.hint(path, br.start+br.length, fi.Size, start)
		}
	}

	g.countCode(status)
	w.WriteHeader(status)
	if r.Method == http.MethodHead || br.length == 0 {
		g.ttfbHist.Observe(int64(time.Since(start)))
		g.fullHist.Observe(int64(time.Since(start)))
		return
	}
	g.stream(w, path, fi, br, start)
}

// InflightNow reports requests currently being served (the watchdog's
// pending signal; also exported as hfetch_gateway_inflight).
func (g *Gateway) InflightNow() int64 { return g.qos.inflightNow() }

// Completed reports finished requests, any status including aborts (the
// watchdog's progress signal).
func (g *Gateway) Completed() int64 { return g.completed.Load() }

// hint posts synthetic readahead events for the segments following end,
// at segment granularity: a detected stream is the sequencing signal,
// and these events are what turns it into prefetches that land before
// the client's next request arrives.
func (g *Gateway) hint(path string, end, size int64, now time.Time) {
	segr := g.srv.Segmenter()
	if end <= 0 {
		end = 1
	}
	idx := segr.IndexOf(end - 1)
	for k := 1; k <= g.cfg.StreamLookahead; k++ {
		off := (idx + int64(k)) * segr.Size()
		if off >= size {
			return
		}
		ln := segr.Size()
		if off+ln > size {
			ln = size - off
		}
		g.srv.PostEvent(events.Event{
			Op: events.OpRead, File: path, Offset: off, Length: ln,
			Time: now, Via: events.ViaHint,
		})
		g.hintCtr.Inc()
	}
}

// stream writes [br.start, br.start+br.length) of path to w in chunks
// of at most ChunkBytes, served from one pinned RangeView: the range's
// resident segments are resolved and pinned up front (one lock
// acquisition per tier) and tier hits go to the socket straight from the
// pinned tier buffers — zero payload copies — while misses fill a
// slab-drawn chunk buffer via the prefetched-read/PFS path. The file
// generation is pinned at fi.Version: before sending each chunk the
// generation is re-checked, and on drift the response is aborted (the
// connection is cut so the client sees an incomplete transfer rather
// than bytes of two generations spliced together — PFS contents are a
// pure function of the generation, so a torn response is otherwise
// undetectable).
func (g *Gateway) stream(w http.ResponseWriter, path string, fi pfs.FileInfo, br byteRange, start time.Time) {
	// The fallback chunk buffer comes from the slab even on the
	// PFS-degraded path: no per-request make. Both defers also run on
	// the abort panic, so pins and the chunk buffer are never leaked.
	buf := tiers.SlabGet(int64(g.cfg.ChunkBytes))
	defer tiers.SlabPut(buf)
	v := g.srv.OpenRangeView(path, fi.Size, br.start, br.length)
	defer v.Close()

	first := true
	var sent int64
	for sent < br.length {
		chunk, _, err := v.Next(buf)
		if err == io.EOF {
			break
		}
		if err != nil || len(chunk) == 0 {
			g.abort()
		}
		if cur, serr := g.fs.Stat(path); serr != nil || cur.Version != fi.Version {
			g.abort()
		}
		if first {
			g.ttfbHist.Observe(int64(time.Since(start)))
			first = false
		}
		if _, werr := w.Write(chunk); werr != nil {
			// Client went away; nothing more to account.
			return
		}
		sent += int64(len(chunk))
		g.bytesCtr.Add(int64(len(chunk)))
	}
	if sent < br.length {
		// The range ended early (truncated under us): never tear.
		g.abort()
	}
	if v.Hits() == 0 && v.Misses() > 0 {
		g.degradeCtr.Inc()
	}
	g.fullHist.Observe(int64(time.Since(start)))
}

// etagMatches reports whether the If-None-Match header value matches
// etag: "*" matches any current representation, otherwise the
// comma-separated list is compared entry by entry. Weak comparison
// (RFC 9110 §8.8.3.2): a W/ prefix on either side is ignored, which is
// correct for If-None-Match's cache-revalidation use.
func etagMatches(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(header, ",") {
		if strings.TrimPrefix(strings.TrimSpace(cand), "W/") == etag {
			return true
		}
	}
	return false
}

// abort cuts the connection without completing the response.
// http.ErrAbortHandler makes net/http drop the connection quietly, which
// a client observes as an unexpected EOF before Content-Length bytes —
// the unambiguous "retry me" signal.
func (g *Gateway) abort() {
	g.abortCtr.Inc()
	panic(http.ErrAbortHandler)
}
