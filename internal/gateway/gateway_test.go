package gateway

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"hfetch/internal/core/placement"
	"hfetch/internal/core/seg"
	"hfetch/internal/core/server"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

const testSeg = 4096

// newTestNode builds a started single-node server with telemetry and a
// gateway over it.
func newTestNode(t *testing.T, cfg Config) (*Gateway, *server.Server, *pfs.FS) {
	t.Helper()
	fs := pfs.New(nil)
	ram := tiers.NewStore("ram", 4<<20, nil)
	hier := tiers.NewHierarchy(ram)
	stats, maps := server.NewLocalMaps("gw0")
	reg := telemetry.NewRegistry()
	reg.SetTimeSampling(1)
	srv, err := server.New(server.Config{
		Node:        "gw0",
		SegmentSize: testSeg,
		Engine:      placement.Config{UpdateThreshold: placement.High},
		Telemetry:   reg,
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	cfg.Telemetry = reg
	g := New(srv, cfg)
	t.Cleanup(g.Close)
	return g, srv, fs
}

// expected reads the reference content of file straight from the PFS.
func expected(t *testing.T, fs *pfs.FS, name string, size int64) []byte {
	t.Helper()
	ref := make([]byte, size)
	if _, _, err := fs.ReadAt(name, 0, ref); err != nil {
		t.Fatal(err)
	}
	return ref
}

func TestGetFullFile(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	const size = 3*testSeg + 100
	if err := fs.Create("data/a", size); err != nil {
		t.Fatal(err)
	}
	ref := expected(t, fs, "data/a", size)

	ts := httptest.NewServer(g)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/files/data/a")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ar := resp.Header.Get("Accept-Ranges"); ar != "bytes" {
		t.Fatalf("Accept-Ranges = %q", ar)
	}
	if et := resp.Header.Get("ETag"); et != `"g0"` {
		t.Fatalf("ETag = %q, want %q", et, `"g0"`)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, ref) {
		t.Fatal("body does not match PFS reference content")
	}
}

func TestGetRangeVariants(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	const size = int64(10000)
	if err := fs.Create("data/r", size); err != nil {
		t.Fatal(err)
	}
	ref := expected(t, fs, "data/r", size)
	ts := httptest.NewServer(g)
	defer ts.Close()

	cases := []struct {
		name, rng  string
		wantStatus int
		wantCR     string
		wantStart  int64
		wantLen    int64
	}{
		{"closed", "bytes=100-199", 206, "bytes 100-199/10000", 100, 100},
		{"open-ended", "bytes=9900-", 206, "bytes 9900-9999/10000", 9900, 100},
		{"suffix", "bytes=-100", 206, "bytes 9900-9999/10000", 9900, 100},
		{"suffix-over-size", "bytes=-20000", 206, "bytes 0-9999/10000", 0, size},
		{"end-clamped", "bytes=9990-10005", 206, "bytes 9990-9999/10000", 9990, 10},
		{"beyond-eof", "bytes=10000-", 416, "bytes */10000", 0, 0},
		{"far-beyond-eof", "bytes=99999-100000", 416, "bytes */10000", 0, 0},
		{"suffix-zero", "bytes=-0", 416, "bytes */10000", 0, 0},
		{"multi-range", "bytes=0-1,5-6", 416, "bytes */10000", 0, 0},
		{"malformed", "bytes=abc-def", 200, "", 0, size},
		{"not-bytes", "chapters=1-2", 200, "", 0, size},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, _ := http.NewRequest("GET", ts.URL+"/files/data/r", nil)
			req.Header.Set("Range", tc.rng)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if cr := resp.Header.Get("Content-Range"); cr != tc.wantCR {
				t.Fatalf("Content-Range = %q, want %q", cr, tc.wantCR)
			}
			if tc.wantStatus >= 400 {
				return
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[tc.wantStart : tc.wantStart+tc.wantLen]
			if !bytes.Equal(body, want) {
				t.Fatalf("body mismatch for %s", tc.rng)
			}
		})
	}
}

func TestZeroLengthFile(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	if err := fs.Create("data/empty", 0); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/files/data/empty")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.ContentLength != 0 {
		t.Fatalf("plain GET: status=%d len=%d, want 200/0", resp.StatusCode, resp.ContentLength)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/files/data/empty", nil)
	req.Header.Set("Range", "bytes=0-")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 416 {
		t.Fatalf("ranged GET on empty file: status = %d, want 416", resp.StatusCode)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes */0" {
		t.Fatalf("Content-Range = %q, want %q", cr, "bytes */0")
	}
}

func TestHeadAndNotFound(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	if err := fs.Create("data/h", 5000); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	resp, err := http.Head(ts.URL + "/files/data/h")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || resp.ContentLength != 5000 {
		t.Fatalf("HEAD: status=%d len=%d, want 200/5000", resp.StatusCode, resp.ContentLength)
	}

	resp, err = http.Get(ts.URL + "/files/no/such")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("missing file: status = %d, want 404", resp.StatusCode)
	}
}

func TestIfRangeMismatchServesFull(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	if err := fs.Create("data/ir", 8000); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/files/data/ir", nil)
	req.Header.Set("Range", "bytes=0-99")
	req.Header.Set("If-Range", `"g42"`) // stale validator
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.ContentLength != 8000 {
		t.Fatalf("stale If-Range: status=%d len=%d, want full 200/8000", resp.StatusCode, resp.ContentLength)
	}

	req.Header.Set("If-Range", `"g0"`) // current validator
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 206 {
		t.Fatalf("current If-Range: status = %d, want 206", resp2.StatusCode)
	}
}

// writeTrigger bumps the file generation the moment the first body
// chunk is written, so the next chunk's generation check must abort.
type writeTrigger struct {
	*httptest.ResponseRecorder
	onFirst func()
	fired   bool
}

func (w *writeTrigger) Write(p []byte) (int, error) {
	if !w.fired {
		w.fired = true
		w.onFirst()
	}
	return w.ResponseRecorder.Write(p)
}

func TestMidStreamWriteAbortsConsistently(t *testing.T) {
	g, _, fs := newTestNode(t, Config{ChunkBytes: testSeg})
	const size = 4 * testSeg
	if err := fs.Create("data/w", size); err != nil {
		t.Fatal(err)
	}
	ref := expected(t, fs, "data/w", size) // generation 0

	w := &writeTrigger{
		ResponseRecorder: httptest.NewRecorder(),
		onFirst: func() {
			if _, err := fs.Write("data/w", 0, 1); err != nil {
				t.Error(err)
			}
		},
	}
	req := httptest.NewRequest("GET", "/files/data/w", nil)
	func() {
		defer func() {
			if r := recover(); r != http.ErrAbortHandler {
				t.Fatalf("recovered %v, want http.ErrAbortHandler", r)
			}
		}()
		g.ServeHTTP(w, req)
		t.Fatal("handler completed; want mid-stream abort")
	}()

	body := w.Body.Bytes()
	if len(body) == 0 || len(body) >= size {
		t.Fatalf("got %d body bytes, want a strict non-empty prefix of %d", len(body), size)
	}
	// Every byte the client received must be generation 0: the response
	// never splices the new generation in.
	if !bytes.Equal(body, ref[:len(body)]) {
		t.Fatal("response mixed file generations")
	}
	if got := g.abortCtr.Value(); got != 1 {
		t.Fatalf("aborted counter = %d, want 1", got)
	}
}

func TestStreamDetectionDrivesPrefetch(t *testing.T) {
	g, srv, fs := newTestNode(t, Config{StreamDetect: true, StreamLookahead: 4})
	const size = 32 * testSeg
	if err := fs.Create("data/s", size); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	// Three back-to-back sequential ranges from one client: the second
	// establishes the stream, so hints must flow.
	for i := int64(0); i < 3; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/files/data/s", nil)
		req.Header.Set("Range",
			"bytes="+itoa(i*testSeg)+"-"+itoa((i+1)*testSeg-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 206 {
			t.Fatalf("status = %d, want 206", resp.StatusCode)
		}
	}
	if g.streamCtr.Value() == 0 {
		t.Fatal("no stream detected after sequential ranges")
	}
	if g.hintCtr.Value() == 0 {
		t.Fatal("no readahead hints posted for the detected stream")
	}
	srv.Flush()
	// A hinted segment ahead of the last read must now be resident.
	buf := make([]byte, testSeg)
	hit := false
	for idx := int64(3); idx < 8; idx++ {
		if _, _, ok := srv.ReadPrefetched(seg.ID{File: "data/s", Index: idx}, 0, buf); ok {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("no hinted segment was prefetched")
	}
}

func TestStreamDetectOffPostsNoHints(t *testing.T) {
	g, _, fs := newTestNode(t, Config{StreamDetect: false})
	if err := fs.Create("data/off", 16*testSeg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()
	for i := int64(0); i < 3; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/files/data/off", nil)
		req.Header.Set("Range", "bytes="+itoa(i*testSeg)+"-"+itoa((i+1)*testSeg-1))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if n := g.hintCtr.Value(); n != 0 {
		t.Fatalf("hints posted with stream_detect off: %d", n)
	}
}

func TestGatewayEpochsReleasedOnClose(t *testing.T) {
	g, srv, fs := newTestNode(t, Config{})
	if err := fs.Create("data/e", 1000); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/files/data/e")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if !srv.Registry().Watched("data/e") {
		t.Fatal("served file is not watched")
	}
	g.Close()
	if srv.Registry().Watched("data/e") {
		t.Fatal("watch survived gateway Close")
	}
	resp, err = http.Get(ts.URL + "/files/data/e")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("request after Close: status = %d, want 503", resp.StatusCode)
	}
}

func TestParseRangeTable(t *testing.T) {
	cases := []struct {
		h        string
		size     int64
		mode     int
		start, n int64
	}{
		{"", 100, rangeFull, 0, 100},
		{"bytes=0-49", 100, rangePartial, 0, 50},
		{"bytes=50-", 100, rangePartial, 50, 50},
		{"bytes=-10", 100, rangePartial, 90, 10},
		{"bytes=-200", 100, rangePartial, 0, 100},
		{"bytes=0-199", 100, rangePartial, 0, 100},
		{"bytes=100-", 100, rangeUnsatisfiable, 0, 0},
		{"bytes=-0", 100, rangeUnsatisfiable, 0, 0},
		{"bytes=0-0", 0, rangeUnsatisfiable, 0, 0},
		{"bytes=-5", 0, rangeUnsatisfiable, 0, 0},
		{"bytes=0-1,3-4", 100, rangeUnsatisfiable, 0, 0},
		{"bytes=5-2", 100, rangeFull, 0, 100},
		{"bytes=x-y", 100, rangeFull, 0, 100},
		{"bites=0-1", 100, rangeFull, 0, 100},
		{"bytes=", 100, rangeFull, 0, 100},
	}
	for _, tc := range cases {
		br, mode := parseRange(tc.h, tc.size)
		if mode != tc.mode {
			t.Errorf("parseRange(%q, %d) mode = %d, want %d", tc.h, tc.size, mode, tc.mode)
			continue
		}
		if mode == rangeUnsatisfiable {
			continue
		}
		if br.start != tc.start || br.length != tc.n {
			t.Errorf("parseRange(%q, %d) = [%d,+%d), want [%d,+%d)",
				tc.h, tc.size, br.start, br.length, tc.start, tc.n)
		}
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func TestConditionalGetNotModified(t *testing.T) {
	g, _, fs := newTestNode(t, Config{})
	const size = int64(2 * testSeg)
	if err := fs.Create("data/cg", size); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	defer ts.Close()

	get := func(inm string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/files/data/cg", nil)
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Prime: learn the current ETag.
	resp := get("")
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag != `"g0"` {
		t.Fatalf("ETag = %q, want %q", etag, `"g0"`)
	}

	// Matching validator (exact, list, wildcard): 304 with no body.
	for _, inm := range []string{etag, `"stale", ` + etag, "*"} {
		resp = get(inm)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: status = %d, want 304", inm, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Fatalf("If-None-Match %q: 304 carried %d body bytes", inm, len(body))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Fatalf("304 ETag = %q, want %q", got, etag)
		}
	}

	// Stale validator: full response.
	resp = get(`"g999"`)
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int64(len(body)) != size {
		t.Fatalf("stale validator: status = %d, body = %d bytes; want 200, %d",
			resp.StatusCode, len(body), size)
	}

	// A write bumps the generation: the old validator no longer matches.
	if _, err := fs.Write("data/cg", 0, size); err != nil {
		t.Fatal(err)
	}
	resp = get(etag)
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int64(len(body)) != size {
		t.Fatalf("post-write revalidation: status = %d, body = %d bytes; want 200, %d",
			resp.StatusCode, len(body), size)
	}
	if got := resp.Header.Get("ETag"); got != `"g1"` {
		t.Fatalf("post-write ETag = %q, want %q", got, `"g1"`)
	}
}
