package gateway

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// qos is the gateway's admission controller: a global inflight cap, a
// per-client inflight cap, and a per-tenant token bucket with a bounded
// wait. Buckets pre-charge: an admitted-with-wait request takes its
// token immediately (driving the bucket negative), so concurrent
// requests can never collectively overdraw the rate — over any window T
// a tenant is admitted at most rate·T + burst requests, no matter how
// many goroutines race the bucket.
type qos struct {
	cfg Config

	inflight atomic.Int64

	mu      sync.Mutex
	tenants map[string]*bucket
	clients map[string]int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// admission is the outcome of one admit call.
type admission struct {
	ok bool
	// wait is the bounded pacing delay the caller must sleep before
	// serving (already charged against the bucket).
	wait time.Duration
	// reason and retryAfter are set when !ok: the shed cause for
	// telemetry and the Retry-After header value in whole seconds.
	reason     string
	retryAfter int
}

func newQOS(cfg Config) *qos {
	return &qos{
		cfg:     cfg,
		tenants: make(map[string]*bucket),
		clients: make(map[string]int),
	}
}

func (q *qos) inflightNow() int64 { return q.inflight.Load() }

// admit decides whether to serve a request. On ok the caller MUST call
// release with the same identities when the request finishes.
func (q *qos) admit(tenant, client string) admission {
	if n := q.inflight.Add(1); n > int64(q.cfg.MaxInflight) {
		q.inflight.Add(-1)
		return admission{reason: "max_inflight", retryAfter: 1}
	}
	q.mu.Lock()
	if q.clients[client] >= q.cfg.ClientInflight {
		q.mu.Unlock()
		q.inflight.Add(-1)
		return admission{reason: "client_inflight", retryAfter: 1}
	}
	q.clients[client]++
	var wait time.Duration
	if q.cfg.TenantRPS > 0 {
		b := q.tenants[tenant]
		now := time.Now()
		if b == nil {
			b = &bucket{tokens: q.cfg.TenantBurst, last: now}
			q.tenants[tenant] = b
		}
		b.tokens += now.Sub(b.last).Seconds() * q.cfg.TenantRPS
		b.last = now
		if b.tokens > q.cfg.TenantBurst {
			b.tokens = q.cfg.TenantBurst
		}
		b.tokens-- // pre-charge, possibly into debt
		if b.tokens < 0 {
			need := time.Duration(-b.tokens / q.cfg.TenantRPS * float64(time.Second))
			if need > q.cfg.AdmitWait {
				b.tokens++ // undo: this request never runs
				q.clients[client]--
				if q.clients[client] <= 0 {
					delete(q.clients, client)
				}
				q.mu.Unlock()
				q.inflight.Add(-1)
				return admission{reason: "tenant_rps",
					retryAfter: int(math.Ceil(need.Seconds()))}
			}
			wait = need
		}
	}
	q.mu.Unlock()
	return admission{ok: true, wait: wait}
}

// release returns the request's inflight slots.
func (q *qos) release(tenant, client string) {
	_ = tenant // tokens were charged at admit; only slots return
	q.mu.Lock()
	q.clients[client]--
	if q.clients[client] <= 0 {
		delete(q.clients, client)
	}
	q.mu.Unlock()
	q.inflight.Add(-1)
}
