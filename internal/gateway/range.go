package gateway

import (
	"strconv"
	"strings"
)

// byteRange is a half-open slice [start, start+length) of a file.
type byteRange struct {
	start  int64
	length int64
}

// Range parse outcomes.
const (
	// rangeFull: no usable Range header — serve the whole file with 200.
	// Malformed headers land here too: RFC 9110 says an invalid Range
	// MUST be ignored, which conveniently keeps curl typos working.
	rangeFull = iota
	// rangePartial: serve byteRange with 206.
	rangePartial
	// rangeUnsatisfiable: 416 with Content-Range: bytes */size.
	rangeUnsatisfiable
)

// parseRange interprets a Range header against a resource of the given
// size. Multi-range requests are policy-rejected with 416: coalescing
// multipart/byteranges responses buys nothing over issuing the ranges as
// separate requests, and single-range responses keep the streaming path
// allocation-free.
func parseRange(h string, size int64) (byteRange, int) {
	full := byteRange{start: 0, length: size}
	if h == "" {
		return full, rangeFull
	}
	const prefix = "bytes="
	if !strings.HasPrefix(h, prefix) {
		return full, rangeFull
	}
	spec := strings.TrimSpace(h[len(prefix):])
	if spec == "" {
		return full, rangeFull
	}
	if strings.Contains(spec, ",") {
		return byteRange{}, rangeUnsatisfiable
	}
	if strings.HasPrefix(spec, "-") {
		// Suffix range: the final n bytes.
		n, err := parseOff(spec[1:])
		if err != nil {
			return full, rangeFull
		}
		if n == 0 || size == 0 {
			return byteRange{}, rangeUnsatisfiable
		}
		if n > size {
			n = size
		}
		return byteRange{start: size - n, length: n}, rangePartial
	}
	first, rest, ok := strings.Cut(spec, "-")
	if !ok {
		return full, rangeFull
	}
	a, err := parseOff(first)
	if err != nil {
		return full, rangeFull
	}
	if a >= size {
		// Includes every valid spec against a zero-length file.
		return byteRange{}, rangeUnsatisfiable
	}
	if rest == "" {
		// Open-ended: a through EOF.
		return byteRange{start: a, length: size - a}, rangePartial
	}
	b, err := parseOff(rest)
	if err != nil || a > b {
		return full, rangeFull
	}
	if b >= size {
		b = size - 1
	}
	return byteRange{start: a, length: b - a + 1}, rangePartial
}

// parseOff parses a non-negative decimal byte offset.
func parseOff(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil || v < 0 {
		if err == nil {
			err = strconv.ErrRange
		}
		return 0, err
	}
	return v, nil
}
