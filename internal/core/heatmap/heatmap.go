// Package heatmap implements HFetch's file access heatmaps. A heatmap
// records, per file segment, the score statistics the auditor gathered
// during a prefetching epoch. Heatmaps can be stored alongside the raw
// files (enriched metafiles) when the file is closed and reloaded when it
// is reopened, so a later epoch — possibly a different application in the
// workflow — starts with the previous access profile instead of cold
// state. This is optional for HFetch (unlike history-based prefetchers)
// but lets the placement engine pre-place hot segments *before* the first
// read of an epoch: the server-push moment.
package heatmap

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Entry is one segment's record in a heatmap.
type Entry struct {
	Index int64
	// Score is the segment score at capture time.
	Score float64
	// K is the access count within the epoch.
	K int64
	// Refs is the reference count (n of Equation 1).
	Refs int64
	// Succ is the segment observed to follow this one, -1 when unknown.
	Succ int64
}

// Heatmap is a file's access profile.
type Heatmap struct {
	File       string
	SegSize    int64
	CapturedAt time.Time
	Entries    []Entry
}

// New creates an empty heatmap for file with the given segment size.
func New(file string, segSize int64) *Heatmap {
	return &Heatmap{File: file, SegSize: segSize}
}

// Add appends an entry. Entries may be added in any order.
func (h *Heatmap) Add(e Entry) { h.Entries = append(h.Entries, e) }

// Len returns the number of entries.
func (h *Heatmap) Len() int { return len(h.Entries) }

// Sort orders entries by descending score (ties by ascending index).
func (h *Heatmap) Sort() {
	sort.Slice(h.Entries, func(i, j int) bool {
		if h.Entries[i].Score != h.Entries[j].Score {
			return h.Entries[i].Score > h.Entries[j].Score
		}
		return h.Entries[i].Index < h.Entries[j].Index
	})
}

// TopN returns the n hottest entries (after sorting a copy).
func (h *Heatmap) TopN(n int) []Entry {
	cp := make([]Entry, len(h.Entries))
	copy(cp, h.Entries)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Score != cp[j].Score {
			return cp[i].Score > cp[j].Score
		}
		return cp[i].Index < cp[j].Index
	})
	if n > len(cp) {
		n = len(cp)
	}
	return cp[:n]
}

// Merge folds old into h: entries present only in old are adopted with
// their scores decayed by decay (0..1); entries present in both keep h's
// statistics but inherit old's successor link when h has none. Merge
// implements "new accesses evolve the heatmap further".
func (h *Heatmap) Merge(old *Heatmap, decay float64) {
	if old == nil {
		return
	}
	if decay < 0 {
		decay = 0
	}
	if decay > 1 {
		decay = 1
	}
	byIdx := make(map[int64]int, len(h.Entries))
	for i, e := range h.Entries {
		byIdx[e.Index] = i
	}
	for _, oe := range old.Entries {
		if i, ok := byIdx[oe.Index]; ok {
			if h.Entries[i].Succ < 0 && oe.Succ >= 0 {
				h.Entries[i].Succ = oe.Succ
			}
			continue
		}
		oe.Score *= decay
		h.Entries = append(h.Entries, oe)
		byIdx[oe.Index] = len(h.Entries) - 1
	}
}

// Store persists heatmaps in a directory, one gob file per target file,
// keeping only the latest version (the prototype behaviour described in
// the paper).
type Store struct {
	dir string
}

// NewStore creates (if needed) and wraps a heatmap directory.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("heatmap: mkdir %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) pathFor(file string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.heat", fnv(file)))
}

// Save writes (replacing) the heatmap for its file.
func (s *Store) Save(h *Heatmap) error {
	h.CapturedAt = time.Now()
	tmp := s.pathFor(h.File) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("heatmap: create: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(h); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("heatmap: encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.pathFor(h.File))
}

// Load returns the stored heatmap for file, or (nil, nil) when none
// exists.
func (s *Store) Load(file string) (*Heatmap, error) {
	f, err := os.Open(s.pathFor(file))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("heatmap: open: %w", err)
	}
	defer f.Close()
	var h Heatmap
	if err := gob.NewDecoder(f).Decode(&h); err != nil {
		return nil, fmt.Errorf("heatmap: decode: %w", err)
	}
	if h.File != file {
		// Hash collision between file names; treat as absent.
		return nil, nil
	}
	return &h, nil
}

// Delete removes the stored heatmap for file (used when the workflow
// ends).
func (s *Store) Delete(file string) error {
	err := os.Remove(s.pathFor(file))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func fnv(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
