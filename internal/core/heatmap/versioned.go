package heatmap

import (
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"sort"
)

// VersionedStore implements the paper's envisioned extension ("we
// envision HFetch to be able to maintain multiple versions of a file
// heatmap and select the best fit to the current epoch"): instead of
// keeping only the latest heatmap per file, it retains up to MaxVersions
// and, once an epoch has observed a few accesses, selects the stored
// version whose shape most resembles them.
//
// Similarity is cosine similarity between score vectors over the union
// of segment indices — scale-invariant, so a heatmap captured from a
// short epoch still matches a longer epoch with the same access shape.
type VersionedStore struct {
	dir         string
	maxVersions int
}

// NewVersionedStore wraps a directory, retaining up to maxVersions
// heatmaps per file (default 4).
func NewVersionedStore(dir string, maxVersions int) (*VersionedStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("heatmap: mkdir %s: %w", dir, err)
	}
	if maxVersions <= 0 {
		maxVersions = 4
	}
	return &VersionedStore{dir: dir, maxVersions: maxVersions}, nil
}

func (s *VersionedStore) pathFor(file string, version int) string {
	return fmt.Sprintf("%s/%016x.v%d.heat", s.dir, fnv(file), version)
}

// versionsOf lists existing version slots for file, ascending.
func (s *VersionedStore) versionsOf(file string) []int {
	var out []int
	for v := 0; v < s.maxVersions; v++ {
		if _, err := os.Stat(s.pathFor(file, v)); err == nil {
			out = append(out, v)
		}
	}
	return out
}

// Save appends h as a new version, evicting the oldest when the slot
// budget is exhausted (versions shift down).
func (s *VersionedStore) Save(h *Heatmap) error {
	vs := s.versionsOf(h.File)
	if len(vs) >= s.maxVersions {
		// Shift everything down one slot, dropping version 0.
		for v := 1; v < s.maxVersions; v++ {
			os.Rename(s.pathFor(h.File, v), s.pathFor(h.File, v-1)) //nolint:errcheck
		}
		return s.writeVersion(h, s.maxVersions-1)
	}
	return s.writeVersion(h, len(vs))
}

func (s *VersionedStore) writeVersion(h *Heatmap, v int) error {
	tmp := s.pathFor(h.File, v) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(h); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, s.pathFor(h.File, v))
}

// Load returns the most recent version, or nil when none exist.
func (s *VersionedStore) Load(file string) (*Heatmap, error) {
	vs := s.versionsOf(file)
	if len(vs) == 0 {
		return nil, nil
	}
	return s.loadVersion(file, vs[len(vs)-1])
}

// Versions returns every stored heatmap for file, oldest first.
func (s *VersionedStore) Versions(file string) ([]*Heatmap, error) {
	var out []*Heatmap
	for _, v := range s.versionsOf(file) {
		h, err := s.loadVersion(file, v)
		if err != nil {
			return nil, err
		}
		if h != nil {
			out = append(out, h)
		}
	}
	return out, nil
}

func (s *VersionedStore) loadVersion(file string, v int) (*Heatmap, error) {
	f, err := os.Open(s.pathFor(file, v))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var h Heatmap
	if err := gob.NewDecoder(f).Decode(&h); err != nil {
		return nil, err
	}
	if h.File != file {
		return nil, nil // hash collision
	}
	return &h, nil
}

// BestFit returns the stored version most similar (cosine similarity of
// score vectors) to the observed early-epoch accesses, together with the
// similarity in [0, 1]. observed maps segment index to an early score or
// access count. With no observations it falls back to the most recent
// version (similarity 0).
func (s *VersionedStore) BestFit(file string, observed map[int64]float64) (*Heatmap, float64, error) {
	versions, err := s.Versions(file)
	if err != nil || len(versions) == 0 {
		return nil, 0, err
	}
	if len(observed) == 0 {
		return versions[len(versions)-1], 0, nil
	}
	best, bestSim := versions[len(versions)-1], -1.0
	for _, h := range versions {
		sim := Similarity(h, observed)
		if sim > bestSim {
			best, bestSim = h, sim
		}
	}
	if bestSim < 0 {
		bestSim = 0
	}
	return best, bestSim, nil
}

// Delete removes every version of file's heatmap.
func (s *VersionedStore) Delete(file string) error {
	var first error
	for _, v := range s.versionsOf(file) {
		if err := os.Remove(s.pathFor(file, v)); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Similarity computes the cosine similarity between a heatmap's score
// vector and an observed index→weight map, over the union of indices.
func Similarity(h *Heatmap, observed map[int64]float64) float64 {
	if h == nil || len(h.Entries) == 0 || len(observed) == 0 {
		return 0
	}
	hv := make(map[int64]float64, len(h.Entries))
	for _, e := range h.Entries {
		hv[e.Index] = e.Score
	}
	idx := make(map[int64]struct{}, len(hv)+len(observed))
	for i := range hv {
		idx[i] = struct{}{}
	}
	for i := range observed {
		idx[i] = struct{}{}
	}
	keys := make([]int64, 0, len(idx))
	for i := range idx {
		keys = append(keys, i)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	var dot, na, nb float64
	for _, i := range keys {
		a, b := hv[i], observed[i]
		dot += a * b
		na += a * a
		nb += b * b
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
