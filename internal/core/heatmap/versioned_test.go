package heatmap

import (
	"math"
	"testing"
)

func mk(file string, scores map[int64]float64) *Heatmap {
	h := New(file, 1024)
	for idx, s := range scores {
		h.Add(Entry{Index: idx, Score: s, Succ: -1})
	}
	return h
}

func TestVersionedSaveLoadLatest(t *testing.T) {
	s, err := NewVersionedStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Save(mk("f", map[int64]float64{0: 1}))
	s.Save(mk("f", map[int64]float64{0: 2}))
	h, err := s.Load("f")
	if err != nil || h == nil {
		t.Fatal(err)
	}
	if h.Entries[0].Score != 2 {
		t.Fatalf("latest version score = %v, want 2", h.Entries[0].Score)
	}
	vs, _ := s.Versions("f")
	if len(vs) != 2 {
		t.Fatalf("versions = %d, want 2", len(vs))
	}
}

func TestVersionedLoadMissing(t *testing.T) {
	s, _ := NewVersionedStore(t.TempDir(), 3)
	h, err := s.Load("nope")
	if err != nil || h != nil {
		t.Fatalf("Load missing = %v %v", h, err)
	}
	if _, _, err := s.BestFit("nope", map[int64]float64{0: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestVersionedEvictsOldest(t *testing.T) {
	s, _ := NewVersionedStore(t.TempDir(), 2)
	s.Save(mk("f", map[int64]float64{0: 1}))
	s.Save(mk("f", map[int64]float64{0: 2}))
	s.Save(mk("f", map[int64]float64{0: 3}))
	vs, _ := s.Versions("f")
	if len(vs) != 2 {
		t.Fatalf("versions = %d, want cap of 2", len(vs))
	}
	if vs[0].Entries[0].Score != 2 || vs[1].Entries[0].Score != 3 {
		t.Fatalf("retention wrong: %v %v", vs[0].Entries[0].Score, vs[1].Entries[0].Score)
	}
}

func TestBestFitSelectsMatchingShape(t *testing.T) {
	s, _ := NewVersionedStore(t.TempDir(), 4)
	// Version A: hot head of the file. Version B: hot tail.
	s.Save(mk("f", map[int64]float64{0: 10, 1: 8, 2: 6}))
	s.Save(mk("f", map[int64]float64{7: 10, 8: 8, 9: 6}))

	// The current epoch starts reading the head: version A must win even
	// though B is more recent.
	best, sim, err := s.BestFit("f", map[int64]float64{0: 1, 1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sim <= 0 {
		t.Fatalf("similarity = %v, want > 0", sim)
	}
	if _, ok := indexScore(best, 0); !ok {
		t.Fatalf("best fit should be the head-hot version, got %+v", best.Entries)
	}

	// Tail accesses pick version B.
	best, _, _ = s.BestFit("f", map[int64]float64{8: 1, 9: 1})
	if _, ok := indexScore(best, 8); !ok {
		t.Fatalf("best fit should be the tail-hot version, got %+v", best.Entries)
	}
}

func TestBestFitNoObservationsFallsBackToLatest(t *testing.T) {
	s, _ := NewVersionedStore(t.TempDir(), 4)
	s.Save(mk("f", map[int64]float64{0: 1}))
	s.Save(mk("f", map[int64]float64{5: 1}))
	best, sim, err := s.BestFit("f", nil)
	if err != nil || best == nil {
		t.Fatal(err)
	}
	if sim != 0 {
		t.Fatalf("similarity without observations = %v, want 0", sim)
	}
	if _, ok := indexScore(best, 5); !ok {
		t.Fatal("fallback must be the most recent version")
	}
}

func TestVersionedDelete(t *testing.T) {
	s, _ := NewVersionedStore(t.TempDir(), 3)
	s.Save(mk("f", map[int64]float64{0: 1}))
	s.Save(mk("f", map[int64]float64{0: 2}))
	if err := s.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if vs, _ := s.Versions("f"); len(vs) != 0 {
		t.Fatalf("versions after delete = %d", len(vs))
	}
}

func TestSimilarityProperties(t *testing.T) {
	h := mk("f", map[int64]float64{0: 3, 1: 4})
	// Identical shape → 1.
	if sim := Similarity(h, map[int64]float64{0: 3, 1: 4}); math.Abs(sim-1) > 1e-12 {
		t.Fatalf("self similarity = %v", sim)
	}
	// Scale invariance.
	if sim := Similarity(h, map[int64]float64{0: 30, 1: 40}); math.Abs(sim-1) > 1e-12 {
		t.Fatalf("scaled similarity = %v", sim)
	}
	// Orthogonal shapes → 0.
	if sim := Similarity(h, map[int64]float64{5: 1}); sim != 0 {
		t.Fatalf("orthogonal similarity = %v", sim)
	}
	// Degenerate inputs.
	if Similarity(nil, map[int64]float64{0: 1}) != 0 || Similarity(h, nil) != 0 {
		t.Fatal("degenerate similarity must be 0")
	}
}

func indexScore(h *Heatmap, idx int64) (float64, bool) {
	for _, e := range h.Entries {
		if e.Index == idx {
			return e.Score, true
		}
	}
	return 0, false
}
