package heatmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSortAndTopN(t *testing.T) {
	h := New("f", 1024)
	h.Add(Entry{Index: 0, Score: 1})
	h.Add(Entry{Index: 1, Score: 5})
	h.Add(Entry{Index: 2, Score: 3})
	top := h.TopN(2)
	if len(top) != 2 || top[0].Index != 1 || top[1].Index != 2 {
		t.Fatalf("TopN = %+v", top)
	}
	h.Sort()
	if h.Entries[0].Index != 1 || h.Entries[2].Index != 0 {
		t.Fatalf("Sort order wrong: %+v", h.Entries)
	}
}

func TestTopNClamps(t *testing.T) {
	h := New("f", 1024)
	h.Add(Entry{Index: 0, Score: 1})
	if got := h.TopN(10); len(got) != 1 {
		t.Fatalf("TopN(10) = %d entries, want 1", len(got))
	}
}

func TestTopNTieBreaksByIndex(t *testing.T) {
	h := New("f", 1024)
	h.Add(Entry{Index: 5, Score: 2})
	h.Add(Entry{Index: 1, Score: 2})
	top := h.TopN(2)
	if top[0].Index != 1 || top[1].Index != 5 {
		t.Fatalf("tie break wrong: %+v", top)
	}
}

func TestMergeAdoptsOldWithDecay(t *testing.T) {
	cur := New("f", 1024)
	cur.Add(Entry{Index: 0, Score: 4, Succ: -1})
	old := New("f", 1024)
	old.Add(Entry{Index: 0, Score: 100, Succ: 1}) // present in both
	old.Add(Entry{Index: 7, Score: 10, Succ: -1}) // only in old
	cur.Merge(old, 0.5)
	if cur.Len() != 2 {
		t.Fatalf("merged len = %d, want 2", cur.Len())
	}
	byIdx := map[int64]Entry{}
	for _, e := range cur.Entries {
		byIdx[e.Index] = e
	}
	if byIdx[0].Score != 4 {
		t.Fatalf("existing entry score changed: %v", byIdx[0].Score)
	}
	if byIdx[0].Succ != 1 {
		t.Fatalf("successor not inherited: %v", byIdx[0].Succ)
	}
	if byIdx[7].Score != 5 {
		t.Fatalf("old-only entry not decayed: %v", byIdx[7].Score)
	}
}

func TestMergeNilAndClampDecay(t *testing.T) {
	cur := New("f", 1024)
	cur.Add(Entry{Index: 0, Score: 1})
	cur.Merge(nil, 0.5) // no-op
	old := New("f", 1024)
	old.Add(Entry{Index: 1, Score: 10})
	cur.Merge(old, 7) // decay clamps to 1
	for _, e := range cur.Entries {
		if e.Index == 1 && e.Score != 10 {
			t.Fatalf("clamped decay wrong: %v", e.Score)
		}
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h := New("data/file1.fits", 1<<20)
	h.Add(Entry{Index: 3, Score: 2.5, K: 4, Refs: 2, Succ: 4})
	if err := st.Save(h); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("data/file1.fits")
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Len() != 1 || got.Entries[0] != h.Entries[0] {
		t.Fatalf("Load = %+v", got)
	}
	if got.SegSize != 1<<20 {
		t.Fatalf("SegSize = %d", got.SegSize)
	}
}

func TestStoreLoadMissing(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	got, err := st.Load("never-saved")
	if err != nil || got != nil {
		t.Fatalf("Load missing = %v %v, want nil nil", got, err)
	}
}

func TestStoreKeepsLatestOnly(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	h1 := New("f", 1024)
	h1.Add(Entry{Index: 0, Score: 1})
	st.Save(h1)
	h2 := New("f", 1024)
	h2.Add(Entry{Index: 0, Score: 9})
	h2.Add(Entry{Index: 1, Score: 2})
	st.Save(h2)
	got, _ := st.Load("f")
	if got.Len() != 2 || got.Entries[0].Score != 9 {
		t.Fatalf("latest version not kept: %+v", got)
	}
}

func TestStoreDelete(t *testing.T) {
	st, _ := NewStore(t.TempDir())
	h := New("f", 1024)
	st.Save(h)
	if err := st.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Load("f"); got != nil {
		t.Fatal("heatmap must be gone after Delete")
	}
	if err := st.Delete("f"); err != nil {
		t.Fatal("double delete must be a no-op")
	}
}

// Property: merge is idempotent — merging the same old map twice adds
// nothing the second time.
func TestMergeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cur := New("f", 1024)
		old := New("f", 1024)
		for i := 0; i < rng.Intn(20); i++ {
			old.Add(Entry{Index: int64(rng.Intn(30)), Score: rng.Float64() * 10, Succ: -1})
		}
		cur.Merge(old, 0.7)
		n := cur.Len()
		cur.Merge(old, 0.7)
		return cur.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
