package server

import (
	"io"
	"sync"

	"hfetch/internal/core/seg"
	"hfetch/internal/tiers"
)

// RangeView is a pinned, vectored window over one byte range of a file.
// Opening it resolves every covered segment against the local hierarchy
// under ONE lock acquisition per tier (tiers.Store.ReadVec) and pins the
// resident payloads, so subsequent Next calls serve tier hits straight
// from the pinned buffers — by reference, zero copies — while misses
// fall back to the usual prefetched-read path (including the stall/
// rescue wait on an in-flight mover fetch) and, last, the PFS.
//
// Buffer ownership: the view holds one reference per pinned segment
// from open to Close. Eviction, demotion or an invalidating write that
// races the view merely drops the store's reference — the bytes the
// view is serving stay valid until Close releases them. Views are
// pooled; a Close'd view must not be touched again.
type RangeView struct {
	s    *Server
	file string
	size int64

	pos   int64 // absolute cursor
	end   int64 // absolute exclusive range end (clipped to size)
	first int64 // segment index of ids[0]

	ids    []seg.ID
	bufs   []*tiers.Buf // pinned payloads aligned with ids; nil = not resident
	tierOf []string     // serving tier per pinned entry
	served []bool       // hit accounting done for this entry

	scratchIDs  []seg.ID
	scratchBufs []*tiers.Buf
	scratchPos  []int

	hits      int
	misses    int
	zero      int64 // bytes served by reference
	truncated bool  // short PFS read observed: the range ends early
}

// viewPool recycles RangeViews (with their segment-table slices) so the
// per-request view costs no steady-state allocations.
var viewPool = sync.Pool{New: func() any { return new(RangeView) }}

// OpenRangeView pins the resident segments covering want bytes of file
// at offset off, one vectored read per tier. size is the caller's
// pinned view of the file length (normally from the Stat that opened
// the request) so a concurrent truncation cannot over-read. The caller
// must Close the view exactly once, on every path.
func (s *Server) OpenRangeView(file string, size, off, want int64) *RangeView {
	v := viewPool.Get().(*RangeView)
	v.s, v.file, v.size = s, file, size
	v.hits, v.misses, v.zero, v.truncated = 0, 0, 0, false
	if off < 0 || off >= size || want <= 0 {
		v.pos, v.end = 0, 0
		v.resize(0)
		return v
	}
	end := off + want
	if end > size {
		end = size
	}
	v.pos, v.end = off, end
	v.first = s.segr.IndexOf(off)
	n := int(s.segr.IndexOf(end-1) - v.first + 1)
	v.resize(n)
	for i := 0; i < n; i++ {
		v.ids[i] = seg.ID{File: file, Index: v.first + int64(i)}
		v.bufs[i] = nil
		v.tierOf[i] = ""
		v.served[i] = false
	}
	// Pin whatever is resident: one ReadVec — one lock acquisition, one
	// batched device charge — per tier, walking fastest-first so a
	// segment resident twice (transiently, mid-move) is served from the
	// faster copy.
	pinned := 0
	for _, st := range s.hier.Stores() {
		if pinned == n {
			break
		}
		v.scratchIDs = v.scratchIDs[:0]
		v.scratchPos = v.scratchPos[:0]
		v.scratchBufs = v.scratchBufs[:0]
		for i := 0; i < n; i++ {
			if v.bufs[i] == nil {
				v.scratchIDs = append(v.scratchIDs, v.ids[i])
				v.scratchPos = append(v.scratchPos, i)
				v.scratchBufs = append(v.scratchBufs, nil)
			}
		}
		found, _ := st.ReadVec(v.scratchIDs, v.scratchBufs)
		if found == 0 {
			continue
		}
		name := st.Name()
		for k, b := range v.scratchBufs {
			if b != nil {
				i := v.scratchPos[k]
				v.bufs[i] = b
				v.tierOf[i] = name
				pinned++
			}
		}
	}
	return v
}

// Next returns the next run of bytes of the range, at most len(dst)
// long (callers chunk their writes — e.g. for a per-chunk generation
// check — by sizing dst). When pinned is true the chunk aliases a
// pinned tier buffer and dst is untouched: write it out, do not retain
// it past Close. When pinned is false the chunk is dst[:n], filled via
// the prefetched-read or PFS path. io.EOF signals the range (or the
// file, on a short origin read) is exhausted.
//
//hfetch:hotpath
func (v *RangeView) Next(dst []byte) (chunk []byte, pinned bool, err error) {
	if v.truncated || v.pos >= v.end || len(dst) == 0 {
		return nil, false, io.EOF
	}
	s := v.s
	idx := s.segr.IndexOf(v.pos)
	i := int(idx - v.first)
	segStart := idx * s.segr.Size()
	segOff := v.pos - segStart
	cl := v.end - v.pos
	if int64(len(dst)) < cl {
		cl = int64(len(dst))
	}
	if b := v.bufs[i]; b != nil {
		data := b.Bytes()
		if segOff < int64(len(data)) {
			if avail := int64(len(data)) - segOff; cl > avail {
				cl = avail
			}
			if !v.served[i] {
				v.served[i] = true
				v.hits++
				v.accountHit(i, segStart, int64(len(data)))
			}
			v.pos += cl
			v.zero += cl
			s.zeroCopy.Add(cl)
			return data[segOff : segOff+cl], true, nil
		}
		// Pinned payload ends before the cursor (clipped grain): the
		// remainder of this segment is a miss.
	}
	if segEnd := s.segr.RangeOf(v.ids[i], v.size).End(); segEnd-v.pos < cl {
		cl = segEnd - v.pos
	}
	if cl <= 0 {
		return nil, false, io.EOF
	}
	out := dst[:cl]
	if got, _, ok := s.ReadPrefetched(v.ids[i], segOff, out); ok && int64(got) == cl {
		// ReadPrefetched did the hit accounting (it may have stalled for
		// an in-flight fetch and rescued); only the range tally is ours.
		v.hits++
		v.pos += cl
		return out, false, nil
	}
	got, _, rerr := s.fs.ReadAt(v.file, v.pos, out)
	if rerr != nil {
		return nil, false, rerr
	}
	v.misses++
	v.pos += int64(got)
	if int64(got) < cl {
		v.truncated = true
		if got == 0 {
			return nil, false, io.EOF
		}
	}
	return out[:got], false, nil
}

// accountHit performs the server-level hit accounting ReadPrefetched
// would have done, once per pinned segment, charging the clipped extent
// the view will serve from it.
func (v *RangeView) accountHit(i int, segStart, segLen int64) {
	s := v.s
	id := v.ids[i]
	tier := v.tierOf[i]
	lo := segStart
	if v.pos > lo {
		lo = v.pos
	}
	hi := segStart + segLen
	if hi > v.end {
		hi = v.end
	}
	if lc := s.tele.Lifecycle(); lc != nil {
		lc.OnReadHit(id.File, id.Index, tier, false)
	}
	s.iostats.Hit(tier, hi-lo)
	s.hitVec.With(tier).Inc()
}

// Hits returns the per-segment tier-hit count so far.
func (v *RangeView) Hits() int { return v.hits }

// Misses returns the per-segment PFS-fallback count so far.
func (v *RangeView) Misses() int { return v.misses }

// ZeroCopyBytes returns the bytes this view served by reference.
func (v *RangeView) ZeroCopyBytes() int64 { return v.zero }

// Close releases every pinned buffer and recycles the view. Required
// exactly once, on every path; the view and any pinned chunk obtained
// from Next must not be touched afterwards.
func (v *RangeView) Close() {
	for i, b := range v.bufs {
		if b != nil {
			b.Release()
			v.bufs[i] = nil
		}
	}
	for k := range v.scratchBufs {
		v.scratchBufs[k] = nil
	}
	v.s = nil
	viewPool.Put(v)
}

func (v *RangeView) resize(n int) {
	if cap(v.ids) < n {
		v.ids = make([]seg.ID, n)
		v.bufs = make([]*tiers.Buf, n)
		v.tierOf = make([]string, n)
		v.served = make([]bool, n)
		return
	}
	v.ids = v.ids[:n]
	v.bufs = v.bufs[:n]
	v.tierOf = v.tierOf[:n]
	v.served = v.served[:n]
}
