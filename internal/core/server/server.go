// Package server composes the HFetch server that runs on every compute
// node: the hardware monitor (event queue + daemon pool), the file
// segment auditor, the hierarchical data placement engine, the
// data-prefetching I/O clients, and the agent manager that client agents
// talk to. It owns the inotify-emulation watch registry: the first
// opener of a file installs a watch, the last closer removes it, and
// only watched files generate events.
package server

import (
	"bytes"
	"encoding/gob"
	"io"
	"sync"
	"sync/atomic"

	"fmt"
	"hfetch/internal/comm"
	"time"

	"hfetch/internal/core/auditor"
	"hfetch/internal/core/heatmap"
	"hfetch/internal/core/ioclient"
	"hfetch/internal/core/monitor"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/events"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Config configures one HFetch server node.
type Config struct {
	// Node names this server in the cluster (default "node0").
	Node string
	// SegmentSize is the prefetching grain in bytes (default 1 MiB).
	SegmentSize int64
	// Score are the Equation (1) parameters.
	Score score.Params
	// SeqBoost is the sequencing readahead weight (see auditor.Config).
	SeqBoost float64
	// HeatDir, when set, persists per-file heatmaps across epochs.
	HeatDir string
	// Monitor configures the hardware monitor (daemon pool, queue).
	Monitor monitor.Config
	// Engine configures the placement engine (reactiveness, workers).
	Engine placement.Config
	// SharedTiers names tiers whose store is one cluster-wide instance
	// (burst buffers): segments mapped there by any node are read
	// locally instead of through the node-to-node communicator.
	SharedTiers []string
	// FetchWait bounds how long a missing read waits for an in-flight
	// mover fetch of the same segment before falling back to the PFS,
	// avoiding the double-read where a client re-fetches bytes the async
	// mover is already moving. Zero disables the wait; it only has an
	// effect when Engine.Async is set.
	FetchWait time.Duration
	// SweepInterval enables the statistics janitor: every interval,
	// segment records of closed epochs whose score decayed below
	// SweepFloor (default 0.01) and which are not resident anywhere are
	// garbage-collected. Zero disables sweeping.
	SweepInterval time.Duration
	// SweepFloor is the score below which swept records are discarded.
	SweepFloor float64
	// Learner enables the ML scoring extension when non-nil (see
	// score.Learned); one instance may be shared across the servers of a
	// cluster so every node trains the same model.
	Learner *score.Learned
	// Telemetry, when non-nil, is the node's metric registry: the server
	// wires it through the monitor, auditor, placement engine and I/O
	// client, and instruments its own read path. Nil disables all
	// instrumentation at ~zero hot-path cost.
	Telemetry *telemetry.Registry
}

// Server is one node's HFetch server.
type Server struct {
	cfg  Config
	fs   *pfs.FS
	hier *tiers.Hierarchy
	segr *seg.Segmenter

	registry *events.Registry
	aud      *auditor.Auditor
	mon      *monitor.Monitor
	eng      *placement.Engine
	ioc      *ioclient.Client

	shared map[string]bool

	peerMu sync.Mutex
	dialer Dialer
	peers  map[string]comm.Peer

	// remoteReader, when set, replaces the built-in peer read path with a
	// cluster-aware one (single-flight, timeout/backoff, suspect
	// avoidance); see SetRemoteReader.
	remoteReader atomic.Pointer[remoteReaderBox]

	remoteReads  atomic.Int64
	remoteServes atomic.Int64

	sweepStop chan struct{}
	sweepWG   sync.WaitGroup
	swept     atomic.Int64

	// Server-side I/O accounting: every ReadPrefetched outcome, local or
	// on behalf of a remote agent.
	iostats *metrics.IOStats

	// Telemetry handles for the read hot path; nil when disabled.
	tele      *telemetry.Registry
	hitVec    *telemetry.CounterVec
	missCtr   *telemetry.Counter
	readHist  *telemetry.HistVec
	stallHist *telemetry.Histogram

	stalls       atomic.Int64
	stallRescues atomic.Int64
	zeroCopy     atomic.Int64 // payload bytes served by reference from pinned views

	started bool
}

// Dialer reaches peer nodes for remote tier reads.
type Dialer interface {
	Dial(node string) comm.Peer
}

// RemoteReader serves a segment read from a peer node's tier. ok is
// false when the caller must fall back to the PFS (peer dead, suspect,
// timed out, or the mapping is stale). Implemented by cluster.Fetcher.
type RemoteReader interface {
	ReadRemote(node, tier string, id seg.ID, off int64, p []byte) (int, bool)
}

type remoteReaderBox struct{ r RemoteReader }

// SetRemoteReader installs (or, with nil, removes) a cluster-aware
// remote read path; when unset the server uses its built-in direct peer
// request.
func (s *Server) SetRemoteReader(r RemoteReader) {
	if r == nil {
		s.remoteReader.Store(nil)
		return
	}
	s.remoteReader.Store(&remoteReaderBox{r: r})
}

// New builds a server over the shared PFS, this node's tier hierarchy,
// and the cluster's stats/maps hashmaps (single-node callers can pass
// fresh local dhm.Maps; see NewLocalMaps).
func New(cfg Config, fs *pfs.FS, hier *tiers.Hierarchy, stats, maps *dhm.Map) (*Server, error) {
	if cfg.Node == "" {
		cfg.Node = "node0"
	}
	segr := seg.NewSegmenter(cfg.SegmentSize)
	audCfg := auditor.Config{
		Node:      cfg.Node,
		Segmenter: segr,
		Score:     cfg.Score,
		SeqBoost:  cfg.SeqBoost,
		Learner:   cfg.Learner,
		Telemetry: cfg.Telemetry,
	}
	if cfg.HeatDir != "" {
		hs, err := heatmap.NewStore(cfg.HeatDir)
		if err != nil {
			return nil, fmt.Errorf("server: heatmap store: %w", err)
		}
		audCfg.Heatmaps = hs
	}
	aud := auditor.New(audCfg, stats, maps)
	ioc := ioclient.New(fs, segr)
	ioc.SetTelemetry(cfg.Telemetry)
	cfg.Engine.Telemetry = cfg.Telemetry
	eng := placement.New(cfg.Engine, hier, ioc, aud)
	aud.SetSink(eng)
	cfg.Monitor.Telemetry = cfg.Telemetry
	mon := monitor.New(cfg.Monitor, aud, hier)
	shared := make(map[string]bool, len(cfg.SharedTiers))
	for _, n := range cfg.SharedTiers {
		shared[n] = true
	}
	s := &Server{
		cfg:      cfg,
		fs:       fs,
		hier:     hier,
		segr:     segr,
		registry: events.NewRegistry(),
		aud:      aud,
		mon:      mon,
		eng:      eng,
		ioc:      ioc,
		shared:   shared,
		peers:    make(map[string]comm.Peer),
		iostats:  metrics.NewIOStats(),
	}
	if reg := cfg.Telemetry; reg != nil {
		s.tele = reg
		if lc := reg.Lifecycle(); lc != nil {
			lc.SetGrain(segr.Size())
			lc.SetOrigin(cfg.Node)
		}
		s.hitVec = reg.CounterVec("hfetch_tier_read_hits_total", "segment reads served from the tier", "tier")
		s.missCtr = reg.Counter("hfetch_read_misses_total", "segment reads that fell back to the PFS")
		s.readHist = reg.HistVec("hfetch_tier_read_nanos", "prefetched-read latency by serving tier in nanoseconds", "tier")
		s.stallHist = reg.Histogram("hfetch_read_stall_nanos", "time reads blocked waiting for an in-flight mover fetch")
		reg.CounterFunc("hfetch_read_stalls_total", "reads that waited on an in-flight mover fetch", s.stalls.Load)
		reg.CounterFunc("hfetch_read_stall_rescues_total", "stalled reads served from a tier after the fetch landed", s.stallRescues.Load)
		reg.CounterFunc("hfetch_remote_reads_total", "segment reads issued to peer nodes", s.remoteReads.Load)
		reg.CounterFunc("hfetch_remote_serves_total", "segment reads served for peer nodes", s.remoteServes.Load)
		reg.CounterFunc("hfetch_swept_records_total", "statistics records garbage-collected by the janitor", s.swept.Load)
		reg.CounterFunc("hfetch_read_zero_copy_total", "payload bytes served by reference from pinned tier buffers", s.zeroCopy.Load)
		reg.CounterFunc("hfetch_slab_hits_total", "segment buffers served from the slab free lists", tiers.SlabHits)
		reg.CounterFunc("hfetch_slab_misses_total", "slab requests that fell back to a fresh allocation", tiers.SlabMisses)
		reg.CounterFunc("hfetch_slab_frees_total", "segment buffers returned to the slab free lists", tiers.SlabFrees)
		reg.GaugeFunc("hfetch_watched_files", "files with an installed watch", func() int64 {
			return int64(s.registry.Len())
		})
		for _, st := range hier.Stores() {
			st := st
			reg.GaugeFunc("hfetch_tier_capacity_bytes", "tier cache capacity", func() int64 { return st.Capacity() }, "tier", st.Name())
			reg.GaugeFunc("hfetch_tier_used_bytes", "tier bytes resident", func() int64 { return st.Used() }, "tier", st.Name())
			reg.GaugeFunc("hfetch_tier_segments", "segments resident in the tier", func() int64 { return int64(st.Len()) }, "tier", st.Name())
		}
	}
	return s, nil
}

// NewLocalMaps returns fresh single-node stats and mapping hashmaps for
// standalone servers.
func NewLocalMaps(node string) (stats, maps *dhm.Map) {
	stats = dhm.New(dhm.Config{Name: "hfetch-stats", Self: node}, nil)
	maps = dhm.New(dhm.Config{Name: "hfetch-maps", Self: node}, nil)
	return stats, maps
}

// NewPersistentMaps returns single-node hashmaps backed by a write-ahead
// log at walPath: segment statistics and mappings survive daemon
// restarts and power-downs (the fault-tolerance property the paper's
// distributed hashmap provides). Existing log contents are replayed
// into the maps before they are returned. Note that mappings restored
// this way are advisory: tier *payloads* are volatile, so stale
// mappings simply miss and fall back to the PFS.
func NewPersistentMaps(node, walPath string) (stats, maps *dhm.Map, wal *dhm.WAL, err error) {
	state, rerr := dhm.Replay(walPath)
	wal, err = dhm.OpenWAL(walPath)
	if err != nil {
		return nil, nil, nil, err
	}
	stats = dhm.New(dhm.Config{Name: "hfetch-stats", Self: node, WAL: wal}, nil)
	maps = dhm.New(dhm.Config{Name: "hfetch-maps", Self: node, WAL: wal}, nil)
	if rerr == nil {
		stats.Restore(state)
		// Mappings are NOT restored: they point at volatile tier
		// payloads that did not survive the restart.
	}
	return stats, maps, wal, nil
}

// NewClusterMaps returns the stats and mapping hashmaps for a cluster
// member: both register their operation handlers on the peer-facing mux
// and reach remote owners through dialer. Membership starts as just
// this node — the cluster fabric grows it via Rebalance on view
// changes. When walPath is non-empty the maps are WAL-backed and
// segment statistics are replayed before rejoining (mappings are not:
// they point at volatile tier payloads that did not survive the
// restart).
func NewClusterMaps(node, walPath string, dialer dhm.Dialer, mux *comm.Mux) (stats, maps *dhm.Map, wal *dhm.WAL, err error) {
	var state map[string]map[string]any
	if walPath != "" {
		var rerr error
		state, rerr = dhm.Replay(walPath)
		wal, err = dhm.OpenWAL(walPath)
		if err != nil {
			return nil, nil, nil, err
		}
		if rerr != nil {
			state = nil
		}
	}
	self := []string{node}
	stats = dhm.New(dhm.Config{Name: "hfetch-stats", Self: node, Nodes: self, Dialer: dialer, WAL: wal}, mux)
	maps = dhm.New(dhm.Config{Name: "hfetch-maps", Self: node, Nodes: self, Dialer: dialer, WAL: wal}, mux)
	if state != nil {
		stats.Restore(state)
	}
	return stats, maps, wal, nil
}

// Start launches the monitor daemons, the placement engine, and (when
// configured) the statistics janitor.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	s.mon.Start()
	s.eng.Start()
	if s.cfg.SweepInterval > 0 {
		s.sweepStop = make(chan struct{})
		s.sweepWG.Add(1)
		go s.janitor()
	}
}

func (s *Server) janitor() {
	defer s.sweepWG.Done()
	floor := s.cfg.SweepFloor
	if floor <= 0 {
		floor = 0.01
	}
	ticker := time.NewTicker(s.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.sweepStop:
			return
		case <-ticker.C:
			s.swept.Add(int64(s.aud.Sweep(time.Now(), floor)))
		}
	}
}

// Swept returns the cumulative count of garbage-collected stat records.
func (s *Server) Swept() int64 { return s.swept.Load() }

// Stop flushes and terminates all components.
func (s *Server) Stop() {
	if !s.started {
		return
	}
	s.started = false
	if s.sweepStop != nil {
		close(s.sweepStop)
		s.sweepWG.Wait()
		s.sweepStop = nil
	}
	s.mon.Stop()
	s.eng.Stop()
}

// Flush synchronously drains the event queue's current backlog effects
// and runs one placement pass. Intended for tests and benchmarks that
// need determinism between phases.
func (s *Server) Flush() {
	deadline := time.Now().Add(5 * time.Second)
	// Quiescent, not Backlog: a daemon that popped a batch but has not
	// finished auditing it would otherwise slip past the barrier and
	// deliver its score updates after the placement pass below.
	for !s.mon.Quiescent() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.eng.Flush()
}

// ---- agent manager API ----

// StartEpoch begins a prefetching epoch for an opening reader; the first
// opener installs the file watch.
func (s *Server) StartEpoch(file string, size int64) {
	if s.registry.AddWatch(file) {
		s.aud.StartEpoch(file, size)
		return
	}
	// Joiner: still reference-count the epoch.
	s.aud.StartEpoch(file, size)
}

// EndEpoch ends one reader's epoch; the last closer removes the watch.
// Closing an epoch is a barrier: queued events are drained first, so the
// persisted heatmap reflects every access of the epoch.
func (s *Server) EndEpoch(file string) {
	last := s.registry.RemoveWatch(file)
	if last {
		deadline := time.Now().Add(2 * time.Second)
		for !s.mon.Quiescent() && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
	}
	s.aud.EndEpoch(file)
}

// Lookup resolves where a segment is prefetched: the owning node and
// tier. ok is false when it must be read from the PFS.
func (s *Server) Lookup(id seg.ID) (node, tier string, ok bool) {
	return s.aud.Mapping(id)
}

// ReadFromTier reads from a resident segment in this node's named tier.
// ok is false when the segment is not actually resident (stale mapping),
// in which case the caller falls back to the PFS.
func (s *Server) ReadFromTier(tier string, id seg.ID, off int64, p []byte) (int, bool) {
	st, _ := s.hier.ByName(tier)
	if st == nil {
		return 0, false
	}
	n, _, err := st.ReadAt(id, off, p)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ReadPrefetched serves a read of segment id at intra-segment offset off
// from wherever the hierarchy holds it: a local tier, a shared tier, or
// a remote node's tier through the node-to-node communicator. ok is
// false (and tier empty) when the caller must go to the PFS.
//
// When the async mover has a fetch of the segment in flight, a missing
// read stalls up to Config.FetchWait for it to land instead of falling
// back to the PFS — one bounded wait instead of a duplicate origin read.
//
//hfetch:hotpath
func (s *Server) ReadPrefetched(id seg.ID, off int64, p []byte) (n int, tier string, ok bool) {
	var start time.Time
	timed := s.tele.TimeSample()
	if timed {
		start = time.Now()
	}
	lc := s.tele.Lifecycle()
	n, tier, ok = s.serve(id, off, p)
	stalled := false
	if !ok && s.cfg.FetchWait > 0 {
		if waited, landed := s.eng.WaitInflight(id, s.cfg.FetchWait); waited > 0 {
			s.stalls.Add(1)
			if s.stallHist != nil {
				s.stallHist.Observe(int64(waited))
			}
			if landed {
				if n, tier, ok = s.serve(id, off, p); ok {
					s.stallRescues.Add(1)
					stalled = true
				}
			}
		}
	}
	if !ok {
		if lc != nil {
			lc.OnReadMiss(id.File, id.Index)
		}
		s.miss(int64(len(p)))
		if timed {
			s.sampleAccess(lc, id, off, len(p), "", start)
		}
		return 0, "", false
	}
	if lc != nil {
		lc.OnReadHit(id.File, id.Index, tier, stalled)
	}
	s.iostats.Hit(tier, int64(n))
	s.hitVec.With(tier).Inc()
	if timed {
		d := time.Since(start)
		s.iostats.ObserveRead(d)
		s.readHist.With(tier).Observe(int64(d))
		s.sampleAccess(lc, id, off, len(p), tier, start)
	}
	return n, tier, true
}

// sampleAccess feeds the folded access recorder, reusing the read path's
// existing time sample so no extra clock reads happen off-sample. Tier is
// empty for misses.
//
//hfetch:hotpath
func (s *Server) sampleAccess(lc *telemetry.Lifecycle, id seg.ID, off int64, length int, tier string, start time.Time) {
	if lc == nil {
		return
	}
	al := lc.AccessLog()
	if al == nil {
		return
	}
	al.Record(telemetry.AccessSample{
		When:   start,
		File:   id.File,
		Offset: id.Index*s.segr.Size() + off,
		Length: int64(length),
		Tier:   tier,
		//lint:allow hotpath reached only under the caller's TimeSample gate; completes the sampled read latency
		Latency: time.Since(start),
	})
}

// serve resolves the segment mapping and reads from the resolved tier,
// local or remote. ok is false on an absent or stale mapping.
//
//hfetch:hotpath
func (s *Server) serve(id seg.ID, off int64, p []byte) (n int, tier string, ok bool) {
	node, tier, ok := s.aud.Mapping(id)
	if !ok {
		return 0, "", false
	}
	if node == "" || node == s.cfg.Node || s.shared[tier] {
		n, ok = s.ReadFromTier(tier, id, off, p)
	} else if box := s.remoteReader.Load(); box != nil {
		n, ok = box.r.ReadRemote(node, tier, id, off, p)
	} else {
		n, ok = s.readRemote(node, tier, id, off, p)
	}
	if !ok {
		return 0, "", false
	}
	return n, tier, true
}

// ReadRange serves up to len(p) bytes of file starting at off into the
// caller's buffer, resolving the whole range's segments vectored — one
// lock acquisition per tier — through an internal RangeView: tier hits
// are copied once from the pinned payloads (the fill of p is this API's
// contract; callers that can consume bytes by reference should hold a
// RangeView via OpenRangeView instead and skip even that copy), misses
// go through ReadPrefetched (including the stall/rescue path) and then
// the PFS. size is the caller's pinned view of the file length —
// normally from a Stat when the request opened — so a concurrent
// truncation cannot over-read. It returns the bytes written into p plus
// segment-grain hit/miss counts for the caller's telemetry. The path
// performs no steady-state allocations (views are pooled).
//
//hfetch:hotpath
func (s *Server) ReadRange(file string, size, off int64, p []byte) (n, hits, misses int, err error) {
	v := s.OpenRangeView(file, size, off, int64(len(p)))
	done := 0
	for {
		chunk, pinned, rerr := v.Next(p[done:])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			hits, misses = v.Hits(), v.Misses()
			v.Close()
			return done, hits, misses, rerr
		}
		if pinned {
			//lint:allow hotpath filling the caller's buffer is ReadRange's contract — the one remaining copy sits at the API boundary, not on the serve path
			copy(p[done:], chunk)
			tiers.CountCopied(int64(len(chunk)))
		}
		done += len(chunk)
	}
	hits, misses = v.Hits(), v.Misses()
	v.Close()
	return done, hits, misses, nil
}

// StallStats reports (reads that waited on an in-flight fetch, waits
// that were then served from a tier).
func (s *Server) StallStats() (stalls, rescues int64) {
	return s.stalls.Load(), s.stallRescues.Load()
}

//hfetch:hotpath
func (s *Server) miss(nbytes int64) {
	s.iostats.Miss(nbytes)
	s.missCtr.Inc()
}

// ---- node-to-node data path ----

const msgRemoteRead = "srv.read"

type remoteReadReq struct {
	Tier string
	File string
	Idx  int64
	Off  int64
	Len  int
}

type remoteReadResp struct {
	OK   bool
	Data []byte
}

// EnableRemote wires the server into the cluster fabric: mux receives
// this node's remote-read handler, dialer reaches peers.
func (s *Server) EnableRemote(mux *comm.Mux, dialer Dialer) {
	s.peerMu.Lock()
	s.dialer = dialer
	s.peerMu.Unlock()
	mux.Register(msgRemoteRead, func(raw []byte) ([]byte, error) {
		tc, raw := comm.UnwrapTrace(raw)
		var serveStart time.Time
		if !tc.Zero() {
			serveStart = time.Now()
		}
		var req remoteReadReq
		if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&req); err != nil {
			return nil, err
		}
		s.remoteServes.Add(1)
		// Serve from a pinned view: the encoder reads the resident bytes
		// in place (the wire encode is the single unavoidable copy), so
		// no per-request segment buffer is allocated or filled.
		var payload []byte
		ok := false
		if st, _ := s.hier.ByName(req.Tier); st != nil {
			if b, resident := st.View(seg.ID{File: req.File, Index: req.Idx}); resident {
				data := b.Bytes()
				if req.Off >= 0 && req.Off < int64(len(data)) {
					end := req.Off + int64(req.Len)
					if end > int64(len(data)) {
						end = int64(len(data))
					}
					payload = data[req.Off:end]
					st.ChargeRead(int64(len(payload)))
					ok = true
				}
				defer b.Release()
			}
		}
		// A traced request gets a serve span on this node's lane: the
		// segment's lifecycle now shows which peer served the bytes.
		if !tc.Zero() {
			if lc := s.tele.Lifecycle(); lc != nil {
				lc.RecordPeer(tc.ID, telemetry.StagePeerFetchServe,
					req.File, req.Idx, req.Tier, serveStart, time.Since(serveStart))
			}
		}
		var out bytes.Buffer
		if err := gob.NewEncoder(&out).Encode(remoteReadResp{OK: ok, Data: payload}); err != nil {
			return nil, err
		}
		return out.Bytes(), nil
	})
}

func (s *Server) peer(node string) comm.Peer {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.dialer == nil {
		return nil
	}
	if p, ok := s.peers[node]; ok {
		return p
	}
	p := s.dialer.Dial(node)
	s.peers[node] = p
	return p
}

func (s *Server) readRemote(node, tier string, id seg.ID, off int64, p []byte) (int, bool) {
	n, ok, _ := s.ReadRemoteDirect(node, tier, id, off, p)
	return n, ok
}

// ReadRemoteDirect issues one peer read request with no retry or
// single-flight policy. The three results distinguish the two failure
// modes a policy layer treats differently: err != nil is a transport
// failure (no peer, dial/request error — the peer should be penalized),
// while (ok=false, err=nil) is a clean "not resident" answer from a
// healthy peer (stale mapping — fall back to the PFS, peer is fine).
// cluster.Fetcher builds its backoff and suspect logic on this split.
func (s *Server) ReadRemoteDirect(node, tier string, id seg.ID, off int64, p []byte) (int, bool, error) {
	peer := s.peer(node)
	if peer == nil {
		return 0, false, fmt.Errorf("server: no peer for node %q", node)
	}
	s.remoteReads.Add(1)
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(remoteReadReq{ //nolint:errcheck // in-memory encode of a plain struct
		Tier: tier, File: id.File, Idx: id.Index, Off: off, Len: len(p),
	})
	payload := buf.Bytes()
	// Propagate the segment's lifecycle trace (when sampled) so the
	// serving peer's span lands under the same trace ID.
	if lc := s.tele.Lifecycle(); lc != nil {
		if tid := lc.Current(id.File, id.Index); tid != 0 {
			payload = comm.WrapTrace(comm.TraceCtx{
				ID: tid, Origin: s.cfg.Node, SentUnixNano: time.Now().UnixNano(),
			}, payload)
		}
	}
	raw, err := peer.Request(msgRemoteRead, payload)
	if err != nil {
		// Drop the cached peer so the next attempt redials through the
		// dialer (which may resolve a restarted node's new transport).
		s.dropPeer(node, peer)
		return 0, false, err
	}
	var resp remoteReadResp
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&resp); err != nil {
		return 0, false, err
	}
	if !resp.OK {
		return 0, false, nil
	}
	return copy(p, resp.Data), true, nil
}

func (s *Server) dropPeer(node string, p comm.Peer) {
	s.peerMu.Lock()
	if s.peers[node] == p {
		delete(s.peers, node)
	}
	s.peerMu.Unlock()
	p.Close()
}

// RemoteStats reports (requests issued to peers, requests served for
// peers).
func (s *Server) RemoteStats() (reads, serves int64) {
	return s.remoteReads.Load(), s.remoteServes.Load()
}

// PostEvent accepts an enriched file-system event. Only events for
// watched files (plus capacity events) enter the queue, mirroring
// inotify semantics.
func (s *Server) PostEvent(ev events.Event) {
	if ev.Op != events.OpCapacity && !s.registry.Watched(ev.File) {
		return
	}
	s.mon.Post(ev)
}

// ---- accessors ----

// Node returns this server's cluster node name.
func (s *Server) Node() string { return s.cfg.Node }

// Segmenter returns the node's segment grain.
func (s *Server) Segmenter() *seg.Segmenter { return s.segr }

// FS returns the shared PFS.
func (s *Server) FS() *pfs.FS { return s.fs }

// Hierarchy returns this node's tier hierarchy.
func (s *Server) Hierarchy() *tiers.Hierarchy { return s.hier }

// Auditor returns the file segment auditor.
func (s *Server) Auditor() *auditor.Auditor { return s.aud }

// Engine returns the placement engine.
func (s *Server) Engine() *placement.Engine { return s.eng }

// Monitor returns the hardware monitor.
func (s *Server) Monitor() *monitor.Monitor { return s.mon }

// IOClient returns the data-prefetching I/O client.
func (s *Server) IOClient() *ioclient.Client { return s.ioc }

// Registry returns the watch registry.
func (s *Server) Registry() *events.Registry { return s.registry }

// Telemetry returns the node's metric registry (nil when disabled).
func (s *Server) Telemetry() *telemetry.Registry { return s.cfg.Telemetry }

// IOStats returns the server-side read accounting (hits, misses, bytes,
// per-tier hit counts) for every ReadPrefetched call on this node.
func (s *Server) IOStats() *metrics.IOStats { return s.iostats }

// ZeroCopyBytes returns the cumulative payload bytes this server has
// served by reference from pinned tier buffers (no memcpy on the serve
// path). Also exported as the hfetch_read_zero_copy_total counter.
func (s *Server) ZeroCopyBytes() int64 { return s.zeroCopy.Load() }
