package server

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
	"time"

	"hfetch/internal/core/auditor"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/events"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

func newServer(t *testing.T, cfg Config) (*Server, *pfs.FS) {
	t.Helper()
	fs := pfs.New(nil)
	ram := tiers.NewStore("ram", 1<<20, nil)
	nvme := tiers.NewStore("nvme", 1<<20, nil)
	hier := tiers.NewHierarchy(ram, nvme)
	stats, maps := NewLocalMaps("n0")
	srv, err := New(cfg, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	return srv, fs
}

func TestUnwatchedEventsIgnored(t *testing.T) {
	srv, fs := newServer(t, Config{SegmentSize: 1024, Engine: placement.Config{UpdateThreshold: 1}})
	fs.Create("f", 8192)
	srv.Start()
	defer srv.Stop()
	// No epoch started: the event must not reach the auditor.
	srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: 0, Length: 1024, Time: time.Now()})
	srv.Flush()
	if got := srv.Auditor().Counters().Reads; got != 0 {
		t.Fatalf("unwatched event processed: reads=%d", got)
	}
	srv.StartEpoch("f", 8192)
	srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: 0, Length: 1024, Time: time.Now()})
	srv.Flush()
	if got := srv.Auditor().Counters().Reads; got != 1 {
		t.Fatalf("watched event not processed: reads=%d", got)
	}
}

func TestEventsDrivePlacement(t *testing.T) {
	srv, fs := newServer(t, Config{SegmentSize: 1024, Engine: placement.Config{UpdateThreshold: 1}})
	fs.Create("f", 8192)
	srv.Start()
	defer srv.Stop()
	srv.StartEpoch("f", 8192)
	for i := int64(0); i < 8; i++ {
		srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: i * 1024, Length: 1024, Time: time.Now()})
	}
	srv.Flush()
	if got := srv.Hierarchy().Tier(0).Len(); got != 8 {
		t.Fatalf("resident segments = %d, want 8 (server-push placement)", got)
	}
	id := seg.ID{File: "f", Index: 0}
	node, tier, ok := srv.Lookup(id)
	if !ok || tier != "ram" || node != "node0" {
		t.Fatalf("Lookup = %q %q %v", node, tier, ok)
	}
	buf := make([]byte, 100)
	n, ok := srv.ReadFromTier("ram", id, 0, buf)
	if !ok || n != 100 {
		t.Fatalf("ReadFromTier = %d %v", n, ok)
	}
	n, tier, ok = srv.ReadPrefetched(id, 0, buf)
	if !ok || n != 100 || tier != "ram" {
		t.Fatalf("ReadPrefetched = %d %q %v", n, tier, ok)
	}
}

func TestReadFromUnknownTier(t *testing.T) {
	srv, _ := newServer(t, Config{})
	if _, ok := srv.ReadFromTier("zzz", seg.ID{File: "f"}, 0, make([]byte, 1)); ok {
		t.Fatal("unknown tier must report !ok")
	}
}

func TestHeatmapAcrossServerRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "heat")
	mk := func() (*Server, *pfs.FS) {
		return newServer(t, Config{
			SegmentSize: 1024,
			HeatDir:     dir,
			Engine:      placement.Config{UpdateThreshold: 1},
			SeqBoost:    0.5,
		})
	}
	srv1, fs1 := mk()
	fs1.Create("f", 8192)
	srv1.Start()
	srv1.StartEpoch("f", 8192)
	for i := int64(0); i < 8; i++ {
		srv1.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: i * 1024, Length: 1024, Time: time.Now()})
	}
	srv1.Flush()
	srv1.EndEpoch("f") // persists the heatmap
	srv1.Stop()

	// A brand-new server (fresh maps) pre-places from the stored heatmap
	// as soon as the epoch starts: server push before any read.
	srv2, fs2 := mk()
	fs2.Create("f", 8192)
	srv2.Start()
	defer srv2.Stop()
	srv2.StartEpoch("f", 8192)
	srv2.Flush()
	if got := srv2.Hierarchy().TotalUsed(); got == 0 {
		t.Fatal("heatmap-driven pre-placement did not happen")
	}
}

func TestStartStopIdempotent(t *testing.T) {
	srv, _ := newServer(t, Config{})
	srv.Start()
	srv.Start()
	srv.Stop()
	srv.Stop()
}

func TestDefaults(t *testing.T) {
	srv, _ := newServer(t, Config{})
	if srv.Segmenter().Size() != seg.DefaultSize {
		t.Fatalf("default segment size = %d", srv.Segmenter().Size())
	}
	if srv.FS() == nil || srv.Engine() == nil || srv.Monitor() == nil || srv.IOClient() == nil {
		t.Fatal("accessors must be non-nil")
	}
}

func TestJanitorSweepsStaleStats(t *testing.T) {
	fs := pfs.New(nil)
	hier := tiers.NewHierarchy(tiers.NewStore("ram", 1<<20, nil))
	stats, maps := NewLocalMaps("n0")
	srv, err := New(Config{
		SegmentSize:   1024,
		Score:         score.Params{P: 2, Unit: time.Millisecond},
		Engine:        placement.Config{UpdateThreshold: 1 << 30, Interval: time.Hour},
		SweepInterval: 10 * time.Millisecond,
		SweepFloor:    0.01,
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("f", 8192)
	srv.Start()
	defer srv.Stop()
	srv.StartEpoch("f", 8192)
	srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: 0, Length: 1024, Time: time.Now()})
	// No engine flush: the segment must not get placed (a resident
	// segment is exempt from sweeping).
	srv.EndEpoch("f")
	deadline := time.Now().Add(2 * time.Second)
	for srv.Swept() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Swept() == 0 {
		t.Fatal("janitor never swept the decayed record")
	}
}

func TestPersistentMapsSurviveRestart(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "meta.wal")
	stats, _, w, err := NewPersistentMaps("n0", wal)
	if err != nil {
		t.Fatal(err)
	}
	fs := pfs.New(nil)
	hier := tiers.NewHierarchy(tiers.NewStore("ram", 1<<20, nil))
	maps2 := dhmNewForTest()
	srv, err := New(Config{SegmentSize: 1024,
		Score:  score.Params{P: 2, Unit: time.Minute},
		Engine: placement.Config{UpdateThreshold: 1}}, fs, hier, stats, maps2)
	if err != nil {
		t.Fatal(err)
	}
	fs.Create("f", 8192)
	srv.Start()
	srv.StartEpoch("f", 8192)
	srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: 0, Length: 1024, Time: time.Now()})
	srv.Flush()
	srv.Stop()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// "Power-down": a brand-new process replays the WAL and sees the
	// accumulated segment statistics.
	stats2, _, w2, err := NewPersistentMaps("n0", wal)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if stats2.LocalLen() == 0 {
		t.Fatal("replayed stats map is empty")
	}
	v, ok, _ := stats2.Get("s|f|0")
	if !ok {
		t.Fatalf("segment record missing after replay; keys=%v", stats2.LocalKeys())
	}
	if rec := v.(*auditor.Rec); rec.Stats.K != 1 {
		t.Fatalf("restored K = %d, want 1", rec.Stats.K)
	}
}

// dhmNewForTest returns a fresh non-persistent map for tests that need
// an independent mapping table.
func dhmNewForTest() *dhm.Map {
	return dhm.New(dhm.Config{Name: "test-maps", Self: "n0"}, nil)
}

func TestRangeViewZeroCopyServe(t *testing.T) {
	srv, fs := newServer(t, Config{SegmentSize: 1024, Engine: placement.Config{UpdateThreshold: 1}})
	const size = int64(8*1024 + 100)
	fs.Create("f", size)
	srv.Start()
	defer srv.Stop()
	srv.StartEpoch("f", size)
	for i := int64(0); i*1024 < size; i++ {
		srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: i * 1024, Length: 1024, Time: time.Now()})
	}
	srv.Flush()

	ref := make([]byte, size)
	if _, _, err := fs.ReadAt("f", 0, ref); err != nil {
		t.Fatal(err)
	}

	// Fully resident range: every chunk comes back pinned, the assembled
	// bytes match the PFS, and the zero-copy ledger grows by the range.
	zc0 := srv.zeroCopy.Load()
	v := srv.OpenRangeView("f", size, 100, 4000)
	dst := make([]byte, 512)
	var got []byte
	for {
		chunk, pinned, err := v.Next(dst)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !pinned {
			t.Fatalf("chunk at %d not pinned despite full residency", len(got))
		}
		if len(chunk) > len(dst) {
			t.Fatalf("chunk %d bytes exceeds dst cap %d (gen-check cadence)", len(chunk), len(dst))
		}
		got = append(got, chunk...)
	}
	if v.Misses() != 0 || v.Hits() == 0 {
		t.Fatalf("hits/misses = %d/%d, want >0/0", v.Hits(), v.Misses())
	}
	if want := v.ZeroCopyBytes(); want != 4000 || srv.zeroCopy.Load()-zc0 != want {
		t.Fatalf("zero-copy bytes = %d (counter delta %d), want 4000", want, srv.zeroCopy.Load()-zc0)
	}
	v.Close()
	if !bytes.Equal(got, ref[100:4100]) {
		t.Fatal("pinned range content does not match PFS reference")
	}

	// Pins survive a racing whole-file invalidation; misses after the
	// drop fall back to the PFS.
	v = srv.OpenRangeView("f", size, 0, size)
	chunk, pinned, err := v.Next(dst)
	if err != nil || !pinned {
		t.Fatalf("first chunk: pinned=%v err=%v", pinned, err)
	}
	keep := chunk
	srv.Hierarchy().DeleteFile("f")
	if !bytes.Equal(keep, ref[:len(keep)]) {
		t.Fatal("held chunk torn by invalidation")
	}
	rest := int64(len(keep))
	for {
		chunk, _, err := v.Next(dst)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(chunk, ref[rest:rest+int64(len(chunk))]) {
			t.Fatalf("post-invalidation bytes diverge at %d", rest)
		}
		rest += int64(len(chunk))
	}
	if rest != size {
		t.Fatalf("served %d bytes, want %d", rest, size)
	}
	v.Close()
}

func TestReadRangeMatchesPFSUnderPartialResidency(t *testing.T) {
	srv, fs := newServer(t, Config{SegmentSize: 1024, Engine: placement.Config{UpdateThreshold: 1}})
	const size = int64(6 * 1024)
	fs.Create("f", size)
	srv.Start()
	defer srv.Stop()
	srv.StartEpoch("f", size)
	// Warm only even segments.
	for i := int64(0); i < 6; i += 2 {
		srv.PostEvent(events.Event{Op: events.OpRead, File: "f", Offset: i * 1024, Length: 1024, Time: time.Now()})
	}
	srv.Flush()

	ref := make([]byte, size)
	if _, _, err := fs.ReadAt("f", 0, ref); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, size)
	n, hits, misses, err := srv.ReadRange("f", size, 0, p)
	if err != nil || int64(n) != size {
		t.Fatalf("ReadRange = %d, %v", n, err)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("hits/misses = %d/%d, want both nonzero", hits, misses)
	}
	if !bytes.Equal(p, ref) {
		t.Fatal("mixed hit/miss range diverges from PFS")
	}
}
