// Package monitor implements HFetch's hardware monitor: it discovers the
// configured tiers, hosts the in-memory event queue every tier (and the
// client I/O layer) pushes into, and serves that queue with a pool of
// daemon threads that forward events to the file segment auditor. It
// also probes each tier's remaining capacity periodically and reports it
// as OpCapacity events — the second event kind the paper describes.
//
// Two pipeline shapes are supported, selected by Config.Shards:
//
//   - Legacy (Shards <= 1): one MPMC queue drained by Daemons workers.
//     Matches the paper's single "event queue + daemon pool" description
//     but serializes every producer and consumer on one mutex, and two
//     daemons may process events of the same file concurrently.
//   - Sharded (Shards > 1): events hash by file onto Shards independent
//     rings, each drained by WorkersPerShard dedicated workers. With the
//     default one worker per shard, events of a file are handled in
//     exactly the order they were posted — the property segment
//     sequencing and score folding rely on — while distinct files
//     proceed in parallel with no shared lock.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/events"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Handler consumes monitored events (implemented by the auditor).
type Handler interface {
	HandleEvent(events.Event)
}

// BatchHandler is optionally implemented by handlers that want one call
// per drained batch instead of one per event. The auditor implements it
// to aggregate score updates and hand the placement engine a single
// batched delivery per drain cycle.
type BatchHandler interface {
	HandleBatch([]events.Event)
}

// Config configures a Monitor.
type Config struct {
	// Daemons is the number of consumer threads for the legacy
	// single-queue pipeline (default 4). Ignored when Shards > 1.
	Daemons int
	// Shards selects the event pipeline: <= 1 keeps the legacy single
	// queue; > 1 hashes events by file onto that many independent rings.
	Shards int
	// WorkersPerShard is the worker count per shard (default 1). One
	// worker per shard preserves per-file event order; more trade that
	// order for intra-shard parallelism, like the legacy pool does.
	WorkersPerShard int
	// QueueCap bounds the event queue (default 64k events, split evenly
	// across shards when sharded).
	QueueCap int
	// Drop selects the overflow policy: true drops events when the queue
	// is full (inotify IN_Q_OVERFLOW), false applies backpressure.
	Drop bool
	// CapacityInterval is how often tier capacities are probed;
	// 0 disables probing.
	CapacityInterval time.Duration
	// Batch is the daemon batch size when draining the queue. Default 64
	// for the legacy pool; sharded workers default to their ring's full
	// capacity (capped at 2048) since a shard has a single drainer and a
	// whole-ring drain costs one lock acquisition however deep the ring is.
	Batch int
	// Telemetry, when non-nil, exports queue depth/wait and consumption
	// counters; nil disables instrumentation at ~zero cost.
	Telemetry *telemetry.Registry
}

// Monitor is safe for concurrent use.
type Monitor struct {
	cfg     Config
	queue   *events.Queue        // legacy pipeline; nil when sharded
	sharded *events.ShardedQueue // sharded pipeline; nil when legacy
	handler Handler
	batch   BatchHandler // handler's batch fast path, when implemented
	hier    *tiers.Hierarchy

	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once

	consumed atomic.Int64
}

// New creates a monitor feeding handler; hier may be nil (no capacity
// probes).
func New(cfg Config, handler Handler, hier *tiers.Hierarchy) *Monitor {
	if cfg.Daemons <= 0 {
		cfg.Daemons = 4
	}
	if cfg.WorkersPerShard <= 0 {
		cfg.WorkersPerShard = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1 << 16
	}
	if cfg.Batch <= 0 {
		if cfg.Shards > 1 {
			cfg.Batch = cfg.QueueCap / cfg.Shards
			if cfg.Batch > 2048 {
				cfg.Batch = 2048
			}
			if cfg.Batch < 64 {
				cfg.Batch = 64
			}
		} else {
			cfg.Batch = 64
		}
	}
	m := &Monitor{
		cfg:     cfg,
		handler: handler,
		hier:    hier,
		stop:    make(chan struct{}),
	}
	if bh, ok := handler.(BatchHandler); ok {
		m.batch = bh
	}
	if cfg.Shards > 1 {
		m.sharded = events.NewSharded(cfg.Shards, cfg.QueueCap, cfg.Drop)
	} else {
		m.queue = events.NewQueue(cfg.QueueCap, cfg.Drop)
	}
	if cfg.Telemetry != nil {
		if m.sharded != nil {
			m.sharded.SetTelemetry(cfg.Telemetry)
		} else {
			m.queue.SetTelemetry(cfg.Telemetry)
		}
		cfg.Telemetry.CounterFunc("hfetch_events_consumed_total",
			"events handled by the daemon pool", m.consumed.Load)
	}
	return m
}

// Queue exposes the legacy event queue so tiers and the I/O layer can
// push; nil when the sharded pipeline is active (use Post / Backlog).
func (m *Monitor) Queue() *events.Queue { return m.queue }

// Sharded exposes the sharded queue; nil when the legacy pipeline is
// active.
func (m *Monitor) Sharded() *events.ShardedQueue { return m.sharded }

// Post pushes one event into the queue. Read events are stamped with a
// lifecycle trace ID at this boundary — the monitor is the ingestion
// point the paper's inotify shim corresponds to — so the trace covers
// everything downstream.
//
//hfetch:hotpath
func (m *Monitor) Post(ev events.Event) bool {
	if ev.Op == events.OpRead && ev.Trace == 0 {
		if lc := m.cfg.Telemetry.Lifecycle(); lc != nil {
			ev.Trace = lc.OnEvent(ev.File, ev.Offset, ev.Time)
		}
	}
	if m.sharded != nil {
		return m.sharded.Post(ev)
	}
	return m.queue.Post(ev)
}

// Backlog returns the number of queued, not-yet-drained events across
// all shards.
func (m *Monitor) Backlog() int {
	if m.sharded != nil {
		return m.sharded.Len()
	}
	return m.queue.Len()
}

// Quiescent reports whether every event accepted so far has been fully
// handled: audited and its score update delivered to the engine, not
// merely popped off the ring. Backlog can read zero while a daemon
// still holds a popped batch; the consumed counter only advances after
// the handler returns, which closes that window. Posted is read before
// consumed so a true result covers at least the events posted up to
// the call.
func (m *Monitor) Quiescent() bool {
	posted, _ := m.QueueStats()
	return m.consumed.Load() >= posted
}

// QueueStats returns the cumulative posted and dropped counts.
func (m *Monitor) QueueStats() (posted, dropped int64) {
	if m.sharded != nil {
		return m.sharded.Stats()
	}
	return m.queue.Stats()
}

// Start launches the daemon pool (and the capacity prober when
// configured).
func (m *Monitor) Start() {
	if m.sharded != nil {
		for i := 0; i < m.sharded.NumShards(); i++ {
			q := m.sharded.Shard(i)
			for w := 0; w < m.cfg.WorkersPerShard; w++ {
				m.wg.Add(1)
				//lint:allow goleak daemon joins via the queue, not a signal field: Stop closes the shard and TakeBatch returns ok=false once drained
				go m.daemon(q)
			}
		}
	} else {
		for i := 0; i < m.cfg.Daemons; i++ {
			m.wg.Add(1)
			//lint:allow goleak daemon joins via the queue, not a signal field: Stop closes the queue and TakeBatch returns ok=false once drained
			go m.daemon(m.queue)
		}
	}
	if m.cfg.CapacityInterval > 0 && m.hier != nil {
		m.wg.Add(1)
		go m.prober()
	}
}

// Stop closes the queue, waits for the daemons to drain it, and returns.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	if m.sharded != nil {
		m.sharded.Close()
	} else {
		m.queue.Close()
	}
	m.wg.Wait()
}

// Consumed returns the number of events handled so far.
func (m *Monitor) Consumed() int64 { return m.consumed.Load() }

// daemon drains q until it is closed and empty. Each shard of the
// sharded pipeline gets its own daemons; the legacy pipeline shares one.
//
//hfetch:hotpath
func (m *Monitor) daemon(q *events.Queue) {
	defer m.wg.Done()
	buf := make([]events.Event, m.cfg.Batch)
	for {
		n, ok := q.TakeBatch(buf)
		if !ok {
			return
		}
		if m.batch != nil {
			m.batch.HandleBatch(buf[:n])
		} else {
			for i := 0; i < n; i++ {
				m.handler.HandleEvent(buf[i])
			}
		}
		m.consumed.Add(int64(n))
	}
}

func (m *Monitor) prober() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.CapacityInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			now := time.Now()
			for _, s := range m.hier.Stores() {
				m.Post(events.Event{
					Op: events.OpCapacity, Tier: s.Name(), Free: s.Free(), Time: now,
				})
			}
		}
	}
}
