// Package monitor implements HFetch's hardware monitor: it discovers the
// configured tiers, hosts the in-memory event queue every tier (and the
// client I/O layer) pushes into, and serves that queue with a pool of
// daemon threads that forward events to the file segment auditor. It
// also probes each tier's remaining capacity periodically and reports it
// as OpCapacity events — the second event kind the paper describes.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/events"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Handler consumes monitored events (implemented by the auditor).
type Handler interface {
	HandleEvent(events.Event)
}

// Config configures a Monitor.
type Config struct {
	// Daemons is the number of consumer threads (default 4).
	Daemons int
	// QueueCap bounds the event queue (default 64k events).
	QueueCap int
	// Drop selects the overflow policy: true drops events when the queue
	// is full (inotify IN_Q_OVERFLOW), false applies backpressure.
	Drop bool
	// CapacityInterval is how often tier capacities are probed;
	// 0 disables probing.
	CapacityInterval time.Duration
	// Batch is the daemon batch size when draining the queue (default 64).
	Batch int
	// Telemetry, when non-nil, exports queue depth/wait and consumption
	// counters; nil disables instrumentation at ~zero cost.
	Telemetry *telemetry.Registry
}

// Monitor is safe for concurrent use.
type Monitor struct {
	cfg     Config
	queue   *events.Queue
	handler Handler
	hier    *tiers.Hierarchy

	wg   sync.WaitGroup
	stop chan struct{}
	once sync.Once

	consumed atomic.Int64
}

// New creates a monitor feeding handler; hier may be nil (no capacity
// probes).
func New(cfg Config, handler Handler, hier *tiers.Hierarchy) *Monitor {
	if cfg.Daemons <= 0 {
		cfg.Daemons = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1 << 16
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 64
	}
	m := &Monitor{
		cfg:     cfg,
		queue:   events.NewQueue(cfg.QueueCap, cfg.Drop),
		handler: handler,
		hier:    hier,
		stop:    make(chan struct{}),
	}
	if cfg.Telemetry != nil {
		m.queue.SetTelemetry(cfg.Telemetry)
		cfg.Telemetry.CounterFunc("hfetch_events_consumed_total",
			"events handled by the daemon pool", m.consumed.Load)
	}
	return m
}

// Queue exposes the event queue so tiers and the I/O layer can push.
func (m *Monitor) Queue() *events.Queue { return m.queue }

// Post pushes one event into the queue.
func (m *Monitor) Post(ev events.Event) bool { return m.queue.Post(ev) }

// Start launches the daemon pool (and the capacity prober when
// configured).
func (m *Monitor) Start() {
	for i := 0; i < m.cfg.Daemons; i++ {
		m.wg.Add(1)
		go m.daemon()
	}
	if m.cfg.CapacityInterval > 0 && m.hier != nil {
		m.wg.Add(1)
		go m.prober()
	}
}

// Stop closes the queue, waits for the daemons to drain it, and returns.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	m.queue.Close()
	m.wg.Wait()
}

// Consumed returns the number of events handled so far.
func (m *Monitor) Consumed() int64 { return m.consumed.Load() }

func (m *Monitor) daemon() {
	defer m.wg.Done()
	buf := make([]events.Event, m.cfg.Batch)
	for {
		n, ok := m.queue.TakeBatch(buf)
		if !ok {
			return
		}
		for i := 0; i < n; i++ {
			m.handler.HandleEvent(buf[i])
		}
		m.consumed.Add(int64(n))
	}
}

func (m *Monitor) prober() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.CapacityInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			now := time.Now()
			for _, s := range m.hier.Stores() {
				m.queue.Post(events.Event{
					Op: events.OpCapacity, Tier: s.Name(), Free: s.Free(), Time: now,
				})
			}
		}
	}
}
