package monitor_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfetch/internal/core/auditor"
	"hfetch/internal/core/monitor"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/events"
)

// The stress test posts interleaved events for the same files from 64
// goroutines and checks the two properties the sharded pipeline claims:
//
//  1. Per-file ordering: with one worker per shard, a file's events are
//     handled in exactly the order they entered the ring.
//  2. Score equivalence: because scoring folds per-segment and the
//     per-file event order is fixed, the sharded pipeline produces
//     bitwise-identical final scores to the legacy single-queue,
//     single-daemon pipeline.
//
// Run it under -race: the posting goroutines, shard workers, striped
// epoch table and dhm shards all interleave here.

const (
	stressPosters  = 64
	stressFiles    = 24
	stressPerFile  = 150
	stressSegSize  = 1 << 10
	stressSegCount = 64
)

var stressBase = time.Unix(1_700_000_000, 0)

// lcg is a tiny deterministic generator so runs are reproducible without
// math/rand seeding.
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 33
}

// buildScripts returns, per file, the exact event sequence that must be
// observed in order. The i-th event of a file carries Time = base + i ms,
// so an observer can recover the sequence number from the timestamp.
// Offsets are mostly sequential (exercising the sequencing-link and
// boost paths) with deterministic jumps.
func buildScripts() [][]events.Event {
	scripts := make([][]events.Event, stressFiles)
	for f := 0; f < stressFiles; f++ {
		rng := lcg{s: uint64(f)*2654435761 + 12345}
		name := fmt.Sprintf("/data/stress-%02d.dat", f)
		evs := make([]events.Event, stressPerFile)
		idx := int64(0)
		for i := 0; i < stressPerFile; i++ {
			if i%5 == 4 { // deterministic jump
				idx = int64(rng.next() % stressSegCount)
			} else {
				idx = (idx + 1) % stressSegCount
			}
			evs[i] = events.Event{
				Op:     events.OpRead,
				File:   name,
				Offset: idx * stressSegSize,
				Length: stressSegSize,
				Time:   stressBase.Add(time.Duration(i) * time.Millisecond),
			}
		}
		scripts[f] = evs
	}
	return scripts
}

func seqOf(ev events.Event) int64 {
	return int64(ev.Time.Sub(stressBase) / time.Millisecond)
}

// orderRecorder wraps the auditor, asserting that per-file sequence
// numbers arrive strictly increasing before forwarding each batch.
type orderRecorder struct {
	aud *auditor.Auditor

	mu         sync.Mutex
	last       map[string]int64
	violations []string
}

func newOrderRecorder(aud *auditor.Auditor) *orderRecorder {
	return &orderRecorder{aud: aud, last: make(map[string]int64)}
}

func (r *orderRecorder) observe(evs []events.Event) {
	r.mu.Lock()
	for _, ev := range evs {
		if ev.Op != events.OpRead {
			continue
		}
		s := seqOf(ev)
		if prev, ok := r.last[ev.File]; ok && s <= prev {
			if len(r.violations) < 8 {
				r.violations = append(r.violations,
					fmt.Sprintf("%s: seq %d after %d", ev.File, s, prev))
			}
		}
		r.last[ev.File] = s
	}
	r.mu.Unlock()
}

func (r *orderRecorder) HandleEvent(ev events.Event) {
	r.observe([]events.Event{ev})
	r.aud.HandleEvent(ev)
}

func (r *orderRecorder) HandleBatch(evs []events.Event) {
	r.observe(evs)
	r.aud.HandleBatch(evs)
}

// batchCountSink counts deliveries; it implements BatchSink so the
// batched engine path is the one exercised.
type batchCountSink struct {
	updates atomic.Int64
	batches atomic.Int64
}

func (s *batchCountSink) ScoreUpdated(auditor.Update) { s.updates.Add(1) }
func (s *batchCountSink) FileInvalidated(string)      {}
func (s *batchCountSink) ScoreBatch(ups []auditor.Update) {
	s.batches.Add(1)
	s.updates.Add(int64(len(ups)))
}

// runStress drives the scripts through a monitor configured by mcfg and
// returns the final per-segment scores at a fixed evaluation time. When
// rec is non-nil it wraps the auditor to observe arrival order.
func runStress(t *testing.T, mcfg monitor.Config, record bool) (map[seg.ID]float64, *orderRecorder, *batchCountSink) {
	t.Helper()
	stats := dhm.New(dhm.Config{Name: "stress-stats", Self: "n0"}, nil)
	maps := dhm.New(dhm.Config{Name: "stress-maps", Self: "n0"}, nil)
	aud := auditor.New(auditor.Config{
		Node:      "n0",
		Segmenter: seg.NewSegmenter(stressSegSize),
		Score:     score.Params{P: 2, Unit: time.Second},
		SeqBoost:  0.5,
	}, stats, maps)
	sink := &batchCountSink{}
	aud.SetSink(sink)

	var handler monitor.Handler = aud
	var rec *orderRecorder
	if record {
		rec = newOrderRecorder(aud)
		handler = rec
	}
	mon := monitor.New(mcfg, handler, nil)
	mon.Start()

	scripts := buildScripts()
	type fileScript struct {
		mu   sync.Mutex
		evs  []events.Event
		next int
	}
	fs := make([]*fileScript, stressFiles)
	for i, evs := range scripts {
		aud.StartEpoch(evs[0].File, stressSegCount*stressSegSize)
		fs[i] = &fileScript{evs: evs}
	}

	var wg sync.WaitGroup
	for g := 0; g < stressPosters; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := lcg{s: uint64(id)*40503 + 7}
			for {
				start := int(rng.next() % stressFiles)
				posted := false
				for i := 0; i < stressFiles; i++ {
					s := fs[(start+i)%stressFiles]
					s.mu.Lock()
					if s.next < len(s.evs) {
						ev := s.evs[s.next]
						s.next++
						// Post while holding the script lock so ring
						// order matches script order for this file.
						mon.Post(ev)
						s.mu.Unlock()
						posted = true
						break
					}
					s.mu.Unlock()
				}
				if !posted {
					return // every script exhausted
				}
			}
		}(g)
	}
	wg.Wait()
	mon.Stop() // closes the rings and waits for the workers to drain

	const total = stressFiles * stressPerFile
	if got := mon.Consumed(); got != total {
		t.Fatalf("consumed %d events, posted %d", got, total)
	}

	eval := stressBase.Add(stressPerFile*time.Millisecond + 2*time.Second)
	scores := make(map[seg.ID]float64)
	for _, evs := range scripts {
		file := evs[0].File
		for i := int64(0); i < stressSegCount; i++ {
			id := seg.ID{File: file, Index: i}
			if sc := aud.ScoreOf(id, eval); sc != 0 {
				scores[id] = sc
			}
		}
	}
	return scores, rec, sink
}

func TestShardedStressOrderingAndScoreEquivalence(t *testing.T) {
	// Sharded pipeline: 8 rings, one worker each, 64 concurrent posters.
	shardedScores, rec, sink := runStress(t, monitor.Config{
		Shards: 8, WorkersPerShard: 1, QueueCap: 4096,
	}, true)
	if len(rec.violations) > 0 {
		t.Fatalf("per-file ordering violated: %v", rec.violations)
	}
	if sink.batches.Load() == 0 {
		t.Fatal("batch sink never received a ScoreBatch delivery")
	}
	if sink.updates.Load() == 0 {
		t.Fatal("no score updates delivered")
	}
	if len(shardedScores) == 0 {
		t.Fatal("sharded run produced no scores")
	}

	// Reference: the legacy single queue with ONE daemon, which trivially
	// preserves per-file order. Same scripts, same timestamps.
	legacyScores, _, _ := runStress(t, monitor.Config{
		Shards: 1, Daemons: 1, QueueCap: 4096,
	}, false)

	if len(shardedScores) != len(legacyScores) {
		t.Fatalf("segment count differs: sharded %d, legacy %d",
			len(shardedScores), len(legacyScores))
	}
	for id, want := range legacyScores {
		got, ok := shardedScores[id]
		if !ok {
			t.Fatalf("segment %v scored in legacy run but not sharded", id)
		}
		if got != want { // bitwise: identical per-file fold order
			t.Fatalf("segment %v: sharded score %v != legacy %v", id, got, want)
		}
	}
}

// TestShardedStressDropPolicy runs the same interleaved load against
// tiny rings with the drop policy and checks accounting stays coherent
// under contention: posted + dropped == attempts, consumed == posted.
func TestShardedStressDropPolicy(t *testing.T) {
	stats := dhm.New(dhm.Config{Name: "drop-stats", Self: "n0"}, nil)
	maps := dhm.New(dhm.Config{Name: "drop-maps", Self: "n0"}, nil)
	aud := auditor.New(auditor.Config{
		Node:      "n0",
		Segmenter: seg.NewSegmenter(stressSegSize),
		Score:     score.Params{P: 2, Unit: time.Second},
	}, stats, maps)
	mon := monitor.New(monitor.Config{
		Shards: 4, WorkersPerShard: 1, QueueCap: 16, Drop: true,
	}, aud, nil)
	mon.Start()

	const attempts = 8000
	var accepted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := lcg{s: uint64(id) + 99}
			for i := 0; i < attempts/16; i++ {
				ev := events.Event{
					Op:     events.OpRead,
					File:   fmt.Sprintf("/data/drop-%d.dat", rng.next()%8),
					Offset: int64(rng.next()%stressSegCount) * stressSegSize,
					Length: stressSegSize,
					Time:   stressBase.Add(time.Duration(i) * time.Microsecond),
				}
				if mon.Post(ev) {
					accepted.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	mon.Stop()

	posted, dropped := mon.QueueStats()
	if posted != accepted.Load() {
		t.Fatalf("posted %d != accepted %d", posted, accepted.Load())
	}
	if posted+dropped != attempts {
		t.Fatalf("posted %d + dropped %d != attempts %d", posted, dropped, attempts)
	}
	if got := mon.Consumed(); got != posted {
		t.Fatalf("consumed %d != posted %d", got, posted)
	}
}
