package monitor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfetch/internal/events"
	"hfetch/internal/tiers"
)

type countingHandler struct {
	reads    atomic.Int64
	capacity atomic.Int64
	mu       sync.Mutex
	seen     []events.Event
}

func (c *countingHandler) HandleEvent(ev events.Event) {
	switch ev.Op {
	case events.OpRead:
		c.reads.Add(1)
	case events.OpCapacity:
		c.capacity.Add(1)
	}
	c.mu.Lock()
	c.seen = append(c.seen, ev)
	c.mu.Unlock()
}

func TestDaemonsConsumeAllEvents(t *testing.T) {
	h := &countingHandler{}
	m := New(Config{Daemons: 4, QueueCap: 128}, h, nil)
	m.Start()
	const n = 5000
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				m.Post(events.Event{Op: events.OpRead, File: "f", Length: 1})
			}
		}()
	}
	wg.Wait()
	m.Stop()
	if got := h.reads.Load(); got != n {
		t.Fatalf("handled %d events, want %d", got, n)
	}
	if m.Consumed() != n {
		t.Fatalf("Consumed = %d, want %d", m.Consumed(), n)
	}
}

func TestStopDrainsQueue(t *testing.T) {
	h := &countingHandler{}
	m := New(Config{Daemons: 1, QueueCap: 1024}, h, nil)
	for i := 0; i < 100; i++ {
		m.Post(events.Event{Op: events.OpRead})
	}
	m.Start()
	m.Stop()
	if got := h.reads.Load(); got != 100 {
		t.Fatalf("drained %d, want 100", got)
	}
}

func TestCapacityProber(t *testing.T) {
	h := &countingHandler{}
	ram := tiers.NewStore("ram", 100, nil)
	hier := tiers.NewHierarchy(ram)
	m := New(Config{Daemons: 1, CapacityInterval: 10 * time.Millisecond}, h, hier)
	m.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && h.capacity.Load() < 2 {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	if h.capacity.Load() < 2 {
		t.Fatalf("capacity events = %d, want >= 2", h.capacity.Load())
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ev := range h.seen {
		if ev.Op == events.OpCapacity {
			if ev.Tier != "ram" || ev.Free != 100 {
				t.Fatalf("capacity event = %+v", ev)
			}
			return
		}
	}
}

func TestDropPolicyCountsOverflow(t *testing.T) {
	h := &countingHandler{}
	m := New(Config{Daemons: 1, QueueCap: 4, Drop: true}, h, nil)
	// Not started: queue fills, then drops.
	for i := 0; i < 10; i++ {
		m.Post(events.Event{Op: events.OpRead})
	}
	_, dropped := m.Queue().Stats()
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	m.Start()
	m.Stop()
	if h.reads.Load() != 4 {
		t.Fatalf("handled = %d, want 4", h.reads.Load())
	}
}

func TestDefaults(t *testing.T) {
	m := New(Config{}, &countingHandler{}, nil)
	if m.cfg.Daemons != 4 || m.cfg.QueueCap != 1<<16 || m.cfg.Batch != 64 {
		t.Fatalf("defaults = %+v", m.cfg)
	}
}
