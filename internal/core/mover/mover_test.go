package mover

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/tiers"
)

// fakeExec is a controllable Executor (optionally a BatchFetcher) over
// real tier stores: fetches materialize synthetic payloads, transfers
// and evictions move/drop them, and a gate can hold any operation open.
type fakeExec struct {
	batch bool

	mu         sync.Mutex
	fetches    []seg.ID
	batchCalls [][]int64 // sizes slice per FetchMany call
	transfers  int
	evicts     int

	gate     chan struct{} // nil = never block
	gateOnce sync.Once
	entered  chan struct{}
}

func newFakeExec(batch bool) *fakeExec {
	return &fakeExec{batch: batch, entered: make(chan struct{}, 64)}
}

func (f *fakeExec) withGate() *fakeExec {
	f.gate = make(chan struct{})
	return f
}

func (f *fakeExec) release() { f.gateOnce.Do(func() { close(f.gate) }) }

func (f *fakeExec) wait() {
	if f.gate != nil {
		<-f.gate
	}
}

func (f *fakeExec) enter() {
	select {
	case f.entered <- struct{}{}:
	default:
	}
}

func (f *fakeExec) Fetch(id seg.ID, size int64, dst *tiers.Store) error {
	f.enter()
	f.wait()
	f.mu.Lock()
	f.fetches = append(f.fetches, id)
	f.mu.Unlock()
	return dst.PutOwned(id, make([]byte, size))
}

func (f *fakeExec) Transfer(id seg.ID, src, dst *tiers.Store) error {
	f.enter()
	f.wait()
	payload, err := src.Take(id)
	if err != nil {
		return err
	}
	if err := dst.PutOwned(id, payload); err != nil {
		if rerr := src.PutOwned(id, payload); rerr != nil {
			return fmt.Errorf("lost: %v / %w", err, rerr)
		}
		return err
	}
	f.mu.Lock()
	f.transfers++
	f.mu.Unlock()
	return nil
}

func (f *fakeExec) Evict(id seg.ID, src *tiers.Store) error {
	f.enter()
	f.wait()
	if !src.Delete(id) {
		return tiers.ErrNotFound
	}
	f.mu.Lock()
	f.evicts++
	f.mu.Unlock()
	return nil
}

func (f *fakeExec) FetchMany(file string, first int64, sizes []int64, dst *tiers.Store) ([]error, int) {
	if !f.batch {
		panic("FetchMany on a non-batch fakeExec")
	}
	f.enter()
	f.wait()
	f.mu.Lock()
	cp := make([]int64, len(sizes))
	copy(cp, sizes)
	f.batchCalls = append(f.batchCalls, cp)
	f.mu.Unlock()
	errs := make([]error, len(sizes))
	co := 0
	for i, sz := range sizes {
		id := seg.ID{File: file, Index: first + int64(i)}
		errs[i] = dst.Put(id, make([]byte, sz))
		if errs[i] == nil && len(sizes) > 1 {
			co++
		}
	}
	return errs, co
}

// outcome captures done-callback results.
type outcome struct {
	mu   sync.Mutex
	done map[seg.ID]error
	n    int
}

func newOutcome() *outcome { return &outcome{done: make(map[seg.ID]error)} }

func (o *outcome) cb(mv Move, err error) {
	o.mu.Lock()
	o.done[mv.ID] = err
	o.n++
	o.mu.Unlock()
}

func (o *outcome) errOf(id seg.ID) (error, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.done[id]
	return e, ok
}

func sid(i int64) seg.ID { return seg.ID{File: "f", Index: i} }

func twoTiers(caps ...int64) *tiers.Hierarchy {
	names := []string{"ram", "nvme", "bb"}
	var stores []*tiers.Store
	for i, c := range caps {
		stores = append(stores, tiers.NewStore(names[i], c, nil))
	}
	return tiers.NewHierarchy(stores...)
}

func TestMoverExecutesMixedPlan(t *testing.T) {
	hier := twoTiers(1000, 1000)
	ex := newFakeExec(false)
	out := newOutcome()
	// Pre-seed a segment to transfer and one to evict.
	hier.Tier(1).Put(sid(1), make([]byte, 100))
	hier.Tier(0).Put(sid(2), make([]byte, 100))
	m := New(Config{}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()

	m.Submit([]Move{
		{ID: sid(2), Size: 100, From: 0, To: -1}, // evict
		{ID: sid(1), Size: 100, From: 1, To: 0},  // promote
		{ID: sid(0), Size: 100, From: -1, To: 0}, // fetch
	})
	m.Drain()

	if !hier.Tier(0).Has(sid(0)) || !hier.Tier(0).Has(sid(1)) {
		t.Fatal("fetch and promotion must land in ram")
	}
	if hier.Tier(0).Has(sid(2)) {
		t.Fatal("eviction must drop the segment")
	}
	for i := int64(0); i < 3; i++ {
		if err, ok := out.errOf(sid(i)); !ok || err != nil {
			t.Fatalf("segment %d outcome = %v (reported %v), want nil", i, err, ok)
		}
	}
	st := m.Stats()
	if st.Executed != 3 || st.Failed != 0 || st.Outstanding != 0 {
		t.Fatalf("stats = %+v, want 3 executed, none failed/outstanding", st)
	}
}

func TestMoverSupersedeQueuedRetargets(t *testing.T) {
	hier := twoTiers(1000, 1000)
	ex := newFakeExec(false).withGate()
	out := newOutcome()
	m := New(Config{Concurrency: []int{1, 1}, PFSStreams: 1}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()
	defer ex.release()

	m.Submit([]Move{{ID: sid(9), Size: 100, From: -1, To: 0}}) // occupies the worker
	<-ex.entered
	m.Submit([]Move{{ID: sid(0), Size: 100, From: -1, To: 0}}) // queued
	// Newer pass wants the queued segment in nvme instead: the queued
	// fetch is retargeted, not executed twice.
	m.Submit([]Move{{ID: sid(0), Size: 100, From: 0, To: 1}})
	ex.release()
	m.Drain()

	if !hier.Tier(1).Has(sid(0)) {
		t.Fatal("retargeted fetch must land in nvme")
	}
	if hier.Tier(0).Has(sid(0)) {
		t.Fatal("retargeted fetch must not leave a ram copy")
	}
	ex.mu.Lock()
	n := len(ex.fetches)
	ex.mu.Unlock()
	if n != 2 {
		t.Fatalf("executor fetches = %d, want 2 (one per segment)", n)
	}
	if st := m.Stats(); st.Superseded != 1 {
		t.Fatalf("superseded = %d, want 1", st.Superseded)
	}
}

func TestMoverSupersedeRunningChains(t *testing.T) {
	hier := twoTiers(1000, 1000)
	ex := newFakeExec(false).withGate()
	out := newOutcome()
	m := New(Config{Concurrency: []int{1, 1}, PFSStreams: 1}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()
	defer ex.release()

	m.Submit([]Move{{ID: sid(0), Size: 100, From: -1, To: 0}})
	<-ex.entered // the fetch is executing
	// A newer pass demotes the segment; its planner From is the running
	// move's To, so the chained transfer runs after the fetch lands.
	m.Submit([]Move{{ID: sid(0), Size: 100, From: 0, To: 1}})
	ex.release()
	m.Drain()

	if !hier.Tier(1).Has(sid(0)) {
		t.Fatal("chained transfer must land in nvme")
	}
	if hier.Tier(0).Has(sid(0)) {
		t.Fatal("no ram copy may remain after the chained transfer")
	}
	if st := m.Stats(); st.Superseded != 1 || st.Executed != 2 {
		t.Fatalf("stats = %+v, want 1 superseded and 2 executed", st)
	}
}

func TestMoverCancelFile(t *testing.T) {
	hier := twoTiers(1000, 1000)
	ex := newFakeExec(false).withGate()
	out := newOutcome()
	m := New(Config{Concurrency: []int{1, 1}, PFSStreams: 1}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()
	defer ex.release()

	m.Submit([]Move{{ID: sid(0), Size: 100, From: -1, To: 0}})
	<-ex.entered                                               // running
	m.Submit([]Move{{ID: sid(1), Size: 100, From: -1, To: 0}}) // queued
	m.CancelFile("f")
	ex.release()
	m.Drain()

	if hier.Tier(0).Has(sid(0)) || hier.Tier(0).Has(sid(1)) {
		t.Fatal("cancelled moves must leave nothing resident")
	}
	// The running fetch reports ErrCancelled; the queued one never
	// executed and reports nothing.
	if err, ok := out.errOf(sid(0)); !ok || err != ErrCancelled {
		t.Fatalf("running cancel outcome = %v (reported %v), want ErrCancelled", err, ok)
	}
	if _, ok := out.errOf(sid(1)); ok {
		t.Fatal("a queued cancelled move must not reach the done callback")
	}
	ex.mu.Lock()
	n := len(ex.fetches)
	ex.mu.Unlock()
	if n != 1 {
		t.Fatalf("executor fetches = %d, want 1 (queued fetch cancelled)", n)
	}
	if st := m.Stats(); st.Cancelled < 2 {
		t.Fatalf("cancelled = %d, want >= 2", st.Cancelled)
	}
}

func TestMoverCoalescesAdjacentFetches(t *testing.T) {
	hier := twoTiers(10_000)
	ex := newFakeExec(true).withGate()
	out := newOutcome()
	m := New(Config{Concurrency: []int{1}, PFSStreams: 1, Coalesce: true}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()
	defer ex.release()

	// A gated blocker occupies the single worker while four adjacent
	// fetches of the same file pile up behind it.
	m.Submit([]Move{{ID: seg.ID{File: "other", Index: 0}, Size: 100, From: -1, To: 0}})
	<-ex.entered
	m.Submit([]Move{
		{ID: sid(4), Size: 100, From: -1, To: 0},
		{ID: sid(5), Size: 100, From: -1, To: 0},
		{ID: sid(6), Size: 100, From: -1, To: 0},
		{ID: sid(7), Size: 100, From: -1, To: 0},
	})
	ex.release()
	m.Drain()

	for i := int64(4); i <= 7; i++ {
		if !hier.Tier(0).Has(sid(i)) {
			t.Fatalf("segment %d missing after coalesced fetch", i)
		}
	}
	ex.mu.Lock()
	calls := len(ex.batchCalls)
	var width int
	if calls > 0 {
		width = len(ex.batchCalls[0])
	}
	ex.mu.Unlock()
	if calls != 1 || width != 4 {
		t.Fatalf("batch calls = %d (width %d), want one 4-wide FetchMany", calls, width)
	}
	if st := m.Stats(); st.Coalesced != 4 {
		t.Fatalf("coalesced = %d, want 4", st.Coalesced)
	}
}

// evictGated delays evictions only; everything else passes through.
type evictGated struct {
	*fakeExec
	evictGate chan struct{}
}

func (e *evictGated) Evict(id seg.ID, src *tiers.Store) error {
	<-e.evictGate
	return e.fakeExec.Evict(id, src)
}

func TestMoverRetriesNoSpaceUntilEvictionLands(t *testing.T) {
	// Capacity for exactly one segment; the eviction that frees space is
	// gated so the incoming fetch transiently overflows and must retry.
	hier := twoTiers(100)
	hier.Tier(0).Put(sid(0), make([]byte, 100))
	ex := &evictGated{fakeExec: newFakeExec(false), evictGate: make(chan struct{})}
	out := newOutcome()
	m := New(Config{Concurrency: []int{2}, PFSStreams: 2}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()

	m.Submit([]Move{
		{ID: sid(0), Size: 100, From: 0, To: -1},
		{ID: sid(1), Size: 100, From: -1, To: 0},
	})
	time.Sleep(2 * time.Millisecond) // let the fetch fail at least once
	close(ex.evictGate)
	m.Drain()

	if !hier.Tier(0).Has(sid(1)) || hier.Tier(0).Has(sid(0)) {
		t.Fatal("after eviction lands, the retried fetch must be resident alone")
	}
	if err, ok := out.errOf(sid(1)); !ok || err != nil {
		t.Fatalf("fetch outcome = %v (reported %v), want success", err, ok)
	}
	st := m.Stats()
	if st.Retried == 0 {
		t.Fatalf("retried = %d, want > 0", st.Retried)
	}
	if st.Failed != 0 {
		t.Fatalf("failed = %d, want 0", st.Failed)
	}
}

func TestMoverWaitFor(t *testing.T) {
	hier := twoTiers(1000)
	ex := newFakeExec(false).withGate()
	out := newOutcome()
	m := New(Config{Concurrency: []int{1}, PFSStreams: 1}, hier, ex, out.cb)
	m.Start()
	defer m.Stop()
	defer ex.release()

	if w, done := m.WaitFor(sid(0), time.Second); w != 0 || done {
		t.Fatal("WaitFor must return immediately when nothing is in flight")
	}
	m.Submit([]Move{{ID: sid(0), Size: 100, From: -1, To: 0}})
	<-ex.entered
	if _, done := m.WaitFor(sid(0), time.Millisecond); done {
		t.Fatal("WaitFor must time out while the fetch is gated")
	}
	res := make(chan bool, 1)
	go func() {
		_, done := m.WaitFor(sid(0), 5*time.Second)
		res <- done
	}()
	time.Sleep(time.Millisecond)
	ex.release()
	select {
	case done := <-res:
		if !done {
			t.Fatal("WaitFor must report completion once the fetch lands")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitFor never returned after release")
	}
	if !hier.Tier(0).Has(sid(0)) {
		t.Fatal("fetch must be resident when WaitFor reports done")
	}
}

func TestMoverDrainStopIdempotent(t *testing.T) {
	hier := twoTiers(1000)
	ex := newFakeExec(false)
	m := New(Config{}, hier, ex, func(Move, error) {})
	m.Start()
	m.Submit([]Move{{ID: sid(0), Size: 100, From: -1, To: 0}})
	m.Drain()
	m.Drain()
	m.Stop()
	// Submit after Stop is a no-op, not a panic.
	m.Submit([]Move{{ID: sid(1), Size: 100, From: -1, To: 0}})
	if st := m.Stats(); st.Submitted != 1 {
		t.Fatalf("submitted = %d, want 1 (post-Stop submit ignored)", st.Submitted)
	}
}
