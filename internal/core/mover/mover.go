// Package mover is the asynchronous data-movement engine behind the
// hierarchical placement engine. The paper separates *deciding* where a
// segment belongs (Algorithm 1, microseconds) from *executing* the move
// (device transfers, milliseconds); this package owns the execution half
// so the decision half never blocks on device time.
//
// A Mover keeps one bounded FIFO work queue per tier — a move queues at
// its destination tier, an eviction at its source — each drained by that
// tier's own worker pool, so a RAM tier that can absorb many concurrent
// Puts is not throttled by a burst-buffer queue, while origin reads are
// additionally capped by a global PFS-stream semaphore (the paper §IV's
// engine threads). Three properties distinguish it from a plain worker
// pool:
//
//   - An in-flight table: at most one queued-or-running move exists per
//     segment. The placement engine commits its intended residency model
//     at plan time and returns; the table is what makes that safe.
//
//   - Supersession: when a newer placement pass re-places a segment whose
//     previous move has not executed yet, the queued move is retargeted
//     in place (origin → newest destination, the cross-run extension of
//     the engine's intra-run plan merging) or cancelled outright when the
//     chain returns to its origin. A move already executing instead gets
//     the newer move chained behind it.
//
//   - Fetch coalescing: adjacent queued PFS fetches for the same file are
//     merged into one large origin read and split into per-segment
//     payloads, paying the PFS latency once per span instead of once per
//     segment.
//
// Failure handling stays with the caller: every terminal move outcome is
// reported through the done callback, and a destination-full error is
// retried a few times with backoff first (the space-freeing moves that
// justified the plan may simply not have executed yet).
package mover

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/invariant"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// ErrCancelled is reported through the done callback for a move that was
// invalidated (its file was written) after it started executing. Queued
// moves that are cancelled or superseded away never report at all — they
// had no physical effect.
var ErrCancelled = errors.New("mover: move cancelled")

// Move is one planned data movement. From/To index tiers of the
// hierarchy; -1 means the PFS origin (for From) or eviction (for To).
// Trace is the lifecycle trace ID of the prefetch (0 = untraced); it
// rides along so the terminal callback can classify the outcome.
type Move struct {
	ID    seg.ID
	Size  int64
	From  int
	To    int
	Trace uint64
}

// Executor performs the physical byte movement (implemented by
// ioclient.Client).
type Executor interface {
	Fetch(id seg.ID, size int64, dst *tiers.Store) error
	Transfer(id seg.ID, src, dst *tiers.Store) error
	Evict(id seg.ID, src *tiers.Store) error
}

// BatchFetcher is the optional coalescing extension of Executor: one
// origin read for a run of consecutive segments. When the executor does
// not implement it, fetches execute one by one.
type BatchFetcher interface {
	FetchMany(file string, first int64, sizes []int64, dst *tiers.Store) (errs []error, coalesced int)
}

// Config configures a Mover.
type Config struct {
	// Concurrency is the worker count per tier (aligned with the
	// hierarchy, fastest first). Missing entries default to max(2, 8>>i):
	// fast tiers absorb more concurrent writes than slow ones.
	Concurrency []int
	// QueueDepth bounds each tier's queue; a full queue blocks Submit
	// (backpressure on the placement pass). Default 256.
	QueueDepth int
	// PFSStreams caps concurrent origin fetches across all tiers,
	// modeling the engine-thread count of the paper. Default 2.
	PFSStreams int
	// Coalesce merges adjacent queued PFS fetches of one file into a
	// single origin read when the executor supports it.
	Coalesce bool
	// MaxCoalesceBytes bounds one coalesced origin read. Default 8 MiB.
	MaxCoalesceBytes int64
	// Telemetry, when non-nil, exports per-tier queue-depth gauges and
	// the coalesced/superseded/cancelled/retried counters.
	Telemetry *telemetry.Registry
}

func (c Config) withDefaults(tierCount int) Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.PFSStreams <= 0 {
		c.PFSStreams = 2
	}
	if c.MaxCoalesceBytes <= 0 {
		c.MaxCoalesceBytes = 8 << 20
	}
	conc := make([]int, tierCount)
	for i := range conc {
		if i < len(c.Concurrency) && c.Concurrency[i] > 0 {
			conc[i] = c.Concurrency[i]
		} else {
			conc[i] = 8 >> i
			if conc[i] < 2 {
				conc[i] = 2
			}
		}
	}
	c.Concurrency = conc
	return c
}

// Stats is a snapshot of mover counters and queue state.
type Stats struct {
	Submitted   int64 // fresh moves accepted into the queues
	Executed    int64 // moves completed successfully
	Failed      int64 // moves that terminally failed (reported to done)
	Coalesced   int64 // fetches that shared an origin read with others
	Superseded  int64 // queued/running moves re-placed by a newer pass
	Cancelled   int64 // moves dropped before (or undone after) executing
	Retried     int64 // destination-full retries
	QueueDepths []int // queued moves per tier, fastest first
	Outstanding int   // moves not yet terminal (queued + running + chained)
}

const (
	opQueued = iota
	opRunning
)

// op is one tracked move. All fields are guarded by Mover.mu except mv
// contents while opRunning (the executing worker owns them).
type op struct {
	mv        Move
	state     int
	cancelled bool
	attempts  int
	submitted time.Time     // queue entry time, for the mover_queue span
	next      *op           // superseding move chained behind a running op
	done      chan struct{} // closed at terminal state
}

// maxRetries bounds destination-full retries per move.
const maxRetries = 8

// Mover executes placement plans asynchronously. Safe for concurrent
// use; Submit, CancelFile, WaitFor, Drain may be called from any
// goroutine.
type Mover struct {
	cfg   Config
	hier  *tiers.Hierarchy
	exec  Executor
	batch BatchFetcher // nil when the executor cannot coalesce
	done  func(Move, error)

	mu          sync.Mutex
	cond        *sync.Cond // workers wait for queue work
	space       *sync.Cond // Submit waits for queue space
	idle        *sync.Cond // Drain waits for outstanding == 0
	queues      [][]*op    // per-tier FIFO of queued ops
	inflight    map[seg.ID]*op
	outstanding int
	closed      bool

	pfsSem chan struct{}
	wg     sync.WaitGroup

	ctr struct {
		submitted, executed, failed            atomic.Int64
		coalesced, superseded, cancel, retried atomic.Int64
	}
}

// New creates a mover over the hierarchy, executing with exec and
// reporting every terminal move outcome through done (called without any
// mover lock held; err is nil on success, ErrCancelled for an
// invalidated move, anything else is a real failure the caller must
// reconcile). Call Start before submitting.
func New(cfg Config, hier *tiers.Hierarchy, exec Executor, done func(Move, error)) *Mover {
	m := &Mover{
		cfg:      cfg.withDefaults(hier.Len()),
		hier:     hier,
		exec:     exec,
		done:     done,
		queues:   make([][]*op, hier.Len()),
		inflight: make(map[seg.ID]*op),
	}
	if bf, ok := exec.(BatchFetcher); ok && m.cfg.Coalesce {
		m.batch = bf
	}
	m.cond = sync.NewCond(&m.mu)
	m.space = sync.NewCond(&m.mu)
	m.idle = sync.NewCond(&m.mu)
	m.pfsSem = make(chan struct{}, m.cfg.PFSStreams)
	if reg := m.cfg.Telemetry; reg != nil {
		reg.CounterFunc("hfetch_mover_coalesced_total", "fetches that shared a coalesced origin read", m.ctr.coalesced.Load)
		reg.CounterFunc("hfetch_mover_superseded_total", "queued/running moves re-placed by a newer pass", m.ctr.superseded.Load)
		reg.CounterFunc("hfetch_mover_cancelled_total", "moves cancelled before or undone after executing", m.ctr.cancel.Load)
		reg.CounterFunc("hfetch_mover_retried_total", "destination-full move retries", m.ctr.retried.Load)
		reg.GaugeFunc("hfetch_mover_inflight", "moves not yet terminal", func() int64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return int64(m.outstanding)
		})
		for i, st := range hier.Stores() {
			i := i
			reg.GaugeFunc("hfetch_mover_queue_depth", "queued moves for the tier", func() int64 {
				m.mu.Lock()
				defer m.mu.Unlock()
				return int64(len(m.queues[i]))
			}, "tier", st.Name())
		}
	}
	return m
}

// Start launches the per-tier worker pools.
func (m *Mover) Start() {
	for ti := 0; ti < m.hier.Len(); ti++ {
		for w := 0; w < m.cfg.Concurrency[ti]; w++ {
			m.wg.Add(1)
			go m.worker(ti)
		}
	}
}

// qFor returns the queue a move waits on: its destination tier, or its
// source for an eviction.
func qFor(mv Move) int {
	if mv.To >= 0 {
		return mv.To
	}
	return mv.From
}

// Submit accepts one placement pass's merged plan, already ordered so
// space-freeing moves precede space-claiming ones. Moves of segments
// with a move still in flight supersede it; fresh moves enqueue,
// blocking only when the destination queue is full.
func (m *Mover) Submit(moves []Move) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mv := range moves {
		if m.closed {
			return
		}
		if mv.From == mv.To {
			continue
		}
		if old, ok := m.inflight[mv.ID]; ok {
			m.supersedeLocked(old, mv)
			continue
		}
		q := qFor(mv)
		for len(m.queues[q]) >= m.cfg.QueueDepth && !m.closed {
			m.space.Wait()
		}
		if m.closed {
			return
		}
		o := &op{mv: mv, submitted: time.Now(), done: make(chan struct{})}
		m.inflight[mv.ID] = o
		m.outstanding++
		m.ctr.submitted.Add(1)
		m.queues[q] = append(m.queues[q], o)
		if invariant.Enabled {
			// The backpressure bound holds on the Submit path (the wait
			// loop above guarantees it); destination-full retries and
			// chained-move promotions may requeue past it by design.
			invariant.Assert(len(m.queues[q]) <= m.cfg.QueueDepth,
				"mover tier %d queue depth %d exceeds bound %d after Submit",
				q, len(m.queues[q]), m.cfg.QueueDepth)
		}
		m.cond.Broadcast()
	}
	m.checkLocked()
}

// checkLocked asserts the queue-accounting invariants under m.mu; a
// no-op unless built with -tags hfetch_invariants.
func (m *Mover) checkLocked() {
	if !invariant.Enabled {
		return
	}
	invariant.Assert(m.outstanding >= 0, "mover outstanding %d < 0", m.outstanding)
	queued := 0
	for _, q := range m.queues {
		queued += len(q)
	}
	invariant.Assert(queued <= m.outstanding,
		"mover queued %d exceeds outstanding %d", queued, m.outstanding)
	invariant.Assert(len(m.inflight) <= m.outstanding,
		"mover inflight table %d exceeds outstanding %d", len(m.inflight), m.outstanding)
}

// supersedeLocked folds a newer move for a segment into its in-flight
// predecessor. The planner's From is the engine model's view, which by
// construction equals the predecessor's destination — so retargeting
// keeps the physical origin and adopts the newest destination, exactly
// like the engine's intra-run plan merge, across runs.
func (m *Mover) supersedeLocked(old *op, mv Move) {
	m.ctr.superseded.Add(1)
	if old.state == opQueued {
		m.spliceLocked(old)
		wasFetch := old.mv.From < 0
		trace := old.mv.Trace
		old.mv.To = mv.To
		old.mv.Size = mv.Size
		if mv.Trace != 0 {
			old.mv.Trace = mv.Trace
		}
		if old.mv.From == old.mv.To {
			// The chain returned to its origin: nothing to move.
			delete(m.inflight, old.mv.ID)
			m.finishLocked(old)
			m.ctr.cancel.Add(1)
			// A queued fetch dropped before executing never reports
			// through done; close its lifecycle trace here.
			if wasFetch {
				if lc := m.cfg.Telemetry.Lifecycle(); lc != nil {
					lc.OnFetchAborted(old.mv.ID.File, old.mv.ID.Index, trace, "superseded")
				}
			}
			return
		}
		m.queues[qFor(old.mv)] = append(m.queues[qFor(old.mv)], old)
		m.cond.Broadcast()
		return
	}
	// Executing: chain the newest intent behind it (merging with any
	// already-chained move).
	if old.next != nil {
		old.next.mv.To = mv.To
		old.next.mv.Size = mv.Size
		if old.next.mv.From == old.next.mv.To {
			m.finishLocked(old.next)
			m.ctr.cancel.Add(1)
			old.next = nil
		}
		return
	}
	chained := Move{ID: mv.ID, Size: mv.Size, From: old.mv.To, To: mv.To, Trace: mv.Trace}
	if chained.From == chained.To {
		return // the running move already lands where the new pass wants it
	}
	old.next = &op{mv: chained, done: make(chan struct{})}
	m.outstanding++
}

// spliceLocked removes a queued op from its queue.
func (m *Mover) spliceLocked(o *op) {
	q := qFor(o.mv)
	for i, e := range m.queues[q] {
		if e == o {
			m.queues[q] = append(m.queues[q][:i], m.queues[q][i+1:]...)
			m.space.Broadcast()
			return
		}
	}
}

// finishLocked marks an op terminal.
func (m *Mover) finishLocked(o *op) {
	close(o.done)
	m.outstanding--
	m.checkLocked()
	if m.outstanding == 0 {
		m.idle.Broadcast()
	}
}

// CancelFile drops every in-flight move of the named file (the file was
// written: any queued fetch would materialize stale bytes). Queued moves
// are removed; executing ones are flagged and their effect undone on
// completion.
func (m *Mover) CancelFile(file string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, o := range m.inflight {
		if id.File != file {
			continue
		}
		if o.next != nil {
			m.finishLocked(o.next)
			o.next = nil
			m.ctr.cancel.Add(1)
		}
		if o.state == opQueued {
			m.spliceLocked(o)
			delete(m.inflight, id)
			m.finishLocked(o)
		} else {
			o.cancelled = true
		}
		m.ctr.cancel.Add(1)
	}
}

// WaitFor blocks until the in-flight move of id (if any, and if it is
// bringing the segment *into* a tier) reaches a terminal state, or until
// timeout. waited is how long the caller actually blocked (0 when
// nothing was in flight); done is true when the move completed in time.
// This is what lets the server read path ride an already-queued fetch
// instead of issuing its own origin read.
func (m *Mover) WaitFor(id seg.ID, timeout time.Duration) (waited time.Duration, done bool) {
	m.mu.Lock()
	o, ok := m.inflight[id]
	if !ok || o.mv.To < 0 {
		m.mu.Unlock()
		return 0, false
	}
	ch := o.done
	m.mu.Unlock()
	start := time.Now()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-ch:
		return time.Since(start), true
	case <-t.C:
		return time.Since(start), false
	}
}

// Drain blocks until every submitted move is terminal. Used by
// Engine.Flush for deterministic test/benchmark barriers.
func (m *Mover) Drain() {
	m.mu.Lock()
	for m.outstanding > 0 {
		m.idle.Wait()
	}
	m.mu.Unlock()
}

// Stop drains the queues and terminates the workers. No Submit may
// follow.
func (m *Mover) Stop() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.space.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
}

// Stats returns a snapshot of mover counters and queue depths.
func (m *Mover) Stats() Stats {
	m.mu.Lock()
	depths := make([]int, len(m.queues))
	for i := range m.queues {
		depths[i] = len(m.queues[i])
	}
	out := m.outstanding
	m.mu.Unlock()
	return Stats{
		Submitted:   m.ctr.submitted.Load(),
		Executed:    m.ctr.executed.Load(),
		Failed:      m.ctr.failed.Load(),
		Coalesced:   m.ctr.coalesced.Load(),
		Superseded:  m.ctr.superseded.Load(),
		Cancelled:   m.ctr.cancel.Load(),
		Retried:     m.ctr.retried.Load(),
		QueueDepths: depths,
		Outstanding: out,
	}
}

func (m *Mover) worker(ti int) {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queues[ti]) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.queues[ti]) == 0 && m.closed {
			m.mu.Unlock()
			return
		}
		group := m.takeLocked(ti)
		m.space.Broadcast()
		m.mu.Unlock()
		m.execute(group)
	}
}

// takeLocked pops the head of tier ti's queue and, for a PFS fetch with
// coalescing available, gathers the queued fetches of the same file
// whose indices are contiguous with it, bounded by MaxCoalesceBytes.
// Every op in the returned group is marked running.
func (m *Mover) takeLocked(ti int) []*op {
	head := m.queues[ti][0]
	m.queues[ti] = m.queues[ti][1:]
	head.state = opRunning
	if head.mv.From >= 0 || m.batch == nil || len(m.queues[ti]) == 0 {
		return []*op{head}
	}
	cand := make(map[int64]*op)
	for _, o := range m.queues[ti] {
		if o.mv.From < 0 && o.mv.ID.File == head.mv.ID.File {
			cand[o.mv.ID.Index] = o
		}
	}
	if len(cand) == 0 {
		return []*op{head}
	}
	group := []*op{head}
	budget := m.cfg.MaxCoalesceBytes - head.mv.Size
	for idx := head.mv.ID.Index + 1; ; idx++ {
		o, ok := cand[idx]
		if !ok || budget < o.mv.Size {
			break
		}
		group = append(group, o)
		budget -= o.mv.Size
	}
	for idx := head.mv.ID.Index - 1; idx >= 0; idx-- {
		o, ok := cand[idx]
		if !ok || budget < o.mv.Size {
			break
		}
		group = append(group, o)
		budget -= o.mv.Size
	}
	if len(group) == 1 {
		return group
	}
	sel := make(map[*op]bool, len(group))
	for _, o := range group {
		o.state = opRunning
		sel[o] = true
	}
	kept := m.queues[ti][:0]
	for _, o := range m.queues[ti] {
		if !sel[o] {
			kept = append(kept, o)
		}
	}
	m.queues[ti] = kept
	sort.Slice(group, func(i, j int) bool { return group[i].mv.ID.Index < group[j].mv.ID.Index })
	return group
}

// execute runs one op group on the calling worker and completes each op.
func (m *Mover) execute(group []*op) {
	head := group[0]
	if reg := m.cfg.Telemetry; reg != nil && head.attempts == 0 {
		// Queue wait per op, first execution only (retries would double-
		// count the stage in the lifecycle trace).
		now := time.Now()
		for _, o := range group {
			if o.attempts == 0 && !o.submitted.IsZero() {
				reg.Span(telemetry.StageMoverQueue, o.mv.ID.File, o.mv.ID.Index,
					m.hier.Tier(qFor(o.mv)).Name(), o.submitted, now.Sub(o.submitted))
			}
		}
	}
	if head.attempts > 0 {
		// Destination-full retry: give the space-freeing moves that the
		// plan ordered ahead of us a beat to land.
		backoff := 100 * time.Microsecond << uint(head.attempts-1)
		if backoff > 2*time.Millisecond {
			backoff = 2 * time.Millisecond
		}
		time.Sleep(backoff)
	}
	switch {
	case head.mv.To < 0: // eviction
		m.complete(head, m.exec.Evict(head.mv.ID, m.hier.Tier(head.mv.From)))
	case head.mv.From < 0: // PFS fetch (possibly a coalesced group)
		m.pfsSem <- struct{}{}
		if len(group) == 1 {
			err := m.exec.Fetch(head.mv.ID, head.mv.Size, m.hier.Tier(head.mv.To))
			<-m.pfsSem
			m.complete(head, err)
			return
		}
		sizes := make([]int64, len(group))
		for i, o := range group {
			sizes[i] = o.mv.Size
		}
		errs, co := m.batch.FetchMany(head.mv.ID.File, head.mv.ID.Index, sizes, m.hier.Tier(head.mv.To))
		<-m.pfsSem
		m.ctr.coalesced.Add(int64(co))
		for i, o := range group {
			m.complete(o, errs[i])
		}
	default: // tier-to-tier transfer
		m.complete(head, m.exec.Transfer(head.mv.ID, m.hier.Tier(head.mv.From), m.hier.Tier(head.mv.To)))
	}
}

// complete finalizes one executed op: undoes cancelled moves, retries
// destination-full errors, promotes the chained successor, and reports
// the terminal outcome through the done callback (outside the lock).
func (m *Mover) complete(o *op, err error) {
	m.mu.Lock()
	if o.cancelled {
		if err == nil && o.mv.To >= 0 {
			// The move materialized bytes of an invalidated file: drop
			// them (the store charge stays — the device did the work).
			m.hier.Tier(o.mv.To).Delete(o.mv.ID)
		}
		err = ErrCancelled
	}
	if err != nil && !o.cancelled && o.attempts < maxRetries && !m.closed && errors.Is(err, tiers.ErrNoSpace) {
		o.attempts++
		o.state = opQueued
		m.ctr.retried.Add(1)
		m.queues[qFor(o.mv)] = append(m.queues[qFor(o.mv)], o)
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	next := o.next
	o.next = nil
	if m.inflight[o.mv.ID] == o {
		delete(m.inflight, o.mv.ID)
	}
	switch {
	case err == nil:
		m.ctr.executed.Add(1)
	case errors.Is(err, ErrCancelled):
		m.ctr.cancel.Add(1)
	default:
		m.ctr.failed.Add(1)
	}
	var abandoned *op
	if next != nil {
		if err != nil || next.cancelled {
			// The chain assumed this move's destination as its origin;
			// with the move failed (or the file invalidated) that origin
			// is wrong — abandon it and let reconciliation heal the
			// model.
			abandoned = next
			m.ctr.cancel.Add(1)
		} else {
			m.inflight[next.mv.ID] = next
			next.state = opQueued
			next.submitted = time.Now()
			m.queues[qFor(next.mv)] = append(m.queues[qFor(next.mv)], next)
			m.cond.Broadcast()
		}
	}
	m.mu.Unlock()
	// The caller's bookkeeping (mappings, counters, reconciliation) runs
	// before the op turns terminal, so Drain and WaitFor only release
	// once the move's effects are fully visible.
	m.done(o.mv, err)
	m.mu.Lock()
	m.finishLocked(o)
	if abandoned != nil {
		m.finishLocked(abandoned)
	}
	m.mu.Unlock()
}
