// Package auditor implements HFetch's file segment auditor. For every
// file segment it maintains access frequency, recency, and segment
// sequencing (which segment access preceded it), computes the segment
// score of Equation (1), and keeps both the statistics and the
// segment-to-tier mappings in the distributed hashmap so the whole
// cluster shares one view of how files are accessed — without a global
// synchronization barrier.
//
// The auditor is driven by the hardware monitor's event stream. Every
// score change is pushed to a Sink (the hierarchical data placement
// engine), which is what makes HFetch server-push: prefetching is
// triggered by score changes, not by application requests.
package auditor

import (
	"encoding/binary"
	"encoding/gob"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/core/heatmap"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/events"
	"hfetch/internal/telemetry"
)

func init() {
	gob.Register(&Rec{})
}

// Rec is the per-segment record stored in the distributed hashmap.
// Stored records are copy-on-write: mutators return fresh copies, so a
// snapshot read never races with later updates.
type Rec struct {
	Stats score.Stats
	// Size is the segment payload size in bytes (clipped at EOF).
	Size int64
	// Succ is the index of the segment observed to follow this one in
	// the global access stream; -1 when unknown.
	Succ int64
}

// Update notifies the placement engine that a segment's score changed.
type Update struct {
	ID    seg.ID
	Score float64
	Size  int64
	// Trace is the lifecycle trace ID of the access event behind this
	// update (0 = untraced); it lets the engine attribute the fetch it
	// decides on back to the event that caused it.
	Trace uint64
	// Origin names the node whose client drives the access (empty =
	// local). The cluster router uses it to deliver the update to the
	// placement engine of the node that will read the data.
	Origin string
}

// Sink receives score updates and invalidations. Implemented by the
// hierarchical data placement engine.
type Sink interface {
	ScoreUpdated(Update)
	FileInvalidated(file string)
}

// BatchSink is optionally implemented by sinks that accept one delivery
// per drained event batch instead of one call per score change. The
// placement engine implements it: a batched delivery takes its pending
// lock once per drain cycle rather than once per update, which is what
// keeps shard workers from re-serializing on the engine after the event
// queue has been sharded.
type BatchSink interface {
	ScoreBatch([]Update)
}

// Config configures an Auditor.
type Config struct {
	// Node is this node's cluster name, recorded in segment mappings so
	// remote readers know which node's tier holds a segment.
	Node string
	// Segmenter defines the fixed segment grain.
	Segmenter *seg.Segmenter
	// Score are the Equation (1) parameters.
	Score score.Params
	// SeqBoost is the anticipatory weight given to a segment's known
	// successor on each access (0 disables sequencing readahead).
	// Defaults to 0.5.
	SeqBoost float64
	// Heatmaps, when non-nil, persists per-file heatmaps across epochs.
	Heatmaps *heatmap.Store
	// HeatDecay scales scores adopted from a stored heatmap (default 0.7).
	HeatDecay float64
	// Learner, when non-nil, enables the ML scoring extension: emitted
	// scores are blended with the learned re-access probability, and the
	// auditor feeds the model online (re-accesses as positives, one-shot
	// segments as negatives at epoch end).
	Learner *score.Learned
	// Telemetry, when non-nil, times per-event scoring (the audit
	// pipeline stage) and exports the auditor counters.
	Telemetry *telemetry.Registry
}

// Stats reports auditor counters.
type Stats struct {
	Events        int64
	Reads         int64
	Writes        int64
	Invalidations int64
	SegmentsSeen  int64
}

type epochState struct {
	opens   int
	size    int64
	lastIdx int64
}

// epochStripes is the lock-stripe count for the per-file epoch table.
// Epoch state is touched by every read event, so it is striped by the
// same file hash the sharded event queue routes on: a shard worker's
// files cluster on a stable stripe subset and never contend with the
// other shards' workers.
const epochStripes = 64

type epochStripe struct {
	mu sync.Mutex
	m  map[string]*epochState
}

// Auditor is safe for concurrent use; many monitor daemons call
// HandleEvent in parallel.
type Auditor struct {
	cfg   Config
	model *score.Model
	stats *dhm.Map // "s|file|idx" -> *Rec
	maps  *dhm.Map // "m|file|idx" -> tier name (string)

	sink atomic.Pointer[sinkBox]

	epochs [epochStripes]epochStripe

	ctr struct {
		events, reads, writes, invalidations, segs atomic.Int64
	}
}

type sinkBox struct{ s Sink }

// New creates an auditor over the given stats and mapping hashmaps (they
// may be the same dhm.Map; keys are prefixed). The maps must be backed
// by the same cluster on every node.
func New(cfg Config, stats, maps *dhm.Map) *Auditor {
	if cfg.Segmenter == nil {
		cfg.Segmenter = seg.NewSegmenter(0)
	}
	if cfg.SeqBoost == 0 {
		cfg.SeqBoost = 0.5
	}
	if cfg.SeqBoost < 0 {
		cfg.SeqBoost = 0
	}
	if cfg.HeatDecay <= 0 || cfg.HeatDecay > 1 {
		cfg.HeatDecay = 0.7
	}
	a := &Auditor{
		cfg:   cfg,
		model: score.NewModel(cfg.Score),
		stats: stats,
		maps:  maps,
	}
	for i := range a.epochs {
		a.epochs[i].m = make(map[string]*epochState)
	}
	a.registerOps()
	if reg := cfg.Telemetry; reg != nil {
		reg.CounterFunc("hfetch_events_total", "events seen by the auditor", a.ctr.events.Load)
		reg.CounterFunc("hfetch_reads_total", "read events audited", a.ctr.reads.Load)
		reg.CounterFunc("hfetch_invalidations_total", "write events invalidating prefetched data", a.ctr.invalidations.Load)
		reg.CounterFunc("hfetch_segments_seen", "distinct segments with statistics", a.ctr.segs.Load)
		reg.GaugeFunc("hfetch_open_epochs", "files inside a prefetching epoch", func() int64 {
			var n int64
			for i := range a.epochs {
				st := &a.epochs[i]
				st.mu.Lock()
				n += int64(len(st.m))
				st.mu.Unlock()
			}
			return n
		})
	}
	return a
}

// epochStripeOf returns the stripe holding file's epoch state.
func (a *Auditor) epochStripeOf(file string) *epochStripe {
	return &a.epochs[int(events.HashOf(file)%uint64(epochStripes))]
}

// SetSink installs the placement engine; may be changed at runtime.
func (a *Auditor) SetSink(s Sink) {
	a.sink.Store(&sinkBox{s: s})
}

func (a *Auditor) emit(u Update) {
	if box := a.sink.Load(); box != nil && box.s != nil {
		box.s.ScoreUpdated(u)
	}
}

func (a *Auditor) invalidate(file string) {
	if box := a.sink.Load(); box != nil && box.s != nil {
		box.s.FileInvalidated(file)
	}
}

// Segmenter returns the segment grain in use.
func (a *Auditor) Segmenter() *seg.Segmenter { return a.cfg.Segmenter }

// Model returns the scoring model.
func (a *Auditor) Model() *score.Model { return a.model }

// statKey and mapKey build dhm keys without fmt: they run once per
// segment per event on the drain hot path.
func statKey(id seg.ID) string { return segKey('s', id) }
func mapKey(id seg.ID) string  { return segKey('m', id) }

func segKey(prefix byte, id seg.ID) string {
	b := make([]byte, 0, len(id.File)+22)
	b = append(b, prefix, '|')
	b = append(b, id.File...)
	b = append(b, '|')
	b = strconv.AppendInt(b, id.Index, 10)
	return string(b)
}

// ---- distributed mutators ----

// Op names registered on the stats map. Every node must construct its
// Auditor before remote applies arrive (New registers them).
const (
	opAccess = "aud.access" // arg: ts(8) | size(8)
	opRef    = "aud.ref"    // arg: ts(8) | weightBits(8)
	opLink   = "aud.link"   // arg: succ(8)
	opAddRef = "aud.addref" // arg: none
	opSeed   = "aud.seed"   // arg: scoreBits(8) | refs(8) | succ(8) | size(8) | ts(8)
)

func (a *Auditor) registerOps() {
	a.stats.RegisterOp(opAccess, func(cur any, arg []byte) any {
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(arg[0:8])))
		size := int64(binary.BigEndian.Uint64(arg[8:16]))
		nr := a.copyRec(cur)
		a.model.OnAccess(&nr.Stats, ts)
		if size > 0 {
			nr.Size = size
		}
		return nr
	})
	a.stats.RegisterOp(opRef, func(cur any, arg []byte) any {
		ts := time.Unix(0, int64(binary.BigEndian.Uint64(arg[0:8])))
		w := math.Float64frombits(binary.BigEndian.Uint64(arg[8:16]))
		nr := a.copyRec(cur)
		a.model.OnRef(&nr.Stats, ts, w)
		return nr
	})
	a.stats.RegisterOp(opLink, func(cur any, arg []byte) any {
		succ := int64(binary.BigEndian.Uint64(arg[0:8]))
		nr := a.copyRec(cur)
		nr.Succ = succ
		return nr
	})
	a.stats.RegisterOp(opAddRef, func(cur any, arg []byte) any {
		nr := a.copyRec(cur)
		a.model.AddRef(&nr.Stats, time.Now())
		return nr
	})
	a.stats.RegisterOp(opSeed, func(cur any, arg []byte) any {
		if cur != nil {
			return cur // never clobber live statistics with history
		}
		nr := &Rec{Succ: -1}
		nr.Stats.Sum = math.Float64frombits(binary.BigEndian.Uint64(arg[0:8]))
		nr.Stats.Refs = int64(binary.BigEndian.Uint64(arg[8:16]))
		nr.Succ = int64(binary.BigEndian.Uint64(arg[16:24]))
		nr.Size = int64(binary.BigEndian.Uint64(arg[24:32]))
		nr.Stats.Last = time.Unix(0, int64(binary.BigEndian.Uint64(arg[32:40])))
		if nr.Stats.Refs < 1 {
			nr.Stats.Refs = 1
		}
		return nr
	})
}

func (a *Auditor) copyRec(cur any) *Rec {
	if cur == nil {
		a.ctr.segs.Add(1)
		return &Rec{Succ: -1}
	}
	old := cur.(*Rec)
	nr := *old
	return &nr
}

// ---- epoch management ----

// StartEpoch begins (or joins) a prefetching epoch for file. The first
// opener triggers heatmap loading; the return value reports whether this
// call opened the epoch (i.e. a watch should be installed).
func (a *Auditor) StartEpoch(file string, size int64) bool {
	st := a.epochStripeOf(file)
	st.mu.Lock()
	es := st.m[file]
	if es == nil {
		es = &epochState{size: size, lastIdx: -1}
		st.m[file] = es
	}
	es.opens++
	first := es.opens == 1
	if size > es.size {
		es.size = size
	}
	st.mu.Unlock()
	if first {
		a.loadHeatmap(file, size)
	}
	return first
}

// EndEpoch ends one participant's epoch; the last closer persists the
// heatmap. The return value reports whether the epoch fully closed
// (i.e. the watch should be removed).
func (a *Auditor) EndEpoch(file string) bool {
	st := a.epochStripeOf(file)
	st.mu.Lock()
	es := st.m[file]
	if es == nil {
		st.mu.Unlock()
		return false
	}
	es.opens--
	last := es.opens <= 0
	var size int64
	if last {
		size = es.size
		delete(st.m, file)
	}
	st.mu.Unlock()
	if last {
		a.finishEpoch(file, size)
	}
	return last
}

// finishEpoch runs last-closer work: negative examples for the ML
// extension (segments touched exactly once this epoch) and heatmap
// persistence.
func (a *Auditor) finishEpoch(file string, size int64) {
	if a.cfg.Learner != nil {
		now := time.Now()
		n := a.cfg.Segmenter.Count(size)
		for i := int64(0); i < n; i++ {
			v, ok, err := a.stats.Get(statKey(seg.ID{File: file, Index: i}))
			if err != nil || !ok {
				continue
			}
			rec := v.(*Rec)
			if rec.Stats.K == 1 {
				a.cfg.Learner.Observe(1, rec.Stats.Last, rec.Stats.Refs, now, false)
			}
		}
	}
	a.saveHeatmap(file, size)
}

// EpochOpen reports whether file is inside a prefetching epoch.
func (a *Auditor) EpochOpen(file string) bool {
	st := a.epochStripeOf(file)
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.m[file] != nil
}

func (a *Auditor) loadHeatmap(file string, size int64) {
	if a.cfg.Heatmaps == nil {
		return
	}
	h, err := a.cfg.Heatmaps.Load(file)
	if err != nil || h == nil {
		return
	}
	now := time.Now()
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(now.UnixNano()))
	for _, e := range h.Entries {
		id := seg.ID{File: file, Index: e.Index}
		segSize := a.cfg.Segmenter.RangeOf(id, size).Len
		if segSize <= 0 {
			continue
		}
		arg := make([]byte, 40)
		binary.BigEndian.PutUint64(arg[0:8], math.Float64bits(e.Score*a.cfg.HeatDecay))
		binary.BigEndian.PutUint64(arg[8:16], uint64(e.Refs))
		binary.BigEndian.PutUint64(arg[16:24], uint64(e.Succ))
		binary.BigEndian.PutUint64(arg[24:32], uint64(segSize))
		copy(arg[32:40], ts[:])
		v, err := a.stats.Apply(statKey(id), opSeed, arg)
		if err != nil || v == nil {
			continue
		}
		rec := v.(*Rec)
		s := a.model.Score(&rec.Stats, now)
		if s > 0 {
			a.emit(Update{ID: id, Score: s, Size: rec.Size})
		}
	}
}

func (a *Auditor) saveHeatmap(file string, size int64) {
	if a.cfg.Heatmaps == nil {
		return
	}
	h := heatmap.New(file, a.cfg.Segmenter.Size())
	now := time.Now()
	n := a.cfg.Segmenter.Count(size)
	for i := int64(0); i < n; i++ {
		id := seg.ID{File: file, Index: i}
		v, ok, err := a.stats.Get(statKey(id))
		if err != nil || !ok {
			continue
		}
		rec := v.(*Rec)
		s := a.model.Score(&rec.Stats, now)
		if s <= 0 && rec.Stats.K == 0 {
			continue
		}
		h.Add(heatmap.Entry{Index: i, Score: s, K: rec.Stats.K, Refs: rec.Stats.Refs, Succ: rec.Succ})
	}
	if h.Len() == 0 {
		return
	}
	if old, err := a.cfg.Heatmaps.Load(file); err == nil {
		h.Merge(old, a.cfg.HeatDecay)
	}
	a.cfg.Heatmaps.Save(h) //nolint:errcheck // heatmaps are an optional optimization
}

// ---- event handling ----

// HandleEvent processes one monitored event; called by the monitor's
// daemon pool.
func (a *Auditor) HandleEvent(ev events.Event) {
	a.handleEvent(ev, a.emit)
}

// HandleBatch processes one drained batch (monitor.BatchHandler). When
// the sink implements BatchSink, the batch's score updates are
// accumulated locally and delivered in a single ScoreBatch call, so a
// shard worker takes the engine's pending lock once per drain cycle
// instead of once per score change.
func (a *Auditor) HandleBatch(evs []events.Event) {
	box := a.sink.Load()
	var bs BatchSink
	if box != nil {
		bs, _ = box.s.(BatchSink)
	}
	if bs == nil {
		for _, ev := range evs {
			a.HandleEvent(ev)
		}
		return
	}
	ups := make([]Update, 0, len(evs))
	for _, ev := range evs {
		a.handleEvent(ev, func(u Update) { ups = append(ups, u) })
	}
	if len(ups) > 0 {
		bs.ScoreBatch(ups)
	}
}

// handleEvent audits one event, sending every score change to out (the
// sink directly, or a batch accumulator).
//
//hfetch:hotpath
func (a *Auditor) handleEvent(ev events.Event, out func(Update)) {
	a.ctr.events.Add(1)
	var start time.Time
	timed := a.cfg.Telemetry.TimeSample()
	if timed {
		start = time.Now()
	}
	switch ev.Op {
	case events.OpRead:
		a.ctr.reads.Add(1)
		a.handleRead(ev, out)
	case events.OpWrite:
		a.ctr.writes.Add(1)
		a.handleWrite(ev)
	case events.OpCapacity, events.OpOpen, events.OpClose:
		// Capacity is consumed for metrics; open/close epochs arrive via
		// the agent manager's StartEpoch/EndEpoch.
	}
	if timed {
		segIdx := int64(-1)
		if ev.Op == events.OpRead {
			segIdx = a.cfg.Segmenter.IndexOf(ev.Offset)
		}
		a.cfg.Telemetry.Span(telemetry.StageAudit, ev.File, segIdx, ev.Tier, start, time.Since(start))
	}
}

//hfetch:hotpath
func (a *Auditor) handleRead(ev events.Event, out func(Update)) {
	ids := a.cfg.Segmenter.Cover(ev.File, ev.Offset, ev.Length)
	if len(ids) == 0 {
		return
	}
	st := a.epochStripeOf(ev.File)
	st.mu.Lock()
	es := st.m[ev.File]
	var prev int64 = -1
	var fileSize int64
	if es != nil {
		prev = es.lastIdx
		es.lastIdx = ids[len(ids)-1].Index
		fileSize = es.size
	}
	st.mu.Unlock()

	ts := ev.Time
	if ts.IsZero() {
		//lint:allow hotpath fallback for events posted without a capture-time stamp; fires once per read event, not per segment
		ts = time.Now()
	}
	var tsb [8]byte
	binary.BigEndian.PutUint64(tsb[:], uint64(ts.UnixNano()))

	for _, id := range ids {
		segSize := a.cfg.Segmenter.RangeOf(id, fileSize).Len
		if segSize <= 0 {
			segSize = a.cfg.Segmenter.Size()
		}
		arg := make([]byte, 16)
		copy(arg[0:8], tsb[:])
		binary.BigEndian.PutUint64(arg[8:16], uint64(segSize))
		v, err := a.stats.Apply(statKey(id), opAccess, arg)
		if err != nil {
			continue
		}
		rec := v.(*Rec)
		sc := a.model.Score(&rec.Stats, ts)
		if a.cfg.Learner != nil {
			sc = a.learnAndBlend(rec, ts, sc)
		}
		up := Update{ID: id, Score: sc, Size: rec.Size, Origin: ev.Origin}
		if id.Index == ids[0].Index {
			// The event's trace is rooted at its first segment; updates
			// for the rest of a multi-segment read stay untraced.
			up.Trace = ev.Trace
		}
		out(up)

		// Sequencing readahead: boost the known successor of every
		// accessed segment so it climbs the hierarchy ahead of its read.
		if rec.Succ >= 0 && rec.Succ != id.Index && a.cfg.SeqBoost > 0 {
			a.boost(seg.ID{File: id.File, Index: rec.Succ}, ts, fileSize, ev.Origin, out)
		}
	}

	// Learn the predecessor link from the last segment of the previous
	// read to the first segment of this one.
	if a.cfg.SeqBoost > 0 {
		a.learnLink(ev.File, prev, ids[0].Index)
	}
}

// learnLink records that segment prev is followed by cur, increasing
// cur's reference count when the link is new.
//
//hfetch:hotpath
func (a *Auditor) learnLink(file string, prev, cur int64) {
	if prev < 0 || prev == cur {
		return
	}
	prevID := seg.ID{File: file, Index: prev}
	v, ok, err := a.stats.Get(statKey(prevID))
	if err != nil || !ok {
		return
	}
	if v.(*Rec).Succ == cur {
		return // link already known
	}
	var arg [8]byte
	binary.BigEndian.PutUint64(arg[:], uint64(cur))
	a.stats.Apply(statKey(prevID), opLink, arg[:])                        //nolint:errcheck
	a.stats.Apply(statKey(seg.ID{File: file, Index: cur}), opAddRef, nil) //nolint:errcheck
}

// boost applies the anticipatory sequencing weight to id. The update
// inherits the triggering access's origin: the successor should be
// prefetched where the reader is.
//
//hfetch:hotpath
func (a *Auditor) boost(id seg.ID, ts time.Time, fileSize int64, origin string, out func(Update)) {
	arg := make([]byte, 16)
	binary.BigEndian.PutUint64(arg[0:8], uint64(ts.UnixNano()))
	binary.BigEndian.PutUint64(arg[8:16], math.Float64bits(a.cfg.SeqBoost))
	v, err := a.stats.Apply(statKey(id), opRef, arg)
	if err != nil {
		return
	}
	rec := v.(*Rec)
	size := rec.Size
	if size == 0 {
		size = a.cfg.Segmenter.RangeOf(id, fileSize).Len
		if size <= 0 {
			size = a.cfg.Segmenter.Size()
		}
	}
	out(Update{ID: id, Score: a.model.Score(&rec.Stats, ts), Size: size, Origin: origin})
}

// learnAndBlend feeds the learner a positive example for the segment's
// pre-access state (this access proves it was re-accessed) and blends
// the analytic score with the predicted re-access probability.
func (a *Auditor) learnAndBlend(rec *Rec, ts time.Time, analytic float64) float64 {
	st := &rec.Stats
	if st.K >= 2 && len(st.History) >= 2 {
		prevLast := st.History[len(st.History)-2]
		a.cfg.Learner.Observe(st.K-1, prevLast, st.Refs, ts, true)
	}
	p := a.cfg.Learner.Predict(st.K, st.Last, st.Refs, ts)
	return score.Blend(analytic, p)
}

func (a *Auditor) handleWrite(ev events.Event) {
	a.ctr.invalidations.Add(1)
	// Consistency: a write from any application invalidates prefetched
	// data for the file. Mappings are cleared by the engine (which owns
	// the tier residents); statistics survive, the data does not.
	a.invalidate(ev.File)
}

// ---- queries ----

// SegmentRec returns a snapshot of the stats record for id.
func (a *Auditor) SegmentRec(id seg.ID) (*Rec, bool) {
	v, ok, err := a.stats.Get(statKey(id))
	if err != nil || !ok {
		return nil, false
	}
	return v.(*Rec), true
}

// ScoreOf evaluates id's current score.
func (a *Auditor) ScoreOf(id seg.ID, at time.Time) float64 {
	rec, ok := a.SegmentRec(id)
	if !ok {
		return 0
	}
	return a.model.Score(&rec.Stats, at)
}

// Mapping returns which node and tier currently hold id. ok is false
// when the segment is not prefetched anywhere.
func (a *Auditor) Mapping(id seg.ID) (node, tier string, ok bool) {
	v, ok, err := a.maps.Get(mapKey(id))
	if err != nil || !ok {
		return "", "", false
	}
	loc, _ := v.(string)
	if loc == "" {
		return "", "", false
	}
	if i := strings.IndexByte(loc, '|'); i >= 0 {
		return loc[:i], loc[i+1:], true
	}
	return "", loc, true
}

// SetMapping records id as resident in this node's tier; engine-only.
func (a *Auditor) SetMapping(id seg.ID, tier string) {
	a.maps.Put(mapKey(id), a.cfg.Node+"|"+tier) //nolint:errcheck // mapping is advisory; reads fall back to PFS
}

// DeleteMapping clears id's residency; engine-only.
func (a *Auditor) DeleteMapping(id seg.ID) {
	a.maps.Delete(mapKey(id)) //nolint:errcheck
}

// Sweep garbage-collects segment statistics: records belonging to files
// with no open epoch whose score has decayed below floor — and which are
// not prefetched anywhere — are deleted. It returns how many records
// were removed. Long-running servers call this periodically so the
// statistics map tracks the active working set instead of growing with
// every file ever touched ("heatmaps get deleted once the workflow
// ends").
func (a *Auditor) Sweep(now time.Time, floor float64) int {
	type victim struct{ key, file string }
	var victims []victim
	a.stats.Range(func(key string, val any) bool {
		rec, ok := val.(*Rec)
		if !ok {
			return true
		}
		if a.model.Score(&rec.Stats, now) >= floor {
			return true
		}
		file, idx, ok := parseStatKey(key)
		if !ok {
			return true
		}
		victims = append(victims, victim{key: key, file: file})
		_ = idx
		return true
	})
	removed := 0
	for _, v := range victims {
		if a.EpochOpen(v.file) {
			continue
		}
		file, idx, _ := parseStatKey(v.key)
		if _, _, mapped := a.Mapping(seg.ID{File: file, Index: idx}); mapped {
			continue // still resident in a tier; the engine owns it
		}
		a.stats.Delete(v.key) //nolint:errcheck
		removed++
	}
	return removed
}

// parseStatKey inverts statKey: "s|file|idx".
func parseStatKey(key string) (file string, idx int64, ok bool) {
	if !strings.HasPrefix(key, "s|") {
		return "", 0, false
	}
	rest := key[2:]
	cut := strings.LastIndexByte(rest, '|')
	if cut < 0 {
		return "", 0, false
	}
	file = rest[:cut]
	n, err := strconv.ParseInt(rest[cut+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return file, n, true
}

// Counters returns a snapshot of the auditor counters.
func (a *Auditor) Counters() Stats {
	return Stats{
		Events:        a.ctr.events.Load(),
		Reads:         a.ctr.reads.Load(),
		Writes:        a.ctr.writes.Load(),
		Invalidations: a.ctr.invalidations.Load(),
		SegmentsSeen:  a.ctr.segs.Load(),
	}
}
