package auditor

import (
	"sync"
	"testing"
	"time"

	"hfetch/internal/core/heatmap"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/events"
)

type recordingSink struct {
	mu          sync.Mutex
	updates     []Update
	invalidated []string
}

func (r *recordingSink) ScoreUpdated(u Update) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.updates = append(r.updates, u)
}

func (r *recordingSink) FileInvalidated(f string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.invalidated = append(r.invalidated, f)
}

func (r *recordingSink) snapshot() ([]Update, []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Update(nil), r.updates...), append([]string(nil), r.invalidated...)
}

func newAuditor(t *testing.T, cfg Config) (*Auditor, *recordingSink) {
	t.Helper()
	if cfg.Node == "" {
		cfg.Node = "n0"
	}
	stats := dhm.New(dhm.Config{Name: "stats", Self: "n0"}, nil)
	maps := dhm.New(dhm.Config{Name: "maps", Self: "n0"}, nil)
	a := New(cfg, stats, maps)
	sink := &recordingSink{}
	a.SetSink(sink)
	return a, sink
}

func readEv(file string, off, ln int64) events.Event {
	return events.Event{Op: events.OpRead, File: file, Offset: off, Length: ln, Time: time.Now()}
}

func TestReadEventUpdatesStats(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	rec, ok := a.SegmentRec(seg.ID{File: "f", Index: 0})
	if !ok || rec.Stats.K != 1 {
		t.Fatalf("rec = %+v %v, want K=1", rec, ok)
	}
	if rec.Size != 100 {
		t.Fatalf("Size = %d, want 100", rec.Size)
	}
	ups, _ := sink.snapshot()
	if len(ups) != 1 || ups[0].ID.Index != 0 || ups[0].Score <= 0 {
		t.Fatalf("updates = %+v", ups)
	}
}

func TestReadSpanningSegmentsUpdatesAll(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100), SeqBoost: -1})
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 50, 200)) // covers segments 0,1,2
	for i := int64(0); i <= 2; i++ {
		if _, ok := a.SegmentRec(seg.ID{File: "f", Index: i}); !ok {
			t.Fatalf("segment %d not recorded", i)
		}
	}
	ups, _ := sink.snapshot()
	if len(ups) != 3 {
		t.Fatalf("updates = %d, want 3", len(ups))
	}
}

func TestLastSegmentSizeClipped(t *testing.T) {
	a, _ := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 250)
	a.HandleEvent(readEv("f", 200, 50)) // segment 2: bytes 200..250
	rec, _ := a.SegmentRec(seg.ID{File: "f", Index: 2})
	if rec.Size != 50 {
		t.Fatalf("clipped size = %d, want 50", rec.Size)
	}
}

func TestSequencingLearnsLinkAndBoosts(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100), SeqBoost: 0.5})
	a.StartEpoch("f", 1000)
	// First pass: reads of segment 0 then 1 teach the 0 -> 1 link.
	a.HandleEvent(readEv("f", 0, 100))
	a.HandleEvent(readEv("f", 100, 100))
	rec0, _ := a.SegmentRec(seg.ID{File: "f", Index: 0})
	if rec0.Succ != 1 {
		t.Fatalf("succ of seg 0 = %d, want 1", rec0.Succ)
	}
	rec1, _ := a.SegmentRec(seg.ID{File: "f", Index: 1})
	if rec1.Stats.Refs < 2 {
		t.Fatalf("refs of seg 1 = %d, want >= 2 (link learned)", rec1.Stats.Refs)
	}
	// Second pass: re-reading segment 0 must boost segment 1's score.
	before := a.ScoreOf(seg.ID{File: "f", Index: 1}, time.Now())
	a.HandleEvent(readEv("f", 0, 100))
	after := a.ScoreOf(seg.ID{File: "f", Index: 1}, time.Now())
	if after <= before {
		t.Fatalf("successor not boosted: before=%v after=%v", before, after)
	}
	// And the boost must have emitted an update for segment 1.
	ups, _ := sink.snapshot()
	found := false
	for _, u := range ups[3:] { // skip the first three reads' own updates
		if u.ID.Index == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no update emitted for boosted successor")
	}
}

func TestSeqBoostDisabled(t *testing.T) {
	a, _ := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100), SeqBoost: -1})
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	a.HandleEvent(readEv("f", 100, 100))
	rec0, _ := a.SegmentRec(seg.ID{File: "f", Index: 0})
	if rec0.Succ != -1 {
		t.Fatalf("sequencing should be disabled, succ = %d", rec0.Succ)
	}
}

func TestWriteEventInvalidates(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 1000)
	a.HandleEvent(events.Event{Op: events.OpWrite, File: "f", Offset: 0, Length: 10, Time: time.Now()})
	_, inv := sink.snapshot()
	if len(inv) != 1 || inv[0] != "f" {
		t.Fatalf("invalidations = %v", inv)
	}
	c := a.Counters()
	if c.Writes != 1 || c.Invalidations != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestEpochRefCounting(t *testing.T) {
	a, _ := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	if !a.StartEpoch("f", 100) {
		t.Fatal("first StartEpoch must open")
	}
	if a.StartEpoch("f", 100) {
		t.Fatal("second StartEpoch must not open")
	}
	if a.EndEpoch("f") {
		t.Fatal("first EndEpoch of two must not close")
	}
	if !a.EndEpoch("f") {
		t.Fatal("last EndEpoch must close")
	}
	if a.EpochOpen("f") {
		t.Fatal("epoch should be closed")
	}
	if a.EndEpoch("ghost") {
		t.Fatal("ending unknown epoch must be a no-op")
	}
}

func TestMappingCRUD(t *testing.T) {
	a, _ := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	id := seg.ID{File: "f", Index: 3}
	if _, _, ok := a.Mapping(id); ok {
		t.Fatal("unmapped segment must report !ok")
	}
	a.SetMapping(id, "ram")
	node, tier, ok := a.Mapping(id)
	if !ok || tier != "ram" || node != "n0" {
		t.Fatalf("Mapping = %q %q %v", node, tier, ok)
	}
	a.DeleteMapping(id)
	if _, _, ok := a.Mapping(id); ok {
		t.Fatal("mapping must be gone")
	}
}

func TestHeatmapPersistAndSeed(t *testing.T) {
	store, err := heatmap.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Segmenter: seg.NewSegmenter(100),
		Score:     score.Params{P: 2, Unit: time.Minute}, // slow decay for the test
		Heatmaps:  store,
	}
	a1, _ := newAuditor(t, cfg)
	a1.StartEpoch("f", 1000)
	a1.HandleEvent(readEv("f", 0, 100))
	a1.HandleEvent(readEv("f", 0, 100))
	a1.HandleEvent(readEv("f", 100, 100))
	if !a1.EndEpoch("f") {
		t.Fatal("epoch must close")
	}
	h, err := store.Load("f")
	if err != nil || h == nil || h.Len() < 2 {
		t.Fatalf("heatmap = %+v %v", h, err)
	}

	// A fresh auditor (fresh cluster state) reloads the heatmap on epoch
	// start and emits pre-placement updates: server push before any read.
	a2, sink2 := newAuditor(t, cfg)
	a2.StartEpoch("f", 1000)
	ups, _ := sink2.snapshot()
	if len(ups) == 0 {
		t.Fatal("heatmap seeding must emit score updates before any read")
	}
	for _, u := range ups {
		if u.Score <= 0 || u.Size <= 0 {
			t.Fatalf("bad seeded update %+v", u)
		}
	}
	if a2.ScoreOf(seg.ID{File: "f", Index: 0}, time.Now()) <= 0 {
		t.Fatal("seeded segment must have positive score")
	}
}

func TestSeedDoesNotClobberLiveStats(t *testing.T) {
	store, _ := heatmap.NewStore(t.TempDir())
	cfg := Config{Segmenter: seg.NewSegmenter(100), Heatmaps: store,
		Score: score.Params{P: 2, Unit: time.Minute}}
	a, _ := newAuditor(t, cfg)
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	a.EndEpoch("f")

	// Accumulate live stats, then re-open (heatmap seed must not reset K).
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	rec, _ := a.SegmentRec(seg.ID{File: "f", Index: 0})
	if rec.Stats.K != 2 {
		t.Fatalf("K = %d, want 2 (live stats preserved)", rec.Stats.K)
	}
}

func TestCountersAccumulate(t *testing.T) {
	a, _ := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	a.HandleEvent(readEv("f", 100, 100))
	a.HandleEvent(events.Event{Op: events.OpCapacity, Tier: "ram", Free: 10})
	c := a.Counters()
	if c.Events != 3 || c.Reads != 2 || c.SegmentsSeen != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestConcurrentReadEvents(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 100000)
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				off := int64((w*per + i) % 100 * 100)
				a.HandleEvent(readEv("f", off, 100))
			}
		}(w)
	}
	wg.Wait()
	// Total K across segments equals total reads.
	var totalK int64
	for i := int64(0); i < 100; i++ {
		if rec, ok := a.SegmentRec(seg.ID{File: "f", Index: i}); ok {
			totalK += rec.Stats.K
		}
	}
	if totalK != workers*per {
		t.Fatalf("sum K = %d, want %d", totalK, workers*per)
	}
	ups, _ := sink.snapshot()
	if len(ups) < workers*per {
		t.Fatalf("updates = %d, want >= %d", len(ups), workers*per)
	}
}

func TestZeroLengthReadIgnored(t *testing.T) {
	a, sink := newAuditor(t, Config{Segmenter: seg.NewSegmenter(100)})
	a.StartEpoch("f", 100)
	a.HandleEvent(readEv("f", 0, 0))
	ups, _ := sink.snapshot()
	if len(ups) != 0 {
		t.Fatalf("zero-length read emitted updates: %+v", ups)
	}
}

func TestLearnerIntegration(t *testing.T) {
	store, _ := heatmap.NewStore(t.TempDir())
	learner := score.NewLearned(0.1, time.Second)
	a, sink := newAuditor(t, Config{
		Segmenter: seg.NewSegmenter(100),
		Score:     score.Params{P: 2, Unit: time.Minute},
		Heatmaps:  store,
		Learner:   learner,
	})
	a.StartEpoch("f", 1000)
	// Segment 0 re-accessed repeatedly (positives), segments 1..5 once.
	for i := 0; i < 10; i++ {
		a.HandleEvent(readEv("f", 0, 100))
	}
	for idx := int64(1); idx <= 5; idx++ {
		a.HandleEvent(readEv("f", idx*100, 100))
	}
	a.EndEpoch("f") // one-shot segments become negative examples
	pos, neg := learner.Examples()
	if pos == 0 || neg == 0 {
		t.Fatalf("learner examples = %d/%d, want both > 0", pos, neg)
	}
	ups, _ := sink.snapshot()
	if len(ups) == 0 {
		t.Fatal("no updates emitted")
	}
	for _, u := range ups {
		if u.Score < 0 {
			t.Fatalf("blended score negative: %+v", u)
		}
	}
}

func TestSweepRemovesColdClosedStats(t *testing.T) {
	a, _ := newAuditor(t, Config{
		Segmenter: seg.NewSegmenter(100),
		Score:     score.Params{P: 2, Unit: time.Millisecond}, // fast decay
	})
	a.StartEpoch("hot", 1000)
	a.StartEpoch("cold", 1000)
	a.HandleEvent(readEv("hot", 0, 100))
	a.HandleEvent(readEv("cold", 0, 100))
	a.HandleEvent(readEv("cold", 100, 100))
	a.EndEpoch("cold") // cold's epoch closes; hot stays open

	// Wait for the scores to decay well below the floor.
	time.Sleep(30 * time.Millisecond)
	removed := a.Sweep(time.Now(), 0.01)
	if removed != 2 {
		t.Fatalf("removed = %d, want cold's 2 segments", removed)
	}
	if _, ok := a.SegmentRec(seg.ID{File: "cold", Index: 0}); ok {
		t.Fatal("cold stats must be gone")
	}
	if _, ok := a.SegmentRec(seg.ID{File: "hot", Index: 0}); !ok {
		t.Fatal("open-epoch stats must survive the sweep")
	}
}

func TestSweepSparesMappedSegments(t *testing.T) {
	a, _ := newAuditor(t, Config{
		Segmenter: seg.NewSegmenter(100),
		Score:     score.Params{P: 2, Unit: time.Millisecond},
	})
	a.StartEpoch("f", 1000)
	a.HandleEvent(readEv("f", 0, 100))
	a.EndEpoch("f")
	a.SetMapping(seg.ID{File: "f", Index: 0}, "ram") // resident somewhere
	time.Sleep(20 * time.Millisecond)
	if removed := a.Sweep(time.Now(), 0.01); removed != 0 {
		t.Fatalf("removed = %d, want 0 (segment is resident)", removed)
	}
	if _, ok := a.SegmentRec(seg.ID{File: "f", Index: 0}); !ok {
		t.Fatal("mapped segment stats must survive")
	}
}

func TestParseStatKey(t *testing.T) {
	f, idx, ok := parseStatKey("s|a/b|c|42")
	if !ok || f != "a/b|c" || idx != 42 {
		t.Fatalf("parse = %q %d %v", f, idx, ok)
	}
	if _, _, ok := parseStatKey("m|x|1"); ok {
		t.Fatal("mapping key must not parse")
	}
	if _, _, ok := parseStatKey("s|nopipe"); ok {
		t.Fatal("malformed key must not parse")
	}
	if _, _, ok := parseStatKey("s|f|notanum"); ok {
		t.Fatal("bad index must not parse")
	}
}
