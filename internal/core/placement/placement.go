// Package placement implements HFetch's hierarchical data placement
// engine — Algorithm 1 of the paper. The engine consumes segment score
// updates pushed by the auditor, and periodically (by time interval or by
// update count, whichever fires first — the engine "reactiveness")
// recomputes where each updated segment belongs in the hierarchy:
//
//	procedure CalculatePlacement(segment, tier)
//	    if segment.score > tier.min_score then
//	        if segment cannot fit in this tier then
//	            DemoteSegments(segment.score, tier)
//	        place segment in this tier
//	    else CalculatePlacement(segment, tier.next)
//
// Hotter segments end in faster tiers; demoted segments cascade down;
// segments falling below the last tier are evicted (the PFS is the
// origin, so eviction is free). The cache is exclusive: a segment lives
// in exactly one tier. While a tier has free capacity its effective
// min_score is -inf (anything may enter); once full, the minimum
// resident score gates entry, which is the watermark behaviour the
// paper's RAM example describes.
package placement

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/core/auditor"
	amover "hfetch/internal/core/mover"
	"hfetch/internal/core/seg"
	"hfetch/internal/invariant"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Reactiveness presets from the paper's Figure 3(b).
const (
	// High triggers the engine at every segment score update.
	High = 1
	// Medium (the HFetch default) triggers every 100 score updates.
	Medium = 100
	// Low triggers every 1024 score updates.
	Low = 1024
)

// Policy selects the placement algorithm. Score is Algorithm 1 of the
// paper; Random and RoundRobin are the "sub-optimal, quicker to
// calculate" alternatives §IV-A discusses, kept for ablation.
type Policy int

// Placement policies.
const (
	// PolicyScore maps the score spectrum onto the tiers (Algorithm 1).
	PolicyScore Policy = iota
	// PolicyRandom places each updated segment in a random tier with
	// room (no demotions).
	PolicyRandom
	// PolicyRoundRobin cycles the tiers (no demotions).
	PolicyRoundRobin
)

// Config configures an Engine.
type Config struct {
	// Policy selects the placement algorithm (default PolicyScore).
	Policy Policy
	// Interval is trigger (a): run at least this often. Default 1s.
	Interval time.Duration
	// UpdateThreshold is trigger (b): run after this many score updates.
	// Default Medium (100).
	UpdateThreshold int
	// Workers is the number of engine threads executing data movement
	// within a run (synchronous mode), and the PFS fetch-stream cap of
	// the async mover — both model the paper §IV engine threads.
	// Default 2.
	Workers int
	// Async decouples deciding from executing: run() commits the
	// residency model, hands the merged plan to a persistent mover
	// pipeline, and returns without waiting on device time. The zero
	// value keeps the legacy synchronous execution (run() blocks until
	// the moves land), which existing placement tests exercise.
	Async bool
	// MoverConcurrency is the async mover's per-tier worker count,
	// fastest tier first. Missing or non-positive entries use the mover
	// default (max(2, 8>>tier)). Ignored when Async is false.
	MoverConcurrency []int
	// MoverQueueDepth bounds each per-tier mover queue; a full queue
	// applies backpressure to the placement pass. Default 256. Ignored
	// when Async is false.
	MoverQueueDepth int
	// FetchCoalesce lets the async mover merge adjacent queued PFS
	// fetches of one file into a single origin read. Ignored when Async
	// is false.
	FetchCoalesce bool
	// MinScore is the global admission floor: segments scoring below it
	// are never prefetched. Default 0 (admit anything with score > 0).
	MinScore float64
	// Hysteresis damps churn: a resident segment whose score moved by
	// less than this relative fraction keeps its tier instead of being
	// re-placed (and possibly swapped with an equal-scored neighbour).
	// Default 0.2; negative disables damping.
	Hysteresis float64
	// Telemetry, when non-nil, times placement decisions (the place
	// pipeline stage) and exports the engine counters.
	Telemetry *telemetry.Registry
}

// Stats are cumulative engine counters.
type Stats struct {
	Runs        int64
	Updates     int64
	Placements  int64 // fetches from the PFS
	Promotions  int64
	Demotions   int64
	Evictions   int64
	FailedMoves int64
}

// Mover executes planned data movement (implemented by ioclient.Client).
type Mover interface {
	Fetch(id seg.ID, size int64, dst *tiers.Store) error
	Transfer(id seg.ID, src, dst *tiers.Store) error
	Evict(id seg.ID, src *tiers.Store) error
}

// Engine is the hierarchical data placement engine. It implements
// auditor.Sink.
type Engine struct {
	cfg   Config
	hier  *tiers.Hierarchy
	mover Mover
	aud   *auditor.Auditor

	// async is the persistent mover pipeline (nil in synchronous mode).
	// run() submits merged plans to it instead of calling execute().
	async *amover.Mover

	mu          sync.Mutex
	pending     map[seg.ID]auditor.Update
	invalidated map[string]struct{}
	updateCount int
	rrNext      uint64

	// Engine's model of tier residency: per tier, segment -> (score, size).
	resident []map[seg.ID]entry
	used     []int64

	// runMu serializes placement passes (the loop and explicit Flush).
	runMu sync.Mutex

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	ctr struct {
		runs, updates, placements, promotions, demotions, evictions, failed atomic.Int64
	}
}

type entry struct {
	score float64
	size  int64
}

// move is one planned data movement. from/to index tiers; -1 means the
// PFS (for from) or eviction (for to). trace carries the lifecycle trace
// ID of the score update that caused the move (meaningful for fetches).
type move struct {
	id    seg.ID
	size  int64
	from  int
	to    int
	trace uint64
}

// New creates an engine over the hierarchy, executing moves with mover
// and recording segment mappings through aud.
func New(cfg Config, hier *tiers.Hierarchy, mover Mover, aud *auditor.Auditor) *Engine {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.UpdateThreshold <= 0 {
		cfg.UpdateThreshold = Medium
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.Hysteresis == 0 {
		cfg.Hysteresis = 0.2
	}
	if cfg.Hysteresis < 0 {
		cfg.Hysteresis = 0
	}
	e := &Engine{
		cfg:         cfg,
		hier:        hier,
		mover:       mover,
		aud:         aud,
		pending:     make(map[seg.ID]auditor.Update),
		invalidated: make(map[string]struct{}),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	e.resident = make([]map[seg.ID]entry, hier.Len())
	e.used = make([]int64, hier.Len())
	for i := range e.resident {
		e.resident[i] = make(map[seg.ID]entry)
	}
	if reg := cfg.Telemetry; reg != nil {
		reg.CounterFunc("hfetch_engine_runs_total", "placement engine passes", e.ctr.runs.Load)
		reg.CounterFunc("hfetch_engine_updates_total", "score updates received", e.ctr.updates.Load)
		reg.CounterFunc("hfetch_placements_total", "segments fetched from the PFS", e.ctr.placements.Load)
		reg.CounterFunc("hfetch_promotions_total", "segments moved to a faster tier", e.ctr.promotions.Load)
		reg.CounterFunc("hfetch_demotions_total", "segments moved to a slower tier", e.ctr.demotions.Load)
		reg.CounterFunc("hfetch_evictions_total", "segments dropped from the hierarchy", e.ctr.evictions.Load)
		reg.CounterFunc("hfetch_failed_moves_total", "data movements that failed and were reconciled", e.ctr.failed.Load)
		reg.GaugeFunc("hfetch_engine_pending_updates", "score updates awaiting the next pass", func() int64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return int64(len(e.pending))
		})
	}
	if cfg.Async {
		e.async = amover.New(amover.Config{
			Concurrency: cfg.MoverConcurrency,
			QueueDepth:  cfg.MoverQueueDepth,
			PFSStreams:  cfg.Workers,
			Coalesce:    cfg.FetchCoalesce,
			Telemetry:   cfg.Telemetry,
		}, hier, mover, e.moveDone)
		// Workers start immediately so Flush-only engines (tests) drain
		// without Start; they idle on a condition variable until moves
		// arrive.
		e.async.Start()
	}
	return e
}

// Start launches the engine loop.
func (e *Engine) Start() {
	e.wg.Add(1)
	go e.loop()
}

// Stop terminates the engine after a final drain. In async mode the
// mover pipeline is drained and shut down too, so every submitted move
// is terminal when Stop returns.
func (e *Engine) Stop() {
	e.once.Do(func() { close(e.stop) })
	e.wg.Wait()
	if e.async != nil {
		e.async.Drain()
		e.async.Stop()
	}
}

// ScoreUpdated implements auditor.Sink. It is the hot path: a map insert
// and, past the threshold, a non-blocking kick.
//
//hfetch:hotpath
func (e *Engine) ScoreUpdated(u auditor.Update) {
	e.ctr.updates.Add(1)
	e.mu.Lock()
	e.pending[u.ID] = u
	e.updateCount++
	fire := e.updateCount >= e.cfg.UpdateThreshold
	e.mu.Unlock()
	if fire {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
}

// ScoreBatch implements auditor.BatchSink: one pending-lock acquisition
// absorbs a whole drain cycle's score updates, so the sharded monitor's
// workers do not re-serialize on the engine. Later updates of the same
// segment within the batch win, exactly as they would arriving one by
// one.
//
//hfetch:hotpath
func (e *Engine) ScoreBatch(ups []auditor.Update) {
	if len(ups) == 0 {
		return
	}
	e.ctr.updates.Add(int64(len(ups)))
	e.mu.Lock()
	for _, u := range ups {
		e.pending[u.ID] = u
	}
	e.updateCount += len(ups)
	fire := e.updateCount >= e.cfg.UpdateThreshold
	e.mu.Unlock()
	if fire {
		select {
		case e.kick <- struct{}{}:
		default:
		}
	}
}

// FileInvalidated implements auditor.Sink: a write to file makes every
// prefetched segment of it stale.
func (e *Engine) FileInvalidated(file string) {
	e.mu.Lock()
	e.invalidated[file] = struct{}{}
	e.mu.Unlock()
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Flush runs one placement pass and waits for its data movement to
// finish (used by tests and by epoch teardown). It is the barrier that
// makes async mode deterministic: after Flush the stores match the
// model.
func (e *Engine) Flush() {
	e.run()
	if e.async != nil {
		e.async.Drain()
	}
}

func (e *Engine) loop() {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			e.run() // final drain
			return
		case <-ticker.C:
			e.run()
		case <-e.kick:
			e.run()
		}
	}
}

// run drains pending updates and invalidations, plans placement for each
// update (hottest first), and executes the planned moves with the worker
// pool. Runs are serialized: the engine's residency model is consistent
// at run boundaries.
func (e *Engine) run() {
	e.runMu.Lock()
	defer e.runMu.Unlock()

	e.mu.Lock()
	if len(e.pending) == 0 && len(e.invalidated) == 0 {
		e.mu.Unlock()
		return
	}
	updates := make([]auditor.Update, 0, len(e.pending))
	for _, u := range e.pending {
		updates = append(updates, u)
	}
	e.pending = make(map[seg.ID]auditor.Update)
	e.updateCount = 0
	inval := e.invalidated
	e.invalidated = make(map[string]struct{})
	e.mu.Unlock()

	e.ctr.runs.Add(1)
	var decideStart time.Time
	if e.cfg.Telemetry != nil {
		decideStart = time.Now()
	}

	for file := range inval {
		e.dropFile(file)
	}

	// Hottest first, so high-score segments claim fast tiers before
	// lower ones are considered.
	sort.Slice(updates, func(i, j int) bool { return updates[i].Score > updates[j].Score })

	var plan []move
	e.mu.Lock()
	for _, u := range updates {
		if _, stale := inval[u.ID.File]; stale {
			continue
		}
		e.plan(u, &plan)
	}
	e.checkModelLocked()
	e.mu.Unlock()
	if e.cfg.Telemetry != nil {
		// Decision latency: planning only, data movement is the fetch stage.
		e.cfg.Telemetry.Span(telemetry.StagePlace, "", -1, "", decideStart, time.Since(decideStart))
	}
	merged := mergePlan(plan)
	if e.async != nil {
		e.submitAsync(merged, decideStart)
	} else {
		e.execute(merged, decideStart)
	}
	if e.cfg.Telemetry != nil {
		// The decide stage is the whole pass, entry to ready-for-next:
		// synchronous execution keeps the engine occupied through device
		// time, async ends at queue submission. Their gap is what
		// decoupling buys.
		e.cfg.Telemetry.Span(telemetry.StageDecide, "", -1, "", decideStart, time.Since(decideStart))
	}
}

// submitAsync hands a merged plan to the mover, preserving the phase
// order (evictions, transfers deepest-destination first, fetches) so
// space-freeing moves enter the queues before the moves that claim the
// space. The mover still overlaps phases — transient destination-full
// errors there are retried, since the model guarantees the final state
// fits.
func (e *Engine) submitAsync(plan []move, passStart time.Time) {
	if len(plan) == 0 {
		return
	}
	lc := e.cfg.Telemetry.Lifecycle()
	for _, phase := range phases(plan, e.hier.Len()) {
		batch := make([]amover.Move, len(phase))
		for i, mv := range phase {
			tr := mv.trace
			if lc != nil && mv.from < 0 && mv.to >= 0 {
				// The ledger opens here: every queued prefetch gets a
				// trace ID (minted if the root event was unsampled).
				tr = lc.OnFetchQueued(mv.id.File, mv.id.Index, mv.trace,
					e.hier.Tier(mv.to).Name(), passStart)
			}
			batch[i] = amover.Move{ID: mv.id, Size: mv.size, From: mv.from, To: mv.to, Trace: tr}
		}
		e.async.Submit(batch)
	}
}

// moveDone is the async mover's terminal-outcome callback: the
// bookkeeping half of executeOne, applied when the move actually lands.
// Called from mover workers without mover locks held.
func (e *Engine) moveDone(mv amover.Move, err error) {
	m := move{id: mv.ID, size: mv.Size, from: mv.From, to: mv.To, trace: mv.Trace}
	lc := e.cfg.Telemetry.Lifecycle()
	if errors.Is(err, amover.ErrCancelled) {
		// The file was invalidated mid-move; dropFile already cleaned the
		// model and the mapping, and the mover undid any materialized
		// payload.
		if lc != nil && m.from < 0 && m.to >= 0 {
			lc.OnFetchAborted(m.id.File, m.id.Index, m.trace, "superseded")
		}
		return
	}
	switch {
	case m.to < 0: // eviction (mapping drops even on failure, as in sync)
		if err == nil {
			e.ctr.evictions.Add(1)
		}
		if lc != nil {
			lc.OnEvicted(m.id.File, m.id.Index)
		}
		e.aud.DeleteMapping(m.id)
	case err != nil:
		e.ctr.failed.Add(1)
		if lc != nil && m.from < 0 {
			lc.OnFetchAborted(m.id.File, m.id.Index, m.trace, "failed")
		}
		e.reconcile(m)
	case m.from < 0:
		e.ctr.placements.Add(1)
		// Landing is recorded before the mapping flips so a read that
		// races the flip always finds the landing already accounted.
		if lc != nil {
			lc.OnFetchLanded(m.id.File, m.id.Index, m.trace, e.hier.Tier(m.to).Name())
		}
		e.aud.SetMapping(m.id, e.hier.Tier(m.to).Name())
	case m.to < m.from:
		e.ctr.promotions.Add(1)
		e.aud.SetMapping(m.id, e.hier.Tier(m.to).Name())
	default:
		e.ctr.demotions.Add(1)
		e.aud.SetMapping(m.id, e.hier.Tier(m.to).Name())
	}
}

// mergePlan coalesces per-segment move chains (a segment can be demoted
// by one update and re-placed by its own later in the same run) into a
// single origin→final move, and orders the result so space-freeing moves
// (evictions, then tier-to-tier transfers) run before fetches. Without
// merging, two moves of the same segment could execute out of order on
// the worker pool and leave a duplicate resident copy.
func mergePlan(plan []move) []move {
	if len(plan) <= 1 {
		return plan
	}
	first := make(map[seg.ID]int)
	order := make([]seg.ID, 0, len(plan))
	merged := make(map[seg.ID]move)
	for _, mv := range plan {
		if prev, ok := merged[mv.id]; ok {
			prev.to = mv.to
			merged[mv.id] = prev
			continue
		}
		first[mv.id] = len(order)
		order = append(order, mv.id)
		merged[mv.id] = mv
	}
	out := make([]move, 0, len(order))
	for _, id := range order {
		mv := merged[id]
		if mv.from == mv.to {
			continue // chain returned to its origin
		}
		out = append(out, mv)
	}
	return out
}

// phases splits a merged plan into barrier-separated groups whose
// parallel execution cannot transiently overflow a tier: evictions
// first, then tier-to-tier transfers grouped by destination (deepest
// tier first, so space is drained downward before it is claimed), and
// finally fetches from the PFS. The model's capacity accounting
// guarantees the final state fits; the phasing guarantees every
// intermediate state does too.
func phases(plan []move, tierCount int) [][]move {
	var evicts, fetches []move
	transfers := make([][]move, tierCount)
	for _, mv := range plan {
		switch {
		case mv.to < 0:
			evicts = append(evicts, mv)
		case mv.from >= 0:
			transfers[mv.to] = append(transfers[mv.to], mv)
		default:
			fetches = append(fetches, mv)
		}
	}
	out := make([][]move, 0, tierCount+2)
	if len(evicts) > 0 {
		out = append(out, evicts)
	}
	for to := tierCount - 1; to >= 0; to-- {
		if len(transfers[to]) > 0 {
			out = append(out, transfers[to])
		}
	}
	if len(fetches) > 0 {
		out = append(out, fetches)
	}
	return out
}

// dropFile removes every resident segment of file (consistency after a
// write event). In async mode the file's in-flight moves are cancelled
// first, so a queued fetch cannot re-materialize stale bytes after the
// stores are swept.
func (e *Engine) dropFile(file string) {
	if e.async != nil {
		e.async.CancelFile(file)
	}
	if lc := e.cfg.Telemetry.Lifecycle(); lc != nil {
		// Cancelled in-flight fetches were already classified wasted via
		// their abort callback; this sweeps the remaining open traces.
		lc.OnInvalidated(file)
	}
	n := e.hier.DeleteFile(file)
	if n > 0 {
		e.ctr.evictions.Add(int64(n))
	}
	var dropped []seg.ID
	e.mu.Lock()
	for ti := range e.resident {
		for id, ent := range e.resident[ti] {
			if id.File == file {
				delete(e.resident[ti], id)
				e.used[ti] -= ent.size
				dropped = append(dropped, id)
			}
		}
	}
	if invariant.Enabled {
		for ti := range e.resident {
			for id := range e.resident[ti] {
				invariant.Assert(id.File != file,
					"dropFile %q left segment %v resident in tier %d", file, id, ti)
			}
		}
		e.checkModelLocked()
	}
	e.mu.Unlock()
	for _, id := range dropped {
		e.aud.DeleteMapping(id)
	}
}

// checkModelLocked asserts the residency model's accounting under e.mu:
// per-tier used bytes are non-negative and equal the sum of resident
// segment sizes. A no-op unless built with -tags hfetch_invariants.
func (e *Engine) checkModelLocked() {
	if !invariant.Enabled {
		return
	}
	for ti := range e.resident {
		invariant.Assert(e.used[ti] >= 0, "tier %d modeled usage %d < 0", ti, e.used[ti])
		var sum int64
		for _, ent := range e.resident[ti] {
			sum += ent.size
		}
		invariant.Assert(sum == e.used[ti],
			"tier %d modeled usage %d != sum of resident sizes %d", ti, e.used[ti], sum)
	}
}

// locate returns the tier index holding id in the engine model, or -1.
func (e *Engine) locate(id seg.ID) int {
	for ti := range e.resident {
		if _, ok := e.resident[ti][id]; ok {
			return ti
		}
	}
	return -1
}

// plan runs Algorithm 1 for one update, mutating the residency model and
// appending the required moves.
func (e *Engine) plan(u auditor.Update, plan *[]move) {
	if u.Size <= 0 {
		return
	}
	cur := e.locate(u.ID)
	if cur >= 0 {
		ent := e.resident[cur][u.ID]
		// Hysteresis: small score drift does not justify data movement —
		// update the model in place and keep the tier.
		if h := e.cfg.Hysteresis; h > 0 && u.Score > e.cfg.MinScore {
			base := ent.score
			if base < u.Score {
				base = u.Score
			}
			if base > 0 && abs(u.Score-ent.score)/base < h && u.Size == ent.size {
				e.resident[cur][u.ID] = entry{score: u.Score, size: ent.size}
				return
			}
		}
		// Remove from the model so watermarks exclude the segment itself;
		// re-placement decides whether it stays, moves, or is evicted.
		delete(e.resident[cur], u.ID)
		e.used[cur] -= ent.size
	}
	if u.Score <= e.cfg.MinScore {
		if cur >= 0 {
			*plan = append(*plan, move{id: u.ID, size: u.Size, from: cur, to: -1, trace: u.Trace})
		}
		return
	}
	switch e.cfg.Policy {
	case PolicyRandom, PolicyRoundRobin:
		e.placeFlat(u, cur, plan)
	default:
		e.place(u, cur, 0, plan)
	}
}

// placeFlat implements the ablation policies: pick a tier without
// considering scores, never demote.
func (e *Engine) placeFlat(u auditor.Update, cur int, plan *[]move) {
	n := e.hier.Len()
	start := 0
	if e.cfg.Policy == PolicyRoundRobin {
		start = int(e.rrNext) % n
		e.rrNext++
	} else {
		// Deterministic pseudo-random pick derived from the segment, so
		// runs are reproducible.
		h := uint64(14695981039346656037)
		for i := 0; i < len(u.ID.File); i++ {
			h = (h ^ uint64(u.ID.File[i])) * 1099511628211
		}
		h ^= uint64(u.ID.Index) * 0x9e3779b97f4a7c15
		start = int(h % uint64(n))
	}
	for i := 0; i < n; i++ {
		ti := (start + i) % n
		if e.used[ti]+u.Size <= e.hier.Tier(ti).Capacity() {
			e.resident[ti][u.ID] = entry{score: u.Score, size: u.Size}
			e.used[ti] += u.Size
			if cur != ti {
				*plan = append(*plan, move{id: u.ID, size: u.Size, from: cur, to: ti, trace: u.Trace})
			}
			return
		}
	}
	if cur >= 0 { // nothing fits anywhere: evict
		*plan = append(*plan, move{id: u.ID, size: u.Size, from: cur, to: -1, trace: u.Trace})
	}
}

// place implements CalculatePlacement(segment, tier).
func (e *Engine) place(u auditor.Update, cur, ti int, plan *[]move) {
	if ti >= e.hier.Len() {
		// Below the hierarchy: not prefetched (or evicted if resident).
		if cur >= 0 {
			*plan = append(*plan, move{id: u.ID, size: u.Size, from: cur, to: -1, trace: u.Trace})
		}
		return
	}
	tier := e.hier.Tier(ti)
	if e.used[ti]+u.Size > tier.Capacity() {
		// Tier full for this segment: admit only if it outranks the
		// coldest residents, demoting them to make room (DemoteSegments).
		if u.Score > e.minResident(ti) {
			e.demoteUntilFits(u, ti, plan)
		}
		if e.used[ti]+u.Size > tier.Capacity() {
			e.place(u, cur, ti+1, plan)
			return
		}
	}
	e.resident[ti][u.ID] = entry{score: u.Score, size: u.Size}
	e.used[ti] += u.Size
	if cur != ti {
		*plan = append(*plan, move{id: u.ID, size: u.Size, from: cur, to: ti, trace: u.Trace})
	}
}

// minResident returns the lowest resident score in tier ti, or +inf when
// empty (an empty-but-too-small tier admits nothing bigger than itself).
func (e *Engine) minResident(ti int) float64 {
	if len(e.resident[ti]) == 0 {
		return math.Inf(1)
	}
	min := math.Inf(1)
	for _, ent := range e.resident[ti] {
		if ent.score < min {
			min = ent.score
		}
	}
	return min
}

// demoteUntilFits demotes the coldest residents of ti (strictly colder
// than u) one tier down until u fits. Ties are left in place — the
// incoming segment goes deeper instead (deterministic variant of the
// paper's random tie policy).
func (e *Engine) demoteUntilFits(u auditor.Update, ti int, plan *[]move) {
	tier := e.hier.Tier(ti)
	type cand struct {
		id  seg.ID
		ent entry
	}
	var cands []cand
	for id, ent := range e.resident[ti] {
		if ent.score < u.Score {
			cands = append(cands, cand{id, ent})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].ent.score < cands[j].ent.score })
	for _, c := range cands {
		if e.used[ti]+u.Size <= tier.Capacity() {
			return
		}
		delete(e.resident[ti], c.id)
		e.used[ti] -= c.ent.size
		du := auditor.Update{ID: c.id, Score: c.ent.score, Size: c.ent.size}
		e.place(du, ti, ti+1, plan)
	}
}

// execute performs the planned moves with the worker pool, phase by
// phase, and records mapping changes.
func (e *Engine) execute(plan []move, passStart time.Time) {
	if len(plan) == 0 {
		return
	}
	for _, phase := range phases(plan, e.hier.Len()) {
		ch := make(chan move)
		var wg sync.WaitGroup
		workers := e.cfg.Workers
		if workers > len(phase) {
			workers = len(phase)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for mv := range ch {
					e.executeOne(mv, passStart)
				}
			}()
		}
		for _, mv := range phase {
			ch <- mv
		}
		close(ch)
		wg.Wait()
	}
}

func (e *Engine) executeOne(mv move, passStart time.Time) {
	lc := e.cfg.Telemetry.Lifecycle()
	switch {
	case mv.to < 0: // eviction
		if mv.from >= 0 {
			if err := e.mover.Evict(mv.id, e.hier.Tier(mv.from)); err == nil {
				e.ctr.evictions.Add(1)
			}
		}
		if lc != nil {
			lc.OnEvicted(mv.id.File, mv.id.Index)
		}
		e.aud.DeleteMapping(mv.id)
	case mv.from < 0: // fetch from the PFS
		tierName := e.hier.Tier(mv.to).Name()
		trace := mv.trace
		if lc != nil {
			trace = lc.OnFetchQueued(mv.id.File, mv.id.Index, mv.trace, tierName, passStart)
		}
		if err := e.mover.Fetch(mv.id, mv.size, e.hier.Tier(mv.to)); err != nil {
			e.ctr.failed.Add(1)
			if lc != nil {
				lc.OnFetchAborted(mv.id.File, mv.id.Index, trace, "failed")
			}
			e.reconcile(mv)
			return
		}
		e.ctr.placements.Add(1)
		if lc != nil {
			lc.OnFetchLanded(mv.id.File, mv.id.Index, trace, tierName)
		}
		e.aud.SetMapping(mv.id, tierName)
	default: // tier-to-tier transfer
		if err := e.mover.Transfer(mv.id, e.hier.Tier(mv.from), e.hier.Tier(mv.to)); err != nil {
			e.ctr.failed.Add(1)
			e.reconcile(mv)
			return
		}
		if mv.to < mv.from {
			e.ctr.promotions.Add(1)
		} else {
			e.ctr.demotions.Add(1)
		}
		e.aud.SetMapping(mv.id, e.hier.Tier(mv.to).Name())
	}
}

// reconcile realigns the model and the mapping with the actual store
// state after a failed move, so a divergence can never duplicate a
// segment across tiers on a later run.
func (e *Engine) reconcile(mv move) {
	actual := e.hier.Locate(mv.id)
	e.mu.Lock()
	for ti := range e.resident {
		if ti == actual {
			continue
		}
		if ent, ok := e.resident[ti][mv.id]; ok {
			delete(e.resident[ti], mv.id)
			e.used[ti] -= ent.size
		}
	}
	if actual >= 0 {
		if _, ok := e.resident[actual][mv.id]; !ok {
			size := e.hier.Tier(actual).SizeOf(mv.id)
			e.resident[actual][mv.id] = entry{score: 0, size: size}
			e.used[actual] += size
		}
	}
	if invariant.Enabled {
		// Reconciliation's whole contract: model and store agree on the
		// reconciled segment before the lock drops.
		invariant.Assert(e.locate(mv.id) == actual,
			"reconcile left model tier %d != store tier %d for %v",
			e.locate(mv.id), actual, mv.id)
	}
	e.mu.Unlock()
	if actual >= 0 {
		e.aud.SetMapping(mv.id, e.hier.Tier(actual).Name())
	} else {
		e.aud.DeleteMapping(mv.id)
	}
}

// Resident reports the engine's view of where id lives (-1 = not
// prefetched).
func (e *Engine) Resident(id seg.ID) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.locate(id)
}

// TierLoad returns the engine's modeled byte usage per tier.
func (e *Engine) TierLoad() []int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]int64, len(e.used))
	copy(out, e.used)
	return out
}

// Counters returns a snapshot of engine statistics.
func (e *Engine) Counters() Stats {
	return Stats{
		Runs:        e.ctr.runs.Load(),
		Updates:     e.ctr.updates.Load(),
		Placements:  e.ctr.placements.Load(),
		Promotions:  e.ctr.promotions.Load(),
		Demotions:   e.ctr.demotions.Load(),
		Evictions:   e.ctr.evictions.Load(),
		FailedMoves: e.ctr.failed.Load(),
	}
}

// MoverStats returns a snapshot of the async mover's counters and queue
// depths; the zero Stats in synchronous mode.
func (e *Engine) MoverStats() amover.Stats {
	if e.async == nil {
		return amover.Stats{}
	}
	return e.async.Stats()
}

// WaitInflight blocks until an in-flight incoming move of id (if any)
// reaches a terminal state, or until timeout. It returns how long the
// caller actually waited and whether the move completed; (0, false)
// immediately when nothing is in flight or the engine is synchronous.
// The server read path uses this to ride a queued fetch instead of
// re-reading the bytes from the PFS.
func (e *Engine) WaitInflight(id seg.ID, timeout time.Duration) (time.Duration, bool) {
	if e.async == nil {
		return 0, false
	}
	return e.async.WaitFor(id, timeout)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
