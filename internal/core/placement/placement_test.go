package placement

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hfetch/internal/core/auditor"
	"hfetch/internal/core/ioclient"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

// rig bundles a complete placement stack over nil devices.
type rig struct {
	fs   *pfs.FS
	hier *tiers.Hierarchy
	aud  *auditor.Auditor
	eng  *Engine
	segr *seg.Segmenter
}

func newRig(t *testing.T, cfg Config, capacities ...int64) *rig {
	return newRigWrapped(t, cfg, nil, capacities...)
}

// newRigWrapped builds the rig with the I/O client optionally wrapped
// (fault injection, gating) BEFORE the engine is constructed — the async
// mover pipeline captures its executor at New, so swapping e.mover
// afterwards would only affect the synchronous path.
func newRigWrapped(t *testing.T, cfg Config, wrap func(Mover) Mover, capacities ...int64) *rig {
	t.Helper()
	fs := pfs.New(nil)
	fs.Create("f", 1<<20)
	segr := seg.NewSegmenter(100)
	names := []string{"ram", "nvme", "bb"}
	var stores []*tiers.Store
	for i, c := range capacities {
		stores = append(stores, tiers.NewStore(names[i], c, nil))
	}
	hier := tiers.NewHierarchy(stores...)
	stats := dhm.New(dhm.Config{Name: "stats", Self: "n0"}, nil)
	maps := dhm.New(dhm.Config{Name: "maps", Self: "n0"}, nil)
	aud := auditor.New(auditor.Config{Segmenter: segr}, stats, maps)
	var mover Mover = ioclient.New(fs, segr)
	if wrap != nil {
		mover = wrap(mover)
	}
	eng := New(cfg, hier, mover, aud)
	aud.SetSink(eng)
	t.Cleanup(eng.Stop)
	return &rig{fs: fs, hier: hier, aud: aud, eng: eng, segr: segr}
}

func up(idx int64, score float64) auditor.Update {
	return auditor.Update{ID: seg.ID{File: "f", Index: idx}, Score: score, Size: 100}
}

func TestHotSegmentLandsInFastestTier(t *testing.T) {
	r := newRig(t, Config{}, 1000, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) {
		t.Fatal("hot segment must be resident in ram")
	}
	_, tier, ok := r.aud.Mapping(seg.ID{File: "f", Index: 0})
	if !ok || tier != "ram" {
		t.Fatalf("mapping = %q %v, want ram", tier, ok)
	}
}

func TestOverflowCascadesToNextTier(t *testing.T) {
	// RAM holds 2 segments; the 3rd (colder) must land in nvme.
	r := newRig(t, Config{}, 200, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.ScoreUpdated(up(1, 4))
	r.eng.ScoreUpdated(up(2, 3))
	r.eng.Flush()
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) ||
		!r.hier.Tier(0).Has(seg.ID{File: "f", Index: 1}) {
		t.Fatal("two hottest segments must be in ram")
	}
	if !r.hier.Tier(1).Has(seg.ID{File: "f", Index: 2}) {
		t.Fatal("coldest segment must overflow to nvme")
	}
}

func TestHotterSegmentDemotesColdest(t *testing.T) {
	// Paper's example: RAM min score 2.0, new segment 2.2 arrives -> the
	// 2.0 segment is demoted, the 2.2 one takes its place.
	r := newRig(t, Config{}, 100, 1000)
	r.eng.ScoreUpdated(up(0, 2.0))
	r.eng.Flush()
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) {
		t.Fatal("seed segment must be in ram")
	}
	r.eng.ScoreUpdated(up(1, 2.2))
	r.eng.Flush()
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 1}) {
		t.Fatal("hotter segment must displace the resident")
	}
	if !r.hier.Tier(1).Has(seg.ID{File: "f", Index: 0}) {
		t.Fatal("displaced segment must be demoted to nvme, not dropped")
	}
	if _, tier, _ := r.aud.Mapping(seg.ID{File: "f", Index: 0}); tier != "nvme" {
		t.Fatalf("demoted mapping = %q, want nvme", tier)
	}
	st := r.eng.Counters()
	if st.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", st.Demotions)
	}
}

func TestColdSegmentDoesNotDisplaceHotter(t *testing.T) {
	r := newRig(t, Config{}, 100, 100)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.ScoreUpdated(up(1, 4))
	r.eng.Flush()
	// Both tiers full; a colder segment must fall below the hierarchy.
	r.eng.ScoreUpdated(up(2, 1))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 2}) != -1 {
		t.Fatal("cold segment must not be prefetched when outranked everywhere")
	}
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) || !r.hier.Tier(1).Has(seg.ID{File: "f", Index: 1}) {
		t.Fatal("hotter residents must be untouched")
	}
}

func TestCascadingDemotionsThroughThreeTiers(t *testing.T) {
	r := newRig(t, Config{}, 100, 100, 100)
	r.eng.ScoreUpdated(up(0, 3))
	r.eng.Flush()
	r.eng.ScoreUpdated(up(1, 4))
	r.eng.Flush()
	r.eng.ScoreUpdated(up(2, 5))
	r.eng.Flush()
	// 2 (5) in ram, 1 (4) in nvme, 0 (3) in bb.
	if r.hier.Locate(seg.ID{File: "f", Index: 2}) != 0 ||
		r.hier.Locate(seg.ID{File: "f", Index: 1}) != 1 ||
		r.hier.Locate(seg.ID{File: "f", Index: 0}) != 2 {
		t.Fatalf("cascade wrong: locations %d %d %d",
			r.hier.Locate(seg.ID{File: "f", Index: 2}),
			r.hier.Locate(seg.ID{File: "f", Index: 1}),
			r.hier.Locate(seg.ID{File: "f", Index: 0}))
	}
}

func TestScoreDropDemotesResident(t *testing.T) {
	r := newRig(t, Config{}, 100, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != 0 {
		t.Fatal("seed must be in ram")
	}
	// A hotter segment arrives while segment 0 cools: segment 0 must end
	// up demoted to nvme, segment 2 takes the single RAM slot.
	r.eng.ScoreUpdated(up(2, 6))
	r.eng.ScoreUpdated(up(0, 0.5))
	r.eng.Flush()
	if got := r.hier.Locate(seg.ID{File: "f", Index: 0}); got != 1 {
		t.Fatalf("cooled segment at tier %d, want 1 (demoted)", got)
	}
	if r.hier.Locate(seg.ID{File: "f", Index: 2}) != 0 {
		t.Fatal("hotter segment must own ram")
	}
}

func TestEvictionBelowLastTier(t *testing.T) {
	r := newRig(t, Config{}, 100)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	// A hotter segment displaces it; with no lower tier it is evicted.
	r.eng.ScoreUpdated(up(1, 9))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("displaced segment must be evicted from a one-tier hierarchy")
	}
	if _, _, ok := r.aud.Mapping(seg.ID{File: "f", Index: 0}); ok {
		t.Fatal("evicted segment must lose its mapping")
	}
	if st := r.eng.Counters(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestMinScoreFloor(t *testing.T) {
	r := newRig(t, Config{MinScore: 1.0}, 1000)
	r.eng.ScoreUpdated(up(0, 0.5))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("segment below the admission floor must not be prefetched")
	}
}

func TestSegmentLargerThanTierSkipsIt(t *testing.T) {
	r := newRig(t, Config{}, 50, 1000) // ram smaller than one segment
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if got := r.hier.Locate(seg.ID{File: "f", Index: 0}); got != 1 {
		t.Fatalf("oversized segment at tier %d, want 1", got)
	}
}

func TestInvalidationDropsFileEverywhere(t *testing.T) {
	r := newRig(t, Config{}, 200, 200)
	r.fs.Create("g", 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.ScoreUpdated(auditor.Update{ID: seg.ID{File: "g", Index: 0}, Score: 4, Size: 100})
	r.eng.Flush()
	r.eng.FileInvalidated("f")
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("invalidated file must be dropped")
	}
	if _, _, ok := r.aud.Mapping(seg.ID{File: "f", Index: 0}); ok {
		t.Fatal("invalidated mapping must be removed")
	}
	if r.hier.Locate(seg.ID{File: "g", Index: 0}) == -1 {
		t.Fatal("other files must survive an invalidation")
	}
}

func TestInvalidationBeatsPendingUpdates(t *testing.T) {
	r := newRig(t, Config{}, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.FileInvalidated("f") // same run: update must be discarded
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("update racing an invalidation must not be placed")
	}
}

func TestUpdateThresholdTriggersWithoutFlush(t *testing.T) {
	r := newRig(t, Config{UpdateThreshold: 5, Interval: time.Hour}, 1000)
	r.eng.Start()
	defer r.eng.Stop()
	for i := int64(0); i < 5; i++ {
		r.eng.ScoreUpdated(up(i, float64(5-i)))
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.hier.Tier(0).Len() == 5 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("threshold trigger did not run the engine; resident=%d", r.hier.Tier(0).Len())
}

func TestIntervalTriggers(t *testing.T) {
	r := newRig(t, Config{UpdateThreshold: 1 << 30, Interval: 20 * time.Millisecond}, 1000)
	r.eng.Start()
	defer r.eng.Stop()
	r.eng.ScoreUpdated(up(0, 5))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("interval trigger did not run the engine")
}

func TestStopDrainsPending(t *testing.T) {
	r := newRig(t, Config{UpdateThreshold: 1 << 30, Interval: time.Hour}, 1000)
	r.eng.Start()
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Stop() // final drain must place it
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) {
		t.Fatal("Stop must drain pending updates")
	}
}

func TestDedupLatestUpdateWins(t *testing.T) {
	r := newRig(t, Config{}, 100, 1000)
	r.eng.ScoreUpdated(up(0, 9))
	r.eng.ScoreUpdated(up(0, 0.1)) // same segment, cooled before the run
	r.eng.ScoreUpdated(up(1, 5))
	r.eng.Flush()
	// Latest score 0.1 must be the one used: segment 1 gets RAM.
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 1}) {
		t.Fatal("segment 1 must win ram")
	}
	if got := r.hier.Locate(seg.ID{File: "f", Index: 0}); got != 1 {
		t.Fatalf("deduped segment at %d, want 1", got)
	}
}

func TestExclusivityInvariantUnderChurn(t *testing.T) {
	r := newRig(t, Config{}, 300, 500, 700)
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		for i := 0; i < 20; i++ {
			r.eng.ScoreUpdated(up(int64(rng.Intn(40)), rng.Float64()*10))
		}
		r.eng.Flush()
		if id, ok := r.hier.ExclusiveOK(); !ok {
			t.Fatalf("round %d: exclusivity violated by %v", round, id)
		}
		for ti, s := range r.hier.Stores() {
			if s.Used() > s.Capacity() {
				t.Fatalf("round %d: tier %d over capacity", round, ti)
			}
		}
	}
	// Engine model must agree with the stores.
	loads := r.eng.TierLoad()
	for ti, s := range r.hier.Stores() {
		if loads[ti] != s.Used() {
			t.Fatalf("tier %d: model=%d store=%d", ti, loads[ti], s.Used())
		}
	}
}

func TestResidentView(t *testing.T) {
	r := newRig(t, Config{}, 1000)
	if r.eng.Resident(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("unknown segment must report -1")
	}
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if r.eng.Resident(seg.ID{File: "f", Index: 0}) != 0 {
		t.Fatal("placed segment must report tier 0")
	}
}

func TestManyFilesInterleaved(t *testing.T) {
	r := newRig(t, Config{}, 500, 500)
	for i := 0; i < 5; i++ {
		r.fs.Create(fmt.Sprintf("f%d", i), 1000)
	}
	for i := 0; i < 5; i++ {
		for j := int64(0); j < 2; j++ {
			r.eng.ScoreUpdated(auditor.Update{
				ID: seg.ID{File: fmt.Sprintf("f%d", i), Index: j}, Score: float64(i + 1), Size: 100,
			})
		}
	}
	r.eng.Flush()
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
	// Hierarchy fits exactly 10 segments; everything placed.
	if got := r.hier.Tier(0).Len() + r.hier.Tier(1).Len(); got != 10 {
		t.Fatalf("placed %d segments, want 10", got)
	}
	// Hottest file's segments should be in ram.
	if !r.hier.Tier(0).Has(seg.ID{File: "f4", Index: 0}) {
		t.Fatal("hottest file must be in ram")
	}
}

func TestHysteresisKeepsTierOnSmallDrift(t *testing.T) {
	r := newRig(t, Config{Hysteresis: 0.2}, 100, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	before := r.eng.Counters()
	// 10% drift: within the hysteresis band, no movement.
	r.eng.ScoreUpdated(up(0, 4.6))
	r.eng.Flush()
	after := r.eng.Counters()
	if got := after.Promotions + after.Demotions + after.Evictions -
		(before.Promotions + before.Demotions + before.Evictions); got != 0 {
		t.Fatalf("small drift caused %d moves", got)
	}
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != 0 {
		t.Fatal("segment must stay in ram")
	}
	// A big drop still demotes/evicts (one-tier hierarchy: falls out when
	// displaced; here it just stays since nothing competes).
	r.eng.ScoreUpdated(up(1, 9)) // displaces the now-cold resident
	r.eng.ScoreUpdated(up(0, 0.5))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 1}) != 0 {
		t.Fatal("hot segment must take ram despite hysteresis")
	}
}
