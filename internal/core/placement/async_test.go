package placement

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/tiers"
)

// gatedMover holds every Fetch on a gate so tests can observe the window
// between run() returning and the move executing, and optionally fails
// the gated fetches.
type gatedMover struct {
	inner   Mover
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once

	mu          sync.Mutex
	failFetches int
	fetched     []seg.ID
}

func newGatedMover(inner Mover) *gatedMover {
	return &gatedMover{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 64)}
}

func (g *gatedMover) release() { g.once.Do(func() { close(g.gate) }) }

func (g *gatedMover) Fetch(id seg.ID, size int64, dst *tiers.Store) error {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	g.mu.Lock()
	g.fetched = append(g.fetched, id)
	fail := g.failFetches > 0
	if fail {
		g.failFetches--
	}
	g.mu.Unlock()
	if fail {
		return errors.New("injected fetch failure")
	}
	return g.inner.Fetch(id, size, dst)
}

func (g *gatedMover) Transfer(id seg.ID, src, dst *tiers.Store) error {
	return g.inner.Transfer(id, src, dst)
}

func (g *gatedMover) Evict(id seg.ID, src *tiers.Store) error {
	return g.inner.Evict(id, src)
}

func (g *gatedMover) fetchedIDs() []seg.ID {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]seg.ID, len(g.fetched))
	copy(out, g.fetched)
	return out
}

func gatedRig(t *testing.T, cfg Config, capacities ...int64) (*rig, *gatedMover) {
	t.Helper()
	var gm *gatedMover
	r := newRigWrapped(t, cfg, func(m Mover) Mover {
		gm = newGatedMover(m)
		return gm
	}, capacities...)
	// The engine's Stop drains the mover; a forgotten gate must not
	// deadlock the cleanup.
	t.Cleanup(gm.release)
	return r, gm
}

func TestAsyncPlacementMatchesSyncOutcome(t *testing.T) {
	r := newRig(t, Config{Async: true, FetchCoalesce: true}, 200, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.ScoreUpdated(up(1, 4))
	r.eng.ScoreUpdated(up(2, 3))
	r.eng.Flush()
	if !r.hier.Tier(0).Has(seg.ID{File: "f", Index: 0}) ||
		!r.hier.Tier(0).Has(seg.ID{File: "f", Index: 1}) {
		t.Fatal("two hottest segments must be in ram")
	}
	if !r.hier.Tier(1).Has(seg.ID{File: "f", Index: 2}) {
		t.Fatal("coldest segment must overflow to nvme")
	}
	if _, tier, ok := r.aud.Mapping(seg.ID{File: "f", Index: 0}); !ok || tier != "ram" {
		t.Fatalf("mapping = %q %v, want ram", tier, ok)
	}
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
}

func TestAsyncRunReturnsBeforeMovesExecute(t *testing.T) {
	r, gm := gatedRig(t, Config{Async: true}, 1000)
	r.eng.ScoreUpdated(up(0, 5))

	done := make(chan struct{})
	go func() {
		r.eng.run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("run() blocked on a gated fetch: decision is not decoupled from execution")
	}
	id := seg.ID{File: "f", Index: 0}
	if r.eng.Resident(id) != 0 {
		t.Fatal("model must commit residency at plan time")
	}
	if r.hier.Locate(id) != -1 {
		t.Fatal("payload must not be resident while the fetch is gated")
	}
	gm.release()
	r.eng.Flush()
	if r.hier.Locate(id) != 0 {
		t.Fatal("gated fetch must land after release")
	}
}

func TestAsyncFailedFetchAfterRunReturnedReconciles(t *testing.T) {
	r, gm := gatedRig(t, Config{Async: true}, 1000)
	gm.mu.Lock()
	gm.failFetches = 1
	gm.mu.Unlock()

	id := seg.ID{File: "f", Index: 0}
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.run() // returns with the fetch still gated
	if r.eng.Resident(id) != 0 {
		t.Fatal("model must commit residency at plan time")
	}
	gm.release() // the fetch now executes — and fails — after run returned
	r.eng.Flush()

	if r.hier.Locate(id) != -1 {
		t.Fatal("failed fetch must leave nothing resident")
	}
	if r.eng.Resident(id) != -1 {
		t.Fatal("failed fetch must reconcile the residency model")
	}
	if st := r.eng.Counters(); st.FailedMoves != 1 {
		t.Fatalf("failed moves = %d, want 1", st.FailedMoves)
	}
	if _, _, ok := r.aud.Mapping(id); ok {
		t.Fatal("failed fetch must not leave a mapping")
	}
	// A later update retries successfully.
	r.eng.ScoreUpdated(up(0, 6))
	r.eng.Flush()
	if r.hier.Locate(id) != 0 {
		t.Fatal("retry after failure must place the segment")
	}
}

func TestAsyncSupersededQueuedFetchNeverExecutes(t *testing.T) {
	// One mover worker per tier and one PFS stream: a gated blocker fetch
	// occupies the worker so the victim's fetch stays queued.
	cfg := Config{Async: true, Workers: 1, MoverConcurrency: []int{1, 1, 1}}
	r, gm := gatedRig(t, cfg, 1000)

	blocker := seg.ID{File: "f", Index: 9}
	victim := seg.ID{File: "f", Index: 0}
	r.eng.ScoreUpdated(up(9, 9))
	r.eng.run()
	select {
	case <-gm.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("blocker fetch never started")
	}
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.run() // victim fetch queued behind the gated blocker
	if r.eng.Resident(victim) != 0 {
		t.Fatal("victim must be modeled resident while its fetch is queued")
	}
	// A newer pass drops the victim below the admission floor: the queued
	// fetch must be retargeted to an eviction and cancel out entirely.
	r.eng.ScoreUpdated(up(0, 0))
	r.eng.run()

	gm.release()
	r.eng.Flush()

	for _, fid := range gm.fetchedIDs() {
		if fid == victim {
			t.Fatal("superseded fetch must not reach the executor")
		}
	}
	if r.hier.Locate(victim) != -1 || r.eng.Resident(victim) != -1 {
		t.Fatal("victim must not be resident anywhere")
	}
	if r.hier.Locate(blocker) != 0 {
		t.Fatal("blocker must land in ram")
	}
	ms := r.eng.MoverStats()
	if ms.Superseded == 0 {
		t.Fatalf("superseded counter = %d, want > 0", ms.Superseded)
	}
	if ms.Cancelled == 0 {
		t.Fatalf("cancelled counter = %d, want > 0", ms.Cancelled)
	}
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
}

// TestAsyncSupersessionStressNoDuplicates hammers the async engine with
// concurrent score churn and flushes; run under -race. No interleaving
// of supersession, retargeting, and retries may ever leave a segment
// resident in two tiers or let the model drift from the stores.
func TestAsyncSupersessionStressNoDuplicates(t *testing.T) {
	cfg := Config{
		Async:            true,
		FetchCoalesce:    true,
		MoverConcurrency: []int{2, 2},
		UpdateThreshold:  1 << 30, // only explicit flushes trigger passes
	}
	r := newRig(t, cfg, 500, 500) // 5 segments per tier, 16 contenders

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				r.eng.ScoreUpdated(up(int64(rnd.Intn(16)), rnd.Float64()*10))
			}
		}(int64(g + 1))
	}
	stop := make(chan struct{})
	var flusher sync.WaitGroup
	flusher.Add(1)
	go func() {
		defer flusher.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.eng.Flush()
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	flusher.Wait()
	r.eng.Flush()

	if id, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatalf("duplicate residency of %v after supersession churn", id)
	}
	loads := r.eng.TierLoad()
	for ti, s := range r.hier.Stores() {
		if loads[ti] != s.Used() {
			t.Fatalf("tier %d accounting drift: model=%d store=%d", ti, loads[ti], s.Used())
		}
	}
	for i := int64(0); i < 16; i++ {
		id := seg.ID{File: "f", Index: i}
		actual := r.hier.Locate(id)
		if model := r.eng.Resident(id); model != actual {
			t.Fatalf("segment %d: model says tier %d, stores say %d", i, model, actual)
		}
		_, tier, ok := r.aud.Mapping(id)
		if actual == -1 && ok {
			t.Fatalf("segment %d: mapping %q but not resident", i, tier)
		}
		if actual >= 0 && ok && r.hier.Tier(actual).Name() != tier {
			t.Fatalf("segment %d: mapping says %s, store says %s", i, tier, r.hier.Tier(actual).Name())
		}
	}
}

// TestAsyncFailurePathsMirrorSync re-runs the sync failure suite's
// invariant checks under the async mover.
func TestAsyncFailurePathsMirrorSync(t *testing.T) {
	r, fm := flakyRig(t, Config{Async: true}, 300, 300)
	for round := 0; round < 20; round++ {
		if round%3 == 0 {
			fm.failFetches.Store(1)
		}
		if round%5 == 0 {
			fm.failTransfer.Store(1)
		}
		for i := int64(0); i < 8; i++ {
			r.eng.ScoreUpdated(up(i, float64((round+int(i))%10)+0.5))
		}
		r.eng.Flush()
	}
	loads := r.eng.TierLoad()
	for ti, s := range r.hier.Stores() {
		if loads[ti] != s.Used() {
			t.Fatalf("tier %d accounting drift: model=%d store=%d", ti, loads[ti], s.Used())
		}
	}
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
}
