package placement

import (
	"errors"
	"sync/atomic"
	"testing"

	"hfetch/internal/core/seg"
	"hfetch/internal/tiers"
)

// flakyMover wraps a Mover and fails operations on demand.
type flakyMover struct {
	inner        Mover
	failFetches  atomic.Int64 // fail this many Fetch calls
	failTransfer atomic.Int64
}

func (f *flakyMover) Fetch(id seg.ID, size int64, dst *tiers.Store) error {
	if f.failFetches.Add(-1) >= 0 {
		return errors.New("injected fetch failure")
	}
	return f.inner.Fetch(id, size, dst)
}

func (f *flakyMover) Transfer(id seg.ID, src, dst *tiers.Store) error {
	if f.failTransfer.Add(-1) >= 0 {
		return errors.New("injected transfer failure")
	}
	return f.inner.Transfer(id, src, dst)
}

func (f *flakyMover) Evict(id seg.ID, src *tiers.Store) error {
	return f.inner.Evict(id, src)
}

// flakyRig builds a rig whose mover is wrapped for fault injection;
// cfg selects sync or async execution.
func flakyRig(t *testing.T, cfg Config, capacities ...int64) (*rig, *flakyMover) {
	t.Helper()
	var fm *flakyMover
	r := newRigWrapped(t, cfg, func(m Mover) Mover {
		fm = &flakyMover{inner: m}
		return fm
	}, capacities...)
	return r, fm
}

func TestFailedFetchReconcilesAndRetries(t *testing.T) {
	r, fm := flakyRig(t, Config{}, 1000)
	fm.failFetches.Store(1)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != -1 {
		t.Fatal("failed fetch must leave nothing resident")
	}
	if st := r.eng.Counters(); st.FailedMoves != 1 {
		t.Fatalf("failed moves = %d, want 1", st.FailedMoves)
	}
	if _, _, ok := r.aud.Mapping(seg.ID{File: "f", Index: 0}); ok {
		t.Fatal("failed fetch must not leave a mapping")
	}
	// A later update retries successfully.
	r.eng.ScoreUpdated(up(0, 6))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != 0 {
		t.Fatal("retry after failure must place the segment")
	}
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated after failure/retry")
	}
}

func TestFailedTransferKeepsSingleCopy(t *testing.T) {
	r, fm := flakyRig(t, Config{}, 100, 1000)
	r.eng.ScoreUpdated(up(0, 5))
	r.eng.Flush()
	if r.hier.Locate(seg.ID{File: "f", Index: 0}) != 0 {
		t.Fatal("seed placement failed")
	}
	// A hotter segment displaces it, but the demotion transfer fails.
	fm.failTransfer.Store(1)
	r.eng.ScoreUpdated(up(1, 9))
	r.eng.Flush()
	// Whatever happened, the invariants hold: at most one copy anywhere,
	// model agrees with stores, mapping agrees with residency.
	if id, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatalf("duplicate copy of %v after failed transfer", id)
	}
	for _, idx := range []int64{0, 1} {
		id := seg.ID{File: "f", Index: idx}
		actual := r.hier.Locate(id)
		node, tier, ok := r.aud.Mapping(id)
		if actual == -1 && ok {
			t.Fatalf("segment %v: mapping %s|%s but not resident", id, node, tier)
		}
		if actual >= 0 && ok && r.hier.Tier(actual).Name() != tier {
			t.Fatalf("segment %v: mapping says %s, store says %s", id, tier, r.hier.Tier(actual).Name())
		}
	}
	// Churn afterwards stays consistent.
	for i := int64(0); i < 10; i++ {
		r.eng.ScoreUpdated(up(i%4, float64(10-i)))
		r.eng.Flush()
		if _, ok := r.hier.ExclusiveOK(); !ok {
			t.Fatal("exclusivity violated during post-failure churn")
		}
	}
}

func TestRepeatedFailuresNeverCorruptAccounting(t *testing.T) {
	r, fm := flakyRig(t, Config{}, 300, 300)
	for round := 0; round < 20; round++ {
		if round%3 == 0 {
			fm.failFetches.Store(1)
		}
		if round%5 == 0 {
			fm.failTransfer.Store(1)
		}
		for i := int64(0); i < 8; i++ {
			r.eng.ScoreUpdated(up(i, float64((round+int(i))%10)+0.5))
		}
		r.eng.Flush()
	}
	// Model usage must equal store usage on both tiers.
	loads := r.eng.TierLoad()
	for ti, s := range r.hier.Stores() {
		if loads[ti] != s.Used() {
			t.Fatalf("tier %d accounting drift: model=%d store=%d", ti, loads[ti], s.Used())
		}
	}
	if _, ok := r.hier.ExclusiveOK(); !ok {
		t.Fatal("exclusivity violated")
	}
}
