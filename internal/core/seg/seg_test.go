package seg

import (
	"testing"
	"testing/quick"
)

func TestCoverSingleSegment(t *testing.T) {
	s := NewSegmenter(1 << 20)
	ids := s.Cover("f", 0, 1024)
	if len(ids) != 1 || ids[0] != (ID{File: "f", Index: 0}) {
		t.Fatalf("Cover = %v, want [f#0]", ids)
	}
}

func TestCoverPaperExample(t *testing.T) {
	// Paper: segment size 1MB, fread at offset 0 of 3MB size covers
	// segments 1, 2 and 3 (indices 0..2 here).
	s := NewSegmenter(1 << 20)
	ids := s.Cover("f", 0, 3<<20)
	if len(ids) != 3 {
		t.Fatalf("Cover 3MB = %d segments, want 3", len(ids))
	}
	for i, id := range ids {
		if id.Index != int64(i) {
			t.Fatalf("ids[%d].Index = %d, want %d", i, id.Index, i)
		}
	}
}

func TestCoverSpansBoundary(t *testing.T) {
	s := NewSegmenter(100)
	ids := s.Cover("f", 99, 2) // bytes 99 and 100
	if len(ids) != 2 || ids[0].Index != 0 || ids[1].Index != 1 {
		t.Fatalf("Cover(99,2) = %v, want segments 0 and 1", ids)
	}
}

func TestCoverExactBoundary(t *testing.T) {
	s := NewSegmenter(100)
	ids := s.Cover("f", 100, 100)
	if len(ids) != 1 || ids[0].Index != 1 {
		t.Fatalf("Cover(100,100) = %v, want [f#1]", ids)
	}
}

func TestCoverEmptyAndNegative(t *testing.T) {
	s := NewSegmenter(100)
	if ids := s.Cover("f", 0, 0); ids != nil {
		t.Fatalf("Cover zero length = %v, want nil", ids)
	}
	if ids := s.Cover("f", -5, 10); ids != nil {
		t.Fatalf("Cover negative offset = %v, want nil", ids)
	}
}

func TestRangeOfClipsToFileSize(t *testing.T) {
	s := NewSegmenter(100)
	r := s.RangeOf(ID{File: "f", Index: 2}, 250)
	if r.Off != 200 || r.Len != 50 {
		t.Fatalf("RangeOf clipped = %+v, want {200 50}", r)
	}
	r = s.RangeOf(ID{File: "f", Index: 5}, 250)
	if r.Len != 0 {
		t.Fatalf("RangeOf beyond EOF = %+v, want zero length", r)
	}
	r = s.RangeOf(ID{File: "f", Index: 1}, 0) // unknown file size
	if r.Off != 100 || r.Len != 100 {
		t.Fatalf("RangeOf unclipped = %+v, want {100 100}", r)
	}
}

func TestCount(t *testing.T) {
	s := NewSegmenter(100)
	cases := []struct{ size, want int64 }{
		{0, 0}, {1, 1}, {99, 1}, {100, 1}, {101, 2}, {1000, 10},
	}
	for _, c := range cases {
		if got := s.Count(c.size); got != c.want {
			t.Errorf("Count(%d) = %d, want %d", c.size, got, c.want)
		}
	}
}

func TestDefaultSizeFallback(t *testing.T) {
	s := NewSegmenter(0)
	if s.Size() != DefaultSize {
		t.Fatalf("Size = %d, want DefaultSize", s.Size())
	}
}

func TestRangeOverlapsAndIntersect(t *testing.T) {
	a := Range{Off: 0, Len: 100}
	b := Range{Off: 50, Len: 100}
	c := Range{Off: 100, Len: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("touching ranges must not overlap")
	}
	got, ok := a.Intersect(b)
	if !ok || got.Off != 50 || got.Len != 50 {
		t.Fatalf("Intersect = %+v %v, want {50 50} true", got, ok)
	}
	if _, ok := a.Intersect(c); ok {
		t.Fatal("disjoint Intersect should report false")
	}
}

// Property: covering segments tile the read exactly — union of the
// clipped segment ranges equals the request range.
func TestCoverTilesRequest(t *testing.T) {
	f := func(offRaw, lnRaw uint16, sizeRaw uint8) bool {
		size := int64(sizeRaw%200) + 1
		s := NewSegmenter(size)
		off := int64(offRaw % 5000)
		ln := int64(lnRaw%5000) + 1
		ids := s.Cover("f", off, ln)
		if len(ids) == 0 {
			return false
		}
		// First covers off, last covers off+ln-1, contiguous indices.
		if ids[0].Index != off/size || ids[len(ids)-1].Index != (off+ln-1)/size {
			return false
		}
		for i := 1; i < len(ids); i++ {
			if ids[i].Index != ids[i-1].Index+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: IndexOf agrees with Cover for single-byte reads.
func TestIndexOfMatchesCover(t *testing.T) {
	f := func(offRaw uint16, sizeRaw uint8) bool {
		size := int64(sizeRaw%100) + 1
		s := NewSegmenter(size)
		off := int64(offRaw)
		ids := s.Cover("f", off, 1)
		return len(ids) == 1 && ids[0].Index == s.IndexOf(off)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
