package seg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdaptiveFirstObserve(t *testing.T) {
	a := NewAdaptive(0)
	got := a.Observe(100, 50)
	if len(got) != 1 || got[0] != (Range{Off: 100, Len: 50}) {
		t.Fatalf("Observe = %v, want single {100 50}", got)
	}
}

func TestAdaptiveIdenticalRequestsStable(t *testing.T) {
	a := NewAdaptive(0)
	a.Observe(0, 100)
	got := a.Observe(0, 100)
	if len(got) != 1 || got[0].Len != 100 {
		t.Fatalf("repeat Observe = %v, want stable single segment", got)
	}
	if n := len(a.Segments()); n != 1 {
		t.Fatalf("segments = %d, want 1", n)
	}
}

func TestAdaptiveSplitsOnPartialOverlap(t *testing.T) {
	a := NewAdaptive(0)
	a.Observe(0, 100)
	got := a.Observe(50, 100) // overlaps [50,100), extends to [100,150)
	// Expect cover = [50,100) + [100,150)
	if len(got) != 2 || got[0] != (Range{Off: 50, Len: 50}) || got[1] != (Range{Off: 100, Len: 50}) {
		t.Fatalf("Observe split = %v, want [{50 50} {100 50}]", got)
	}
	segs := a.Segments()
	if len(segs) != 3 || segs[0] != (Range{Off: 0, Len: 50}) {
		t.Fatalf("segments = %v, want [{0 50} {50 50} {100 50}]", segs)
	}
}

func TestAdaptiveInteriorRequestSplitsBothSides(t *testing.T) {
	a := NewAdaptive(0)
	a.Observe(0, 300)
	got := a.Observe(100, 100)
	if len(got) != 1 || got[0] != (Range{Off: 100, Len: 100}) {
		t.Fatalf("interior Observe = %v, want [{100 100}]", got)
	}
	if n := len(a.Segments()); n != 3 {
		t.Fatalf("segments = %d, want 3", n)
	}
}

func TestAdaptiveGapFill(t *testing.T) {
	a := NewAdaptive(0)
	a.Observe(0, 10)
	a.Observe(90, 10)
	got := a.Observe(0, 100) // spans both plus the gap
	total := int64(0)
	for _, r := range got {
		total += r.Len
	}
	if total != 100 {
		t.Fatalf("covering segments total %d bytes, want 100 (%v)", total, got)
	}
}

func TestAdaptiveZeroAndNegative(t *testing.T) {
	a := NewAdaptive(0)
	if got := a.Observe(0, 0); got != nil {
		t.Fatalf("Observe(0,0) = %v, want nil", got)
	}
	if got := a.Observe(-1, 5); got != nil {
		t.Fatalf("Observe(-1,5) = %v, want nil", got)
	}
}

func TestAdaptiveCoalesceCap(t *testing.T) {
	a := NewAdaptive(4)
	for i := int64(0); i < 16; i++ {
		a.Observe(i*10, 10)
	}
	if n := len(a.Segments()); n > 8 {
		t.Fatalf("segments after cap = %d, want coalescing to keep it bounded", n)
	}
}

// Properties: segments are always sorted, non-overlapping, and every
// Observe's returned cover tiles the request exactly.
func TestAdaptiveInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAdaptive(0)
		for i := 0; i < 50; i++ {
			off := int64(rng.Intn(1000))
			ln := int64(rng.Intn(200) + 1)
			cover := a.Observe(off, ln)
			// Cover tiles [off, off+ln) exactly.
			cur := off
			for _, r := range cover {
				lo := r.Off
				if lo < off {
					return false // segments returned must start within request after splitting
				}
				if lo != cur {
					return false
				}
				cur = r.End()
			}
			if cur != off+ln {
				return false
			}
			// Global invariant: sorted, disjoint.
			segs := a.Segments()
			for j := 1; j < len(segs); j++ {
				if segs[j].Off < segs[j-1].End() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
