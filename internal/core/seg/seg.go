// Package seg defines the file segment, HFetch's unit of prefetching.
//
// A segment is a region of a file enclosed by start and end offsets. All
// prefetching operations in HFetch are expressed as loading one or more
// segments, and every incoming read request is decomposed into the set of
// segments it covers. The default segmenter divides a file into fixed-size
// buckets; the adaptive segmenter (see adaptive.go) instead derives segment
// boundaries from the observed request stream, which is the paper's
// "dynamic segment size" behaviour.
package seg

import (
	"fmt"
)

// DefaultSize is the default segment granularity (1 MiB in the paper's
// examples).
const DefaultSize int64 = 1 << 20

// ID uniquely identifies a segment of a file under fixed-grain
// segmentation: the Index-th bucket of Size bytes.
type ID struct {
	File  string
	Index int64
}

func (id ID) String() string { return fmt.Sprintf("%s#%d", id.File, id.Index) }

// Range is a byte range [Off, Off+Len) within a file.
type Range struct {
	Off int64
	Len int64
}

// End returns the exclusive end offset of the range.
func (r Range) End() int64 { return r.Off + r.Len }

// Overlaps reports whether two ranges share at least one byte.
func (r Range) Overlaps(o Range) bool {
	return r.Off < o.End() && o.Off < r.End()
}

// Intersect returns the overlapping part of two ranges and whether it is
// non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	lo, hi := r.Off, r.End()
	if o.Off > lo {
		lo = o.Off
	}
	if o.End() < hi {
		hi = o.End()
	}
	if lo >= hi {
		return Range{}, false
	}
	return Range{Off: lo, Len: hi - lo}, true
}

// Segmenter maps byte ranges of a file to segment IDs and back.
type Segmenter struct {
	size int64
}

// NewSegmenter returns a fixed-grain segmenter. Non-positive sizes fall
// back to DefaultSize.
func NewSegmenter(size int64) *Segmenter {
	if size <= 0 {
		size = DefaultSize
	}
	return &Segmenter{size: size}
}

// Size returns the segment granularity in bytes.
func (s *Segmenter) Size() int64 { return s.size }

// Cover returns the IDs of every segment touched by a read of length ln
// starting at off in file. A zero/negative length read covers nothing.
func (s *Segmenter) Cover(file string, off, ln int64) []ID {
	if ln <= 0 || off < 0 {
		return nil
	}
	first := off / s.size
	last := (off + ln - 1) / s.size
	ids := make([]ID, 0, last-first+1)
	for i := first; i <= last; i++ {
		ids = append(ids, ID{File: file, Index: i})
	}
	return ids
}

// RangeOf returns the byte range occupied by segment id, clipped to
// fileSize when fileSize > 0.
func (s *Segmenter) RangeOf(id ID, fileSize int64) Range {
	r := Range{Off: id.Index * s.size, Len: s.size}
	if fileSize > 0 {
		if r.Off >= fileSize {
			return Range{Off: r.Off, Len: 0}
		}
		if r.End() > fileSize {
			r.Len = fileSize - r.Off
		}
	}
	return r
}

// IndexOf returns the segment index containing offset off.
func (s *Segmenter) IndexOf(off int64) int64 {
	if off < 0 {
		return 0
	}
	return off / s.size
}

// Count returns how many segments a file of fileSize bytes has.
func (s *Segmenter) Count(fileSize int64) int64 {
	if fileSize <= 0 {
		return 0
	}
	return (fileSize + s.size - 1) / s.size
}
