package seg

import "sort"

// Adaptive implements the paper's dynamic segment sizing: instead of a
// fixed grain, segment boundaries are derived from the request stream
// itself. The first time a byte range is observed it becomes a segment;
// later requests that partially overlap existing segments split them at
// the request boundaries, so the segmentation converges to the natural
// access granularity of the workload.
//
// Adaptive is not safe for concurrent use; the auditor serializes access
// per file.
type Adaptive struct {
	// segs is kept sorted by Off and non-overlapping.
	segs []Range
	// maxSegs caps fragmentation; when exceeded, adjacent segments are
	// coalesced pairwise.
	maxSegs int
}

// NewAdaptive returns an adaptive segmenter. maxSegs <= 0 means no cap.
func NewAdaptive(maxSegs int) *Adaptive {
	return &Adaptive{maxSegs: maxSegs}
}

// Segments returns the current segmentation, sorted by offset.
func (a *Adaptive) Segments() []Range {
	out := make([]Range, len(a.segs))
	copy(out, a.segs)
	return out
}

// Observe records a read of [off, off+ln) and returns the segments that
// cover it after any splitting. Boundaries of existing segments are
// preserved: a request overlapping part of a segment splits that segment
// at the request edges.
func (a *Adaptive) Observe(off, ln int64) []Range {
	if ln <= 0 || off < 0 {
		return nil
	}
	req := Range{Off: off, Len: ln}
	a.splitAt(req.Off)
	a.splitAt(req.End())
	// Insert any uncovered gaps inside the request as new segments.
	a.fillGaps(req)
	if a.maxSegs > 0 && len(a.segs) > a.maxSegs {
		a.coalesce()
	}
	return a.covering(req)
}

// splitAt splits the segment containing offset p (if any) into two at p.
func (a *Adaptive) splitAt(p int64) {
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].End() > p })
	if i >= len(a.segs) {
		return
	}
	s := a.segs[i]
	if s.Off >= p { // boundary already at or after p
		return
	}
	left := Range{Off: s.Off, Len: p - s.Off}
	right := Range{Off: p, Len: s.End() - p}
	a.segs[i] = left
	a.segs = append(a.segs, Range{})
	copy(a.segs[i+2:], a.segs[i+1:])
	a.segs[i+1] = right
}

// fillGaps creates segments for parts of req not covered by any segment.
func (a *Adaptive) fillGaps(req Range) {
	cur := req.Off
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].End() > req.Off })
	var add []Range
	for cur < req.End() {
		if i < len(a.segs) && a.segs[i].Off <= cur {
			cur = a.segs[i].End()
			i++
			continue
		}
		gapEnd := req.End()
		if i < len(a.segs) && a.segs[i].Off < gapEnd {
			gapEnd = a.segs[i].Off
		}
		if gapEnd > cur {
			add = append(add, Range{Off: cur, Len: gapEnd - cur})
		}
		cur = gapEnd
	}
	if len(add) == 0 {
		return
	}
	a.segs = append(a.segs, add...)
	sort.Slice(a.segs, func(i, j int) bool { return a.segs[i].Off < a.segs[j].Off })
}

// covering returns the segments overlapping req (they tile it exactly
// after Observe's splitting and gap filling).
func (a *Adaptive) covering(req Range) []Range {
	var out []Range
	i := sort.Search(len(a.segs), func(i int) bool { return a.segs[i].End() > req.Off })
	for ; i < len(a.segs) && a.segs[i].Off < req.End(); i++ {
		out = append(out, a.segs[i])
	}
	return out
}

// coalesce merges adjacent segment pairs to halve the segment count.
func (a *Adaptive) coalesce() {
	merged := make([]Range, 0, (len(a.segs)+1)/2)
	for i := 0; i < len(a.segs); i += 2 {
		if i+1 < len(a.segs) && a.segs[i].End() == a.segs[i+1].Off {
			merged = append(merged, Range{Off: a.segs[i].Off, Len: a.segs[i].Len + a.segs[i+1].Len})
		} else {
			merged = append(merged, a.segs[i])
			if i+1 < len(a.segs) {
				merged = append(merged, a.segs[i+1])
			}
		}
	}
	a.segs = merged
}
