package seg

import "testing"

// FuzzCover checks the fixed-grain coverage invariants on arbitrary
// inputs: covered segments are contiguous, bracket the request, and
// IndexOf agrees with the first element.
func FuzzCover(f *testing.F) {
	f.Add(int64(0), int64(1), int64(1))
	f.Add(int64(4095), int64(8192), int64(4096))
	f.Add(int64(1<<40), int64(1<<20), int64(1<<20))
	f.Fuzz(func(t *testing.T, off, ln, size int64) {
		if size <= 0 || size > 1<<30 {
			size = 1 << 20
		}
		s := NewSegmenter(size)
		ids := s.Cover("f", off, ln)
		if off < 0 || ln <= 0 {
			if ids != nil {
				t.Fatalf("invalid request produced coverage: %v", ids)
			}
			return
		}
		if len(ids) == 0 {
			t.Fatal("valid request produced no coverage")
		}
		if ids[0].Index != s.IndexOf(off) {
			t.Fatalf("first segment %d != IndexOf %d", ids[0].Index, s.IndexOf(off))
		}
		last := off + ln - 1
		if ids[len(ids)-1].Index != last/size {
			t.Fatal("last segment does not cover request end")
		}
		for i := 1; i < len(ids); i++ {
			if ids[i].Index != ids[i-1].Index+1 {
				t.Fatal("coverage not contiguous")
			}
		}
	})
}

// FuzzAdaptiveObserve checks the adaptive segmenter's invariants under
// arbitrary request streams encoded as byte pairs.
func FuzzAdaptiveObserve(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{0, 0, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := NewAdaptive(0)
		for i := 0; i+1 < len(data); i += 2 {
			off := int64(data[i]) * 16
			ln := int64(data[i+1]%64) + 1
			cover := a.Observe(off, ln)
			cur := off
			for _, r := range cover {
				if r.Off != cur {
					t.Fatalf("cover gap at %d: %+v", cur, cover)
				}
				cur = r.End()
			}
			if cur != off+ln {
				t.Fatalf("cover does not tile request: end %d want %d", cur, off+ln)
			}
			segs := a.Segments()
			for j := 1; j < len(segs); j++ {
				if segs[j].Off < segs[j-1].End() {
					t.Fatalf("segments overlap: %+v", segs)
				}
			}
		}
	})
}
