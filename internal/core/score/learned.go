package score

import (
	"math"
	"sync"
	"time"
)

// Learned is the paper's future-work extension ("enhance its scoring
// models with machine learning"): an online logistic-regression model
// that predicts the probability a segment will be re-accessed soon,
// from the same statistics Equation (1) consumes — frequency, recency,
// and reference count.
//
// Training is fully online and label-free from the system's viewpoint:
//   - every re-access of a segment is a positive example for the
//     segment's state *before* that access;
//   - segments that end an epoch with a single access (touched once,
//     never re-read) are negative examples.
//
// The prediction multiplies the analytic score (see Model.Blend), so an
// untrained or disabled learner leaves HFetch's behaviour unchanged.
type Learned struct {
	mu sync.Mutex
	// w holds [bias, log1p(K), recency decay, log1p(refs)] weights.
	w    [4]float64
	lr   float64
	unit float64 // seconds per recency unit

	positives int64
	negatives int64
}

// NewLearned creates a model with learning rate lr (default 0.05) and
// the given recency unit (default 1s).
func NewLearned(lr float64, unit time.Duration) *Learned {
	if lr <= 0 {
		lr = 0.05
	}
	if unit <= 0 {
		unit = time.Second
	}
	return &Learned{lr: lr, unit: unit.Seconds()}
}

// features maps segment statistics to the model's input vector. K and
// Last describe the state whose future is being predicted.
func (l *Learned) features(k int64, last time.Time, refs int64, now time.Time) [4]float64 {
	rec := now.Sub(last).Seconds() / l.unit
	if rec < 0 {
		rec = 0
	}
	return [4]float64{
		1,
		math.Log1p(float64(k)),
		math.Exp(-rec),
		math.Log1p(float64(refs - 1)),
	}
}

func dot(w, x [4]float64) float64 {
	return w[0]*x[0] + w[1]*x[1] + w[2]*x[2] + w[3]*x[3]
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Predict returns the probability in (0, 1) that a segment in the given
// state will be re-accessed soon. An untrained model returns 0.5.
func (l *Learned) Predict(k int64, last time.Time, refs int64, now time.Time) float64 {
	x := l.features(k, last, refs, now)
	l.mu.Lock()
	defer l.mu.Unlock()
	return sigmoid(dot(l.w, x))
}

// Observe performs one SGD step: the segment was in state (k, last,
// refs) at time now, and reaccessed says whether it was read again.
func (l *Learned) Observe(k int64, last time.Time, refs int64, now time.Time, reaccessed bool) {
	x := l.features(k, last, refs, now)
	y := 0.0
	if reaccessed {
		y = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	p := sigmoid(dot(l.w, x))
	g := p - y
	for i := range l.w {
		l.w[i] -= l.lr * g * x[i]
	}
	if reaccessed {
		l.positives++
	} else {
		l.negatives++
	}
}

// Examples returns how many positive and negative examples have been
// absorbed.
func (l *Learned) Examples() (pos, neg int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.positives, l.negatives
}

// Weights returns a snapshot of the model weights
// [bias, frequency, recency, references].
func (l *Learned) Weights() [4]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w
}

// Blend combines the analytic Equation (1) score with the learned
// re-access probability: score · 2p, so p = 0.5 (untrained / uncertain)
// is the identity, confident re-access doubles the urgency, and
// confident one-shot access suppresses it.
func Blend(analytic, p float64) float64 {
	if p <= 0 {
		return 0
	}
	return analytic * 2 * p
}
