package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestFirstAccessScoresOne(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnAccess(&st, t0)
	if got := m.Score(&st, t0); got != 1 {
		t.Fatalf("score after one access = %v, want 1", got)
	}
	if st.K != 1 || st.Refs != 1 {
		t.Fatalf("stats = %+v, want K=1 Refs=1", st)
	}
}

func TestScoreDecaysByPPerUnit(t *testing.T) {
	m := NewModel(Params{P: 2, Unit: time.Second})
	var st Stats
	m.OnAccess(&st, t0)
	got := m.Score(&st, t0.Add(time.Second))
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("score after 1 unit = %v, want 0.5", got)
	}
	got = m.Score(&st, t0.Add(3*time.Second))
	if math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("score after 3 units = %v, want 0.125", got)
	}
}

func TestRefsSlowDecay(t *testing.T) {
	m := NewModel(Params{P: 2, Unit: time.Second})
	var a, b Stats
	m.OnAccess(&a, t0)
	m.OnAccess(&b, t0)
	m.AddRef(&b, t0) // b now has n=2
	ta := m.Score(&a, t0.Add(2*time.Second))
	tb := m.Score(&b, t0.Add(2*time.Second))
	if tb <= ta {
		t.Fatalf("more references must decay slower: n=1 → %v, n=2 → %v", ta, tb)
	}
	if math.Abs(tb-0.5) > 1e-12 { // (1/2)^{2/2}
		t.Fatalf("n=2 score after 2 units = %v, want 0.5", tb)
	}
}

func TestFrequencyAccumulates(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	for i := 0; i < 5; i++ {
		m.OnAccess(&st, t0)
	}
	if got := m.Score(&st, t0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("5 simultaneous accesses = %v, want 5", got)
	}
}

func TestRecencyBeatsStaleFrequency(t *testing.T) {
	m := NewModel(Params{P: 2, Unit: 100 * time.Millisecond})
	var hot, stale Stats
	// stale: 10 accesses long ago. hot: 2 accesses just now.
	for i := 0; i < 10; i++ {
		m.OnAccess(&stale, t0)
	}
	now := t0.Add(time.Second) // 10 decay units later
	m.OnAccess(&hot, now)
	m.OnAccess(&hot, now)
	if m.Score(&hot, now) <= m.Score(&stale, now) {
		t.Fatalf("recent accesses must outrank stale ones: hot=%v stale=%v",
			m.Score(&hot, now), m.Score(&stale, now))
	}
}

func TestOutOfOrderAccessClamped(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnAccess(&st, t0.Add(time.Second))
	m.OnAccess(&st, t0) // earlier timestamp
	if st.Last != t0.Add(time.Second) {
		t.Fatalf("Last regressed to %v", st.Last)
	}
	if got := m.Score(&st, t0.Add(time.Second)); math.Abs(got-2) > 1e-12 {
		t.Fatalf("clamped score = %v, want 2", got)
	}
}

func TestScoreBeforeLastClamps(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnAccess(&st, t0)
	if got := m.Score(&st, t0.Add(-time.Hour)); got != 1 {
		t.Fatalf("score at earlier t = %v, want clamp to 1", got)
	}
}

func TestWindowBoundsHistory(t *testing.T) {
	m := NewModel(Params{Window: 4})
	var st Stats
	for i := 0; i < 10; i++ {
		m.OnAccess(&st, t0.Add(time.Duration(i)*time.Millisecond))
	}
	if len(st.History) != 4 {
		t.Fatalf("history length = %d, want 4", len(st.History))
	}
	if st.K != 10 {
		t.Fatalf("K = %d, want 10", st.K)
	}
}

func TestParamsNormalization(t *testing.T) {
	m := NewModel(Params{P: 0.5, Unit: -1, Window: -3})
	if m.P() != 2 || m.Window() != 32 {
		t.Fatalf("normalized P=%v Window=%d, want 2 and 32", m.P(), m.Window())
	}
}

func TestZeroStatsScoreZero(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	if got := m.Score(&st, t0); got != 0 {
		t.Fatalf("empty stats score = %v, want 0", got)
	}
	if got := m.Windowed(&st, t0); got != 0 {
		t.Fatalf("empty windowed = %v, want 0", got)
	}
}

// Property: incremental and windowed evaluation agree while n is constant
// and the access count stays within the window.
func TestIncrementalMatchesWindowed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel(Params{P: 2 + float64(rng.Intn(6)), Unit: 50 * time.Millisecond, Window: 64})
		var st Stats
		now := t0
		for i := 0; i < 30; i++ {
			now = now.Add(time.Duration(rng.Intn(200)) * time.Millisecond)
			m.OnAccess(&st, now)
		}
		eval := now.Add(time.Duration(rng.Intn(500)) * time.Millisecond)
		inc := m.Score(&st, eval)
		win := m.Windowed(&st, eval)
		return math.Abs(inc-win) < 1e-9*(1+win)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: scores are monotonically non-increasing in time between
// accesses and bounded by K.
func TestScoreBoundsAndMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewModel(DefaultParams())
		var st Stats
		now := t0
		k := rng.Intn(20) + 1
		for i := 0; i < k; i++ {
			now = now.Add(time.Duration(rng.Intn(100)) * time.Millisecond)
			m.OnAccess(&st, now)
		}
		prev := math.Inf(1)
		for i := 0; i < 10; i++ {
			s := m.Score(&st, now.Add(time.Duration(i*100)*time.Millisecond))
			if s > prev+1e-12 || s > float64(k)+1e-9 || s < 0 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a higher decay base p decays at least as fast.
func TestHigherPDecaysFaster(t *testing.T) {
	m2 := NewModel(Params{P: 2, Unit: time.Second})
	m8 := NewModel(Params{P: 8, Unit: time.Second})
	var a, b Stats
	m2.OnAccess(&a, t0)
	m8.OnAccess(&b, t0)
	for i := 1; i <= 5; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		if m8.Score(&b, at) > m2.Score(&a, at)+1e-12 {
			t.Fatalf("p=8 should decay faster at step %d", i)
		}
	}
}

func TestOnRefBoostsUnaccessedSegment(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnRef(&st, t0, 0.5)
	if got := m.Score(&st, t0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("score after ref boost = %v, want 0.5", got)
	}
	if st.K != 0 {
		t.Fatalf("K = %d, want 0 (refs are not accesses)", st.K)
	}
}

func TestOnRefThenAccessAccumulates(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnRef(&st, t0, 0.5)
	m.OnAccess(&st, t0)
	if got := m.Score(&st, t0); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("score after ref+access = %v, want 1.5", got)
	}
}

func TestOnRefNonPositiveWeightIgnored(t *testing.T) {
	m := NewModel(DefaultParams())
	var st Stats
	m.OnRef(&st, t0, 0)
	m.OnRef(&st, t0, -1)
	if got := m.Score(&st, t0); got != 0 {
		t.Fatalf("score = %v, want 0", got)
	}
}
