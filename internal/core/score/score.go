// Package score implements HFetch's file segment scoring function,
// Equation (1) of the paper:
//
//	Score_s(t) = Σ_{i=1..k} (1/p)^{(t - t_i)/n}
//
// where k is the number of accesses to segment s, t_i the time of the
// i-th access, n ≥ 1 the count of references to s (segment sequencing
// links), and p ≥ 2 the decay base. A segment's contribution decays to
// 1/p of its value every n time units, so a segment is hot when it is
// accessed frequently, recently, and has many references.
//
// Two evaluation strategies are provided:
//
//   - Windowed: keeps the last Window access timestamps and evaluates the
//     sum exactly. Used as the reference implementation and whenever n
//     changes (the per-term exponent depends on the current n).
//   - Incremental: folds the running sum forward in O(1) per access via
//     S(t2) = S(t1)·(1/p)^{(t2-t1)/n} + 1. Exact while n stays fixed.
//
// Property tests assert the two agree when n is constant.
package score

import (
	"math"
	"time"
)

// Params configures the scoring model.
type Params struct {
	// P is the decay base; the paper requires p ≥ 2. Defaults to 2.
	P float64
	// Unit is the length of one decay time step. Defaults to 1s.
	Unit time.Duration
	// Window bounds the number of access timestamps retained for exact
	// (windowed) evaluation. Defaults to 32. Older accesses have decayed
	// to negligible contributions by then for any p ≥ 2.
	Window int
}

// DefaultParams returns the paper's defaults: p = 2, 1-second decay unit,
// 32-entry window.
func DefaultParams() Params {
	return Params{P: 2, Unit: time.Second, Window: 32}
}

func (p Params) normalized() Params {
	if p.P < 2 {
		p.P = 2
	}
	if p.Unit <= 0 {
		p.Unit = time.Second
	}
	if p.Window <= 0 {
		p.Window = 32
	}
	return p
}

// Stats holds the per-segment access statistics the auditor maintains:
// access frequency (K), recency (Last), sequencing (Refs, Prev), and the
// folded incremental score.
type Stats struct {
	// K is the total number of accesses observed.
	K int64
	// Last is the time of the most recent access.
	Last time.Time
	// Refs is n: the count of references to this segment (≥ 1 once the
	// segment has been accessed). Sequencing links from predecessor
	// segments increase it.
	Refs int64
	// Sum is the incrementally folded score value as of Last.
	Sum float64
	// History holds up to Window most recent access times (oldest first)
	// for exact evaluation.
	History []time.Time
}

// Model evaluates segment scores under fixed parameters. Model is
// stateless and safe for concurrent use.
type Model struct {
	p      float64
	unit   float64 // seconds per decay step
	window int
}

// NewModel builds a Model from params (normalized to valid values).
func NewModel(params Params) *Model {
	params = params.normalized()
	return &Model{p: params.P, unit: params.Unit.Seconds(), window: params.Window}
}

// P returns the decay base in use.
func (m *Model) P() float64 { return m.p }

// Window returns the history window length.
func (m *Model) Window() int { return m.window }

// decay returns (1/p)^{dt/n} for elapsed dt and reference count n.
func (m *Model) decay(dt time.Duration, n int64) float64 {
	if n < 1 {
		n = 1
	}
	steps := dt.Seconds() / m.unit / float64(n)
	if steps <= 0 {
		return 1
	}
	return math.Pow(1/m.p, steps)
}

// OnAccess records an access at time t into st, updating frequency,
// recency, history and the incremental sum. Out-of-order accesses
// (t before st.Last) are treated as occurring at st.Last, which keeps the
// fold monotone.
func (m *Model) OnAccess(st *Stats, t time.Time) {
	if st.K > 0 || st.Sum > 0 {
		dt := t.Sub(st.Last)
		if dt < 0 {
			dt = 0
			t = st.Last
		}
		st.Sum = st.Sum*m.decay(dt, st.Refs) + 1
	} else {
		st.Sum = 1
	}
	st.K++
	if st.Refs < 1 {
		st.Refs = 1
	}
	st.Last = t
	st.History = append(st.History, t)
	if len(st.History) > m.window {
		st.History = st.History[len(st.History)-m.window:]
	}
}

// AddRef records an additional reference to the segment (sequencing link)
// without counting an access. Because the exponent of every term depends
// on n, the incremental sum is rebuilt from the history window.
func (m *Model) AddRef(st *Stats, t time.Time) {
	st.Refs++
	if st.K > 0 {
		st.Sum = m.Windowed(st, st.Last)
	}
}

// OnRef records an anticipatory reference at time t: the segment was not
// read, but a predecessor linked to it was, so its probability of being
// accessed soon rises. The boost contributes weight (a fraction of a full
// access, typically 0.5) to the folded sum without counting toward the
// access frequency K. This is how segment sequencing turns into
// server-push readahead: linked successors gain score before their first
// read of the epoch.
func (m *Model) OnRef(st *Stats, t time.Time, weight float64) {
	if weight <= 0 {
		return
	}
	if st.Refs < 1 {
		st.Refs = 1
	}
	if st.K > 0 || st.Sum > 0 {
		dt := t.Sub(st.Last)
		if dt < 0 {
			dt = 0
			t = st.Last
		}
		st.Sum = st.Sum*m.decay(dt, st.Refs) + weight
	} else {
		st.Sum = weight
	}
	st.Last = t
}

// Score returns the incremental score of st evaluated at time t.
func (m *Model) Score(st *Stats, t time.Time) float64 {
	if st.K == 0 && st.Sum == 0 {
		return 0
	}
	dt := t.Sub(st.Last)
	if dt < 0 {
		dt = 0
	}
	return st.Sum * m.decay(dt, st.Refs)
}

// Windowed evaluates Equation (1) exactly over the retained history
// window at time t. It is the reference implementation.
func (m *Model) Windowed(st *Stats, t time.Time) float64 {
	var s float64
	for _, ti := range st.History {
		dt := t.Sub(ti)
		if dt < 0 {
			dt = 0
		}
		s += m.decay(dt, st.Refs)
	}
	return s
}
