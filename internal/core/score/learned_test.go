package score

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestUntrainedPredictsHalf(t *testing.T) {
	l := NewLearned(0, 0)
	if p := l.Predict(1, t0, 1, t0); p != 0.5 {
		t.Fatalf("untrained prediction = %v, want 0.5", p)
	}
}

func TestLearnsFrequencySignal(t *testing.T) {
	l := NewLearned(0.1, time.Second)
	// Synthetic truth: segments with many accesses get re-accessed,
	// one-shot segments do not.
	for i := 0; i < 2000; i++ {
		l.Observe(8, t0, 2, t0.Add(100*time.Millisecond), true)
		l.Observe(1, t0, 1, t0.Add(100*time.Millisecond), false)
	}
	hot := l.Predict(8, t0, 2, t0.Add(100*time.Millisecond))
	cold := l.Predict(1, t0, 1, t0.Add(100*time.Millisecond))
	if hot < 0.8 || cold > 0.2 {
		t.Fatalf("model did not separate classes: hot=%v cold=%v", hot, cold)
	}
	pos, neg := l.Examples()
	if pos != 2000 || neg != 2000 {
		t.Fatalf("examples = %d/%d", pos, neg)
	}
}

func TestLearnsRecencySignal(t *testing.T) {
	l := NewLearned(0.1, time.Second)
	// Same frequency; recently-touched segments are re-accessed, stale
	// ones are not.
	for i := 0; i < 3000; i++ {
		l.Observe(3, t0, 1, t0.Add(50*time.Millisecond), true) // fresh
		l.Observe(3, t0, 1, t0.Add(20*time.Second), false)     // stale
	}
	fresh := l.Predict(3, t0, 1, t0.Add(50*time.Millisecond))
	stale := l.Predict(3, t0, 1, t0.Add(20*time.Second))
	if fresh <= stale {
		t.Fatalf("recency not learned: fresh=%v stale=%v", fresh, stale)
	}
}

func TestNegativeRecencyClamped(t *testing.T) {
	l := NewLearned(0.1, time.Second)
	// now before last must not produce NaN/expansion.
	p := l.Predict(1, t0.Add(time.Hour), 1, t0)
	if p <= 0 || p >= 1 {
		t.Fatalf("clamped prediction = %v", p)
	}
}

func TestBlend(t *testing.T) {
	if Blend(2, 0.5) != 2 {
		t.Fatal("p=0.5 must be identity")
	}
	if Blend(2, 1) != 4 {
		t.Fatal("p=1 must double")
	}
	if Blend(2, 0) != 0 {
		t.Fatal("p=0 must zero")
	}
}

func TestLearnedConcurrentUse(t *testing.T) {
	l := NewLearned(0.05, time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				k := int64(rng.Intn(10) + 1)
				l.Observe(k, t0, 1, t0.Add(time.Second), k > 5)
				l.Predict(k, t0, 1, t0.Add(time.Second))
			}
		}(w)
	}
	wg.Wait()
	w := l.Weights()
	for _, v := range w {
		if v != v { // NaN check
			t.Fatalf("weights corrupted: %v", w)
		}
	}
}
