package remote

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHTTPEndpoints(t *testing.T) {
	c, srv := daemon(t)
	c.CreateFile("f", 8*4096)
	f, _ := c.Open("f")
	defer f.Close()
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	srv.Flush()

	h := NewHTTPHandler(srv)

	// /healthz
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/healthz", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rr.Code, rr.Body.String())
	}

	// /stats
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/stats", nil))
	var st StatsReply
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "daemon0" || st.Reads == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// /tiers
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tiers", nil))
	var ti []TierInfo
	if err := json.Unmarshal(rr.Body.Bytes(), &ti); err != nil {
		t.Fatal(err)
	}
	if len(ti) != 2 || ti[0].Name != "ram" {
		t.Fatalf("tiers = %+v", ti)
	}

	// /metrics
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		"hfetch_events_total", "hfetch_placements_total",
		`hfetch_tier_capacity_bytes{tier="ram"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}

	// Unknown path.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/nope", nil))
	if rr.Code != 404 {
		t.Fatalf("unknown path = %d", rr.Code)
	}
}
