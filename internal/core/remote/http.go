package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"hfetch/internal/core/server"
)

// NewHTTPHandler exposes a read-only status API for an HFetch server,
// served by cmd/hfetchd next to the agent protocol:
//
//	GET /healthz      -> 200 "ok"
//	GET /stats        -> JSON StatsReply
//	GET /tiers        -> JSON []TierInfo
//	GET /metrics      -> Prometheus text exposition from the node's
//	                     telemetry registry (histograms included); when
//	                     the daemon runs without telemetry, a coarse
//	                     counter-only fallback rendered from StatsReply
//	GET /spans        -> JSON sampled pipeline spans, most recent first
//	GET /debug/trace  -> Chrome trace_event JSON of lifecycle traces
//	                     (load in Perfetto / chrome://tracing); ?csv=1
//	                     switches to the access-record CSV
//	GET /debug/pprof/ -> net/http/pprof profiles
func NewHTTPHandler(srv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, statsReply(srv))
	})
	mux.HandleFunc("GET /tiers", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, tierInfos(srv))
	})
	if reg := srv.Telemetry(); reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	} else {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			writeLegacyMetrics(w, srv)
		})
	}
	mux.HandleFunc("GET /spans", func(w http.ResponseWriter, r *http.Request) {
		recs := srv.Telemetry().Spans().Recent()
		writeJSON(w, spansReply{Spans: recs})
	})
	mux.HandleFunc("GET /debug/trace", func(w http.ResponseWriter, r *http.Request) {
		csv := r.URL.Query().Get("csv") == "1"
		data, err := RenderTrace(srv, csv)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if csv {
			w.Header().Set("Content-Type", "text/csv")
		} else {
			w.Header().Set("Content-Type", "application/json")
		}
		w.Write(data) //nolint:errcheck // best-effort HTTP body
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeLegacyMetrics is the pre-telemetry coarse exposition: plain
// counters from StatsReply and tier occupancy, no histograms.
func writeLegacyMetrics(w http.ResponseWriter, srv *server.Server) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	st := statsReply(srv)
	emit := func(name string, v int64, labels string) {
		fmt.Fprintf(w, "hfetch_%s%s %d\n", name, labels, v)
	}
	emit("events_total", st.Events, "")
	emit("reads_total", st.Reads, "")
	emit("invalidations_total", st.Invalidations, "")
	emit("segments_seen", st.SegmentsSeen, "")
	emit("engine_runs_total", st.EngineRuns, "")
	emit("placements_total", st.Placements, "")
	emit("promotions_total", st.Promotions, "")
	emit("demotions_total", st.Demotions, "")
	emit("evictions_total", st.Evictions, "")
	emit("remote_reads_total", st.RemoteReads, "")
	emit("remote_serves_total", st.RemoteServes, "")
	for _, ti := range tierInfos(srv) {
		l := fmt.Sprintf("{tier=%q}", ti.Name)
		emit("tier_capacity_bytes", ti.Capacity, l)
		emit("tier_used_bytes", ti.Used, l)
		emit("tier_segments", int64(ti.Segments), l)
	}
}

func statsReply(srv *server.Server) StatsReply {
	ac := srv.Auditor().Counters()
	ec := srv.Engine().Counters()
	rr, rs := srv.RemoteStats()
	return StatsReply{
		Node:          srv.Node(),
		Events:        ac.Events,
		Reads:         ac.Reads,
		Invalidations: ac.Invalidations,
		SegmentsSeen:  ac.SegmentsSeen,
		EngineRuns:    ec.Runs,
		Placements:    ec.Placements,
		Promotions:    ec.Promotions,
		Demotions:     ec.Demotions,
		Evictions:     ec.Evictions,
		RemoteReads:   rr,
		RemoteServes:  rs,
		IO:            srv.IOStats().Snapshot(),
	}
}

func tierInfos(srv *server.Server) []TierInfo {
	var out []TierInfo
	for _, st := range srv.Hierarchy().Stores() {
		out = append(out, TierInfo{
			Name: st.Name(), Capacity: st.Capacity(), Used: st.Used(), Segments: st.Len(),
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
