// Package remote implements the wire protocol between HFetch agents and
// a standalone HFetch server daemon (cmd/hfetchd). In the emulated
// cluster, agents call the server in-process; across processes the same
// agent operations — open (start epoch), read (prefetched-or-PFS), write
// (invalidate), close (end epoch) — travel over the node-to-node
// communicator as gob-encoded request/response messages.
package remote

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"hfetch/internal/comm"
	"hfetch/internal/core/seg"
	"hfetch/internal/core/server"
	"hfetch/internal/events"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
)

// Message types of the agent protocol.
const (
	MsgOpen    = "agent.open"
	MsgRead    = "agent.read"
	MsgWrite   = "agent.write"
	MsgClose   = "agent.close"
	MsgStats   = "ctl.stats"
	MsgTiers   = "ctl.tiers"
	MsgMetrics = "ctl.metrics"
	MsgSpans   = "ctl.spans"
	MsgTrace   = "ctl.trace"
	// MsgTraceRecs returns the raw lifecycle records plus the node name,
	// so fleet-level callers (hfetchctl trace -fleet) can merge lanes from
	// every member into one multi-process Perfetto export client-side.
	MsgTraceRecs = "ctl.tracerecs"
)

type openReq struct{ File string }
type openResp struct{ Size int64 }

type readReq struct {
	File string
	Off  int64
	Len  int64
}

type readResp struct {
	Data []byte
	Tier string // tier that served it; empty = PFS (miss)
}

type writeReq struct {
	File string
	Off  int64
	Len  int64
}

type closeReq struct{ File string }

// spansReply wraps the sampled span list so an empty list still
// round-trips through gob (a bare nil slice encodes to nothing).
type spansReply struct{ Spans []telemetry.SpanRecord }

// traceReq selects the lifecycle export format: Chrome trace_event JSON
// (the default, loadable in Perfetto) or the legacy access-record CSV.
// The daemon renders server-side so the wire payload is final bytes.
type traceReq struct{ CSV bool }

type traceReply struct{ Data []byte }

// traceRecsReply is the MsgTraceRecs payload: this node's lifecycle
// records, unrendered, for client-side fleet merging.
type traceRecsReply struct {
	Node string
	Recs []telemetry.TraceRecord
}

// StatsReply is the ctl.stats payload.
type StatsReply struct {
	Node          string
	Events        int64
	Reads         int64
	Invalidations int64
	SegmentsSeen  int64
	EngineRuns    int64
	Placements    int64
	Promotions    int64
	Demotions     int64
	Evictions     int64
	RemoteReads   int64
	RemoteServes  int64
	// IO is the server-side read accounting (hits, misses, bytes,
	// per-tier hit counts) across every agent the daemon serves.
	IO metrics.IOSnapshot
}

// TierInfo is one tier's line in the ctl.tiers reply.
type TierInfo struct {
	Name     string
	Capacity int64
	Used     int64
	Segments int
}

func enc(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func dec(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// Serve registers the agent protocol handlers for srv on mux.
func Serve(mux *comm.Mux, srv *server.Server) {
	mux.Register(MsgOpen, func(raw []byte) ([]byte, error) {
		var req openReq
		if err := dec(raw, &req); err != nil {
			return nil, err
		}
		fi, err := srv.FS().Stat(req.File)
		if err != nil {
			return nil, err
		}
		srv.StartEpoch(req.File, fi.Size)
		return enc(openResp{Size: fi.Size})
	})
	mux.Register(MsgRead, func(raw []byte) ([]byte, error) {
		var req readReq
		if err := dec(raw, &req); err != nil {
			return nil, err
		}
		data, tier, err := serveRead(srv, req)
		if err != nil {
			return nil, err
		}
		return enc(readResp{Data: data, Tier: tier})
	})
	mux.Register(MsgWrite, func(raw []byte) ([]byte, error) {
		var req writeReq
		if err := dec(raw, &req); err != nil {
			return nil, err
		}
		if _, err := srv.FS().Write(req.File, req.Off, req.Len); err != nil {
			return nil, err
		}
		srv.PostEvent(events.Event{Op: events.OpWrite, File: req.File, Offset: req.Off, Length: req.Len})
		return nil, nil
	})
	mux.Register(MsgClose, func(raw []byte) ([]byte, error) {
		var req closeReq
		if err := dec(raw, &req); err != nil {
			return nil, err
		}
		srv.EndEpoch(req.File)
		return nil, nil
	})
	mux.Register(MsgStats, func(raw []byte) ([]byte, error) {
		return enc(statsReply(srv))
	})
	mux.Register(MsgMetrics, func(raw []byte) ([]byte, error) {
		var snap telemetry.Snapshot
		if reg := srv.Telemetry(); reg != nil {
			snap = reg.Snapshot()
		}
		return enc(snap)
	})
	mux.Register(MsgSpans, func(raw []byte) ([]byte, error) {
		var recs []telemetry.SpanRecord
		if reg := srv.Telemetry(); reg != nil {
			recs = reg.Spans().Recent()
		}
		return enc(spansReply{Spans: recs})
	})
	mux.Register(MsgTrace, func(raw []byte) ([]byte, error) {
		var req traceReq
		if len(raw) > 0 {
			if err := dec(raw, &req); err != nil {
				return nil, err
			}
		}
		data, err := RenderTrace(srv, req.CSV)
		if err != nil {
			return nil, err
		}
		return enc(traceReply{Data: data})
	})
	mux.Register(MsgTraceRecs, func(raw []byte) ([]byte, error) {
		reply := traceRecsReply{Node: srv.Node()}
		if lc := srv.Telemetry().Lifecycle(); lc != nil {
			reply.Recs = lc.Export()
		}
		return enc(reply)
	})
	mux.Register(MsgTiers, func(raw []byte) ([]byte, error) {
		var out []TierInfo
		for _, st := range srv.Hierarchy().Stores() {
			out = append(out, TierInfo{
				Name: st.Name(), Capacity: st.Capacity(), Used: st.Used(), Segments: st.Len(),
			})
		}
		return enc(out)
	})
}

// serveRead performs the server-side read path: prefetched segments from
// their tiers, the rest from the PFS, with the access event posted.
func serveRead(srv *server.Server, req readReq) ([]byte, string, error) {
	if req.Len <= 0 || req.Off < 0 {
		return nil, "", fmt.Errorf("remote: bad read [%d,+%d)", req.Off, req.Len)
	}
	fi, err := srv.FS().Stat(req.File)
	if err != nil {
		return nil, "", err
	}
	want := req.Len
	if req.Off >= fi.Size {
		return nil, "", nil
	}
	if req.Off+want > fi.Size {
		want = fi.Size - req.Off
	}
	out := make([]byte, want)
	segr := srv.Segmenter()
	tier := ""
	allHit := true
	n := int64(0)
	for n < want {
		cur := req.Off + n
		id := seg.ID{File: req.File, Index: segr.IndexOf(cur)}
		segOff := cur - id.Index*segr.Size()
		chunk := segr.RangeOf(id, fi.Size).End() - cur
		if chunk > want-n {
			chunk = want - n
		}
		if chunk <= 0 {
			break
		}
		if got, t, ok := srv.ReadPrefetched(id, segOff, out[n:n+chunk]); ok && int64(got) == chunk {
			tier = t
			n += chunk
			continue
		}
		allHit = false
		got, _, err := srv.FS().ReadAt(req.File, cur, out[n:n+chunk])
		if err != nil {
			return nil, "", err
		}
		n += int64(got)
		if int64(got) < chunk {
			break
		}
	}
	srv.PostEvent(events.Event{Op: events.OpRead, File: req.File, Offset: req.Off, Length: n})
	if !allHit {
		tier = ""
	}
	return out[:n], tier, nil
}

// Client is a remote HFetch agent speaking to an hfetchd daemon.
type Client struct {
	peer  comm.Peer
	stats *metrics.IOStats
}

// Dial connects to a daemon at addr.
func Dial(addr string) (*Client, error) {
	peer, err := comm.DialTCP(addr)
	if err != nil {
		return nil, err
	}
	return &Client{peer: peer, stats: metrics.NewIOStats()}, nil
}

// NewClient wraps an existing peer (tests use the in-process fabric).
func NewClient(peer comm.Peer) *Client {
	return &Client{peer: peer, stats: metrics.NewIOStats()}
}

// Stats returns the client-side I/O statistics.
func (c *Client) Stats() *metrics.IOStats { return c.stats }

// Close releases the connection.
func (c *Client) Close() error { return c.peer.Close() }

// Ping probes the daemon's liveness.
func (c *Client) Ping() bool { return comm.Ping(c.peer, []byte("hfetch")) }

// Stats queries the daemon's counters.
func (c *Client) ServerStats() (StatsReply, error) {
	raw, err := c.peer.Request(MsgStats, nil)
	if err != nil {
		return StatsReply{}, err
	}
	var out StatsReply
	err = dec(raw, &out)
	return out, err
}

// Metrics queries the daemon's full telemetry snapshot. The snapshot is
// empty (no series) when the daemon runs with telemetry disabled.
func (c *Client) Metrics() (telemetry.Snapshot, error) {
	raw, err := c.peer.Request(MsgMetrics, nil)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	var out telemetry.Snapshot
	err = dec(raw, &out)
	return out, err
}

// Spans queries the daemon's sampled pipeline spans, most recent first.
func (c *Client) Spans() ([]telemetry.SpanRecord, error) {
	raw, err := c.peer.Request(MsgSpans, nil)
	if err != nil {
		return nil, err
	}
	var out spansReply
	err = dec(raw, &out)
	return out.Spans, err
}

// RenderTrace renders the server's lifecycle export: Chrome trace_event
// JSON (csv=false) or the access-record CSV (csv=true). Both render to
// empty-but-valid documents when lifecycle tracing is disabled.
func RenderTrace(srv *server.Server, csv bool) ([]byte, error) {
	lc := srv.Telemetry().Lifecycle()
	var buf bytes.Buffer
	if csv {
		var samples []telemetry.AccessSample
		if lc != nil {
			samples = lc.AccessLog().Samples()
		}
		if err := telemetry.WriteAccessCSV(&buf, samples); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var recs []telemetry.TraceRecord
	if lc != nil {
		recs = lc.Export()
	}
	if err := telemetry.WriteTraceJSON(&buf, srv.Node(), recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Trace fetches the daemon's lifecycle trace export: Perfetto-loadable
// trace_event JSON, or the access-record CSV when csv is set.
func (c *Client) Trace(csv bool) ([]byte, error) {
	req, err := enc(traceReq{CSV: csv})
	if err != nil {
		return nil, err
	}
	raw, err := c.peer.Request(MsgTrace, req)
	if err != nil {
		return nil, err
	}
	var out traceReply
	err = dec(raw, &out)
	return out.Data, err
}

// TraceRecords fetches the daemon's raw lifecycle records and its node
// name, for fleet-merged exports (telemetry.WriteFleetTraceJSON).
func (c *Client) TraceRecords() (node string, recs []telemetry.TraceRecord, err error) {
	raw, err := c.peer.Request(MsgTraceRecs, nil)
	if err != nil {
		return "", nil, err
	}
	var out traceRecsReply
	if err := dec(raw, &out); err != nil {
		return "", nil, err
	}
	return out.Node, out.Recs, nil
}

// Tiers queries the daemon's tier occupancy.
func (c *Client) Tiers() ([]TierInfo, error) {
	raw, err := c.peer.Request(MsgTiers, nil)
	if err != nil {
		return nil, err
	}
	var out []TierInfo
	err = dec(raw, &out)
	return out, err
}

// File is a remote open file.
type File struct {
	c    *Client
	name string
	size int64
}

// Open opens name for reading and begins its prefetching epoch.
func (c *Client) Open(name string) (*File, error) {
	req, err := enc(openReq{File: name})
	if err != nil {
		return nil, err
	}
	raw, err := c.peer.Request(MsgOpen, req)
	if err != nil {
		return nil, err
	}
	var resp openResp
	if err := dec(raw, &resp); err != nil {
		return nil, err
	}
	return &File{c: c, name: name, size: resp.Size}, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size at open time.
func (f *File) Size() int64 { return f.size }

// ReadAt reads len(p) bytes at off through the daemon.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	n, _, err := f.ReadAtTier(p, off)
	return n, err
}

// ReadAtTier is ReadAt plus the name of the tier that served the bytes
// ("" when they came from the PFS).
func (f *File) ReadAtTier(p []byte, off int64) (int, string, error) {
	req, err := enc(readReq{File: f.name, Off: off, Len: int64(len(p))})
	if err != nil {
		return 0, "", err
	}
	t := metrics.StartTimer()
	raw, err := f.c.peer.Request(MsgRead, req)
	if err != nil {
		return 0, "", err
	}
	var resp readResp
	if err := dec(raw, &resp); err != nil {
		return 0, "", err
	}
	n := copy(p, resp.Data)
	if resp.Tier != "" {
		f.c.stats.Hit(resp.Tier, int64(n))
	} else {
		f.c.stats.Miss(int64(n))
	}
	f.c.stats.ObserveRead(t.Elapsed())
	return n, resp.Tier, nil
}

// WriteAt emulates an update (invalidating prefetched data).
func (f *File) WriteAt(off, ln int64) error {
	req, err := enc(writeReq{File: f.name, Off: off, Len: ln})
	if err != nil {
		return err
	}
	_, err = f.c.peer.Request(MsgWrite, req)
	return err
}

// Close ends this reader's epoch.
func (f *File) Close() error {
	req, err := enc(closeReq{File: f.name})
	if err != nil {
		return err
	}
	_, err = f.c.peer.Request(MsgClose, req)
	return err
}

// CreateFile registers a synthetic file on the daemon's PFS (testing and
// demo convenience; production deployments would point HFetch at real
// data).
const MsgCreate = "ctl.create"

type createReq struct {
	File string
	Size int64
}

// ServeAdmin registers administrative handlers (file creation).
func ServeAdmin(mux *comm.Mux, fs *pfs.FS) {
	mux.Register(MsgCreate, func(raw []byte) ([]byte, error) {
		var req createReq
		if err := dec(raw, &req); err != nil {
			return nil, err
		}
		return nil, fs.Create(req.File, req.Size)
	})
}

// CreateFile asks the daemon to register a synthetic file.
func (c *Client) CreateFile(name string, size int64) error {
	req, err := enc(createReq{File: name, Size: size})
	if err != nil {
		return err
	}
	_, err = c.peer.Request(MsgCreate, req)
	return err
}

// MsgNodes is the cluster membership query (hfetchctl nodes).
const MsgNodes = "ctl.nodes"

// NodeInfo is one member's row in the ctl.nodes reply. The package
// deliberately does not import internal/cluster: the daemon glues its
// cluster view into this wire struct, and non-clustered daemons answer
// with their single self row.
type NodeInfo struct {
	Name string
	Addr string
	// Ops is the member's operator-facing (agent/ctl) address, gossiped
	// through the membership so fleet fan-out (hfetchctl -fleet) needs no
	// static configuration ("" when unknown).
	Ops string
	// State is "alive", "suspect" or "dead" ("self" fields report zero
	// heartbeat age).
	State string
	// HeartbeatAgeNanos is how long ago the daemon heard the member.
	HeartbeatAgeNanos int64
	// Keys is the member's self-reported hashmap key count.
	Keys int64
	// FetchP99Nanos is the daemon's observed p99 cross-node fetch
	// latency to the member (0 = no fetches yet).
	FetchP99Nanos int64
}

type nodesReply struct{ Nodes []NodeInfo }

// ServeNodes registers the membership query; fn snapshots the daemon's
// current view (it must be safe for concurrent use).
func ServeNodes(mux *comm.Mux, fn func() []NodeInfo) {
	mux.Register(MsgNodes, func([]byte) ([]byte, error) {
		return enc(nodesReply{Nodes: fn()})
	})
}

// Nodes queries the daemon's cluster membership view.
func (c *Client) Nodes() ([]NodeInfo, error) {
	raw, err := c.peer.Request(MsgNodes, nil)
	if err != nil {
		return nil, err
	}
	var out nodesReply
	if err := dec(raw, &out); err != nil {
		return nil, err
	}
	return out.Nodes, nil
}
