package remote

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"hfetch/internal/comm"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/server"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// daemonTelemetry is daemon with a metric registry and span log attached.
func daemonTelemetry(t *testing.T) (*Client, *server.Server) {
	t.Helper()
	fs := pfs.New(nil)
	ram := tiers.NewStore("ram", 1<<20, nil)
	nvme := tiers.NewStore("nvme", 2<<20, nil)
	hier := tiers.NewHierarchy(ram, nvme)
	stats, maps := server.NewLocalMaps("daemon0")
	reg := telemetry.NewRegistry()
	reg.EnableSpans(64, 1)
	reg.SetTimeSampling(1)
	srv, err := server.New(server.Config{
		Node:        "daemon0",
		SegmentSize: 4096,
		Engine:      placement.Config{UpdateThreshold: placement.High},
		Telemetry:   reg,
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	mux := comm.NewMux()
	Serve(mux, srv)
	ServeAdmin(mux, fs)
	ts, err := comm.ListenTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// readTwice issues a cold read (PFS miss), flushes placement, and reads
// the same segment again so it is served from a tier.
func readTwice(t *testing.T, c *Client, srv *server.Server) {
	t.Helper()
	if err := c.CreateFile("data/m", 16*4096); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("data/m")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if _, tier, err := f.ReadAtTier(buf, 0); err != nil || tier == "" {
		t.Fatalf("second read should hit a tier, got tier=%q err=%v", tier, err)
	}
}

func TestRemoteMetrics(t *testing.T) {
	c, srv := daemonTelemetry(t)
	readTwice(t, c, srv)

	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) == 0 {
		t.Fatal("telemetry-enabled daemon returned an empty snapshot")
	}
	byName := map[string]*telemetry.MetricSnapshot{}
	for i := range snap.Metrics {
		m := &snap.Metrics[i]
		byName[m.Name+m.Labels] = m
	}
	miss, ok := byName["hfetch_read_misses_total"]
	if !ok || miss.Value == 0 {
		t.Fatalf("cold read must be counted as a miss: %+v", miss)
	}
	var readHist *telemetry.MetricSnapshot
	for k, m := range byName {
		if strings.HasPrefix(k, "hfetch_tier_read_nanos{") {
			readHist = m
		}
	}
	if readHist == nil || readHist.Hist == nil || readHist.Hist.Count == 0 {
		t.Fatalf("tier hit must record a read-latency histogram sample, got %+v", readHist)
	}
	if _, ok := byName["hfetch_events_posted_total"]; !ok {
		t.Fatal("queue counters missing from snapshot")
	}

	// The server-side IO accounting rides along on ctl.stats.
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.IO.Hits == 0 || st.IO.Misses == 0 {
		t.Fatalf("stats IO snapshot = %+v", st.IO)
	}
}

func TestRemoteSpans(t *testing.T) {
	c, srv := daemonTelemetry(t)
	readTwice(t, c, srv)

	recs, err := c.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("span log sampled nothing despite every=1")
	}
	stages := map[string]bool{}
	for _, r := range recs {
		stages[r.Stage] = true
	}
	if !stages[telemetry.StageQueueWait] || !stages[telemetry.StageAudit] {
		t.Fatalf("expected queue_wait and audit spans, got %v", stages)
	}
}

func TestRemoteMetricsDisabled(t *testing.T) {
	c, _ := daemon(t)
	snap, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Metrics) != 0 {
		t.Fatalf("telemetry-disabled daemon must return an empty snapshot, got %d series", len(snap.Metrics))
	}
	recs, err := c.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("telemetry-disabled daemon must return no spans, got %d", len(recs))
	}
}

func TestHTTPTelemetryEndpoints(t *testing.T) {
	c, srv := daemonTelemetry(t)
	readTwice(t, c, srv)

	h := NewHTTPHandler(srv)

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"# TYPE hfetch_tier_read_nanos histogram",
		"hfetch_tier_read_nanos_bucket{tier=",
		"hfetch_read_misses_total",
		"hfetch_event_queue_depth",
		"# TYPE hfetch_pipeline_stage_nanos histogram",
		`hfetch_tier_capacity_bytes{tier="ram"}`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("telemetry /metrics missing %q:\n%s", want, body)
		}
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/spans", nil))
	var sp spansReply
	if err := json.Unmarshal(rr.Body.Bytes(), &sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Spans) == 0 {
		t.Fatal("/spans returned no sampled spans")
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rr.Code != 200 {
		t.Fatalf("pprof cmdline = %d", rr.Code)
	}
}
