package remote

import (
	"bytes"
	"testing"

	"hfetch/internal/comm"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/server"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

// daemon boots a full HFetch server behind a TCP endpoint and returns a
// connected client.
func daemon(t *testing.T) (*Client, *server.Server) {
	t.Helper()
	fs := pfs.New(nil)
	ram := tiers.NewStore("ram", 1<<20, nil)
	nvme := tiers.NewStore("nvme", 2<<20, nil)
	hier := tiers.NewHierarchy(ram, nvme)
	stats, maps := server.NewLocalMaps("daemon0")
	srv, err := server.New(server.Config{
		Node:        "daemon0",
		SegmentSize: 4096,
		Engine:      placement.Config{UpdateThreshold: placement.High},
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)

	mux := comm.NewMux()
	Serve(mux, srv)
	ServeAdmin(mux, fs)
	ts, err := comm.ListenTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ts.Close() })

	c, err := Dial(ts.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

func TestRemoteOpenReadClose(t *testing.T) {
	c, srv := daemon(t)
	if err := c.CreateFile("data/x", 64*4096); err != nil {
		t.Fatal(err)
	}
	f, err := c.Open("data/x")
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 64*4096 || f.Name() != "data/x" {
		t.Fatalf("file meta = %q %d", f.Name(), f.Size())
	}
	want := make([]byte, 4096)
	srv.FS().ReadAt("data/x", 8192, want)
	got := make([]byte, 4096)
	n, err := f.ReadAt(got, 8192)
	if err != nil || n != 4096 || !bytes.Equal(got, want) {
		t.Fatalf("remote read = %d %v (match=%v)", n, err, bytes.Equal(got, want))
	}
	if c.Stats().Misses() != 1 {
		t.Fatalf("cold remote read must miss: %s", c.Stats())
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if srv.Registry().Watched("data/x") {
		t.Fatal("close must remove the watch")
	}
}

func TestRemoteWarmReadHits(t *testing.T) {
	c, srv := daemon(t)
	c.CreateFile("f", 16*4096)
	f, _ := c.Open("f")
	defer f.Close()
	buf := make([]byte, 4096)
	for off := int64(0); off < 16*4096; off += 4096 {
		f.ReadAt(buf, off)
	}
	srv.Flush()
	for off := int64(0); off < 16*4096; off += 4096 {
		f.ReadAt(buf, off)
	}
	if c.Stats().Hits() == 0 {
		t.Fatalf("warm remote reads must hit: %s", c.Stats())
	}
	tiers := c.Stats().TierHits()
	if tiers["ram"] == 0 {
		t.Fatalf("hits should come from ram: %v", tiers)
	}
}

func TestRemoteWriteInvalidates(t *testing.T) {
	c, srv := daemon(t)
	c.CreateFile("f", 8*4096)
	f, _ := c.Open("f")
	defer f.Close()
	buf := make([]byte, 4096)
	for off := int64(0); off < 8*4096; off += 4096 {
		f.ReadAt(buf, off)
	}
	srv.Flush()
	if srv.Hierarchy().TotalUsed() == 0 {
		t.Fatal("expected resident segments before the write")
	}
	if err := f.WriteAt(0, 10); err != nil {
		t.Fatal(err)
	}
	srv.Flush()
	if srv.Hierarchy().TotalUsed() != 0 {
		t.Fatal("write must invalidate prefetched data")
	}
	// Post-invalidation reads see the new version.
	want := make([]byte, 4096)
	srv.FS().ReadAt("f", 0, want)
	got := make([]byte, 4096)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("stale bytes after remote invalidation")
	}
}

func TestRemoteReadEdges(t *testing.T) {
	c, _ := daemon(t)
	c.CreateFile("f", 1000)
	f, _ := c.Open("f")
	defer f.Close()
	buf := make([]byte, 400)
	n, err := f.ReadAt(buf, 800)
	if err != nil || n != 200 {
		t.Fatalf("short read = %d %v", n, err)
	}
	n, err = f.ReadAt(buf, 5000)
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d %v", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset must error")
	}
	if _, err := c.Open("ghost"); err == nil {
		t.Fatal("open of missing file must error")
	}
}

func TestRemoteStatsAndTiers(t *testing.T) {
	c, _ := daemon(t)
	c.CreateFile("f", 8*4096)
	f, _ := c.Open("f")
	defer f.Close()
	buf := make([]byte, 4096)
	f.ReadAt(buf, 0)
	st, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "daemon0" || st.Reads == 0 {
		t.Fatalf("stats = %+v", st)
	}
	ti, err := c.Tiers()
	if err != nil || len(ti) != 2 || ti[0].Name != "ram" {
		t.Fatalf("tiers = %+v %v", ti, err)
	}
}
