// Package ioclient implements HFetch's data-prefetching I/O clients: the
// component that performs the actual byte movement the placement engine
// plans. For every move there is a source (the PFS origin or a tier
// store) and a destination (a tier store, or nothing for an eviction —
// HFetch's cache is exclusive and the PFS always holds the authoritative
// copy, so evicting is a metadata drop).
//
// Movement between tiers is pipelined: Transfer reads from the source
// tier and writes to the destination tier, charging both device models,
// which is how fetching PFS → burst buffer → NVMe → RAM overlaps with
// application reads in the experiments.
package ioclient

import (
	"fmt"
	"sync/atomic"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Stats are cumulative I/O client counters.
type Stats struct {
	Fetches    int64
	Transfers  int64
	Evictions  int64
	BytesMoved int64
}

// Client moves segment payloads between the PFS and tier stores.
type Client struct {
	fs  *pfs.FS
	seg *seg.Segmenter

	fetches, transfers, evictions, bytes atomic.Int64

	// Telemetry handles; all nil when disabled (their methods no-op).
	tele     *telemetry.Registry
	bytesIn  *telemetry.CounterVec // bytes written into a tier
	bytesOut *telemetry.CounterVec // bytes leaving a tier (demotion source)
	evictVec *telemetry.CounterVec
	moveHist *telemetry.HistVec // per-destination-tier movement latency
}

// New creates a client reading origin data from fs with the given
// segment grain.
func New(fs *pfs.FS, segmenter *seg.Segmenter) *Client {
	return &Client{fs: fs, seg: segmenter}
}

// SetTelemetry attaches a registry: every movement records per-tier
// moved-bytes counters, a per-destination latency histogram, and a
// fetch pipeline span. Call before traffic; nil is ignored.
func (c *Client) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.tele = reg
	c.bytesIn = reg.CounterVec("hfetch_tier_moved_bytes_in_total", "bytes moved into the tier by the I/O client", "tier")
	c.bytesOut = reg.CounterVec("hfetch_tier_moved_bytes_out_total", "bytes moved out of the tier by the I/O client", "tier")
	c.evictVec = reg.CounterVec("hfetch_tier_evictions_total", "segments evicted from the tier", "tier")
	c.moveHist = reg.HistVec("hfetch_tier_move_nanos", "data-movement latency into the tier in nanoseconds", "tier")
	reg.CounterFunc("hfetch_fetches_total", "segment fetches from the PFS", c.fetches.Load)
	reg.CounterFunc("hfetch_transfers_total", "tier-to-tier segment transfers", c.transfers.Load)
	reg.CounterFunc("hfetch_moved_bytes_total", "total bytes moved by the I/O client", c.bytes.Load)
}

// Fetch loads segment id from the PFS into dst. size > 0 overrides the
// payload length (clipped segments); size <= 0 reads a full grain.
func (c *Client) Fetch(id seg.ID, size int64, dst *tiers.Store) error {
	var start time.Time
	if c.tele != nil {
		start = time.Now()
	}
	r := c.seg.RangeOf(id, 0)
	if size > 0 && size < r.Len {
		r.Len = size
	}
	buf := tiers.SlabGet(r.Len)
	n, _, err := c.fs.ReadAt(id.File, r.Off, buf)
	if err != nil {
		tiers.SlabPut(buf)
		return fmt.Errorf("ioclient: fetch %v: %w", id, err)
	}
	if n == 0 {
		tiers.SlabPut(buf)
		return fmt.Errorf("ioclient: fetch %v: empty segment", id)
	}
	// buf came fresh from the slab and is not shared: hand ownership to
	// the store instead of paying Put's defensive copy.
	if err := dst.PutOwned(id, buf[:n]); err != nil {
		tiers.SlabPut(buf)
		return fmt.Errorf("ioclient: fetch %v into %s: %w", id, dst.Name(), err)
	}
	c.fetches.Add(1)
	c.bytes.Add(int64(n))
	if c.tele != nil {
		d := time.Since(start)
		c.bytesIn.With(dst.Name()).Add(int64(n))
		c.moveHist.With(dst.Name()).Observe(int64(d))
		c.tele.Span(telemetry.StageFetch, id.File, id.Index, dst.Name(), start, d)
	}
	return nil
}

// FetchMany loads len(sizes) consecutive segments of file, starting at
// segment index first, into dst with as few origin reads as possible:
// maximal runs of full-grain segments are read in one pfs.ReadAt —
// paying the PFS latency once for the whole run instead of once per
// segment — and split into per-segment payloads. A short segment (a
// clipped file tail, or an adaptive grain) ends its run, since the
// following segment is no longer contiguous with the buffered span.
//
// The per-segment outcome is reported in the returned slice (aligned
// with sizes): entries are nil on success. coalesced counts the
// segments that shared an origin read with at least one other.
func (c *Client) FetchMany(file string, first int64, sizes []int64, dst *tiers.Store) (errs []error, coalesced int) {
	errs = make([]error, len(sizes))
	grain := c.seg.Size()
	for i := 0; i < len(sizes); {
		// Extend the run while segments stay contiguous: every segment
		// but the run's last must cover its full grain.
		j := i + 1
		for j < len(sizes) && sizes[j-1] == grain {
			j++
		}
		if j-i == 1 {
			errs[i] = c.Fetch(seg.ID{File: file, Index: first + int64(i)}, sizes[i], dst)
			i = j
			continue
		}
		var start time.Time
		if c.tele != nil {
			start = time.Now()
		}
		var total int64
		for k := i; k < j; k++ {
			total += sizes[k]
		}
		off := (first + int64(i)) * grain
		buf := tiers.SlabGet(total)
		n, _, err := c.fs.ReadAt(file, off, buf)
		if err != nil || n == 0 {
			if err == nil {
				err = fmt.Errorf("ioclient: coalesced fetch %s@%d: empty span", file, off)
			}
			tiers.SlabPut(buf)
			for k := i; k < j; k++ {
				errs[k] = err
			}
			i = j
			continue
		}
		var put int64
		var pos int64
		for k := i; k < j; k++ {
			id := seg.ID{File: file, Index: first + int64(k)}
			end := pos + sizes[k]
			if pos >= int64(n) {
				errs[k] = fmt.Errorf("ioclient: coalesced fetch %v: short span", id)
				pos = end
				continue
			}
			if end > int64(n) {
				end = int64(n)
			}
			// Per-segment copy (Put draws a slab buffer per segment):
			// handing sub-slices of buf to the store would pin the whole
			// span for as long as any one segment stays resident.
			if perr := dst.Put(id, buf[pos:end]); perr != nil {
				errs[k] = fmt.Errorf("ioclient: coalesced fetch %v into %s: %w", id, dst.Name(), perr)
			} else {
				put += end - pos
				c.fetches.Add(1)
				coalesced++
			}
			pos += sizes[k]
		}
		// The span buffer was split into per-segment slab buffers above;
		// return it to its pool for the next coalesced run.
		tiers.SlabPut(buf)
		c.bytes.Add(put)
		if c.tele != nil {
			d := time.Since(start)
			c.bytesIn.With(dst.Name()).Add(put)
			c.moveHist.With(dst.Name()).Observe(int64(d))
			c.tele.Span(telemetry.StageFetch, file, first+int64(i), dst.Name(), start, d)
		}
		i = j
	}
	return errs, coalesced
}

// Transfer moves a resident segment from src to dst (promotion or
// demotion). On a destination failure the payload is restored to src so
// no data is lost mid-move.
func (c *Client) Transfer(id seg.ID, src, dst *tiers.Store) error {
	var start time.Time
	if c.tele != nil {
		start = time.Now()
	}
	b, err := src.TakeBuf(id)
	if err != nil {
		return fmt.Errorf("ioclient: transfer %v from %s: %w", id, src.Name(), err)
	}
	size := b.Len()
	// TakeBuf handed over the store's reference: move the Buf itself —
	// never the bytes — so a reader pinned through the move keeps one
	// coherent refcount on one buffer.
	if err := dst.PutBuf(id, b); err != nil {
		if rerr := src.PutBuf(id, b); rerr != nil {
			b.Release()
			return fmt.Errorf("ioclient: transfer %v lost (dst %s: %v; restore %s: %w)",
				id, dst.Name(), err, src.Name(), rerr)
		}
		return fmt.Errorf("ioclient: transfer %v to %s: %w", id, dst.Name(), err)
	}
	c.transfers.Add(1)
	c.bytes.Add(size)
	if c.tele != nil {
		d := time.Since(start)
		c.bytesOut.With(src.Name()).Add(size)
		c.bytesIn.With(dst.Name()).Add(size)
		c.moveHist.With(dst.Name()).Observe(int64(d))
		c.tele.Span(telemetry.StageFetch, id.File, id.Index, dst.Name(), start, d)
	}
	return nil
}

// Evict drops a resident segment from src. The PFS remains the origin,
// so no write-back is needed (WORM data).
func (c *Client) Evict(id seg.ID, src *tiers.Store) error {
	if !src.Delete(id) {
		return tiers.ErrNotFound
	}
	c.evictions.Add(1)
	c.evictVec.With(src.Name()).Inc()
	return nil
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Fetches:    c.fetches.Load(),
		Transfers:  c.transfers.Load(),
		Evictions:  c.evictions.Load(),
		BytesMoved: c.bytes.Load(),
	}
}
