// Package ioclient implements HFetch's data-prefetching I/O clients: the
// component that performs the actual byte movement the placement engine
// plans. For every move there is a source (the PFS origin or a tier
// store) and a destination (a tier store, or nothing for an eviction —
// HFetch's cache is exclusive and the PFS always holds the authoritative
// copy, so evicting is a metadata drop).
//
// Movement between tiers is pipelined: Transfer reads from the source
// tier and writes to the destination tier, charging both device models,
// which is how fetching PFS → burst buffer → NVMe → RAM overlaps with
// application reads in the experiments.
package ioclient

import (
	"fmt"
	"sync/atomic"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// Stats are cumulative I/O client counters.
type Stats struct {
	Fetches    int64
	Transfers  int64
	Evictions  int64
	BytesMoved int64
}

// Client moves segment payloads between the PFS and tier stores.
type Client struct {
	fs  *pfs.FS
	seg *seg.Segmenter

	fetches, transfers, evictions, bytes atomic.Int64

	// Telemetry handles; all nil when disabled (their methods no-op).
	tele     *telemetry.Registry
	bytesIn  *telemetry.CounterVec // bytes written into a tier
	bytesOut *telemetry.CounterVec // bytes leaving a tier (demotion source)
	evictVec *telemetry.CounterVec
	moveHist *telemetry.HistVec // per-destination-tier movement latency
}

// New creates a client reading origin data from fs with the given
// segment grain.
func New(fs *pfs.FS, segmenter *seg.Segmenter) *Client {
	return &Client{fs: fs, seg: segmenter}
}

// SetTelemetry attaches a registry: every movement records per-tier
// moved-bytes counters, a per-destination latency histogram, and a
// fetch pipeline span. Call before traffic; nil is ignored.
func (c *Client) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.tele = reg
	c.bytesIn = reg.CounterVec("hfetch_tier_moved_bytes_in_total", "bytes moved into the tier by the I/O client", "tier")
	c.bytesOut = reg.CounterVec("hfetch_tier_moved_bytes_out_total", "bytes moved out of the tier by the I/O client", "tier")
	c.evictVec = reg.CounterVec("hfetch_tier_evictions_total", "segments evicted from the tier", "tier")
	c.moveHist = reg.HistVec("hfetch_tier_move_nanos", "data-movement latency into the tier in nanoseconds", "tier")
	reg.CounterFunc("hfetch_fetches_total", "segment fetches from the PFS", c.fetches.Load)
	reg.CounterFunc("hfetch_transfers_total", "tier-to-tier segment transfers", c.transfers.Load)
	reg.CounterFunc("hfetch_moved_bytes_total", "total bytes moved by the I/O client", c.bytes.Load)
}

// Fetch loads segment id from the PFS into dst. size > 0 overrides the
// payload length (clipped segments); size <= 0 reads a full grain.
func (c *Client) Fetch(id seg.ID, size int64, dst *tiers.Store) error {
	var start time.Time
	if c.tele != nil {
		start = time.Now()
	}
	r := c.seg.RangeOf(id, 0)
	if size > 0 && size < r.Len {
		r.Len = size
	}
	buf := make([]byte, r.Len)
	n, _, err := c.fs.ReadAt(id.File, r.Off, buf)
	if err != nil {
		return fmt.Errorf("ioclient: fetch %v: %w", id, err)
	}
	if n == 0 {
		return fmt.Errorf("ioclient: fetch %v: empty segment", id)
	}
	if err := dst.Put(id, buf[:n]); err != nil {
		return fmt.Errorf("ioclient: fetch %v into %s: %w", id, dst.Name(), err)
	}
	c.fetches.Add(1)
	c.bytes.Add(int64(n))
	if c.tele != nil {
		d := time.Since(start)
		c.bytesIn.With(dst.Name()).Add(int64(n))
		c.moveHist.With(dst.Name()).Observe(int64(d))
		c.tele.Span(telemetry.StageFetch, id.File, id.Index, dst.Name(), start, d)
	}
	return nil
}

// Transfer moves a resident segment from src to dst (promotion or
// demotion). On a destination failure the payload is restored to src so
// no data is lost mid-move.
func (c *Client) Transfer(id seg.ID, src, dst *tiers.Store) error {
	var start time.Time
	if c.tele != nil {
		start = time.Now()
	}
	payload, err := src.Take(id)
	if err != nil {
		return fmt.Errorf("ioclient: transfer %v from %s: %w", id, src.Name(), err)
	}
	if err := dst.Put(id, payload); err != nil {
		if rerr := src.Put(id, payload); rerr != nil {
			return fmt.Errorf("ioclient: transfer %v lost (dst %s: %v; restore %s: %w)",
				id, dst.Name(), err, src.Name(), rerr)
		}
		return fmt.Errorf("ioclient: transfer %v to %s: %w", id, dst.Name(), err)
	}
	c.transfers.Add(1)
	c.bytes.Add(int64(len(payload)))
	if c.tele != nil {
		d := time.Since(start)
		c.bytesOut.With(src.Name()).Add(int64(len(payload)))
		c.bytesIn.With(dst.Name()).Add(int64(len(payload)))
		c.moveHist.With(dst.Name()).Observe(int64(d))
		c.tele.Span(telemetry.StageFetch, id.File, id.Index, dst.Name(), start, d)
	}
	return nil
}

// Evict drops a resident segment from src. The PFS remains the origin,
// so no write-back is needed (WORM data).
func (c *Client) Evict(id seg.ID, src *tiers.Store) error {
	if !src.Delete(id) {
		return tiers.ErrNotFound
	}
	c.evictions.Add(1)
	c.evictVec.With(src.Name()).Inc()
	return nil
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() Stats {
	return Stats{
		Fetches:    c.fetches.Load(),
		Transfers:  c.transfers.Load(),
		Evictions:  c.evictions.Load(),
		BytesMoved: c.bytes.Load(),
	}
}
