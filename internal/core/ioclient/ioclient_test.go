package ioclient

import (
	"bytes"
	"errors"
	"testing"

	"hfetch/internal/core/seg"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

func setup(t *testing.T) (*pfs.FS, *Client, *tiers.Store, *tiers.Store) {
	t.Helper()
	fs := pfs.New(nil)
	fs.Create("f", 1000)
	segr := seg.NewSegmenter(100)
	c := New(fs, segr)
	ram := tiers.NewStore("ram", 500, nil)
	nvme := tiers.NewStore("nvme", 500, nil)
	return fs, c, ram, nvme
}

func TestFetchLoadsCorrectBytes(t *testing.T) {
	fs, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 2}
	if err := c.Fetch(id, 0, ram); err != nil {
		t.Fatal(err)
	}
	got, err := ram.Get(id)
	if err != nil || len(got) != 100 {
		t.Fatalf("Get = %d bytes %v", len(got), err)
	}
	want := make([]byte, 100)
	fs.ReadAt("f", 200, want)
	if !bytes.Equal(got, want) {
		t.Fatal("fetched payload differs from PFS content")
	}
}

func TestFetchClippedSize(t *testing.T) {
	_, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 9} // bytes 900..1000
	if err := c.Fetch(id, 50, ram); err != nil {
		t.Fatal(err)
	}
	if got := ram.SizeOf(id); got != 50 {
		t.Fatalf("clipped fetch size = %d, want 50", got)
	}
}

func TestFetchMissingFile(t *testing.T) {
	_, c, ram, _ := setup(t)
	if err := c.Fetch(seg.ID{File: "ghost", Index: 0}, 0, ram); err == nil {
		t.Fatal("fetch of missing file must fail")
	}
}

func TestFetchBeyondEOF(t *testing.T) {
	_, c, ram, _ := setup(t)
	if err := c.Fetch(seg.ID{File: "f", Index: 100}, 0, ram); err == nil {
		t.Fatal("fetch beyond EOF must fail")
	}
}

func TestFetchIntoFullTier(t *testing.T) {
	_, c, _, _ := setup(t)
	tiny := tiers.NewStore("tiny", 10, nil)
	if err := c.Fetch(seg.ID{File: "f", Index: 0}, 0, tiny); err == nil {
		t.Fatal("fetch into a full tier must fail")
	}
}

func TestTransferMovesPayload(t *testing.T) {
	_, c, ram, nvme := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	orig, _ := ram.Get(id)
	if err := c.Transfer(id, ram, nvme); err != nil {
		t.Fatal(err)
	}
	if ram.Has(id) {
		t.Fatal("exclusive cache: source must not retain the segment")
	}
	got, err := nvme.Get(id)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatal("transferred payload corrupted")
	}
}

func TestTransferMissingSegment(t *testing.T) {
	_, c, ram, nvme := setup(t)
	err := c.Transfer(seg.ID{File: "f", Index: 0}, ram, nvme)
	if err == nil {
		t.Fatal("transfer of non-resident segment must fail")
	}
}

func TestTransferRestoresOnDestFailure(t *testing.T) {
	_, c, ram, _ := setup(t)
	tiny := tiers.NewStore("tiny", 10, nil)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	if err := c.Transfer(id, ram, tiny); err == nil {
		t.Fatal("transfer into a full tier must fail")
	}
	if !ram.Has(id) {
		t.Fatal("payload must be restored to the source on failure")
	}
}

func TestEvict(t *testing.T) {
	_, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	if err := c.Evict(id, ram); err != nil {
		t.Fatal(err)
	}
	if ram.Has(id) {
		t.Fatal("evicted segment must be gone")
	}
	if err := c.Evict(id, ram); !errors.Is(err, tiers.ErrNotFound) {
		t.Fatalf("double evict = %v, want ErrNotFound", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, c, ram, nvme := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	c.Transfer(id, ram, nvme)
	c.Evict(id, nvme)
	st := c.Stats()
	if st.Fetches != 1 || st.Transfers != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesMoved != 200 { // 100 fetched + 100 transferred
		t.Fatalf("bytes = %d, want 200", st.BytesMoved)
	}
}
