package ioclient

import (
	"bytes"
	"errors"
	"testing"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

func setup(t *testing.T) (*pfs.FS, *Client, *tiers.Store, *tiers.Store) {
	t.Helper()
	fs := pfs.New(nil)
	fs.Create("f", 1000)
	segr := seg.NewSegmenter(100)
	c := New(fs, segr)
	ram := tiers.NewStore("ram", 500, nil)
	nvme := tiers.NewStore("nvme", 500, nil)
	return fs, c, ram, nvme
}

func TestFetchLoadsCorrectBytes(t *testing.T) {
	fs, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 2}
	if err := c.Fetch(id, 0, ram); err != nil {
		t.Fatal(err)
	}
	got, err := ram.Get(id)
	if err != nil || len(got) != 100 {
		t.Fatalf("Get = %d bytes %v", len(got), err)
	}
	want := make([]byte, 100)
	fs.ReadAt("f", 200, want)
	if !bytes.Equal(got, want) {
		t.Fatal("fetched payload differs from PFS content")
	}
}

func TestFetchClippedSize(t *testing.T) {
	_, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 9} // bytes 900..1000
	if err := c.Fetch(id, 50, ram); err != nil {
		t.Fatal(err)
	}
	if got := ram.SizeOf(id); got != 50 {
		t.Fatalf("clipped fetch size = %d, want 50", got)
	}
}

func TestFetchMissingFile(t *testing.T) {
	_, c, ram, _ := setup(t)
	if err := c.Fetch(seg.ID{File: "ghost", Index: 0}, 0, ram); err == nil {
		t.Fatal("fetch of missing file must fail")
	}
}

func TestFetchBeyondEOF(t *testing.T) {
	_, c, ram, _ := setup(t)
	if err := c.Fetch(seg.ID{File: "f", Index: 100}, 0, ram); err == nil {
		t.Fatal("fetch beyond EOF must fail")
	}
}

func TestFetchIntoFullTier(t *testing.T) {
	_, c, _, _ := setup(t)
	tiny := tiers.NewStore("tiny", 10, nil)
	if err := c.Fetch(seg.ID{File: "f", Index: 0}, 0, tiny); err == nil {
		t.Fatal("fetch into a full tier must fail")
	}
}

func TestTransferMovesPayload(t *testing.T) {
	_, c, ram, nvme := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	orig, _ := ram.Get(id)
	if err := c.Transfer(id, ram, nvme); err != nil {
		t.Fatal(err)
	}
	if ram.Has(id) {
		t.Fatal("exclusive cache: source must not retain the segment")
	}
	got, err := nvme.Get(id)
	if err != nil || !bytes.Equal(got, orig) {
		t.Fatal("transferred payload corrupted")
	}
}

func TestTransferMissingSegment(t *testing.T) {
	_, c, ram, nvme := setup(t)
	err := c.Transfer(seg.ID{File: "f", Index: 0}, ram, nvme)
	if err == nil {
		t.Fatal("transfer of non-resident segment must fail")
	}
}

func TestTransferRestoresOnDestFailure(t *testing.T) {
	_, c, ram, _ := setup(t)
	tiny := tiers.NewStore("tiny", 10, nil)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	if err := c.Transfer(id, ram, tiny); err == nil {
		t.Fatal("transfer into a full tier must fail")
	}
	if !ram.Has(id) {
		t.Fatal("payload must be restored to the source on failure")
	}
}

func TestEvict(t *testing.T) {
	_, c, ram, _ := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	if err := c.Evict(id, ram); err != nil {
		t.Fatal(err)
	}
	if ram.Has(id) {
		t.Fatal("evicted segment must be gone")
	}
	if err := c.Evict(id, ram); !errors.Is(err, tiers.ErrNotFound) {
		t.Fatalf("double evict = %v, want ErrNotFound", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	_, c, ram, nvme := setup(t)
	id := seg.ID{File: "f", Index: 0}
	c.Fetch(id, 0, ram)
	c.Transfer(id, ram, nvme)
	c.Evict(id, nvme)
	st := c.Stats()
	if st.Fetches != 1 || st.Transfers != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesMoved != 200 { // 100 fetched + 100 transferred
		t.Fatalf("bytes = %d, want 200", st.BytesMoved)
	}
}

// fetchManySetup builds a PFS on a counting device so tests can assert
// how many origin reads a coalesced fetch issued.
func fetchManySetup(t *testing.T, capacity int64) (*pfs.FS, *Client, *tiers.Store, *devsim.Device) {
	t.Helper()
	dev := devsim.New(devsim.Profile{Name: "pfs", BytesPerSec: 1 << 40, Channels: 1}, 1)
	fs := pfs.New(dev)
	fs.Create("f", 1000)
	c := New(fs, seg.NewSegmenter(100))
	ram := tiers.NewStore("ram", capacity, nil)
	return fs, c, ram, dev
}

func TestFetchManyCoalescesRunIntoOneRead(t *testing.T) {
	fs, c, ram, dev := fetchManySetup(t, 1000)
	errs, coalesced := c.FetchMany("f", 2, []int64{100, 100, 100, 100}, ram)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
	}
	if coalesced != 4 {
		t.Fatalf("coalesced = %d, want 4", coalesced)
	}
	if ops, _, _ := dev.Stats(); ops != 1 {
		t.Fatalf("origin reads = %d, want 1 for a contiguous full-grain run", ops)
	}
	// Every segment's payload must match what a direct read produces.
	for i := int64(2); i < 6; i++ {
		got, err := ram.Get(seg.ID{File: "f", Index: i})
		if err != nil || len(got) != 100 {
			t.Fatalf("segment %d: %d bytes, %v", i, len(got), err)
		}
		for o, b := range got {
			want, _ := fs.ExpectedAt("f", i*100+int64(o))
			if b != want {
				t.Fatalf("segment %d byte %d = %#x, want %#x", i, o, b, want)
			}
		}
	}
	if st := c.Stats(); st.Fetches != 4 || st.BytesMoved != 400 {
		t.Fatalf("stats = %+v, want 4 fetches / 400 bytes", st)
	}
}

func TestFetchManyShortSegmentBreaksRun(t *testing.T) {
	// A short (clipped) segment in the middle ends the contiguous span:
	// [full, short, full] must take one coalesced read for the first
	// pair and one single fetch for the trailing segment.
	_, c, ram, dev := fetchManySetup(t, 1000)
	errs, coalesced := c.FetchMany("f", 0, []int64{100, 40, 100}, ram)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
	}
	if coalesced != 2 {
		t.Fatalf("coalesced = %d, want 2 (only the leading pair shares a read)", coalesced)
	}
	if ops, _, _ := dev.Stats(); ops != 2 {
		t.Fatalf("origin reads = %d, want 2", ops)
	}
	if got := ram.SizeOf(seg.ID{File: "f", Index: 1}); got != 40 {
		t.Fatalf("short segment stored %d bytes, want 40", got)
	}
}

func TestFetchManyReportsPerSegmentErrors(t *testing.T) {
	// Destination holds one segment: the run's first put succeeds, the
	// rest fail individually without poisoning the whole batch.
	_, c, ram, _ := fetchManySetup(t, 150)
	errs, coalesced := c.FetchMany("f", 0, []int64{100, 100, 100}, ram)
	if errs[0] != nil {
		t.Fatalf("first segment: %v", errs[0])
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(errs[i], tiers.ErrNoSpace) {
			t.Fatalf("segment %d error = %v, want ErrNoSpace", i, errs[i])
		}
	}
	if coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1 (only the stored segment counts)", coalesced)
	}
	if !ram.Has(seg.ID{File: "f", Index: 0}) {
		t.Fatal("first segment must be resident")
	}
}

func TestFetchManyMissingFile(t *testing.T) {
	_, c, ram, _ := fetchManySetup(t, 1000)
	errs, _ := c.FetchMany("ghost", 0, []int64{100, 100}, ram)
	for i, err := range errs {
		if err == nil {
			t.Fatalf("segment %d: expected an error for a missing file", i)
		}
	}
}
