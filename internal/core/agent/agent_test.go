package agent

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"hfetch/internal/core/placement"
	"hfetch/internal/core/server"
	"hfetch/internal/tiers"

	"hfetch/internal/pfs"
)

// rig builds a single-node in-process HFetch deployment with free
// devices and a fully reactive engine.
type rig struct {
	fs  *pfs.FS
	srv *server.Server
}

func newRig(t *testing.T, ramCap, nvmeCap int64) *rig {
	t.Helper()
	fs := pfs.New(nil)
	ram := tiers.NewStore("ram", ramCap, nil)
	nvme := tiers.NewStore("nvme", nvmeCap, nil)
	hier := tiers.NewHierarchy(ram, nvme)
	stats, maps := server.NewLocalMaps("n0")
	srv, err := server.New(server.Config{
		SegmentSize: 1024,
		Engine:      placement.Config{UpdateThreshold: placement.High},
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	return &rig{fs: fs, srv: srv}
}

func TestOpenMissingFileFails(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	a := New(r.srv, r.fs, nil)
	if _, err := a.Open("nope"); err == nil {
		t.Fatal("opening a missing file must fail")
	}
}

func TestFirstReadMissesSecondReadHits(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 64*1024)
	a := New(r.srv, r.fs, nil)
	f, err := a.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Hits() != 0 {
		t.Fatal("cold read must miss")
	}
	r.srv.Flush() // let the engine place the just-read segments
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Hits() == 0 {
		t.Fatalf("warm read must hit; stats: %s", a.Stats())
	}
	f.Close()
}

func TestReadDataIntegrityAcrossTiers(t *testing.T) {
	r := newRig(t, 8*1024, 16*1024) // small tiers force mixed hit/miss reads
	const size = 64 * 1024
	r.fs.Create("f", size)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()

	want := make([]byte, size)
	r.fs.ReadAt("f", 0, want)

	got := make([]byte, size)
	for pass := 0; pass < 3; pass++ {
		for off := 0; off < size; off += 4096 {
			if _, err := f.ReadAt(got[off:off+4096], int64(off)); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("pass %d: data served from tiers differs from PFS content", pass)
		}
		r.srv.Flush()
	}
	if a.Stats().Hits() == 0 {
		t.Fatal("later passes should have tier hits")
	}
}

func TestReadAtEOFSemantics(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 1000)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()
	buf := make([]byte, 400)
	n, err := f.ReadAt(buf, 800) // short read
	if err != nil || n != 200 {
		t.Fatalf("short read = %d %v, want 200", n, err)
	}
	n, err = f.ReadAt(buf, 2000) // beyond EOF
	if err != nil || n != 0 {
		t.Fatalf("read past EOF = %d %v, want 0", n, err)
	}
	if _, err := f.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset must error")
	}
}

func TestReadSpanningSegmentsAssembles(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	const size = 16 * 1024
	r.fs.Create("f", size)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()
	// Warm the cache.
	tmp := make([]byte, size)
	f.ReadAt(tmp, 0)
	r.srv.Flush()
	// Read a range crossing three segment boundaries, half-warm.
	want := make([]byte, 3000)
	r.fs.ReadAt("f", 500, want)
	got := make([]byte, 3000)
	n, err := f.ReadAt(got, 500)
	if err != nil || n != 3000 {
		t.Fatalf("spanning read = %d %v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("spanning read assembled wrong data")
	}
}

func TestCloseEndsEpochAndBlocksIO(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 1000)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	if !r.srv.Registry().Watched("f") {
		t.Fatal("open must install a watch")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if r.srv.Registry().Watched("f") {
		t.Fatal("last close must remove the watch")
	}
	if _, err := f.ReadAt(make([]byte, 10), 0); err == nil {
		t.Fatal("read after close must fail")
	}
	if err := f.WriteAt(0, 10); err == nil {
		t.Fatal("write after close must fail")
	}
	if err := f.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
}

func TestWriteInvalidatesPrefetchedData(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	const size = 8 * 1024
	r.fs.Create("f", size)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()
	buf := make([]byte, size)
	f.ReadAt(buf, 0)
	r.srv.Flush()
	if r.srv.Hierarchy().TotalUsed() == 0 {
		t.Fatal("segments should be prefetched before the write")
	}
	if err := f.WriteAt(0, 100); err != nil {
		t.Fatal(err)
	}
	r.srv.Flush()
	if got := r.srv.Hierarchy().TotalUsed(); got != 0 {
		t.Fatalf("prefetched data must be invalidated after a write; %d bytes resident", got)
	}
	// Post-invalidation reads must see the new version.
	want := make([]byte, 1024)
	r.fs.ReadAt("f", 0, want)
	got := make([]byte, 1024)
	f.ReadAt(got, 0)
	if !bytes.Equal(got, want) {
		t.Fatal("stale data served after invalidation")
	}
}

func TestWriteExtendsSize(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 1000)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()
	if err := f.WriteAt(1500, 500); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	n, err := f.ReadAt(buf, 1900)
	if err != nil || n != 100 {
		t.Fatalf("read in extended region = %d %v", n, err)
	}
}

func TestSharedEpochAcrossAgents(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 4096)
	a1 := New(r.srv, r.fs, nil)
	a2 := New(r.srv, r.fs, nil)
	f1, _ := a1.Open("f")
	f2, _ := a2.Open("f")
	f1.Close()
	if !r.srv.Registry().Watched("f") {
		t.Fatal("watch must survive while any reader is open")
	}
	f2.Close()
	if r.srv.Registry().Watched("f") {
		t.Fatal("watch must be removed by the last closer")
	}
}

func TestCrossAgentPrefetchSharing(t *testing.T) {
	// The data-centric property: agent 1's accesses warm the cache for
	// agent 2, which never read the file before.
	r := newRig(t, 1<<20, 1<<20)
	const size = 32 * 1024
	r.fs.Create("f", size)
	a1 := New(r.srv, r.fs, nil)
	f1, _ := a1.Open("f")
	buf := make([]byte, size)
	f1.ReadAt(buf, 0)
	r.srv.Flush()

	a2 := New(r.srv, r.fs, nil)
	f2, _ := a2.Open("f")
	defer f2.Close()
	f2.ReadAt(buf, 0)
	if a2.Stats().Hits() == 0 {
		t.Fatal("second application must benefit from the first's accesses")
	}
	f1.Close()
}

func TestConcurrentReaders(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	const size = 64 * 1024
	r.fs.Create("f", size)
	want := make([]byte, size)
	r.fs.ReadAt("f", 0, want)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := New(r.srv, r.fs, nil)
			f, err := a.Open("f")
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			got := make([]byte, 4096)
			for off := 0; off < size; off += 4096 {
				if _, err := f.ReadAt(got, int64(off)); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, want[off:off+4096]) {
					errs <- bytes.ErrTooLarge // sentinel for mismatch
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSequentialReadAndSeek(t *testing.T) {
	r := newRig(t, 1<<20, 1<<20)
	r.fs.Create("f", 1000)
	a := New(r.srv, r.fs, nil)
	f, _ := a.Open("f")
	defer f.Close()

	want := make([]byte, 1000)
	r.fs.ReadAt("f", 0, want)

	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("ReadAll = %d bytes, %v", len(got), err)
	}
	// Rewind and re-read a slice.
	if _, err := f.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 50)
	n, err := f.Read(buf)
	if err != nil || n != 50 || !bytes.Equal(buf, want[100:150]) {
		t.Fatalf("post-seek read = %d %v", n, err)
	}
	// SeekCurrent and SeekEnd.
	if pos, _ := f.Seek(-50, io.SeekCurrent); pos != 100 {
		t.Fatalf("SeekCurrent pos = %d", pos)
	}
	if pos, _ := f.Seek(-100, io.SeekEnd); pos != 900 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if _, err := f.Seek(-5000, io.SeekCurrent); err == nil {
		t.Fatal("negative position must error")
	}
	if _, err := f.Seek(0, 99); err == nil {
		t.Fatal("bad whence must error")
	}
}
