// Package agent implements the HFetch client agent each application
// links against. The paper's agent is a PMPI/POSIX/HDF5 interceptor; in
// this reproduction applications use the agent's Open/ReadAt/Close API
// directly, which exercises the same protocol: open begins a prefetching
// epoch, every read consults the segment mappings and is redirected to
// the tier holding the prefetched segment (falling back to the PFS on a
// miss), and every access emits an enriched event to the server.
package agent

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/events"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
	"hfetch/internal/telemetry"
)

// ServerAPI is what an agent needs from its HFetch server (implemented
// by server.Server locally and by the remote client in cmd/hfetchd
// deployments).
type ServerAPI interface {
	StartEpoch(file string, size int64)
	EndEpoch(file string)
	// ReadPrefetched serves the byte range from whichever tier (local,
	// shared, or remote) holds the segment; ok is false on a miss.
	ReadPrefetched(id seg.ID, off int64, p []byte) (n int, tier string, ok bool)
	PostEvent(ev events.Event)
	Segmenter() *seg.Segmenter
}

// Agent connects one application process to its node's HFetch server.
type Agent struct {
	api   ServerAPI
	fs    *pfs.FS
	stats *metrics.IOStats

	// Telemetry handles; nil when disabled (their methods no-op).
	tele    *telemetry.Registry
	pfsHist *telemetry.Histogram
}

// New creates an agent. stats may be shared across agents of one
// emulated application; nil allocates a private collector.
func New(api ServerAPI, fs *pfs.FS, stats *metrics.IOStats) *Agent {
	if stats == nil {
		stats = metrics.NewIOStats()
	}
	return &Agent{api: api, fs: fs, stats: stats}
}

// SetTelemetry attaches a registry: every ReadAt records a client_read
// pipeline span and PFS-fallback reads record their latency under
// hfetch_tier_read_nanos{tier="pfs"}. Call before traffic; nil is
// ignored.
func (a *Agent) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	a.tele = reg
	a.pfsHist = reg.Histogram("hfetch_tier_read_nanos",
		"prefetched-read latency by serving tier in nanoseconds", "tier", "pfs")
}

// Stats returns the agent's I/O statistics collector.
func (a *Agent) Stats() *metrics.IOStats { return a.stats }

// File is an open handle participating in a prefetching epoch.
type File struct {
	a    *Agent
	name string
	size int64

	mu     sync.Mutex
	pos    int64 // sequential cursor for Read/Seek
	closed bool
}

// Open opens file for reading and begins (or joins) its prefetching
// epoch. Mirrors fopen with read flags; opening a missing file fails.
func (a *Agent) Open(name string) (*File, error) {
	fi, err := a.fs.Stat(name)
	if err != nil {
		return nil, fmt.Errorf("agent: open: %w", err)
	}
	a.api.StartEpoch(name, fi.Size)
	return &File{a: a, name: name, size: fi.Size}, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Size returns the file size at open time.
func (f *File) Size() int64 { return f.size }

// ReadAt reads len(p) bytes at offset off. Each covered segment is
// served from the tier holding it (a prefetch hit) or from the PFS (a
// miss); the access is reported to the server as an enriched read event.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return 0, fmt.Errorf("agent: read on closed file %q", f.name)
	}
	if off < 0 {
		return 0, fmt.Errorf("agent: negative offset %d", off)
	}
	want := int64(len(p))
	if off >= f.size {
		return 0, nil
	}
	if off+want > f.size {
		want = f.size - off
	}

	start := time.Now()
	segr := f.a.api.Segmenter()
	n := int64(0)
	for n < want {
		cur := off + n
		id := seg.ID{File: f.name, Index: segr.IndexOf(cur)}
		segOff := cur - id.Index*segr.Size()
		segEnd := segr.RangeOf(id, f.size).End()
		chunk := segEnd - cur
		if chunk > want-n {
			chunk = want - n
		}
		if chunk <= 0 {
			break
		}
		dst := p[n : n+chunk]
		if got, tier, ok := f.a.api.ReadPrefetched(id, segOff, dst); ok && int64(got) == chunk {
			f.a.stats.Hit(tier, chunk)
			n += chunk
			continue
		}
		// Miss, or stale mapping (segment demoted or evicted mid-read).
		var pfsStart time.Time
		if f.a.tele != nil {
			pfsStart = time.Now()
		}
		got, _, err := f.a.fs.ReadAt(f.name, cur, dst)
		if err != nil {
			return int(n), fmt.Errorf("agent: pfs read: %w", err)
		}
		if f.a.tele != nil {
			f.a.pfsHist.Observe(int64(time.Since(pfsStart)))
		}
		f.a.stats.Miss(int64(got))
		n += int64(got)
		if int64(got) < chunk {
			break
		}
	}
	elapsed := time.Since(start)
	f.a.stats.ObserveRead(elapsed)
	if f.a.tele.TimeSample() {
		f.a.tele.Span(telemetry.StageClientRead, f.name, segr.IndexOf(off), "", start, elapsed)
	}

	f.a.api.PostEvent(events.Event{
		Op: events.OpRead, File: f.name, Offset: off, Length: n, Time: start,
	})
	return int(n), nil
}

// WriteAt emulates an update to the file: the PFS version is bumped and
// a write event is emitted, which invalidates any prefetched segments
// (consistency between readers and external writers).
func (f *File) WriteAt(off, ln int64) error {
	f.mu.Lock()
	closed := f.closed
	f.mu.Unlock()
	if closed {
		return fmt.Errorf("agent: write on closed file %q", f.name)
	}
	if _, err := f.a.fs.Write(f.name, off, ln); err != nil {
		return err
	}
	if end := off + ln; end > f.size {
		f.mu.Lock()
		f.size = end
		f.mu.Unlock()
	}
	f.a.api.PostEvent(events.Event{
		Op: events.OpWrite, File: f.name, Offset: off, Length: ln, Time: time.Now(),
	})
	return nil
}

// Close ends this reader's participation in the epoch.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.a.api.EndEpoch(f.name)
	return nil
}

// Read implements io.Reader: a sequential cursor over the file.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	n, err := f.ReadAt(p, pos)
	if err != nil {
		return n, err
	}
	f.mu.Lock()
	f.pos += int64(n)
	f.mu.Unlock()
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Seek implements io.Seeker for the sequential cursor.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.pos
	case io.SeekEnd:
		base = f.size
	default:
		return 0, fmt.Errorf("agent: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, fmt.Errorf("agent: negative position %d", np)
	}
	f.pos = np
	return np, nil
}

// Interface checks: File is usable anywhere the standard library expects
// a positional or sequential reader.
var (
	_ io.ReaderAt   = (*File)(nil)
	_ io.ReadSeeker = (*File)(nil)
)
