package pfs

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"hfetch/internal/devsim"
)

func TestCreateStatRemove(t *testing.T) {
	fs := New(nil)
	if err := fs.Create("a", 1000); err != nil {
		t.Fatal(err)
	}
	fi, err := fs.Stat("a")
	if err != nil || fi.Size != 1000 || fi.Version != 0 {
		t.Fatalf("Stat = %+v %v", fi, err)
	}
	fs.Remove("a")
	if _, err := fs.Stat("a"); err == nil {
		t.Fatal("Stat after Remove must fail")
	}
}

func TestCreateNegativeSize(t *testing.T) {
	fs := New(nil)
	if err := fs.Create("a", -1); err == nil {
		t.Fatal("negative size must error")
	}
}

func TestReadDeterministic(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 4096)
	b1 := make([]byte, 512)
	b2 := make([]byte, 512)
	if _, _, err := fs.ReadAt("a", 100, b1); err != nil {
		t.Fatal(err)
	}
	fs.ReadAt("a", 100, b2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("re-reads of same region must be identical")
	}
}

func TestReadOffsetIndependence(t *testing.T) {
	// Reading [0,200) then slicing [100,200) must equal reading at 100.
	fs := New(nil)
	fs.Create("a", 4096)
	whole := make([]byte, 200)
	part := make([]byte, 100)
	fs.ReadAt("a", 0, whole)
	fs.ReadAt("a", 100, part)
	if !bytes.Equal(whole[100:], part) {
		t.Fatal("content must be a pure function of absolute offset")
	}
}

func TestDifferentFilesDiffer(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 1024)
	fs.Create("b", 1024)
	ba := make([]byte, 256)
	bb := make([]byte, 256)
	fs.ReadAt("a", 0, ba)
	fs.ReadAt("b", 0, bb)
	if bytes.Equal(ba, bb) {
		t.Fatal("different files should have different contents")
	}
}

func TestShortReadAtEOF(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 100)
	p := make([]byte, 64)
	n, _, err := fs.ReadAt("a", 80, p)
	if err != nil || n != 20 {
		t.Fatalf("ReadAt near EOF = %d %v, want 20", n, err)
	}
	n, _, _ = fs.ReadAt("a", 200, p)
	if n != 0 {
		t.Fatalf("ReadAt past EOF = %d, want 0", n)
	}
}

func TestReadErrors(t *testing.T) {
	fs := New(nil)
	if _, _, err := fs.ReadAt("nope", 0, make([]byte, 1)); err == nil {
		t.Fatal("read of missing file must error")
	}
	fs.Create("a", 10)
	if _, _, err := fs.ReadAt("a", -1, make([]byte, 1)); err == nil {
		t.Fatal("negative offset must error")
	}
}

func TestWriteBumpsVersionAndChangesContent(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 1024)
	before := make([]byte, 128)
	after := make([]byte, 128)
	fs.ReadAt("a", 0, before)
	if _, err := fs.Write("a", 0, 10); err != nil {
		t.Fatal(err)
	}
	fi, _ := fs.Stat("a")
	if fi.Version != 1 {
		t.Fatalf("version = %d, want 1", fi.Version)
	}
	fs.ReadAt("a", 0, after)
	if bytes.Equal(before, after) {
		t.Fatal("content must change after a write (version mix)")
	}
}

func TestWriteExtendsFile(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 100)
	fs.Write("a", 150, 50)
	fi, _ := fs.Stat("a")
	if fi.Size != 200 {
		t.Fatalf("size after extending write = %d, want 200", fi.Size)
	}
}

func TestWriteMissingFile(t *testing.T) {
	fs := New(nil)
	if _, err := fs.Write("nope", 0, 1); err == nil {
		t.Fatal("write of missing file must error")
	}
}

func TestExpectedAtMatchesRead(t *testing.T) {
	fs := New(nil)
	fs.Create("a", 512)
	p := make([]byte, 512)
	fs.ReadAt("a", 0, p)
	for _, off := range []int64{0, 1, 7, 8, 63, 511} {
		want, err := fs.ExpectedAt("a", off)
		if err != nil {
			t.Fatal(err)
		}
		if p[off] != want {
			t.Fatalf("ExpectedAt(%d) = %d, read %d", off, want, p[off])
		}
	}
}

func TestListNames(t *testing.T) {
	fs := New(nil)
	fs.Create("x", 1)
	fs.Create("y", 1)
	names := fs.List()
	if len(names) != 2 {
		t.Fatalf("List = %v, want 2 names", names)
	}
}

func TestDeviceCharged(t *testing.T) {
	dev := devsim.New(devsim.Profile{Name: "pfs", Latency: 5 * time.Millisecond}, 1)
	fs := New(dev)
	fs.Create("a", 1024)
	start := time.Now()
	_, cost, err := fs.ReadAt("a", 0, make([]byte, 100))
	if err != nil {
		t.Fatal(err)
	}
	if cost < 5*time.Millisecond {
		t.Fatalf("cost = %v, want >= 5ms", cost)
	}
	if el := time.Since(start); el < 4*time.Millisecond {
		t.Fatalf("read returned after %v, device not charged", el)
	}
	ops, _, _ := dev.Stats()
	if ops != 1 {
		t.Fatalf("device ops = %d, want 1", ops)
	}
}

// Property: any read equals the byte-by-byte ExpectedAt oracle.
func TestReadMatchesOracle(t *testing.T) {
	fs := New(nil)
	fs.Create("f", 2048)
	f := func(offRaw, lnRaw uint16) bool {
		off := int64(offRaw % 2048)
		ln := int(lnRaw%128) + 1
		p := make([]byte, ln)
		n, _, err := fs.ReadAt("f", off, p)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			want, _ := fs.ExpectedAt("f", off+int64(i))
			if p[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
