// Package pfs emulates the remote parallel file system that is the home
// of all data in the paper's deployment (an OrangeFS installation on 24
// storage nodes). Files are synthetic: their contents are generated
// deterministically from a per-file seed and version, so any byte read
// through any tier of the hierarchy can be verified against the expected
// value — a data-integrity check real traces cannot give us.
//
// Every read and write is charged against a devsim.Device whose channel
// count stands in for the storage servers; concurrent clients therefore
// contend for PFS bandwidth exactly as the paper's ranks contend for
// OrangeFS.
package pfs

import (
	"fmt"
	"sync"
	"time"

	"hfetch/internal/devsim"
)

// FileInfo describes one file.
type FileInfo struct {
	Name    string
	Size    int64
	Version int64
}

type file struct {
	size    int64
	seed    uint64
	version int64
}

// FS is an emulated parallel file system. Safe for concurrent use.
type FS struct {
	dev *devsim.Device

	mu    sync.RWMutex
	files map[string]*file
}

// New creates a file system whose accesses are charged to dev. A nil dev
// makes all accesses free (useful in unit tests).
func New(dev *devsim.Device) *FS {
	return &FS{dev: dev, files: make(map[string]*file)}
}

// Device returns the underlying device model (may be nil).
func (fs *FS) Device() *devsim.Device { return fs.dev }

// Create registers a file of the given size. Creating an existing file
// resets it (size and version).
func (fs *FS) Create(name string, size int64) error {
	if size < 0 {
		return fmt.Errorf("pfs: negative size %d for %q", size, name)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &file{size: size, seed: seedOf(name)}
	return nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, name)
}

// Stat returns file metadata.
func (fs *FS) Stat(name string) (FileInfo, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	f, ok := fs.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("pfs: no such file %q", name)
	}
	return FileInfo{Name: name, Size: f.size, Version: f.version}, nil
}

// List returns the names of all files (unordered).
func (fs *FS) List() []string {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	out := make([]string, 0, len(fs.files))
	for n := range fs.files {
		out = append(out, n)
	}
	return out
}

// ReadAt reads len(p) bytes from name at offset off, charging the device
// model, and returns the number of bytes read (short at EOF).
func (fs *FS) ReadAt(name string, off int64, p []byte) (int, time.Duration, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return 0, 0, fmt.Errorf("pfs: no such file %q", name)
	}
	if off < 0 {
		return 0, 0, fmt.Errorf("pfs: negative offset %d", off)
	}
	n := len(p)
	if off >= f.size {
		n = 0
	} else if off+int64(n) > f.size {
		n = int(f.size - off)
	}
	var cost time.Duration
	if fs.dev != nil {
		cost = fs.dev.Access(int64(n))
	}
	fill(p[:n], f.seed, f.version, off)
	return n, cost, nil
}

// Write emulates an update to [off, off+ln): it bumps the file's version
// and charges the device. Written data is not stored — contents are
// regenerated from (seed, version) — but the version bump changes every
// subsequently read byte, which is exactly what consistency tests need to
// detect stale prefetched data.
func (fs *FS) Write(name string, off, ln int64) (time.Duration, error) {
	fs.mu.Lock()
	f, ok := fs.files[name]
	if ok {
		f.version++
		if end := off + ln; end > f.size {
			f.size = end
		}
	}
	fs.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("pfs: no such file %q", name)
	}
	var cost time.Duration
	if fs.dev != nil {
		cost = fs.dev.Access(ln)
	}
	return cost, nil
}

// ExpectedAt returns the byte a correct read of file name at offset off
// must produce given the file's current version.
func (fs *FS) ExpectedAt(name string, off int64) (byte, error) {
	fs.mu.RLock()
	f, ok := fs.files[name]
	fs.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("pfs: no such file %q", name)
	}
	var b [1]byte
	fill(b[:], f.seed, f.version, off)
	return b[0], nil
}

// seedOf derives a stable seed from a file name (FNV-1a).
func seedOf(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// fill writes the deterministic content of [off, off+len(p)) into p.
// Content is a function of (seed, version, absolute offset) computed per
// 8-byte word with a splitmix64-style mix, so reads at arbitrary offsets
// are O(len) with no per-file state.
func fill(p []byte, seed uint64, version int64, off int64) {
	base := seed ^ (uint64(version) * 0x9e3779b97f4a7c15)
	for i := range p {
		abs := uint64(off + int64(i))
		word := mix(base + (abs>>3)*0xbf58476d1ce4e5b9)
		p[i] = byte(word >> ((abs & 7) * 8))
	}
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
