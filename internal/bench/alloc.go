package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"

	"hfetch"
	"hfetch/internal/tiers"
)

// runAlloc measures the allocation profile of the warm read path: after
// a priming pass has pulled the working set into the hierarchy, the same
// reads run again while the tiers copy ledger, the runtime allocator and
// the slab counters are sampled around the window. Two consumers are
// measured — direct pinned range views (the zero-copy serve path) and
// the HTTP gateway streaming through the same views — so a regression
// that reintroduces per-read payload copies or allocations shows up as
// numbers, not just as a lint finding.
func runAlloc(o Options) (AllocResult, error) {
	var res AllocResult
	var err error
	if res.Reads, err = runAllocReads(o); err != nil {
		return res, fmt.Errorf("reads: %w", err)
	}
	if res.Gateway, err = runAllocGateway(o); err != nil {
		return res, fmt.Errorf("gateway: %w", err)
	}
	return res, nil
}

// allocProbe snapshots the copy ledger, the zero-copy counter and the
// runtime allocator at the start of a measured window.
type allocProbe struct {
	zeroFn  func() int64
	copied  int64
	zero    int64
	mallocs uint64
}

func startProbe(zeroFn func() int64) allocProbe {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return allocProbe{
		zeroFn:  zeroFn,
		copied:  tiers.CopiedBytes(),
		zero:    zeroFn(),
		mallocs: ms.Mallocs,
	}
}

// fill writes the window's deltas into v.
func (p allocProbe) fill(v *AllocVariant, ops int64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	v.Ops = ops
	v.BytesCopied = tiers.CopiedBytes() - p.copied
	v.ZeroCopyBytes = p.zeroFn() - p.zero
	if ops > 0 {
		v.BytesCopiedPerRead = float64(v.BytesCopied) / float64(ops)
		v.AllocsPerOp = float64(ms.Mallocs-p.mallocs) / float64(ops)
	}
}

// slabRatioSince returns hits/gets of the process slab allocator since
// the snapshot (0 when nothing was requested in the window).
func slabRatioSince(before tiers.SlabStats) float64 {
	after := tiers.ReadSlabStats()
	gets := after.Gets - before.Gets
	if gets <= 0 {
		return 0
	}
	return float64(after.Hits-before.Hits) / float64(gets)
}

// runAllocReads primes a working set through ordinary client reads, then
// re-reads every segment through a pinned range view, consuming chunks
// by reference — the measured pass should copy nothing and allocate
// next to nothing.
func runAllocReads(o Options) (AllocVariant, error) {
	var v AllocVariant
	files, segs := 4, int64(16)
	if o.Short {
		files, segs = 2, 8
	}
	cfg := drainConfig(o.Shards, 1, 0)
	need := int64(files) * segs * benchSegSize
	for i := range cfg.Tiers {
		cfg.Tiers[i].Capacity = need << uint(i)
	}
	slabBefore := tiers.ReadSlabStats()
	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		return v, err
	}
	defer cluster.Stop()
	node := cluster.Node(0)
	srv := node.Server()

	fileSize := segs * benchSegSize
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("/bench/alloc-%02d.dat", i)
		if err := cluster.CreateFile(names[i], fileSize); err != nil {
			return v, err
		}
	}

	buf := tiers.SlabGet(benchSegSize)
	defer tiers.SlabPut(buf)
	cl := node.NewClient()
	for _, name := range names {
		f, err := cl.Open(name)
		if err != nil {
			return v, err
		}
		for s := int64(0); s < segs; s++ {
			if _, err := f.ReadAt(buf, s*benchSegSize); err != nil {
				f.Close()
				return v, fmt.Errorf("prime %s seg %d: %w", name, s, err)
			}
		}
		f.Close()
	}
	// Let placement land the primed segments before measuring.
	node.Flush()

	probe := startProbe(srv.ZeroCopyBytes)
	var ops, served int64
	var hits, misses int
	var sink byte
	for _, name := range names {
		for s := int64(0); s < segs; s++ {
			view := srv.OpenRangeView(name, fileSize, s*benchSegSize, benchSegSize)
			for {
				chunk, _, rerr := view.Next(buf)
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					view.Close()
					return v, fmt.Errorf("view %s seg %d: %w", name, s, rerr)
				}
				// Touch the chunk so serving by reference is not optimized
				// away; no copy, no retention past Close.
				sink ^= chunk[0]
				served += int64(len(chunk))
			}
			hits += view.Hits()
			misses += view.Misses()
			view.Close()
			ops++
		}
	}
	_ = sink
	probe.fill(&v, ops)
	v.BytesServed = served
	if hits+misses > 0 {
		v.HitRatio = float64(hits) / float64(hits+misses)
	}
	v.SlabHitRatio = slabRatioSince(slabBefore)
	return v, nil
}

// runAllocGateway drives the same warm-path measurement through the HTTP
// gateway: a sequential priming pass, a flush, then one ranged GET per
// segment while the window is sampled. The gateway streams from pinned
// views, so the measured pass's copy-ledger delta stays at zero even
// though every payload byte crosses the HTTP response.
func runAllocGateway(o Options) (AllocVariant, error) {
	var v AllocVariant
	segs := int64(16)
	if o.Short {
		segs = 8
	}
	need := segs * benchSegSize
	slabBefore := tiers.ReadSlabStats()
	cluster, err := hfetch.NewCluster(gatewayBenchConfig(o, false, need))
	if err != nil {
		return v, err
	}
	defer cluster.Stop()
	node := cluster.Node(0)
	const name = "bench/alloc-gw.dat"
	if err := cluster.CreateFile(name, need); err != nil {
		return v, err
	}
	ts := httptest.NewServer(node.GatewayHandler())
	defer ts.Close()
	client := &http.Client{}

	getSeg := func(s int64) (int64, error) {
		req, err := http.NewRequest("GET", ts.URL+"/files/"+name, nil)
		if err != nil {
			return 0, err
		}
		off := s * benchSegSize
		req.Header.Set("Range",
			"bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+benchSegSize-1, 10))
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		n, _ := io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusPartialContent {
			return n, fmt.Errorf("GET seg %d: status %d", s, resp.StatusCode)
		}
		return n, nil
	}

	for s := int64(0); s < segs; s++ {
		if _, err := getSeg(s); err != nil {
			return v, fmt.Errorf("prime: %w", err)
		}
	}
	node.Flush()

	srv := node.Server()
	ios := srv.IOStats()
	hitsBefore, missesBefore := ios.Hits(), ios.Misses()
	probe := startProbe(srv.ZeroCopyBytes)
	var ops, served int64
	for s := int64(0); s < segs; s++ {
		n, err := getSeg(s)
		if err != nil {
			return v, err
		}
		served += n
		ops++
	}
	probe.fill(&v, ops)
	v.BytesServed = served
	hits := ios.Hits() - hitsBefore
	misses := ios.Misses() - missesBefore
	if hits+misses > 0 {
		v.HitRatio = float64(hits) / float64(hits+misses)
	}
	v.SlabHitRatio = slabRatioSince(slabBefore)
	return v, nil
}
