package bench

import (
	"fmt"
	"sync"
	"time"

	"hfetch"
	"hfetch/internal/events"
	"hfetch/internal/telemetry"
)

// The movement scenario measures what the asynchronous mover buys: a
// hot-burst workload where placement passes and PFS fetches overlap. A
// rotating window of files goes hot each burst (posted as read events,
// which trigger decision passes), and readers walk the window while the
// resulting moves are still executing. The same schedule runs against
// the synchronous engine and the async mover; the headline number is the
// decision-pass p99 ratio — the sync engine holds its pass open through
// device time, the async engine returns at queue submission.

// movementFiles and movementBursts size the scenario; the hot window
// advances by movementStride files per burst so every burst both fetches
// cold files and demotes the previous window's.
const (
	movementWindow = 4
	movementStride = 2
)

func movementParams(short bool) (files, bursts int) {
	if short {
		return 8, 6
	}
	return 16, 12
}

// movementConfig models devices with real (if compressed) costs so that
// moves occupy wall-clock time: that is what the sync and async engines
// spend it on differently. Capacities hold only part of the working set,
// so bursts churn placements instead of settling.
func movementConfig(shards int, short, async bool) hfetch.Config {
	fileBytes := int64(benchSegsPerFile * benchSegSize) // 2 MiB
	pfsLat := 1500 * time.Microsecond
	if short {
		pfsLat = 600 * time.Microsecond
	}
	return hfetch.Config{
		Nodes:           1,
		SegmentSize:     benchSegSize,
		EventShards:     shards,
		WorkersPerShard: 1,
		EnableTelemetry: true,
		EnableLifecycle: true,
		TimeSampleEvery: 1,
		// Low interval + small threshold: passes fire while the previous
		// pass's moves are still in flight, which is the overlap under test.
		EngineInterval:        20 * time.Millisecond,
		EngineUpdateThreshold: 48,
		EngineThreads:         2,
		AsyncMover:            async,
		FetchCoalesce:         async,
		FetchWait:             2 * time.Millisecond,
		Tiers: []hfetch.TierSpec{
			{Name: "ram", Capacity: 2 * fileBytes,
				Latency: 2 * time.Microsecond, Bandwidth: 8 << 30, Channels: 4},
			{Name: "nvme", Capacity: 4 * fileBytes,
				Latency: 30 * time.Microsecond, Bandwidth: 2 << 30, Channels: 4},
			{Name: "bb", Capacity: 8 * fileBytes,
				Latency: 150 * time.Microsecond, Bandwidth: 1 << 30, Channels: 4, Shared: true},
		},
		PFS: hfetch.PFSSpec{Latency: pfsLat, Bandwidth: 1 << 30, Servers: 4},
	}
}

// runMovementVariant executes the burst schedule against one engine mode
// and collects its variant record.
func runMovementVariant(o Options, async bool) (MovementVariant, error) {
	files, bursts := movementParams(o.Short)
	mode := "sync"
	if async {
		mode = "async"
	}
	v := MovementVariant{Mode: mode, Files: files, Bursts: bursts}

	cluster, err := hfetch.NewCluster(movementConfig(o.Shards, o.Short, async))
	if err != nil {
		return v, err
	}
	defer cluster.Stop()
	node := cluster.Node(0)
	srv := node.Server()
	fileBytes := int64(benchSegsPerFile * benchSegSize)

	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("/bench/move-%04d.dat", i)
		if err := cluster.CreateFile(names[i], fileBytes); err != nil {
			return v, err
		}
		srv.Auditor().StartEpoch(names[i], fileBytes)
	}

	// Sample the mover's queues while bursts run; in sync mode the
	// stats are zero and the maxima stay zero. The maxima live in
	// sampler-local variables until the goroutine is joined, so early
	// error returns never race the sampler.
	eng := srv.Engine()
	var maxDepth, maxInflight int
	stopSampler := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				ms := eng.MoverStats()
				depth := 0
				for _, d := range ms.QueueDepths {
					depth += d
				}
				if depth > maxDepth {
					maxDepth = depth
				}
				if ms.Outstanding > maxInflight {
					maxInflight = ms.Outstanding
				}
			}
		}
	}()
	sampled := false
	joinSampler := func() {
		if sampled {
			return
		}
		sampled = true
		close(stopSampler)
		samplerWG.Wait()
		v.MaxQueueDepth = maxDepth
		v.MaxInflight = maxInflight
	}
	defer joinSampler()

	mon := srv.Monitor()
	cl := node.NewClient()
	readWindow := func(window []string) error {
		var wg sync.WaitGroup
		errCh := make(chan error, len(window))
		for _, name := range window {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				f, err := cl.Open(name)
				if err != nil {
					errCh <- err
					return
				}
				defer f.Close()
				buf := make([]byte, benchSegSize)
				for s := int64(0); s < benchSegsPerFile; s++ {
					if _, err := f.ReadAt(buf, s*benchSegSize); err != nil {
						errCh <- fmt.Errorf("read %s seg %d: %w", name, s, err)
						return
					}
				}
			}(name)
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return err
		}
		return nil
	}

	start := time.Now()
	for b := 0; b < bursts; b++ {
		window := make([]string, 0, movementWindow)
		for w := 0; w < movementWindow; w++ {
			window = append(window, names[(b*movementStride+w)%files])
		}
		// Heat the window: the event pipeline scores the segments and
		// trips decision passes while earlier bursts' moves still run.
		for _, name := range window {
			for s := int64(0); s < benchSegsPerFile; s++ {
				mon.Post(events.Event{
					Op: events.OpRead, File: name,
					Offset: s * benchSegSize, Length: benchSegSize,
				})
			}
		}
		// First walk races the fetches (read stalls and rescues happen
		// here); the post-flush walk measures the settled hit ratio.
		if err := readWindow(window); err != nil {
			return v, err
		}
		node.Flush()
		if err := readWindow(window); err != nil {
			return v, err
		}
	}
	node.Flush()
	v.Seconds = time.Since(start).Seconds()
	joinSampler()

	reg := node.Telemetry()
	v.Decide = stageLats(reg, telemetry.StageDecide)[telemetry.StageDecide]

	st := cl.Stats()
	v.SegmentsRead = st.Reads()
	if hm := st.Hits() + st.Misses(); hm > 0 {
		v.HitRatio = float64(st.Hits()) / float64(hm)
	}
	ms := eng.MoverStats()
	v.Coalesced = ms.Coalesced
	v.Superseded = ms.Superseded
	v.Cancelled = ms.Cancelled
	v.Retried = ms.Retried
	v.FailedMoves = eng.Counters().FailedMoves
	v.Stalls, v.StallRescues = srv.StallStats()
	stall := reg.Histogram("hfetch_read_stall_nanos", "").Snapshot()
	v.StallP50us = float64(stall.Quantile(0.50)) / 1e3
	v.StallP99us = float64(stall.Quantile(0.99)) / 1e3
	v.Prefetch = effectiveness(reg)
	return v, nil
}

// runMovement runs the burst schedule under both engines and pairs the
// decision-pass latencies.
func runMovement(o Options) (MovementResult, error) {
	var res MovementResult
	sync, err := runMovementVariant(o, false)
	if err != nil {
		return res, fmt.Errorf("sync variant: %w", err)
	}
	async, err := runMovementVariant(o, true)
	if err != nil {
		return res, fmt.Errorf("async variant: %w", err)
	}
	res.Sync = sync
	res.Async = async
	if async.Decide.P99us > 0 {
		res.DecisionSpeedup = sync.Decide.P99us / async.Decide.P99us
	}
	return res, nil
}
