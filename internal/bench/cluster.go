package bench

import (
	"fmt"
	"sync"
	"time"

	"hfetch"
	"hfetch/internal/telemetry"
)

// ClusterScale is one point of the cluster scenario: a fabric of
// `Nodes` daemons where every node warms its own files and then reads
// its neighbour's, so every multi-node hit crosses the wire.
type ClusterScale struct {
	Nodes     int    `json:"nodes"`
	Transport string `json:"transport"` // inproc | tcp
	// SegmentsRead counts the measured (neighbour-reading) phase only;
	// the warm-up phase's reads are discarded.
	SegmentsRead int64   `json:"segments_read"`
	HitRatio     float64 `json:"hit_ratio"`
	// RemoteFetches/RemoteServes are the peer-path counters summed over
	// all nodes: fetches issued on local miss, segments served to peers.
	RemoteFetches int64 `json:"remote_fetches"`
	RemoteServes  int64 `json:"remote_serves"`
	// FetchP50us/FetchP99us summarize the cross-node fetch latency
	// merged across every node's per-peer histograms (0 at one node:
	// there is no remote path to measure).
	FetchP50us float64 `json:"fetch_p50_us"`
	FetchP99us float64 `json:"fetch_p99_us"`
	Seconds    float64 `json:"seconds"`
}

// ClusterResult is the cluster scenario's report block: the weak-scale
// sweep over the in-process transport plus one real-TCP run, with the
// single-node point as the hit-ratio baseline the multi-node fabric
// must not fall below.
type ClusterResult struct {
	BaselineHitRatio float64        `json:"baseline_hit_ratio"`
	Scales           []ClusterScale `json:"scales"`
	TCP              *ClusterScale  `json:"tcp,omitempty"`
}

// MinMultiNodeHitRatio returns the smallest aggregate hit ratio across
// the multi-node scales (TCP included), or -1 when there are none.
func (c ClusterResult) MinMultiNodeHitRatio() float64 {
	min := -1.0
	scales := c.Scales
	if c.TCP != nil {
		scales = append(append([]ClusterScale{}, scales...), *c.TCP)
	}
	for _, s := range scales {
		if s.Nodes <= 1 {
			continue
		}
		if min < 0 || s.HitRatio < min {
			min = s.HitRatio
		}
	}
	return min
}

// clusterConfig builds a near-free-device fabric whose tiers are all
// node-local, so a neighbour's segment can only arrive over the peer
// fetch path (a shared tier would serve it without touching the wire).
func clusterConfig(o Options, nodes int, transport string, perNode int64) hfetch.Config {
	fast := func(name string, capacity int64) hfetch.TierSpec {
		return hfetch.TierSpec{
			Name: name, Capacity: capacity,
			Latency: time.Nanosecond, Bandwidth: 1 << 40, Channels: 8,
		}
	}
	return hfetch.Config{
		Nodes:           nodes,
		SegmentSize:     benchSegSize,
		EventShards:     o.Shards,
		WorkersPerShard: 1,
		EnableTelemetry: true,
		TimeSampleEvery: 8,
		// Reactive placement: the warm-up pass must actually land in the
		// tiers before the measured pass, so the engine runs eagerly and
		// the scenario flushes between phases.
		EngineInterval:        20 * time.Millisecond,
		EngineUpdateThreshold: 64,
		ClusterFabric:         true,
		ClusterHeartbeat:      20 * time.Millisecond,
		ClusterTransport:      transport,
		Tiers: []hfetch.TierSpec{
			fast("ram", 2*perNode),
			fast("nvme", 4*perNode),
		},
		PFS: hfetch.PFSSpec{Latency: time.Nanosecond, Bandwidth: 1 << 40, Servers: 8},
	}
}

// runClusterScale measures one fabric size: phase one warms every
// node's own files (reads discarded), phase two times each node reading
// its neighbour's files, which at any multi-node scale must be served
// across the wire or degrade to the PFS.
func runClusterScale(o Options, nodes int, transport string) (ClusterScale, error) {
	filesPer, segs := 4, int64(16)
	if o.Short {
		filesPer, segs = 2, 8
	}
	perNode := int64(filesPer) * segs * benchSegSize
	cluster, err := hfetch.NewCluster(clusterConfig(o, nodes, transport, perNode))
	if err != nil {
		return ClusterScale{}, err
	}
	defer cluster.Stop()

	if nodes > 1 {
		for i := 0; i < nodes; i++ {
			if !cluster.ClusterNode(i).Membership().WaitView(nodes, 10*time.Second) {
				return ClusterScale{}, fmt.Errorf("node%d never saw the %d-member view", i, nodes)
			}
		}
	}

	name := func(node, file int) string {
		return fmt.Sprintf("/bench/cluster-n%02d-f%02d.dat", node, file)
	}
	fileSize := segs * benchSegSize
	for n := 0; n < nodes; n++ {
		for f := 0; f < filesPer; f++ {
			if err := cluster.CreateFile(name(n, f), fileSize); err != nil {
				return ClusterScale{}, err
			}
		}
	}

	// Phase one: every node warms its own files — each segment read
	// twice so scores clear the placement bar — then flushes so the
	// placements land before the clock starts.
	var wg sync.WaitGroup
	errCh := make(chan error, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl := cluster.Node(n).NewClient()
			buf := make([]byte, benchSegSize)
			for f := 0; f < filesPer; f++ {
				fh, err := cl.Open(name(n, f))
				if err != nil {
					errCh <- err
					return
				}
				for s := int64(0); s < segs; s++ {
					fh.ReadAt(buf, s*benchSegSize)
					fh.ReadAt(buf, s*benchSegSize)
				}
				fh.Close()
			}
			cluster.Node(n).Flush()
		}(n)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return ClusterScale{}, err
		}
	}

	// Phase two (timed): every node reads its neighbour's files once.
	// At one node the neighbour is itself (the baseline); at any larger
	// scale every hit is a cross-node serve.
	var mu sync.Mutex
	var hits, misses, reads int64
	errCh = make(chan error, nodes)
	start := time.Now()
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl := cluster.Node(n).NewClient()
			buf := make([]byte, benchSegSize)
			owner := (n + 1) % nodes
			for f := 0; f < filesPer; f++ {
				fh, err := cl.Open(name(owner, f))
				if err != nil {
					errCh <- err
					return
				}
				for s := int64(0); s < segs; s++ {
					if _, err := fh.ReadAt(buf, s*benchSegSize); err != nil {
						errCh <- fmt.Errorf("read %s seg %d: %w", name(owner, f), s, err)
						fh.Close()
						return
					}
				}
				fh.Close()
			}
			st := cl.Stats()
			mu.Lock()
			hits += st.Hits()
			misses += st.Misses()
			reads += st.Reads()
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		if err != nil {
			return ClusterScale{}, err
		}
	}

	res := ClusterScale{
		Nodes: nodes, Transport: transport,
		SegmentsRead: reads,
		Seconds:      elapsed.Seconds(),
	}
	if hits+misses > 0 {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	var fetchHist telemetry.HistSnapshot
	for n := 0; n < nodes; n++ {
		fetches, serves := cluster.Node(n).Server().RemoteStats()
		res.RemoteFetches += fetches
		res.RemoteServes += serves
		if cn := cluster.ClusterNode(n); cn != nil {
			fetchHist.Merge(cn.Fetcher().FetchSnapshot())
		}
	}
	if fetchHist.Count > 0 {
		res.FetchP50us = float64(fetchHist.Quantile(0.50)) / 1e3
		res.FetchP99us = float64(fetchHist.Quantile(0.99)) / 1e3
	}
	return res, nil
}

// runCluster sweeps the fabric sizes over the in-process transport and
// adds the 3-node real-TCP point.
func runCluster(o Options) (ClusterResult, error) {
	scales := []int{1, 2, 4, 8}
	if o.Short {
		scales = []int{1, 2, 4}
	}
	var out ClusterResult
	for _, n := range scales {
		s, err := runClusterScale(o, n, "inproc")
		if err != nil {
			return out, fmt.Errorf("cluster %d nodes: %w", n, err)
		}
		if n == 1 {
			out.BaselineHitRatio = s.HitRatio
		}
		out.Scales = append(out.Scales, s)
	}
	tcpNodes := 3
	if o.Short {
		tcpNodes = 2
	}
	tcp, err := runClusterScale(o, tcpNodes, "tcp")
	if err != nil {
		return out, fmt.Errorf("cluster %d nodes over tcp: %w", tcpNodes, err)
	}
	out.TCP = &tcp
	return out, nil
}
