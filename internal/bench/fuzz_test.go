package bench

import (
	"encoding/json"
	"testing"
)

// FuzzValidate throws arbitrary documents at the hand-rolled report
// validator: it must never panic, never emit a nil error, and must
// reject anything that is not valid JSON.
func FuzzValidate(f *testing.F) {
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"schema_version": 99}`))
	f.Add([]byte(`{"schema_version":2,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[{"pipeline":"sharded","mode":"weak","clients":1,"events":1,"seconds":1,"events_per_sec":1,"stages":{}}],"comparisons":[]}`))
	f.Add([]byte(`{"schema_version":2,"drain":[[]],"comparisons":[0],"reads":{"hit_ratio":-1},"movement":{"sync":null}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		errs := Validate(raw)
		for i, e := range errs {
			if e == nil {
				t.Fatalf("Validate returned nil error at index %d", i)
			}
		}
		if !json.Valid(raw) && len(errs) == 0 {
			t.Fatalf("invalid JSON accepted: %q", raw)
		}
	})
}
