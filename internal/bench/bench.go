// Package bench is the reproducible benchmark harness behind
// cmd/hfetchbench. It measures the event pipeline (monitor → auditor →
// placement) of both pipeline variants — the sharded rings and the
// legacy single queue — under weak- and strong-scaling client herds,
// plus an application-read scenario for the end-to-end hit ratio and a
// data-movement scenario comparing the synchronous engine against the
// async mover pipeline (decision-pass latency, queue depths, fetch
// coalescing, read stalls), a cluster scenario weak-scaling the
// multi-node fabric (1→8 emulated daemons over the in-process
// transport plus a real-TCP point, reporting aggregate hit ratio
// against the single-node baseline and cross-node fetch quantiles),
// an allocation-profile scenario re-measuring the warm read path
// (bytes-copied-per-read, allocs/op, slab hit ratio for the range-view
// and gateway consumers), and assembles the results into the
// schema-versioned report written to BENCH_<rev>.json (see
// BENCHMARKS.md for the schema and baselines).
//
// Unlike internal/harness, which reproduces the paper's figures in
// modeled device time, bench measures the *implementation*: wall-clock
// event throughput and pipeline-stage latencies of this repository's hot
// path, so regressions in the code (not the model) show up.
package bench

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"hfetch"
	"hfetch/internal/events"
	"hfetch/internal/telemetry"
)

// Options configures a benchmark run.
type Options struct {
	// Short shrinks every scale for CI smoke runs (a few seconds total).
	Short bool
	// Clients are the herd sizes to sweep. Defaults to 320..2560
	// (doubling), or 64/128 when Short.
	Clients []int
	// EventsPerClient is the weak-scaling load (default 200).
	EventsPerClient int
	// TotalEvents is the strong-scaling load, split across the herd
	// (default 262144; 65536 short).
	TotalEvents int
	// Reps is the repetition count per drain point; the best (highest
	// throughput) repetition is reported, which damps scheduler noise on
	// small machines (default 3; 2 short).
	Reps int
	// Shards is the sharded pipeline's ring count (default 8).
	Shards int
	// Files is the number of distinct files the herd touches
	// (default 256; 64 short).
	Files int
	// Rev labels the report (git revision; "dev" when unknown).
	Rev string
	// Now stamps the report; zero means "caller fills it in".
	Now time.Time
	// TracePath, when non-empty, exports the read scenario's lifecycle
	// traces as Chrome trace_event JSON (Perfetto-loadable) to this file.
	TracePath string
}

func (o Options) withDefaults() Options {
	if len(o.Clients) == 0 {
		if o.Short {
			o.Clients = []int{64, 128}
		} else {
			o.Clients = []int{320, 640, 1280, 2560}
		}
	}
	if o.EventsPerClient <= 0 {
		o.EventsPerClient = 200
	}
	if o.TotalEvents <= 0 {
		if o.Short {
			o.TotalEvents = 65536
		} else {
			o.TotalEvents = 262144
		}
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Files <= 0 {
		if o.Short {
			o.Files = 64
		} else {
			o.Files = 256
		}
	}
	if o.Reps <= 0 {
		if o.Short {
			o.Reps = 2
		} else {
			o.Reps = 3
		}
	}
	if o.Rev == "" {
		o.Rev = "dev"
	}
	return o
}

// benchSegSize keeps the drain scenario's segment grain small so scores
// spread over many segments without large synthetic files.
const benchSegSize = 64 << 10

// benchSegsPerFile bounds each file's segment count (offsets wrap).
const benchSegsPerFile = 32

// Run executes the full suite and returns the report. Progress lines go
// through logf when non-nil.
func Run(o Options, logf func(format string, args ...any)) (Report, error) {
	o = o.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := Report{
		SchemaVersion: SchemaVersion,
		Rev:           o.Rev,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		Short:         o.Short,
	}
	if !o.Now.IsZero() {
		rep.Timestamp = o.Now.UTC().Format(time.RFC3339)
	}

	type variant struct {
		name    string
		shards  int
		workers int
		daemons int
	}
	// The legacy pool gets the same worker count as the sharded pipeline
	// so the comparison isolates the queue structure, not parallelism.
	variants := []variant{
		{name: "sharded", shards: o.Shards, workers: 1},
		{name: "legacy", shards: 1, daemons: o.Shards},
	}

	for _, mode := range []string{"weak", "strong"} {
		for _, clients := range o.Clients {
			perClient := o.EventsPerClient
			if mode == "strong" {
				perClient = o.TotalEvents / clients
				if perClient < 1 {
					perClient = 1
				}
			}
			var eps [2]float64
			for vi, v := range variants {
				// Best-of-Reps: on small or shared machines a single drain's
				// throughput swings with scheduler luck; the fastest rep is
				// the least-perturbed measurement of the pipeline itself.
				var best DrainResult
				for r := 0; r < o.Reps; r++ {
					res, err := runDrain(v.name, v.shards, v.workers, v.daemons,
						mode, clients, perClient, o.Files)
					if err != nil {
						return rep, fmt.Errorf("drain %s/%s/%d clients: %w", v.name, mode, clients, err)
					}
					if res.EventsPerSec > best.EventsPerSec {
						best = res
					}
				}
				logf("drain %-7s %-6s %4d clients: %10.0f events/s (%.3fs, best of %d)",
					v.name, mode, clients, best.EventsPerSec, best.Seconds, o.Reps)
				rep.Drain = append(rep.Drain, best)
				eps[vi] = best.EventsPerSec
			}
			rep.Comparisons = append(rep.Comparisons, Comparison{
				Mode: mode, Clients: clients,
				ShardedEPS: eps[0], LegacyEPS: eps[1],
				Speedup: eps[0] / eps[1],
			})
		}
	}

	reads, err := runReads(o)
	if err != nil {
		return rep, fmt.Errorf("reads: %w", err)
	}
	logf("reads  %d clients: hit ratio %.3f over %d segment reads; prefetch timely %d late %d wasted %d redundant %d (lead p99 %.0fµs)",
		reads.Clients, reads.HitRatio, reads.SegmentsRead,
		reads.Prefetch.Timely, reads.Prefetch.Late, reads.Prefetch.Wasted,
		reads.Prefetch.Redundant, reads.Prefetch.LeadP99us)
	rep.Reads = &reads

	movement, err := runMovement(o)
	if err != nil {
		return rep, fmt.Errorf("movement: %w", err)
	}
	for _, v := range []MovementVariant{movement.Sync, movement.Async} {
		logf("move   %-5s: decide p99 %9.1fµs  hit %.3f  queue max %3d  coalesced %4d  stalls %d (%d rescued)  prefetch %d/%d/%d/%d t/l/w/r",
			v.Mode, v.Decide.P99us, v.HitRatio, v.MaxQueueDepth, v.Coalesced, v.Stalls, v.StallRescues,
			v.Prefetch.Timely, v.Prefetch.Late, v.Prefetch.Wasted, v.Prefetch.Redundant)
	}
	logf("move   decision speedup %.1fx (sync p99 / async p99)", movement.DecisionSpeedup)
	rep.Movement = &movement

	clusterRes, err := runCluster(o)
	if err != nil {
		return rep, fmt.Errorf("cluster: %w", err)
	}
	for _, s := range clusterRes.Scales {
		logf("fabric %-6s %d nodes: hit %.3f (baseline %.3f)  remote %d fetch / %d serve  fetch p99 %8.1fµs  (%.3fs)",
			s.Transport, s.Nodes, s.HitRatio, clusterRes.BaselineHitRatio,
			s.RemoteFetches, s.RemoteServes, s.FetchP99us, s.Seconds)
	}
	if s := clusterRes.TCP; s != nil {
		logf("fabric %-6s %d nodes: hit %.3f (baseline %.3f)  remote %d fetch / %d serve  fetch p99 %8.1fµs  (%.3fs)",
			s.Transport, s.Nodes, s.HitRatio, clusterRes.BaselineHitRatio,
			s.RemoteFetches, s.RemoteServes, s.FetchP99us, s.Seconds)
	}
	rep.Cluster = &clusterRes

	gw, err := runGateway(o)
	if err != nil {
		return rep, fmt.Errorf("gateway: %w", err)
	}
	for _, v := range []GatewayVariant{gw.On, gw.Off} {
		logf("http   detect=%-5v: %6.0f req/s  ttfb p50 %7.1fµs p99 %8.1fµs  hit %.3f  %d×2xx %d×429 %d×5xx  timely %d",
			v.StreamDetect, v.ReqPerSec, v.TTFBP50us, v.TTFBP99us, v.HitRatio,
			v.Status2xx, v.Status429, v.Status5xx, v.Prefetch.Timely)
	}
	logf("http   stream detection bought %+d timely prefetches; QoS shed %d over-rate requests (Retry-After %v)",
		gw.TimelyDelta, gw.ShedRequests, gw.ShedRetryAfter)
	rep.Gateway = &gw

	al, err := runAlloc(o)
	if err != nil {
		return rep, fmt.Errorf("alloc: %w", err)
	}
	for _, p := range []struct {
		name string
		v    AllocVariant
	}{{"reads", al.Reads}, {"gateway", al.Gateway}} {
		logf("alloc  %-7s: %4d warm reads  %7.1f B copied/read  %8.1f allocs/op  slab hit %.2f  zero-copy %d B  hit %.3f",
			p.name, p.v.Ops, p.v.BytesCopiedPerRead, p.v.AllocsPerOp,
			p.v.SlabHitRatio, p.v.ZeroCopyBytes, p.v.HitRatio)
	}
	rep.Alloc = &al
	return rep, nil
}

// drainConfig builds a single-node cluster whose modeled devices are
// near-free, so the measurement is the event pipeline's software cost,
// not devsim sleeps.
func drainConfig(shards, workers, daemons int) hfetch.Config {
	fast := func(name string, capacity int64, sharedT bool) hfetch.TierSpec {
		return hfetch.TierSpec{
			Name: name, Capacity: capacity,
			Latency: time.Nanosecond, Bandwidth: 1 << 40, Channels: 8,
			Shared: sharedT,
		}
	}
	return hfetch.Config{
		Nodes:           1,
		SegmentSize:     benchSegSize,
		EventShards:     shards,
		WorkersPerShard: workers,
		DaemonThreads:   daemons,
		EnableTelemetry: true,
		EnableLifecycle: true,
		TimeSampleEvery: 8,
		// Low reactiveness: the engine still runs (its decision passes are
		// measured as the place stage) but its background data movement is
		// kept off the single-CPU drain path enough for the queue/audit
		// cost difference between pipelines to be the dominant signal.
		// 8192 ≈ one pass per few shard-ring drain cycles.
		EngineInterval:        250 * time.Millisecond,
		EngineUpdateThreshold: 8192,
		Tiers: []hfetch.TierSpec{
			fast("ram", 1<<20, false),
			fast("nvme", 2<<20, false),
			fast("bb", 4<<20, true),
		},
		PFS: hfetch.PFSSpec{Latency: time.Nanosecond, Bandwidth: 1 << 40, Servers: 8},
	}
}

// runDrain posts clients×perClient read events straight into the
// monitor from `clients` goroutines and times how long the pipeline
// takes to drain them all.
func runDrain(pipeline string, shards, workers, daemons int, mode string, clients, perClient, files int) (DrainResult, error) {
	cluster, err := hfetch.NewCluster(drainConfig(shards, workers, daemons))
	if err != nil {
		return DrainResult{}, err
	}
	defer cluster.Stop()

	srv := cluster.Node(0).Server()
	fileSize := int64(benchSegsPerFile * benchSegSize)
	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("/bench/drain-%04d.dat", i)
		if err := cluster.CreateFile(names[i], fileSize); err != nil {
			return DrainResult{}, err
		}
		srv.Auditor().StartEpoch(names[i], fileSize)
	}

	mon := srv.Monitor()
	total := int64(clients) * int64(perClient)

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			file := names[id%files]
			// Mostly-sequential walk through the file, wrapping, starting
			// at a per-client offset so co-tenants of a file interleave.
			segIdx := int64(id / files % benchSegsPerFile)
			for i := 0; i < perClient; i++ {
				mon.Post(events.Event{
					Op:     events.OpRead,
					File:   file,
					Offset: segIdx * benchSegSize,
					Length: benchSegSize,
				})
				segIdx = (segIdx + 1) % benchSegsPerFile
			}
		}(c)
	}
	wg.Wait()
	// Producers are done; wait for the workers to drain the rings.
	for mon.Consumed() < total {
		time.Sleep(200 * time.Microsecond)
	}
	elapsed := time.Since(start)

	res := DrainResult{
		Pipeline: pipeline, Mode: mode, Clients: clients,
		Shards: shards, WorkersPerShard: workers, Daemons: daemons,
		Events:       total,
		Seconds:      elapsed.Seconds(),
		EventsPerSec: float64(total) / elapsed.Seconds(),
		Stages:       stageLats(cluster.Node(0).Telemetry(), telemetry.StageQueueWait, telemetry.StageAudit, telemetry.StagePlace),
	}
	return res, nil
}

// runReads measures the end-to-end hit ratio: each client reads its file
// sequentially twice through the agent; the second pass should be served
// from the hierarchy.
func runReads(o Options) (ReadResult, error) {
	clients := 8
	segs := int64(24)
	if o.Short {
		clients, segs = 4, 12
	}
	// Unlike the drain scenario, the working set must fit the hierarchy:
	// the measurement is whether pass two is served from the tiers, not
	// how eviction behaves under pressure.
	cfg := drainConfig(o.Shards, 1, 0)
	need := int64(clients) * segs * benchSegSize
	for i := range cfg.Tiers {
		cfg.Tiers[i].Capacity = need << uint(i)
	}
	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		return ReadResult{}, err
	}
	defer cluster.Stop()

	node := cluster.Node(0)
	fileSize := segs * benchSegSize
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	var totalReads int64
	var mu sync.Mutex
	var hits, misses int64
	for c := 0; c < clients; c++ {
		name := fmt.Sprintf("/bench/read-%02d.dat", c)
		if err := cluster.CreateFile(name, fileSize); err != nil {
			return ReadResult{}, err
		}
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cl := node.NewClient()
			buf := make([]byte, benchSegSize)
			for pass := 0; pass < 2; pass++ {
				f, err := cl.Open(name)
				if err != nil {
					errCh <- err
					return
				}
				for s := int64(0); s < segs; s++ {
					if _, err := f.ReadAt(buf, s*benchSegSize); err != nil {
						errCh <- fmt.Errorf("read %s seg %d: %w", name, s, err)
						f.Close()
						return
					}
				}
				f.Close()
				if pass == 0 {
					// Let the pipeline place the first pass's segments
					// before re-reading.
					node.Flush()
				}
			}
			st := cl.Stats()
			mu.Lock()
			hits += st.Hits()
			misses += st.Misses()
			totalReads += st.Reads()
			mu.Unlock()
		}(name)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return ReadResult{}, err
		}
	}

	res := ReadResult{
		Clients:      clients,
		SegmentsRead: totalReads,
		Stages:       stageLats(node.Telemetry(), telemetry.StageFetch, telemetry.StageClientRead),
		Prefetch:     effectiveness(node.Telemetry()),
	}
	if hits+misses > 0 {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	if o.TracePath != "" {
		if err := exportTrace(node, o.TracePath); err != nil {
			return res, fmt.Errorf("trace export: %w", err)
		}
	}
	return res, nil
}

// exportTrace writes the node's lifecycle traces (completed and
// in-flight) as Chrome trace_event JSON.
func exportTrace(node *hfetch.Node, path string) error {
	var recs []telemetry.TraceRecord
	if lc := node.Telemetry().Lifecycle(); lc != nil {
		recs = lc.Export()
	}
	var buf bytes.Buffer
	if err := telemetry.WriteTraceJSON(&buf, node.Server().Node(), recs); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// effectiveness collects the prefetch ledger's counts and lead-time
// quantiles from a node's registry.
func effectiveness(reg *telemetry.Registry) Effectiveness {
	lc := reg.Lifecycle()
	if lc == nil {
		return Effectiveness{}
	}
	var e Effectiveness
	e.Timely, e.Late, e.Wasted, e.Redundant = lc.EffCounts()
	if h := lc.LeadHist(); h != nil {
		s := h.Snapshot()
		e.LeadP50us = float64(s.Quantile(0.50)) / 1e3
		e.LeadP99us = float64(s.Quantile(0.99)) / 1e3
	}
	return e
}

// stageLats summarizes the named pipeline stages' histograms in
// microseconds.
func stageLats(reg *telemetry.Registry, stages ...string) map[string]StageLat {
	out := make(map[string]StageLat, len(stages))
	for _, st := range stages {
		s := reg.StageHist(st).Snapshot()
		out[st] = StageLat{
			P50us:  float64(s.Quantile(0.50)) / 1e3,
			P99us:  float64(s.Quantile(0.99)) / 1e3,
			Meanus: s.Mean() / 1e3,
			Maxus:  float64(s.Max) / 1e3,
			Count:  s.Count,
		}
	}
	return out
}
