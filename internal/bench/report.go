package bench

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the version stamped into every report. Consumers of
// BENCH_*.json must check it before interpreting fields; additions bump
// the minor conventions in BENCHMARKS.md, incompatible changes bump this
// number. Version 2 added the prefetch-effectiveness block (timely /
// late / wasted / redundant counts and lead-time quantiles) to the reads
// and movement scenarios. Version 3 added the required cluster block:
// the weak-scaling fabric sweep (aggregate hit ratio vs. the single-node
// baseline, cross-node fetch quantiles, peer-path counters) plus the
// real-TCP point. Version 4 added the gateway block: HTTP range-read
// load through internal/gateway with stream detection on vs off
// (req/s, TTFB quantiles, hit ratio, effectiveness delta) plus the QoS
// shed subtest. Version 5 added the alloc block: the warm read path
// re-measured for its allocation profile — bytes-copied-per-read from
// the tiers copy ledger, allocs/op, slab hit ratio and by-reference
// bytes — for the range-view and gateway consumers (the
// -max-bytes-copied gate's input).
const SchemaVersion = 5

// Effectiveness summarizes the prefetch-effectiveness ledger for one
// scenario run: how each prefetched segment's lifecycle ended, and the
// lead time (landing to first read) for the timely ones.
type Effectiveness struct {
	Timely    int64   `json:"timely"`
	Late      int64   `json:"late"`
	Wasted    int64   `json:"wasted"`
	Redundant int64   `json:"redundant"`
	LeadP50us float64 `json:"lead_p50_us"`
	LeadP99us float64 `json:"lead_p99_us"`
}

// Ratio returns (timely+late)/total — the fraction of prefetches that
// served a read at all (0 when nothing was prefetched).
func (e Effectiveness) Ratio() float64 {
	total := e.Timely + e.Late + e.Wasted + e.Redundant
	if total == 0 {
		return 0
	}
	return float64(e.Timely+e.Late) / float64(total)
}

// StageLat summarizes one pipeline stage's latency histogram.
type StageLat struct {
	P50us  float64 `json:"p50_us"`
	P99us  float64 `json:"p99_us"`
	Meanus float64 `json:"mean_us"`
	Maxus  float64 `json:"max_us"`
	Count  int64   `json:"count"`
}

// DrainResult is one event-drain measurement: a client herd posting
// events through the monitor→auditor→placement path of one pipeline
// variant at one scale.
type DrainResult struct {
	// Pipeline is "sharded" or "legacy".
	Pipeline string `json:"pipeline"`
	// Mode is "weak" (events per client fixed) or "strong" (total fixed).
	Mode            string  `json:"mode"`
	Clients         int     `json:"clients"`
	Shards          int     `json:"shards"`
	WorkersPerShard int     `json:"workers_per_shard,omitempty"`
	Daemons         int     `json:"daemons,omitempty"`
	Events          int64   `json:"events"`
	Seconds         float64 `json:"seconds"`
	EventsPerSec    float64 `json:"events_per_sec"`
	// Stages maps pipeline stage names (queue_wait, audit, place) to
	// their latency summaries, from the node's telemetry histograms.
	Stages map[string]StageLat `json:"stages"`
}

// ReadResult is the application-read scenario: clients reading files
// twice through the full prefetching stack; the second pass should hit.
type ReadResult struct {
	Clients      int                 `json:"clients"`
	SegmentsRead int64               `json:"segments_read"`
	HitRatio     float64             `json:"hit_ratio"`
	Stages       map[string]StageLat `json:"stages"`
	// Prefetch classifies every prefetched segment's outcome from the
	// lifecycle ledger.
	Prefetch Effectiveness `json:"prefetch"`
}

// MovementVariant is one engine mode's run of the movement scenario:
// the hot-burst schedule where placement passes overlap in-flight moves.
type MovementVariant struct {
	// Mode is "sync" (engine executes moves inline) or "async" (mover
	// pipeline).
	Mode   string `json:"mode"`
	Files  int    `json:"files"`
	Bursts int    `json:"bursts"`
	// Decide summarizes the decision-pass latency (telemetry stage
	// "decide"): the engine's pass from entry to ready-for-next-pass.
	Decide       StageLat `json:"decide"`
	SegmentsRead int64    `json:"segments_read"`
	HitRatio     float64  `json:"hit_ratio"`
	Seconds      float64  `json:"seconds"`
	// Mover pipeline observations; all zero in sync mode.
	MaxQueueDepth int   `json:"max_queue_depth"`
	MaxInflight   int   `json:"max_inflight"`
	Coalesced     int64 `json:"coalesced"`
	Superseded    int64 `json:"superseded"`
	Cancelled     int64 `json:"cancelled"`
	Retried       int64 `json:"retried"`
	FailedMoves   int64 `json:"failed_moves"`
	// Read-stall observations: reads that waited on an in-flight fetch.
	Stalls       int64   `json:"stalls"`
	StallRescues int64   `json:"stall_rescues"`
	StallP50us   float64 `json:"stall_p50_us"`
	StallP99us   float64 `json:"stall_p99_us"`
	// Prefetch classifies every prefetched segment's outcome from the
	// lifecycle ledger.
	Prefetch Effectiveness `json:"prefetch"`
}

// MovementResult pairs the two engine modes over the identical burst
// schedule.
type MovementResult struct {
	Sync  MovementVariant `json:"sync"`
	Async MovementVariant `json:"async"`
	// DecisionSpeedup is sync decide p99 / async decide p99: how much
	// faster the decision loop returns when moves execute asynchronously.
	DecisionSpeedup float64 `json:"decision_speedup"`
}

// GatewayVariant is one stream-detect mode's run of the gateway
// scenario: a client herd issuing mixed sequential/random HTTP range
// reads against a live gateway.
type GatewayVariant struct {
	StreamDetect bool  `json:"stream_detect"`
	Requests     int64 `json:"requests"`
	Status2xx    int64 `json:"status_2xx"`
	Status429    int64 `json:"status_429"`
	Status5xx    int64 `json:"status_5xx"`
	// Bytes is response body bytes received by the clients.
	Bytes     int64   `json:"bytes"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	// TTFB quantiles are client-observed: request issued to first body
	// byte received.
	TTFBP50us float64 `json:"ttfb_p50_us"`
	TTFBP99us float64 `json:"ttfb_p99_us"`
	// HitRatio is the server-side segment hit ratio over the run.
	HitRatio float64 `json:"hit_ratio"`
	// Prefetch classifies every prefetched segment's outcome from the
	// lifecycle ledger.
	Prefetch Effectiveness `json:"prefetch"`
}

// GatewayResult pairs the two stream-detect modes over the identical
// load schedule and carries the QoS shed subtest's outcome.
type GatewayResult struct {
	On  GatewayVariant `json:"on"`
	Off GatewayVariant `json:"off"`
	// TimelyDelta is On timely prefetches minus Off: what the
	// external sequencing signal bought.
	TimelyDelta int64 `json:"timely_delta"`
	// ShedRequests counts 429 responses in the rate-limited subtest
	// (must be > 0: the bucket sheds rather than queues).
	ShedRequests int64 `json:"shed_requests"`
	// ShedRetryAfter reports whether shed responses carried a
	// Retry-After of at least one second.
	ShedRetryAfter bool `json:"shed_retry_after"`
}

// AllocVariant is one consumer's allocation profile in the alloc
// scenario: a priming pass pulls the working set into the hierarchy,
// then the same reads run again warm while the copy ledger
// (tiers.CopiedBytes), the runtime allocator and the slab counters are
// read before and after the measured window.
type AllocVariant struct {
	// Ops is the number of measured warm reads (segment-sized range
	// views, or HTTP range requests for the gateway variant).
	Ops int64 `json:"ops"`
	// BytesServed is payload bytes delivered during the measured pass.
	BytesServed int64 `json:"bytes_served"`
	// BytesCopied is the read-path copy ledger's delta over the measured
	// pass: payload memcpys only. The pinned view path leaves it at zero.
	BytesCopied int64 `json:"bytes_copied"`
	// BytesCopiedPerRead is BytesCopied / Ops — the -max-bytes-copied
	// gate checks the reads variant's value.
	BytesCopiedPerRead float64 `json:"bytes_copied_per_read"`
	// ZeroCopyBytes is the server's by-reference serve counter delta:
	// bytes that went out as pinned tier views, never copied.
	ZeroCopyBytes int64 `json:"zero_copy_bytes"`
	// AllocsPerOp is the runtime mallocs delta over the measured pass
	// divided by Ops. Background pipeline goroutines contribute noise;
	// this is a trend metric, not an exact count.
	AllocsPerOp float64 `json:"allocs_per_op"`
	// SlabHitRatio is hits/gets of the process slab allocator over the
	// whole sub-scenario, priming included — priming is where the fetch
	// path draws its segment buffers.
	SlabHitRatio float64 `json:"slab_hit_ratio"`
	// HitRatio is the tier hit ratio of the measured pass (should be ~1:
	// the pass exists to measure the warm path).
	HitRatio float64 `json:"hit_ratio"`
}

// AllocResult pairs the two measured consumers of the zero-copy read
// path: direct pinned range views and the HTTP gateway.
type AllocResult struct {
	Reads   AllocVariant `json:"reads"`
	Gateway AllocVariant `json:"gateway"`
}

// Comparison pairs the sharded and legacy drain throughput at one scale.
type Comparison struct {
	Mode       string  `json:"mode"`
	Clients    int     `json:"clients"`
	ShardedEPS float64 `json:"sharded_eps"`
	LegacyEPS  float64 `json:"legacy_eps"`
	// Speedup is ShardedEPS / LegacyEPS.
	Speedup float64 `json:"speedup"`
}

// Report is the root document written to BENCH_<rev>.json.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Rev           string `json:"rev"`
	Timestamp     string `json:"timestamp"` // RFC 3339
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	NumCPU        int    `json:"num_cpu"`
	Short         bool   `json:"short"`

	Drain       []DrainResult   `json:"drain"`
	Reads       *ReadResult     `json:"reads,omitempty"`
	Movement    *MovementResult `json:"movement,omitempty"`
	Cluster     *ClusterResult  `json:"cluster,omitempty"`
	Gateway     *GatewayResult  `json:"gateway,omitempty"`
	Alloc       *AllocResult    `json:"alloc,omitempty"`
	Comparisons []Comparison    `json:"comparisons"`
}

// Validate checks raw JSON against the report schema. It is
// deliberately hand-rolled (no schema library in the module) and checks
// structure, types, required fields and value ranges; it returns every
// violation found, not just the first.
func Validate(raw []byte) []error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	checkPrefetch := func(where string, m map[string]any) {
		p, ok := m["prefetch"].(map[string]any)
		if !ok {
			bad("%s.prefetch: missing (schema v%d requires the effectiveness block)", where, SchemaVersion)
			return
		}
		for _, key := range []string{"timely", "late", "wasted", "redundant", "lead_p50_us", "lead_p99_us"} {
			if v, ok := p[key].(float64); !ok || v < 0 {
				bad("%s.prefetch.%s: missing or < 0", where, key)
			}
		}
	}

	if v, ok := doc["schema_version"].(float64); !ok {
		bad("schema_version: missing or not a number")
	} else if int(v) != SchemaVersion {
		bad("schema_version: got %d, want %d", int(v), SchemaVersion)
	}
	for _, key := range []string{"rev", "timestamp", "go_version"} {
		if s, ok := doc[key].(string); !ok || s == "" {
			bad("%s: missing or empty", key)
		}
	}
	for _, key := range []string{"gomaxprocs", "num_cpu"} {
		if v, ok := doc[key].(float64); !ok || v < 1 {
			bad("%s: missing or < 1", key)
		}
	}

	drain, ok := doc["drain"].([]any)
	if !ok || len(drain) == 0 {
		bad("drain: missing or empty")
	}
	pipelines := map[string]bool{}
	for i, d := range drain {
		m, ok := d.(map[string]any)
		if !ok {
			bad("drain[%d]: not an object", i)
			continue
		}
		p, _ := m["pipeline"].(string)
		if p != "sharded" && p != "legacy" {
			bad("drain[%d].pipeline: got %q, want sharded|legacy", i, p)
		}
		pipelines[p] = true
		if md, _ := m["mode"].(string); md != "weak" && md != "strong" {
			bad("drain[%d].mode: got %q, want weak|strong", i, md)
		}
		for _, key := range []string{"clients", "events", "events_per_sec", "seconds"} {
			if v, ok := m[key].(float64); !ok || v <= 0 {
				bad("drain[%d].%s: missing or <= 0", i, key)
			}
		}
		stages, ok := m["stages"].(map[string]any)
		if !ok {
			bad("drain[%d].stages: missing", i)
			continue
		}
		for _, st := range []string{"queue_wait", "audit"} {
			sm, ok := stages[st].(map[string]any)
			if !ok {
				bad("drain[%d].stages.%s: missing", i, st)
				continue
			}
			for _, key := range []string{"p50_us", "p99_us", "mean_us", "count"} {
				if v, ok := sm[key].(float64); !ok || v < 0 {
					bad("drain[%d].stages.%s.%s: missing or < 0", i, st, key)
				}
			}
		}
	}
	if len(drain) > 0 && (!pipelines["sharded"] || !pipelines["legacy"]) {
		bad("drain: must cover both the sharded and legacy pipelines")
	}

	comps, ok := doc["comparisons"].([]any)
	if !ok || len(comps) == 0 {
		bad("comparisons: missing or empty")
	}
	for i, c := range comps {
		m, ok := c.(map[string]any)
		if !ok {
			bad("comparisons[%d]: not an object", i)
			continue
		}
		for _, key := range []string{"sharded_eps", "legacy_eps", "speedup"} {
			if v, ok := m[key].(float64); !ok || v <= 0 {
				bad("comparisons[%d].%s: missing or <= 0", i, key)
			}
		}
	}

	if mv, present := doc["movement"]; present && mv != nil {
		m, ok := mv.(map[string]any)
		if !ok {
			bad("movement: not an object")
		} else {
			for _, mode := range []string{"sync", "async"} {
				vm, ok := m[mode].(map[string]any)
				if !ok {
					bad("movement.%s: missing", mode)
					continue
				}
				if got, _ := vm["mode"].(string); got != mode {
					bad("movement.%s.mode: got %q", mode, got)
				}
				if hr, ok := vm["hit_ratio"].(float64); !ok || hr < 0 || hr > 1 {
					bad("movement.%s.hit_ratio: missing or outside [0,1]", mode)
				}
				d, ok := vm["decide"].(map[string]any)
				if !ok {
					bad("movement.%s.decide: missing", mode)
					continue
				}
				if c, ok := d["count"].(float64); !ok || c <= 0 {
					bad("movement.%s.decide.count: missing or <= 0 (no decision passes measured)", mode)
				}
				for _, key := range []string{"p50_us", "p99_us", "mean_us"} {
					if lat, ok := d[key].(float64); !ok || lat <= 0 {
						bad("movement.%s.decide.%s: missing or <= 0", mode, key)
					}
				}
			}
			for _, mode := range []string{"sync", "async"} {
				if vm, ok := m[mode].(map[string]any); ok {
					checkPrefetch("movement."+mode, vm)
				}
			}
			if v, ok := m["decision_speedup"].(float64); !ok || v <= 0 {
				bad("movement.decision_speedup: missing or <= 0")
			}
		}
	}

	checkScale := func(where string, sm map[string]any) {
		nodes, _ := sm["nodes"].(float64)
		if nodes < 1 {
			bad("%s.nodes: missing or < 1", where)
		}
		if tr, _ := sm["transport"].(string); tr != "inproc" && tr != "tcp" {
			bad("%s.transport: got %q, want inproc|tcp", where, tr)
		}
		if hr, ok := sm["hit_ratio"].(float64); !ok || hr < 0 || hr > 1 {
			bad("%s.hit_ratio: missing or outside [0,1]", where)
		}
		for _, key := range []string{"segments_read", "seconds"} {
			if v, ok := sm[key].(float64); !ok || v <= 0 {
				bad("%s.%s: missing or <= 0", where, key)
			}
		}
		if nodes > 1 {
			// A multi-node point must have exercised the peer path: the
			// report is required to carry a measured cross-node fetch p99
			// (arXiv:2503.08966's lesson — gate on latency, not just hits).
			for _, key := range []string{"remote_fetches", "remote_serves", "fetch_p99_us"} {
				if v, ok := sm[key].(float64); !ok || v <= 0 {
					bad("%s.%s: missing or <= 0 (peer path unmeasured)", where, key)
				}
			}
		}
	}
	if cl, present := doc["cluster"]; present && cl != nil {
		m, ok := cl.(map[string]any)
		if !ok {
			bad("cluster: not an object")
		} else {
			if v, ok := m["baseline_hit_ratio"].(float64); !ok || v < 0 || v > 1 {
				bad("cluster.baseline_hit_ratio: missing or outside [0,1]")
			}
			scales, ok := m["scales"].([]any)
			if !ok || len(scales) == 0 {
				bad("cluster.scales: missing or empty")
			}
			sawSingle := false
			for i, s := range scales {
				sm, ok := s.(map[string]any)
				if !ok {
					bad("cluster.scales[%d]: not an object", i)
					continue
				}
				if n, _ := sm["nodes"].(float64); n == 1 {
					sawSingle = true
				}
				checkScale(fmt.Sprintf("cluster.scales[%d]", i), sm)
			}
			if len(scales) > 0 && !sawSingle {
				bad("cluster.scales: missing the single-node baseline point")
			}
			if tcp, present := m["tcp"]; present && tcp != nil {
				if tm, ok := tcp.(map[string]any); ok {
					checkScale("cluster.tcp", tm)
					if tr, _ := tm["transport"].(string); tr != "tcp" {
						bad("cluster.tcp.transport: got %q, want tcp", tr)
					}
				} else {
					bad("cluster.tcp: not an object")
				}
			}
		}
	}

	if gw, present := doc["gateway"]; present && gw != nil {
		m, ok := gw.(map[string]any)
		if !ok {
			bad("gateway: not an object")
		} else {
			for _, mode := range []string{"on", "off"} {
				vm, ok := m[mode].(map[string]any)
				if !ok {
					bad("gateway.%s: missing", mode)
					continue
				}
				wantDetect := mode == "on"
				if sd, ok := vm["stream_detect"].(bool); !ok || sd != wantDetect {
					bad("gateway.%s.stream_detect: got %v, want %v", mode, vm["stream_detect"], wantDetect)
				}
				for _, key := range []string{"requests", "status_2xx", "req_per_sec", "seconds", "bytes"} {
					if v, ok := vm[key].(float64); !ok || v <= 0 {
						bad("gateway.%s.%s: missing or <= 0", mode, key)
					}
				}
				if v, ok := vm["status_5xx"].(float64); !ok || v != 0 {
					bad("gateway.%s.status_5xx: missing or non-zero (the gateway must not 5xx under load)", mode)
				}
				for _, key := range []string{"ttfb_p50_us", "ttfb_p99_us"} {
					if v, ok := vm[key].(float64); !ok || v < 0 {
						bad("gateway.%s.%s: missing or < 0", mode, key)
					}
				}
				if hr, ok := vm["hit_ratio"].(float64); !ok || hr < 0 || hr > 1 {
					bad("gateway.%s.hit_ratio: missing or outside [0,1]", mode)
				}
				checkPrefetch("gateway."+mode, vm)
			}
			if v, ok := m["shed_requests"].(float64); !ok || v <= 0 {
				bad("gateway.shed_requests: missing or <= 0 (QoS must shed, not queue)")
			}
			if ra, ok := m["shed_retry_after"].(bool); !ok || !ra {
				bad("gateway.shed_retry_after: shed responses must carry Retry-After")
			}
		}
	}

	if al, present := doc["alloc"]; present && al != nil {
		m, ok := al.(map[string]any)
		if !ok {
			bad("alloc: not an object")
		} else {
			for _, mode := range []string{"reads", "gateway"} {
				vm, ok := m[mode].(map[string]any)
				if !ok {
					bad("alloc.%s: missing", mode)
					continue
				}
				for _, key := range []string{"ops", "bytes_served", "zero_copy_bytes"} {
					if v, ok := vm[key].(float64); !ok || v <= 0 {
						bad("alloc.%s.%s: missing or <= 0 (zero-copy path unmeasured)", mode, key)
					}
				}
				for _, key := range []string{"bytes_copied", "bytes_copied_per_read", "allocs_per_op"} {
					if v, ok := vm[key].(float64); !ok || v < 0 {
						bad("alloc.%s.%s: missing or < 0", mode, key)
					}
				}
				for _, key := range []string{"slab_hit_ratio", "hit_ratio"} {
					if v, ok := vm[key].(float64); !ok || v < 0 || v > 1 {
						bad("alloc.%s.%s: missing or outside [0,1]", mode, key)
					}
				}
			}
		}
	}

	if r, present := doc["reads"]; present && r != nil {
		m, ok := r.(map[string]any)
		if !ok {
			bad("reads: not an object")
		} else {
			if hr, ok := m["hit_ratio"].(float64); !ok || hr < 0 || hr > 1 {
				bad("reads.hit_ratio: missing or outside [0,1]")
			}
			checkPrefetch("reads", m)
		}
	}
	return errs
}

// GatewayHitRatio returns the stream-detect-on gateway hit ratio
// (-min-gateway-hit tripwire input; 0 when the scenario did not run).
func (r Report) GatewayHitRatio() float64 {
	if r.Gateway == nil {
		return 0
	}
	return r.Gateway.On.HitRatio
}

// ReadBytesCopiedPerRead returns the alloc scenario's reads-variant
// bytes-copied-per-read (-max-bytes-copied tripwire input; -1 when the
// scenario did not run).
func (r Report) ReadBytesCopiedPerRead() float64 {
	if r.Alloc == nil {
		return -1
	}
	return r.Alloc.Reads.BytesCopiedPerRead
}

// MinSpeedup returns the smallest sharded/legacy speedup across the
// report's comparisons (0 when there are none).
func (r Report) MinSpeedup() float64 {
	min := 0.0
	for i, c := range r.Comparisons {
		if i == 0 || c.Speedup < min {
			min = c.Speedup
		}
	}
	return min
}
