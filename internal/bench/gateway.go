package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"hfetch"
	"hfetch/internal/telemetry"
)

// runGateway measures the HTTP range-read gateway end to end: an
// in-process client herd issues mixed sequential/random range reads
// against a live gateway, once with stream detection on and once off
// over the identical schedule, so the report carries the
// prefetch-effectiveness delta the sequencing signal buys. A third,
// rate-limited subtest verifies the QoS layer sheds with 429 +
// Retry-After instead of queuing unboundedly.
func runGateway(o Options) (GatewayResult, error) {
	files, segs, passes, workers := 8, int64(24), 3, 8
	if o.Short {
		files, segs, passes, workers = 4, 12, 2, 4
	}
	var res GatewayResult
	for _, detect := range []bool{true, false} {
		v, err := runGatewayVariant(o, detect, files, segs, passes, workers)
		if err != nil {
			return res, err
		}
		if detect {
			res.On = v
		} else {
			res.Off = v
		}
	}
	res.TimelyDelta = res.On.Prefetch.Timely - res.Off.Prefetch.Timely
	shed, retryAfter, err := runGatewayShed(o)
	if err != nil {
		return res, err
	}
	res.ShedRequests = shed
	res.ShedRetryAfter = retryAfter
	return res, nil
}

func gatewayBenchConfig(o Options, detect bool, need int64) hfetch.Config {
	cfg := drainConfig(o.Shards, 1, 0)
	for i := range cfg.Tiers {
		cfg.Tiers[i].Capacity = need << uint(i)
	}
	cfg.Gateway = hfetch.GatewaySpec{
		StreamDetect:    detect,
		StreamLookahead: 8,
	}
	return cfg
}

func runGatewayVariant(o Options, detect bool, files int, segs int64, passes, workers int) (GatewayVariant, error) {
	v := GatewayVariant{StreamDetect: detect}
	need := int64(files) * segs * benchSegSize
	cluster, err := hfetch.NewCluster(gatewayBenchConfig(o, detect, need))
	if err != nil {
		return v, err
	}
	defer cluster.Stop()
	node := cluster.Node(0)

	names := make([]string, files)
	for i := range names {
		names[i] = fmt.Sprintf("bench/gw-%02d.dat", i)
		if err := cluster.CreateFile(names[i], segs*benchSegSize); err != nil {
			return v, err
		}
	}
	ts := httptest.NewServer(node.GatewayHandler())
	defer ts.Close()

	ttfb := &telemetry.Histogram{}
	var mu sync.Mutex
	var st statusCounts
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Three in four workers stream sequentially (the shape the
			// gateway's detector exists for); the rest read randomly.
			sequential := w%4 != 3
			rng := rand.New(rand.NewSource(int64(w) + 1))
			client := &http.Client{}
			var local statusCounts
			defer func() {
				mu.Lock()
				st.merge(local)
				mu.Unlock()
			}()
			name := names[w%files]
			for p := 0; p < passes; p++ {
				for s := int64(0); s < segs; s++ {
					idx := s
					if !sequential {
						idx = rng.Int63n(segs)
					}
					off := idx * benchSegSize
					if err := getRange(client, ts.URL, name, off, benchSegSize, "", ttfb, &local); err != nil {
						errCh <- err
						return
					}
					if p == 0 && sequential && s == 3 {
						// The detector has seen enough of the stream to post
						// its lookahead hints; give the pipeline one boundary
						// to land them ahead of the reader. With detection
						// off the same flush only places segments already
						// read (redundant, not timely), so this is where the
						// on/off timely delta comes from.
						node.Flush()
					}
				}
				if p == 0 && sequential {
					// And one pass boundary for the tail, same as the reads
					// scenario.
					node.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return v, err
		}
	}
	elapsed := time.Since(start)
	node.Flush()

	v.Requests = st.total()
	v.Status2xx = st.s2xx
	v.Status429 = st.s429
	v.Status5xx = st.s5xx
	v.Bytes = st.bytes
	v.Seconds = elapsed.Seconds()
	v.ReqPerSec = float64(v.Requests) / elapsed.Seconds()
	hist := ttfb.Snapshot()
	v.TTFBP50us = float64(hist.Quantile(0.50)) / 1e3
	v.TTFBP99us = float64(hist.Quantile(0.99)) / 1e3
	ios := node.Server().IOStats()
	if hits, misses := ios.Hits(), ios.Misses(); hits+misses > 0 {
		v.HitRatio = float64(hits) / float64(hits+misses)
	}
	v.Prefetch = effectiveness(node.Telemetry())
	return v, nil
}

// runGatewayShed verifies QoS shedding: one tenant hammers a gateway
// whose bucket admits ~10 requests, and the rest must come back 429
// with a Retry-After hint — never a hang, never a 5xx.
func runGatewayShed(o Options) (shed int64, retryAfter bool, err error) {
	cfg := gatewayBenchConfig(o, false, 4*benchSegSize)
	cfg.Gateway.TenantRPS = 10
	cfg.Gateway.TenantBurst = 5
	cfg.Gateway.AdmitWait = time.Millisecond
	cluster, err := hfetch.NewCluster(cfg)
	if err != nil {
		return 0, false, err
	}
	defer cluster.Stop()
	if err := cluster.CreateFile("bench/gw-shed.dat", 4*benchSegSize); err != nil {
		return 0, false, err
	}
	ts := httptest.NewServer(cluster.Node(0).GatewayHandler())
	defer ts.Close()

	client := &http.Client{}
	requests := 100
	if o.Short {
		requests = 50
	}
	for i := 0; i < requests; i++ {
		req, rerr := http.NewRequest("GET", ts.URL+"/files/bench/gw-shed.dat", nil)
		if rerr != nil {
			return shed, retryAfter, rerr
		}
		req.Header.Set("Range", "bytes=0-1023")
		req.Header.Set("X-Tenant", "bench")
		resp, rerr := client.Do(req)
		if rerr != nil {
			return shed, retryAfter, rerr
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			if ra, _ := strconv.Atoi(resp.Header.Get("Retry-After")); ra >= 1 {
				retryAfter = true
			}
		} else if resp.StatusCode >= 500 {
			return shed, retryAfter, fmt.Errorf("shed subtest: unexpected %d", resp.StatusCode)
		}
	}
	if shed == 0 {
		return 0, false, fmt.Errorf("shed subtest: %d over-rate requests, none shed", requests)
	}
	return shed, retryAfter, nil
}

// statusCounts tallies one load run's responses.
type statusCounts struct {
	s2xx, s429, s5xx, other int64
	bytes                   int64
}

func (s *statusCounts) merge(o statusCounts) {
	s.s2xx += o.s2xx
	s.s429 += o.s429
	s.s5xx += o.s5xx
	s.other += o.other
	s.bytes += o.bytes
}

func (s *statusCounts) total() int64 { return s.s2xx + s.s429 + s.s5xx + s.other }

// getRange issues one ranged GET, recording client-observed TTFB (first
// body byte) and the response class.
func getRange(client *http.Client, base, name string, off, ln int64, tenant string, ttfb *telemetry.Histogram, st *statusCounts) error {
	req, err := http.NewRequest("GET", base+"/files/"+name, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Range",
		"bytes="+strconv.FormatInt(off, 10)+"-"+strconv.FormatInt(off+ln-1, 10))
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var first [1]byte
	if n, _ := resp.Body.Read(first[:]); n > 0 {
		ttfb.Observe(int64(time.Since(start)))
		st.bytes += int64(n)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	st.bytes += n
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		st.s2xx++
	case resp.StatusCode == http.StatusTooManyRequests:
		st.s429++
	case resp.StatusCode >= 500:
		st.s5xx++
	default:
		st.other++
	}
	return nil
}
