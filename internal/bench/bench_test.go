package bench

import (
	"encoding/json"
	"testing"
	"time"
)

// TestRunShortProducesValidReport runs a miniature sweep end to end and
// checks the emitted document against its own schema.
func TestRunShortProducesValidReport(t *testing.T) {
	rep, err := Run(Options{
		Short:           true,
		Clients:         []int{16, 32},
		EventsPerClient: 20,
		TotalEvents:     1024,
		Files:           16,
		Rev:             "test",
		Now:             time.Unix(1_700_000_000, 0),
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Drain) != 8 { // 2 modes × 2 scales × 2 pipelines
		t.Fatalf("drain results = %d, want 8", len(rep.Drain))
	}
	if len(rep.Comparisons) != 4 {
		t.Fatalf("comparisons = %d, want 4", len(rep.Comparisons))
	}
	for _, c := range rep.Comparisons {
		if c.Speedup <= 0 {
			t.Fatalf("comparison %s/%d: non-positive speedup %v", c.Mode, c.Clients, c.Speedup)
		}
	}
	if rep.Reads == nil {
		t.Fatal("no read scenario result")
	}
	if rep.Reads.HitRatio <= 0 {
		t.Fatalf("hit ratio %v, want > 0 (second pass should hit)", rep.Reads.HitRatio)
	}
	for _, d := range rep.Drain {
		if d.Stages["audit"].Count == 0 {
			t.Fatalf("drain %s/%s/%d: no audit-stage observations", d.Pipeline, d.Mode, d.Clients)
		}
	}
	if rep.Movement == nil {
		t.Fatal("no movement scenario result")
	}
	m := rep.Movement
	for _, v := range []MovementVariant{m.Sync, m.Async} {
		if v.Decide.Count == 0 {
			t.Fatalf("movement %s: no decision passes measured", v.Mode)
		}
		if v.HitRatio <= 0 {
			t.Fatalf("movement %s: hit ratio %v, want > 0", v.Mode, v.HitRatio)
		}
	}
	if m.DecisionSpeedup <= 0 {
		t.Fatalf("decision speedup %v, want > 0", m.DecisionSpeedup)
	}
	if m.Async.MaxInflight == 0 {
		t.Fatal("async movement never had a move in flight")
	}
	if m.Sync.MaxQueueDepth != 0 || m.Sync.Coalesced != 0 {
		t.Fatal("sync movement reported mover pipeline activity")
	}

	if rep.Alloc == nil {
		t.Fatal("no alloc scenario result")
	}
	for _, p := range []struct {
		name string
		v    AllocVariant
	}{{"reads", rep.Alloc.Reads}, {"gateway", rep.Alloc.Gateway}} {
		if p.v.Ops == 0 || p.v.BytesServed == 0 {
			t.Fatalf("alloc %s: empty measurement (%+v)", p.name, p.v)
		}
		if p.v.ZeroCopyBytes == 0 {
			t.Fatalf("alloc %s: zero-copy path never engaged (%+v)", p.name, p.v)
		}
	}
	// A fully copying path would copy one whole segment per warm read;
	// the pinned view path must stay well under that.
	if bc := rep.Alloc.Reads.BytesCopiedPerRead; bc >= benchSegSize {
		t.Fatalf("warm range-view pass copied %.0f B/read, want < %d", bc, benchSegSize)
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if errs := Validate(raw); len(errs) != 0 {
		t.Fatalf("self-emitted report fails validation: %v", errs)
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":                  `{`,
		"wrong version":             `{"schema_version": 99}`,
		"empty":                     `{}`,
		"missing drain":             `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1}`,
		"bad pipeline":              `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[{"pipeline":"weird"}],"comparisons":[{"sharded_eps":1,"legacy_eps":1,"speedup":1}]}`,
		"bad hit ratio":             `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[],"comparisons":[],"reads":{"hit_ratio":1.5}}`,
		"zero throughput":           `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[{"pipeline":"sharded","mode":"weak","clients":1,"events":1,"seconds":1,"events_per_sec":0,"stages":{}}],"comparisons":[{"sharded_eps":1,"legacy_eps":1,"speedup":1}]}`,
		"movement without variants": `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[],"comparisons":[],"movement":{}}`,
		"movement no passes":        `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[],"comparisons":[],"movement":{"sync":{"mode":"sync","hit_ratio":0.5,"decide":{"count":0}},"async":{"mode":"async","hit_ratio":0.5,"decide":{"count":0}},"decision_speedup":2}}`,
		"movement bad speedup":      `{"schema_version":1,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[],"comparisons":[],"movement":{"sync":{"mode":"sync","hit_ratio":0.5,"decide":{"count":1,"p50_us":1,"p99_us":1,"mean_us":1}},"async":{"mode":"async","hit_ratio":0.5,"decide":{"count":1,"p50_us":1,"p99_us":1,"mean_us":1}},"decision_speedup":0}}`,
		"reads missing prefetch":    `{"schema_version":2,"rev":"r","timestamp":"t","go_version":"g","gomaxprocs":1,"num_cpu":1,"drain":[{"pipeline":"sharded","mode":"weak","clients":1,"events":1,"seconds":1,"events_per_sec":1,"stages":{"queue_wait":{"p50_us":1,"p99_us":1,"mean_us":1,"count":1},"audit":{"p50_us":1,"p99_us":1,"mean_us":1,"count":1}}},{"pipeline":"legacy","mode":"weak","clients":1,"events":1,"seconds":1,"events_per_sec":1,"stages":{"queue_wait":{"p50_us":1,"p99_us":1,"mean_us":1,"count":1},"audit":{"p50_us":1,"p99_us":1,"mean_us":1,"count":1}}}],"comparisons":[{"sharded_eps":1,"legacy_eps":1,"speedup":1}],"reads":{"hit_ratio":0.5}}`,
	}
	for name, doc := range cases {
		if errs := Validate([]byte(doc)); len(errs) == 0 {
			t.Errorf("%s: expected validation errors, got none", name)
		}
	}
}

func TestMinSpeedup(t *testing.T) {
	r := Report{Comparisons: []Comparison{{Speedup: 2.5}, {Speedup: 1.2}, {Speedup: 3.0}}}
	if got := r.MinSpeedup(); got != 1.2 {
		t.Fatalf("MinSpeedup = %v, want 1.2", got)
	}
	if got := (Report{}).MinSpeedup(); got != 0 {
		t.Fatalf("empty MinSpeedup = %v, want 0", got)
	}
}
