// Package config defines the JSON configuration cmd/hfetchd consumes: a
// user-defined description of the node's storage hierarchy (the hardware
// monitor discovers tiers from it), the scoring and engine parameters,
// and optionally a set of synthetic files to register at boot.
package config

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"time"
)

// Tier describes one tier of the deep memory and storage hierarchy.
type Tier struct {
	Name          string  `json:"name"`
	CapacityBytes int64   `json:"capacity_bytes"`
	LatencyUS     float64 `json:"latency_us"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	Channels      int     `json:"channels"`
	Shared        bool    `json:"shared"`
}

// PFS describes the origin parallel file system.
type PFS struct {
	LatencyUS     float64 `json:"latency_us"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	Servers       int     `json:"servers"`
}

// File pre-registers a synthetic file at boot.
type File struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Config is the root document.
type Config struct {
	Node   string `json:"node"`
	Listen string `json:"listen"`
	// HTTPListen serves the read-only status API (/healthz, /stats,
	// /tiers, /metrics, /spans, /debug/pprof) when non-empty.
	HTTPListen string `json:"http_listen,omitempty"`
	// PeerListen, when non-empty, turns the daemon into a cluster
	// member: a second TCP listener carries peer traffic (heartbeats,
	// hashmap operations, remote segment reads), kept separate from the
	// client-agent Listen address so operator traffic and fabric traffic
	// never share a connection.
	PeerListen string `json:"peer_listen,omitempty"`
	// Seeds are peer_listen addresses of existing members contacted to
	// join the cluster (the node also answers joins addressed to it, so
	// the first member needs no seeds).
	Seeds []string `json:"seeds,omitempty"`
	// HeartbeatMS is the membership probe interval (default 500).
	// SuspectAfterMS and DeadAfterMS are the silence thresholds after
	// which a member is judged suspect and dead (defaults 2000/5000).
	HeartbeatMS    int `json:"heartbeat_ms,omitempty"`
	SuspectAfterMS int `json:"suspect_after_ms,omitempty"`
	DeadAfterMS    int `json:"dead_after_ms,omitempty"`
	// PeerRequestTimeoutMS bounds every peer request (default 2000; a
	// peer that cannot answer within it degrades reads to the PFS).
	PeerRequestTimeoutMS int `json:"peer_request_timeout_ms,omitempty"`
	// DisableTelemetry turns off the metric registry (telemetry is on by
	// default in the daemon; the registry costs one pointer check per
	// instrumented operation plus the timestamp reads).
	DisableTelemetry bool `json:"disable_telemetry,omitempty"`
	// SpanLogSize is the sampled pipeline-span ring size (default 256).
	SpanLogSize int `json:"span_log_size,omitempty"`
	// SpanSampleEvery samples one pipeline span in every N (default 16).
	SpanSampleEvery int `json:"span_sample_every,omitempty"`
	// TimeSampleEvery times one in every N hot-path operations for the
	// latency histograms (default 8; 1 times everything).
	TimeSampleEvery int `json:"time_sample_every,omitempty"`
	// DisableLifecycle turns off the segment lifecycle tracer and the
	// prefetch-effectiveness ledger (on by default whenever telemetry is
	// on; export with hfetchctl trace or GET /debug/trace).
	DisableLifecycle bool `json:"disable_lifecycle,omitempty"`
	// LifecycleRing is the completed-trace flight-recorder size
	// (default 256).
	LifecycleRing int `json:"lifecycle_ring,omitempty"`
	// LifecycleSampleEvery roots one lifecycle trace in every N access
	// events (default 64; prefetches are always ledgered regardless).
	LifecycleSampleEvery int `json:"lifecycle_sample_every,omitempty"`
	// LifecycleMaxActive caps in-flight lifecycle traces (default 4096).
	LifecycleMaxActive int `json:"lifecycle_max_active,omitempty"`
	// DisableWatchdog turns off the stall watchdog (on by default
	// whenever telemetry is on; its steady-state cost is one probe sweep
	// per poll interval — the read path pays nothing).
	DisableWatchdog bool `json:"disable_watchdog,omitempty"`
	// WatchdogStallMS is how long a probe must show pending work with no
	// progress before the watchdog trips and dumps a diagnostic bundle
	// (default 5000).
	WatchdogStallMS int `json:"watchdog_stall_ms,omitempty"`
	// WatchdogDir is where trip bundles are written (default: the working
	// directory).
	WatchdogDir string `json:"watchdog_dir,omitempty"`
	// WatchdogMaxBundles bounds the on-disk bundle ring (default 4;
	// oldest bundles are pruned first).
	WatchdogMaxBundles int `json:"watchdog_max_bundles,omitempty"`

	// LogLevel selects the daemon's minimum log level: "debug", "info"
	// (default), "warn" or "error".
	LogLevel string `json:"log_level,omitempty"`
	// LogFormat selects the daemon's log encoding: "text" (default) or
	// "json".
	LogFormat string `json:"log_format,omitempty"`

	SegmentSize int64   `json:"segment_size"`
	DecayBase   float64 `json:"decay_base"`
	DecayUnitMS int     `json:"decay_unit_ms"`
	SeqBoost    float64 `json:"seq_boost"`
	HeatDir     string  `json:"heat_dir"`
	WALPath     string  `json:"wal_path"`

	// Daemons sizes the legacy single-queue daemon pool; it is ignored
	// when EventShards > 1 (the sharded pipeline sizes itself from
	// EventShards × WorkersPerShard).
	Daemons int `json:"daemons"`
	// EventShards selects the event pipeline: values > 1 hash events by
	// file onto that many independent rings, each drained by its own
	// worker(s); <= 1 keeps the single mutex-guarded queue. Default 8.
	EventShards int `json:"event_shards"`
	// WorkersPerShard is the worker count per event shard (default 1).
	// One worker per shard preserves per-file event ordering.
	WorkersPerShard int `json:"workers_per_shard"`
	// PostingPolicy is the queue overflow policy: "block" (default)
	// applies backpressure to producers, "drop" discards events when the
	// target ring is full (inotify IN_Q_OVERFLOW).
	PostingPolicy string `json:"posting_policy,omitempty"`
	// EventQueueCap bounds the event queue (total across shards;
	// default 65536).
	EventQueueCap int `json:"event_queue_cap,omitempty"`

	EngineWorkers         int `json:"engine_workers"`
	EngineIntervalMS      int `json:"engine_interval_ms"`
	EngineUpdateThreshold int `json:"engine_update_threshold"`

	// AsyncMover decouples placement decisions from move execution: the
	// engine commits its residency model and hands moves to a persistent
	// per-tier mover pipeline instead of executing them inside the
	// placement pass. Daemon default true; set false for the legacy
	// synchronous engine.
	AsyncMover bool `json:"async_mover"`
	// MoverConcurrency is the async mover's worker count per tier,
	// fastest first (entries <= 0 or missing use the built-in default
	// max(2, 8>>tier)). Ignored when async_mover is false.
	MoverConcurrency []int `json:"mover_concurrency,omitempty"`
	// MoverQueueDepth bounds each per-tier mover queue; a full queue
	// applies backpressure to the placement pass. Default 256.
	MoverQueueDepth int `json:"mover_queue_depth,omitempty"`
	// FetchCoalesce merges adjacent queued PFS fetches of one file into
	// a single origin read. Daemon default true.
	FetchCoalesce bool `json:"fetch_coalesce"`
	// FetchWaitMS bounds how long a missing read waits for an in-flight
	// mover fetch of the same segment before falling back to the PFS.
	// Daemon default 2ms; 0 disables the wait.
	FetchWaitMS float64 `json:"fetch_wait_ms,omitempty"`

	// GatewayMaxInflight caps concurrently served gateway requests
	// across all clients (default 256); excess requests are shed with
	// 429 + Retry-After.
	GatewayMaxInflight int `json:"gateway_max_inflight,omitempty"`
	// GatewayClientInflight caps concurrent gateway requests per client
	// IP (default 64).
	GatewayClientInflight int `json:"gateway_client_inflight,omitempty"`
	// TenantRPS is the per-tenant token-bucket refill rate for gateway
	// admission in requests per second; 0 (default) disables tenant
	// rate limiting.
	TenantRPS float64 `json:"tenant_rps,omitempty"`
	// TenantBurst is the token-bucket depth (default 2×tenant_rps).
	TenantBurst float64 `json:"tenant_burst,omitempty"`
	// GatewayWaitMS bounds how long an over-rate gateway request waits
	// for a token before being shed (default 10ms).
	GatewayWaitMS float64 `json:"gateway_wait_ms,omitempty"`
	// StreamDetect enables the gateway's sequential-stream detector and
	// its readahead hints. Daemon default true.
	StreamDetect bool `json:"stream_detect"`
	// StreamDetectWindow is the byte tolerance between consecutive
	// ranges of one client still considered sequential (default: one
	// segment).
	StreamDetectWindow int64 `json:"stream_detect_window,omitempty"`
	// StreamLookahead is how many segments ahead a detected stream
	// hints (default 4).
	StreamLookahead int `json:"stream_lookahead,omitempty"`

	TimeScale float64 `json:"time_scale"`
	Tiers     []Tier  `json:"tiers"`
	PFS       PFS     `json:"pfs"`
	Files     []File  `json:"files"`
}

// Default returns a single-node development configuration.
func Default() Config {
	return Config{
		Node:                  "node0",
		Listen:                "127.0.0.1:7070",
		SegmentSize:           1 << 20,
		DecayBase:             2,
		DecayUnitMS:           1000,
		SeqBoost:              0.5,
		Daemons:               4,
		EventShards:           8,
		WorkersPerShard:       1,
		PostingPolicy:         "block",
		EngineWorkers:         4,
		EngineIntervalMS:      1000,
		EngineUpdateThreshold: 100,
		AsyncMover:            true,
		MoverQueueDepth:       256,
		FetchCoalesce:         true,
		FetchWaitMS:           2,
		GatewayMaxInflight:    256,
		GatewayClientInflight: 64,
		GatewayWaitMS:         10,
		StreamDetect:          true,
		StreamLookahead:       4,
		TimeScale:             1,
		Tiers: []Tier{
			{Name: "ram", CapacityBytes: 64 << 20, LatencyUS: 0.2, BandwidthMBps: 8000, Channels: 8},
			{Name: "nvme", CapacityBytes: 192 << 20, LatencyUS: 30, BandwidthMBps: 2000, Channels: 4},
			{Name: "bb", CapacityBytes: 256 << 20, LatencyUS: 250, BandwidthMBps: 1000, Channels: 4, Shared: true},
		},
		PFS: PFS{LatencyUS: 3000, BandwidthMBps: 400, Servers: 6},
	}
}

// Load reads and validates a config file.
func Load(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	cfg := Default()
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return Config{}, fmt.Errorf("config: parse %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the configuration for inconsistencies.
func (c Config) Validate() error {
	if c.Node == "" {
		return fmt.Errorf("config: node name required")
	}
	if c.SegmentSize <= 0 {
		return fmt.Errorf("config: segment_size must be positive, got %d", c.SegmentSize)
	}
	if c.DecayBase < 2 {
		return fmt.Errorf("config: decay_base must be >= 2, got %g", c.DecayBase)
	}
	if len(c.Tiers) == 0 {
		return fmt.Errorf("config: at least one tier required")
	}
	seen := map[string]bool{}
	for i, t := range c.Tiers {
		if t.Name == "" {
			return fmt.Errorf("config: tier %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("config: duplicate tier %q", t.Name)
		}
		seen[t.Name] = true
		if t.CapacityBytes <= 0 {
			return fmt.Errorf("config: tier %q capacity must be positive", t.Name)
		}
	}
	for i, f := range c.Files {
		if f.Name == "" || f.Size < 0 {
			return fmt.Errorf("config: file %d invalid (%q, %d bytes)", i, f.Name, f.Size)
		}
	}
	switch c.PostingPolicy {
	case "", "block", "drop":
	default:
		return fmt.Errorf("config: posting_policy must be \"block\" or \"drop\", got %q", c.PostingPolicy)
	}
	if c.EventQueueCap < 0 {
		return fmt.Errorf("config: event_queue_cap must be >= 0, got %d", c.EventQueueCap)
	}
	if c.MoverQueueDepth < 0 {
		return fmt.Errorf("config: mover_queue_depth must be >= 0, got %d", c.MoverQueueDepth)
	}
	if len(c.MoverConcurrency) > len(c.Tiers) {
		return fmt.Errorf("config: mover_concurrency has %d entries for %d tiers",
			len(c.MoverConcurrency), len(c.Tiers))
	}
	if c.FetchWaitMS < 0 {
		return fmt.Errorf("config: fetch_wait_ms must be >= 0, got %g", c.FetchWaitMS)
	}
	if c.GatewayMaxInflight < 0 || c.GatewayClientInflight < 0 {
		return fmt.Errorf("config: gateway_max_inflight and gateway_client_inflight must be >= 0")
	}
	if c.TenantRPS < 0 || c.TenantBurst < 0 || c.GatewayWaitMS < 0 {
		return fmt.Errorf("config: tenant_rps, tenant_burst and gateway_wait_ms must be >= 0")
	}
	if c.StreamDetectWindow < 0 || c.StreamLookahead < 0 {
		return fmt.Errorf("config: stream_detect_window and stream_lookahead must be >= 0")
	}
	if c.LifecycleRing < 0 || c.LifecycleSampleEvery < 0 || c.LifecycleMaxActive < 0 {
		return fmt.Errorf("config: lifecycle_ring, lifecycle_sample_every and lifecycle_max_active must be >= 0")
	}
	if c.WatchdogStallMS < 0 || c.WatchdogMaxBundles < 0 {
		return fmt.Errorf("config: watchdog_stall_ms and watchdog_max_bundles must be >= 0")
	}
	switch c.LogLevel {
	case "", "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("config: log_level must be debug, info, warn or error, got %q", c.LogLevel)
	}
	switch c.LogFormat {
	case "", "text", "json":
	default:
		return fmt.Errorf("config: log_format must be \"text\" or \"json\", got %q", c.LogFormat)
	}
	if len(c.Seeds) > 0 && c.PeerListen == "" {
		return fmt.Errorf("config: seeds require peer_listen (the node must be dialable to join a cluster)")
	}
	if c.HeartbeatMS < 0 || c.SuspectAfterMS < 0 || c.DeadAfterMS < 0 || c.PeerRequestTimeoutMS < 0 {
		return fmt.Errorf("config: heartbeat_ms, suspect_after_ms, dead_after_ms and peer_request_timeout_ms must be >= 0")
	}
	hb, sus, dead := c.ClusterTimings()
	if !(hb < sus && sus < dead) {
		return fmt.Errorf("config: cluster timings must satisfy heartbeat < suspect_after < dead_after, got %v/%v/%v", hb, sus, dead)
	}
	return nil
}

// Clustered reports whether the daemon joins a multi-node fabric.
func (c Config) Clustered() bool { return c.PeerListen != "" }

// ClusterTimings returns the heartbeat interval and the suspect/dead
// silence thresholds with defaults applied (500ms / 2s / 5s).
func (c Config) ClusterTimings() (hb, suspect, dead time.Duration) {
	hb = 500 * time.Millisecond
	if c.HeartbeatMS > 0 {
		hb = time.Duration(c.HeartbeatMS) * time.Millisecond
	}
	suspect = 4 * hb
	if c.SuspectAfterMS > 0 {
		suspect = time.Duration(c.SuspectAfterMS) * time.Millisecond
	}
	dead = 10 * hb
	if c.DeadAfterMS > 0 {
		dead = time.Duration(c.DeadAfterMS) * time.Millisecond
	}
	return hb, suspect, dead
}

// PeerRequestTimeout bounds peer requests (default 2s).
func (c Config) PeerRequestTimeout() time.Duration {
	if c.PeerRequestTimeoutMS > 0 {
		return time.Duration(c.PeerRequestTimeoutMS) * time.Millisecond
	}
	return 2 * time.Second
}

// SlogLevel maps the configured log level onto slog's scale (info when
// unset). Call Validate first; unknown strings also map to info.
func (c Config) SlogLevel() slog.Level {
	switch c.LogLevel {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

// GatewayWait returns the gateway's bounded admission wait as a
// duration.
func (c Config) GatewayWait() time.Duration {
	return time.Duration(c.GatewayWaitMS * float64(time.Millisecond))
}

// WatchdogStall returns the stall threshold after which the watchdog
// trips (default 5s).
func (c Config) WatchdogStall() time.Duration {
	if c.WatchdogStallMS > 0 {
		return time.Duration(c.WatchdogStallMS) * time.Millisecond
	}
	return 5 * time.Second
}

// FetchWait returns the read-path bounded fetch wait as a duration.
func (c Config) FetchWait() time.Duration {
	return time.Duration(c.FetchWaitMS * float64(time.Millisecond))
}

// DropEvents reports whether the posting policy discards events on
// overflow instead of blocking the producer.
func (c Config) DropEvents() bool { return c.PostingPolicy == "drop" }

// DecayUnit returns the decay step as a duration.
func (c Config) DecayUnit() time.Duration {
	return time.Duration(c.DecayUnitMS) * time.Millisecond
}

// EngineInterval returns trigger (a) as a duration.
func (c Config) EngineInterval() time.Duration {
	return time.Duration(c.EngineIntervalMS) * time.Millisecond
}

// Save writes the configuration as indented JSON.
func (c Config) Save(path string) error {
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}
