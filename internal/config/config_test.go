package config

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hfetch.json")
	cfg := Default()
	cfg.Node = "nX"
	cfg.Files = []File{{Name: "a", Size: 100}}
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Node != "nX" || len(got.Files) != 1 || got.Files[0].Size != 100 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/nonexistent/hfetch.json"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestLoadBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(path, "{nope"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("bad JSON must error")
	}
}

func TestLoadAppliesDefaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "min.json")
	if err := writeFile(path, `{"node":"n1"}`); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SegmentSize != 1<<20 || len(cfg.Tiers) != 3 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Node = "" }, "node"},
		{func(c *Config) { c.SegmentSize = 0 }, "segment_size"},
		{func(c *Config) { c.DecayBase = 1 }, "decay_base"},
		{func(c *Config) { c.Tiers = nil }, "tier"},
		{func(c *Config) { c.Tiers[0].Name = "" }, "name"},
		{func(c *Config) { c.Tiers[1].Name = c.Tiers[0].Name }, "duplicate"},
		{func(c *Config) { c.Tiers[0].CapacityBytes = 0 }, "capacity"},
		{func(c *Config) { c.Files = []File{{Name: "", Size: 1}} }, "file"},
		{func(c *Config) { c.MoverQueueDepth = -1 }, "mover_queue_depth"},
		{func(c *Config) { c.MoverConcurrency = []int{1, 1, 1, 1} }, "mover_concurrency"},
		{func(c *Config) { c.FetchWaitMS = -1 }, "fetch_wait_ms"},
	}
	for i, tc := range cases {
		cfg := Default()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("case %d: err = %v, want mention of %q", i, err, tc.want)
		}
	}
}

func TestDurations(t *testing.T) {
	cfg := Default()
	if cfg.DecayUnit() != time.Second || cfg.EngineInterval() != time.Second {
		t.Fatalf("durations = %v %v", cfg.DecayUnit(), cfg.EngineInterval())
	}
	if cfg.FetchWait() != 2*time.Millisecond {
		t.Fatalf("FetchWait = %v, want 2ms", cfg.FetchWait())
	}
}

func TestMoverDefaults(t *testing.T) {
	cfg := Default()
	if !cfg.AsyncMover || !cfg.FetchCoalesce {
		t.Fatalf("daemon must default to the async mover with coalescing: %+v", cfg)
	}
	if cfg.MoverQueueDepth != 256 {
		t.Fatalf("MoverQueueDepth = %d, want 256", cfg.MoverQueueDepth)
	}
	// An explicit opt-out in the file survives the defaulting overlay.
	path := filepath.Join(t.TempDir(), "sync.json")
	if err := writeFile(path, `{"node":"n1","async_mover":false,"fetch_coalesce":false,"fetch_wait_ms":0}`); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.AsyncMover || got.FetchCoalesce {
		t.Fatalf("opt-out lost in defaulting: %+v", got)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
