package comm

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// envelope is the wire format: a gob stream of envelopes per connection.
type envelope struct {
	ID      uint64
	Kind    uint8 // 0 request, 1 response, 2 one-way
	Type    string
	Payload []byte
	Err     string
}

const (
	kindRequest = iota
	kindResponse
	kindOneway
)

// TCPServer serves a Mux over TCP. Each accepted connection carries a
// multiplexed gob stream of envelopes; responses are written back on the
// same connection tagged with the request ID.
type TCPServer struct {
	mux   *Mux
	ln    net.Listener
	stats atomic.Pointer[Stats]

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// SetStats attaches transport instrumentation: connections accepted
// after the call count their frame bytes into st. Safe to call at any
// time; a nil st disables counting for new connections.
func (s *TCPServer) SetStats(st *Stats) { s.stats.Store(st) }

// ListenTCP starts a server for mux on addr ("host:port", ":0" for an
// ephemeral port).
func ListenTCP(addr string, mux *Mux) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	s := &TCPServer{mux: mux, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if st := s.stats.Load(); st != nil {
			conn = countingConn{Conn: conn, st: st}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // io.EOF or broken conn
		}
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			resp, err := s.mux.Dispatch(env.Type, env.Payload)
			if env.Kind == kindOneway {
				return
			}
			out := envelope{ID: env.ID, Kind: kindResponse, Payload: resp}
			if err != nil {
				out.Err = err.Error()
				out.Payload = nil
			}
			wmu.Lock()
			enc.Encode(out) //nolint:errcheck // conn teardown handles failures
			wmu.Unlock()
		}()
	}
}

// Close stops accepting and tears down all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// tcpPeer is a client connection with request multiplexing.
type tcpPeer struct {
	conn       net.Conn
	enc        *gob.Encoder
	reqTimeout time.Duration
	stats      *Stats // nil when uninstrumented
	peerName   string // stats label (PeerOptions.PeerName or the addr)

	wmu    sync.Mutex
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan envelope
	closed  bool
	readErr error
}

// PeerOptions tunes the failure behavior of a dialed TCP peer. The zero
// value reproduces the legacy semantics: one connect attempt with the
// default timeout, requests wait forever.
type PeerOptions struct {
	// DialTimeout bounds one TCP connect attempt (default 5s).
	DialTimeout time.Duration
	// RequestTimeout bounds each Request round trip. Zero disables the
	// deadline (legacy behavior: a dead peer blocks the request until the
	// connection errors out, which for a hung-but-open socket is forever).
	RequestTimeout time.Duration
	// DialAttempts is the total number of connect attempts on transient
	// dial failure (default 1: no retry).
	DialAttempts int
	// DialBackoff is the base delay between connect attempts; each retry
	// doubles it, plus up to 50% random jitter so a cluster of restarting
	// nodes does not redial in lockstep (default 50ms).
	DialBackoff time.Duration
	// Stats, when non-nil, instruments the peer: dial latency and
	// retries, per-request round-trip latency and timeouts, and frame
	// bytes in/out via a counting connection wrapper.
	Stats *Stats
	// PeerName labels Stats series for this peer (default: the dialed
	// address).
	PeerName string
}

func (o PeerOptions) withDefaults() PeerOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialAttempts <= 0 {
		o.DialAttempts = 1
	}
	if o.DialBackoff <= 0 {
		o.DialBackoff = 50 * time.Millisecond
	}
	return o
}

// DialTCP connects to a TCPServer at addr with default options (bounded
// connect, unbounded requests).
func DialTCP(addr string) (Peer, error) {
	return DialTCPOpts(addr, PeerOptions{})
}

// DialTCPOpts connects to a TCPServer at addr, retrying transient dial
// failures with jittered exponential backoff per opts.
func DialTCPOpts(addr string, opts PeerOptions) (Peer, error) {
	opts = opts.withDefaults()
	if opts.PeerName == "" {
		opts.PeerName = addr
	}
	var conn net.Conn
	var err error
	backoff := opts.DialBackoff
	dialStart := time.Now()
	for attempt := 0; attempt < opts.DialAttempts; attempt++ {
		if attempt > 0 {
			opts.Stats.DialRetry()
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff)/2+1)))
			backoff *= 2
		}
		conn, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
	}
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	opts.Stats.ObserveDial(opts.PeerName, time.Since(dialStart))
	if opts.Stats != nil {
		conn = countingConn{Conn: conn, st: opts.Stats}
	}
	p := &tcpPeer{
		conn:       conn,
		enc:        gob.NewEncoder(conn),
		reqTimeout: opts.RequestTimeout,
		stats:      opts.Stats,
		peerName:   opts.PeerName,
		pending:    make(map[uint64]chan envelope),
	}
	go p.readLoop()
	return p, nil
}

func (p *tcpPeer) readLoop() {
	dec := gob.NewDecoder(p.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			p.mu.Lock()
			p.readErr = err
			for id, ch := range p.pending {
				close(ch)
				delete(p.pending, id)
			}
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		ch := p.pending[env.ID]
		delete(p.pending, env.ID)
		p.mu.Unlock()
		if ch != nil {
			ch <- env
		}
	}
}

func (p *tcpPeer) Request(msgType string, payload []byte) ([]byte, error) {
	if p.stats == nil {
		return p.request(msgType, payload)
	}
	start := time.Now()
	resp, err := p.request(msgType, payload)
	p.stats.ObserveRequest(p.peerName, time.Since(start), err)
	return resp, err
}

func (p *tcpPeer) request(msgType string, payload []byte) ([]byte, error) {
	id := p.nextID.Add(1)
	ch := make(chan envelope, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.pending[id] = ch
	p.mu.Unlock()

	env := envelope{ID: id, Kind: kindRequest, Type: msgType, Payload: payload}
	p.wmu.Lock()
	err := p.enc.Encode(env)
	p.wmu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return nil, fmt.Errorf("comm: send: %w", err)
	}

	var resp envelope
	var ok bool
	if p.reqTimeout > 0 {
		timer := time.NewTimer(p.reqTimeout)
		defer timer.Stop()
		select {
		case resp, ok = <-ch:
		case <-timer.C:
			// Abandon the request: a late response finds no pending entry
			// and is dropped by the read loop.
			p.mu.Lock()
			delete(p.pending, id)
			p.mu.Unlock()
			return nil, fmt.Errorf("comm: %s after %v: %w", msgType, p.reqTimeout, ErrTimeout)
		}
	} else {
		resp, ok = <-ch
	}
	if !ok {
		p.mu.Lock()
		rerr := p.readErr
		p.mu.Unlock()
		if rerr == nil || rerr == io.EOF {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("comm: connection lost: %w", rerr)
	}
	if resp.Err != "" {
		return nil, remoteError{msg: resp.Err}
	}
	return resp.Payload, nil
}

func (p *tcpPeer) Notify(msgType string, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	env := envelope{Kind: kindOneway, Type: msgType, Payload: payload}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := p.enc.Encode(env); err != nil {
		return fmt.Errorf("comm: notify: %w", err)
	}
	return nil
}

func (p *tcpPeer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	return p.conn.Close()
}
