package comm

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// envelope is the wire format: a gob stream of envelopes per connection.
type envelope struct {
	ID      uint64
	Kind    uint8 // 0 request, 1 response, 2 one-way
	Type    string
	Payload []byte
	Err     string
}

const (
	kindRequest = iota
	kindResponse
	kindOneway
)

// TCPServer serves a Mux over TCP. Each accepted connection carries a
// multiplexed gob stream of envelopes; responses are written back on the
// same connection tagged with the request ID.
type TCPServer struct {
	mux *Mux
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenTCP starts a server for mux on addr ("host:port", ":0" for an
// ephemeral port).
func ListenTCP(addr string, mux *Mux) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addr, err)
	}
	s := &TCPServer{mux: mux, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var wmu sync.Mutex
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return // io.EOF or broken conn
		}
		hwg.Add(1)
		go func() {
			defer hwg.Done()
			resp, err := s.mux.Dispatch(env.Type, env.Payload)
			if env.Kind == kindOneway {
				return
			}
			out := envelope{ID: env.ID, Kind: kindResponse, Payload: resp}
			if err != nil {
				out.Err = err.Error()
				out.Payload = nil
			}
			wmu.Lock()
			enc.Encode(out) //nolint:errcheck // conn teardown handles failures
			wmu.Unlock()
		}()
	}
}

// Close stops accepting and tears down all connections.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// tcpPeer is a client connection with request multiplexing.
type tcpPeer struct {
	conn net.Conn
	enc  *gob.Encoder

	wmu    sync.Mutex
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan envelope
	closed  bool
	readErr error
}

// DialTCP connects to a TCPServer at addr.
func DialTCP(addr string) (Peer, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: dial %s: %w", addr, err)
	}
	p := &tcpPeer{
		conn:    conn,
		enc:     gob.NewEncoder(conn),
		pending: make(map[uint64]chan envelope),
	}
	go p.readLoop()
	return p, nil
}

func (p *tcpPeer) readLoop() {
	dec := gob.NewDecoder(p.conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			p.mu.Lock()
			p.readErr = err
			for id, ch := range p.pending {
				close(ch)
				delete(p.pending, id)
			}
			p.mu.Unlock()
			return
		}
		p.mu.Lock()
		ch := p.pending[env.ID]
		delete(p.pending, env.ID)
		p.mu.Unlock()
		if ch != nil {
			ch <- env
		}
	}
}

func (p *tcpPeer) Request(msgType string, payload []byte) ([]byte, error) {
	id := p.nextID.Add(1)
	ch := make(chan envelope, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	p.pending[id] = ch
	p.mu.Unlock()

	env := envelope{ID: id, Kind: kindRequest, Type: msgType, Payload: payload}
	p.wmu.Lock()
	err := p.enc.Encode(env)
	p.wmu.Unlock()
	if err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		return nil, fmt.Errorf("comm: send: %w", err)
	}

	resp, ok := <-ch
	if !ok {
		p.mu.Lock()
		rerr := p.readErr
		p.mu.Unlock()
		if rerr == nil || rerr == io.EOF {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("comm: connection lost: %w", rerr)
	}
	if resp.Err != "" {
		return nil, remoteError{msg: resp.Err}
	}
	return resp.Payload, nil
}

func (p *tcpPeer) Notify(msgType string, payload []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.mu.Unlock()
	env := envelope{Kind: kindOneway, Type: msgType, Payload: payload}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if err := p.enc.Encode(env); err != nil {
		return fmt.Errorf("comm: notify: %w", err)
	}
	return nil
}

func (p *tcpPeer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	return p.conn.Close()
}
