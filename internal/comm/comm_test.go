package comm

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func echoMux() *Mux {
	m := NewMux()
	m.Register("echo", func(p []byte) ([]byte, error) { return p, nil })
	m.Register("fail", func(p []byte) ([]byte, error) { return nil, errors.New("boom") })
	return m
}

func TestMuxDispatch(t *testing.T) {
	m := echoMux()
	resp, err := m.Dispatch("echo", []byte("hi"))
	if err != nil || string(resp) != "hi" {
		t.Fatalf("Dispatch = %q %v", resp, err)
	}
	if _, err := m.Dispatch("nope", nil); err == nil {
		t.Fatal("unknown type must error")
	}
}

func TestInprocRequest(t *testing.T) {
	net := NewInprocNetwork(nil)
	net.Join("n1", echoMux())
	p := net.Dial("n1")
	defer p.Close()
	resp, err := p.Request("echo", []byte("ping"))
	if err != nil || string(resp) != "ping" {
		t.Fatalf("Request = %q %v", resp, err)
	}
}

func TestInprocRemoteError(t *testing.T) {
	net := NewInprocNetwork(nil)
	net.Join("n1", echoMux())
	p := net.Dial("n1")
	_, err := p.Request("fail", nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
}

func TestInprocUnknownNode(t *testing.T) {
	net := NewInprocNetwork(nil)
	p := net.Dial("ghost")
	if _, err := p.Request("echo", nil); err == nil {
		t.Fatal("request to unjoined node must fail")
	}
	// Node joins later: requests start succeeding.
	net.Join("ghost", echoMux())
	if _, err := p.Request("echo", nil); err != nil {
		t.Fatalf("request after join failed: %v", err)
	}
}

func TestInprocClosedPeer(t *testing.T) {
	net := NewInprocNetwork(nil)
	net.Join("n1", echoMux())
	p := net.Dial("n1")
	p.Close()
	if _, err := p.Request("echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestInprocNotify(t *testing.T) {
	net := NewInprocNetwork(nil)
	got := make(chan []byte, 1)
	m := NewMux()
	m.Register("note", func(p []byte) ([]byte, error) { got <- p; return nil, nil })
	net.Join("n1", m)
	p := net.Dial("n1")
	if err := p.Notify("note", []byte("async")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "async" {
			t.Fatalf("payload = %q", b)
		}
	case <-time.After(time.Second):
		t.Fatal("notification not delivered")
	}
}

func TestInprocLeave(t *testing.T) {
	net := NewInprocNetwork(nil)
	net.Join("n1", echoMux())
	if len(net.Nodes()) != 1 {
		t.Fatal("Nodes wrong")
	}
	net.Leave("n1")
	p := net.Dial("n1")
	if _, err := p.Request("echo", nil); err == nil {
		t.Fatal("request after leave must fail")
	}
}

func TestTCPRequestResponse(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	resp, err := p.Request("echo", []byte("over tcp"))
	if err != nil || string(resp) != "over tcp" {
		t.Fatalf("Request = %q %v", resp, err)
	}
}

func TestTCPRemoteError(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", echoMux())
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	_, err := p.Request("fail", nil)
	if err == nil || !IsRemote(err) {
		t.Fatalf("err = %v, want remote error", err)
	}
	_, err = p.Request("unknown", nil)
	if err == nil {
		t.Fatal("unknown type must propagate error")
	}
}

func TestTCPConcurrentRequests(t *testing.T) {
	m := NewMux()
	m.Register("double", func(p []byte) ([]byte, error) {
		time.Sleep(time.Millisecond) // force interleaving
		return append(p, p...), nil
	})
	srv, _ := ListenTCP("127.0.0.1:0", m)
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := []byte(fmt.Sprintf("m%02d", i))
			out, err := p.Request("double", in)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(out, append(in, in...)) {
				errs <- fmt.Errorf("mismatch: %q -> %q", in, out)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPNotify(t *testing.T) {
	got := make(chan []byte, 1)
	m := NewMux()
	m.Register("note", func(p []byte) ([]byte, error) { got <- p; return nil, nil })
	srv, _ := ListenTCP("127.0.0.1:0", m)
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	if err := p.Notify("note", []byte("fire-and-forget")); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if string(b) != "fire-and-forget" {
			t.Fatalf("payload = %q", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("notification not delivered")
	}
}

func TestTCPServerCloseUnblocksClients(t *testing.T) {
	block := make(chan struct{})
	m := NewMux()
	m.Register("hang", func(p []byte) ([]byte, error) { <-block; return nil, nil })
	srv, _ := ListenTCP("127.0.0.1:0", m)
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	done := make(chan error, 1)
	go func() {
		_, err := p.Request("hang", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(block) // let the handler finish so server Close can drain
	srv.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("client request did not complete after server close")
	}
}

func TestTCPPeerCloseFailsPending(t *testing.T) {
	m := NewMux()
	m.Register("hang", func(p []byte) ([]byte, error) {
		time.Sleep(5 * time.Second)
		return nil, nil
	})
	srv, _ := ListenTCP("127.0.0.1:0", m)
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := p.Request("hang", nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	p.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pending request must fail on close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request did not fail on peer close")
	}
	if _, err := p.Request("echo", nil); err == nil {
		t.Fatal("request on closed peer must fail")
	}
}

func TestTCPDialFailure(t *testing.T) {
	if _, err := DialTCP("127.0.0.1:1"); err == nil {
		t.Fatal("dialing a dead port must fail")
	}
}

func TestTCPLargePayload(t *testing.T) {
	srv, _ := ListenTCP("127.0.0.1:0", echoMux())
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	big := bytes.Repeat([]byte{0xAB}, 4<<20)
	resp, err := p.Request("echo", big)
	if err != nil || !bytes.Equal(resp, big) {
		t.Fatalf("large payload round-trip failed: %v, %d bytes", err, len(resp))
	}
}

func TestPing(t *testing.T) {
	m := NewMux()
	m.RegisterPing()
	srv, _ := ListenTCP("127.0.0.1:0", m)
	defer srv.Close()
	p, _ := DialTCP(srv.Addr())
	defer p.Close()
	if !Ping(p, []byte("probe")) {
		t.Fatal("ping must succeed against a live mux")
	}
	// A peer without the handler fails the probe.
	m2 := NewMux()
	srv2, _ := ListenTCP("127.0.0.1:0", m2)
	defer srv2.Close()
	p2, _ := DialTCP(srv2.Addr())
	defer p2.Close()
	if Ping(p2, []byte("probe")) {
		t.Fatal("ping must fail without the handler")
	}
	// And a dead peer fails.
	p.Close()
	if Ping(p, nil) {
		t.Fatal("ping on closed peer must fail")
	}
}
