package comm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hfetch/internal/devsim"
)

// InprocNetwork is an in-process fabric connecting named nodes. Each node
// registers a Mux; Dial returns a Peer whose requests invoke the remote
// mux directly. An optional devsim.Device models fabric latency and
// bandwidth so emulated-cluster experiments still pay for node-to-node
// hops.
type InprocNetwork struct {
	dev *devsim.Device

	mu    sync.RWMutex
	nodes map[string]*Mux
}

// NewInprocNetwork creates a fabric; dev may be nil for a free fabric.
func NewInprocNetwork(dev *devsim.Device) *InprocNetwork {
	return &InprocNetwork{dev: dev, nodes: make(map[string]*Mux)}
}

// Join registers node name with its handler mux.
func (n *InprocNetwork) Join(name string, mux *Mux) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[name] = mux
}

// Leave removes a node from the fabric.
func (n *InprocNetwork) Leave(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, name)
}

// Nodes returns the names of joined nodes.
func (n *InprocNetwork) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	return out
}

// Dial returns a Peer speaking to node name. Dialing an unknown node
// succeeds; requests fail until the node joins (mirrors connecting to a
// booting server).
func (n *InprocNetwork) Dial(name string) Peer {
	return &inprocPeer{net: n, target: name}
}

type inprocPeer struct {
	net    *InprocNetwork
	target string
	closed atomic.Bool
}

func (p *inprocPeer) mux() (*Mux, error) {
	if p.closed.Load() {
		return nil, ErrClosed
	}
	p.net.mu.RLock()
	mux := p.net.nodes[p.target]
	p.net.mu.RUnlock()
	if mux == nil {
		return nil, fmt.Errorf("comm: inproc node %q not joined", p.target)
	}
	return mux, nil
}

func (p *inprocPeer) Request(msgType string, payload []byte) ([]byte, error) {
	mux, err := p.mux()
	if err != nil {
		return nil, err
	}
	if p.net.dev != nil {
		p.net.dev.Access(int64(len(payload)))
	}
	resp, err := mux.Dispatch(msgType, payload)
	if err != nil {
		return nil, remoteError{msg: err.Error()}
	}
	if p.net.dev != nil && len(resp) > 0 {
		p.net.dev.Access(int64(len(resp)))
	}
	return resp, nil
}

func (p *inprocPeer) Notify(msgType string, payload []byte) error {
	mux, err := p.mux()
	if err != nil {
		return err
	}
	if p.net.dev != nil {
		p.net.dev.Access(int64(len(payload)))
	}
	go mux.Dispatch(msgType, payload) //nolint:errcheck // one-way, errors dropped by design
	return nil
}

func (p *inprocPeer) Close() error {
	p.closed.Store(true)
	return nil
}
