package comm

import (
	"errors"
	"net"
	"time"

	"hfetch/internal/telemetry"
)

// Stats is the transport instrumentation for package comm: per-peer
// dial and request latency histograms, frame bytes in/out, and
// timeout/retry/health-failure counters, exported as the hfetch_comm_*
// families. All methods are nil-safe — a nil *Stats (telemetry
// disabled) costs one branch per call, and the transports take a nil
// *Stats by default so existing callers pay nothing.
type Stats struct {
	dial     *telemetry.HistVec // hfetch_comm_dial_nanos{peer}
	request  *telemetry.HistVec // hfetch_comm_request_nanos{peer}
	bytesIn  *telemetry.Counter
	bytesOut *telemetry.Counter
	timeouts *telemetry.Counter
	retries  *telemetry.Counter
	hfails   *telemetry.Counter
}

// NewStats registers the hfetch_comm_* metric families on reg and
// returns the instrumentation handle. A nil registry returns nil (the
// disabled state).
func NewStats(reg *telemetry.Registry) *Stats {
	if reg == nil {
		return nil
	}
	return &Stats{
		dial:     reg.HistVec("hfetch_comm_dial_nanos", "TCP peer connect latency by peer in nanoseconds", "peer"),
		request:  reg.HistVec("hfetch_comm_request_nanos", "comm request round-trip latency by peer in nanoseconds", "peer"),
		bytesIn:  reg.Counter("hfetch_comm_bytes_in_total", "bytes read from comm transport connections"),
		bytesOut: reg.Counter("hfetch_comm_bytes_out_total", "bytes written to comm transport connections"),
		timeouts: reg.Counter("hfetch_comm_timeouts_total", "comm requests abandoned at the request deadline"),
		retries:  reg.Counter("hfetch_comm_dial_retries_total", "TCP connect retries after transient dial failures"),
		hfails:   reg.Counter("hfetch_comm_health_failures_total", "request failures recorded against peer health"),
	}
}

// ObserveDial records one successful connect to peer. Nil-safe.
func (s *Stats) ObserveDial(peer string, d time.Duration) {
	if s == nil {
		return
	}
	s.dial.With(peer).Observe(int64(d))
}

// ObserveRequest records one request round trip against peer: latency
// on success, the timeout counter when the deadline expired. Nil-safe.
func (s *Stats) ObserveRequest(peer string, d time.Duration, err error) {
	if s == nil {
		return
	}
	if err == nil {
		s.request.With(peer).Observe(int64(d))
		return
	}
	if errors.Is(err, ErrTimeout) {
		s.timeouts.Inc()
	}
}

// DialRetry counts one connect retry. Nil-safe.
func (s *Stats) DialRetry() {
	if s == nil {
		return
	}
	s.retries.Inc()
}

// HealthFailure counts one failed observation fed to a Health tracker.
// Nil-safe.
func (s *Stats) HealthFailure() {
	if s == nil {
		return
	}
	s.hfails.Inc()
}

// AddBytesIn counts received transport bytes. Nil-safe.
func (s *Stats) AddBytesIn(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.bytesIn.Add(n)
}

// AddBytesOut counts sent transport bytes. Nil-safe.
func (s *Stats) AddBytesOut(n int64) {
	if s == nil || n <= 0 {
		return
	}
	s.bytesOut.Add(n)
}

// countingConn wraps a net.Conn so every frame byte in or out lands in
// the Stats counters (two atomic adds per syscall — negligible next to
// the syscall itself).
type countingConn struct {
	net.Conn
	st *Stats
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.st.AddBytesIn(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.st.AddBytesOut(int64(n))
	return n, err
}

// InstrumentPeer wraps p so every Request is timed into st under the
// given peer label (Notify passes through — one-way sends have no
// round trip to time). A nil st returns p unchanged, so the wrapper
// costs nothing when telemetry is off.
func InstrumentPeer(p Peer, peer string, st *Stats) Peer {
	if st == nil || p == nil {
		return p
	}
	return &statsPeer{Peer: p, name: peer, st: st}
}

type statsPeer struct {
	Peer
	name string
	st   *Stats
}

func (p *statsPeer) Request(msgType string, payload []byte) ([]byte, error) {
	start := time.Now()
	resp, err := p.Peer.Request(msgType, payload)
	p.st.ObserveRequest(p.name, time.Since(start), err)
	return resp, err
}
