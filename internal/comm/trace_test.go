package comm

import (
	"bytes"
	"testing"
	"time"
)

func TestTraceWrapUnwrapRoundtrip(t *testing.T) {
	payload := []byte("gob bytes here")
	tc := TraceCtx{ID: 0xDEADBEEFCAFE, SentUnixNano: 1234567890, Origin: "node0"}
	got, rest := UnwrapTrace(WrapTrace(tc, payload))
	if got != tc {
		t.Fatalf("roundtrip ctx = %+v, want %+v", got, tc)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("roundtrip payload = %q, want %q", rest, payload)
	}
	if got.Zero() {
		t.Fatal("non-empty context reported Zero")
	}
}

func TestTraceUnwrapBareFallback(t *testing.T) {
	// Handlers must accept payloads from senders that never wrapped:
	// no magic means a zero context and the input back untouched.
	for _, raw := range [][]byte{nil, {}, []byte("x"), []byte("plain gob payload with no header")} {
		tc, rest := UnwrapTrace(raw)
		if !tc.Zero() {
			t.Fatalf("bare payload %q produced non-zero ctx %+v", raw, tc)
		}
		if !bytes.Equal(rest, raw) {
			t.Fatalf("bare payload %q came back as %q", raw, rest)
		}
	}
}

func TestTraceUnwrapTruncatedHeader(t *testing.T) {
	full := WrapTrace(TraceCtx{ID: 7, SentUnixNano: 9, Origin: "a-long-node-name"}, []byte("p"))
	// Every truncation of the header region must fall back to a zero
	// context rather than mis-parse.
	for n := 0; n < traceFixedLen+len("a-long-node-name"); n++ {
		tc, rest := UnwrapTrace(full[:n])
		if !tc.Zero() {
			t.Fatalf("truncated to %d bytes produced ctx %+v", n, tc)
		}
		if !bytes.Equal(rest, full[:n]) {
			t.Fatalf("truncated input %d not returned unchanged", n)
		}
	}
}

func TestTraceOriginTruncatedTo255(t *testing.T) {
	long := string(bytes.Repeat([]byte("n"), 300))
	tc, rest := UnwrapTrace(WrapTrace(TraceCtx{ID: 1, Origin: long}, []byte("p")))
	if len(tc.Origin) != 255 {
		t.Fatalf("origin length = %d, want 255", len(tc.Origin))
	}
	if string(rest) != "p" {
		t.Fatalf("payload = %q, want p", rest)
	}
}

func TestTraceHopLatency(t *testing.T) {
	now := time.Unix(100, 0)
	tc := TraceCtx{SentUnixNano: now.Add(-3 * time.Millisecond).UnixNano()}
	if d := tc.HopLatency(now); d != 3*time.Millisecond {
		t.Fatalf("HopLatency = %v, want 3ms", d)
	}
	// Clock skew floors at zero, and an unstamped context reports zero.
	if d := (TraceCtx{SentUnixNano: now.Add(time.Second).UnixNano()}).HopLatency(now); d != 0 {
		t.Fatalf("negative-skew HopLatency = %v, want 0", d)
	}
	if d := (TraceCtx{}).HopLatency(now); d != 0 {
		t.Fatalf("zero-ctx HopLatency = %v, want 0", d)
	}
}
