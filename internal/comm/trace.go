package comm

import (
	"encoding/binary"
	"time"
)

// Binary trace-context header: a fixed prefix spliced in front of a
// message payload so a lifecycle trace ID (and the hop's send time)
// rides any comm transport without changing the envelope format or the
// Peer interface. Senders call WrapTrace on the payload; receivers call
// UnwrapTrace before decoding. A payload without the magic prefix
// unwraps to a zero context and itself, so handlers stay compatible
// with un-wrapped senders.
//
// Layout (big-endian): magic (2B) | version (1B) | trace ID (8B) |
// sent unix-nanos (8B) | origin length (1B) | origin bytes.
const (
	traceMagic0  = 0xC7
	traceMagic1  = 0x5A
	traceVersion = 1

	traceFixedLen = 2 + 1 + 8 + 8 + 1
)

// TraceCtx is the cross-node trace context carried by WrapTrace.
type TraceCtx struct {
	// ID is the lifecycle trace ID rooted on the origin node (0 when the
	// hop is not part of a sampled trace — the header still carries the
	// origin and send time for hop latency accounting).
	ID uint64
	// SentUnixNano is the sender's clock at send time, for per-hop
	// latency on the receiving side.
	SentUnixNano int64
	// Origin names the sending node.
	Origin string
}

// Zero reports whether the context carries nothing.
func (t TraceCtx) Zero() bool { return t.ID == 0 && t.Origin == "" && t.SentUnixNano == 0 }

// HopLatency returns now minus the sender's send stamp (clamped at 0;
// the two clocks are the same machine in tests and NTP-close in
// deployments, so negative skews are floored rather than reported).
func (t TraceCtx) HopLatency(now time.Time) time.Duration {
	if t.SentUnixNano == 0 {
		return 0
	}
	d := now.UnixNano() - t.SentUnixNano
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// WrapTrace prefixes payload with the trace-context header.
func WrapTrace(tc TraceCtx, payload []byte) []byte {
	origin := tc.Origin
	if len(origin) > 255 {
		origin = origin[:255]
	}
	out := make([]byte, traceFixedLen+len(origin)+len(payload))
	out[0], out[1], out[2] = traceMagic0, traceMagic1, traceVersion
	binary.BigEndian.PutUint64(out[3:], tc.ID)
	binary.BigEndian.PutUint64(out[11:], uint64(tc.SentUnixNano))
	out[19] = byte(len(origin))
	copy(out[traceFixedLen:], origin)
	copy(out[traceFixedLen+len(origin):], payload)
	return out
}

// UnwrapTrace splits a wrapped payload into its trace context and the
// original payload. Payloads without the header (or with a truncated
// one) return a zero context and the input unchanged.
func UnwrapTrace(b []byte) (TraceCtx, []byte) {
	if len(b) < traceFixedLen || b[0] != traceMagic0 || b[1] != traceMagic1 || b[2] != traceVersion {
		return TraceCtx{}, b
	}
	olen := int(b[19])
	if len(b) < traceFixedLen+olen {
		return TraceCtx{}, b
	}
	tc := TraceCtx{
		ID:           binary.BigEndian.Uint64(b[3:]),
		SentUnixNano: int64(binary.BigEndian.Uint64(b[11:])),
		Origin:       string(b[traceFixedLen : traceFixedLen+olen]),
	}
	return tc, b[traceFixedLen+olen:]
}
