package comm

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestRequestTimeout proves a hung handler no longer blocks a request
// forever: the peer's request deadline fires and returns ErrTimeout.
func TestRequestTimeout(t *testing.T) {
	mux := NewMux()
	release := make(chan struct{})
	mux.Register("hang", func(p []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(release)

	peer, err := DialTCPOpts(srv.Addr(), PeerOptions{RequestTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	start := time.Now()
	_, err = peer.Request("hang", nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", elapsed)
	}
}

// TestRequestTimeoutLateResponseDropped checks that a response arriving
// after its request timed out is discarded and the connection stays
// usable for later requests.
func TestRequestTimeoutLateResponseDropped(t *testing.T) {
	mux := NewMux()
	var slow atomic.Bool
	slow.Store(true)
	mux.Register("echo", func(p []byte) ([]byte, error) {
		if slow.Load() {
			time.Sleep(150 * time.Millisecond)
		}
		return p, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	peer, err := DialTCPOpts(srv.Addr(), PeerOptions{RequestTimeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()

	if _, err := peer.Request("echo", []byte("a")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	slow.Store(false)
	time.Sleep(200 * time.Millisecond) // let the abandoned response land and be dropped
	resp, err := peer.Request("echo", []byte("b"))
	if err != nil {
		t.Fatalf("request after timeout: %v", err)
	}
	if string(resp) != "b" {
		t.Fatalf("got %q, want %q (late response must not satisfy a newer request)", resp, "b")
	}
}

// TestDialRetryBackoff dials an address that starts listening after the
// first attempt fails; bounded retry should connect.
func TestDialRetryBackoff(t *testing.T) {
	// Reserve an address, then close it so the first dial attempt fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	mux := NewMux()
	mux.RegisterPing()
	started := make(chan *TCPServer, 1)
	go func() {
		time.Sleep(60 * time.Millisecond)
		srv, err := ListenTCP(addr, mux)
		if err == nil {
			started <- srv
		}
	}()

	peer, err := DialTCPOpts(addr, PeerOptions{
		DialAttempts: 10,
		DialBackoff:  20 * time.Millisecond,
		DialTimeout:  time.Second,
	})
	if err != nil {
		t.Fatalf("dial with retry: %v", err)
	}
	defer peer.Close()
	if !Ping(peer, []byte("x")) {
		t.Fatal("ping through retried connection failed")
	}
	srv := <-started
	srv.Close()
}

// TestDialRetryExhausted verifies a bounded retry gives up.
func TestDialRetryExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	_, err = DialTCPOpts(addr, PeerOptions{DialAttempts: 2, DialBackoff: 5 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to dead address succeeded")
	}
}

func TestHealthTracker(t *testing.T) {
	h := NewHealth(3)
	if !h.Healthy("n1") {
		t.Fatal("unknown peer must start healthy")
	}
	boom := errors.New("boom")
	h.Observe("n1", 0, boom)
	h.Observe("n1", 0, boom)
	if !h.Healthy("n1") {
		t.Fatal("2 consecutive failures under threshold 3 must stay healthy")
	}
	h.Observe("n1", 0, boom)
	if h.Healthy("n1") {
		t.Fatal("3 consecutive failures must be unhealthy")
	}
	if got := h.Consecutive("n1"); got != 3 {
		t.Fatalf("Consecutive = %d, want 3", got)
	}
	// One success resets the streak.
	h.Observe("n1", 2*time.Millisecond, nil)
	if !h.Healthy("n1") {
		t.Fatal("success must restore health")
	}
	snap := h.Snapshot()
	if len(snap) != 1 || snap[0].Node != "n1" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].OK != 1 || snap[0].Failed != 3 {
		t.Fatalf("counts = %d ok / %d failed, want 1/3", snap[0].OK, snap[0].Failed)
	}
	if snap[0].EWMANanos == 0 {
		t.Fatal("EWMA not recorded")
	}
	h.Forget("n1")
	if len(h.Snapshot()) != 0 {
		t.Fatal("Forget did not drop the peer")
	}
}

func TestHealthNilSafe(t *testing.T) {
	var h *Health
	h.Observe("x", 0, nil)
	if !h.Healthy("x") || h.Consecutive("x") != 0 || h.Snapshot() != nil {
		t.Fatal("nil tracker must be a healthy no-op")
	}
	h.Forget("x")
}
