package comm

import (
	"strings"
	"testing"
	"time"

	"hfetch/internal/telemetry"
)

// snapValue sums a family's values across label sets.
func snapValue(s telemetry.Snapshot, name string) (total int64, found bool) {
	for _, m := range s.Metrics {
		if m.Name != name {
			continue
		}
		found = true
		if m.Hist != nil {
			total += m.Hist.Count
		} else {
			total += m.Value
		}
	}
	return total, found
}

func TestStatsNilSafe(t *testing.T) {
	var st *Stats
	if got := NewStats(nil); got != nil {
		t.Fatalf("NewStats(nil) = %v, want nil", got)
	}
	st.ObserveDial("p", time.Millisecond)
	st.ObserveRequest("p", time.Millisecond, nil)
	st.ObserveRequest("p", time.Millisecond, ErrTimeout)
	st.DialRetry()
	st.HealthFailure()
	st.AddBytesIn(7)
	st.AddBytesOut(7)
	p := &inprocTestPeer{}
	if got := InstrumentPeer(p, "p", nil); got != Peer(p) {
		t.Fatal("InstrumentPeer with nil stats must return the peer unchanged")
	}
}

type inprocTestPeer struct{ Peer }

func TestTCPStatsCountTraffic(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStats(reg)

	srv, err := ListenTCP("127.0.0.1:0", echoMux())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetStats(st)

	p, err := DialTCPOpts(srv.Addr(), PeerOptions{Stats: st, PeerName: "node1"})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Request("echo", []byte("count me")); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"hfetch_comm_dial_nanos",
		"hfetch_comm_request_nanos",
		"hfetch_comm_bytes_in_total",
		"hfetch_comm_bytes_out_total",
	} {
		v, ok := snapValue(snap, name)
		if !ok {
			t.Fatalf("family %s not registered", name)
		}
		if v <= 0 {
			t.Fatalf("%s = %d after a request, want > 0", name, v)
		}
	}
	// The per-peer label came from PeerName, not the raw address.
	var labeled bool
	for _, m := range snap.Metrics {
		if m.Name == "hfetch_comm_request_nanos" && strings.Contains(m.Labels, `peer="node1"`) {
			labeled = true
		}
	}
	if !labeled {
		t.Fatal(`request histogram missing peer="node1" label`)
	}
}

func TestStatsRequestTimeoutCounter(t *testing.T) {
	reg := telemetry.NewRegistry()
	st := NewStats(reg)
	m := NewMux()
	m.Register("slow", func(p []byte) ([]byte, error) {
		time.Sleep(200 * time.Millisecond)
		return p, nil
	})
	srv, err := ListenTCP("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p, err := DialTCPOpts(srv.Addr(), PeerOptions{
		Stats:          st,
		RequestTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if _, err := p.Request("slow", nil); err == nil {
		t.Fatal("want timeout error")
	}
	if v, _ := snapValue(reg.Snapshot(), "hfetch_comm_timeouts_total"); v != 1 {
		t.Fatalf("hfetch_comm_timeouts_total = %d, want 1", v)
	}
}
