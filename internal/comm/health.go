package comm

import (
	"sort"
	"sync"
	"time"
)

// DefaultHealthThreshold is the consecutive-failure count after which a
// peer is reported unhealthy.
const DefaultHealthThreshold = 3

// PeerHealth is one peer's observed request health.
type PeerHealth struct {
	Node string
	// OK and Failed count completed observations.
	OK, Failed int64
	// Consecutive counts failures since the last success.
	Consecutive int
	// LastErr is the most recent failure's message ("" after a success).
	LastErr string
	// LastChange is when the healthy/unhealthy verdict last flipped.
	LastChange time.Time
	// EWMANanos is the exponentially weighted moving average of
	// successful request latency (0 until the first success).
	EWMANanos int64
}

// Health tracks per-peer request outcomes so higher layers (the cluster
// membership) can mark a slow or dead peer suspect instead of waiting on
// it. It is transport-agnostic: callers observe every request they issue.
type Health struct {
	threshold int
	stats     *Stats // optional; counts failed observations

	mu    sync.Mutex
	peers map[string]*PeerHealth
}

// SetStats attaches transport instrumentation: every failed observation
// also bumps hfetch_comm_health_failures_total. Nil-safe; call before
// traffic.
func (h *Health) SetStats(st *Stats) {
	if h == nil {
		return
	}
	h.stats = st
}

// NewHealth returns a tracker that reports a peer unhealthy after
// threshold consecutive failures (<= 0 uses DefaultHealthThreshold).
func NewHealth(threshold int) *Health {
	if threshold <= 0 {
		threshold = DefaultHealthThreshold
	}
	return &Health{threshold: threshold, peers: make(map[string]*PeerHealth)}
}

// Observe records one request outcome for node; d is the request latency
// (meaningful on success, ignored on failure). Nil-safe.
func (h *Health) Observe(node string, d time.Duration, err error) {
	if h == nil {
		return
	}
	if err != nil {
		h.stats.HealthFailure()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peers[node]
	if ph == nil {
		ph = &PeerHealth{Node: node, LastChange: time.Now()}
		h.peers[node] = ph
	}
	wasHealthy := ph.Consecutive < h.threshold
	if err != nil {
		ph.Failed++
		ph.Consecutive++
		ph.LastErr = err.Error()
	} else {
		ph.OK++
		ph.Consecutive = 0
		ph.LastErr = ""
		// EWMA with alpha = 1/8: smooth enough to ride out one slow
		// request, fresh enough to follow a degrading link.
		if ph.EWMANanos == 0 {
			ph.EWMANanos = int64(d)
		} else {
			ph.EWMANanos += (int64(d) - ph.EWMANanos) / 8
		}
	}
	if wasHealthy != (ph.Consecutive < h.threshold) {
		ph.LastChange = time.Now()
	}
}

// Healthy reports whether node is under the consecutive-failure
// threshold. Unknown peers are healthy (innocent until observed).
// Nil-safe: a nil tracker reports every peer healthy.
func (h *Health) Healthy(node string) bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peers[node]
	return ph == nil || ph.Consecutive < h.threshold
}

// Consecutive returns node's current consecutive-failure count.
func (h *Health) Consecutive(node string) int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph := h.peers[node]
	if ph == nil {
		return 0
	}
	return ph.Consecutive
}

// Threshold returns the consecutive-failure count at which a peer is
// reported unhealthy. Nil-safe.
func (h *Health) Threshold() int {
	if h == nil {
		return DefaultHealthThreshold
	}
	return h.threshold
}

// Forget drops node's history (a departed member).
func (h *Health) Forget(node string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.peers, node)
}

// Snapshot returns every tracked peer's health, sorted by node name.
func (h *Health) Snapshot() []PeerHealth {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]PeerHealth, 0, len(h.peers))
	for _, ph := range h.peers {
		out = append(out, *ph)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
