// Package comm is the node-to-node communicator of HFetch. The paper
// uses Mellanox libibverbs (RDMA/RoCE) for both metadata calls (segment
// locations, mappings) and data movement (fetching segments from remote
// tiers). This implementation provides the same request/response and
// one-way messaging over two interchangeable transports:
//
//   - TCP with length-framed gob envelopes and request multiplexing over
//     a persistent connection (the cross-process deployment), and
//   - an in-process loopback (the emulated-cluster deployment used by
//     the experiment harness, where "nodes" share an address space).
//
// Handlers are registered on a Mux by message type; requests carry opaque
// payloads so higher layers (the distributed hashmap, the I/O clients)
// define their own encodings.
package comm

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("comm: transport closed")

// ErrTimeout is returned by Request when the peer's request deadline
// expires before a response arrives. The request may still execute on
// the remote node; callers must treat timed-out operations as
// indeterminate.
var ErrTimeout = errors.New("comm: request timed out")

// Handler processes one message and returns a response payload.
// One-way notifications ignore the returned payload.
type Handler func(payload []byte) ([]byte, error)

// Mux routes incoming messages to handlers by type.
type Mux struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewMux returns an empty handler table.
func NewMux() *Mux {
	return &Mux{handlers: make(map[string]Handler)}
}

// Register installs h for message type t, replacing any previous handler.
func (m *Mux) Register(t string, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[t] = h
}

// Dispatch invokes the handler for type t.
func (m *Mux) Dispatch(t string, payload []byte) ([]byte, error) {
	m.mu.RLock()
	h := m.handlers[t]
	m.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("comm: no handler for message type %q", t)
	}
	return h(payload)
}

// Peer is a connection to one remote node.
type Peer interface {
	// Request sends a message and waits for the response.
	Request(msgType string, payload []byte) ([]byte, error)
	// Notify sends a one-way message.
	Notify(msgType string, payload []byte) error
	// Close releases the connection.
	Close() error
}

// remoteError wraps an error string returned by a remote handler.
type remoteError struct{ msg string }

func (e remoteError) Error() string { return "comm: remote: " + e.msg }

// IsRemote reports whether err originated in a remote handler.
func IsRemote(err error) bool {
	var re remoteError
	return errors.As(err, &re)
}

// MsgPing is a liveness probe every Mux answers implicitly via
// RegisterPing; servers that want liveness checks call it once.
const MsgPing = "comm.ping"

// RegisterPing installs the standard liveness handler: it echoes the
// payload, so callers can verify round-trip integrity and measure RTT.
func (m *Mux) RegisterPing() {
	m.Register(MsgPing, func(p []byte) ([]byte, error) { return p, nil })
}

// Ping round-trips a probe through peer and reports whether the echo
// matched.
func Ping(p Peer, payload []byte) bool {
	resp, err := p.Request(MsgPing, payload)
	if err != nil {
		return false
	}
	if len(resp) != len(payload) {
		return false
	}
	for i := range resp {
		if resp[i] != payload[i] {
			return false
		}
	}
	return true
}
