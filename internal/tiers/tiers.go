// Package tiers implements the prefetching cache stores that make up the
// deep memory and storage hierarchy (DMSH): a RAM allocation, a
// node-local NVMe partition, and a shared burst-buffer lease. Each Store
// is a capacity-tracked, exclusive segment cache charged against a
// devsim.Device; a Hierarchy orders stores fast→slow and is what the
// hierarchical data placement engine walks.
//
// Payloads are reference-counted (see Buf): the store holds one
// residency reference, readers pin resident bytes with View/ReadVec and
// serve them without copying, and eviction or overwrite merely drops the
// store's reference — the last releaser frees the buffer back to the
// slab allocator (slab.go), so a pinned buffer is never recycled under a
// reader.
package tiers

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
)

// ErrNoSpace is returned by Put when a segment does not fit in the
// store's remaining capacity.
var ErrNoSpace = errors.New("tiers: insufficient capacity")

// ErrNotFound is returned when a requested segment is not resident.
var ErrNotFound = errors.New("tiers: segment not resident")

// Store is one tier's prefetching cache. Safe for concurrent use.
type Store struct {
	name     string
	dev      *devsim.Device
	capacity int64

	mu   sync.RWMutex
	data map[seg.ID]*Buf
	used int64

	hits   int64
	misses int64
}

// NewStore creates a store named name with the given byte capacity whose
// accesses are charged to dev (nil dev = free accesses).
func NewStore(name string, capacity int64, dev *devsim.Device) *Store {
	return &Store{name: name, dev: dev, capacity: capacity, data: make(map[seg.ID]*Buf)}
}

// Name returns the tier name (e.g. "ram").
func (s *Store) Name() string { return s.name }

// Device returns the tier's device model (may be nil).
func (s *Store) Device() *devsim.Device { return s.dev }

// Capacity returns the configured capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes currently resident.
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Free returns the remaining capacity in bytes.
func (s *Store) Free() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.capacity - s.used
}

// Len returns the number of resident segments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Fits reports whether a payload of size bytes would fit right now.
func (s *Store) Fits(size int64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used+size <= s.capacity
}

// Put stores a segment payload, charging the device for the write. The
// payload is copied (into a slab buffer). Returns ErrNoSpace when it
// does not fit; replacing an existing segment accounts only the size
// delta.
func (s *Store) Put(id seg.ID, payload []byte) error {
	cp := SlabGet(int64(len(payload)))
	copy(cp, payload)
	if err := s.PutOwned(id, cp); err != nil {
		SlabPut(cp)
		return err
	}
	return nil
}

// PutOwned stores a segment payload without copying: the store takes
// ownership of payload, so the caller must not retain, mutate or free
// the slice afterwards. This is the data-movement hot path — ioclient's
// fetch chain hands freshly slab-drawn buffers straight in — where Put's
// defensive copy would double the bytes touched. Accounting and device
// charging match Put exactly.
func (s *Store) PutOwned(id seg.ID, payload []byte) error {
	return s.PutBuf(id, NewBuf(payload))
}

// PutBuf installs a reference-counted payload, adopting the caller's
// reference (on success the store owns it; on error the caller still
// does). Transfers between tiers move the Buf itself so a reader pinned
// through the move keeps one coherent refcount.
func (s *Store) PutBuf(id seg.ID, b *Buf) error {
	size := b.Len()
	s.mu.Lock()
	old, had := s.data[id]
	delta := size
	if had {
		delta -= old.Len()
	}
	if s.used+delta > s.capacity {
		free := s.capacity - s.used
		s.mu.Unlock()
		return fmt.Errorf("%w: %s needs %d, free %d", ErrNoSpace, s.name, size, free)
	}
	s.data[id] = b
	s.used += delta
	s.mu.Unlock()
	if had {
		// The store's reference to the replaced payload; a pinned reader
		// keeps the old bytes alive until its own release.
		old.Release()
	}
	if s.dev != nil {
		s.dev.Access(size)
	}
	return nil
}

// Get returns a copy of the segment payload, charging the device for the
// full segment read.
func (s *Store) Get(id seg.ID) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.data[id]
	if ok {
		b.Retain()
	}
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	p := b.Bytes()
	cp := make([]byte, len(p))
	copy(cp, p)
	CountCopied(int64(len(p)))
	b.Release()
	if s.dev != nil {
		s.dev.Access(int64(len(cp)))
	}
	return cp, nil
}

// ReadAt copies min(len(p), len(seg)-off) bytes from offset off within
// the resident segment into p, charging the device for the bytes read.
func (s *Store) ReadAt(id seg.ID, off int64, p []byte) (int, time.Duration, error) {
	s.mu.RLock()
	b, ok := s.data[id]
	if ok {
		b.Retain()
	}
	s.mu.RUnlock()
	if !ok {
		return 0, 0, ErrNotFound
	}
	data := b.Bytes()
	if off < 0 || off >= int64(len(data)) {
		b.Release()
		return 0, 0, fmt.Errorf("tiers: offset %d out of segment of %d bytes", off, len(data))
	}
	n := copy(p, data[off:])
	CountCopied(int64(n))
	b.Release()
	var cost time.Duration
	if s.dev != nil {
		cost = s.dev.Access(int64(n))
	}
	return n, cost, nil
}

// View pins the resident payload of id and returns it without copying.
// The caller reads via Bytes and must Release exactly once; the payload
// stays valid — even across eviction, overwrite or file invalidation —
// until that release. No device charge is made here: callers charge the
// bytes they actually serve (see ChargeRead).
func (s *Store) View(id seg.ID) (*Buf, bool) {
	s.mu.RLock()
	b, ok := s.data[id]
	if ok {
		b.Retain()
	}
	s.mu.RUnlock()
	return b, ok
}

// ReadVec pins every resident segment of ids under ONE lock acquisition:
// out[i] receives the pinned view for ids[i], or stays nil when the
// segment is not resident. The device is charged once for the total
// pinned bytes — one vectored access instead of len(ids) seeks — which
// is the lock- and device-level half of the zero-copy range read. The
// caller must Release every non-nil view exactly once.
func (s *Store) ReadVec(ids []seg.ID, out []*Buf) (found int, bytes int64) {
	if len(ids) > len(out) {
		ids = ids[:len(out)]
	}
	s.mu.RLock()
	for i, id := range ids {
		if b, ok := s.data[id]; ok {
			b.Retain()
			out[i] = b
			found++
			bytes += b.Len()
		}
	}
	s.mu.RUnlock()
	if found > 0 && s.dev != nil {
		s.dev.Access(bytes)
	}
	return found, bytes
}

// ChargeRead charges the device for n bytes served from a pinned view
// (View does not charge; ReadVec charges its whole batch up front).
func (s *Store) ChargeRead(n int64) time.Duration {
	if s.dev == nil || n <= 0 {
		return 0
	}
	return s.dev.Access(n)
}

// TakeBuf removes the segment and returns its payload with the store's
// reference transferred to the caller (used when demoting: the read cost
// is charged, the space is freed atomically, and a reader pinned through
// the move keeps the same refcount). The caller must either install the
// Buf elsewhere (PutBuf) or Release it.
func (s *Store) TakeBuf(id seg.ID) (*Buf, error) {
	s.mu.Lock()
	b, ok := s.data[id]
	if ok {
		delete(s.data, id)
		s.used -= b.Len()
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if s.dev != nil {
		s.dev.Access(b.Len())
	}
	return b, nil
}

// Take removes the segment and returns its payload as a raw slice. When
// the store held the only reference the slice is handed over without
// copying; a payload pinned by a concurrent reader is copied out so the
// caller's exclusive ownership holds either way. Movement paths should
// prefer TakeBuf, which never copies.
func (s *Store) Take(id seg.ID) ([]byte, error) {
	b, err := s.TakeBuf(id)
	if err != nil {
		return nil, err
	}
	if b.refs.CompareAndSwap(1, 0) {
		// Sole owner: unwrap instead of going through Release, which
		// would hand the bytes back to the slab.
		data := b.data
		b.data = nil
		return data, nil
	}
	cp := make([]byte, len(b.Bytes()))
	copy(cp, b.Bytes())
	b.Release()
	return cp, nil
}

// Delete drops a segment without charging the device (metadata-only
// eviction, e.g. invalidation after a write event). Reports whether the
// segment was resident. A pinned payload survives until its readers
// release; only the store's reference — and the capacity charge — go
// now.
func (s *Store) Delete(id seg.ID) bool {
	s.mu.Lock()
	b, ok := s.data[id]
	if ok {
		delete(s.data, id)
		s.used -= b.Len()
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	b.Release()
	return true
}

// DeleteFile drops every resident segment of the named file and returns
// how many were dropped.
func (s *Store) DeleteFile(file string) int {
	s.mu.Lock()
	var dropped []*Buf
	for id, b := range s.data {
		if id.File == file {
			delete(s.data, id)
			s.used -= b.Len()
			dropped = append(dropped, b)
		}
	}
	s.mu.Unlock()
	for _, b := range dropped {
		b.Release()
	}
	return len(dropped)
}

// Has reports whether the segment is resident.
func (s *Store) Has(id seg.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[id]
	return ok
}

// SizeOf returns the resident payload size of id, or 0 when absent.
func (s *Store) SizeOf(id seg.ID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if b, ok := s.data[id]; ok {
		return b.Len()
	}
	return 0
}

// Keys returns the IDs of all resident segments (unordered).
func (s *Store) Keys() []seg.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]seg.ID, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	return out
}

// Clear removes everything without device charges.
func (s *Store) Clear() {
	s.mu.Lock()
	old := s.data
	s.data = make(map[seg.ID]*Buf)
	s.used = 0
	s.mu.Unlock()
	for _, b := range old {
		b.Release()
	}
}

// Hierarchy is an ordered list of tier stores, fastest first. The PFS is
// not a member: it is the origin below the last tier.
type Hierarchy struct {
	stores []*Store
}

// NewHierarchy builds a hierarchy from stores ordered fastest first.
func NewHierarchy(stores ...*Store) *Hierarchy {
	return &Hierarchy{stores: stores}
}

// Stores returns the tiers in order, fastest first.
func (h *Hierarchy) Stores() []*Store { return h.stores }

// Len returns the number of tiers.
func (h *Hierarchy) Len() int { return len(h.stores) }

// Tier returns the i-th store (0 = fastest), nil when out of range.
func (h *Hierarchy) Tier(i int) *Store {
	if i < 0 || i >= len(h.stores) {
		return nil
	}
	return h.stores[i]
}

// ByName returns the store with the given name and its index, or nil, -1.
func (h *Hierarchy) ByName(name string) (*Store, int) {
	for i, s := range h.stores {
		if s.name == name {
			return s, i
		}
	}
	return nil, -1
}

// Locate finds which tier holds id; returns the index or -1.
func (h *Hierarchy) Locate(id seg.ID) int {
	for i, s := range h.stores {
		if s.Has(id) {
			return i
		}
	}
	return -1
}

// ExclusiveOK verifies the exclusive-cache invariant: no segment resident
// in more than one tier. It returns the first violating ID, if any.
func (h *Hierarchy) ExclusiveOK() (seg.ID, bool) {
	seen := make(map[seg.ID]struct{})
	for _, s := range h.stores {
		for _, id := range s.Keys() {
			if _, dup := seen[id]; dup {
				return id, false
			}
			seen[id] = struct{}{}
		}
	}
	return seg.ID{}, true
}

// TotalUsed returns bytes resident across all tiers.
func (h *Hierarchy) TotalUsed() int64 {
	var t int64
	for _, s := range h.stores {
		t += s.Used()
	}
	return t
}

// DeleteFile invalidates a file across every tier, returning the number
// of segments dropped.
func (h *Hierarchy) DeleteFile(file string) int {
	n := 0
	for _, s := range h.stores {
		n += s.DeleteFile(file)
	}
	return n
}
