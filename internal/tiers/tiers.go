// Package tiers implements the prefetching cache stores that make up the
// deep memory and storage hierarchy (DMSH): a RAM allocation, a
// node-local NVMe partition, and a shared burst-buffer lease. Each Store
// is a capacity-tracked, exclusive segment cache charged against a
// devsim.Device; a Hierarchy orders stores fast→slow and is what the
// hierarchical data placement engine walks.
package tiers

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
)

// ErrNoSpace is returned by Put when a segment does not fit in the
// store's remaining capacity.
var ErrNoSpace = errors.New("tiers: insufficient capacity")

// ErrNotFound is returned when a requested segment is not resident.
var ErrNotFound = errors.New("tiers: segment not resident")

// Store is one tier's prefetching cache. Safe for concurrent use.
type Store struct {
	name     string
	dev      *devsim.Device
	capacity int64

	mu   sync.RWMutex
	data map[seg.ID][]byte
	used int64

	hits   int64
	misses int64
}

// NewStore creates a store named name with the given byte capacity whose
// accesses are charged to dev (nil dev = free accesses).
func NewStore(name string, capacity int64, dev *devsim.Device) *Store {
	return &Store{name: name, dev: dev, capacity: capacity, data: make(map[seg.ID][]byte)}
}

// Name returns the tier name (e.g. "ram").
func (s *Store) Name() string { return s.name }

// Device returns the tier's device model (may be nil).
func (s *Store) Device() *devsim.Device { return s.dev }

// Capacity returns the configured capacity in bytes.
func (s *Store) Capacity() int64 { return s.capacity }

// Used returns the bytes currently resident.
func (s *Store) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// Free returns the remaining capacity in bytes.
func (s *Store) Free() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.capacity - s.used
}

// Len returns the number of resident segments.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Fits reports whether a payload of size bytes would fit right now.
func (s *Store) Fits(size int64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used+size <= s.capacity
}

// Put stores a segment payload, charging the device for the write. The
// payload is copied. Returns ErrNoSpace when it does not fit; replacing
// an existing segment accounts only the size delta.
func (s *Store) Put(id seg.ID, payload []byte) error {
	size := int64(len(payload))
	s.mu.Lock()
	old, had := s.data[id]
	delta := size
	if had {
		delta -= int64(len(old))
	}
	if s.used+delta > s.capacity {
		free := s.capacity - s.used
		s.mu.Unlock()
		return fmt.Errorf("%w: %s needs %d, free %d", ErrNoSpace, s.name, size, free)
	}
	cp := make([]byte, size)
	copy(cp, payload)
	s.data[id] = cp
	s.used += delta
	s.mu.Unlock()
	if s.dev != nil {
		s.dev.Access(size)
	}
	return nil
}

// PutOwned stores a segment payload without copying: the store takes
// ownership of payload, so the caller must not retain or mutate the
// slice afterwards. This is the data-movement hot path — ioclient's
// fetch/transfer chain hands freshly read (or Taken) buffers straight
// in — where Put's defensive copy would double the bytes touched.
// Accounting and device charging match Put exactly.
func (s *Store) PutOwned(id seg.ID, payload []byte) error {
	size := int64(len(payload))
	s.mu.Lock()
	old, had := s.data[id]
	delta := size
	if had {
		delta -= int64(len(old))
	}
	if s.used+delta > s.capacity {
		free := s.capacity - s.used
		s.mu.Unlock()
		return fmt.Errorf("%w: %s needs %d, free %d", ErrNoSpace, s.name, size, free)
	}
	s.data[id] = payload
	s.used += delta
	s.mu.Unlock()
	if s.dev != nil {
		s.dev.Access(size)
	}
	return nil
}

// Get returns a copy of the segment payload, charging the device for the
// full segment read.
func (s *Store) Get(id seg.ID) ([]byte, error) {
	s.mu.RLock()
	p, ok := s.data[id]
	s.mu.RUnlock()
	if !ok {
		return nil, ErrNotFound
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	if s.dev != nil {
		s.dev.Access(int64(len(p)))
	}
	return cp, nil
}

// ReadAt copies min(len(p), len(seg)-off) bytes from offset off within
// the resident segment into p, charging the device for the bytes read.
func (s *Store) ReadAt(id seg.ID, off int64, p []byte) (int, time.Duration, error) {
	s.mu.RLock()
	data, ok := s.data[id]
	s.mu.RUnlock()
	if !ok {
		return 0, 0, ErrNotFound
	}
	if off < 0 || off >= int64(len(data)) {
		return 0, 0, fmt.Errorf("tiers: offset %d out of segment of %d bytes", off, len(data))
	}
	n := copy(p, data[off:])
	var cost time.Duration
	if s.dev != nil {
		cost = s.dev.Access(int64(n))
	}
	return n, cost, nil
}

// Take removes and returns the payload (used when demoting: the read
// cost is charged, the space is freed atomically).
func (s *Store) Take(id seg.ID) ([]byte, error) {
	s.mu.Lock()
	p, ok := s.data[id]
	if ok {
		delete(s.data, id)
		s.used -= int64(len(p))
	}
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	if s.dev != nil {
		s.dev.Access(int64(len(p)))
	}
	return p, nil
}

// Delete drops a segment without charging the device (metadata-only
// eviction, e.g. invalidation after a write event). Reports whether the
// segment was resident.
func (s *Store) Delete(id seg.ID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.data[id]
	if !ok {
		return false
	}
	delete(s.data, id)
	s.used -= int64(len(p))
	return true
}

// DeleteFile drops every resident segment of the named file and returns
// how many were dropped.
func (s *Store) DeleteFile(file string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for id, p := range s.data {
		if id.File == file {
			delete(s.data, id)
			s.used -= int64(len(p))
			n++
		}
	}
	return n
}

// Has reports whether the segment is resident.
func (s *Store) Has(id seg.ID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.data[id]
	return ok
}

// SizeOf returns the resident payload size of id, or 0 when absent.
func (s *Store) SizeOf(id seg.ID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.data[id]))
}

// Keys returns the IDs of all resident segments (unordered).
func (s *Store) Keys() []seg.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]seg.ID, 0, len(s.data))
	for id := range s.data {
		out = append(out, id)
	}
	return out
}

// Clear removes everything without device charges.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = make(map[seg.ID][]byte)
	s.used = 0
}

// Hierarchy is an ordered list of tier stores, fastest first. The PFS is
// not a member: it is the origin below the last tier.
type Hierarchy struct {
	stores []*Store
}

// NewHierarchy builds a hierarchy from stores ordered fastest first.
func NewHierarchy(stores ...*Store) *Hierarchy {
	return &Hierarchy{stores: stores}
}

// Stores returns the tiers in order, fastest first.
func (h *Hierarchy) Stores() []*Store { return h.stores }

// Len returns the number of tiers.
func (h *Hierarchy) Len() int { return len(h.stores) }

// Tier returns the i-th store (0 = fastest), nil when out of range.
func (h *Hierarchy) Tier(i int) *Store {
	if i < 0 || i >= len(h.stores) {
		return nil
	}
	return h.stores[i]
}

// ByName returns the store with the given name and its index, or nil, -1.
func (h *Hierarchy) ByName(name string) (*Store, int) {
	for i, s := range h.stores {
		if s.name == name {
			return s, i
		}
	}
	return nil, -1
}

// Locate finds which tier holds id; returns the index or -1.
func (h *Hierarchy) Locate(id seg.ID) int {
	for i, s := range h.stores {
		if s.Has(id) {
			return i
		}
	}
	return -1
}

// ExclusiveOK verifies the exclusive-cache invariant: no segment resident
// in more than one tier. It returns the first violating ID, if any.
func (h *Hierarchy) ExclusiveOK() (seg.ID, bool) {
	seen := make(map[seg.ID]struct{})
	for _, s := range h.stores {
		for _, id := range s.Keys() {
			if _, dup := seen[id]; dup {
				return id, false
			}
			seen[id] = struct{}{}
		}
	}
	return seg.ID{}, true
}

// TotalUsed returns bytes resident across all tiers.
func (h *Hierarchy) TotalUsed() int64 {
	var t int64
	for _, s := range h.stores {
		t += s.Used()
	}
	return t
}

// DeleteFile invalidates a file across every tier, returning the number
// of segments dropped.
func (h *Hierarchy) DeleteFile(file string) int {
	n := 0
	for _, s := range h.stores {
		n += s.DeleteFile(file)
	}
	return n
}
