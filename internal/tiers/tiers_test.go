package tiers

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
)

func id(f string, i int64) seg.ID { return seg.ID{File: f, Index: i} }

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore("ram", 1024, nil)
	payload := []byte("hello segment")
	if err := s.Put(id("f", 0), payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id("f", 0))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q %v", got, err)
	}
}

func TestPutCopiesPayload(t *testing.T) {
	s := NewStore("ram", 1024, nil)
	payload := []byte{1, 2, 3}
	s.Put(id("f", 0), payload)
	payload[0] = 99
	got, _ := s.Get(id("f", 0))
	if got[0] != 1 {
		t.Fatal("Put must copy the payload")
	}
}

func TestGetCopiesPayload(t *testing.T) {
	s := NewStore("ram", 1024, nil)
	s.Put(id("f", 0), []byte{1, 2, 3})
	got, _ := s.Get(id("f", 0))
	got[0] = 99
	again, _ := s.Get(id("f", 0))
	if again[0] != 1 {
		t.Fatal("Get must return a copy")
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := NewStore("ram", 10, nil)
	if err := s.Put(id("f", 0), make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	err := s.Put(id("f", 1), make([]byte, 8))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if s.Used() != 8 || s.Free() != 2 {
		t.Fatalf("Used/Free = %d/%d, want 8/2", s.Used(), s.Free())
	}
}

func TestReplaceAccountsDelta(t *testing.T) {
	s := NewStore("ram", 10, nil)
	s.Put(id("f", 0), make([]byte, 8))
	if err := s.Put(id("f", 0), make([]byte, 10)); err != nil {
		t.Fatalf("replacing with delta within capacity failed: %v", err)
	}
	if s.Used() != 10 {
		t.Fatalf("Used = %d, want 10", s.Used())
	}
}

func TestReadAt(t *testing.T) {
	s := NewStore("ram", 1024, nil)
	s.Put(id("f", 0), []byte("0123456789"))
	p := make([]byte, 4)
	n, _, err := s.ReadAt(id("f", 0), 3, p)
	if err != nil || n != 4 || string(p) != "3456" {
		t.Fatalf("ReadAt = %d %q %v", n, p, err)
	}
	// Short read at segment end.
	n, _, err = s.ReadAt(id("f", 0), 8, p)
	if err != nil || n != 2 || string(p[:n]) != "89" {
		t.Fatalf("short ReadAt = %d %q %v", n, p[:n], err)
	}
	if _, _, err := s.ReadAt(id("f", 0), 100, p); err == nil {
		t.Fatal("ReadAt beyond segment must error")
	}
	if _, _, err := s.ReadAt(id("x", 0), 0, p); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing segment err = %v, want ErrNotFound", err)
	}
}

func TestTakeFreesSpace(t *testing.T) {
	s := NewStore("ram", 10, nil)
	s.Put(id("f", 0), make([]byte, 10))
	p, err := s.Take(id("f", 0))
	if err != nil || len(p) != 10 {
		t.Fatalf("Take = %d bytes %v", len(p), err)
	}
	if s.Used() != 0 || s.Has(id("f", 0)) {
		t.Fatal("Take must free space and remove the segment")
	}
	if _, err := s.Take(id("f", 0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Take err = %v, want ErrNotFound", err)
	}
}

func TestDeleteAndDeleteFile(t *testing.T) {
	s := NewStore("ram", 100, nil)
	s.Put(id("a", 0), make([]byte, 10))
	s.Put(id("a", 1), make([]byte, 10))
	s.Put(id("b", 0), make([]byte, 10))
	if !s.Delete(id("a", 0)) || s.Delete(id("a", 0)) {
		t.Fatal("Delete semantics wrong")
	}
	if n := s.DeleteFile("a"); n != 1 {
		t.Fatalf("DeleteFile = %d, want 1", n)
	}
	if s.Used() != 10 || s.Len() != 1 {
		t.Fatalf("after deletes Used=%d Len=%d, want 10/1", s.Used(), s.Len())
	}
}

func TestSizeOfAndKeys(t *testing.T) {
	s := NewStore("ram", 100, nil)
	s.Put(id("a", 0), make([]byte, 7))
	if s.SizeOf(id("a", 0)) != 7 || s.SizeOf(id("a", 1)) != 0 {
		t.Fatal("SizeOf wrong")
	}
	if len(s.Keys()) != 1 {
		t.Fatal("Keys wrong")
	}
}

func TestClear(t *testing.T) {
	s := NewStore("ram", 100, nil)
	s.Put(id("a", 0), make([]byte, 7))
	s.Clear()
	if s.Used() != 0 || s.Len() != 0 {
		t.Fatal("Clear must empty the store")
	}
}

func TestDeviceChargedOnPutAndRead(t *testing.T) {
	dev := devsim.New(devsim.Profile{Name: "x", Latency: time.Millisecond}, 1)
	s := NewStore("ram", 1024, dev)
	s.Put(id("f", 0), make([]byte, 100))
	s.Get(id("f", 0))
	ops, bytesMoved, _ := dev.Stats()
	if ops != 2 || bytesMoved != 200 {
		t.Fatalf("device stats = %d ops %d bytes, want 2/200", ops, bytesMoved)
	}
}

func TestHierarchyLocateAndByName(t *testing.T) {
	ram := NewStore("ram", 100, nil)
	nvme := NewStore("nvme", 100, nil)
	h := NewHierarchy(ram, nvme)
	nvme.Put(id("f", 3), make([]byte, 5))
	if got := h.Locate(id("f", 3)); got != 1 {
		t.Fatalf("Locate = %d, want 1", got)
	}
	if got := h.Locate(id("f", 9)); got != -1 {
		t.Fatalf("Locate missing = %d, want -1", got)
	}
	st, i := h.ByName("nvme")
	if st != nvme || i != 1 {
		t.Fatal("ByName wrong")
	}
	if st, i := h.ByName("zzz"); st != nil || i != -1 {
		t.Fatal("ByName missing wrong")
	}
	if h.Tier(0) != ram || h.Tier(5) != nil || h.Tier(-1) != nil {
		t.Fatal("Tier indexing wrong")
	}
}

func TestHierarchyExclusiveOK(t *testing.T) {
	ram := NewStore("ram", 100, nil)
	nvme := NewStore("nvme", 100, nil)
	h := NewHierarchy(ram, nvme)
	ram.Put(id("f", 0), make([]byte, 1))
	nvme.Put(id("f", 1), make([]byte, 1))
	if _, ok := h.ExclusiveOK(); !ok {
		t.Fatal("distinct segments must satisfy exclusivity")
	}
	nvme.Put(id("f", 0), make([]byte, 1))
	bad, ok := h.ExclusiveOK()
	if ok || bad != id("f", 0) {
		t.Fatalf("ExclusiveOK = %v %v, want violation on f#0", bad, ok)
	}
}

func TestHierarchyDeleteFileAndTotals(t *testing.T) {
	ram := NewStore("ram", 100, nil)
	nvme := NewStore("nvme", 100, nil)
	h := NewHierarchy(ram, nvme)
	ram.Put(id("f", 0), make([]byte, 4))
	nvme.Put(id("f", 1), make([]byte, 6))
	nvme.Put(id("g", 0), make([]byte, 2))
	if h.TotalUsed() != 12 {
		t.Fatalf("TotalUsed = %d, want 12", h.TotalUsed())
	}
	if n := h.DeleteFile("f"); n != 2 {
		t.Fatalf("DeleteFile = %d, want 2", n)
	}
	if h.TotalUsed() != 2 {
		t.Fatalf("TotalUsed after = %d, want 2", h.TotalUsed())
	}
}

func TestConcurrentPutGetDelete(t *testing.T) {
	s := NewStore("ram", 1<<20, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				sid := id("f", int64(rng.Intn(64)))
				switch rng.Intn(3) {
				case 0:
					s.Put(sid, make([]byte, rng.Intn(64)+1))
				case 1:
					s.Get(sid)
				default:
					s.Delete(sid)
				}
			}
		}(w)
	}
	wg.Wait()
	// Accounting invariant: used equals sum of resident sizes.
	var sum int64
	for _, k := range s.Keys() {
		sum += s.SizeOf(k)
	}
	if sum != s.Used() {
		t.Fatalf("accounting drift: sum=%d used=%d", sum, s.Used())
	}
}

// Property: used never exceeds capacity under arbitrary puts.
func TestUsedNeverExceedsCapacity(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewStore("ram", 4096, nil)
		for i, sz := range sizes {
			s.Put(id("f", int64(i)), make([]byte, int(sz%512)))
		}
		return s.Used() <= s.Capacity()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPutOwnedTakesOwnership(t *testing.T) {
	// PutOwned stores the slice itself (no defensive copy): a caller
	// mutation after the handoff is visible, which is exactly the
	// contract — the mover's fetch/transfer path hands over buffers it
	// never touches again.
	s := NewStore("ram", 1024, nil)
	payload := []byte{1, 2, 3}
	if err := s.PutOwned(id("f", 0), payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 99
	got, _ := s.Get(id("f", 0))
	if got[0] != 99 {
		t.Fatal("PutOwned must take ownership of the slice, not copy it")
	}
}

func TestPutOwnedAccountingMatchesPut(t *testing.T) {
	s := NewStore("ram", 100, nil)
	if err := s.PutOwned(id("f", 0), make([]byte, 60)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 60 {
		t.Fatalf("Used = %d, want 60", s.Used())
	}
	// Replacing charges only the size delta.
	if err := s.PutOwned(id("f", 0), make([]byte, 80)); err != nil {
		t.Fatal(err)
	}
	if s.Used() != 80 {
		t.Fatalf("Used after replace = %d, want 80", s.Used())
	}
	err := s.PutOwned(id("f", 1), make([]byte, 40))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	if s.Used() != 80 {
		t.Fatalf("failed PutOwned changed accounting: Used = %d", s.Used())
	}
}

func TestPutOwnedChargesDevice(t *testing.T) {
	dev := devsim.New(devsim.Profile{Name: "ram", BytesPerSec: 1 << 40, Channels: 1}, 1)
	s := NewStore("ram", 1024, dev)
	if err := s.PutOwned(id("f", 0), make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if ops, nbytes, _ := dev.Stats(); ops != 1 || nbytes != 64 {
		t.Fatalf("device saw %d ops / %d bytes, want 1 / 64", ops, nbytes)
	}
}
