package tiers

import (
	"sync"
	"sync/atomic"

	"hfetch/internal/invariant"
)

// The slab allocator hands out segment-sized []byte buffers from
// size-classed free lists so the data-movement and read hot paths stop
// allocating (and the GC stops scanning) one fresh payload per fetch.
// Classes are powers of two from slabMinClass to slabMaxClass; a request
// is rounded up to its class and served from that class's sync.Pool. A
// request larger than the largest class falls back to a plain make and
// is counted as a miss — the buffer is still usable, it just never
// returns to a pool.
//
// SlabPut accepts any buffer: only buffers whose capacity is exactly a
// class size are pooled (that is every buffer SlabGet handed out), the
// rest are dropped for the GC. This makes provenance tracking
// unnecessary — callers free what they own and the slab sorts it out.
//
// Under -tags hfetch_invariants every freed buffer is poisoned with
// 0xDB first, so a reader holding a payload past its release observes
// garbage instead of silently racing a recycled buffer.
const (
	slabMinShift = 12 // 4 KiB
	slabMaxShift = 23 // 8 MiB
	slabClasses  = slabMaxShift - slabMinShift + 1
)

// slabPoison is the byte pattern written over freed buffers when
// invariants are compiled in ("dead buffer").
const slabPoison = 0xDB

type slab struct {
	pools [slabClasses]sync.Pool

	gets    atomic.Int64 // all SlabGet calls
	hits    atomic.Int64 // served from a pool
	misses  atomic.Int64 // pool empty (fresh make) or oversize
	puts    atomic.Int64 // buffers returned to a pool
	dropped atomic.Int64 // returned buffers with a non-class capacity
}

// defaultSlab is the process-wide allocator. Pools are per-size-class,
// lock-free (sync.Pool), and shared by every Store, I/O client and
// gateway in the process.
var defaultSlab slab

// classFor returns the class index for a request of n bytes, or -1 when
// n exceeds the largest class.
func classFor(n int64) int {
	if n <= 0 {
		return 0
	}
	for c := 0; c < slabClasses; c++ {
		if n <= 1<<(slabMinShift+c) {
			return c
		}
	}
	return -1
}

// SlabGet returns a buffer of length n drawn from the slab's size-class
// pools. The buffer's capacity is the class size (so SlabPut can route
// it home); contents are unspecified. Oversize requests fall back to a
// plain allocation and count as misses.
func SlabGet(n int64) []byte {
	defaultSlab.gets.Add(1)
	c := classFor(n)
	if c < 0 {
		defaultSlab.misses.Add(1)
		return make([]byte, n)
	}
	if v := defaultSlab.pools[c].Get(); v != nil {
		defaultSlab.hits.Add(1)
		return (*(v.(*[]byte)))[:n]
	}
	defaultSlab.misses.Add(1)
	return make([]byte, n, 1<<(slabMinShift+c))
}

// SlabPut returns a buffer to its size-class pool. Buffers whose
// capacity is not exactly a class size (anything SlabGet did not hand
// out, or an oversize fallback) are dropped for the GC. Safe to call
// with nil. The caller must not touch the buffer afterwards.
func SlabPut(b []byte) {
	if b == nil {
		return
	}
	if invariant.Enabled {
		b = b[:cap(b)]
		for i := range b {
			b[i] = slabPoison
		}
	}
	c := cap(b)
	if c < 1<<slabMinShift || c&(c-1) != 0 || c > 1<<slabMaxShift {
		defaultSlab.dropped.Add(1)
		return
	}
	defaultSlab.puts.Add(1)
	b = b[:cap(b)]
	defaultSlab.pools[classFor(int64(c))].Put(&b)
}

// SlabStats is a snapshot of the process-wide slab counters.
type SlabStats struct {
	Gets    int64
	Hits    int64
	Misses  int64
	Puts    int64
	Dropped int64
}

// HitRatio returns Hits/Gets (0 when nothing was requested).
func (s SlabStats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// ReadSlabStats snapshots the slab counters.
func ReadSlabStats() SlabStats {
	return SlabStats{
		Gets:    defaultSlab.gets.Load(),
		Hits:    defaultSlab.hits.Load(),
		Misses:  defaultSlab.misses.Load(),
		Puts:    defaultSlab.puts.Load(),
		Dropped: defaultSlab.dropped.Load(),
	}
}

// SlabHits returns the cumulative pool-hit count (telemetry hook).
func SlabHits() int64 { return defaultSlab.hits.Load() }

// SlabMisses returns the cumulative pool-miss count (telemetry hook).
func SlabMisses() int64 { return defaultSlab.misses.Load() }

// SlabFrees returns the cumulative pooled-free count (telemetry hook).
func SlabFrees() int64 { return defaultSlab.puts.Load() }

// copiedBytes counts payload bytes memcpy'd on the read path (Store.Get,
// Store.ReadAt, and the serve-path copies the server and cluster fetcher
// report via CountCopied). The bench alloc scenario reads it before and
// after a run to compute bytes-copied-per-read; the zero-copy view path
// leaves it untouched.
var copiedBytes atomic.Int64

// CountCopied adds n payload bytes to the read-path copy ledger. Serve
// paths outside this package (server range fill, cluster remote-read
// splice) report their copies here so one counter covers the whole read
// path.
func CountCopied(n int64) { copiedBytes.Add(n) }

// CopiedBytes returns the cumulative read-path payload bytes copied.
func CopiedBytes() int64 { return copiedBytes.Load() }
