package tiers

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hfetch/internal/core/seg"
	"hfetch/internal/invariant"
)

// fillFor returns a deterministic, never-poison fill byte for a
// generation (1..100, well clear of slabPoison = 0xDB), so a reader
// observing a recycled buffer under -tags hfetch_invariants sees the
// poison pattern and fails the all-bytes-equal check.
func fillFor(gen int) byte { return byte(gen%100) + 1 }

func filled(n int, b byte) []byte {
	p := SlabGet(int64(n))
	for i := range p {
		p[i] = b
	}
	return p
}

func TestSlabClassesAndStats(t *testing.T) {
	before := ReadSlabStats()
	b := SlabGet(5000)
	if len(b) != 5000 || cap(b) != 8192 {
		t.Fatalf("SlabGet(5000): len %d cap %d, want 5000/8192", len(b), cap(b))
	}
	SlabPut(b)
	after := ReadSlabStats()
	if after.Gets != before.Gets+1 || after.Puts != before.Puts+1 {
		t.Fatalf("stats delta gets/puts = %d/%d, want 1/1",
			after.Gets-before.Gets, after.Puts-before.Puts)
	}

	// Oversize: plain allocation, never pooled.
	big := SlabGet((8 << 20) + 1)
	if len(big) != (8<<20)+1 {
		t.Fatalf("oversize len = %d", len(big))
	}
	SlabPut(big)
	s := ReadSlabStats()
	if s.Dropped != after.Dropped+1 {
		t.Fatalf("oversize free not dropped (dropped %d -> %d)", after.Dropped, s.Dropped)
	}

	// A foreign buffer with a non-class capacity is dropped too.
	SlabPut(make([]byte, 100))
	if got := ReadSlabStats().Dropped; got != s.Dropped+1 {
		t.Fatalf("foreign free not dropped (dropped %d -> %d)", s.Dropped, got)
	}
}

func TestBufRefcountLifecycle(t *testing.T) {
	b := NewBuf(filled(64, 7))
	if got := b.refCount(); got != 1 {
		t.Fatalf("fresh refcount = %d, want 1", got)
	}
	b.Retain()
	b.Release()
	if b.Bytes() == nil {
		t.Fatal("payload freed while a reference remains")
	}
	b.Release()
	if b.Bytes() != nil {
		t.Fatal("payload not freed at the last release")
	}
}

func TestPoisonOnFree(t *testing.T) {
	if !invariant.Enabled {
		t.Skip("needs -tags hfetch_invariants")
	}
	b := NewBuf(filled(64, 7))
	data := b.Bytes()
	b.Release()
	for i, c := range data[:cap(data)] {
		if c != slabPoison {
			t.Fatalf("byte %d = %#x after free, want poison %#x", i, c, slabPoison)
		}
	}
}

func TestViewPinsAcrossEviction(t *testing.T) {
	s := NewStore("ram", 1<<20, nil)
	id := seg.ID{File: "f", Index: 0}
	want := bytes.Repeat([]byte{9}, 4096)
	if err := s.Put(id, want); err != nil {
		t.Fatal(err)
	}
	v, ok := s.View(id)
	if !ok {
		t.Fatal("View: not resident")
	}
	if !s.Delete(id) {
		t.Fatal("Delete: not resident")
	}
	if s.Used() != 0 {
		t.Fatalf("Used = %d after delete, want 0 (capacity freed immediately)", s.Used())
	}
	if !bytes.Equal(v.Bytes(), want) {
		t.Fatal("pinned bytes changed under an eviction")
	}
	v.Release()
}

func TestViewPinsAcrossOverwrite(t *testing.T) {
	s := NewStore("ram", 1<<20, nil)
	id := seg.ID{File: "f", Index: 0}
	if err := s.Put(id, bytes.Repeat([]byte{1}, 4096)); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View(id)
	if err := s.Put(id, bytes.Repeat([]byte{2}, 4096)); err != nil {
		t.Fatal(err)
	}
	for _, c := range v.Bytes() {
		if c != 1 {
			t.Fatalf("pinned view observed overwrite (byte %#x)", c)
		}
	}
	v.Release()
	got, err := s.Get(id)
	if err != nil || got[0] != 2 {
		t.Fatalf("store serves %v/%v, want new generation", got[0], err)
	}
}

func TestTakeBufMovesPinCoherently(t *testing.T) {
	src := NewStore("ram", 1<<20, nil)
	dst := NewStore("nvme", 1<<20, nil)
	id := seg.ID{File: "f", Index: 3}
	want := bytes.Repeat([]byte{5}, 8192)
	if err := src.Put(id, want); err != nil {
		t.Fatal(err)
	}
	v, _ := src.View(id)
	b, err := src.TakeBuf(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.PutBuf(id, b); err != nil {
		t.Fatal(err)
	}
	if src.Has(id) || !dst.Has(id) {
		t.Fatal("TakeBuf/PutBuf did not move residency")
	}
	// The reader pinned through the move still sees coherent bytes, and
	// even evicting from the destination cannot recycle them.
	dst.Delete(id)
	if !bytes.Equal(v.Bytes(), want) {
		t.Fatal("pinned bytes torn by a tier-to-tier move")
	}
	v.Release()
}

func TestTakeCopiesOutWhenPinned(t *testing.T) {
	s := NewStore("ram", 1<<20, nil)
	id := seg.ID{File: "f", Index: 0}
	if err := s.Put(id, bytes.Repeat([]byte{4}, 4096)); err != nil {
		t.Fatal(err)
	}
	v, _ := s.View(id)
	got, err := s.Take(id)
	if err != nil {
		t.Fatal(err)
	}
	// The caller owns got exclusively: mutating it must not show through
	// the concurrent reader's pin.
	got[0] = 0xFF
	if v.Bytes()[0] != 4 {
		t.Fatal("Take handed out a buffer shared with a pinned reader")
	}
	v.Release()
}

func TestReadVecPinsUnderOneAcquisition(t *testing.T) {
	s := NewStore("ram", 1<<20, nil)
	ids := make([]seg.ID, 5)
	for i := range ids {
		ids[i] = seg.ID{File: "f", Index: int64(i)}
	}
	for _, i := range []int{0, 2, 4} {
		if err := s.Put(ids[i], bytes.Repeat([]byte{byte(10 + i)}, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	out := make([]*Buf, 5)
	found, total := s.ReadVec(ids, out)
	if found != 3 || total != 3*4096 {
		t.Fatalf("ReadVec = (%d, %d), want (3, %d)", found, total, 3*4096)
	}
	for i, b := range out {
		resident := i%2 == 0
		if (b != nil) != resident {
			t.Fatalf("out[%d] pinned=%v, want %v", i, b != nil, resident)
		}
		if b != nil {
			if b.Bytes()[0] != byte(10+i) {
				t.Fatalf("out[%d] wrong payload", i)
			}
			b.Release()
		}
	}
}

// TestPinVsEvictionStress races readers holding views against
// overwrites (supersession), eviction, tier-to-tier moves, and
// invalidating whole-file deletes. Every pinned view must stay
// byte-stable for as long as it is held: a reader observing a mix of
// fill values — or the 0xDB poison under -tags hfetch_invariants — has
// caught a recycled buffer. Run with -race.
func TestPinVsEvictionStress(t *testing.T) {
	const (
		segSize  = 4096
		nSegs    = 16
		nReaders = 4
		rounds   = 400
	)
	ram := NewStore("ram", nSegs*segSize*2, nil)
	nvme := NewStore("nvme", nSegs*segSize*2, nil)
	var stop atomic.Bool
	var muts, readers sync.WaitGroup

	idOf := func(i int) seg.ID { return seg.ID{File: "f", Index: int64(i % nSegs)} }

	// Writer: supersede segments with a fresh generation fill.
	muts.Add(1)
	go func() {
		defer muts.Done()
		rng := rand.New(rand.NewSource(1))
		for g := 0; !stop.Load(); g++ {
			p := filled(segSize, fillFor(g))
			if err := ram.PutOwned(idOf(rng.Intn(nSegs)), p); err != nil {
				SlabPut(p)
			}
		}
	}()

	// Mover: demote/promote between the two stores, moving the Buf.
	muts.Add(1)
	go func() {
		defer muts.Done()
		rng := rand.New(rand.NewSource(2))
		for !stop.Load() {
			src, dst := ram, nvme
			if rng.Intn(2) == 0 {
				src, dst = nvme, ram
			}
			id := idOf(rng.Intn(nSegs))
			if b, err := src.TakeBuf(id); err == nil {
				if dst.PutBuf(id, b) != nil {
					b.Release()
				}
			}
		}
	}()

	// Evictor + invalidator.
	muts.Add(1)
	go func() {
		defer muts.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; !stop.Load(); i++ {
			if i%50 == 49 {
				ram.DeleteFile("f")
				nvme.DeleteFile("f")
				continue
			}
			st := ram
			if rng.Intn(2) == 0 {
				st = nvme
			}
			st.Delete(idOf(rng.Intn(nSegs)))
		}
	}()

	// Readers: pin views (singly and vectored) and verify stability.
	errs := make(chan string, 2*nReaders)
	for r := 0; r < nReaders; r++ {
		readers.Add(1)
		go func(seed int64) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(seed))
			ids := make([]seg.ID, nSegs)
			for i := range ids {
				ids[i] = idOf(i)
			}
			out := make([]*Buf, nSegs)
			for k := 0; k < rounds; k++ {
				if k%2 == 0 {
					st := ram
					if rng.Intn(2) == 0 {
						st = nvme
					}
					v, ok := st.View(idOf(rng.Intn(nSegs)))
					if !ok {
						continue
					}
					if !stable(v.Bytes()) {
						errs <- "single view observed torn/recycled bytes"
						v.Release()
						return
					}
					v.Release()
					continue
				}
				for i := range out {
					out[i] = nil
				}
				st := ram
				if rng.Intn(2) == 0 {
					st = nvme
				}
				st.ReadVec(ids, out)
				for _, b := range out {
					if b == nil {
						continue
					}
					if !stable(b.Bytes()) {
						errs <- "vectored view observed torn/recycled bytes"
					}
					b.Release()
				}
			}
		}(int64(100 + r))
	}

	// Readers drive the duration; the mutators run until they finish.
	readers.Wait()
	stop.Store(true)
	muts.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Eventual eviction: with mutators quiesced, everything deletes and
	// both stores return to empty accounting.
	ram.DeleteFile("f")
	nvme.DeleteFile("f")
	if ram.Used() != 0 || nvme.Used() != 0 {
		t.Fatalf("used = %d/%d after final invalidation, want 0/0", ram.Used(), nvme.Used())
	}
}

// stable reports whether every byte of a pinned payload carries the
// same generation fill — the WORM stability contract of a held view.
func stable(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	c := p[0]
	if c == slabPoison {
		return false
	}
	for _, b := range p {
		if b != c {
			return false
		}
	}
	return true
}
