package tiers

import (
	"sync/atomic"

	"hfetch/internal/invariant"
)

// Buf is a reference-counted segment payload: the unit of buffer
// ownership on the zero-copy read path. A Buf is created with one
// reference (the creator's — usually the Store's residency reference);
// readers pin the payload with Retain (via Store.View / Store.ReadVec)
// and drop the pin with Release. The last release frees the underlying
// buffer back to the slab, so eviction and overwrite never recycle
// bytes under a pinned reader — they just drop the store's reference
// and defer the free to the refcount.
//
// The payload bytes are immutable once the Buf is resident (WORM data:
// a written file is invalidated, never patched in place), which is what
// makes sharing one buffer across concurrent readers sound.
type Buf struct {
	data []byte
	refs atomic.Int32
}

// NewBuf wraps payload in a Buf holding one reference, transferring
// ownership of the slice: the caller must not retain or free it.
func NewBuf(payload []byte) *Buf {
	b := &Buf{data: payload}
	b.refs.Store(1)
	return b
}

// Bytes returns the payload. Valid only while the caller holds a
// reference; callers must not mutate it.
func (b *Buf) Bytes() []byte { return b.data }

// Len returns the payload length in bytes.
func (b *Buf) Len() int64 { return int64(len(b.data)) }

// Retain adds a reference. The caller must already hold one (a Buf
// resurrected from zero references is a recycled-buffer bug).
func (b *Buf) Retain() {
	n := b.refs.Add(1)
	if invariant.Enabled {
		invariant.Assert(n > 1, "buf retained from %d references", n-1)
	}
}

// Release drops one reference; the last release poisons (under
// -tags hfetch_invariants) and frees the payload to the slab. The
// caller must not touch Bytes afterwards.
func (b *Buf) Release() {
	n := b.refs.Add(-1)
	if invariant.Enabled {
		invariant.Assert(n >= 0, "buf over-released to %d references", n)
	}
	if n == 0 {
		data := b.data
		b.data = nil
		SlabPut(data)
	}
}

// refCount returns the current reference count (tests and invariant
// checks only — the value is stale the moment it is read).
func (b *Buf) refCount() int32 { return b.refs.Load() }
