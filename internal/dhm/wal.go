package dhm

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"sync"
)

// WAL is a write-ahead log giving a Map fault tolerance across
// power-downs: every local mutation is appended as a length-framed gob
// record; Replay reconstructs the last state of each key.
//
// One WAL can serve several named maps (records carry the map name).
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

type walRecord struct {
	Map    string
	Key    string
	Delete bool
	Val    []byte
}

// OpenWAL opens (or creates) the log at path, appending to any existing
// records.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dhm: open wal: %w", err)
	}
	return &WAL{f: f, path: path}, nil
}

// Path returns the log file path.
func (w *WAL) Path() string { return w.path }

// Close flushes and closes the log.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

func (w *WAL) append(rec walRecord) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return // values that cannot gob-encode are simply not durable
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(body.Len()))
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return
	}
	w.f.Write(hdr[:])       //nolint:errcheck // best-effort durability
	w.f.Write(body.Bytes()) //nolint:errcheck
}

func (w *WAL) logPut(mapName, key string, val any) {
	vb, err := encodeVal(val)
	if err != nil {
		return
	}
	w.append(walRecord{Map: mapName, Key: key, Val: vb})
}

func (w *WAL) logDelete(mapName, key string) {
	w.append(walRecord{Map: mapName, Key: key, Delete: true})
}

// Sync fsyncs the log.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	return w.f.Sync()
}

// Replay reads the log at path and returns the surviving state per map
// name: map[mapName]map[key]value. A truncated trailing record (torn
// write at power-down) is tolerated and ignored.
func Replay(path string) (map[string]map[string]any, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dhm: open wal for replay: %w", err)
	}
	defer f.Close()
	out := make(map[string]map[string]any)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			break // EOF or torn header
		}
		n := binary.BigEndian.Uint32(hdr[:])
		// A corrupt header can claim a multi-gigabyte record; no
		// legitimate record approaches this bound, so treat it as
		// corruption instead of attempting the allocation.
		const maxRecord = 64 << 20
		if n > maxRecord {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(f, body); err != nil {
			break // torn body
		}
		var rec walRecord
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			break // corrupt record terminates replay
		}
		mp := out[rec.Map]
		if mp == nil {
			mp = make(map[string]any)
			out[rec.Map] = mp
		}
		if rec.Delete {
			delete(mp, rec.Key)
			continue
		}
		v, err := decodeVal(rec.Val)
		if err != nil {
			continue
		}
		mp[rec.Key] = v
	}
	return out, nil
}

// Restore loads replayed state for this map's name into the local shards
// (without re-logging).
func (m *Map) Restore(state map[string]map[string]any) {
	for k, v := range state[m.cfg.Name] {
		m.localPut(k, v, false)
	}
}
