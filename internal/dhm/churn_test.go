package dhm

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hfetch/internal/comm"
)

// TestConcurrentWritesDuringRebalance hammers the map with writes while
// every surviving node rebalances away a departed member, under -race.
// The contract under test: a key written mid-migration follows the NEW
// ownership (Rebalance swaps membership before migrating), so after the
// dust settles every key is readable and owned by a survivor.
func TestConcurrentWritesDuringRebalance(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	all := []string{"n0", "n1", "n2", "n3"}
	maps := make([]*Map, len(all))
	for i, name := range all {
		mux := comm.NewMux()
		maps[i] = New(Config{Name: "t", Self: name, Nodes: all, Dialer: inprocDialer{net}}, mux)
		net.Join(name, mux)
	}

	// Seed the keyspace so the departing node owns real data.
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := maps[0].Put(fmt.Sprintf("key-%d", i), int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	// n3 departs. Its map stops serving first (a crash, not a drain).
	net.Leave("n3")
	survivors := []string{"n0", "n1", "n2"}

	// Writers churn the keyspace through every survivor while the
	// survivors rebalance concurrently.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("key-%d", (w*131+i)%keys)
				// Errors are expected mid-churn (a write can race the
				// membership swap and target n3); the post-condition
				// below is what matters.
				maps[w].Put(k, int64(i)) //nolint:errcheck
				i++
			}
		}()
	}
	var rb sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		rb.Add(1)
		go func() {
			defer rb.Done()
			if _, err := maps[i].Rebalance(survivors); err != nil {
				// Migration pushes can race a peer's own swap; the keys
				// stay local in that case, which Range below still sees.
				t.Logf("rebalance on %s: %v", survivors[i], err)
			}
		}()
	}
	rb.Wait()
	close(stop)
	wg.Wait()

	// Re-drive writes once after the churn so keys that raced the swap
	// settle at their final owner, then verify the full keyspace.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := maps[0].Put(k, int64(i)); err != nil {
			t.Fatalf("post-churn put %q: %v", k, err)
		}
	}
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		owner := maps[0].Owner(k)
		if owner == "n3" {
			t.Fatalf("key %q still owned by departed node", k)
		}
		v, ok, err := maps[1].Get(k)
		if err != nil || !ok {
			t.Fatalf("key %q unreadable after churn: ok=%v err=%v (owner %s)", k, ok, err, owner)
		}
		if v.(int64) != int64(i) {
			t.Fatalf("key %q = %v, want %d", k, v, i)
		}
	}

	// The mid-migration contract, deterministically: a key whose old
	// owner was the departed node, written after the membership swap,
	// lands at its new owner.
	oldRing := New(Config{Name: "t", Self: "n0", Nodes: all}, nil)
	probe := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if oldRing.Owner(k) == "n3" {
			probe = k
			break
		}
	}
	if err := maps[0].Put(probe, int64(42)); err != nil {
		t.Fatal(err)
	}
	newOwner := maps[0].Owner(probe)
	for i, name := range survivors {
		if name != newOwner {
			continue
		}
		if v, ok, _ := maps[i].Get(probe); !ok || v.(int64) != 42 {
			t.Fatalf("probe key not at new owner %s: ok=%v v=%v", newOwner, ok, v)
		}
	}
}

// TestWALCrashRecoveryRejoin emulates satellite 3's kill/restart: a node
// with WAL-backed maps dies mid-workload, restarts from its log, and
// rejoins — its segment statistics survive the crash.
func TestWALCrashRecoveryRejoin(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "node.wal")

	// First life: log a working set, then crash without closing cleanly
	// (the file is abandoned, as a kill -9 would).
	{
		wal, err := OpenWAL(walPath)
		if err != nil {
			t.Fatal(err)
		}
		m := New(Config{Name: "t", Self: "n0", WAL: wal}, nil)
		for i := 0; i < 100; i++ {
			if err := m.Put(fmt.Sprintf("s|f|%d", i), int64(i*i)); err != nil {
				t.Fatal(err)
			}
		}
		// Torn tail: simulate a crash mid-append by truncating the last
		// few bytes of the log.
		info, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(walPath, info.Size()-3); err != nil {
			t.Fatal(err)
		}
	}

	// Second life: replay, restore, rejoin a 2-node cluster, rebalance.
	state, err := Replay(walPath)
	if err != nil {
		t.Fatalf("replay after crash: %v", err)
	}
	wal, err := OpenWAL(walPath)
	if err != nil {
		t.Fatal(err)
	}
	net := comm.NewInprocNetwork(nil)
	mux0, mux1 := comm.NewMux(), comm.NewMux()
	m0 := New(Config{Name: "t", Self: "n0", Nodes: []string{"n0"}, WAL: wal, Dialer: inprocDialer{net}}, mux0)
	m0.Restore(state)
	net.Join("n0", mux0)

	recovered := m0.LocalLen()
	if recovered < 99 { // the torn record may legitimately be lost
		t.Fatalf("recovered %d keys, want >= 99", recovered)
	}

	m1 := New(Config{Name: "t", Self: "n1", Nodes: []string{"n0", "n1"}, Dialer: inprocDialer{net}}, mux1)
	net.Join("n1", mux1)
	migrated, err := m0.Rebalance([]string{"n0", "n1"})
	if err != nil {
		t.Fatalf("rejoin rebalance: %v", err)
	}
	if migrated == 0 {
		t.Fatal("rejoin migrated no keys to the new member")
	}

	// The whole recovered keyspace is readable from either node.
	for i := 0; i < 99; i++ {
		k := fmt.Sprintf("s|f|%d", i)
		v, ok, err := m1.Get(k)
		if err != nil || !ok {
			t.Fatalf("key %q lost across crash+rejoin: ok=%v err=%v", k, ok, err)
		}
		if v.(int64) != int64(i*i) {
			t.Fatalf("key %q = %v, want %d", k, v, i*i)
		}
	}
	_ = m1
}
