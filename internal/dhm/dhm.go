// Package dhm implements the distributed hashmap HFetch keeps its
// segment statistics and segment-to-tier mappings in (the paper uses
// HCL, the Hermes Container Library [43]). It provides:
//
//   - O(1) concurrent insertion and querying via lock-striped shards;
//   - node-level partitioning: every key has a single owner node chosen
//     by highest-random-weight (rendezvous) hashing, so updates are
//     visible cluster-wide without a global synchronization barrier;
//   - atomic read-modify-write through named, pre-registered operations
//     (closures cannot cross the wire, so mutators are registered on
//     every node and invoked by name at the owner — the same server-side
//     operation model HCL uses);
//   - optional write-ahead logging for fault tolerance across
//     power-downs (see wal.go).
//
// Values are arbitrary Go values on the owner; crossing the wire they
// are gob-encoded, so remote-capable maps must register their concrete
// value types with encoding/gob.
package dhm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"hfetch/internal/comm"
)

// OpFunc is a named mutator: it receives the current value (nil if the
// key is absent) and an opaque argument, and returns the new value.
// Returning nil deletes the key.
type OpFunc func(cur any, arg []byte) any

// Dialer abstracts how the map reaches other nodes.
type Dialer interface {
	Dial(node string) comm.Peer
}

// Config configures a Map instance.
type Config struct {
	// Name namespaces the map's message types and WAL records.
	Name string
	// Self is this node's name; Nodes is the full member list. An empty
	// Nodes list means a single-node map.
	Self  string
	Nodes []string
	// Shards is the number of local lock stripes (default 64).
	Shards int
	// Dialer reaches remote owners; may be nil for single-node maps.
	Dialer Dialer
	// WAL, when non-nil, records local mutations for recovery.
	WAL *WAL
}

// Map is one distributed hashmap instance.
type Map struct {
	cfg Config
	// memberMu guards cfg.Nodes: Rebalance rewrites the membership while
	// Owner lookups run concurrently.
	memberMu sync.RWMutex
	shards   []shard

	opMu sync.RWMutex
	ops  map[string]OpFunc

	peerMu sync.Mutex
	peers  map[string]comm.Peer
}

type shard struct {
	mu sync.RWMutex
	m  map[string]any
}

// New creates a Map and, when mux is non-nil, registers its remote
// handlers so other nodes can reach this one's shards.
func New(cfg Config, mux *comm.Mux) *Map {
	if cfg.Shards <= 0 {
		cfg.Shards = 64
	}
	m := &Map{
		cfg:   cfg,
		ops:   make(map[string]OpFunc),
		peers: make(map[string]comm.Peer),
	}
	m.shards = make([]shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i].m = make(map[string]any)
	}
	if mux != nil {
		m.registerHandlers(mux)
	}
	return m
}

// RegisterOp installs a named mutator. Every node of the map must
// register the same ops before use.
func (m *Map) RegisterOp(name string, fn OpFunc) {
	m.opMu.Lock()
	defer m.opMu.Unlock()
	m.ops[name] = fn
}

// Owner returns the owner node for key; the empty string means "self"
// (single-node map).
func (m *Map) Owner(key string) string {
	m.memberMu.RLock()
	defer m.memberMu.RUnlock()
	if len(m.cfg.Nodes) == 0 {
		return m.cfg.Self
	}
	best := ""
	var bestW uint64
	for _, n := range m.cfg.Nodes {
		w := hrw(key, n)
		if best == "" || w > bestW || (w == bestW && n < best) {
			best, bestW = n, w
		}
	}
	return best
}

func (m *Map) local(key string) bool {
	o := m.Owner(key)
	return o == "" || o == m.cfg.Self
}

func (m *Map) shardOf(key string) *shard {
	return &m.shards[int(fnv(key)%uint64(len(m.shards)))]
}

// Get returns the value for key and whether it exists.
func (m *Map) Get(key string) (any, bool, error) {
	if m.local(key) {
		s := m.shardOf(key)
		s.mu.RLock()
		v, ok := s.m[key]
		s.mu.RUnlock()
		return v, ok, nil
	}
	return m.remoteGet(key)
}

// Put stores val under key.
func (m *Map) Put(key string, val any) error {
	if m.local(key) {
		m.localPut(key, val, true)
		return nil
	}
	return m.remotePut(key, val)
}

func (m *Map) localPut(key string, val any, logIt bool) {
	s := m.shardOf(key)
	s.mu.Lock()
	s.m[key] = val
	s.mu.Unlock()
	if logIt && m.cfg.WAL != nil {
		m.cfg.WAL.logPut(m.cfg.Name, key, val)
	}
}

// Delete removes key.
func (m *Map) Delete(key string) error {
	if m.local(key) {
		m.localDelete(key, true)
		return nil
	}
	return m.remoteDelete(key)
}

func (m *Map) localDelete(key string, logIt bool) {
	s := m.shardOf(key)
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	if logIt && m.cfg.WAL != nil {
		m.cfg.WAL.logDelete(m.cfg.Name, key)
	}
}

// Apply atomically applies the named op to key at its owner and returns
// the new value.
func (m *Map) Apply(key, op string, arg []byte) (any, error) {
	if m.local(key) {
		return m.localApply(key, op, arg)
	}
	return m.remoteApply(key, op, arg)
}

func (m *Map) localApply(key, op string, arg []byte) (any, error) {
	m.opMu.RLock()
	fn := m.ops[op]
	m.opMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("dhm: unknown op %q", op)
	}
	s := m.shardOf(key)
	s.mu.Lock()
	cur := s.m[key]
	next := fn(cur, arg)
	if next == nil {
		delete(s.m, key)
	} else {
		s.m[key] = next
	}
	s.mu.Unlock()
	if m.cfg.WAL != nil {
		if next == nil {
			m.cfg.WAL.logDelete(m.cfg.Name, key)
		} else {
			m.cfg.WAL.logPut(m.cfg.Name, key, next)
		}
	}
	return next, nil
}

// LocalKeys returns the keys whose shards live on this node.
func (m *Map) LocalKeys() []string {
	var out []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k := range s.m {
			out = append(out, k)
		}
		s.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// LocalLen returns the number of locally stored keys.
func (m *Map) LocalLen() int {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Range calls fn for every local key/value until fn returns false. The
// shard lock is held during fn; fn must not call back into the map.
func (m *Map) Range(fn func(key string, val any) bool) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for k, v := range s.m {
			if !fn(k, v) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// ---- remote plumbing ----

type rpcReq struct {
	Key string
	Op  string
	Arg []byte
	Val []byte // gob-encoded value for puts
}

type rpcResp struct {
	Found bool
	Val   []byte
}

func (m *Map) msgType(op string) string { return "dhm." + m.cfg.Name + "." + op }

func (m *Map) peer(node string) (comm.Peer, error) {
	if m.cfg.Dialer == nil {
		return nil, fmt.Errorf("dhm: no dialer configured for remote owner %q", node)
	}
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	if p, ok := m.peers[node]; ok {
		return p, nil
	}
	p := m.cfg.Dialer.Dial(node)
	m.peers[node] = p
	return p, nil
}

func encodeVal(v any) ([]byte, error) {
	var buf bytes.Buffer
	// Wrap in an interface holder so gob records the concrete type.
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("dhm: encode value: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeVal(b []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, fmt.Errorf("dhm: decode value: %w", err)
	}
	return v, nil
}

func (m *Map) remoteGet(key string) (any, bool, error) {
	p, err := m.peer(m.Owner(key))
	if err != nil {
		return nil, false, err
	}
	req, _ := encodeReq(rpcReq{Key: key})
	raw, err := p.Request(m.msgType("get"), req)
	if err != nil {
		return nil, false, err
	}
	resp, err := decodeResp(raw)
	if err != nil {
		return nil, false, err
	}
	if !resp.Found {
		return nil, false, nil
	}
	v, err := decodeVal(resp.Val)
	return v, err == nil, err
}

func (m *Map) remotePut(key string, val any) error {
	p, err := m.peer(m.Owner(key))
	if err != nil {
		return err
	}
	vb, err := encodeVal(val)
	if err != nil {
		return err
	}
	req, _ := encodeReq(rpcReq{Key: key, Val: vb})
	_, err = p.Request(m.msgType("put"), req)
	return err
}

func (m *Map) remoteDelete(key string) error {
	p, err := m.peer(m.Owner(key))
	if err != nil {
		return err
	}
	req, _ := encodeReq(rpcReq{Key: key})
	_, err = p.Request(m.msgType("del"), req)
	return err
}

func (m *Map) remoteApply(key, op string, arg []byte) (any, error) {
	p, err := m.peer(m.Owner(key))
	if err != nil {
		return nil, err
	}
	req, _ := encodeReq(rpcReq{Key: key, Op: op, Arg: arg})
	raw, err := p.Request(m.msgType("apply"), req)
	if err != nil {
		return nil, err
	}
	resp, err := decodeResp(raw)
	if err != nil {
		return nil, err
	}
	if !resp.Found {
		return nil, nil
	}
	return decodeVal(resp.Val)
}

func encodeReq(r rpcReq) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(r)
	return buf.Bytes(), err
}

func decodeReq(b []byte) (rpcReq, error) {
	var r rpcReq
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
	return r, err
}

func encodeResp(r rpcResp) ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(r)
	return buf.Bytes(), err
}

func decodeResp(b []byte) (rpcResp, error) {
	var r rpcResp
	err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r)
	return r, err
}

func (m *Map) registerHandlers(mux *comm.Mux) {
	mux.Register(m.msgType("get"), func(raw []byte) ([]byte, error) {
		req, err := decodeReq(raw)
		if err != nil {
			return nil, err
		}
		s := m.shardOf(req.Key)
		s.mu.RLock()
		v, ok := s.m[req.Key]
		s.mu.RUnlock()
		if !ok {
			return encodeResp(rpcResp{})
		}
		vb, err := encodeVal(v)
		if err != nil {
			return nil, err
		}
		return encodeResp(rpcResp{Found: true, Val: vb})
	})
	mux.Register(m.msgType("put"), func(raw []byte) ([]byte, error) {
		req, err := decodeReq(raw)
		if err != nil {
			return nil, err
		}
		v, err := decodeVal(req.Val)
		if err != nil {
			return nil, err
		}
		m.localPut(req.Key, v, true)
		return encodeResp(rpcResp{Found: true})
	})
	mux.Register(m.msgType("del"), func(raw []byte) ([]byte, error) {
		req, err := decodeReq(raw)
		if err != nil {
			return nil, err
		}
		m.localDelete(req.Key, true)
		return encodeResp(rpcResp{})
	})
	mux.Register(m.msgType("apply"), func(raw []byte) ([]byte, error) {
		req, err := decodeReq(raw)
		if err != nil {
			return nil, err
		}
		next, err := m.localApply(req.Key, req.Op, req.Arg)
		if err != nil {
			return nil, err
		}
		if next == nil {
			return encodeResp(rpcResp{})
		}
		vb, err := encodeVal(next)
		if err != nil {
			return nil, err
		}
		return encodeResp(rpcResp{Found: true, Val: vb})
	})
}

// ---- hashing ----

func fnv(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// hrw computes the rendezvous weight of (key, node). The two hashes are
// combined through a strong finalizer so short node names still produce
// well-distributed weights.
func hrw(key, node string) uint64 {
	z := fnv(key) ^ (fnv(node) * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
