package dhm

import (
	"fmt"
)

// Rebalance adapts the map to a new membership list: keys whose
// rendezvous owner moved are pushed to their new owner, then dropped
// locally. It returns how many keys were migrated away. Thanks to
// rendezvous hashing only keys owned by departed nodes (or claimed by
// joined ones) move; everything else stays put.
//
// Rebalance is cooperative: every surviving node must call it with the
// same new membership. Concurrent writes during a rebalance follow the
// new ownership (callers should swap membership first, then migrate),
// so a key written mid-migration lands at its new owner either way and
// the stale local copy is discarded.
func (m *Map) Rebalance(newNodes []string) (migrated int, err error) {
	m.memberMu.Lock()
	m.cfg.Nodes = append([]string(nil), newNodes...)
	m.memberMu.Unlock()

	// Collect local keys that no longer belong here.
	type kv struct {
		key string
		val any
	}
	var moving []kv
	m.Range(func(key string, val any) bool {
		if !m.local(key) {
			moving = append(moving, kv{key, val})
		}
		return true
	})
	var firstErr error
	for _, e := range moving {
		if err := m.Put(e.key, e.val); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dhm: rebalance %q: %w", e.key, err)
			}
			continue // keep the local copy rather than lose the key
		}
		m.localDelete(e.key, true)
		migrated++
	}
	return migrated, firstErr
}

// Members returns the current membership list (empty = single node).
func (m *Map) Members() []string {
	m.memberMu.RLock()
	defer m.memberMu.RUnlock()
	return append([]string(nil), m.cfg.Nodes...)
}
