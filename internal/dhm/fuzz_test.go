package dhm

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay feeds arbitrary bytes to the WAL replayer: it must never
// panic and must tolerate any corruption or truncation.
func FuzzReplay(f *testing.F) {
	// Seed with a valid log followed by garbage.
	dir, _ := os.MkdirTemp("", "fuzzwal")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.log")
	w, _ := OpenWAL(path)
	m := New(Config{Name: "s", Self: "n0", WAL: w}, nil)
	m.Put("a", int64(1))
	w.Close()
	valid, _ := os.ReadFile(path)
	f.Add(valid)
	f.Add(append(valid, 0xde, 0xad, 0xbe, 0xef))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 4, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Skip()
		}
		state, err := Replay(p)
		if err != nil {
			t.Fatalf("Replay must tolerate corruption, got %v", err)
		}
		_ = state
	})
}
