package dhm

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"hfetch/internal/comm"
)

func init() {
	gob.Register(map[string]int64{})
}

func single(t *testing.T) *Map {
	t.Helper()
	return New(Config{Name: "t", Self: "n0"}, nil)
}

func TestPutGetDeleteLocal(t *testing.T) {
	m := single(t)
	if err := m.Put("k", int64(42)); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Get("k")
	if err != nil || !ok || v.(int64) != 42 {
		t.Fatalf("Get = %v %v %v", v, ok, err)
	}
	if err := m.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k"); ok {
		t.Fatal("key must be gone after Delete")
	}
}

func TestApplyLocal(t *testing.T) {
	m := single(t)
	m.RegisterOp("inc", func(cur any, arg []byte) any {
		var c int64
		if cur != nil {
			c = cur.(int64)
		}
		return c + int64(binary.BigEndian.Uint32(arg))
	})
	arg := make([]byte, 4)
	binary.BigEndian.PutUint32(arg, 5)
	v, err := m.Apply("c", "inc", arg)
	if err != nil || v.(int64) != 5 {
		t.Fatalf("Apply = %v %v", v, err)
	}
	v, _ = m.Apply("c", "inc", arg)
	if v.(int64) != 10 {
		t.Fatalf("second Apply = %v, want 10", v)
	}
}

func TestApplyUnknownOp(t *testing.T) {
	m := single(t)
	if _, err := m.Apply("k", "nope", nil); err == nil {
		t.Fatal("unknown op must error")
	}
}

func TestApplyNilDeletes(t *testing.T) {
	m := single(t)
	m.Put("k", int64(1))
	m.RegisterOp("del", func(cur any, arg []byte) any { return nil })
	if _, err := m.Apply("k", "del", nil); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("k"); ok {
		t.Fatal("nil-returning op must delete the key")
	}
}

func TestLocalKeysAndLen(t *testing.T) {
	m := single(t)
	for i := 0; i < 10; i++ {
		m.Put(fmt.Sprintf("k%02d", i), i)
	}
	if m.LocalLen() != 10 {
		t.Fatalf("LocalLen = %d, want 10", m.LocalLen())
	}
	keys := m.LocalKeys()
	if len(keys) != 10 || keys[0] != "k00" || keys[9] != "k09" {
		t.Fatalf("LocalKeys = %v", keys)
	}
}

func TestRange(t *testing.T) {
	m := single(t)
	for i := 0; i < 5; i++ {
		m.Put(fmt.Sprintf("k%d", i), i)
	}
	count := 0
	m.Range(func(k string, v any) bool { count++; return true })
	if count != 5 {
		t.Fatalf("Range visited %d, want 5", count)
	}
	count = 0
	m.Range(func(k string, v any) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("early-exit Range visited %d, want 2", count)
	}
}

func TestOwnerStableAndBalanced(t *testing.T) {
	nodes := []string{"a", "b", "c", "d"}
	m := New(Config{Name: "t", Self: "a", Nodes: nodes}, nil)
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%d", i)
		o1 := m.Owner(k)
		o2 := m.Owner(k)
		if o1 != o2 {
			t.Fatal("Owner must be deterministic")
		}
		counts[o1]++
	}
	for _, n := range nodes {
		if counts[n] < 500 {
			t.Fatalf("unbalanced partition: %v", counts)
		}
	}
}

func TestOwnerMinimalReshuffle(t *testing.T) {
	// Rendezvous hashing: removing a node must only move that node's keys.
	all := []string{"a", "b", "c", "d"}
	m1 := New(Config{Name: "t", Self: "a", Nodes: all}, nil)
	m2 := New(Config{Name: "t", Self: "a", Nodes: []string{"a", "b", "c"}}, nil)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%d", i)
		o1 := m1.Owner(k)
		if o1 != "d" && m2.Owner(k) != o1 {
			t.Fatalf("key %q moved from %q to %q although its owner survived", k, o1, m2.Owner(k))
		}
	}
}

type inprocDialer struct{ net *comm.InprocNetwork }

func (d inprocDialer) Dial(node string) comm.Peer { return d.net.Dial(node) }

// cluster builds an n-node DHM over the in-process fabric.
func cluster(t *testing.T, n int) []*Map {
	t.Helper()
	net := comm.NewInprocNetwork(nil)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("n%d", i)
	}
	maps := make([]*Map, n)
	for i, name := range names {
		mux := comm.NewMux()
		maps[i] = New(Config{Name: "t", Self: name, Nodes: names, Dialer: inprocDialer{net}}, mux)
		net.Join(name, mux)
	}
	return maps
}

func TestDistributedPutGetAcrossNodes(t *testing.T) {
	maps := cluster(t, 3)
	// Write every key through node 0, read through node 2.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := maps[0].Put(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := maps[2].Get(k)
		if err != nil || !ok || v.(int64) != int64(i) {
			t.Fatalf("Get(%q) via n2 = %v %v %v", k, v, ok, err)
		}
	}
	// Keys are partitioned: total across nodes equals 100, each node has some.
	total := 0
	for _, m := range maps {
		total += m.LocalLen()
	}
	if total != 100 {
		t.Fatalf("total local keys = %d, want 100", total)
	}
}

func TestDistributedDelete(t *testing.T) {
	maps := cluster(t, 3)
	maps[0].Put("k", int64(9))
	if err := maps[1].Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := maps[2].Get("k"); ok {
		t.Fatal("delete must be visible cluster-wide")
	}
}

func TestDistributedAtomicCounter(t *testing.T) {
	maps := cluster(t, 3)
	inc := func(cur any, arg []byte) any {
		var c int64
		if cur != nil {
			c = cur.(int64)
		}
		return c + 1
	}
	for _, m := range maps {
		m.RegisterOp("inc", inc)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := maps[w%len(maps)]
			for i := 0; i < per; i++ {
				if _, err := m.Apply("counter", "inc", nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	v, ok, err := maps[0].Get("counter")
	if err != nil || !ok || v.(int64) != workers*per {
		t.Fatalf("counter = %v %v %v, want %d", v, ok, err, workers*per)
	}
}

func TestRemoteWithoutDialerFails(t *testing.T) {
	m := New(Config{Name: "t", Self: "a", Nodes: []string{"a", "zz"}}, nil)
	// Find a key owned by zz.
	for i := 0; ; i++ {
		k := fmt.Sprintf("key-%d", i)
		if m.Owner(k) == "zz" {
			if err := m.Put(k, int64(1)); err == nil {
				t.Fatal("remote put without dialer must fail")
			}
			return
		}
	}
}

func TestWALReplayRestoresState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Name: "stats", Self: "n0", WAL: w}, nil)
	m.Put("a", int64(1))
	m.Put("b", int64(2))
	m.Put("a", int64(3)) // overwrite
	m.Delete("b")
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	state, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	m2 := New(Config{Name: "stats", Self: "n0"}, nil)
	m2.Restore(state)
	v, ok, _ := m2.Get("a")
	if !ok || v.(int64) != 3 {
		t.Fatalf("restored a = %v %v, want 3", v, ok)
	}
	if _, ok, _ := m2.Get("b"); ok {
		t.Fatal("deleted key must stay deleted after replay")
	}
}

func TestWALReplayToleratesTornWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := OpenWAL(path)
	m := New(Config{Name: "s", Self: "n0", WAL: w}, nil)
	m.Put("a", int64(1))
	w.Close()
	// Simulate a torn write: append garbage header + partial body.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0, 0, 1, 0, 0xde, 0xad})
	f.Close()
	state, err := Replay(path)
	if err != nil {
		t.Fatal(err)
	}
	if v := state["s"]["a"]; v.(int64) != 1 {
		t.Fatalf("state after torn write = %v, want a=1", state)
	}
}

func TestWALApplyLogged(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _ := OpenWAL(path)
	m := New(Config{Name: "s", Self: "n0", WAL: w}, nil)
	m.RegisterOp("set9", func(cur any, arg []byte) any { return int64(9) })
	m.Apply("k", "set9", nil)
	w.Close()
	state, _ := Replay(path)
	if v := state["s"]["k"]; v == nil || v.(int64) != 9 {
		t.Fatalf("applied value not in WAL: %v", state)
	}
}

func TestConcurrentMixedOps(t *testing.T) {
	m := single(t)
	m.RegisterOp("inc", func(cur any, arg []byte) any {
		var c int64
		if cur != nil {
			c = cur.(int64)
		}
		return c + 1
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				k := fmt.Sprintf("k%d", i%17)
				switch i % 3 {
				case 0:
					m.Apply(k, "inc", nil)
				case 1:
					m.Get(k)
				default:
					m.Put(fmt.Sprintf("p%d-%d", w, i), i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Property: Get returns exactly what Put stored, for arbitrary string
// keys and integer values.
func TestPutGetRoundTripProperty(t *testing.T) {
	m := single(t)
	f := func(key string, val int64) bool {
		if err := m.Put(key, val); err != nil {
			return false
		}
		v, ok, err := m.Get(key)
		return err == nil && ok && v.(int64) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceMigratesDepartedKeys(t *testing.T) {
	maps := cluster(t, 3)
	for i := 0; i < 200; i++ {
		maps[0].Put(fmt.Sprintf("key-%d", i), int64(i))
	}
	// Node n2 departs: n0 and n1 rebalance to the survivor set.
	survivors := []string{"n0", "n1"}
	// n2's keys are lost with it (no replication); survivors re-home
	// their own keys, which for rendezvous hashing means none move
	// between survivors — only the *ownership* of n2's keys changes.
	m0, _ := maps[0].Rebalance(survivors)
	m1, _ := maps[1].Rebalance(survivors)
	if m0 != 0 || m1 != 0 {
		t.Fatalf("survivor keys moved (%d, %d); rendezvous hashing must not reshuffle them", m0, m1)
	}
	// Keys that lived on survivors remain readable from either node.
	found := 0
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		if v, ok, err := maps[1].Get(k); err == nil && ok && v.(int64) == int64(i) {
			found++
		}
	}
	if found == 0 || found == 200 {
		t.Fatalf("found = %d, want the survivors' share (0 < n < 200)", found)
	}
}

func TestRebalanceJoinPushesKeys(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	names := []string{"n0", "n1"}
	mux0, mux1 := comm.NewMux(), comm.NewMux()
	m0 := New(Config{Name: "t", Self: "n0", Nodes: []string{"n0"}, Dialer: inprocDialer{net}}, mux0)
	net.Join("n0", mux0)
	for i := 0; i < 100; i++ {
		m0.Put(fmt.Sprintf("key-%d", i), int64(i))
	}
	// n1 joins.
	m1 := New(Config{Name: "t", Self: "n1", Nodes: names, Dialer: inprocDialer{net}}, mux1)
	net.Join("n1", mux1)
	migrated, err := m0.Rebalance(names)
	if err != nil {
		t.Fatal(err)
	}
	if migrated == 0 {
		t.Fatal("a joining node must claim some keys")
	}
	if m1.LocalLen() != migrated {
		t.Fatalf("n1 holds %d keys, expected %d migrated", m1.LocalLen(), migrated)
	}
	// Everything stays readable from both nodes.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, ok, err := m1.Get(k)
		if err != nil || !ok || v.(int64) != int64(i) {
			t.Fatalf("key %q unreadable after join: %v %v %v", k, v, ok, err)
		}
	}
	if got := m0.Members(); len(got) != 2 {
		t.Fatalf("members = %v", got)
	}
}
