package harness

import (
	"fmt"
	"sync"
	"time"

	"hfetch"
	"hfetch/internal/workloads"
)

// ExtMultiNode is an extension experiment beyond the paper's figures
// (its future work proposes deploying HFetch at larger scales): a fixed
// population of client processes is spread over 1, 2 and 4 compute
// nodes of an emulated cluster. Segment mappings are global (the
// distributed hashmap), so clients on one node hit segments another
// node's engine prefetched — served through the node-to-node
// communicator. The rows report end-to-end time, hit ratio, and the
// remote-read traffic that appears as the node count grows.
func ExtMultiNode(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	nodeScales := []int{1, 2, 4}
	procs := 16
	fileSize := int64(1 << 20)
	passes := 3
	req := int64(64 << 10)
	if opts.Quick {
		procs = 8
		passes = 2
	}

	var rows []Row
	for _, nodes := range nodeScales {
		var secs, hit, remote float64
		for rep := 0; rep < opts.Repeats; rep++ {
			cfg := hfetch.DefaultConfig()
			cfg.Nodes = nodes
			cfg.SegmentSize = req
			cfg.EngineUpdateThreshold = 10
			cfg.EngineInterval = 50 * time.Millisecond
			cfg.EngineThreads = 4
			cfg.SeqBoost = 0.5
			// Per-node RAM/NVMe plus a shared burst buffer.
			cfg.Tiers = hfetch.DefaultTiers(fileSize, 2*fileSize, 4*fileSize)
			cluster, err := hfetch.NewCluster(cfg)
			if err != nil {
				return nil, err
			}
			const file = "ext/shared"
			if err := cluster.CreateFile(file, fileSize); err != nil {
				cluster.Stop()
				return nil, err
			}

			start := time.Now()
			var wg sync.WaitGroup
			var mu sync.Mutex
			var hits, misses int64
			for p := 0; p < procs; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					node := cluster.Node(p % nodes)
					client := node.NewClient()
					f, err := client.Open(file)
					if err != nil {
						return
					}
					defer f.Close()
					buf := make([]byte, req)
					sc := workloads.TimeSteppedCompute(file, fileSize, req, passes, 10*time.Millisecond, 2*time.Millisecond)
					for _, acc := range sc {
						if acc.Think > 0 {
							time.Sleep(acc.Think)
						}
						f.ReadAt(buf[:acc.Len], acc.Off)
					}
					mu.Lock()
					hits += client.Stats().Hits()
					misses += client.Stats().Misses()
					mu.Unlock()
				}(p)
			}
			wg.Wait()
			secs += time.Since(start).Seconds()
			if hits+misses > 0 {
				hit += float64(hits) / float64(hits+misses)
			}
			var rr int64
			for i := 0; i < nodes; i++ {
				reads, _ := cluster.Node(i).Server().RemoteStats()
				rr += reads
			}
			remote += float64(rr)
			cluster.Stop()
		}
		n := float64(opts.Repeats)
		rows = append(rows, Row{
			Figure:   "ext-nodes",
			Config:   fmt.Sprintf("nodes=%d", nodes),
			System:   "hfetch",
			Seconds:  secs / n,
			HitRatio: hit / n,
			Extra:    map[string]float64{"remote_reads": remote / n},
		})
	}
	return rows, nil
}
