package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the leak guard needs; taking the
// interface keeps this file out of non-test binaries' testing import
// graph concerns while remaining directly usable as
// `defer leakcheck.Guard(t)()`.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// leakAllowlist matches goroutine stacks that are expected to outlive
// any single test: runtime helpers, the testing framework itself, and
// net/http's shared transport machinery (idle keep-alive readers park
// there between requests and are reaped on their own schedule).
var leakAllowlist = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"runtime.goexit",
	"runtime.gc",
	"runtime.MHeap_Scavenger",
	"created by runtime.gc",
	"signal.signal_recv",
	"sigterm.handler",
	"runtime_mcall",
	"(*http.Transport).persistConn", // idle keep-alive readers
	"http.(*persistConn)",
	"net/http.(*persistConn)",
	"net/http.(*Transport)",
	"os/signal.loop",
	"go.opencensus.io", // defensive: matches nothing in this repo
}

// LeakCheck snapshots the running goroutines and returns a function
// that, deferred, re-snapshots and fails the test if new goroutines
// survive a retry window. Servers wound down with Close/Stop schedule
// their final exits asynchronously, so the guard polls for up to two
// seconds before declaring a leak — long enough for any wg.Wait-joined
// shutdown, short enough to keep the suite fast when nothing leaks.
//
// Usage:
//
//	defer leakcheck.Guard(t)()
//
// at the top of an integration test, before the system under test is
// built, so everything the test starts is in scope.
func Guard(t TB) func() {
	before := goroutineStacks()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("leaked %d goroutine(s) after test:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	}
}

// goroutineStacks captures every goroutine's stack as one string per
// goroutine, keyed for set-difference by their header-stripped bodies.
func goroutineStacks() map[string]bool {
	out := map[string]bool{}
	for _, g := range splitStacks() {
		out[stackKey(g)] = true
	}
	return out
}

// leakedSince returns the goroutines present now whose keys were not
// in the before snapshot and are not allowlisted, sorted for stable
// output.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range splitStacks() {
		if before[stackKey(g)] {
			continue
		}
		if allowlisted(g) {
			continue
		}
		leaked = append(leaked, g)
	}
	sort.Strings(leaked)
	return leaked
}

// splitStacks dumps all goroutines and splits the dump into one entry
// per goroutine, excluding the caller's own.
func splitStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		g = strings.TrimSpace(g)
		if g == "" {
			continue
		}
		// Skip the goroutine running the check itself.
		if strings.Contains(g, "leakcheck.splitStacks") || strings.Contains(g, "leakcheck.Guard") {
			continue
		}
		out = append(out, g)
	}
	return out
}

// stackKey reduces a goroutine dump to its creation-site identity: the
// "goroutine N [state]" header (which changes run to run) is dropped
// and the remaining frames identify what the goroutine is. Two
// goroutines parked at the same place collapse to one key, which is
// the right granularity: the guard asks "did a *kind* of goroutine
// appear that wasn't running before", not "did the count change" —
// worker-pool sizes legitimately vary.
func stackKey(g string) string {
	i := strings.Index(g, "\n")
	if i < 0 {
		return g
	}
	body := g[i+1:]
	// Argument values in frames (0xc000...) differ per instance; strip
	// hex literals so identical code paths compare equal.
	var b strings.Builder
	for _, line := range strings.Split(body, "\n") {
		if j := strings.Index(line, "(0x"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, " +0x"); j >= 0 {
			line = line[:j]
		}
		fmt.Fprintln(&b, line)
	}
	return b.String()
}

func allowlisted(g string) bool {
	for _, frag := range leakAllowlist {
		if strings.Contains(g, frag) {
			return true
		}
	}
	return false
}
