package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// fakeTB records Errorf calls instead of failing the real test.
type fakeTB struct {
	failed bool
	msg    string
}

func (f *fakeTB) Helper()                        {}
func (f *fakeTB) Logf(string, ...any)            {}
func (f *fakeTB) Errorf(format string, a ...any) { f.failed = true; f.msg = format }

func TestGuardCleanPass(t *testing.T) {
	ft := &fakeTB{}
	done := Guard(ft)

	// A goroutine that exits within the retry window must not trip the
	// guard.
	finished := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(finished)
	}()
	done()
	<-finished
	if ft.failed {
		t.Fatalf("clean run flagged as leaking: %s", ft.msg)
	}
}

func TestGuardCatchesLeak(t *testing.T) {
	ft := &fakeTB{}
	done := Guard(ft)

	stop := make(chan struct{})
	go func() { // deliberately outlives the window
		<-stop
	}()
	start := time.Now()
	done()
	close(stop)
	if !ft.failed {
		t.Fatal("parked goroutine not reported as a leak")
	}
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Fatalf("guard gave up after %v; want the full retry window", elapsed)
	}
	if !strings.Contains(ft.msg, "leaked") {
		t.Fatalf("unexpected error format: %q", ft.msg)
	}
}

func TestGuardAllowlist(t *testing.T) {
	if !allowlisted("goroutine 9 [IO wait]:\nnet/http.(*persistConn).readLoop(0xc0001)\n") {
		t.Fatal("http persistConn should be allowlisted")
	}
	if allowlisted("goroutine 7 [chan receive]:\nhfetch/internal/core/monitor.(*Monitor).daemon(0xc0002)\n") {
		t.Fatal("repo goroutines must not be allowlisted")
	}
}
