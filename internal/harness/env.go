package harness

import (
	"fmt"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/server"
	"hfetch/internal/devsim"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

// Env is one experiment's emulated machine: an origin file system (the
// PFS — or the burst buffers, for workflows whose data is staged there)
// plus factories for the systems under test, all sharing the same device
// time scale.
type Env struct {
	FS    *pfs.FS
	Scale float64
}

// OriginKind selects where the workload's data initially resides.
type OriginKind int

// Origin kinds.
const (
	// OriginPFS is the remote parallel file system.
	OriginPFS OriginKind = iota
	// OriginBB models data staged into the burst buffers (Figure 6).
	OriginBB
)

// NewEnv creates an environment. scale multiplies every modeled device
// time (smaller = faster experiments, identical shapes).
func NewEnv(origin OriginKind, scale float64) *Env {
	prof := devsim.PFSProfile
	if origin == OriginBB {
		prof = devsim.BurstBufferProfile
		prof.Name = "bb-origin"
		prof.Channels = 8
	}
	return &Env{FS: pfs.New(devsim.New(prof, scale)), Scale: scale}
}

// CreateFiles registers the workload's files.
func (e *Env) CreateFiles(files map[string]int64) error {
	for name, size := range files {
		if err := e.FS.Create(name, size); err != nil {
			return err
		}
	}
	return nil
}

// TierDef sizes one HFetch tier.
type TierDef struct {
	Name     string
	Capacity int64
}

// HFetchOpts tunes the HFetch instance an experiment builds.
type HFetchOpts struct {
	SegmentSize     int64
	Tiers           []TierDef
	UpdateThreshold int
	Interval        time.Duration
	Daemons         int
	EngineWorkers   int
	SeqBoost        float64
	HeatDir         string
	DecayUnit       time.Duration
}

// NewHFetch builds and starts a single-node HFetch system over the
// environment's origin.
func (e *Env) NewHFetch(opts HFetchOpts) (*baselines.HFetch, error) {
	if len(opts.Tiers) == 0 {
		return nil, fmt.Errorf("harness: HFetch needs at least one tier")
	}
	var stores []*tiers.Store
	for _, td := range opts.Tiers {
		prof, ok := tierProfiles[td.Name]
		if !ok {
			return nil, fmt.Errorf("harness: unknown tier %q", td.Name)
		}
		stores = append(stores, tiers.NewStore(td.Name, td.Capacity, devsim.New(prof, e.Scale)))
	}
	hier := tiers.NewHierarchy(stores...)
	stats, maps := server.NewLocalMaps("node0")
	decay := opts.DecayUnit
	if decay <= 0 {
		decay = 250 * time.Millisecond
	}
	cfg := server.Config{
		Node:        "node0",
		SegmentSize: opts.SegmentSize,
		Score:       score.Params{P: 2, Unit: decay},
		SeqBoost:    opts.SeqBoost,
		HeatDir:     opts.HeatDir,
	}
	cfg.Monitor.Daemons = opts.Daemons
	cfg.Engine = placement.Config{
		UpdateThreshold: opts.UpdateThreshold,
		Interval:        opts.Interval,
		Workers:         opts.EngineWorkers,
	}
	srv, err := server.New(cfg, e.FS, hier, stats, maps)
	if err != nil {
		return nil, err
	}
	srv.Start()
	return baselines.NewHFetch(srv, true), nil
}

var tierProfiles = map[string]devsim.Profile{
	"ram":  devsim.RAMProfile,
	"nvme": devsim.NVMeProfile,
	"bb":   devsim.BurstBufferProfile,
}

// RAMDevice returns a RAM-cache device model for the comparators.
func (e *Env) RAMDevice() *devsim.Device {
	return devsim.New(devsim.RAMProfile, e.Scale)
}

// Row is one output line of an experiment table, mirroring a bar or
// point in the paper's figure.
type Row struct {
	Figure string
	// Config identifies the x-axis position (workload, pattern, scale).
	Config string
	// System is the solution measured.
	System string
	// Seconds is the end-to-end time; Variance its across-repeat spread.
	Seconds  float64
	Variance float64
	// HitRatio is hits/(hits+misses) where applicable.
	HitRatio float64
	// Extra holds figure-specific values (events/sec, profile cost...).
	Extra map[string]float64
}

// String renders the row for the CLI.
func (r Row) String() string {
	s := fmt.Sprintf("%-8s %-22s %-14s %8.3fs", r.Figure, r.Config, r.System, r.Seconds)
	if r.HitRatio > 0 {
		s += fmt.Sprintf("  hit=%5.1f%%", r.HitRatio*100)
	}
	for k, v := range r.Extra {
		s += fmt.Sprintf("  %s=%.1f", k, v)
	}
	return s
}

// Opts controls experiment sizing.
type Opts struct {
	// Repeats is the number of measured runs per point (paper: 5).
	Repeats int
	// Quick shrinks scales for CI/bench runs.
	Quick bool
}

func (o Opts) normalized() Opts {
	if o.Repeats <= 0 {
		if o.Quick {
			o.Repeats = 1
		} else {
			o.Repeats = 3
		}
	}
	return o
}
