package harness

import (
	"testing"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/workloads"
)

func TestRunnerExecutesScripts(t *testing.T) {
	env := NewEnv(OriginPFS, 0.05)
	env.FS.Create("f", 1<<20)
	sys := baselines.NewNone(env.FS)
	defer sys.Stop()
	apps := []workloads.App{{
		Name: "a",
		Procs: []workloads.Script{
			workloads.TimeStepped("f", 1<<20, 64<<10, 2, 0),
			workloads.TimeStepped("f", 1<<20, 64<<10, 2, 0),
		},
	}}
	res, err := Run(sys, apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 2*2*16 {
		t.Fatalf("misses = %d, want 64", res.Misses)
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
}

func TestRunnerOpenFailure(t *testing.T) {
	env := NewEnv(OriginPFS, 0.01)
	sys := baselines.NewNone(env.FS)
	defer sys.Stop()
	apps := []workloads.App{{Name: "a", Procs: []workloads.Script{
		{{File: "ghost", Off: 0, Len: 10}},
	}}}
	if _, err := Run(sys, apps); err == nil {
		t.Fatal("missing file must propagate an error")
	}
}

func TestRunPhasesSequential(t *testing.T) {
	env := NewEnv(OriginPFS, 0.01)
	env.FS.Create("f", 1<<20)
	sys := baselines.NewNone(env.FS)
	defer sys.Stop()
	phase := []workloads.App{{Name: "p", Procs: []workloads.Script{
		workloads.TimeStepped("f", 1<<20, 64<<10, 1, 0),
	}}}
	res, err := RunPhases(sys, [][]workloads.App{phase, phase})
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 32 {
		t.Fatalf("misses = %d, want 32", res.Misses)
	}
}

func TestRepeatAveragesAndVariance(t *testing.T) {
	n := 0
	mean, series, err := Repeat(3, func() (RunResult, error) {
		n++
		return RunResult{Elapsed: time.Duration(n) * time.Second, HitRatio: 0.5}, nil
	})
	if err != nil || series.N() != 3 {
		t.Fatalf("repeat: %v, n=%d", err, series.N())
	}
	if mean.Elapsed != 2*time.Second {
		t.Fatalf("mean = %v, want 2s", mean.Elapsed)
	}
	if series.Variance() <= 0 {
		t.Fatal("variance must be positive for distinct runs")
	}
	if mean.HitRatio != 0.5 {
		t.Fatalf("hit ratio mean = %v", mean.HitRatio)
	}
}

func TestHFetchEnvBuilderRejectsBadTiers(t *testing.T) {
	env := NewEnv(OriginPFS, 1)
	if _, err := env.NewHFetch(HFetchOpts{}); err == nil {
		t.Fatal("no tiers must be rejected")
	}
	if _, err := env.NewHFetch(HFetchOpts{Tiers: []TierDef{{Name: "zzz", Capacity: 1}}}); err == nil {
		t.Fatal("unknown tier must be rejected")
	}
}

func TestRowString(t *testing.T) {
	r := Row{Figure: "figX", Config: "c", System: "s", Seconds: 1.5, HitRatio: 0.5,
		Extra: map[string]float64{"k": 2}}
	s := r.String()
	if s == "" {
		t.Fatal("empty row string")
	}
}

// Shape smoke test: on a shared-file workload, HFetch must beat the
// no-prefetching baseline and produce hits.
func TestHFetchBeatsNoneOnSharedReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	run := func(mk func(env *Env) (baselines.System, error)) RunResult {
		env := NewEnv(OriginPFS, 1)
		env.FS.Create("f", 1<<20)
		apps := []workloads.App{{Name: "a"}}
		for p := 0; p < 8; p++ {
			apps[0].Procs = append(apps[0].Procs,
				workloads.TimeStepped("f", 1<<20, 64<<10, 4, 10*time.Millisecond))
		}
		sys, err := mk(env)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Stop()
		res, err := Run(sys, apps)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	hf := run(func(env *Env) (baselines.System, error) {
		return env.NewHFetch(HFetchOpts{
			SegmentSize:     64 << 10,
			Tiers:           []TierDef{{Name: "ram", Capacity: 2 << 20}},
			UpdateThreshold: 1, SeqBoost: 0.5, DecayUnit: time.Second,
		})
	})
	none := run(func(env *Env) (baselines.System, error) { return baselines.NewNone(env.FS), nil })
	if hf.HitRatio < 0.5 {
		t.Fatalf("hfetch hit ratio = %.2f, want > 0.5 on re-read workload", hf.HitRatio)
	}
	if hf.Elapsed >= none.Elapsed {
		t.Fatalf("hfetch (%v) must beat none (%v) on shared re-reads", hf.Elapsed, none.Elapsed)
	}
}

func TestAblationPlacementShape(t *testing.T) {
	rows, err := AblationPlacement(Opts{Quick: true, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.System] = r.Extra["hot_decile_in_ram_pct"]
	}
	if byName["score(alg1)"] <= byName["random"] || byName["score(alg1)"] <= byName["roundrobin"] {
		t.Fatalf("Algorithm 1 must dominate: %v", byName)
	}
	if byName["score(alg1)"] < 90 {
		t.Fatalf("Algorithm 1 hot-decile placement = %.1f%%, want ~100%%", byName["score(alg1)"])
	}
}

func TestAblationScoringShape(t *testing.T) {
	rows, err := AblationScoring(Opts{Quick: true})
	if err != nil || len(rows) != 3 {
		t.Fatal(err)
	}
	// Higher p decays faster: retention must be non-increasing.
	prev := rows[0].Extra["retention_units"]
	for _, r := range rows[1:] {
		cur := r.Extra["retention_units"]
		if cur > prev {
			t.Fatalf("retention must fall with p: %v", rows)
		}
		prev = cur
	}
}

func TestAblationSegmentationShape(t *testing.T) {
	rows, err := AblationSegmentation(Opts{Quick: true})
	if err != nil || len(rows) != 2 {
		t.Fatal(err)
	}
	fixed, adaptive := rows[0], rows[1]
	if adaptive.Extra["overfetch_mib"] >= fixed.Extra["overfetch_mib"] {
		t.Fatalf("adaptive must over-fetch less: %v vs %v", adaptive.Extra, fixed.Extra)
	}
	if adaptive.Extra["segments"] <= fixed.Extra["segments"] {
		t.Fatalf("adaptive pays with more segments: %v vs %v", adaptive.Extra, fixed.Extra)
	}
}

func TestExtMultiNodeRemoteTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment")
	}
	rows, err := ExtMultiNode(Opts{Quick: true, Repeats: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Extra["remote_reads"] != 0 {
		t.Fatal("single node must have no remote reads")
	}
	if rows[2].Extra["remote_reads"] == 0 {
		t.Fatal("4 nodes must produce remote tier reads")
	}
}

func TestAblationCachePolicyShape(t *testing.T) {
	rows, err := AblationCachePolicy(Opts{Quick: true, Repeats: 1})
	if err != nil || len(rows) != 2 {
		t.Fatal(err)
	}
	lru, lrfu := rows[0].Extra["hot_resident_pct"], rows[1].Extra["hot_resident_pct"]
	if lrfu <= lru {
		t.Fatalf("LRFU must protect the hot set from scan floods: lru=%.1f lrfu=%.1f", lru, lrfu)
	}
	if lrfu < 50 {
		t.Fatalf("LRFU hot residency = %.1f%%, want most of the hot set", lrfu)
	}
}
