package harness

import (
	"fmt"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/workloads"
)

// Fig4a compares a hierarchical prefetcher against single-tier serial
// and parallel prefetchers and no prefetching, with HFetch's RAM
// footprint 8x smaller than the single-tier caches. Reproduces Figure
// 4(a): end-to-end time per solution.
func Fig4a(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	procs, steps := 32, 10
	fileSize := int64(2 << 20)
	req := int64(64 << 10)
	think := 30 * time.Millisecond
	if opts.Quick {
		procs, steps = 16, 5
		fileSize = 1 << 20
		think = 15 * time.Millisecond
	}
	groups := procs / 4 // 4 processes share each file
	dataBytes := int64(groups) * fileSize

	build := func() []workloads.App {
		apps := make([]workloads.App, groups)
		for g := range apps {
			file := fmt.Sprintf("fig4a/f%d", g)
			apps[g].Name = fmt.Sprintf("app%d", g)
			for p := 0; p < 4; p++ {
				sc := workloads.TimeSteppedCompute(file, fileSize, req, steps, think, 2*time.Millisecond)
				// Ranks are never in perfect lockstep: a small skew lets
				// the first reader's accesses warm the hierarchy for the
				// rest of its group.
				sc[0].Think += time.Duration(p) * 10 * time.Millisecond
				apps[g].Procs = append(apps[g].Procs, sc)
			}
		}
		return apps
	}

	type sysDef struct {
		name string
		mk   func(env *Env) (baselines.System, error)
		ram  int64
	}
	systems := []sysDef{
		{"parallel", func(env *Env) (baselines.System, error) {
			return baselines.NewPrefetcher(env.FS, baselines.PrefetcherConfig{
				CacheBytes: dataBytes, CacheDevice: env.RAMDevice(),
				SegmentSize: req, Depth: 8, Workers: 4,
			}), nil
		}, dataBytes},
		{"hfetch", func(env *Env) (baselines.System, error) {
			return env.NewHFetch(HFetchOpts{
				SegmentSize: req,
				Tiers: []TierDef{
					{Name: "ram", Capacity: dataBytes / 8},
					{Name: "nvme", Capacity: 3 * dataBytes / 8},
					{Name: "bb", Capacity: dataBytes / 2},
				},
				UpdateThreshold: 10, // medium, scaled to the emulation's event rate
				Interval:        50 * time.Millisecond,
				EngineWorkers:   8,
				SeqBoost:        0.5,
				DecayUnit:       time.Second,
			})
		}, dataBytes / 8},
		{"serial", func(env *Env) (baselines.System, error) {
			return baselines.NewPrefetcher(env.FS, baselines.PrefetcherConfig{
				CacheBytes: dataBytes, CacheDevice: env.RAMDevice(),
				SegmentSize: req, Depth: 8, Workers: 1,
			}), nil
		}, dataBytes},
		{"none", func(env *Env) (baselines.System, error) {
			return baselines.NewNone(env.FS), nil
		}, 0},
	}

	var rows []Row
	for _, sd := range systems {
		mean, series, err := Repeat(opts.Repeats, func() (RunResult, error) {
			env := NewEnv(OriginPFS, 1)
			apps := build()
			if err := createAll(env, apps, fileSize); err != nil {
				return RunResult{}, err
			}
			sys, err := sd.mk(env)
			if err != nil {
				return RunResult{}, err
			}
			defer sys.Stop()
			return Run(sys, apps)
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Figure:   "fig4a",
			Config:   "reduce-ram-8x",
			System:   sd.name,
			Seconds:  mean.Elapsed.Seconds(),
			Variance: series.Variance(),
			HitRatio: mean.HitRatio,
			Extra:    map[string]float64{"ram_mb": float64(sd.ram) / (1 << 20)},
		})
	}
	return rows, nil
}

// Fig4b weak-scales client processes and compares extending the
// prefetching cache across tiers (HFetch) against in-memory-only
// prefetchers and no prefetching. Reproduces Figure 4(b).
func Fig4b(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	scales := []int{8, 16, 32, 64} // stands for 320..2560 ranks
	if opts.Quick {
		scales = []int{8, 32}
	}
	// Weak scaling: every process owns a private file it sweeps in
	// `steps` time steps. At the smallest scale the in-memory cache
	// holds everything (all solutions equal, as in the paper); at the
	// largest it holds 1/8 of the data.
	fileSize := int64(512 << 10)
	req := int64(64 << 10)
	steps := 4
	think := 40 * time.Millisecond
	ramCache := int64(8) * fileSize // the in-memory prefetchers' entire cache

	var rows []Row
	for _, procs := range scales {
		build := func() []workloads.App {
			app := workloads.App{Name: "app0"}
			for p := 0; p < procs; p++ {
				file := fmt.Sprintf("fig4b/p%d", p)
				app.Procs = append(app.Procs,
					workloads.TimeSteppedCompute(file, fileSize, req, steps, think, 2*time.Millisecond))
			}
			return []workloads.App{app}
		}

		type sysDef struct {
			name string
			mk   func(env *Env) (baselines.System, error)
		}
		systems := []sysDef{
			{"inmem-optimal", func(env *Env) (baselines.System, error) {
				return baselines.NewInMemOptimal(env.FS, baselines.InMemConfig{
					CacheBytes: ramCache, CacheDevice: env.RAMDevice(),
					SegmentSize: req, Depth: 8, Processes: procs,
				}), nil
			}},
			{"inmem-naive", func(env *Env) (baselines.System, error) {
				return baselines.NewInMemNaive(env.FS, baselines.InMemConfig{
					CacheBytes: ramCache, CacheDevice: env.RAMDevice(),
					SegmentSize: req, Depth: 8, Processes: procs,
				}), nil
			}},
			{"hfetch", func(env *Env) (baselines.System, error) {
				return env.NewHFetch(HFetchOpts{
					SegmentSize: req,
					Tiers: []TierDef{
						{Name: "ram", Capacity: ramCache},
						{Name: "nvme", Capacity: 3 * ramCache},
						{Name: "bb", Capacity: 4 * ramCache},
					},
					UpdateThreshold: 10, // medium, scaled to the emulation's event rate
					Interval:        50 * time.Millisecond,
					EngineWorkers:   8,
					SeqBoost:        0.5,
					DecayUnit:       time.Second,
				})
			}},
			{"none", func(env *Env) (baselines.System, error) {
				return baselines.NewNone(env.FS), nil
			}},
		}
		for _, sd := range systems {
			mean, series, err := Repeat(opts.Repeats, func() (RunResult, error) {
				env := NewEnv(OriginPFS, 1)
				apps := build()
				if err := createAll(env, apps, fileSize); err != nil {
					return RunResult{}, err
				}
				sys, err := sd.mk(env)
				if err != nil {
					return RunResult{}, err
				}
				defer sys.Stop()
				return Run(sys, apps)
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Figure:   "fig4b",
				Config:   fmt.Sprintf("procs=%d", procs),
				System:   sd.name,
				Seconds:  mean.Elapsed.Seconds(),
				Variance: series.Variance(),
				HitRatio: mean.HitRatio,
			})
		}
	}
	return rows, nil
}
