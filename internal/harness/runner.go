// Package harness drives the paper's experiments: it executes workload
// scripts against a System (HFetch or a comparator), measures end-to-end
// time and hit ratios, and regenerates every figure of the evaluation
// section as a table of rows. cmd/hfbench and the repository benchmarks
// are thin wrappers around this package.
package harness

import (
	"fmt"
	"sync"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/metrics"
	"hfetch/internal/workloads"
)

// RunResult is one measured execution of a workload on a system.
type RunResult struct {
	Elapsed  time.Duration
	Hits     int64
	Misses   int64
	HitRatio float64
	ReadTime time.Duration
}

// Run executes all apps concurrently (one goroutine per process) against
// sys and returns the end-to-end measurement.
func Run(sys baselines.System, apps []workloads.App) (RunResult, error) {
	return run(sys, [][]workloads.App{apps})
}

// RunPhases executes each phase's apps concurrently, phases one after
// another (a workflow pipeline), accumulating one measurement.
func RunPhases(sys baselines.System, phases [][]workloads.App) (RunResult, error) {
	return run(sys, phases)
}

func run(sys baselines.System, phases [][]workloads.App) (RunResult, error) {
	before := snapshot(sys.Stats())
	start := time.Now()
	for _, apps := range phases {
		var wg sync.WaitGroup
		errCh := make(chan error, 16)
		for _, app := range apps {
			for _, script := range app.Procs {
				wg.Add(1)
				go func(app string, script workloads.Script) {
					defer wg.Done()
					if err := runProc(sys, app, script); err != nil {
						select {
						case errCh <- err:
						default:
						}
					}
				}(app.Name, script)
			}
		}
		wg.Wait()
		close(errCh)
		for err := range errCh {
			return RunResult{}, err
		}
	}
	elapsed := time.Since(start)
	after := snapshot(sys.Stats())
	hits := after.hits - before.hits
	misses := after.misses - before.misses
	res := RunResult{
		Elapsed:  elapsed,
		Hits:     hits,
		Misses:   misses,
		ReadTime: after.readTime - before.readTime,
	}
	if hits+misses > 0 {
		res.HitRatio = float64(hits) / float64(hits+misses)
	}
	return res, nil
}

type statSnap struct {
	hits, misses int64
	readTime     time.Duration
}

func snapshot(s *metrics.IOStats) statSnap {
	return statSnap{hits: s.Hits(), misses: s.Misses(), readTime: s.TotalReadTime()}
}

// runProc executes one process script: handles are opened lazily per
// file and closed when the script ends.
func runProc(sys baselines.System, app string, script workloads.Script) error {
	handles := make(map[string]baselines.Handle)
	defer func() {
		for _, h := range handles {
			h.Close()
		}
	}()
	var buf []byte
	for _, acc := range script {
		if acc.Think > 0 {
			time.Sleep(acc.Think)
		}
		h, ok := handles[acc.File]
		if !ok {
			var err error
			h, err = sys.Open(app, acc.File)
			if err != nil {
				return fmt.Errorf("harness: open %q: %w", acc.File, err)
			}
			handles[acc.File] = h
		}
		if int64(len(buf)) < acc.Len {
			buf = make([]byte, acc.Len)
		}
		if _, err := h.ReadAt(buf[:acc.Len], acc.Off); err != nil {
			return fmt.Errorf("harness: read %q@%d: %w", acc.File, acc.Off, err)
		}
	}
	return nil
}

// Repeat runs fn n times and aggregates the elapsed-seconds series plus
// the last run's result (the paper reports averages of five runs).
func Repeat(n int, fn func() (RunResult, error)) (mean RunResult, series *metrics.Series, err error) {
	if n < 1 {
		n = 1
	}
	series = &metrics.Series{}
	var last RunResult
	var hitSum float64
	for i := 0; i < n; i++ {
		last, err = fn()
		if err != nil {
			return RunResult{}, nil, err
		}
		series.Add(last.Elapsed.Seconds())
		hitSum += last.HitRatio
	}
	mean = last
	mean.Elapsed = time.Duration(series.Mean() * float64(time.Second))
	mean.HitRatio = hitSum / float64(n)
	return mean, series, nil
}
