package harness

import (
	"fmt"
	"math/rand"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/core/auditor"
	"hfetch/internal/core/ioclient"
	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/seg"
	"hfetch/internal/dhm"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

// AblationPlacement compares Algorithm 1 against the random and
// round-robin placement alternatives §IV-A mentions, on a Zipf-skewed
// score stream: the metric is how much of the hottest decile lands in
// the fastest tier, plus the planning cost.
func AblationPlacement(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	policies := []struct {
		name string
		p    placement.Policy
	}{
		{"score(alg1)", placement.PolicyScore},
		{"random", placement.PolicyRandom},
		{"roundrobin", placement.PolicyRoundRobin},
	}
	const segSize = 1 << 10
	var rows []Row
	for _, pol := range policies {
		var hotFrac float64
		var planSec float64
		for rep := 0; rep < opts.Repeats; rep++ {
			fs := pfs.New(nil)
			fs.Create("f", 1<<30)
			segr := seg.NewSegmenter(segSize)
			ram := tiers.NewStore("ram", 32*segSize, nil)
			nvme := tiers.NewStore("nvme", 96*segSize, nil)
			hier := tiers.NewHierarchy(ram, nvme)
			stats := dhm.New(dhm.Config{Name: "s", Self: "n0"}, nil)
			maps := dhm.New(dhm.Config{Name: "m", Self: "n0"}, nil)
			aud := auditor.New(auditor.Config{Node: "n0", Segmenter: segr}, stats, maps)
			eng := placement.New(placement.Config{Policy: pol.p, Workers: 4}, hier,
				ioclient.New(fs, segr), aud)
			rng := rand.New(rand.NewSource(int64(rep)))
			start := time.Now()
			for j := 0; j < 4096; j++ {
				k := int64(rng.Intn(256))
				eng.ScoreUpdated(auditor.Update{
					ID: seg.ID{File: "f", Index: k}, Score: 1 / float64(k+1), Size: segSize,
				})
				if j%128 == 0 {
					eng.Flush()
				}
			}
			eng.Flush()
			planSec += time.Since(start).Seconds()
			hot := 0
			for k := int64(0); k < 26; k++ {
				if ram.Has(seg.ID{File: "f", Index: k}) {
					hot++
				}
			}
			hotFrac += float64(hot) / 26
			eng.Stop()
		}
		rows = append(rows, Row{
			Figure:  "abl-place",
			Config:  "zipf-256seg",
			System:  pol.name,
			Seconds: planSec / float64(opts.Repeats),
			Extra: map[string]float64{
				"hot_decile_in_ram_pct": hotFrac / float64(opts.Repeats) * 100,
			},
		})
	}
	return rows, nil
}

// AblationScoring sweeps the decay base p of Equation (1) and reports
// how long a once-hot segment stays above an eviction threshold — the
// retention/adaptivity trade-off the parameter controls.
func AblationScoring(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	var rows []Row
	for _, p := range []float64{2, 4, 8} {
		m := score.NewModel(score.Params{P: p, Unit: 100 * time.Millisecond})
		var st score.Stats
		t0 := time.Unix(0, 0)
		for i := 0; i < 10; i++ {
			m.OnAccess(&st, t0)
		}
		// How many decay units until the score falls below 1?
		units := 0
		for ; units < 1000; units++ {
			at := t0.Add(time.Duration(units) * 100 * time.Millisecond)
			if m.Score(&st, at) < 1 {
				break
			}
		}
		rows = append(rows, Row{
			Figure: "abl-score",
			Config: fmt.Sprintf("p=%g", p),
			System: "eq1",
			Extra:  map[string]float64{"retention_units": float64(units)},
		})
	}
	return rows, nil
}

// AblationSegmentation compares fixed-grain and adaptive segmentation on
// a mixed request stream: segment count (metadata footprint) and bytes
// the prefetch unit would over-fetch relative to what was requested.
func AblationSegmentation(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	const fileSize = 1 << 24
	rng := rand.New(rand.NewSource(11))
	type req struct{ off, ln int64 }
	reqs := make([]req, 4096)
	for i := range reqs {
		// Mixed workload: small random reads with occasional large scans.
		ln := int64(rng.Intn(48<<10) + 4<<10)
		if i%16 == 0 {
			ln = int64(rng.Intn(512<<10) + 128<<10)
		}
		reqs[i] = req{off: int64(rng.Intn(fileSize - int(ln))), ln: ln}
	}

	var rows []Row
	// Fixed 64 KiB grain.
	fixed := seg.NewSegmenter(64 << 10)
	var fixedSegs = map[int64]struct{}{}
	var fixedOver int64
	for _, r := range reqs {
		ids := fixed.Cover("f", r.off, r.ln)
		var covered int64
		for _, id := range ids {
			fixedSegs[id.Index] = struct{}{}
			covered += fixed.RangeOf(id, fileSize).Len
		}
		fixedOver += covered - r.ln
	}
	rows = append(rows, Row{
		Figure: "abl-seg", Config: "mixed-4096reqs", System: "fixed-64k",
		Extra: map[string]float64{
			"segments":      float64(len(fixedSegs)),
			"overfetch_mib": float64(fixedOver) / (1 << 20),
		},
	})

	// Adaptive segmentation derives boundaries from the stream itself.
	ad := seg.NewAdaptive(1 << 16)
	var adOver int64
	for _, r := range reqs {
		var covered int64
		for _, rg := range ad.Observe(r.off, r.ln) {
			covered += rg.Len
		}
		adOver += covered - r.ln
	}
	rows = append(rows, Row{
		Figure: "abl-seg", Config: "mixed-4096reqs", System: "adaptive",
		Extra: map[string]float64{
			"segments":      float64(len(ad.Segments())),
			"overfetch_mib": float64(adOver) / (1 << 20),
		},
	})
	return rows, nil
}

// AblationCachePolicy compares LRU and LRFU eviction in the single-tier
// prefetcher cache on a hot-set-plus-scan workload: a scan floods an LRU
// cache and evicts the hot set, while LRFU's frequency term protects it.
func AblationCachePolicy(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	const (
		segSize  = 64 << 10
		hotSegs  = 8
		coldSegs = 64
		rounds   = 6
	)
	policies := []struct {
		name string
		p    baselines.EvictionPolicy
	}{
		{"lru", baselines.EvictLRU},
		{"lrfu", baselines.EvictLRFU},
	}
	var rows []Row
	for _, pol := range policies {
		var hitSum float64
		for rep := 0; rep < opts.Repeats; rep++ {
			fs := pfs.New(nil)
			fs.Create("hot", hotSegs*segSize)
			fs.Create("cold", coldSegs*segSize)
			sys := baselines.NewPrefetcher(fs, baselines.PrefetcherConfig{
				CacheBytes:  (hotSegs + coldSegs/4) * segSize,
				SegmentSize: segSize,
				Depth:       2,
				Workers:     2,
				Eviction:    pol.p,
				Lambda:      0.05,
			})
			hotF, err := sys.Open("a", "hot")
			if err != nil {
				return nil, err
			}
			coldF, _ := sys.Open("a", "cold")
			buf := make([]byte, segSize)
			// Hot reads are paced (compute on each block) so readahead
			// lands ahead of the reader and the hot set accumulates
			// cache touches; the cold scan is an unpaced flood.
			hotPass := func() {
				for i := int64(0); i < hotSegs; i++ {
					hotF.ReadAt(buf, i*segSize)
					time.Sleep(500 * time.Microsecond)
				}
			}
			for r := 0; r < rounds; r++ {
				hotPass()
				for i := int64(0); i < coldSegs; i++ {
					coldF.ReadAt(buf, i*segSize)
				}
				time.Sleep(5 * time.Millisecond) // let prefetches land
			}
			// The metric is hot-set residency after the final cold
			// flood: how much of the working set survived the scan.
			hitSum += float64(sys.ResidentOf("hot")) / float64(hotSegs)
			hotF.Close()
			coldF.Close()
			sys.Stop()
		}
		rows = append(rows, Row{
			Figure: "abl-cache",
			Config: "hotset-vs-scan",
			System: pol.name,
			Extra: map[string]float64{
				"hot_resident_pct": hitSum / float64(opts.Repeats) * 100,
			},
		})
	}
	return rows, nil
}
