package harness

import (
	"fmt"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/workloads"
)

// Fig5 compares application-centric and data-centric (HFetch)
// prefetching across the four canonical access patterns. Four
// applications read the same dataset; the prefetching cache fits only
// half of it, so the applications compete. Reproduces Figure 5:
// end-to-end time per approach plus both hit ratios per pattern.
func Fig5(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	const nApps = 4
	procsPerApp := 8
	fileSize := int64(2 << 20)
	req := int64(64 << 10)
	think := 10 * time.Millisecond
	if opts.Quick {
		procsPerApp = 4
		fileSize = 1 << 20
	}
	totalPerProc := fileSize // each process reads a file's worth of data
	// The distinct dataset: 4 shared files every application reads.
	dataBytes := int64(4) * fileSize

	// Every app reads the same 4 files: app i's process j works on file
	// j%4, so each file is shared across all applications.
	// The four applications form an analysis/visualization pipeline:
	// stage i starts a beat after stage i-1, so later stages re-read data
	// earlier stages already touched (the WORM, read-many shape).
	stagger := 120 * time.Millisecond
	build := func(p workloads.Pattern) []workloads.App {
		apps := make([]workloads.App, nApps)
		for i := range apps {
			apps[i].Name = fmt.Sprintf("app%d", i)
			for j := 0; j < procsPerApp; j++ {
				file := fmt.Sprintf("fig5/f%d", j%4)
				sc := workloads.PatternScript(p, file, fileSize, req, totalPerProc, think, int64(i*100+j))
				if len(sc) > 0 {
					sc[0].Think += time.Duration(i) * stagger
				}
				apps[i].Procs = append(apps[i].Procs, sc)
			}
		}
		return apps
	}

	var rows []Row
	for _, pattern := range workloads.Patterns() {
		type sysDef struct {
			name string
			mk   func(env *Env) (baselines.System, error)
		}
		systems := []sysDef{
			{"app-centric", func(env *Env) (baselines.System, error) {
				return baselines.NewAppCentric(env.FS, baselines.AppCentricConfig{
					// Fits the load of 2 of the 4 applications, split into
					// per-application partitions (the client-pull design).
					CacheBytes:  2 * dataBytes,
					CacheDevice: env.RAMDevice(),
					SegmentSize: req, Depth: 4, Workers: 4, Apps: nApps,
				}), nil
			}},
			{"data-centric", func(env *Env) (baselines.System, error) {
				return env.NewHFetch(HFetchOpts{
					SegmentSize: req,
					Tiers: []TierDef{ // one app's load in RAM, one in NVMe
						{Name: "ram", Capacity: dataBytes},
						{Name: "nvme", Capacity: dataBytes},
					},
					UpdateThreshold: 10, // medium, scaled to the emulation's event rate
					Interval:        50 * time.Millisecond,
					EngineWorkers:   8,
					SeqBoost:        0.5,
					DecayUnit:       time.Second,
				})
			}},
			{"none", func(env *Env) (baselines.System, error) {
				return baselines.NewNone(env.FS), nil
			}},
		}
		for _, sd := range systems {
			mean, series, err := Repeat(opts.Repeats, func() (RunResult, error) {
				env := NewEnv(OriginPFS, 1)
				apps := build(pattern)
				if err := createAll(env, apps, fileSize); err != nil {
					return RunResult{}, err
				}
				sys, err := sd.mk(env)
				if err != nil {
					return RunResult{}, err
				}
				defer sys.Stop()
				return Run(sys, apps)
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Row{
				Figure:   "fig5",
				Config:   string(pattern),
				System:   sd.name,
				Seconds:  mean.Elapsed.Seconds(),
				Variance: series.Variance(),
				HitRatio: mean.HitRatio,
			})
		}
	}
	return rows, nil
}
