package harness

import (
	"fmt"
	"time"

	"hfetch/internal/baselines"
	"hfetch/internal/workloads"
)

// workflowSystems builds the Figure 6 comparators: Stacker, KnowAc (with
// its profiling pass charged separately), HFetch, and no prefetching.
// All of them fetch from the burst buffers (the workflows' data is
// staged there) into a small RAM cache; HFetch additionally uses a
// node-local NVMe tier.

func runWorkflow(opts Opts, figure, config string, files map[string]int64,
	phases [][]workloads.App, ramCache, nvmeCache int64, req int64) ([]Row, error) {

	type sysDef struct {
		name string
		mk   func(env *Env) (baselines.System, error)
	}
	systems := []sysDef{
		{"stacker", func(env *Env) (baselines.System, error) {
			return baselines.NewStacker(env.FS, baselines.StackerConfig{
				CacheBytes: ramCache, CacheDevice: env.RAMDevice(),
				SegmentSize: req, Depth: 2, Workers: 4, MinCount: 2,
			}), nil
		}},
		{"knowac", nil}, // handled specially below (profiling pass)
		{"hfetch", func(env *Env) (baselines.System, error) {
			return env.NewHFetch(HFetchOpts{
				SegmentSize: req,
				Tiers: []TierDef{
					{Name: "ram", Capacity: ramCache},
					{Name: "nvme", Capacity: nvmeCache},
				},
				UpdateThreshold: 10, // medium, scaled to the emulation's event rate
				Interval:        50 * time.Millisecond,
				EngineWorkers:   8,
				SeqBoost:        0.5,
				DecayUnit:       time.Second,
			})
		}},
		{"none", func(env *Env) (baselines.System, error) {
			return baselines.NewNone(env.FS), nil
		}},
	}

	var rows []Row
	for _, sd := range systems {
		var profSum float64
		mean, series, err := Repeat(opts.Repeats, func() (RunResult, error) {
			env := NewEnv(OriginBB, 1)
			if err := env.CreateFiles(files); err != nil {
				return RunResult{}, err
			}
			if sd.name == "knowac" {
				ka := baselines.NewKnowAc(env.FS, baselines.KnowAcConfig{
					CacheBytes: ramCache, CacheDevice: env.RAMDevice(),
					SegmentSize: req, Workers: 4, Window: 128,
				})
				defer ka.Stop()
				ka.StartProfile()
				prof, err := RunPhases(ka, phases)
				if err != nil {
					return RunResult{}, err
				}
				profSum += prof.Elapsed.Seconds()
				ka.FinishProfile()
				return RunPhases(ka, phases)
			}
			sys, err := sd.mk(env)
			if err != nil {
				return RunResult{}, err
			}
			defer sys.Stop()
			return RunPhases(sys, phases)
		})
		if err != nil {
			return nil, err
		}
		row := Row{
			Figure:   figure,
			Config:   config,
			System:   sd.name,
			Seconds:  mean.Elapsed.Seconds(),
			Variance: series.Variance(),
			HitRatio: mean.HitRatio,
		}
		if sd.name == "knowac" {
			row.Extra = map[string]float64{"profile_cost": profSum / float64(opts.Repeats)}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6a weak-scales the Montage workflow (320→2560 ranks mapped to
// 8→64 processes) with data staged in the burst buffers. Reproduces
// Figure 6(a): end-to-end time per solution, KnowAc's profiling cost
// reported separately.
func Fig6a(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	scales := []int{8, 16, 32, 64}
	if opts.Quick {
		scales = []int{8, 32}
	}
	req := int64(64 << 10)
	var rows []Row
	for _, procs := range scales {
		cfg := workloads.MontageConfig{
			Procs:      procs,
			ImageBytes: 1 << 20,
			Images:     8,
			Req:        req,
			Steps:      16,
			Think:      10 * time.Millisecond,
		}
		if opts.Quick {
			cfg.Steps = 8
			cfg.Think = 5 * time.Millisecond
		}
		apps := workloads.Montage(cfg)
		phases := make([][]workloads.App, len(apps))
		for i, a := range apps {
			phases[i] = []workloads.App{a}
		}
		r, err := runWorkflow(opts, "fig6a", fmt.Sprintf("procs=%d", procs),
			workloads.MontageFiles(cfg), phases, 2<<20, 3<<20, req)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}

// Fig6b strong-scales the WRF workflow: the same total input divided
// across 8→64 processes, data staged in the burst buffers. Reproduces
// Figure 6(b).
func Fig6b(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	scales := []int{8, 16, 32, 64}
	if opts.Quick {
		scales = []int{8, 32}
	}
	req := int64(64 << 10)
	total := int64(16 << 20)
	if opts.Quick {
		total = 8 << 20
	}
	var rows []Row
	for _, procs := range scales {
		cfg := workloads.WRFConfig{
			Procs:      procs,
			TotalBytes: total,
			Req:        req,
			Steps:      4,
			Think:      10 * time.Millisecond,
			Domains:    4,
		}
		apps := workloads.WRF(cfg)
		phases := make([][]workloads.App, len(apps))
		for i, a := range apps {
			phases[i] = []workloads.App{a}
		}
		r, err := runWorkflow(opts, "fig6b", fmt.Sprintf("procs=%d", procs),
			workloads.WRFFiles(cfg), phases, total/8, total/4, req)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
