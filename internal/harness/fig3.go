package harness

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"hfetch/internal/core/placement"
	"hfetch/internal/core/score"
	"hfetch/internal/core/server"
	"hfetch/internal/events"
	"hfetch/internal/tiers"
	"hfetch/internal/workloads"
)

// Fig3a measures the HFetch server's event consumption rate (events per
// second) while scaling the number of client cores, for three
// daemon::engine thread splits of an 8-thread server (2::6, 4::4, 6::2).
// Reproduces Figure 3(a).
func Fig3a(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	// The consumption-rate measurement needs sustained pressure, not the
	// paper's absolute event count: 20K events per client keeps the
	// queue saturated at every scale while finishing in minutes on a
	// small host.
	perClient := 20_000
	clientScales := []int{4, 8, 16, 32, 64, 128}
	if opts.Quick {
		perClient = 5_000
		clientScales = []int{4, 16, 64}
	}
	splits := []struct{ daemons, engine int }{{2, 6}, {4, 4}, {6, 2}}

	var rows []Row
	for _, split := range splits {
		for _, clients := range clientScales {
			var rates []float64
			for rep := 0; rep < opts.Repeats; rep++ {
				rate, err := eventStorm(clients, perClient, split.daemons, split.engine)
				if err != nil {
					return nil, err
				}
				rates = append(rates, rate)
			}
			mean := 0.0
			for _, r := range rates {
				mean += r
			}
			mean /= float64(len(rates))
			rows = append(rows, Row{
				Figure: "fig3a",
				Config: fmt.Sprintf("%d::%d clients=%d", split.daemons, split.engine, clients),
				System: "hfetch",
				Extra:  map[string]float64{"events_per_sec": mean},
			})
		}
	}
	return rows, nil
}

// eventStorm posts clients*perClient enriched read events into a server
// configured with the given thread split and returns the consumption
// rate.
func eventStorm(clients, perClient, daemons, engineWorkers int) (float64, error) {
	env := NewEnv(OriginPFS, 1)
	const fileSize = 64 << 20
	files := make([]string, 8)
	for i := range files {
		files[i] = fmt.Sprintf("storm/f%d", i)
		env.FS.Create(files[i], fileSize)
	}
	ram := tiers.NewStore("ram", 4<<20, nil)
	hier := tiers.NewHierarchy(ram)
	stats, maps := server.NewLocalMaps("node0")
	cfg := server.Config{
		Node:        "node0",
		SegmentSize: 1 << 20,
		Score:       score.Params{P: 2, Unit: time.Second},
	}
	cfg.Monitor.Daemons = daemons
	cfg.Monitor.QueueCap = 1 << 17
	cfg.Engine = placement.Config{UpdateThreshold: placement.Medium, Workers: engineWorkers}
	srv, err := server.New(cfg, env.FS, hier, stats, maps)
	if err != nil {
		return 0, err
	}
	srv.Start()
	defer srv.Stop()
	for _, f := range files {
		srv.StartEpoch(f, fileSize)
	}

	total := clients * perClient
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			f := files[c%len(files)]
			for i := 0; i < perClient; i++ {
				srv.PostEvent(events.Event{
					Op:     events.OpRead,
					File:   f,
					Offset: rng.Int63n(fileSize - 4096),
					Length: 4096,
					Time:   time.Now(),
				})
			}
		}(c)
	}
	wg.Wait()
	// Producers done; wait for the daemon pool to drain the queue.
	for srv.Monitor().Consumed() < int64(total) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	return float64(total) / elapsed.Seconds(), nil
}

// Fig3b measures engine reactiveness: three trigger sensitivities (high
// = every score update, medium = every 100, low = every 1024) across
// three compute/I/O balances (w1 data-intensive, w2 balanced, w3
// compute-intensive). Reproduces Figure 3(b): read time and hit ratio.
func Fig3b(opts Opts) ([]Row, error) {
	opts = opts.normalized()
	procs := 16
	fileSize := int64(4 << 20)
	req := int64(64 << 10)
	bursts := 4
	unit := 40 * time.Millisecond
	if opts.Quick {
		procs = 8
		fileSize = 2 << 20
		bursts = 3
		unit = 20 * time.Millisecond
	}
	sens := []struct {
		name      string
		threshold int
	}{
		{"high", placement.High},
		{"medium", placement.Medium},
		{"low", placement.Low},
	}
	classes := []workloads.BurstClass{
		workloads.W1DataIntensive, workloads.W2Balanced, workloads.W3ComputeIntensive,
	}

	var rows []Row
	for _, sv := range sens {
		for _, class := range classes {
			mean, series, err := Repeat(opts.Repeats, func() (RunResult, error) {
				env := NewEnv(OriginPFS, 1)
				apps := workloads.Burst(class, procs, fileSize, req, bursts, unit)
				if err := createAll(env, apps, fileSize); err != nil {
					return RunResult{}, err
				}
				sys, err := env.NewHFetch(HFetchOpts{
					SegmentSize: req,
					Tiers: []TierDef{
						{Name: "ram", Capacity: fileSize},
						{Name: "nvme", Capacity: 2 * fileSize},
						{Name: "bb", Capacity: 4 * fileSize},
					},
					UpdateThreshold: sv.threshold,
					Interval:        time.Second, // trigger (b) dominates
					EngineWorkers:   6,
					SeqBoost:        0.5,
					DecayUnit:       time.Second,
				})
				if err != nil {
					return RunResult{}, err
				}
				defer sys.Stop()
				return Run(sys, apps)
			})
			if err != nil {
				return nil, err
			}
			// The figure reports read time (the compute between bursts is
			// what the prefetcher hides) plus the hit ratio.
			rows = append(rows, Row{
				Figure:   "fig3b",
				Config:   fmt.Sprintf("%s/%s", sv.name, class),
				System:   "hfetch",
				Seconds:  mean.ReadTime.Seconds(),
				Variance: series.Variance(),
				HitRatio: mean.HitRatio,
				Extra:    map[string]float64{"wall_sec": mean.Elapsed.Seconds()},
			})
		}
	}
	return rows, nil
}

// createAll registers every file the apps reference with size.
func createAll(env *Env, apps []workloads.App, size int64) error {
	for _, f := range workloads.Files(apps) {
		if err := env.FS.Create(f, size); err != nil {
			return err
		}
	}
	return nil
}
