package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/core/auditor"
	"hfetch/internal/core/seg"
)

func fastTimings() (hb, suspect, dead time.Duration) {
	return 10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond
}

// newAgent builds one membership agent on the in-process network.
func newAgent(net *comm.InprocNetwork, self string, seeds []string, onChange func([]string)) *Membership {
	hb, sus, dead := fastTimings()
	mux := comm.NewMux()
	m := NewMembership(MembershipConfig{
		Self: self, Addr: self, Seeds: seeds,
		HeartbeatInterval: hb, SuspectAfter: sus, DeadAfter: dead,
		Dial:     func(addr string) (comm.Peer, error) { return net.Dial(addr), nil },
		OnChange: onChange,
	}, mux)
	net.Join(self, mux)
	return m
}

// TestMembershipConvergesFromSeed boots three nodes that only know one
// seed and checks they all converge on the full view; then one node is
// killed and the survivors age it to dead and shrink the view.
func TestMembershipConvergesFromSeed(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	names := []string{"n0", "n1", "n2"}
	var agents []*Membership
	for _, name := range names {
		var seeds []string
		if name != "n0" {
			seeds = []string{"n0"}
		}
		agents = append(agents, newAgent(net, name, seeds, nil))
	}
	for _, a := range agents {
		a.Start()
	}
	defer func() {
		for _, a := range agents {
			a.Stop()
		}
	}()

	for _, a := range agents {
		if !a.WaitView(3, 3*time.Second) {
			t.Fatalf("%s: view did not converge to 3, got %v", a.Self(), a.View())
		}
	}

	// Kill n2: off the network, agent stopped. Survivors must converge
	// on a 2-member view (n2 aged to dead).
	agents[2].Stop()
	net.Leave("n2")
	for _, a := range agents[:2] {
		if !a.WaitView(2, 3*time.Second) {
			t.Fatalf("%s: view did not shrink after kill, got %v", a.Self(), a.View())
		}
		if st, ok := a.StateOf("n2"); !ok || st != StateDead {
			t.Fatalf("%s: n2 state = %v, want dead", a.Self(), st)
		}
	}
}

// TestMembershipViewChangeCallback checks OnChange fires with the new
// sorted view when a member joins.
func TestMembershipViewChangeCallback(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	var mu sync.Mutex
	var views [][]string
	a0 := newAgent(net, "n0", nil, func(v []string) {
		mu.Lock()
		views = append(views, v)
		mu.Unlock()
	})
	a0.Start()
	defer a0.Stop()

	a1 := newAgent(net, "n1", []string{"n0"}, nil)
	a1.Start()
	defer a1.Stop()

	if !a0.WaitView(2, 3*time.Second) {
		t.Fatalf("n0 never saw n1: %v", a0.View())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(views) == 0 {
		t.Fatal("OnChange never fired")
	}
	last := views[len(views)-1]
	if len(last) != 2 || last[0] != "n0" || last[1] != "n1" {
		t.Fatalf("OnChange view = %v, want [n0 n1]", last)
	}
	if a0.ViewVersion() == 0 {
		t.Fatal("view version not bumped")
	}
}

// TestMembershipSuspectAndRecover checks the fetch path's suspect report
// and that heartbeats restore the member.
func TestMembershipSuspectAndRecover(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	a0 := newAgent(net, "n0", nil, nil)
	a1 := newAgent(net, "n1", []string{"n0"}, nil)
	a0.Start()
	a1.Start()
	defer a0.Stop()
	defer a1.Stop()
	if !a0.WaitView(2, 3*time.Second) {
		t.Fatal("no convergence")
	}

	a0.Suspect("n1")
	if st, _ := a0.StateOf("n1"); st != StateSuspect {
		t.Fatalf("state after Suspect = %v", st)
	}
	if a0.Usable("n1") {
		t.Fatal("suspect member must not be usable")
	}
	// n1 keeps heartbeating, so n0 must see it alive again.
	deadline := time.Now().Add(3 * time.Second)
	for !a0.Usable("n1") {
		if time.Now().After(deadline) {
			t.Fatal("suspect member never recovered despite live heartbeats")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// staticMembership returns an agent with pre-seeded alive members and no
// probing (fetcher/router unit tests).
func staticMembership(net *comm.InprocNetwork, self string, others ...string) *Membership {
	static := make(map[string]string)
	for _, o := range others {
		static[o] = o
	}
	mux := comm.NewMux()
	m := NewMembership(MembershipConfig{
		Self: self, Addr: self, Static: static,
		Dial: func(addr string) (comm.Peer, error) { return net.Dial(addr), nil },
	}, mux)
	net.Join(self, mux)
	return m
}

type fakeCaller struct {
	mu    sync.Mutex
	calls int
	delay time.Duration
	err   error
	ok    bool
	fill  byte
}

func (f *fakeCaller) ReadRemoteDirect(node, tier string, id seg.ID, off int64, p []byte) (int, bool, error) {
	f.mu.Lock()
	f.calls++
	delay, err, ok, fill := f.delay, f.err, f.ok, f.fill
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if err != nil {
		return 0, false, err
	}
	if !ok {
		return 0, false, nil
	}
	for i := range p {
		p[i] = fill
	}
	return len(p), true, nil
}

func (f *fakeCaller) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// TestFetcherSingleFlight checks concurrent reads of one remote range
// share a single peer request.
func TestFetcherSingleFlight(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	mem := staticMembership(net, "n0", "n1")
	fc := &fakeCaller{delay: 30 * time.Millisecond, ok: true, fill: 7}
	f := NewFetcher(FetcherConfig{}, mem, fc)

	id := seg.ID{File: "/f", Index: 3}
	const readers = 16
	var wg sync.WaitGroup
	var served atomic.Int64
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, 64)
			if n, ok := f.ReadRemote("n1", "ram", id, 0, buf); ok {
				if n != 64 || buf[0] != 7 {
					t.Errorf("bad read: n=%d buf[0]=%d", n, buf[0])
				}
				served.Add(1)
			}
		}()
	}
	wg.Wait()
	if served.Load() != readers {
		t.Fatalf("served %d/%d readers", served.Load(), readers)
	}
	if got := fc.count(); got != 1 {
		t.Fatalf("remote calls = %d, want 1 (single-flight)", got)
	}
}

// TestFetcherBackoffAndSuspect checks transport failures open a cooldown
// window and eventually report the peer suspect, degrading to PFS
// passthrough (ok=false) without further peer calls.
func TestFetcherBackoffAndSuspect(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	mem := staticMembership(net, "n0", "n1")
	fc := &fakeCaller{err: errors.New("conn refused")}
	f := NewFetcher(FetcherConfig{
		BackoffBase:  time.Hour, // one failure must gate the next attempt
		SuspectAfter: 1,
	}, mem, fc)

	buf := make([]byte, 8)
	id := seg.ID{File: "/f", Index: 0}
	if _, ok := f.ReadRemote("n1", "ram", id, 0, buf); ok {
		t.Fatal("failed fetch reported ok")
	}
	// SuspectAfter=1: the single failure must have reported n1.
	if mem.Usable("n1") {
		t.Fatal("peer not suspected after threshold failures")
	}
	calls := fc.count()
	if _, ok := f.ReadRemote("n1", "ram", id, 0, buf); ok {
		t.Fatal("gated fetch reported ok")
	}
	if fc.count() != calls {
		t.Fatal("cooldown window did not gate the second attempt")
	}
}

// TestFetcherStaleMappingIsNotFailure checks a clean "not resident"
// answer does not penalize the peer.
func TestFetcherStaleMappingIsNotFailure(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	mem := staticMembership(net, "n0", "n1")
	fc := &fakeCaller{ok: false}
	f := NewFetcher(FetcherConfig{SuspectAfter: 1}, mem, fc)

	buf := make([]byte, 8)
	if _, ok := f.ReadRemote("n1", "ram", seg.ID{File: "/f"}, 0, buf); ok {
		t.Fatal("stale mapping reported ok")
	}
	if !mem.Usable("n1") {
		t.Fatal("stale mapping must not suspect the peer")
	}
	// And no cooldown: the next attempt goes straight through.
	calls := fc.count()
	f.ReadRemote("n1", "ram", seg.ID{File: "/f"}, 0, buf)
	if fc.count() != calls+1 {
		t.Fatal("clean miss opened a cooldown window")
	}
}

type recSink struct {
	mu     sync.Mutex
	ups    []auditor.Update
	invals []string
}

func (s *recSink) ScoreUpdated(u auditor.Update) {
	s.mu.Lock()
	s.ups = append(s.ups, u)
	s.mu.Unlock()
}
func (s *recSink) FileInvalidated(file string) {
	s.mu.Lock()
	s.invals = append(s.invals, file)
	s.mu.Unlock()
}
func (s *recSink) updates() []auditor.Update {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]auditor.Update(nil), s.ups...)
}
func (s *recSink) invalidations() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.invals...)
}

// TestRouterPartitionsByOrigin checks local-origin updates go to the
// local engine while foreign-origin updates are shipped to the origin
// node and delivered there with origin cleared.
func TestRouterPartitionsByOrigin(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	mem0 := staticMembership(net, "n0", "n1")
	mem1 := staticMembership(net, "n1", "n0")

	sink0, sink1 := &recSink{}, &recSink{}
	mux0, mux1 := comm.NewMux(), comm.NewMux()
	net.Join("n0", mux0)
	net.Join("n1", mux1)
	r0 := NewRouter("n0", sink0, mem0, mux0, nil)
	NewRouter("n1", sink1, mem1, mux1, nil)

	r0.ScoreBatch([]auditor.Update{
		{ID: seg.ID{File: "/a", Index: 0}, Score: 1},                // local (empty origin)
		{ID: seg.ID{File: "/a", Index: 1}, Score: 2, Origin: "n0"},  // local (self)
		{ID: seg.ID{File: "/b", Index: 0}, Score: 3, Origin: "n1"},  // foreign
		{ID: seg.ID{File: "/b", Index: 1}, Score: 4, Origin: "nXX"}, // unknown → local fallback
	})

	deadline := time.Now().Add(2 * time.Second)
	for len(sink1.updates()) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("foreign update never arrived at n1; n1 got %v", sink1.updates())
		}
		time.Sleep(2 * time.Millisecond)
	}
	got1 := sink1.updates()
	if len(got1) != 1 || got1[0].Score != 3 || got1[0].Origin != "" {
		t.Fatalf("n1 updates = %+v, want one score-3 update with origin cleared", got1)
	}
	got0 := sink0.updates()
	if len(got0) != 3 {
		t.Fatalf("n0 updates = %+v, want 3 (two local + unknown-origin fallback)", got0)
	}
	for _, u := range got0 {
		if u.Score == 3 {
			t.Fatal("foreign update also delivered locally")
		}
	}
}

// TestRouterBroadcastsInvalidations checks a write invalidation reaches
// every peer exactly once (no re-broadcast loop).
func TestRouterBroadcastsInvalidations(t *testing.T) {
	net := comm.NewInprocNetwork(nil)
	mem0 := staticMembership(net, "n0", "n1", "n2")
	mem1 := staticMembership(net, "n1", "n0", "n2")
	mem2 := staticMembership(net, "n2", "n0", "n1")

	sinks := []*recSink{{}, {}, {}}
	muxes := []*comm.Mux{comm.NewMux(), comm.NewMux(), comm.NewMux()}
	for i, name := range []string{"n0", "n1", "n2"} {
		net.Join(name, muxes[i])
	}
	r0 := NewRouter("n0", sinks[0], mem0, muxes[0], nil)
	NewRouter("n1", sinks[1], mem1, muxes[1], nil)
	NewRouter("n2", sinks[2], mem2, muxes[2], nil)

	r0.FileInvalidated("/data")

	deadline := time.Now().Add(2 * time.Second)
	for len(sinks[1].invalidations()) < 1 || len(sinks[2].invalidations()) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("invalidation not broadcast: n1=%v n2=%v",
				sinks[1].invalidations(), sinks[2].invalidations())
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // a loop would keep deliveries coming
	for i, s := range sinks {
		if got := s.invalidations(); len(got) != 1 || got[0] != "/data" {
			t.Fatalf("node %d invalidations = %v, want exactly [/data]", i, got)
		}
	}
}
