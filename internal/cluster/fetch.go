package cluster

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/core/seg"
	"hfetch/internal/telemetry"
	"hfetch/internal/tiers"
)

// remoteCaller issues one direct peer read; implemented by
// *server.Server (ReadRemoteDirect).
type remoteCaller interface {
	ReadRemoteDirect(node, tier string, id seg.ID, off int64, p []byte) (int, bool, error)
}

// FetcherConfig tunes the cross-node fetch path.
type FetcherConfig struct {
	// BackoffBase and BackoffMax bound the per-peer cooldown after a
	// transport failure (defaults 100ms and 5s; doubles per failure).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SuspectAfter is the consecutive-transport-failure count after
	// which the peer is reported suspect to membership (default
	// comm.DefaultHealthThreshold).
	SuspectAfter int
	// Health, when non-nil, records per-peer outcomes (shared with the
	// membership prober so both paths feed one verdict).
	Health *comm.Health
	// Telemetry, when non-nil, exports fetch counters and the per-peer
	// latency histogram.
	Telemetry *telemetry.Registry
}

// Fetcher is the cluster-aware remote read path installed via
// server.SetRemoteReader. On a local miss whose mapping points at a
// peer's tier it serves the read over comm — the peer's RAM/NVMe is
// still far faster than the PFS — with three guards so a sick cluster
// degrades to PFS passthrough instead of stalling reads:
//
//   - a membership gate: suspect or dead peers are never asked;
//   - single-flight: concurrent reads of the same remote range share
//     one request;
//   - per-peer cooldown with doubling backoff after transport failures,
//     and a suspect report to membership after SuspectAfter consecutive
//     failures.
//
// Lock discipline: mu is released before any network call ("cluster
// fetch mu" in the lock order manifest).
type Fetcher struct {
	cfg  FetcherConfig
	mem  *Membership
	call remoteCaller

	mu       sync.Mutex
	inflight map[string]*fetchCall
	cooldown map[string]*peerCooldown

	fetches   *telemetry.CounterVec // outcome: hit|stale|error|gated|shared
	latency   *telemetry.HistVec    // per-peer fetch nanos
	histMu    sync.Mutex
	histByWho map[string]*telemetry.Histogram // always kept, even without a registry
}

// fetchCall is one single-flight remote read. refs counts the leader
// plus every waiter that joined while the call sat in the inflight map
// (joins happen under Fetcher.mu, before the leader deletes the entry,
// so the count can only grow while the buffer is still shared); the
// last release returns the slab-drawn payload buffer to its pool.
type fetchCall struct {
	done chan struct{}
	n    int
	ok   bool
	data []byte
	refs atomic.Int32
}

func (c *fetchCall) release() {
	if c.refs.Add(-1) == 0 {
		tiers.SlabPut(c.data)
		c.data = nil
	}
}

type peerCooldown struct {
	failures int
	nextTry  time.Time
	backoff  time.Duration
}

// NewFetcher builds the fetch path over a membership view and a direct
// caller (the local server).
func NewFetcher(cfg FetcherConfig, mem *Membership, call remoteCaller) *Fetcher {
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = comm.DefaultHealthThreshold
	}
	f := &Fetcher{
		cfg:       cfg,
		mem:       mem,
		call:      call,
		inflight:  make(map[string]*fetchCall),
		cooldown:  make(map[string]*peerCooldown),
		histByWho: make(map[string]*telemetry.Histogram),
	}
	if reg := cfg.Telemetry; reg != nil {
		f.fetches = reg.CounterVec("hfetch_cluster_fetches_total", "cross-node segment fetches by outcome", "outcome")
		f.latency = reg.HistVec("hfetch_peer_fetch_nanos", "cross-node fetch latency by peer in nanoseconds", "peer")
	}
	return f
}

// ReadRemote implements server.RemoteReader. ok=false means "go to the
// PFS" — the caller cannot distinguish why, by design: every failure
// mode of the remote path has the same safe fallback.
func (f *Fetcher) ReadRemote(node, tier string, id seg.ID, off int64, p []byte) (int, bool) {
	if f.mem != nil && !f.mem.Usable(node) {
		f.outcome("gated")
		return 0, false
	}
	if !f.admit(node) {
		f.outcome("gated")
		return 0, false
	}

	key := fetchKey(node, tier, id, off, len(p))
	f.mu.Lock()
	if c, ok := f.inflight[key]; ok {
		c.refs.Add(1)
		f.mu.Unlock()
		<-c.done
		n, served := 0, c.ok
		if served {
			n = copy(p, c.data[:c.n])
			tiers.CountCopied(int64(n))
		}
		c.release()
		if !served {
			return 0, false
		}
		f.outcome("shared")
		return n, true
	}
	c := &fetchCall{done: make(chan struct{})}
	c.refs.Store(1)
	f.inflight[key] = c
	f.mu.Unlock()

	// Leader: perform the request with no fetcher lock held, into a
	// slab-drawn buffer shared with every waiter by refcount.
	start := time.Now()
	buf := tiers.SlabGet(int64(len(p)))
	n, ok, err := f.call.ReadRemoteDirect(node, tier, id, off, buf)
	d := time.Since(start)
	f.cfg.Health.Observe(node, d, err)
	f.settle(node, err)
	switch {
	case err != nil:
		f.outcome("error")
	case !ok:
		f.outcome("stale")
	default:
		f.outcome("hit")
		f.observeLatency(node, d)
	}

	c.n, c.ok, c.data = n, ok && err == nil, buf
	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(c.done)

	served := c.ok
	if served {
		n = copy(p, buf[:n])
		tiers.CountCopied(int64(n))
	}
	c.release()
	if !served {
		return 0, false
	}
	return n, true
}

// admit checks the per-peer cooldown window.
func (f *Fetcher) admit(node string) bool {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	cd := f.cooldown[node]
	return cd == nil || !now.Before(cd.nextTry)
}

// settle updates the cooldown state after an attempt: transport errors
// open (and double) the backoff window; any completed exchange —
// success or a clean "not resident" — closes it.
func (f *Fetcher) settle(node string, err error) {
	var suspect bool
	f.mu.Lock()
	if err == nil {
		delete(f.cooldown, node)
		f.mu.Unlock()
		return
	}
	cd := f.cooldown[node]
	if cd == nil {
		cd = &peerCooldown{backoff: f.cfg.BackoffBase}
		f.cooldown[node] = cd
	}
	cd.failures++
	cd.nextTry = time.Now().Add(cd.backoff)
	if cd.backoff *= 2; cd.backoff > f.cfg.BackoffMax {
		cd.backoff = f.cfg.BackoffMax
	}
	suspect = cd.failures >= f.cfg.SuspectAfter
	f.mu.Unlock()
	if suspect && f.mem != nil {
		f.mem.Suspect(node)
	}
}

func (f *Fetcher) outcome(o string) {
	if f.fetches != nil {
		f.fetches.With(o).Inc()
	}
}

func (f *Fetcher) observeLatency(node string, d time.Duration) {
	if f.latency != nil {
		f.latency.With(node).Observe(int64(d))
	}
	f.histMu.Lock()
	h := f.histByWho[node]
	if h == nil {
		h = &telemetry.Histogram{}
		f.histByWho[node] = h
	}
	f.histMu.Unlock()
	h.Observe(int64(d))
}

// PeerP99 returns the observed cross-node fetch p99 for node in
// nanoseconds (0 when no fetches have completed).
func (f *Fetcher) PeerP99(node string) int64 {
	f.histMu.Lock()
	h := f.histByWho[node]
	f.histMu.Unlock()
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(0.99)
}

// FetchSnapshot merges every peer's fetch-latency histogram into one
// snapshot, for aggregate quantiles across the whole remote path.
func (f *Fetcher) FetchSnapshot() telemetry.HistSnapshot {
	f.histMu.Lock()
	defer f.histMu.Unlock()
	var out telemetry.HistSnapshot
	for _, h := range f.histByWho {
		out.Merge(h.Snapshot())
	}
	return out
}

func fetchKey(node, tier string, id seg.ID, off int64, length int) string {
	return node + "|" + tier + "|" + id.File + "|" +
		strconv.FormatInt(id.Index, 10) + "|" +
		strconv.FormatInt(off, 10) + "|" + strconv.Itoa(length)
}
