package cluster

import (
	"fmt"
	"sync"

	"hfetch/internal/comm"
)

// NamedDialer resolves member names to transport connections through
// the membership address book. It satisfies both dhm.Dialer and
// server.Dialer (same method set), so the hashmaps and the server data
// path share one self-healing dial plane: a peer returned here redials
// after transport errors and follows address changes across restarts,
// which is what keeps the dhm and server peer caches from pinning a
// connection to a node's previous life.
type NamedDialer struct {
	mem *Membership
}

// Dialer returns the node's name-resolving dialer.
func (n *Node) Dialer() *NamedDialer { return &NamedDialer{mem: n.mem} }

// Dial returns a lazy, self-healing peer for the named member. It never
// returns nil; resolution failures surface from Request/Notify, so a
// currently-unknown member becomes reachable as soon as membership
// learns its address.
func (d *NamedDialer) Dial(node string) comm.Peer {
	return &reconnPeer{mem: d.mem, name: node}
}

// reconnPeer is a comm.Peer addressed by member name. Each call
// resolves the name through membership (which caches the underlying
// connection); a transport error drops that cached connection so the
// next call redials. Dead or unknown members fail fast — the caller's
// fallback (PFS, skip) applies — instead of hanging on a dial.
type reconnPeer struct {
	mem  *Membership
	name string

	mu     sync.Mutex
	closed bool
}

func (r *reconnPeer) Request(msgType string, payload []byte) ([]byte, error) {
	p, err := r.resolve()
	if err != nil {
		return nil, err
	}
	resp, err := p.Request(msgType, payload)
	if err != nil && !comm.IsRemote(err) {
		r.mem.DropPeer(r.name)
	}
	return resp, err
}

func (r *reconnPeer) Notify(msgType string, payload []byte) error {
	p, err := r.resolve()
	if err != nil {
		return err
	}
	if err := p.Notify(msgType, payload); err != nil && !comm.IsRemote(err) {
		r.mem.DropPeer(r.name)
		return err
	}
	return nil
}

// Close marks this handle closed. The underlying connection stays in
// the membership cache: other handles to the same member share it.
func (r *reconnPeer) Close() error {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	return nil
}

func (r *reconnPeer) resolve() (comm.Peer, error) {
	r.mu.Lock()
	closed := r.closed
	r.mu.Unlock()
	if closed {
		return nil, comm.ErrClosed
	}
	if st, known := r.mem.StateOf(r.name); !known || st == StateDead {
		return nil, fmt.Errorf("cluster: member %q unreachable (state %v)", r.name, st)
	}
	return r.mem.Peer(r.name)
}
