// Package cluster turns N independent hfetchd servers into one
// prefetching fabric. It supplies the pieces the single-node subsystems
// deliberately left out:
//
//   - heartbeat-based membership with a seed list (join/leave/suspect/
//     dead), driving dhm.Rebalance on every view change so rendezvous
//     ownership of segment statistics and mappings follows the live
//     member set;
//   - a cross-node segment fetch path for local misses (fetch.go):
//     serve from a peer's faster tier over comm before falling back to
//     the PFS, with single-flight dedup and timeout/backoff so a slow or
//     dead peer degrades to PFS passthrough instead of stalling reads;
//   - node-aware placement routing (route.go): score updates whose
//     access origin is another node are delivered to that node's
//     placement engine, so data is prefetched where it will be read;
//   - self-healing named peers (dial.go) that redial through the
//     membership address book, so the dhm and server peer caches survive
//     peer restarts.
//
// The paper runs HFetch on every node of a 64-node testbed with one
// shared metadata plane (the distributed hashmap); this package is the
// part that makes that plane survive node churn.
package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/telemetry"
)

// State is a member's liveness verdict, derived from heartbeat age.
type State uint8

// Member states. Alive members are probed and usable; Suspect members
// stay in the ownership ring but are skipped by the remote-fetch path;
// Dead members leave the ring (triggering a rebalance).
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return "unknown"
}

// Member is one node's view of a cluster member.
type Member struct {
	Name string
	Addr string
	// Ops is the member's operator-facing (agent/ctl) address, gossiped
	// so fleet views can fan out metric scrapes without static config.
	Ops string
	// State is derived from HeartbeatAge at snapshot time.
	State State
	// Incarnation distinguishes restarts of the same node name.
	Incarnation uint64
	// HeartbeatAge is how long ago this node last heard from the member
	// (zero for self).
	HeartbeatAge time.Duration
	// Keys is the member's last self-reported owned-key count.
	Keys int64
}

// MembershipConfig configures one node's membership agent.
type MembershipConfig struct {
	// Self and Addr identify this node; Addr must be dialable by peers.
	Self string
	Addr string
	// Ops is this node's operator-facing (agent/ctl) address, gossiped
	// in heartbeats so any member can enumerate the fleet's scrape
	// endpoints ("" when the node has none).
	Ops string
	// Seeds are peer addresses probed until their members are learned.
	Seeds []string
	// Static pre-seeds the member table (the emulated cluster boots all
	// nodes at once and skips discovery churn). Entries are (name, addr).
	Static map[string]string
	// HeartbeatInterval is the probe period (default 250ms).
	// SuspectAfter and DeadAfter are the silence thresholds (defaults
	// 4× and 10× the heartbeat interval).
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	DeadAfter         time.Duration
	// Dial opens a transport connection to a peer address.
	Dial func(addr string) (comm.Peer, error)
	// Keys reports this node's owned-key count for heartbeat payloads
	// (nil reports 0).
	Keys func() int64
	// Health, when non-nil, records probe outcomes. Its snapshot is also
	// piggybacked on outgoing heartbeats, so every member learns how the
	// fleet's links look from every other member's vantage point.
	Health *comm.Health
	// Stats, when non-nil, instruments the peer connections this agent
	// dials (request latency, timeouts).
	Stats *comm.Stats
	// OnChange is invoked (outside all membership locks, on the
	// heartbeat goroutine) whenever the non-dead view changes, with the
	// sorted member names. This is where the cluster node rebalances its
	// hashmaps.
	OnChange func(view []string)
	// Telemetry, when non-nil, exports membership gauges and heartbeat
	// counters.
	Telemetry *telemetry.Registry
}

type memberState struct {
	name        string
	addr        string
	ops         string
	incarnation uint64
	lastSeen    time.Time
	keys        int64
}

// Membership is one node's heartbeat-based membership agent. All-to-all
// probing: every tick this node sends its member list to every known
// member (and to unresolved seeds) and merges the lists it receives, so
// membership spreads transitively from any seed.
//
// Lock discipline: mu is never held across Dial, Request or OnChange.
type Membership struct {
	cfg MembershipConfig

	mu           sync.RWMutex
	members      map[string]*memberState
	view         []string                     // last view OnChange fired with (sorted, non-dead)
	remoteHealth map[string][]comm.PeerHealth // sender -> piggybacked link health

	peerMu sync.Mutex
	peers  map[string]comm.Peer // by address

	viewVersion atomic.Uint64
	hbSent      atomic.Int64
	hbFailed    atomic.Int64

	incarnation uint64

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// MsgHeartbeat is the membership probe message type.
const MsgHeartbeat = "cluster.hb"

// wireMember is a member entry as gossiped in heartbeats. Liveness
// timestamps are deliberately not gossiped: every node judges liveness
// from its own clock and its own probe outcomes.
type wireMember struct {
	Name        string
	Addr        string
	Ops         string
	Incarnation uint64
	Keys        int64
}

type hbMsg struct {
	From    wireMember
	Members []wireMember
	// Health is the sender's per-peer link health snapshot, piggybacked
	// so the fleet's pairwise link view is observable from any member.
	Health []comm.PeerHealth
}

type hbResp struct {
	Members []wireMember
}

// NewMembership builds the agent and registers its heartbeat handler on
// mux. Call Start to begin probing.
func NewMembership(cfg MembershipConfig, mux *comm.Mux) *Membership {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 4 * cfg.HeartbeatInterval
	}
	if cfg.DeadAfter <= cfg.SuspectAfter {
		cfg.DeadAfter = 10 * cfg.HeartbeatInterval
		if cfg.DeadAfter <= cfg.SuspectAfter {
			cfg.DeadAfter = 2 * cfg.SuspectAfter
		}
	}
	m := &Membership{
		cfg:          cfg,
		members:      make(map[string]*memberState),
		remoteHealth: make(map[string][]comm.PeerHealth),
		peers:        make(map[string]comm.Peer),
		incarnation:  uint64(time.Now().UnixNano()),
	}
	now := time.Now()
	m.members[cfg.Self] = &memberState{
		name: cfg.Self, addr: cfg.Addr, ops: cfg.Ops, incarnation: m.incarnation, lastSeen: now,
	}
	for name, addr := range cfg.Static {
		if name == cfg.Self {
			continue
		}
		m.members[name] = &memberState{name: name, addr: addr, lastSeen: now}
	}
	m.view = m.aliveView(now)
	if mux != nil {
		mux.Register(MsgHeartbeat, m.handleHeartbeat)
	}
	if reg := cfg.Telemetry; reg != nil {
		for _, st := range []State{StateAlive, StateSuspect, StateDead} {
			st := st
			reg.GaugeFunc("hfetch_cluster_members", "cluster members by state",
				func() int64 { return m.countState(st) }, "state", st.String())
		}
		reg.GaugeFunc("hfetch_cluster_view_version", "membership view version (bumps on every change)",
			func() int64 { return int64(m.viewVersion.Load()) })
		reg.CounterFunc("hfetch_cluster_heartbeats_total", "heartbeat probes sent", m.hbSent.Load)
		reg.CounterFunc("hfetch_cluster_heartbeat_failures_total", "heartbeat probes that failed", m.hbFailed.Load)
	}
	return m
}

// Start launches the heartbeat loop (the first tick runs immediately).
func (m *Membership) Start() {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.stop = make(chan struct{})
	m.mu.Unlock()
	m.wg.Add(1)
	go m.loop()
}

// Stop terminates probing and closes peer connections.
func (m *Membership) Stop() {
	m.mu.Lock()
	if !m.started {
		m.mu.Unlock()
		return
	}
	m.started = false
	close(m.stop)
	m.mu.Unlock()
	m.wg.Wait()
	m.peerMu.Lock()
	for addr, p := range m.peers {
		p.Close()
		delete(m.peers, addr)
	}
	m.peerMu.Unlock()
}

func (m *Membership) loop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		m.tick()
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
	}
}

// tick refreshes self, probes every other member plus unresolved seeds,
// merges what they answered, and fires OnChange if the view moved.
func (m *Membership) tick() {
	now := time.Now()
	var keys int64
	if m.cfg.Keys != nil {
		keys = m.cfg.Keys()
	}
	// Health snapshot before mu: comm.Health has its own lock and must
	// not nest under membership mu.
	var hs []comm.PeerHealth
	if m.cfg.Health != nil {
		hs = m.cfg.Health.Snapshot()
	}

	type target struct{ name, addr string }
	var targets []target
	known := make(map[string]bool)
	m.mu.Lock()
	self := m.members[m.cfg.Self]
	self.lastSeen = now
	self.keys = keys
	for _, ms := range m.members {
		known[ms.addr] = true
		if ms.name == m.cfg.Self || ms.addr == "" {
			continue
		}
		if now.Sub(ms.lastSeen) > m.cfg.DeadAfter {
			continue // dead members are not probed; a rejoin re-seeds
		}
		targets = append(targets, target{ms.name, ms.addr})
	}
	msg := m.hbPayloadLocked(hs)
	m.mu.Unlock()

	for _, s := range m.cfg.Seeds {
		if s != "" && s != m.cfg.Addr && !known[s] {
			targets = append(targets, target{"", s})
		}
	}

	var wg sync.WaitGroup
	for _, t := range targets {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.probe(t.name, t.addr, msg)
		}()
	}
	wg.Wait()

	m.fireIfChanged()
}

// hbPayloadLocked renders the heartbeat message; mu must be held.
// health is the pre-snapshotted link health to piggyback.
func (m *Membership) hbPayloadLocked(health []comm.PeerHealth) []byte {
	msg := hbMsg{From: wireMember{
		Name: m.cfg.Self, Addr: m.cfg.Addr, Ops: m.cfg.Ops,
		Incarnation: m.incarnation, Keys: m.members[m.cfg.Self].keys,
	}, Health: health}
	for _, ms := range m.members {
		msg.Members = append(msg.Members, wireMember{
			Name: ms.name, Addr: ms.addr, Ops: ms.ops, Incarnation: ms.incarnation, Keys: ms.keys,
		})
	}
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(msg) //nolint:errcheck // in-memory encode of a plain struct
	return buf.Bytes()
}

// probe sends one heartbeat to addr and merges the response. A probe
// failure drops the cached connection so the next tick redials.
func (m *Membership) probe(name, addr string, payload []byte) {
	p, err := m.peer(addr)
	start := time.Now()
	var raw []byte
	if err == nil {
		m.hbSent.Add(1)
		raw, err = p.Request(MsgHeartbeat, payload)
	}
	if m.cfg.Health != nil && name != "" {
		m.cfg.Health.Observe(name, time.Since(start), err)
	}
	if err != nil {
		m.hbFailed.Add(1)
		m.dropPeer(addr)
		return
	}
	var resp hbResp
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&resp); err != nil {
		return
	}
	now := time.Now()
	m.mu.Lock()
	// The probed member answered: that is a direct liveness observation.
	if name != "" {
		if ms := m.members[name]; ms != nil {
			ms.lastSeen = now
		}
	}
	m.mergeLocked(resp.Members, now)
	m.mu.Unlock()
}

// handleHeartbeat merges the sender's view and answers with ours. The
// sender itself is a direct observation: it is provably alive now.
func (m *Membership) handleHeartbeat(raw []byte) ([]byte, error) {
	var msg hbMsg
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&msg); err != nil {
		return nil, err
	}
	now := time.Now()
	m.mu.Lock()
	m.mergeOneLocked(msg.From, now, true)
	m.mergeLocked(msg.Members, now)
	if msg.From.Name != "" {
		m.remoteHealth[msg.From.Name] = msg.Health
	}
	out := hbResp{}
	for _, ms := range m.members {
		out.Members = append(out.Members, wireMember{
			Name: ms.name, Addr: ms.addr, Ops: ms.ops, Incarnation: ms.incarnation, Keys: ms.keys,
		})
	}
	m.mu.Unlock()

	// A heartbeat can move the view (a joiner's first contact); the
	// handler runs on a transport goroutine, outside every lock.
	m.fireIfChanged()

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// mergeLocked folds gossiped member entries in; mu must be held.
// Gossiped entries are indirect: they introduce unknown members (with a
// fresh grace timestamp so they are probed before being judged) and
// refresh addresses/incarnations, but never liveness.
func (m *Membership) mergeLocked(list []wireMember, now time.Time) {
	for _, wm := range list {
		m.mergeOneLocked(wm, now, false)
	}
}

func (m *Membership) mergeOneLocked(wm wireMember, now time.Time, direct bool) {
	if wm.Name == "" {
		return
	}
	ms := m.members[wm.Name]
	if ms == nil {
		ms = &memberState{name: wm.Name, lastSeen: now}
		m.members[wm.Name] = ms
	}
	if wm.Incarnation >= ms.incarnation {
		if wm.Addr != "" {
			ms.addr = wm.Addr
		}
		if wm.Ops != "" && wm.Name != m.cfg.Self {
			ms.ops = wm.Ops
		}
		if wm.Incarnation > ms.incarnation && wm.Name != m.cfg.Self {
			// A restart: treat as freshly seen so the rejoiner is not
			// carried as suspect from its previous life.
			ms.incarnation = wm.Incarnation
			ms.lastSeen = now
		}
		if wm.Name != m.cfg.Self {
			ms.keys = wm.Keys
		}
	}
	if direct {
		ms.lastSeen = now
	}
}

// fireIfChanged recomputes the non-dead view and invokes OnChange
// outside the lock when it differs from the last fired view.
func (m *Membership) fireIfChanged() {
	now := time.Now()
	m.mu.Lock()
	view := m.aliveView(now)
	if equalView(view, m.view) {
		m.mu.Unlock()
		return
	}
	m.view = view
	fn := m.cfg.OnChange
	m.mu.Unlock()
	m.viewVersion.Add(1)
	if fn != nil {
		fn(append([]string(nil), view...))
	}
}

// aliveView returns the sorted names of non-dead members; mu must be
// held.
func (m *Membership) aliveView(now time.Time) []string {
	var out []string
	for _, ms := range m.members {
		if ms.name == m.cfg.Self || now.Sub(ms.lastSeen) <= m.cfg.DeadAfter {
			out = append(out, ms.name)
		}
	}
	sort.Strings(out)
	return out
}

func equalView(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (m *Membership) stateOfLocked(ms *memberState, now time.Time) State {
	if ms.name == m.cfg.Self {
		return StateAlive
	}
	age := now.Sub(ms.lastSeen)
	switch {
	case age <= m.cfg.SuspectAfter:
		return StateAlive
	case age <= m.cfg.DeadAfter:
		return StateSuspect
	default:
		return StateDead
	}
}

// StateOf returns name's current state; ok is false for unknown nodes.
func (m *Membership) StateOf(name string) (State, bool) {
	now := time.Now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	ms := m.members[name]
	if ms == nil {
		return StateDead, false
	}
	return m.stateOfLocked(ms, now), true
}

// Usable reports whether name is a known, alive member — the
// remote-fetch path's gate (suspect and dead peers are skipped so reads
// degrade to PFS passthrough instead of waiting on them).
func (m *Membership) Usable(name string) bool {
	st, ok := m.StateOf(name)
	return ok && st == StateAlive
}

// Suspect force-ages name's liveness so it is judged suspect now (the
// fetch path calls this after repeated request failures). A successful
// heartbeat restores it.
func (m *Membership) Suspect(name string) {
	now := time.Now()
	m.mu.Lock()
	ms := m.members[name]
	if ms != nil && ms.name != m.cfg.Self {
		if aged := now.Add(-m.cfg.SuspectAfter - time.Nanosecond); ms.lastSeen.After(aged) {
			ms.lastSeen = aged
		}
	}
	m.mu.Unlock()
}

// OpsOf resolves a member name to its gossiped operator-facing (ctl)
// address, "" when unknown.
func (m *Membership) OpsOf(name string) string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if ms := m.members[name]; ms != nil {
		return ms.ops
	}
	return ""
}

// FleetHealth returns every member's piggybacked link-health snapshot,
// keyed by the reporting member. The values are what each member last
// told us about its own outbound links.
func (m *Membership) FleetHealth() map[string][]comm.PeerHealth {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string][]comm.PeerHealth, len(m.remoteHealth))
	for k, v := range m.remoteHealth {
		out[k] = append([]comm.PeerHealth(nil), v...)
	}
	return out
}

// SuspectCount returns how many members are currently judged suspect —
// the watchdog's membership probe pending quantity.
func (m *Membership) SuspectCount() int64 { return m.countState(StateSuspect) }

// HeartbeatsSent returns the total probes sent — the watchdog's
// membership progress counter.
func (m *Membership) HeartbeatsSent() int64 { return m.hbSent.Load() }

// AddrOf resolves a member name to its dial address.
func (m *Membership) AddrOf(name string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ms := m.members[name]
	if ms == nil || ms.addr == "" {
		return "", false
	}
	return ms.addr, true
}

// Members returns a snapshot of every known member (including dead
// ones), sorted by name, with derived states and heartbeat ages.
func (m *Membership) Members() []Member {
	now := time.Now()
	// Self's key count comes from the dhm (LocalLen takes shard locks);
	// fetch it before mu so no membership lock is held across it.
	selfKeys := m.keysNow()
	m.mu.RLock()
	out := make([]Member, 0, len(m.members))
	for _, ms := range m.members {
		mb := Member{
			Name: ms.name, Addr: ms.addr, Ops: ms.ops,
			State:       m.stateOfLocked(ms, now),
			Incarnation: ms.incarnation,
			Keys:        ms.keys,
		}
		if ms.name != m.cfg.Self {
			mb.HeartbeatAge = now.Sub(ms.lastSeen)
		} else {
			mb.Keys = selfKeys
		}
		out = append(out, mb)
	}
	m.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (m *Membership) keysNow() int64 {
	if m.cfg.Keys == nil {
		return 0
	}
	return m.cfg.Keys()
}

// View returns the current non-dead view (sorted names).
func (m *Membership) View() []string {
	now := time.Now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.aliveView(now)
}

// ViewVersion returns how many times the view has changed.
func (m *Membership) ViewVersion() uint64 { return m.viewVersion.Load() }

// Self returns this node's name.
func (m *Membership) Self() string { return m.cfg.Self }

func (m *Membership) countState(st State) int64 {
	now := time.Now()
	m.mu.RLock()
	defer m.mu.RUnlock()
	var n int64
	for _, ms := range m.members {
		if m.stateOfLocked(ms, now) == st {
			n++
		}
	}
	return n
}

// WaitView polls until the non-dead view has exactly want members (or
// the timeout passes); it reports success. Test and harness helper.
func (m *Membership) WaitView(want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(m.View()) == want {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- peer cache ----

// Peer returns a cached transport connection to the named member,
// dialing if needed. The cache is shared with the heartbeat prober, so
// a connection a probe declared dead is redialed here and vice versa.
func (m *Membership) Peer(name string) (comm.Peer, error) {
	addr, ok := m.AddrOf(name)
	if !ok {
		return nil, fmt.Errorf("cluster: no address for member %q", name)
	}
	return m.peer(addr)
}

// DropPeer discards the cached connection to the named member (callers
// do this after a transport error so the next use redials).
func (m *Membership) DropPeer(name string) {
	if addr, ok := m.AddrOf(name); ok {
		m.dropPeer(addr)
	}
}

func (m *Membership) peer(addr string) (comm.Peer, error) {
	m.peerMu.Lock()
	if p, ok := m.peers[addr]; ok {
		m.peerMu.Unlock()
		return p, nil
	}
	m.peerMu.Unlock()
	// Dial outside the lock: a slow connect must not serialize probes.
	p, err := m.cfg.Dial(addr)
	if err != nil {
		return nil, err
	}
	p = comm.InstrumentPeer(p, addr, m.cfg.Stats)
	m.peerMu.Lock()
	if prev, ok := m.peers[addr]; ok {
		m.peerMu.Unlock()
		p.Close()
		return prev, nil
	}
	m.peers[addr] = p
	m.peerMu.Unlock()
	return p, nil
}

func (m *Membership) dropPeer(addr string) {
	m.peerMu.Lock()
	if p, ok := m.peers[addr]; ok {
		delete(m.peers, addr)
		m.peerMu.Unlock()
		p.Close()
		return
	}
	m.peerMu.Unlock()
}
