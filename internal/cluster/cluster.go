package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/core/server"
	"hfetch/internal/dhm"
	"hfetch/internal/telemetry"
)

// Config configures one cluster node.
type Config struct {
	// Self names this node; Addr is its peer-facing transport address
	// (what other members dial — the daemon's peer_listen, or the node
	// name on an in-process network).
	Self string
	Addr string
	// Ops is this node's operator-facing (agent/ctl) address, gossiped
	// to peers so fleet views (hfetchctl -fleet) can fan out without
	// static configuration ("" when none).
	Ops string
	// Seeds are peer addresses contacted to join an existing cluster.
	Static map[string]string
	Seeds  []string
	// Heartbeat timing; see MembershipConfig (zeros take defaults).
	HeartbeatInterval time.Duration
	SuspectAfter      time.Duration
	DeadAfter         time.Duration
	// Mux is the peer-facing handler table: heartbeats, routed updates,
	// dhm traffic and remote reads all share it.
	Mux *comm.Mux
	// DialAddr opens a transport connection to a peer address
	// (comm.DialTCPOpts for daemons, InprocNetwork.Dial for emulation).
	DialAddr func(addr string) (comm.Peer, error)
	// Fetch tunes the cross-node read path (zeros take defaults).
	Fetch FetcherConfig
	// SuspectThreshold is the consecutive-failure count before a peer is
	// reported suspect (default comm.DefaultHealthThreshold).
	SuspectThreshold int
	// Telemetry, when non-nil, exports the cluster metric families.
	Telemetry *telemetry.Registry
}

// Node is one hfetchd's membership in the prefetching fabric. Staged
// construction, because the server and hashmaps need the dialer before
// the fabric can start:
//
//	n := cluster.New(cfg)           // membership built, not probing
//	d := n.Dialer()                 // give to dhm.Config and the server
//	n.Attach(srv, stats, maps)      // install fetcher, router, rebalance
//	n.Start()                       // join seeds, begin heartbeats
type Node struct {
	cfg       Config
	mem       *Membership
	health    *comm.Health
	fetch     *Fetcher
	commStats *comm.Stats

	mu    sync.Mutex
	stats *dhm.Map
	maps  *dhm.Map

	rebalances   atomic.Int64
	keysMigrated atomic.Int64
}

// New builds the node's membership agent (registered on cfg.Mux, not
// yet probing).
func New(cfg Config) *Node {
	n := &Node{cfg: cfg}
	thr := cfg.SuspectThreshold
	if thr <= 0 {
		thr = comm.DefaultHealthThreshold
	}
	n.health = comm.NewHealth(thr)
	n.commStats = comm.NewStats(cfg.Telemetry)
	n.health.SetStats(n.commStats)
	n.mem = NewMembership(MembershipConfig{
		Self:              cfg.Self,
		Addr:              cfg.Addr,
		Ops:               cfg.Ops,
		Seeds:             cfg.Seeds,
		Static:            cfg.Static,
		HeartbeatInterval: cfg.HeartbeatInterval,
		SuspectAfter:      cfg.SuspectAfter,
		DeadAfter:         cfg.DeadAfter,
		Dial:              cfg.DialAddr,
		Keys:              n.keyCount,
		Health:            n.health,
		Stats:             n.commStats,
		OnChange:          n.onViewChange,
		Telemetry:         cfg.Telemetry,
	}, cfg.Mux)
	if reg := cfg.Telemetry; reg != nil {
		reg.CounterFunc("hfetch_cluster_rebalances_total", "hashmap rebalances triggered by view changes", n.rebalances.Load)
		reg.CounterFunc("hfetch_cluster_keys_migrated_total", "hashmap keys migrated by rebalances", n.keysMigrated.Load)
	}
	return n
}

// Attach wires the fabric into a built server and its hashmaps: the
// cross-node fetch path replaces the server's direct peer reads, the
// node-aware router wraps the placement engine, and view changes
// rebalance both hashmaps. Call before Start.
func (n *Node) Attach(srv *server.Server, stats, maps *dhm.Map) {
	n.mu.Lock()
	n.stats = stats
	n.maps = maps
	n.mu.Unlock()

	fc := n.cfg.Fetch
	fc.Health = n.health
	if fc.SuspectAfter <= 0 {
		fc.SuspectAfter = n.health.Threshold()
	}
	fc.Telemetry = n.cfg.Telemetry
	n.fetch = NewFetcher(fc, n.mem, srv)
	srv.SetRemoteReader(n.fetch)

	router := NewRouter(n.cfg.Self, srv.Engine(), n.mem, n.cfg.Mux, n.cfg.Telemetry)
	srv.Auditor().SetSink(router)

	srv.EnableRemote(n.cfg.Mux, n.Dialer())
}

// Start joins the cluster: seed probing and heartbeats begin, and the
// first view change (discovering the existing members) rebalances the
// hashmaps so this node takes ownership of its key range.
func (n *Node) Start() { n.mem.Start() }

// Stop leaves the cluster (no farewell is sent; peers age this node to
// suspect and then dead, exactly as a crash would — one code path for
// both).
func (n *Node) Stop() { n.mem.Stop() }

// Membership exposes the membership agent.
func (n *Node) Membership() *Membership { return n.mem }

// Fetcher exposes the cross-node fetch path (nil before Attach).
func (n *Node) Fetcher() *Fetcher { return n.fetch }

// Health exposes the shared per-peer health tracker.
func (n *Node) Health() *comm.Health { return n.health }

// CommStats exposes the transport instrumentation handle (nil when
// telemetry is off), for callers that dial their own peers or host a
// comm server and want those paths counted into the same families.
func (n *Node) CommStats() *comm.Stats { return n.commStats }

// RebalanceStats reports (view-change rebalances run, keys migrated).
func (n *Node) RebalanceStats() (rebalances, keys int64) {
	return n.rebalances.Load(), n.keysMigrated.Load()
}

func (n *Node) keyCount() int64 {
	n.mu.Lock()
	stats, maps := n.stats, n.maps
	n.mu.Unlock()
	var c int64
	if stats != nil {
		c += int64(stats.LocalLen())
	}
	if maps != nil {
		c += int64(maps.LocalLen())
	}
	return c
}

// onViewChange runs on the heartbeat goroutine with no membership lock
// held: rendezvous ownership follows the new view on both hashmaps.
func (n *Node) onViewChange(view []string) {
	n.mu.Lock()
	stats, maps := n.stats, n.maps
	n.mu.Unlock()
	if stats == nil && maps == nil {
		return
	}
	n.rebalances.Add(1)
	if stats != nil {
		if migrated, err := stats.Rebalance(view); err == nil {
			n.keysMigrated.Add(int64(migrated))
		}
	}
	if maps != nil {
		if migrated, err := maps.Rebalance(view); err == nil {
			n.keysMigrated.Add(int64(migrated))
		}
	}
}

// MemberInfo is one row of the operator-facing membership view
// (hfetchctl nodes).
type MemberInfo struct {
	Name         string
	Addr         string
	Ops          string
	State        string
	HeartbeatAge time.Duration
	Keys         int64
	// FetchP99 is this node's observed p99 cross-node fetch latency to
	// the member, in nanoseconds (0 = no fetches yet).
	FetchP99 int64
}

// Infos snapshots the membership table for operators.
func (n *Node) Infos() []MemberInfo {
	members := n.mem.Members()
	out := make([]MemberInfo, 0, len(members))
	for _, m := range members {
		mi := MemberInfo{
			Name:         m.Name,
			Addr:         m.Addr,
			Ops:          m.Ops,
			State:        m.State.String(),
			HeartbeatAge: m.HeartbeatAge,
			Keys:         m.Keys,
		}
		if n.fetch != nil {
			mi.FetchP99 = n.fetch.PeerP99(m.Name)
		}
		out = append(out, mi)
	}
	return out
}
