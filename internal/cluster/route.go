package cluster

import (
	"bytes"
	"encoding/gob"
	"sync/atomic"
	"time"

	"hfetch/internal/comm"
	"hfetch/internal/core/auditor"
	"hfetch/internal/telemetry"
)

// Update and invalidation routing message types.
const (
	MsgUpdate = "cluster.update" // gob []auditor.Update → deliver to engine
	MsgInval  = "cluster.inval"  // gob string (file) → invalidate locally
)

// Router is the node-aware placement hop. It sits between the auditor
// and the placement engine (installed via auditor.SetSink, wrapping the
// engine) and partitions score updates by access origin:
//
//   - local origin (empty or this node's name) → the local engine, as
//     before;
//   - foreign origin → shipped over comm to the origin node's router,
//     which delivers them to *its* engine. The effect is the paper's
//     "prefetch where the data will be read": the auditing may happen
//     on whichever node owns the segment's statistics, but the fetch is
//     staged into the tiers of the node whose client is reading.
//
// File invalidations fan out: a write observed anywhere invalidates the
// file's prefetched data on every alive member, closing the stale-read
// window a single-node invalidation would leave on peers holding copies.
//
// Delivery is Notify (fire-and-forget): a lost update costs one
// prefetch opportunity, a lost invalidation is repaired by the mapping
// delete the writer's engine performs on the shared hashmap.
type Router struct {
	self  string
	local auditor.Sink
	mem   *Membership
	reg   *telemetry.Registry

	routedOut atomic.Int64
	routedIn  atomic.Int64
	dropped   atomic.Int64
	invalsOut atomic.Int64

	hopNanos *telemetry.Histogram // routed-message wire hop latency
}

// NewRouter wraps the local engine sink. Incoming handlers are
// registered on mux (the peer-facing mux).
func NewRouter(self string, local auditor.Sink, mem *Membership, mux muxRegistrar, reg *telemetry.Registry) *Router {
	r := &Router{self: self, local: local, mem: mem, reg: reg}
	if mux != nil {
		mux.Register(MsgUpdate, r.handleUpdates)
		mux.Register(MsgInval, r.handleInval)
	}
	if reg != nil {
		reg.CounterFunc("hfetch_cluster_updates_routed_total", "score updates shipped to their origin node", r.routedOut.Load)
		reg.CounterFunc("hfetch_cluster_updates_received_total", "score updates received from peer auditors", r.routedIn.Load)
		reg.CounterFunc("hfetch_cluster_updates_dropped_total", "foreign-origin updates dropped (origin unreachable)", r.dropped.Load)
		reg.CounterFunc("hfetch_cluster_invalidations_sent_total", "file invalidations broadcast to peers", r.invalsOut.Load)
		r.hopNanos = reg.Histogram("hfetch_route_hop_nanos",
			"wire hop latency of routed updates and invalidations in nanoseconds")
	}
	return r
}

// muxRegistrar is the slice of comm.Mux the router needs; narrowed for
// tests.
type muxRegistrar interface {
	Register(msgType string, h comm.Handler)
}

// ScoreUpdated implements auditor.Sink.
func (r *Router) ScoreUpdated(u auditor.Update) {
	if r.isLocal(u.Origin) {
		r.local.ScoreUpdated(u)
		return
	}
	r.ship(u.Origin, []auditor.Update{u})
}

// ScoreBatch implements auditor.BatchSink: one partition pass, one
// delivery per destination.
func (r *Router) ScoreBatch(ups []auditor.Update) {
	var local []auditor.Update
	var foreign map[string][]auditor.Update
	for _, u := range ups {
		if r.isLocal(u.Origin) {
			local = append(local, u)
			continue
		}
		if foreign == nil {
			foreign = make(map[string][]auditor.Update)
		}
		foreign[u.Origin] = append(foreign[u.Origin], u)
	}
	if len(local) > 0 {
		if bs, ok := r.local.(auditor.BatchSink); ok {
			bs.ScoreBatch(local)
		} else {
			for _, u := range local {
				r.local.ScoreUpdated(u)
			}
		}
	}
	for node, batch := range foreign {
		r.ship(node, batch)
	}
}

// FileInvalidated implements auditor.Sink: invalidate locally, then
// broadcast so peers holding prefetched copies of the file drop them.
func (r *Router) FileInvalidated(file string) {
	r.local.FileInvalidated(file)
	if r.mem == nil {
		return
	}
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(file) //nolint:errcheck // in-memory encode of a string
	wrapped := comm.WrapTrace(comm.TraceCtx{Origin: r.self, SentUnixNano: time.Now().UnixNano()}, buf.Bytes())
	for _, name := range r.mem.View() {
		if name == r.self || !r.mem.Usable(name) {
			continue
		}
		p, err := r.mem.Peer(name)
		if err != nil {
			continue
		}
		if err := p.Notify(MsgInval, wrapped); err != nil {
			r.mem.DropPeer(name)
			continue
		}
		r.invalsOut.Add(1)
	}
}

func (r *Router) isLocal(origin string) bool {
	return origin == "" || origin == r.self
}

// ship delivers a batch to the origin node's router; unreachable
// origins fall back to the local engine (a prefetch into the wrong
// node's tier still beats no prefetch — the remote-fetch path serves
// it).
func (r *Router) ship(node string, ups []auditor.Update) {
	if r.mem == nil || !r.mem.Usable(node) {
		r.dropped.Add(1)
		r.deliverLocal(ups)
		return
	}
	p, err := r.mem.Peer(node)
	if err == nil {
		var buf bytes.Buffer
		if gob.NewEncoder(&buf).Encode(ups) == nil {
			now := time.Now()
			err = p.Notify(MsgUpdate, comm.WrapTrace(
				comm.TraceCtx{Origin: r.self, SentUnixNano: now.UnixNano()}, buf.Bytes()))
			if err == nil {
				// Updates with a sampled trace get a route span on this
				// node's in-flight entry: the hop is now part of the
				// segment's lifecycle.
				if lc := r.reg.Lifecycle(); lc != nil {
					for _, u := range ups {
						if u.Trace != 0 {
							lc.Record(telemetry.StageRoute, u.ID.File, u.ID.Index, node, now, 0)
						}
					}
				}
			}
		}
	}
	if err != nil {
		r.mem.DropPeer(node)
		r.dropped.Add(1)
		r.deliverLocal(ups)
		return
	}
	r.routedOut.Add(int64(len(ups)))
}

// deliverLocal hands updates to the local engine with their origin
// cleared, so a re-entrant routing decision cannot loop.
func (r *Router) deliverLocal(ups []auditor.Update) {
	for i := range ups {
		ups[i].Origin = ""
	}
	if bs, ok := r.local.(auditor.BatchSink); ok {
		bs.ScoreBatch(ups)
		return
	}
	for _, u := range ups {
		r.local.ScoreUpdated(u)
	}
}

func (r *Router) handleUpdates(raw []byte) ([]byte, error) {
	tc, raw := comm.UnwrapTrace(raw)
	var ups []auditor.Update
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&ups); err != nil {
		return nil, err
	}
	r.routedIn.Add(int64(len(ups)))
	if !tc.Zero() {
		now := time.Now()
		hop := tc.HopLatency(now)
		r.hopNanos.Observe(int64(hop))
		// Arrival spans for traced updates: recorded under the foreign
		// trace ID with the hop duration, so the merged fleet export
		// shows the wire hop between the two nodes' lanes.
		if lc := r.reg.Lifecycle(); lc != nil {
			sent := time.Unix(0, tc.SentUnixNano)
			for _, u := range ups {
				if u.Trace != 0 {
					lc.RecordPeer(u.Trace, telemetry.StageRoute, u.ID.File, u.ID.Index, tc.Origin, sent, hop)
				}
			}
		}
	}
	r.deliverLocal(ups)
	return nil, nil
}

func (r *Router) handleInval(raw []byte) ([]byte, error) {
	tc, raw := comm.UnwrapTrace(raw)
	if !tc.Zero() {
		r.hopNanos.Observe(int64(tc.HopLatency(time.Now())))
	}
	var file string
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&file); err != nil {
		return nil, err
	}
	// Invalidate only the local engine: the sender already broadcast to
	// every peer, so re-broadcasting here would loop.
	r.local.FileInvalidated(file)
	return nil, nil
}
