package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHitMissAccounting(t *testing.T) {
	s := NewIOStats()
	s.Hit("ram", 100)
	s.Hit("nvme", 200)
	s.Hit("ram", 50)
	s.Miss(1000)
	if s.Hits() != 3 || s.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", s.Hits(), s.Misses())
	}
	if got := s.HitRatio(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ratio = %v, want 0.75", got)
	}
	th := s.TierHits()
	if th["ram"] != 2 || th["nvme"] != 1 {
		t.Fatalf("tier hits = %v", th)
	}
	hb, mb := s.Bytes()
	if hb != 350 || mb != 1000 {
		t.Fatalf("bytes = %d/%d", hb, mb)
	}
}

func TestHitRatioEmpty(t *testing.T) {
	s := NewIOStats()
	if s.HitRatio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
}

func TestObserveReadAndString(t *testing.T) {
	s := NewIOStats()
	s.ObserveRead(10 * time.Millisecond)
	s.ObserveRead(20 * time.Millisecond)
	if s.Reads() != 2 || s.TotalReadTime() != 30*time.Millisecond {
		t.Fatalf("reads=%d total=%v", s.Reads(), s.TotalReadTime())
	}
	s.Hit("ram", 1)
	str := s.String()
	if !strings.Contains(str, "ram=1") || !strings.Contains(str, "hits=1") {
		t.Fatalf("String = %q", str)
	}
}

func TestTierHitsReturnsCopy(t *testing.T) {
	s := NewIOStats()
	s.Hit("ram", 1)
	th := s.TierHits()
	th["ram"] = 999
	if s.TierHits()["ram"] != 1 {
		t.Fatal("TierHits must return a copy")
	}
}

func TestConcurrentCounters(t *testing.T) {
	s := NewIOStats()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Hit("ram", 1)
				s.Miss(1)
			}
		}()
	}
	wg.Wait()
	if s.Hits() != 8000 || s.Misses() != 8000 {
		t.Fatalf("concurrent counts = %d/%d", s.Hits(), s.Misses())
	}
	if s.TierHits()["ram"] != 8000 {
		t.Fatalf("tier hits = %v", s.TierHits())
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	time.Sleep(5 * time.Millisecond)
	if tm.Elapsed() < 4*time.Millisecond {
		t.Fatalf("Elapsed = %v", tm.Elapsed())
	}
}

func TestSeriesStatistics(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Variance() != 0 || s.N() != 0 {
		t.Fatal("empty series must be zeros")
	}
	s.Add(2)
	if s.Variance() != 0 {
		t.Fatal("single-value variance must be 0")
	}
	s.Add(4)
	s.Add(6)
	if s.N() != 3 || math.Abs(s.Mean()-4) > 1e-12 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance of {2,4,6} = 8/3.
	if math.Abs(s.Variance()-8.0/3.0) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
}
