// Package metrics collects the measurements the evaluation reports:
// per-tier hit counts, miss counts, moved bytes, and wall-clock timings.
// All counters are safe for concurrent use.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// IOStats aggregates client-side read statistics.
type IOStats struct {
	mu       sync.Mutex
	tierHits map[string]int64

	hits      atomic.Int64
	misses    atomic.Int64
	bytesHit  atomic.Int64
	bytesMiss atomic.Int64
	readNanos atomic.Int64
	reads     atomic.Int64
}

// NewIOStats returns zeroed statistics.
func NewIOStats() *IOStats {
	return &IOStats{tierHits: make(map[string]int64)}
}

// Hit records nbytes served from tier.
func (s *IOStats) Hit(tier string, nbytes int64) {
	s.hits.Add(1)
	s.bytesHit.Add(nbytes)
	s.mu.Lock()
	s.tierHits[tier]++
	s.mu.Unlock()
}

// Miss records nbytes served from the PFS.
func (s *IOStats) Miss(nbytes int64) {
	s.misses.Add(1)
	s.bytesMiss.Add(nbytes)
}

// ObserveRead records one read call's latency.
func (s *IOStats) ObserveRead(d time.Duration) {
	s.reads.Add(1)
	s.readNanos.Add(int64(d))
}

// Hits returns the total segment-hit count.
func (s *IOStats) Hits() int64 { return s.hits.Load() }

// Misses returns the total segment-miss count.
func (s *IOStats) Misses() int64 { return s.misses.Load() }

// Reads returns the number of read calls observed.
func (s *IOStats) Reads() int64 { return s.reads.Load() }

// HitRatio returns hits/(hits+misses), or 0 when nothing was read.
func (s *IOStats) HitRatio() float64 {
	h, m := s.hits.Load(), s.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// TotalReadTime returns the summed read latency across all calls.
func (s *IOStats) TotalReadTime() time.Duration {
	return time.Duration(s.readNanos.Load())
}

// TierHits returns a copy of the per-tier hit counts.
func (s *IOStats) TierHits() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.tierHits))
	for k, v := range s.tierHits {
		out[k] = v
	}
	return out
}

// Bytes returns (hitBytes, missBytes).
func (s *IOStats) Bytes() (int64, int64) {
	return s.bytesHit.Load(), s.bytesMiss.Load()
}

// IOSnapshot is a point-in-time copy of an IOStats, taken under one
// lock acquisition so exporters (the HTTP status API, the telemetry
// registry, the agent protocol) stop reading counters piecemeal. It is
// a plain value: gob- and json-encodable.
type IOSnapshot struct {
	Hits      int64
	Misses    int64
	Reads     int64
	BytesHit  int64
	BytesMiss int64
	ReadNanos int64
	TierHits  map[string]int64
}

// Snapshot captures all counters at once.
func (s *IOStats) Snapshot() IOSnapshot {
	snap := IOSnapshot{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Reads:     s.reads.Load(),
		BytesHit:  s.bytesHit.Load(),
		BytesMiss: s.bytesMiss.Load(),
		ReadNanos: s.readNanos.Load(),
	}
	s.mu.Lock()
	snap.TierHits = make(map[string]int64, len(s.tierHits))
	for k, v := range s.tierHits {
		snap.TierHits[k] = v
	}
	s.mu.Unlock()
	return snap
}

// HitRatio returns hits/(hits+misses), or 0 when nothing was read.
func (s IOSnapshot) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// TotalReadTime returns the summed read latency across all calls.
func (s IOSnapshot) TotalReadTime() time.Duration {
	return time.Duration(s.ReadNanos)
}

// String renders a one-line summary.
func (s IOSnapshot) String() string {
	names := make([]string, 0, len(s.TierHits))
	for n := range s.TierHits {
		names = append(names, n)
	}
	sort.Strings(names)
	per := ""
	for _, n := range names {
		per += fmt.Sprintf(" %s=%d", n, s.TierHits[n])
	}
	return fmt.Sprintf("hits=%d misses=%d ratio=%.1f%%%s",
		s.Hits, s.Misses, s.HitRatio()*100, per)
}

// String renders a one-line summary.
func (s *IOStats) String() string {
	return s.Snapshot().String()
}

// Timer measures wall-clock intervals with repeat support.
type Timer struct {
	start time.Time
}

// StartTimer begins timing.
func StartTimer() *Timer { return &Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t *Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Series accumulates repeated measurements and reports mean/variance,
// matching the paper's "average along with the variance over five runs".
type Series struct {
	vals []float64
}

// Add appends one measurement.
func (s *Series) Add(v float64) { s.vals = append(s.vals, v) }

// N returns the number of measurements.
func (s *Series) N() int { return len(s.vals) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.vals) == 0 {
		return 0
	}
	var t float64
	for _, v := range s.vals {
		t += v
	}
	return t / float64(len(s.vals))
}

// Variance returns the population variance (0 when fewer than 2 values).
func (s *Series) Variance() float64 {
	if len(s.vals) < 2 {
		return 0
	}
	m := s.Mean()
	var t float64
	for _, v := range s.vals {
		t += (v - m) * (v - m)
	}
	return t / float64(len(s.vals))
}
