//go:build !hfetch_invariants

package invariant

// Enabled reports whether assertions are compiled in.
const Enabled = false

// Assert is a no-op in the default build; the Enabled guard at call
// sites removes the call and its argument evaluation entirely.
func Assert(cond bool, format string, args ...any) {}
