//go:build hfetch_invariants

// Package invariant provides build-tag-gated runtime assertions for the
// concurrency seams the static analyzers cannot see across: the mover's
// queue accounting and the placement engine's residency model. Build
// with -tags hfetch_invariants (the CI race job does) to turn every
// Assert into a panic on violation; the default build compiles the
// checks out entirely.
//
// Call sites guard with the Enabled constant so the checked expressions
// themselves are dead-code-eliminated in the default build:
//
//	if invariant.Enabled {
//		invariant.Assert(m.outstanding >= 0, "outstanding %d < 0", m.outstanding)
//	}
package invariant

import "fmt"

// Enabled reports whether assertions are compiled in.
const Enabled = true

// Assert panics with a formatted message when cond is false.
func Assert(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
