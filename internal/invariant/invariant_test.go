package invariant

import "testing"

func TestAssert(t *testing.T) {
	if !Enabled {
		// Default build: Assert must be inert even on a false condition.
		Assert(false, "must not panic when disabled")
		return
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assert(false) did not panic with invariants enabled")
		}
		if msg, ok := r.(string); !ok || msg != "invariant violated: n=7" {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	Assert(true, "true conditions never panic")
	Assert(false, "n=%d", 7)
}
