package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Trace export in the Chrome trace_event JSON format, loadable by
// chrome://tracing and by Perfetto's legacy-JSON importer: one "thread"
// (tid) per lifecycle trace, duration ("X") events for timed stages and
// instant ("i") events for markers, timestamps in microseconds.

// appendRecEvents renders one lifecycle trace onto evs under the given
// pid (one pid per node in fleet exports).
func appendRecEvents(evs []map[string]any, pid int, rec TraceRecord) []map[string]any {
	label := fmt.Sprintf("%s#%d", rec.File, rec.Seg)
	if rec.Done {
		label += " [" + rec.Class.String() + "]"
	}
	evs = append(evs, map[string]any{
		"name": "thread_name", "ph": "M", "pid": pid, "tid": rec.ID,
		"args": map[string]any{"name": label},
	})
	for _, e := range rec.Events {
		ev := map[string]any{
			"name": e.Stage,
			"cat":  "hfetch",
			"pid":  pid,
			"tid":  rec.ID,
			"ts":   float64(e.Start.UnixNano()) / 1e3,
			"args": map[string]any{
				"file": rec.File, "seg": rec.Seg,
				"tier": e.Tier, "class": rec.Class.String(),
				"trace_id": rec.ID,
			},
		}
		if e.Nanos > 0 {
			ev["ph"] = "X"
			ev["dur"] = float64(e.Nanos) / 1e3
		} else {
			ev["ph"] = "i"
			ev["s"] = "t"
		}
		evs = append(evs, ev)
	}
	return evs
}

// WriteTraceJSON renders lifecycle traces as a Chrome trace_event
// document. node labels the process in otherData.
func WriteTraceJSON(w io.Writer, node string, recs []TraceRecord) error {
	evs := make([]map[string]any, 0, len(recs)*4)
	for _, rec := range recs {
		evs = appendRecEvents(evs, 1, rec)
	}
	doc := map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"node": node, "format": "hfetch-lifecycle"},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// NodeTraces pairs one node's name with its exported lifecycle traces,
// for fleet trace export.
type NodeTraces struct {
	Node string
	Recs []TraceRecord
}

// WriteFleetTraceJSON renders traces from several nodes as one Chrome
// trace_event document with one process lane (pid) per node: pids are
// assigned in sorted node-name order and labeled with process_name
// metadata, so Perfetto shows a track group per node. A trace ID that
// appears under several pids (a propagated cross-node trace) shows the
// same lifecycle spanning lanes.
func WriteFleetTraceJSON(w io.Writer, lanes []NodeTraces) error {
	sorted := append([]NodeTraces(nil), lanes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	names := []string{}
	evs := []map[string]any{}
	for i, lane := range sorted {
		pid := i + 1
		names = append(names, lane.Node)
		evs = append(evs, map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": lane.Node},
		})
		for _, rec := range lane.Recs {
			evs = appendRecEvents(evs, pid, rec)
		}
	}
	doc := map[string]any{
		"traceEvents":     evs,
		"displayTimeUnit": "ms",
		"otherData":       map[string]any{"nodes": names, "format": "hfetch-lifecycle-fleet"},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ValidateTraceJSON checks raw against the exported trace schema:
// a traceEvents array whose members carry name/ph/pid/tid, a numeric ts
// on phase X and i events, and a non-negative dur on X events. Like
// bench.Validate it is hand-rolled and returns every violation.
func ValidateTraceJSON(raw []byte) []error {
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return []error{fmt.Errorf("not valid JSON: %w", err)}
	}
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	evs, ok := doc["traceEvents"].([]any)
	if !ok {
		return append(errs, fmt.Errorf("traceEvents: missing or not an array"))
	}
	for i, e := range evs {
		m, ok := e.(map[string]any)
		if !ok {
			bad("traceEvents[%d]: not an object", i)
			continue
		}
		if s, ok := m["name"].(string); !ok || s == "" {
			bad("traceEvents[%d].name: missing or empty", i)
		}
		ph, _ := m["ph"].(string)
		if ph != "X" && ph != "i" && ph != "M" {
			bad("traceEvents[%d].ph: got %q, want X|i|M", i, ph)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := m[key].(float64); !ok {
				bad("traceEvents[%d].%s: missing or not a number", i, key)
			}
		}
		if ph == "X" || ph == "i" {
			if ts, ok := m["ts"].(float64); !ok || ts < 0 {
				bad("traceEvents[%d].ts: missing or negative", i)
			}
		}
		if ph == "X" {
			if d, ok := m["dur"].(float64); !ok || d < 0 {
				bad("traceEvents[%d].dur: missing or negative", i)
			}
		}
	}
	return errs
}

// DefaultAccessLogSize bounds the folded access recorder's ring.
const DefaultAccessLogSize = 1 << 14

// AccessSample is one recorded application access — the lifecycle
// layer's replacement for the legacy internal/trace CSV recorder.
type AccessSample struct {
	When    time.Time
	File    string
	Offset  int64
	Length  int64
	Tier    string // serving tier; empty = PFS (miss)
	Latency time.Duration
}

// Hit reports whether the access was served from the hierarchy.
func (s AccessSample) Hit() bool { return s.Tier != "" }

// AccessLog is a sampling ring of access samples. Recording is mutex +
// slot write; callers on hot paths gate on their own time sampling (the
// server records only accesses it already timed).
type AccessLog struct {
	mu    sync.Mutex
	every int
	n     int
	ring  []AccessSample
	next  int
	full  bool

	total, hits int64
	byTier      map[string]int64
}

// NewAccessLog keeps `size` samples, recording one access in `every`
// (minimums 1).
func NewAccessLog(size, every int) *AccessLog {
	if size < 1 {
		size = 1
	}
	if every < 1 {
		every = 1
	}
	return &AccessLog{every: every, ring: make([]AccessSample, size), byTier: make(map[string]int64)}
}

// Record stores s (subject to sampling). Nil-safe.
//
//hfetch:hotpath
func (l *AccessLog) Record(s AccessSample) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.n++
	if l.n%l.every == 0 {
		l.ring[l.next] = s
		l.next++
		if l.next == len(l.ring) {
			l.next = 0
			l.full = true
		}
	}
	l.total++
	if s.Hit() {
		l.hits++
	}
	l.byTier[s.Tier]++
	l.mu.Unlock()
}

// Len returns the number of samples held.
func (l *AccessLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.ring)
	}
	return l.next
}

// Samples returns the held samples, oldest first.
func (l *AccessLog) Samples() []AccessSample {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	start := 0
	if l.full {
		n = len(l.ring)
		start = l.next
	}
	out := make([]AccessSample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%len(l.ring)])
	}
	return out
}

// AccessSummary aggregates an access log for human output.
type AccessSummary struct {
	Total   int64
	Hits    int64
	ByTier  map[string]int64
	MeanLat time.Duration
	P99Lat  time.Duration
}

// HitRatio returns hits/total (0 when empty).
func (s AccessSummary) HitRatio() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Total)
}

func (s AccessSummary) String() string {
	return fmt.Sprintf("accesses %d, hit ratio %.3f, mean %v, p99 %v",
		s.Total, s.HitRatio(), s.MeanLat.Round(time.Microsecond), s.P99Lat.Round(time.Microsecond))
}

// Summary computes totals over everything recorded (not just the held
// window) plus latency quantiles over the held samples.
func (l *AccessLog) Summary() AccessSummary {
	out := AccessSummary{ByTier: make(map[string]int64)}
	if l == nil {
		return out
	}
	samples := l.Samples()
	l.mu.Lock()
	out.Total = l.total
	out.Hits = l.hits
	for k, v := range l.byTier {
		out.ByTier[k] = v
	}
	l.mu.Unlock()
	if len(samples) == 0 {
		return out
	}
	lats := make([]time.Duration, len(samples))
	var sum time.Duration
	for i, s := range samples {
		lats[i] = s.Latency
		sum += s.Latency
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	out.MeanLat = sum / time.Duration(len(lats))
	out.P99Lat = lats[(len(lats)*99)/100]
	return out
}

// WriteAccessCSV writes samples in the legacy internal/trace CSV layout:
// when_unix_ns,file,offset,length,tier,hit,latency_us.
func WriteAccessCSV(w io.Writer, samples []AccessSample) error {
	if _, err := fmt.Fprintln(w, "when_unix_ns,file,offset,length,tier,hit,latency_us"); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%d,%s,%d,%d,%s,%t,%.2f\n",
			s.When.UnixNano(), s.File, s.Offset, s.Length, s.Tier, s.Hit(),
			float64(s.Latency)/float64(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
