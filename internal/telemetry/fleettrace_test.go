package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteFleetTraceJSON(t *testing.T) {
	t0 := time.Unix(1000, 0)
	shared := uint64(0x42<<32 | 7) // one trace ID propagated across nodes
	lanes := []NodeTraces{
		{Node: "node1", Recs: []TraceRecord{{
			ID: shared, File: "f", Seg: 3, Class: ClassTimely, Done: true,
			Events: []TraceEvent{
				{Stage: StageEvent, Start: t0},
				{Stage: StageRead, Tier: "ram", Start: t0.Add(time.Millisecond), Nanos: 5000},
			},
		}}},
		{Node: "node0", Recs: []TraceRecord{{
			ID: shared, File: "f", Seg: 3,
			Events: []TraceEvent{
				{Stage: StagePeerFetchServe, Tier: "nvme", Start: t0.Add(500 * time.Microsecond), Nanos: 2000},
			},
		}}},
	}
	var buf bytes.Buffer
	if err := WriteFleetTraceJSON(&buf, lanes); err != nil {
		t.Fatal(err)
	}
	if errs := ValidateTraceJSON(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("fleet trace fails validation: %v", errs)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData struct {
			Nodes  []string `json:"nodes"`
			Format string   `json:"format"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData.Format != "hfetch-lifecycle-fleet" {
		t.Fatalf("format = %q", doc.OtherData.Format)
	}
	// Lanes come out in sorted node order, one pid each.
	if len(doc.OtherData.Nodes) != 2 || doc.OtherData.Nodes[0] != "node0" || doc.OtherData.Nodes[1] != "node1" {
		t.Fatalf("nodes = %v, want [node0 node1]", doc.OtherData.Nodes)
	}
	procNames := map[int]string{}
	pidsForShared := map[int]bool{}
	for _, e := range doc.TraceEvents {
		if e.Name == "process_name" {
			args, _ := e.Args["name"].(string)
			procNames[e.Pid] = args
		}
		if e.Ph != "M" && e.Tid == shared {
			pidsForShared[e.Pid] = true
		}
	}
	if procNames[1] != "node0" || procNames[2] != "node1" {
		t.Fatalf("process names = %v, want pid1=node0 pid2=node1", procNames)
	}
	// The propagated trace ID shows up in both node lanes — the whole
	// point of fleet export.
	if len(pidsForShared) != 2 {
		t.Fatalf("shared trace ID spans %d pids, want 2", len(pidsForShared))
	}
}

func TestWriteFleetTraceJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFleetTraceJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if errs := ValidateTraceJSON(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("empty fleet trace fails validation: %v", errs)
	}
}
