package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// MetricSnapshot is one series' point-in-time state, gob-encodable so
// snapshots travel over the agent protocol.
type MetricSnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Labels string // rendered {k="v",...}, "" when unlabeled
	Value  int64  // counters and gauges
	Hist   *HistSnapshot
}

// Snapshot is a registry's full state at one instant, in registration
// order. Snapshots from several nodes merge into a cluster view.
type Snapshot struct {
	Metrics []MetricSnapshot
}

// Snapshot captures every series, evaluating gauge functions. A nil
// registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	if r == nil {
		return out
	}
	r.mu.RLock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.Lock()
		series := make([]*series, len(f.order))
		copy(series, f.order)
		f.mu.Unlock()
		for _, s := range series {
			m := MetricSnapshot{Name: f.name, Help: f.help, Kind: f.kind, Labels: s.labels}
			switch f.kind {
			case KindCounter:
				if s.cf != nil {
					m.Value = s.cf()
				} else {
					m.Value = s.c.Value()
				}
			case KindGauge:
				if s.gf != nil {
					m.Value = s.gf()
				} else {
					m.Value = s.g.Value()
				}
			case KindHistogram:
				h := s.h.Snapshot()
				m.Hist = &h
			}
			out.Metrics = append(out.Metrics, m)
		}
	}
	return out
}

// Merge folds o into s: series with the same name+labels are summed
// (histograms bucket-wise), new series are appended. Counters and
// gauges sum, which is the natural cluster aggregation for totals and
// depths.
func (s *Snapshot) Merge(o Snapshot) {
	idx := make(map[string]int, len(s.Metrics))
	for i, m := range s.Metrics {
		idx[m.Name+m.Labels] = i
	}
	for _, m := range o.Metrics {
		i, ok := idx[m.Name+m.Labels]
		if !ok {
			if m.Hist != nil {
				h := *m.Hist
				m.Hist = &h
			}
			idx[m.Name+m.Labels] = len(s.Metrics)
			s.Metrics = append(s.Metrics, m)
			continue
		}
		dst := &s.Metrics[i]
		dst.Value += m.Value
		if m.Hist != nil {
			if dst.Hist == nil {
				h := *m.Hist
				dst.Hist = &h
			} else {
				dst.Hist.Merge(*m.Hist)
			}
		}
	}
}

// MergeSnapshots folds any number of per-node snapshots into one fleet
// view: counters and gauges sum, histograms merge bucket-wise, and
// series seen on only some nodes are carried through. The inputs are
// not mutated.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}

// WriteText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), families in sorted name order so scrapes and
// `hfetchctl metrics raw` output diff cleanly across runs. Histograms
// emit cumulative le buckets up to the highest occupied bucket, then
// +Inf, sum and count.
func (s Snapshot) WriteText(w io.Writer) {
	// Group same-name series (a merged snapshot may interleave them),
	// then order families by name for stable output.
	byName := make(map[string][]int, len(s.Metrics))
	var names []string
	for i, m := range s.Metrics {
		if _, ok := byName[m.Name]; !ok {
			names = append(names, m.Name)
		}
		byName[m.Name] = append(byName[m.Name], i)
	}
	sort.Strings(names)
	for _, name := range names {
		first := s.Metrics[byName[name][0]]
		if first.Help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, first.Help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, first.Kind)
		for _, i := range byName[name] {
			m := s.Metrics[i]
			switch m.Kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(w, "%s%s %d\n", m.Name, m.Labels, m.Value)
			case KindHistogram:
				writeHistText(w, m)
			}
		}
	}
}

func writeHistText(w io.Writer, m MetricSnapshot) {
	h := m.Hist
	if h == nil {
		return
	}
	top := -1
	for b := NumBuckets - 1; b >= 0; b-- {
		if h.Buckets[b] > 0 {
			top = b
			break
		}
	}
	var cum int64
	for b := 0; b <= top; b++ {
		cum += h.Buckets[b]
		fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLE(m.Labels, strconv.FormatInt(bucketUpper(b), 10)), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name, withLE(m.Labels, "+Inf"), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, m.Labels, h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", m.Name, m.Labels, h.Count)
}

// withLE splices the le label into an already-rendered label set.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// WriteText renders the registry's current state (nil-safe: a nil
// registry writes nothing).
func (r *Registry) WriteText(w io.Writer) {
	r.Snapshot().WriteText(w)
}

// Handler serves the registry as a Prometheus /metrics endpoint.
//
//lint:allow nilsafe r is only captured into the handler closure, which calls nil-safe WriteText
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w)
	})
}
