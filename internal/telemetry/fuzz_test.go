package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzValidateTraceJSON throws arbitrary documents at the Perfetto
// trace validator: no panics, no nil errors, invalid JSON always
// rejected. One seed is a real WriteTraceJSON document so the corpus
// starts from the accepted shape.
func FuzzValidateTraceJSON(f *testing.F) {
	var buf bytes.Buffer
	base := time.Unix(1_700_000_000, 0)
	recs := []TraceRecord{{
		ID: 1, File: "f.h5", Seg: 3, Done: true, Class: ClassTimely,
		Events: []TraceEvent{
			{Stage: StageFetch, Tier: "ram", Start: base, Nanos: 1500},
			{Stage: "landed", Tier: "ram", Start: base.Add(time.Millisecond)},
		},
	}}
	if err := WriteTraceJSON(&buf, "node0", recs); err != nil {
		f.Fatal(err)
	}
	if errs := ValidateTraceJSON(buf.Bytes()); len(errs) != 0 {
		f.Fatalf("self-emitted trace fails validation: %v", errs)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"traceEvents":[{"ph":"X"}]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"n","ph":"i","pid":1,"tid":1,"ts":-5}]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		errs := ValidateTraceJSON(raw)
		for i, e := range errs {
			if e == nil {
				t.Fatalf("ValidateTraceJSON returned nil error at index %d", i)
			}
		}
		if !json.Valid(raw) && len(errs) == 0 {
			t.Fatalf("invalid JSON accepted: %q", raw)
		}
	})
}
