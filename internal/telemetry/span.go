package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Pipeline stages of a segment's life, from the file-system event to the
// application read. Each stage's duration is aggregated into the
// hfetch_pipeline_stage_nanos{stage=...} histogram family and,
// when a span log is enabled, sampled into it with the file+segment
// correlation key.
const (
	// StageQueueWait is the time an event spends in the monitor's queue
	// between Post and daemon dequeue.
	StageQueueWait = "queue_wait"
	// StageAudit is the auditor's per-event scoring time.
	StageAudit = "audit"
	// StagePlace is one placement-engine decision pass (plan only, not
	// data movement).
	StagePlace = "place"
	// StageDecide is one full engine pass from entry to the point the
	// engine can accept the next pass: with the synchronous executor it
	// includes data movement (the engine is occupied until the moves
	// land), with the async mover it is planning plus queue submission
	// only. The gap between the two is what decoupling buys.
	StageDecide = "decide"
	// StageFetch is one ioclient data movement (PFS fetch or tier
	// transfer) executed for a placement.
	StageFetch = "fetch"
	// StageClientRead is one application ReadAt through the agent.
	StageClientRead = "client_read"
)

// StageHistName is the histogram family every span aggregates into.
const StageHistName = "hfetch_pipeline_stage_nanos"

// SpanRecord is one sampled pipeline span.
type SpanRecord struct {
	Stage string
	// File and Seg correlate spans of the same segment across stages.
	// Seg is -1 when the span covers more than one segment (a placement
	// pass, a multi-segment read).
	File  string
	Seg   int64
	Tier  string
	Start time.Time
	Nanos int64
}

// SpanLog is a sampled ring of recent pipeline spans. Sampling happens
// on an atomic counter; only sampled spans take the ring lock.
type SpanLog struct {
	every uint64
	n     atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	next int
	full bool
}

// NewSpanLog returns a ring keeping size spans, sampling one span in
// every `every` (minimums 1).
func NewSpanLog(size, every int) *SpanLog {
	if size < 1 {
		size = 1
	}
	if every < 1 {
		every = 1
	}
	return &SpanLog{every: uint64(every), ring: make([]SpanRecord, size)}
}

func (l *SpanLog) record(rec SpanRecord) {
	if l == nil {
		return
	}
	if l.n.Add(1)%l.every != 0 {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	l.mu.Unlock()
}

// Recent returns the sampled spans, most recent first.
func (l *SpanLog) Recent() []SpanRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

// EnableSpans attaches a sampled span log to the registry: size spans
// are kept, one in every `every` spans is sampled. Aggregate stage
// histograms are recorded regardless; the log adds the correlated
// per-span detail. Nil-safe.
func (r *Registry) EnableSpans(size, every int) {
	if r == nil {
		return
	}
	r.spans.Store(NewSpanLog(size, every))
}

// Spans returns the attached span log (nil when not enabled).
func (r *Registry) Spans() *SpanLog {
	if r == nil {
		return nil
	}
	return r.spans.Load()
}

// StageHist returns the aggregate histogram for one pipeline stage,
// cached so repeated calls are a sync.Map read. Nil-safe.
func (r *Registry) StageHist(stage string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.stageHists.Load(stage); ok {
		return h.(*Histogram)
	}
	h := r.Histogram(StageHistName, "per-stage pipeline latency in nanoseconds", "stage", stage)
	r.stageHists.Store(stage, h)
	return h
}

// Span records one pipeline stage execution: the duration lands in the
// stage's aggregate histogram and, when a span log is enabled, the span
// may be sampled into it. When lifecycle tracing is enabled and the
// segment has an in-flight trace, the span also joins that trace —
// no call-site changes needed. Nil-safe; with a nil registry this is a
// single branch.
//
//hfetch:hotpath
func (r *Registry) Span(stage, file string, segIdx int64, tier string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.StageHist(stage).Observe(int64(d))
	if l := r.spans.Load(); l != nil {
		l.record(SpanRecord{Stage: stage, File: file, Seg: segIdx, Tier: tier, Start: start, Nanos: int64(d)})
	}
	if lc := r.lifecycle.Load(); lc != nil {
		lc.Record(stage, file, segIdx, tier, start, d)
	}
}
