package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle stages and terminal markers beyond the pipeline-span stages
// of span.go. A lifecycle trace strings both kinds together: "event"
// opens the trace at ingestion, span stages (audit, decide, mover_queue,
// fetch) attach as the segment moves through the pipeline, and one of
// the marker stages below closes it.
const (
	// StageEvent marks trace creation: the access event entering the
	// monitor.
	StageEvent = "event"
	// StageMoverQueue is the time a move spends in the async mover's
	// per-tier queue between submission and execution.
	StageMoverQueue = "mover_queue"
	// StageLand marks a prefetched segment arriving in its tier.
	StageLand = "land"
	// StageRead marks the first application read served from a tier.
	StageRead = "read"
	// StageRoute marks a score update leaving (or arriving at) a node on
	// the cluster routing path; the span's duration is the wire hop time
	// when the receiver records it.
	StageRoute = "route"
	// StagePeerFetchServe marks a node serving a cross-node fetch from
	// its own tiers on behalf of a peer. It is recorded on the serving
	// node under the requester's trace ID, so a merged fleet export shows
	// the lifecycle spanning both nodes.
	StagePeerFetchServe = "peer_fetch_serve"
	// StageEvicted, StageAborted, StageInvalidated and StageDropped are
	// terminal markers: the segment left the hierarchy unread, its fetch
	// was superseded or failed, its file was invalidated by a write, or
	// the flight recorder evicted the trace to stay within its memory cap.
	StageEvicted     = "evicted"
	StageAborted     = "aborted"
	StageInvalidated = "invalidated"
	StageDropped     = "dropped"
)

// Class is the effectiveness verdict for one prefetched segment,
// assigned exactly once per (file, segment, generation) at first read or
// at the terminal event that makes a read impossible.
type Class uint8

// Effectiveness classes. ClassNone marks traces that never involved a
// prefetch (the segment was already resident, or the trace expired
// before the pipeline acted on it) — they are excluded from the
// effectiveness counters.
const (
	ClassNone Class = iota
	// ClassTimely: the fetch landed before the first read arrived; the
	// read hit the tier at full speed. Lead time (land → read) goes to
	// the hfetch_prefetch_lead_nanos histogram.
	ClassTimely
	// ClassLate: the first read arrived while the fetch was still in
	// flight and stalled on it (the WaitFor rescue path). The prefetch
	// still served the read, but cost a stall.
	ClassLate
	// ClassWasted: the fetch was queued or landed but the segment was
	// evicted, superseded, failed, or invalidated before any read.
	ClassWasted
	// ClassRedundant: the fetch landed after the demand read had already
	// been served from the PFS (including stall-timeout fallbacks), or
	// landed twice — the work duplicated I/O the application already paid
	// for.
	ClassRedundant
)

func (c Class) String() string {
	switch c {
	case ClassTimely:
		return "timely"
	case ClassLate:
		return "late"
	case ClassWasted:
		return "wasted"
	case ClassRedundant:
		return "redundant"
	}
	return "none"
}

// TraceEvent is one stage of a lifecycle trace. Nanos is zero for
// instant markers (event, land, terminal markers).
type TraceEvent struct {
	Stage string
	Tier  string
	Start time.Time
	Nanos int64
}

// TraceRecord is a whole-lifecycle trace: every stage one (file,
// segment, generation) passed through, under one trace ID. Done is false
// for in-flight snapshots.
type TraceRecord struct {
	ID     uint64
	File   string
	Seg    int64
	Class  Class
	Done   bool
	Events []TraceEvent
}

// Lifecycle defaults.
const (
	DefaultLifecycleRing        = 256
	DefaultLifecycleSampleEvery = 64
	DefaultLifecycleMaxActive   = 4096
)

const lifecycleStripes = 64

type segKey struct {
	file string
	seg  int64
}

// live is one active trace / ledger entry. Guarded by its stripe's lock.
type live struct {
	id     uint64
	born   time.Time
	events []TraceEvent

	// Ledger state, meaningful once fetchQueued is set.
	fetchQueued bool
	landed      bool
	landTime    time.Time
	missServed  bool // a demand read went to the PFS before landing
}

type stripe struct {
	mu sync.Mutex
	m  map[segKey]*live
}

// Lifecycle is the causal segment tracer plus prefetch-effectiveness
// ledger. It keeps a fixed-memory table of in-flight traces (lock
// striped by file+segment) and a flight-recorder ring of completed
// traces, and classifies every prefetched segment exactly once.
//
// Two populations share the table: event-rooted traces, created at
// ingestion with 1-in-N sampling (traces of plain resident reads are
// interesting but plentiful), and fetch-bearing entries, created
// unconditionally at fetch-queue time (prefetches are rare and the
// ledger must account for all of them). All methods are nil-safe.
type Lifecycle struct {
	nextID    atomic.Uint64
	sampleCtr atomic.Uint64
	every     uint64
	grain     atomic.Int64

	// active counts table entries; fetchActive counts the subset holding
	// an unclassified fetch. Hot paths gate on these before touching any
	// stripe lock.
	active      atomic.Int64
	fetchActive atomic.Int64

	perStripe int
	stripes   [lifecycleStripes]stripe

	ringMu   sync.Mutex
	ring     []TraceRecord
	ringNext int
	ringFull bool

	window classWindow

	access *AccessLog

	// Classification counters; bound to a registry by EnableLifecycle.
	timely, late, wasted, redundant atomic.Int64
	completed, dropped              atomic.Int64
	lead                            *Histogram
}

// classWindow is the rolling window behind the effectiveness ratio.
type classWindow struct {
	mu     sync.Mutex
	buf    []Class
	next   int
	full   bool
	counts [5]int64
}

func (w *classWindow) add(c Class) {
	w.mu.Lock()
	if w.full {
		w.counts[w.buf[w.next]]-- // the overwritten slot leaves the window
	}
	w.buf[w.next] = c
	w.counts[c]++
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// ratioPPM returns useful/total over the window in parts per million,
// where useful = timely + late (the prefetch served a read at all).
func (w *classWindow) ratioPPM() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.counts[ClassTimely] + w.counts[ClassLate] +
		w.counts[ClassWasted] + w.counts[ClassRedundant]
	if total == 0 {
		return 0
	}
	return (w.counts[ClassTimely] + w.counts[ClassLate]) * 1e6 / total
}

// NewLifecycle builds a tracer keeping ringSize completed traces,
// sampling one event-rooted trace in every `every`, and holding at most
// maxActive in-flight traces (all <= 0 take the defaults).
func NewLifecycle(ringSize, every, maxActive int) *Lifecycle {
	if ringSize <= 0 {
		ringSize = DefaultLifecycleRing
	}
	if every <= 0 {
		every = DefaultLifecycleSampleEvery
	}
	if maxActive <= 0 {
		maxActive = DefaultLifecycleMaxActive
	}
	per := maxActive / lifecycleStripes
	if per < 4 {
		per = 4
	}
	lc := &Lifecycle{
		every:     uint64(every),
		perStripe: per,
		ring:      make([]TraceRecord, ringSize),
		lead:      &Histogram{},
		access:    NewAccessLog(DefaultAccessLogSize, 1),
	}
	lc.window.buf = make([]Class, 512)
	for i := range lc.stripes {
		lc.stripes[i].m = make(map[segKey]*live)
	}
	return lc
}

// EnableLifecycle attaches a lifecycle tracer to the registry and
// registers its metric families. Nil-safe.
func (r *Registry) EnableLifecycle(ringSize, every, maxActive int) {
	if r == nil {
		return
	}
	lc := NewLifecycle(ringSize, every, maxActive)
	lc.lead = r.Histogram("hfetch_prefetch_lead_nanos",
		"time a timely prefetch landed ahead of its first read")
	r.CounterFunc("hfetch_prefetch_timely_total",
		"prefetched segments that landed before their first read",
		lc.timely.Load)
	r.CounterFunc("hfetch_prefetch_late_total",
		"prefetched segments whose first read stalled on the in-flight fetch",
		lc.late.Load)
	r.CounterFunc("hfetch_prefetch_wasted_total",
		"prefetched segments evicted, superseded, failed or invalidated unread",
		lc.wasted.Load)
	r.CounterFunc("hfetch_prefetch_redundant_total",
		"prefetched segments that landed after the demand read was served from the PFS",
		lc.redundant.Load)
	r.GaugeFunc("hfetch_prefetch_effectiveness_ppm",
		"rolling (timely+late)/classified ratio in parts per million",
		lc.window.ratioPPM)
	r.GaugeFunc("hfetch_lifecycle_active",
		"in-flight lifecycle traces", lc.active.Load)
	r.CounterFunc("hfetch_lifecycle_completed_total",
		"lifecycle traces moved to the flight recorder", lc.completed.Load)
	r.CounterFunc("hfetch_lifecycle_dropped_total",
		"in-flight traces evicted to stay within the memory cap", lc.dropped.Load)
	r.lifecycle.Store(lc)
}

// Lifecycle returns the attached tracer (nil when not enabled).
func (r *Registry) Lifecycle() *Lifecycle {
	if r == nil {
		return nil
	}
	return r.lifecycle.Load()
}

// SetOrigin namespaces this tracer's IDs by node: the node name is
// hashed into the high 32 bits of the ID counter, so traces rooted on
// different nodes never collide when their exports are merged into one
// fleet trace. Call once at startup, before traffic.
func (lc *Lifecycle) SetOrigin(node string) {
	if lc == nil || node == "" {
		return
	}
	h := uint64(2166136261)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= 16777619
	}
	lc.nextID.Store((h & 0xffffffff) << 32)
}

// SetGrain sets the segment size used to map event offsets to segment
// indices. The server calls it once at startup.
func (lc *Lifecycle) SetGrain(g int64) {
	if lc != nil && g > 0 {
		lc.grain.Store(g)
	}
}

// SegOf maps a file offset to its segment index (-1 before SetGrain).
func (lc *Lifecycle) SegOf(off int64) int64 {
	if lc == nil {
		return -1
	}
	g := lc.grain.Load()
	if g <= 0 {
		return -1
	}
	return off / g
}

func (lc *Lifecycle) stripeOf(k segKey) *stripe {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.file); i++ {
		h ^= uint64(k.file[i])
		h *= 1099511628211
	}
	h ^= uint64(k.seg)
	h *= 1099511628211
	h ^= h >> 33
	return &lc.stripes[h%lifecycleStripes]
}

// insertLocked adds t under k, evicting a stale entry to the ring if the
// stripe is at its cap. Caller holds st.mu.
func (lc *Lifecycle) insertLocked(st *stripe, k segKey, t *live) {
	if len(st.m) >= lc.perStripe {
		// Evict the oldest entry, preferring ones without fetch state so
		// the ledger keeps accounting for real prefetches as long as it
		// can. Stripe caps are small, so the scan is bounded.
		var vk segKey
		var victim *live
		for ck, cv := range st.m {
			if victim == nil ||
				(victim.fetchQueued && !cv.fetchQueued) ||
				(victim.fetchQueued == cv.fetchQueued && cv.born.Before(victim.born)) {
				vk, victim = ck, cv
			}
		}
		delete(st.m, vk)
		lc.active.Add(-1)
		if victim.fetchQueued {
			lc.fetchActive.Add(-1)
		}
		lc.dropped.Add(1)
		victim.events = append(victim.events, TraceEvent{Stage: StageDropped, Start: time.Now()})
		lc.pushRing(vk, victim, ClassNone)
	}
	st.m[k] = t
	lc.active.Add(1)
}

// pushRing moves a finished entry into the flight-recorder ring.
func (lc *Lifecycle) pushRing(k segKey, t *live, class Class) {
	rec := TraceRecord{ID: t.id, File: k.file, Seg: k.seg, Class: class, Done: true, Events: t.events}
	lc.ringMu.Lock()
	lc.ring[lc.ringNext] = rec
	lc.ringNext++
	if lc.ringNext == len(lc.ring) {
		lc.ringNext = 0
		lc.ringFull = true
	}
	lc.ringMu.Unlock()
	lc.completed.Add(1)
}

// classify counts the verdict and retires the entry. Caller holds the
// stripe lock and has already removed the entry from the map.
func (lc *Lifecycle) classify(k segKey, t *live, class Class, terminal TraceEvent) {
	lc.active.Add(-1)
	if t.fetchQueued {
		lc.fetchActive.Add(-1)
	}
	if terminal.Stage != "" {
		t.events = append(t.events, terminal)
	}
	switch class {
	case ClassTimely:
		lc.timely.Add(1)
	case ClassLate:
		lc.late.Add(1)
	case ClassWasted:
		lc.wasted.Add(1)
	case ClassRedundant:
		lc.redundant.Add(1)
	}
	if class != ClassNone {
		lc.window.add(class)
	}
	lc.pushRing(k, t, class)
}

// OnEvent roots a new trace for an access event entering the monitor,
// 1-in-N sampled, and returns its trace ID (0 when not sampled or
// tracing is off). When the (file, segment) already has an in-flight
// trace the existing ID is returned, so repeated events on a hot segment
// share one generation.
//
//hfetch:hotpath
func (lc *Lifecycle) OnEvent(file string, off int64, at time.Time) uint64 {
	if lc == nil {
		return 0
	}
	seg := lc.SegOf(off)
	if seg < 0 {
		return 0
	}
	k := segKey{file, seg}
	sampled := lc.every <= 1 || lc.sampleCtr.Add(1)%lc.every == 0
	if !sampled && lc.active.Load() == 0 {
		return 0
	}
	st := lc.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	if t, ok := st.m[k]; ok {
		return t.id
	}
	if !sampled {
		return 0
	}
	if at.IsZero() {
		//lint:allow hotpath fallback for unstamped events, reached only for traces that passed sampling
		at = time.Now()
	}
	t := &live{id: lc.nextID.Add(1), born: at}
	t.events = append(t.events, TraceEvent{Stage: StageEvent, Start: at})
	lc.insertLocked(st, k, t)
	return t.id
}

// Record attaches a pipeline span to the (file, segment)'s in-flight
// trace, if one exists. Registry.Span forwards here, so every
// instrumented stage joins traces with no call-site changes. Spans with
// no segment identity are skipped.
//
//hfetch:hotpath
func (lc *Lifecycle) Record(stage, file string, seg int64, tier string, start time.Time, d time.Duration) {
	if lc == nil || file == "" || seg < 0 || lc.active.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	if t, ok := st.m[k]; ok {
		t.events = append(t.events, TraceEvent{Stage: stage, Tier: tier, Start: start, Nanos: int64(d)})
	}
	st.mu.Unlock()
}

// Current returns the trace ID of the (file, segment)'s in-flight
// trace, or 0 when none exists. It is the propagation hook: cross-node
// requests carry this ID so the serving peer can attach its spans to
// the same trace.
//
//hfetch:hotpath
func (lc *Lifecycle) Current(file string, seg int64) uint64 {
	if lc == nil || file == "" || seg < 0 || lc.active.Load() == 0 {
		return 0
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	t := st.m[k]
	st.mu.Unlock()
	if t == nil {
		return 0
	}
	return t.id
}

// RecordPeer records a span performed on behalf of a foreign trace —
// one rooted on another node, whose ID arrived in a comm trace-context
// header. There is no local in-flight entry to attach to, so the span
// goes straight to the flight recorder as a completed single-span
// record under the foreign ID; merging exports across nodes re-unites
// it with the rest of the lifecycle.
func (lc *Lifecycle) RecordPeer(trace uint64, stage, file string, seg int64, tier string, start time.Time, d time.Duration) {
	if lc == nil || trace == 0 {
		return
	}
	t := &live{id: trace, born: start}
	t.events = append(t.events, TraceEvent{Stage: stage, Tier: tier, Start: start, Nanos: int64(d)})
	lc.pushRing(segKey{file, seg}, t, ClassNone)
}

// Active returns the in-flight trace count.
func (lc *Lifecycle) Active() int64 {
	if lc == nil {
		return 0
	}
	return lc.active.Load()
}

// EffCounts returns the classification totals.
func (lc *Lifecycle) EffCounts() (timely, late, wasted, redundant int64) {
	if lc == nil {
		return 0, 0, 0, 0
	}
	return lc.timely.Load(), lc.late.Load(), lc.wasted.Load(), lc.redundant.Load()
}

// LeadHist returns the timely lead-time histogram.
func (lc *Lifecycle) LeadHist() *Histogram {
	if lc == nil {
		return nil
	}
	return lc.lead
}

// AccessLog returns the folded access recorder (see AccessLog).
func (lc *Lifecycle) AccessLog() *AccessLog {
	if lc == nil {
		return nil
	}
	return lc.access
}

// Completed returns the flight-recorder ring, most recent first.
func (lc *Lifecycle) Completed() []TraceRecord {
	if lc == nil {
		return nil
	}
	lc.ringMu.Lock()
	defer lc.ringMu.Unlock()
	n := lc.ringNext
	if lc.ringFull {
		n = len(lc.ring)
	}
	out := make([]TraceRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := (lc.ringNext - 1 - i + len(lc.ring)) % len(lc.ring)
		out = append(out, lc.ring[idx])
	}
	return out
}

// Export returns completed traces plus snapshots of the in-flight ones
// (Done=false), for the trace exporters.
func (lc *Lifecycle) Export() []TraceRecord {
	if lc == nil {
		return nil
	}
	out := lc.Completed()
	for i := range lc.stripes {
		st := &lc.stripes[i]
		st.mu.Lock()
		for k, t := range st.m {
			evs := append([]TraceEvent(nil), t.events...)
			out = append(out, TraceRecord{ID: t.id, File: k.file, Seg: k.seg, Events: evs})
		}
		st.mu.Unlock()
	}
	return out
}
