package telemetry

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTelemetryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same instrument.
	if r.Counter("c_total", "a counter") != c {
		t.Fatal("counter lookup not idempotent")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("gf", "a computed gauge", func() int64 { return 42 })
	snap := r.Snapshot()
	found := false
	for _, m := range snap.Metrics {
		if m.Name == "gf" {
			found = true
			if m.Value != 42 {
				t.Fatalf("gauge func = %d, want 42", m.Value)
			}
		}
	}
	if !found {
		t.Fatal("gauge func missing from snapshot")
	}
}

func TestTelemetryNilSafety(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	r.Counter("x", "").Inc()
	r.Gauge("x2", "").Set(1)
	r.GaugeFunc("x3", "", func() int64 { return 1 })
	r.Histogram("x4", "").Observe(1)
	r.HistVec("x5", "", "tier").With("ram").Observe(1)
	r.CounterVec("x6", "", "tier").With("ram").Add(1)
	r.Span(StageAudit, "f", 0, "", time.Now(), time.Millisecond)
	r.EnableSpans(8, 1)
	if got := r.Spans().Recent(); got != nil {
		t.Fatalf("nil span log returned %v", got)
	}
	var buf bytes.Buffer
	r.WriteText(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
}

// TestTelemetryConcurrentWriters hammers one histogram and the registry
// lookup path from many goroutines; run with -race.
func TestTelemetryConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers = 16
	const perWriter = 2000
	var wg sync.WaitGroup
	hv := r.HistVec("lat_nanos", "latency", "tier")
	cv := r.CounterVec("hits_total", "hits", "tier")
	tiersList := []string{"ram", "nvme", "bb"}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tier := tiersList[i%len(tiersList)]
				hv.With(tier).Observe(int64(i + 1))
				cv.With(tier).Inc()
				// Concurrent same-name lookups must converge on one series.
				r.Counter("shared_total", "shared").Inc()
				r.Span(StageClientRead, "f", int64(i), tier, time.Now(), time.Duration(i))
			}
		}(w)
	}
	wg.Wait()

	if got := r.Counter("shared_total", "shared").Value(); got != writers*perWriter {
		t.Fatalf("shared counter = %d, want %d", got, writers*perWriter)
	}
	var histTotal, ctrTotal int64
	for _, tier := range tiersList {
		histTotal += hv.With(tier).Count()
		ctrTotal += cv.With(tier).Value()
	}
	if histTotal != writers*perWriter {
		t.Fatalf("histogram observations = %d, want %d", histTotal, writers*perWriter)
	}
	if ctrTotal != writers*perWriter {
		t.Fatalf("counter total = %d, want %d", ctrTotal, writers*perWriter)
	}
	if got := r.StageHist(StageClientRead).Count(); got != writers*perWriter {
		t.Fatalf("stage histogram = %d spans, want %d", got, writers*perWriter)
	}
}

// TestTelemetryHistogramQuantiles checks quantile estimates against a
// known distribution: log buckets guarantee estimates within a factor
// of 2 of the true value.
func TestTelemetryHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	const n = 100000
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over [1, 2^30): a latency-shaped distribution.
		vals[i] = int64(1) << uint(rng.Intn(30))
		vals[i] += rng.Int63n(vals[i])
		h.Observe(vals[i])
	}
	s := h.Snapshot()
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	var sum int64
	maxv := int64(0)
	for _, v := range vals {
		sum += v
		if v > maxv {
			maxv = v
		}
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if s.Max != maxv {
		t.Fatalf("max = %d, want %d", s.Max, maxv)
	}

	sorted := append([]int64(nil), vals...)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		truth := quickQuantile(sorted, q)
		est := s.Quantile(q)
		if est < truth/2 || est > truth*2 {
			t.Errorf("q%.2f: estimate %d outside [%d, %d] (truth %d)",
				q, est, truth/2, truth*2, truth)
		}
	}
	if got := s.Quantile(1); got != maxv {
		t.Errorf("q1 = %d, want max %d", got, maxv)
	}
	// Degenerate distributions.
	var one Histogram
	one.Observe(777)
	if got := one.Snapshot().Quantile(0.5); got < 512 || got > 1023 {
		t.Errorf("single-value p50 = %d, want within its bucket [512,1023]", got)
	}
	var empty Histogram
	if got := empty.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
}

func quickQuantile(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

func TestTelemetrySnapshotMerge(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("hits_total", "hits", "tier", "ram").Add(3)
	b.Counter("hits_total", "hits", "tier", "ram").Add(4)
	b.Counter("hits_total", "hits", "tier", "nvme").Add(9)
	a.Histogram("lat_nanos", "lat").Observe(100)
	b.Histogram("lat_nanos", "lat").Observe(200)

	snap := a.Snapshot()
	snap.Merge(b.Snapshot())
	got := map[string]int64{}
	for _, m := range snap.Metrics {
		if m.Kind == KindCounter {
			got[m.Name+m.Labels] = m.Value
		}
		if m.Name == "lat_nanos" {
			if m.Hist.Count != 2 || m.Hist.Sum != 300 {
				t.Fatalf("merged hist = count %d sum %d, want 2/300", m.Hist.Count, m.Hist.Sum)
			}
		}
	}
	if got[`hits_total{tier="ram"}`] != 7 {
		t.Fatalf("merged ram hits = %d, want 7", got[`hits_total{tier="ram"}`])
	}
	if got[`hits_total{tier="nvme"}`] != 9 {
		t.Fatalf("merged nvme hits = %d, want 9", got[`hits_total{tier="nvme"}`])
	}
}

// TestTelemetryExpositionGolden locks the Prometheus text format.
func TestTelemetryExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("hfetch_hits_total", "segment hits", "tier", "ram").Add(12)
	r.Counter("hfetch_hits_total", "segment hits", "tier", "nvme").Add(3)
	r.Gauge("hfetch_queue_depth", "queued events").Set(5)
	h := r.Histogram("hfetch_read_nanos", "read latency", "tier", "ram")
	h.Observe(0)
	h.Observe(1)
	h.Observe(3)
	h.Observe(900)
	h.Observe(1000)

	var buf bytes.Buffer
	r.WriteText(&buf)
	want := strings.Join([]string{
		`# HELP hfetch_hits_total segment hits`,
		`# TYPE hfetch_hits_total counter`,
		`hfetch_hits_total{tier="ram"} 12`,
		`hfetch_hits_total{tier="nvme"} 3`,
		`# HELP hfetch_queue_depth queued events`,
		`# TYPE hfetch_queue_depth gauge`,
		`hfetch_queue_depth 5`,
		`# HELP hfetch_read_nanos read latency`,
		`# TYPE hfetch_read_nanos histogram`,
		`hfetch_read_nanos_bucket{tier="ram",le="0"} 1`,
		`hfetch_read_nanos_bucket{tier="ram",le="1"} 2`,
		`hfetch_read_nanos_bucket{tier="ram",le="3"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="7"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="15"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="31"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="63"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="127"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="255"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="511"} 3`,
		`hfetch_read_nanos_bucket{tier="ram",le="1023"} 5`,
		`hfetch_read_nanos_bucket{tier="ram",le="+Inf"} 5`,
		`hfetch_read_nanos_sum{tier="ram"} 1904`,
		`hfetch_read_nanos_count{tier="ram"} 5`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTelemetrySpanLog(t *testing.T) {
	r := NewRegistry()
	r.EnableSpans(4, 2) // keep 4, sample every 2nd
	base := time.Now()
	for i := 0; i < 10; i++ {
		r.Span(StageFetch, "f.dat", int64(i), "nvme", base, time.Duration(i)*time.Millisecond)
	}
	recent := r.Spans().Recent()
	if len(recent) != 4 {
		t.Fatalf("span log kept %d, want 4", len(recent))
	}
	// Every 2nd span sampled: indices 1,3,5,7,9 recorded; ring keeps the
	// last 4, most recent first.
	wantSegs := []int64{9, 7, 5, 3}
	for i, rec := range recent {
		if rec.Seg != wantSegs[i] {
			t.Fatalf("recent[%d].Seg = %d, want %d (%+v)", i, rec.Seg, wantSegs[i], recent)
		}
		if rec.Stage != StageFetch || rec.Tier != "nvme" || rec.File != "f.dat" {
			t.Fatalf("bad span record %+v", rec)
		}
	}
	if got := r.StageHist(StageFetch).Count(); got != 10 {
		t.Fatalf("aggregate stage count = %d, want 10 (all spans, not just sampled)", got)
	}
}

func TestTelemetryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a histogram did not panic")
		}
	}()
	r.Histogram("dual", "")
}

func TestTelemetryHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {1 << 47, NumBuckets - 1}, {1 << 62, NumBuckets - 1}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for b := 1; b < NumBuckets-1; b++ {
		if bucketOf(bucketLower(b)) != b || bucketOf(bucketUpper(b)) != b {
			t.Errorf("bucket %d bounds [%d,%d] do not map back", b, bucketLower(b), bucketUpper(b))
		}
	}
}

func BenchmarkTelemetryHistogramObserve(b *testing.B) {
	h := &Histogram{}
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = (v * 7) % (1 << 30)
		}
	})
}

func BenchmarkTelemetryNilObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func ExampleRegistry_WriteText() {
	r := NewRegistry()
	r.Counter("hfetch_evictions_total", "evictions").Add(2)
	var buf bytes.Buffer
	r.WriteText(&buf)
	fmt.Print(buf.String())
	// Output:
	// # HELP hfetch_evictions_total evictions
	// # TYPE hfetch_evictions_total counter
	// hfetch_evictions_total 2
}
