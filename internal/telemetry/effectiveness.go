package telemetry

import "time"

// The effectiveness ledger: every prefetched segment gets an entry at
// fetch-queue time (unconditionally — fetches are rare compared to
// reads) and is classified exactly once, at its first read or at the
// terminal event that makes a read impossible. Entry removal from the
// stripe map *is* the classification barrier: whichever hook removes the
// entry counts it, so concurrent eviction/invalidation/read races cannot
// double-count.

// OnFetchQueued records a placement decision to fetch (file, seg) into
// tier. trace is the event-rooted trace ID carried through the auditor
// (0 when the event was not sampled); when the segment has no in-flight
// trace, one is created so the ledger covers every prefetch. The
// decision span (passStart → now) is appended as the "decide" stage.
// Returns the trace ID the fetch should carry through the mover.
func (lc *Lifecycle) OnFetchQueued(file string, seg int64, trace uint64, tier string, passStart time.Time) uint64 {
	if lc == nil || seg < 0 {
		return trace
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.m[k]
	if !ok {
		t = &live{id: lc.nextID.Add(1), born: now}
		if trace != 0 {
			t.id = trace
		}
		lc.insertLocked(st, k, t)
	}
	if !t.fetchQueued {
		t.fetchQueued = true
		lc.fetchActive.Add(1)
	}
	t.events = append(t.events, TraceEvent{Stage: StageDecide, Tier: tier, Start: passStart, Nanos: int64(now.Sub(passStart))})
	return t.id
}

// OnFetchLanded records a fetch arriving in its tier. A landing for a
// dead generation (the entry was already classified — say, invalidated
// mid-flight — or a newer generation owns the key) is ignored: the
// classification already happened and each generation counts once. A
// landing after the demand read was served from the PFS classifies
// redundant and retires the entry.
func (lc *Lifecycle) OnFetchLanded(file string, seg int64, trace uint64, tier string) {
	if lc == nil || seg < 0 || lc.fetchActive.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	now := time.Now()
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.m[k]
	if !ok || (trace != 0 && t.id != trace) {
		return
	}
	if t.landed {
		// Duplicate landing of one generation: the second copy is
		// redundant work, but the entry stays open for its read.
		lc.redundant.Add(1)
		lc.window.add(ClassRedundant)
		return
	}
	t.landed = true
	t.landTime = now
	t.events = append(t.events, TraceEvent{Stage: StageLand, Tier: tier, Start: now})
	if t.missServed {
		delete(st.m, k)
		lc.classify(k, t, ClassRedundant, TraceEvent{})
	}
}

// OnReadHit records an application read served from a tier. For a
// fetch-bearing entry this is the classification point: stalled reads
// (the WaitFor rescue) classify late, reads of an already-landed segment
// classify timely with the land→read lead time. Event-rooted traces
// without a fetch complete unclassified.
func (lc *Lifecycle) OnReadHit(file string, seg int64, tier string, stalled bool) {
	if lc == nil || seg < 0 || lc.active.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.m[k]
	if !ok {
		return
	}
	now := time.Now()
	delete(st.m, k)
	t.events = append(t.events, TraceEvent{Stage: StageRead, Tier: tier, Start: now})
	switch {
	case t.fetchQueued && stalled:
		lc.classify(k, t, ClassLate, TraceEvent{})
	case t.fetchQueued && t.landed:
		lc.lead.Observe(int64(now.Sub(t.landTime)))
		lc.classify(k, t, ClassTimely, TraceEvent{})
	case t.fetchQueued:
		// Hit without a recorded landing (e.g. the landing callback has
		// not run yet): the data was there in time, count it timely
		// without a lead sample.
		lc.classify(k, t, ClassTimely, TraceEvent{})
	default:
		lc.classify(k, t, ClassNone, TraceEvent{})
	}
}

// OnReadMiss records a demand read that fell through to the PFS while a
// fetch for the segment was queued or in flight: when that fetch lands,
// it is redundant. Cheap no-op when no fetches are outstanding.
func (lc *Lifecycle) OnReadMiss(file string, seg int64) {
	if lc == nil || seg < 0 || lc.fetchActive.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	if t, ok := st.m[k]; ok && t.fetchQueued && !t.landed {
		t.missServed = true
	}
	st.mu.Unlock()
}

// OnEvicted records (file, seg) leaving the hierarchy. An unread
// fetch-bearing entry classifies wasted; an event-rooted trace completes
// unclassified.
func (lc *Lifecycle) OnEvicted(file string, seg int64) {
	if lc == nil || seg < 0 || lc.active.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.m[k]
	if !ok {
		return
	}
	delete(st.m, k)
	term := TraceEvent{Stage: StageEvicted, Start: time.Now()}
	if t.fetchQueued {
		lc.classify(k, t, ClassWasted, term)
	} else {
		lc.classify(k, t, ClassNone, term)
	}
}

// OnFetchAborted records a fetch that will never land: superseded by a
// newer placement decision, cancelled, or failed. reason becomes the
// terminal marker's tier slot ("superseded", "failed"). The generation
// is matched by trace ID so an abort of a stale move cannot kill a newer
// generation's entry.
func (lc *Lifecycle) OnFetchAborted(file string, seg int64, trace uint64, reason string) {
	if lc == nil || seg < 0 || lc.fetchActive.Load() == 0 {
		return
	}
	k := segKey{file, seg}
	st := lc.stripeOf(k)
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.m[k]
	if !ok || (trace != 0 && t.id != trace) || !t.fetchQueued {
		return
	}
	delete(st.m, k)
	lc.classify(k, t, ClassWasted, TraceEvent{Stage: StageAborted, Tier: reason, Start: time.Now()})
}

// OnInvalidated ends every in-flight trace of file: a write made all
// prefetched data stale. Unread fetch-bearing entries classify wasted.
// This scans all stripes — invalidation is rare.
func (lc *Lifecycle) OnInvalidated(file string) {
	if lc == nil || lc.active.Load() == 0 {
		return
	}
	now := time.Now()
	for i := range lc.stripes {
		st := &lc.stripes[i]
		st.mu.Lock()
		for k, t := range st.m {
			if k.file != file {
				continue
			}
			delete(st.m, k)
			term := TraceEvent{Stage: StageInvalidated, Start: now}
			if t.fetchQueued {
				lc.classify(k, t, ClassWasted, term)
			} else {
				lc.classify(k, t, ClassNone, term)
			}
		}
		st.mu.Unlock()
	}
}
