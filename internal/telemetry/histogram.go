package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket b
// holds observations whose bit length is b, i.e. values in
// [2^(b-1), 2^b - 1] (bucket 0 holds exactly 0). 48 buckets cover
// nanosecond latencies up to ~39 hours and byte sizes up to 128 TiB,
// with a worst-case relative quantile error of 2x.
const NumBuckets = 48

// Histogram is a log2-bucketed distribution of int64 observations
// (typically nanoseconds or bytes). The record path is lock-free: one
// atomic add on the bucket, count and sum, plus a CAS loop for the max.
// All methods are safe on a nil receiver, so instrumentation handles can
// stay nil when telemetry is disabled and cost a single branch.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// bucketUpper is the inclusive upper bound of bucket b.
func bucketUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	return (int64(1) << uint(b)) - 1
}

// bucketLower is the inclusive lower bound of bucket b.
func bucketLower(b int) int64 {
	if b <= 0 {
		return 0
	}
	return int64(1) << uint(b-1)
}

// Observe records one value. Negative values are clamped to zero.
//
//hfetch:hotpath
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a consistent-enough copy for reporting: bucket counts
// are read individually, so a snapshot taken under concurrent writes may
// be off by the handful of observations in flight, never corrupt.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a histogram, mergeable across
// nodes and gob-encodable for the agent protocol.
type HistSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets [NumBuckets]int64
}

// Merge adds o's observations into s (cluster-wide aggregation).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Mean returns the arithmetic mean observation (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank. The estimate
// is exact to within the bucket's bounds (a factor of 2).
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count-1)
	var seen int64
	for b := 0; b < NumBuckets; b++ {
		n := s.Buckets[b]
		if n == 0 {
			continue
		}
		if float64(seen+n) > rank {
			lo, hi := bucketLower(b), bucketUpper(b)
			if hi > s.Max {
				hi = s.Max
			}
			if hi < lo {
				return lo
			}
			// Position of the rank within this bucket, 0..1.
			frac := (rank - float64(seen)) / float64(n)
			return lo + int64(math.Round(frac*float64(hi-lo)))
		}
		seen += n
	}
	return s.Max
}
