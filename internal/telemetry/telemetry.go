// Package telemetry is HFetch's production observability subsystem: a
// low-overhead metric registry (atomic counters, gauges, log2-bucketed
// latency histograms), lightweight pipeline spans that time each stage
// of a segment's life, and a Prometheus-text-format exposition.
//
// The design constraint is the prefetch hot path: recording a metric is
// one or two atomic adds with no locks, and the whole subsystem is
// nil-safe — a nil *Registry hands out nil metric handles whose methods
// are single-branch no-ops, so harness and benchmark runs can disable
// telemetry entirely and pay ~zero.
//
// Handles are cheap to look up but not free (a read-lock and a map
// probe), so hot paths obtain them once and keep them; *Vec types cache
// per-label-value handles behind a sync.Map for paths whose label (the
// tier name) is only known at record time.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates metric types.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (nil-safe).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (nil-safe).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v (nil-safe).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by n (nil-safe).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// series is one (labels -> instrument) instance of a family.
type series struct {
	labels string // rendered {k="v",...}, "" when unlabeled
	c      *Counter
	g      *Gauge
	cf     func() int64 // counter backed by an external atomic
	gf     func() int64 // gauge computed at snapshot time
	h      *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name string
	help string
	kind Kind

	mu     sync.Mutex
	series map[string]*series
	order  []*series
}

// Registry holds a node's metrics. The zero value is not usable; create
// with NewRegistry. A nil *Registry is the disabled state: every lookup
// returns a nil handle and every exposition is empty.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []*family

	spans      atomic.Pointer[SpanLog]
	lifecycle  atomic.Pointer[Lifecycle]
	stageHists sync.Map // stage string -> *Histogram

	sampleCtr   atomic.Uint64
	sampleEvery uint64
}

// DefaultTimeSampleEvery is the default latency-timing sample rate: one
// in this many hot-path operations reads the clock and lands in the
// latency histograms. Counters are never sampled.
const DefaultTimeSampleEvery = 8

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), sampleEvery: DefaultTimeSampleEvery}
}

// Enabled reports whether the registry records anything (nil-safe).
func (r *Registry) Enabled() bool { return r != nil }

// SetTimeSampling makes TimeSample admit one in every N operations
// (every <= 1 admits all). Latency histograms fed through TimeSample
// stay unbiased — only their _count becomes the sampled count; pair
// them with an unsampled counter for exact totals. Call before traffic.
func (r *Registry) SetTimeSampling(every int) {
	if r == nil {
		return
	}
	if every < 1 {
		every = 1
	}
	r.sampleEvery = uint64(every)
}

// TimeSample reports whether the caller should take timestamps for this
// operation. Reading the clock twice per operation dominates
// instrumentation cost on fast paths, so timed observations are sampled;
// everything else (counters, gauges) records every operation. Nil-safe:
// a nil registry never samples.
func (r *Registry) TimeSample() bool {
	if r == nil {
		return false
	}
	if r.sampleEvery <= 1 {
		return true
	}
	return r.sampleCtr.Add(1)%r.sampleEvery == 0
}

// RenderLabels renders label pairs ("tier", "ram", ...) into the
// canonical exposition form {tier="ram"}. Pairs are sorted by key so the
// same label set always renders identically.
func RenderLabels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		pairs = append(pairs, "")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating as needed) the series of name+labels,
// checking the kind matches any prior registration.
func (r *Registry) lookup(name, help string, kind Kind, labels string) *series {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.families[name]
		if f == nil {
			f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
			r.families[name] = f
			r.order = append(r.order, f)
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", name, kind, f.kind))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = &Histogram{}
		}
		f.series[labels] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter returns the counter of name with the given label pairs,
// creating it on first use. Nil-safe: a nil registry returns nil.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, RenderLabels(labelPairs...)).c
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time. It is how components export counters they already keep
// as atomics, at zero hot-path cost. Re-registering replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labelPairs ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, KindCounter, RenderLabels(labelPairs...))
	s.cf = fn
}

// Gauge returns the gauge of name with the given label pairs.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, RenderLabels(labelPairs...)).g
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time (queue depths, map sizes). Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labelPairs ...string) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, KindGauge, RenderLabels(labelPairs...))
	s.gf = fn
}

// Histogram returns the histogram of name with the given label pairs.
func (r *Registry) Histogram(name, help string, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, RenderLabels(labelPairs...)).h
}

// CounterVec hands out per-label-value counters of one family, caching
// handles so the hot path is a sync.Map read.
type CounterVec struct {
	r          *Registry
	name, help string
	label      string
	m          sync.Map // value string -> *Counter
}

// CounterVec returns a cached-handle view over the family name keyed by
// one label. Nil-safe.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r: r, name: name, help: help, label: label}
}

// With returns the counter for the given label value (nil-safe).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	if c, ok := v.m.Load(value); ok {
		return c.(*Counter)
	}
	c := v.r.Counter(v.name, v.help, v.label, value)
	v.m.Store(value, c)
	return c
}

// HistVec is CounterVec for histograms.
type HistVec struct {
	r          *Registry
	name, help string
	label      string
	m          sync.Map // value string -> *Histogram
}

// HistVec returns a cached-handle histogram family keyed by one label.
func (r *Registry) HistVec(name, help, label string) *HistVec {
	if r == nil {
		return nil
	}
	return &HistVec{r: r, name: name, help: help, label: label}
}

// With returns the histogram for the given label value (nil-safe).
func (v *HistVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	if h, ok := v.m.Load(value); ok {
		return h.(*Histogram)
	}
	h := v.r.Histogram(v.name, v.help, v.label, value)
	v.m.Store(value, h)
	return h
}
