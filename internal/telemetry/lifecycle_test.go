package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

const testGrain = 1 << 10

func newTestLifecycle(every int) *Lifecycle {
	lc := NewLifecycle(64, every, 0)
	lc.SetGrain(testGrain)
	return lc
}

// stages extracts the stage names of a trace record in order.
func stages(rec TraceRecord) []string {
	out := make([]string, len(rec.Events))
	for i, e := range rec.Events {
		out[i] = e.Stage
	}
	return out
}

func wantCounts(t *testing.T, lc *Lifecycle, timely, late, wasted, redundant int64) {
	t.Helper()
	gt, gl, gw, gr := lc.EffCounts()
	if gt != timely || gl != late || gw != wasted || gr != redundant {
		t.Fatalf("counts t/l/w/r = %d/%d/%d/%d, want %d/%d/%d/%d",
			gt, gl, gw, gr, timely, late, wasted, redundant)
	}
}

func TestLifecycleTimelyClassification(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	id := lc.OnEvent("/f", 5*testGrain, now)
	if id == 0 {
		t.Fatal("sampled event returned trace ID 0")
	}
	if again := lc.OnEvent("/f", 5*testGrain, now); again != id {
		t.Fatalf("repeated event on a hot segment: got ID %d, want %d", again, id)
	}
	got := lc.OnFetchQueued("/f", 5, id, "ram", now)
	if got != id {
		t.Fatalf("OnFetchQueued returned %d, want the event-rooted ID %d", got, id)
	}
	lc.OnFetchLanded("/f", 5, id, "ram")
	lc.OnReadHit("/f", 5, "ram", false)

	wantCounts(t, lc, 1, 0, 0, 0)
	if lc.LeadHist().Count() != 1 {
		t.Fatalf("lead observations = %d, want 1", lc.LeadHist().Count())
	}
	if lc.Active() != 0 {
		t.Fatalf("active = %d after classification, want 0", lc.Active())
	}
	recs := lc.Completed()
	if len(recs) != 1 {
		t.Fatalf("completed = %d, want 1", len(recs))
	}
	rec := recs[0]
	if rec.ID != id || !rec.Done || rec.Class != ClassTimely {
		t.Fatalf("record = %+v", rec)
	}
	want := []string{StageEvent, StageDecide, StageLand, StageRead}
	if got := stages(rec); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("stages = %v, want %v", got, want)
	}
}

func TestLifecycleLateReadRescue(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	id := lc.OnEvent("/f", 0, now)
	lc.OnFetchQueued("/f", 0, id, "ram", now)
	// The read arrives while the fetch is in flight and stalls on it.
	lc.OnReadHit("/f", 0, "ram", true)

	wantCounts(t, lc, 0, 1, 0, 0)
	if lc.LeadHist().Count() != 0 {
		t.Fatal("late rescue must not contribute a lead-time sample")
	}
	recs := lc.Completed()
	if len(recs) != 1 || recs[0].Class != ClassLate {
		t.Fatalf("completed = %+v", recs)
	}
}

func TestLifecycleEvictionBeforeFirstRead(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	lc.OnFetchQueued("/f", 3, 0, "ram", now)
	lc.OnFetchLanded("/f", 3, 0, "ram")
	lc.OnEvicted("/f", 3)

	wantCounts(t, lc, 0, 0, 1, 0)
	recs := lc.Completed()
	if len(recs) != 1 || recs[0].Class != ClassWasted {
		t.Fatalf("completed = %+v", recs)
	}
	if got := stages(recs[0]); got[len(got)-1] != StageEvicted {
		t.Fatalf("terminal stage = %v, want %s", got, StageEvicted)
	}
	// A plain event-rooted trace (no fetch) evicts unclassified.
	lc.OnEvent("/g", 0, now)
	lc.OnEvicted("/g", 0)
	wantCounts(t, lc, 0, 0, 1, 0)
}

func TestLifecycleSupersededQueuedFetch(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	id := lc.OnFetchQueued("/f", 7, 0, "nvme", now)

	// An abort carrying a stale generation's ID must not kill this entry.
	lc.OnFetchAborted("/f", 7, id+100, "superseded")
	wantCounts(t, lc, 0, 0, 0, 0)

	lc.OnFetchAborted("/f", 7, id, "superseded")
	wantCounts(t, lc, 0, 0, 1, 0)
	recs := lc.Completed()
	if len(recs) != 1 || recs[0].Class != ClassWasted {
		t.Fatalf("completed = %+v", recs)
	}
	last := recs[0].Events[len(recs[0].Events)-1]
	if last.Stage != StageAborted || last.Tier != "superseded" {
		t.Fatalf("terminal = %+v, want aborted/superseded", last)
	}
	// The abort retired the entry; a second abort is a no-op.
	lc.OnFetchAborted("/f", 7, id, "superseded")
	wantCounts(t, lc, 0, 0, 1, 0)
}

func TestLifecycleWriteInvalidationMidFetch(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	id := lc.OnEvent("/f", 0, now)
	lc.OnFetchQueued("/f", 0, id, "ram", now)
	lc.OnFetchQueued("/f", 1, 0, "ram", now)
	lc.OnEvent("/other", 0, now) // different file, must survive

	lc.OnInvalidated("/f")
	wantCounts(t, lc, 0, 0, 2, 0)
	if lc.Active() != 1 {
		t.Fatalf("active = %d, want the untouched /other trace", lc.Active())
	}

	// The fetch completes against the dead generation: ignored, not
	// redundant — the entry was already classified.
	lc.OnFetchLanded("/f", 0, id, "ram")
	wantCounts(t, lc, 0, 0, 2, 0)
	for _, rec := range lc.Completed() {
		if got := stages(rec); got[len(got)-1] != StageInvalidated {
			t.Fatalf("terminal stage = %v, want %s", got, StageInvalidated)
		}
	}
}

func TestLifecycleRedundantLanding(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	lc.OnFetchQueued("/f", 2, 0, "ram", now)
	// Demand read beats the fetch to the PFS...
	lc.OnReadMiss("/f", 2)
	// ...so the landing is duplicated work.
	lc.OnFetchLanded("/f", 2, 0, "ram")
	wantCounts(t, lc, 0, 0, 0, 1)
	if lc.Active() != 0 {
		t.Fatalf("active = %d, want 0 (redundant landing retires)", lc.Active())
	}

	// Duplicate landing of one generation: second copy counts redundant,
	// entry stays open and still classifies at its read.
	lc.OnFetchQueued("/g", 0, 0, "ram", now)
	lc.OnFetchLanded("/g", 0, 0, "ram")
	lc.OnFetchLanded("/g", 0, 0, "ram")
	wantCounts(t, lc, 0, 0, 0, 2)
	lc.OnReadHit("/g", 0, "ram", false)
	wantCounts(t, lc, 1, 0, 0, 2)
}

func TestLifecycleSamplingAndMemoryCap(t *testing.T) {
	lc := NewLifecycle(8, 2, 0)
	lc.SetGrain(testGrain)
	sampled := 0
	for i := 0; i < 10; i++ {
		if lc.OnEvent("/s", int64(i)*testGrain, time.Now()) != 0 {
			sampled++
		}
	}
	if sampled != 5 {
		t.Fatalf("sampled %d of 10 at 1-in-2", sampled)
	}

	// Flood one stripe past its per-stripe cap: evictions must land in
	// the ring as dropped traces, and active stays bounded.
	tight := NewLifecycle(4096, 1, 1) // perStripe floor = 4
	tight.SetGrain(testGrain)
	// Segments spread over all 64 stripes; 1024 distinct ones guarantee
	// every stripe blows past its floor of 4.
	for i := 0; i < 1024; i++ {
		tight.OnEvent("/cap", int64(i)*testGrain, time.Now())
	}
	if tight.Active() > 64*4 {
		t.Fatalf("active = %d, want bounded by the per-stripe cap", tight.Active())
	}
	dropped := 0
	for _, rec := range tight.Completed() {
		if got := stages(rec); got[len(got)-1] == StageDropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("cap overflow produced no dropped-trace records")
	}
}

func TestLifecycleNilSafety(t *testing.T) {
	var lc *Lifecycle
	if lc.OnEvent("/f", 0, time.Now()) != 0 {
		t.Fatal("nil OnEvent returned a trace ID")
	}
	if lc.OnFetchQueued("/f", 0, 7, "ram", time.Now()) != 7 {
		t.Fatal("nil OnFetchQueued must pass the trace through")
	}
	lc.OnFetchLanded("/f", 0, 0, "ram")
	lc.OnReadHit("/f", 0, "ram", false)
	lc.OnReadMiss("/f", 0)
	lc.OnEvicted("/f", 0)
	lc.OnFetchAborted("/f", 0, 0, "failed")
	lc.OnInvalidated("/f")
	lc.Record(StageFetch, "/f", 0, "ram", time.Now(), time.Millisecond)
	lc.SetGrain(4096)
	if lc.SegOf(1) != -1 || lc.Active() != 0 || lc.Completed() != nil || lc.Export() != nil {
		t.Fatal("nil accessors returned live values")
	}
	if lc.LeadHist() != nil || lc.AccessLog() != nil {
		t.Fatal("nil sub-structures must be nil")
	}
	var reg *Registry
	reg.EnableLifecycle(0, 0, 0)
	if reg.Lifecycle() != nil {
		t.Fatal("nil registry returned a lifecycle")
	}
}

func TestLifecycleRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	r.EnableLifecycle(16, 1, 0)
	lc := r.Lifecycle()
	if lc == nil {
		t.Fatal("EnableLifecycle did not attach")
	}
	lc.SetGrain(testGrain)
	now := time.Now()
	lc.OnFetchQueued("/f", 0, 0, "ram", now)
	lc.OnFetchLanded("/f", 0, 0, "ram")
	lc.OnReadHit("/f", 0, "ram", false)
	lc.OnFetchQueued("/f", 1, 0, "ram", now)
	lc.OnEvicted("/f", 1)

	want := map[string]int64{
		"hfetch_prefetch_timely_total":      1,
		"hfetch_prefetch_wasted_total":      1,
		"hfetch_prefetch_late_total":        0,
		"hfetch_prefetch_redundant_total":   0,
		"hfetch_lifecycle_completed_total":  2,
		"hfetch_prefetch_effectiveness_ppm": 500000,
	}
	got := map[string]int64{}
	for _, m := range r.Snapshot().Metrics {
		got[m.Name] = m.Value
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d", name, got[name], v)
		}
	}
}

func TestLifecycleSpanForwarding(t *testing.T) {
	r := NewRegistry()
	r.EnableLifecycle(16, 1, 0)
	lc := r.Lifecycle()
	lc.SetGrain(testGrain)
	id := lc.OnEvent("/f", 0, time.Now())
	// A registry span with segment identity joins the in-flight trace
	// with no lifecycle-specific call site.
	r.Span(StageFetch, "/f", 0, "ram", time.Now(), 3*time.Millisecond)
	lc.OnReadHit("/f", 0, "ram", false)
	recs := lc.Completed()
	if len(recs) != 1 || recs[0].ID != id {
		t.Fatalf("completed = %+v", recs)
	}
	found := false
	for _, e := range recs[0].Events {
		if e.Stage == StageFetch && e.Nanos == int64(3*time.Millisecond) {
			found = true
		}
	}
	if !found {
		t.Fatalf("span did not join the trace: %v", stages(recs[0]))
	}
}

func TestLifecycleConcurrentClassification(t *testing.T) {
	lc := newTestLifecycle(1)
	var wg sync.WaitGroup
	// Hammer one segment per goroutine through racing hooks; under -race
	// this exercises the stripe locking and the classification barrier.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			file := "/conc"
			now := time.Now()
			for i := 0; i < 200; i++ {
				seg := int64(g*200 + i)
				id := lc.OnEvent(file, seg*testGrain, now)
				lc.OnFetchQueued(file, seg, id, "ram", now)
				switch i % 4 {
				case 0:
					lc.OnFetchLanded(file, seg, id, "ram")
					lc.OnReadHit(file, seg, "ram", false)
				case 1:
					lc.OnReadHit(file, seg, "ram", true)
				case 2:
					lc.OnEvicted(file, seg)
				case 3:
					lc.OnReadMiss(file, seg)
					lc.OnFetchLanded(file, seg, id, "ram")
				}
			}
		}(g)
	}
	wg.Wait()
	timely, late, wasted, redundant := lc.EffCounts()
	if total := timely + late + wasted + redundant; total != 1600 {
		t.Fatalf("classified %d (t/l/w/r %d/%d/%d/%d), want every fetch counted exactly once (1600)",
			total, timely, late, wasted, redundant)
	}
}

func TestWriteTraceJSONRoundTrip(t *testing.T) {
	lc := newTestLifecycle(1)
	now := time.Now()
	id := lc.OnEvent("/f", 0, now)
	lc.OnFetchQueued("/f", 0, id, "ram", now)
	lc.OnFetchLanded("/f", 0, id, "ram")
	lc.OnReadHit("/f", 0, "ram", false)
	lc.OnEvent("/f", testGrain, now) // stays in flight

	var buf bytes.Buffer
	if err := WriteTraceJSON(&buf, "node0", lc.Export()); err != nil {
		t.Fatal(err)
	}
	if errs := ValidateTraceJSON(buf.Bytes()); len(errs) != 0 {
		t.Fatalf("exported trace fails its own schema: %v", errs)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.OtherData["node"] != "node0" {
		t.Fatalf("otherData = %v", doc.OtherData)
	}
	// Every stage of the completed trace shares one tid (= trace ID).
	seen := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Tid == id && e.Ph != "M" {
			seen[e.Name] = true
			if cl, _ := e.Args["class"].(string); cl != "timely" {
				t.Fatalf("event %s class = %q, want timely", e.Name, cl)
			}
		}
	}
	for _, st := range []string{StageEvent, StageDecide, StageLand, StageRead} {
		if !seen[st] {
			t.Fatalf("stage %s missing from export (saw %v)", st, seen)
		}
	}
}

func TestValidateTraceJSONRejectsBadDocuments(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no events":     `{"displayTimeUnit":"ms"}`,
		"bad phase":     `{"traceEvents":[{"name":"x","ph":"Q","pid":1,"tid":1,"ts":0}]}`,
		"missing tid":   `{"traceEvents":[{"name":"x","ph":"i","pid":1,"ts":0}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","pid":1,"tid":1,"ts":0,"dur":-1}]}`,
		"unnamed event": `{"traceEvents":[{"ph":"i","pid":1,"tid":1,"ts":0}]}`,
	}
	for name, doc := range cases {
		if errs := ValidateTraceJSON([]byte(doc)); len(errs) == 0 {
			t.Errorf("%s: expected validation errors, got none", name)
		}
	}
}

func TestAccessLogRecordsAndSummarizes(t *testing.T) {
	al := NewAccessLog(4, 1)
	base := time.Unix(0, 1)
	for i := 0; i < 9; i++ {
		al.Record(AccessSample{When: base, File: "/f", Offset: int64(i), Length: 100,
			Tier: "ram", Latency: 10 * time.Microsecond})
	}
	al.Record(AccessSample{When: base, File: "/f", Offset: 9, Length: 100,
		Latency: time.Millisecond})
	if al.Len() != 4 {
		t.Fatalf("retained = %d, want ring capacity 4", al.Len())
	}
	got := al.Samples()
	if got[len(got)-1].Offset != 9 || got[0].Offset != 6 {
		t.Fatalf("ring kept wrong window: %+v", got)
	}
	sum := al.Summary()
	if sum.Total != 10 || sum.Hits != 9 || sum.HitRatio() != 0.9 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.ByTier["ram"] != 9 || sum.ByTier[""] != 1 {
		t.Fatalf("by tier = %v", sum.ByTier)
	}
	if sum.String() == "" {
		t.Fatal("empty summary string")
	}

	var buf bytes.Buffer
	if err := WriteAccessCSV(&buf, al.Samples()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d, want header + 4", len(lines))
	}
	if lines[0] != "when_unix_ns,file,offset,length,tier,hit,latency_us" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "ram") || !strings.Contains(lines[1], "true") {
		t.Fatalf("hit row = %q", lines[1])
	}
	if !strings.Contains(lines[4], "false") {
		t.Fatalf("miss row = %q", lines[4])
	}

	// Sampling: 1-in-3 keeps every third record but counts everything.
	s3 := NewAccessLog(16, 3)
	for i := 0; i < 9; i++ {
		s3.Record(AccessSample{Tier: "ram"})
	}
	if s3.Len() != 3 {
		t.Fatalf("sampled retained = %d, want 3", s3.Len())
	}
	if s := s3.Summary(); s.Total != 9 {
		t.Fatalf("sampled total = %d, want 9 (totals count everything)", s.Total)
	}

	var nilLog *AccessLog
	nilLog.Record(AccessSample{})
	if nilLog.Len() != 0 || nilLog.Samples() != nil || nilLog.Summary().Total != 0 {
		t.Fatal("nil access log returned live values")
	}
}
