package telemetry

import (
	"reflect"
	"testing"
)

func findMetric(t *testing.T, s Snapshot, name, labels string) MetricSnapshot {
	t.Helper()
	for _, m := range s.Metrics {
		if m.Name == name && m.Labels == labels {
			return m
		}
	}
	t.Fatalf("metric %s%s not found in merged snapshot", name, labels)
	return MetricSnapshot{}
}

func TestMergeSnapshotsDisjointFamilies(t *testing.T) {
	a := NewRegistry()
	a.Counter("hfetch_only_a_total", "a").Add(3)
	b := NewRegistry()
	b.Counter("hfetch_only_b_total", "b").Add(5)
	b.Gauge("hfetch_b_gauge", "g").Set(7)

	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if got := findMetric(t, merged, "hfetch_only_a_total", "").Value; got != 3 {
		t.Fatalf("only_a = %d, want 3", got)
	}
	if got := findMetric(t, merged, "hfetch_only_b_total", "").Value; got != 5 {
		t.Fatalf("only_b = %d, want 5", got)
	}
	if got := findMetric(t, merged, "hfetch_b_gauge", "").Value; got != 7 {
		t.Fatalf("b_gauge = %d, want 7", got)
	}
	if got := len(merged.Metrics); got != 3 {
		t.Fatalf("merged series = %d, want 3", got)
	}
}

func TestMergeSnapshotsSumsCountersPerLabel(t *testing.T) {
	mk := func(local, peer int64) Snapshot {
		r := NewRegistry()
		r.Counter("hfetch_reads_total", "reads", "path", "local").Add(local)
		r.Counter("hfetch_reads_total", "reads", "path", "peer").Add(peer)
		return r.Snapshot()
	}
	merged := MergeSnapshots(mk(10, 1), mk(20, 2), mk(30, 3))
	if got := findMetric(t, merged, "hfetch_reads_total", `{path="local"}`).Value; got != 60 {
		t.Fatalf(`reads{path=local} = %d, want 60`, got)
	}
	if got := findMetric(t, merged, "hfetch_reads_total", `{path="peer"}`).Value; got != 6 {
		t.Fatalf(`reads{path=peer} = %d, want 6`, got)
	}
}

func TestMergeSnapshotsFoldsHistogramsBucketwise(t *testing.T) {
	// Two nodes with deliberately skewed latency shapes: node a saw many
	// fast observations, node b few slow ones. The merged histogram must
	// hold both tails, sum bucket-wise, and keep the global max.
	a := NewRegistry()
	ha := a.Histogram("hfetch_lat_nanos", "lat")
	for i := 0; i < 100; i++ {
		ha.Observe(100) // fast cluster
	}
	b := NewRegistry()
	hb := b.Histogram("hfetch_lat_nanos", "lat")
	for i := 0; i < 4; i++ {
		hb.Observe(1 << 30) // slow outliers
	}

	merged := MergeSnapshots(a.Snapshot(), b.Snapshot())
	h := findMetric(t, merged, "hfetch_lat_nanos", "").Hist
	if h == nil {
		t.Fatal("merged metric lost its histogram")
	}
	if h.Count != 104 {
		t.Fatalf("merged count = %d, want 104", h.Count)
	}
	if want := int64(100*100 + 4*(1<<30)); h.Sum != want {
		t.Fatalf("merged sum = %d, want %d", h.Sum, want)
	}
	if h.Max != 1<<30 {
		t.Fatalf("merged max = %d, want %d", h.Max, int64(1<<30))
	}
	// Bucket-wise sum: the merged buckets equal element-wise addition of
	// the inputs.
	var want HistSnapshot
	want.Merge(*findMetric(t, a.Snapshot(), "hfetch_lat_nanos", "").Hist)
	want.Merge(*findMetric(t, b.Snapshot(), "hfetch_lat_nanos", "").Hist)
	if !reflect.DeepEqual(h.Buckets, want.Buckets) {
		t.Fatalf("merged buckets diverge from element-wise sum:\n got %v\nwant %v", h.Buckets, want.Buckets)
	}
	// The skew survives: p50 sits in the fast cluster, p100 at the tail.
	if q := h.Quantile(0.5); q > 1000 {
		t.Fatalf("merged p50 = %d, want fast-cluster scale (<=1000)", q)
	}
	if q := h.Quantile(1.0); q < 1<<29 {
		t.Fatalf("merged p100 = %d, want slow-tail scale (>=2^29)", q)
	}
}

func TestMergeSnapshotsDoesNotAliasInputs(t *testing.T) {
	r := NewRegistry()
	r.Histogram("hfetch_h", "h").Observe(7)
	in := r.Snapshot()
	merged := MergeSnapshots(in)
	merged.Metrics[0].Hist.Count = 999
	if in.Metrics[0].Hist.Count == 999 {
		t.Fatal("MergeSnapshots aliased the input histogram snapshot")
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	if got := MergeSnapshots(); len(got.Metrics) != 0 {
		t.Fatalf("empty merge produced %d series", len(got.Metrics))
	}
	if got := MergeSnapshots(Snapshot{}, Snapshot{}); len(got.Metrics) != 0 {
		t.Fatalf("merge of empties produced %d series", len(got.Metrics))
	}
}
