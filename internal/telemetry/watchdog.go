package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWatchdogStall is how long a probe's progress counter may sit
// still (with work pending) before the watchdog trips.
const DefaultWatchdogStall = 5 * time.Second

// DefaultWatchdogBundles bounds the on-disk diagnostic bundle ring.
const DefaultWatchdogBundles = 4

// WatchdogProbe watches one pipeline for forward progress. Pending
// reports outstanding work (queue depth, inflight count); Progress is a
// monotonic completion counter. The probe is stalled when Pending > 0
// while Progress has not moved for the configured stall window — depth
// alone is not a stall (a full queue that drains and refills is
// healthy), and an idle pipeline (Pending == 0) never trips.
type WatchdogProbe struct {
	Name     string
	Pending  func() int64
	Progress func() int64
}

// WatchdogConfig tunes a Watchdog.
type WatchdogConfig struct {
	// Stall is the no-progress window before a probe trips (default
	// DefaultWatchdogStall).
	Stall time.Duration
	// Interval is the poll period of the background loop started by
	// Start (default Stall/4, floor 10ms).
	Interval time.Duration
	// Dir, when non-empty, is where diagnostic bundles are written. The
	// directory is created on first trip and kept to MaxBundles files,
	// oldest deleted first.
	Dir string
	// MaxBundles bounds the on-disk bundle ring (default
	// DefaultWatchdogBundles).
	MaxBundles int
	// Registry, when non-nil, supplies the metrics snapshot and the
	// last-N lifecycle traces for bundles, and hosts the
	// hfetch_watchdog_trips_total{probe} counter family.
	Registry *Registry
	// Now is the clock (default time.Now; tests inject a fake and drive
	// Poll directly).
	Now func() time.Time
}

// probeState is one probe plus its stall-detection state, guarded by
// Watchdog.mu.
type probeState struct {
	probe        WatchdogProbe
	lastProgress int64
	lastChange   time.Time
	seen         bool
	tripped      bool
}

// Watchdog is the stall detector / flight recorder trigger. It samples
// registered progress probes and, when one stops progressing with work
// pending, bumps hfetch_watchdog_trips_total{probe} and dumps a
// one-shot diagnostic bundle (goroutine profile, metrics snapshot,
// recent lifecycle traces, registered extra sections) to a bounded
// on-disk ring. One trip per stall episode: the probe must progress
// again before it can trip again.
//
// All methods are nil-safe — a nil *Watchdog is the disabled state and
// every call is a single-branch no-op.
type Watchdog struct {
	cfg   WatchdogConfig
	trips *CounterVec
	total atomic.Int64

	mu     sync.Mutex
	probes []*probeState
	dumps  []namedDump
	seq    int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

type namedDump struct {
	name string
	fn   func() string
}

// NewWatchdog builds a watchdog; it is inert until Start (or Poll).
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Stall <= 0 {
		cfg.Stall = DefaultWatchdogStall
	}
	if cfg.Interval <= 0 {
		cfg.Interval = cfg.Stall / 4
	}
	if cfg.Interval < 10*time.Millisecond {
		cfg.Interval = 10 * time.Millisecond
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = DefaultWatchdogBundles
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	w := &Watchdog{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg := cfg.Registry; reg != nil {
		w.trips = reg.CounterVec("hfetch_watchdog_trips_total",
			"stall-watchdog trips by probe", "probe")
		reg.CounterFunc("hfetch_watchdog_bundles_total",
			"diagnostic bundles written by the stall watchdog", w.total.Load)
	}
	return w
}

// AddProbe registers a progress probe. Nil-safe; probes with a nil
// Pending or Progress are ignored.
func (w *Watchdog) AddProbe(p WatchdogProbe) {
	if w == nil || p.Pending == nil || p.Progress == nil {
		return
	}
	w.mu.Lock()
	w.probes = append(w.probes, &probeState{probe: p})
	w.mu.Unlock()
}

// AddDump registers an extra named section for diagnostic bundles
// (e.g. the mover's queue state). Nil-safe.
func (w *Watchdog) AddDump(name string, fn func() string) {
	if w == nil || fn == nil {
		return
	}
	w.mu.Lock()
	w.dumps = append(w.dumps, namedDump{name: name, fn: fn})
	w.mu.Unlock()
}

// Start launches the background poll loop. Nil-safe and idempotent.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.startOnce.Do(func() {
		go func() {
			defer close(w.done)
			t := time.NewTicker(w.cfg.Interval)
			defer t.Stop()
			for {
				select {
				case <-w.stop:
					return
				case <-t.C:
					w.Poll()
				}
			}
		}()
	})
}

// Stop terminates the poll loop started by Start. Nil-safe.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.startOnce.Do(func() { close(w.done) }) // never started: nothing to wait for
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

// Trips returns the total bundle count written so far. Nil-safe.
func (w *Watchdog) Trips() int64 {
	if w == nil {
		return 0
	}
	return w.total.Load()
}

// Poll runs one detection pass over every probe. Start calls it on a
// ticker; tests with a fake clock call it directly. Nil-safe.
func (w *Watchdog) Poll() {
	if w == nil {
		return
	}
	now := w.cfg.Now()
	w.mu.Lock()
	probes := append([]*probeState(nil), w.probes...)
	w.mu.Unlock()
	for _, ps := range probes {
		// Sample outside the lock: probe closures reach into other
		// subsystems and must not nest under watchdog mu.
		pending := ps.probe.Pending()
		progress := ps.probe.Progress()

		var trip bool
		w.mu.Lock()
		switch {
		case !ps.seen:
			ps.seen = true
			ps.lastProgress = progress
			ps.lastChange = now
		case progress != ps.lastProgress || pending <= 0:
			// Forward progress (or nothing pending): reset the window and
			// re-arm the probe for the next episode.
			ps.lastProgress = progress
			ps.lastChange = now
			ps.tripped = false
		case now.Sub(ps.lastChange) >= w.cfg.Stall && !ps.tripped:
			ps.tripped = true
			trip = true
		}
		w.mu.Unlock()
		if trip {
			w.trip(ps.probe.Name, now, pending, progress)
		}
	}
}

// trip records one stall: counter bump plus a diagnostic bundle.
func (w *Watchdog) trip(probe string, now time.Time, pending, progress int64) {
	if w.trips != nil {
		w.trips.With(probe).Inc()
	}
	w.total.Add(1)
	if w.cfg.Dir == "" {
		return
	}
	w.mu.Lock()
	w.seq++
	seq := w.seq
	dumps := append([]namedDump(nil), w.dumps...)
	w.mu.Unlock()

	var b strings.Builder
	fmt.Fprintf(&b, "hfetch watchdog bundle\nprobe: %s\nat: %s\npending: %d\nprogress: %d\nstall_window: %s\n",
		probe, now.Format(time.RFC3339Nano), pending, progress, w.cfg.Stall)

	b.WriteString("\n== goroutines ==\n")
	if p := pprof.Lookup("goroutine"); p != nil {
		_ = p.WriteTo(&b, 1)
	}

	if reg := w.cfg.Registry; reg != nil {
		b.WriteString("\n== metrics ==\n")
		reg.WriteText(&b)
		if lc := reg.Lifecycle(); lc != nil {
			b.WriteString("\n== lifecycle traces (most recent first) ==\n")
			for _, rec := range lc.Completed() {
				fmt.Fprintf(&b, "trace %d %s#%d class=%s done=%t stages=", rec.ID, rec.File, rec.Seg, rec.Class, rec.Done)
				for i, e := range rec.Events {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(e.Stage)
				}
				b.WriteByte('\n')
			}
		}
	}
	for _, d := range dumps {
		fmt.Fprintf(&b, "\n== %s ==\n%s\n", d.name, d.fn())
	}

	if err := os.MkdirAll(w.cfg.Dir, 0o755); err != nil {
		return
	}
	name := filepath.Join(w.cfg.Dir, fmt.Sprintf("watchdog-%06d-%s.txt", seq, sanitizeProbe(probe)))
	if err := os.WriteFile(name, []byte(b.String()), 0o644); err != nil {
		return
	}
	w.pruneBundles()
}

// pruneBundles keeps the newest MaxBundles bundle files.
func (w *Watchdog) pruneBundles() {
	ents, err := os.ReadDir(w.cfg.Dir)
	if err != nil {
		return
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), "watchdog-") {
			names = append(names, e.Name())
		}
	}
	if len(names) <= w.cfg.MaxBundles {
		return
	}
	sort.Strings(names) // zero-padded seq: lexicographic = chronological
	for _, n := range names[:len(names)-w.cfg.MaxBundles] {
		_ = os.Remove(filepath.Join(w.cfg.Dir, n))
	}
}

func sanitizeProbe(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-' || r == '_':
			return r
		}
		return '_'
	}, s)
}
