package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives watchdog polls deterministically: tests advance it
// and call Poll directly, so no wall-clock sleeps are involved.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Now() time.Time          { return time.Unix(0, c.now.Load()) }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

func TestWatchdogTripsOnStall(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	var clk fakeClock
	var pending, progress atomic.Int64
	wd := NewWatchdog(WatchdogConfig{
		Stall:    time.Second,
		Dir:      dir,
		Registry: reg,
		Now:      clk.Now,
	})
	wd.AddProbe(WatchdogProbe{
		Name:     "mover",
		Pending:  pending.Load,
		Progress: progress.Load,
	})
	wd.AddDump("extra", func() string { return "queue=frozen" })

	// Stalled: work pending, progress frozen across the stall window.
	pending.Store(3)
	wd.Poll() // baseline sample
	clk.Advance(2 * time.Second)
	wd.Poll()
	if got := wd.Trips(); got != 1 {
		t.Fatalf("Trips() = %d after stall, want 1", got)
	}

	// One trip per episode: more stalled polls must not re-trip.
	clk.Advance(2 * time.Second)
	wd.Poll()
	if got := wd.Trips(); got != 1 {
		t.Fatalf("Trips() = %d on continued stall, want still 1", got)
	}

	// Progress re-arms the probe; a fresh stall trips again.
	progress.Add(1)
	wd.Poll()
	clk.Advance(2 * time.Second)
	wd.Poll()
	if got := wd.Trips(); got != 2 {
		t.Fatalf("Trips() = %d after re-arm + second stall, want 2", got)
	}

	// The trip counter is exported per probe.
	var tripSeries int64
	for _, m := range reg.Snapshot().Metrics {
		if m.Name == "hfetch_watchdog_trips_total" && strings.Contains(m.Labels, `probe="mover"`) {
			tripSeries = m.Value
		}
	}
	if tripSeries != 2 {
		t.Fatalf("hfetch_watchdog_trips_total{probe=mover} = %d, want 2", tripSeries)
	}

	// Bundles landed on disk and carry the diagnostic sections.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("bundle files = %d, want 2", len(ents))
	}
	raw, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"probe: mover", "== goroutines ==", "== metrics ==", "== extra ==", "queue=frozen"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("bundle %s missing %q", ents[0].Name(), want)
		}
	}
}

func TestWatchdogNoTripWhileHealthy(t *testing.T) {
	var clk fakeClock
	var pending, progress atomic.Int64
	wd := NewWatchdog(WatchdogConfig{Stall: time.Second, Now: clk.Now})
	wd.AddProbe(WatchdogProbe{Name: "p", Pending: pending.Load, Progress: progress.Load})

	// Idle (nothing pending) never trips, no matter how long.
	wd.Poll()
	clk.Advance(time.Hour)
	wd.Poll()
	if got := wd.Trips(); got != 0 {
		t.Fatalf("Trips() = %d while idle, want 0", got)
	}

	// Pending work with moving progress never trips either.
	pending.Store(5)
	for i := 0; i < 10; i++ {
		progress.Add(1)
		clk.Advance(2 * time.Second)
		wd.Poll()
	}
	if got := wd.Trips(); got != 0 {
		t.Fatalf("Trips() = %d while progressing, want 0", got)
	}
}

func TestWatchdogBundleRingPrunes(t *testing.T) {
	dir := t.TempDir()
	var clk fakeClock
	var pending, progress atomic.Int64
	pending.Store(1)
	wd := NewWatchdog(WatchdogConfig{Stall: time.Second, Dir: dir, MaxBundles: 2, Now: clk.Now})
	wd.AddProbe(WatchdogProbe{Name: "p", Pending: pending.Load, Progress: progress.Load})

	for i := 0; i < 4; i++ {
		wd.Poll() // baseline (or re-arm sample)
		clk.Advance(2 * time.Second)
		wd.Poll() // trip
		progress.Add(1)
		wd.Poll() // re-arm
	}
	if got := wd.Trips(); got != 4 {
		t.Fatalf("Trips() = %d, want 4", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("bundle files after prune = %d, want 2 (MaxBundles)", len(ents))
	}
	// Oldest pruned: surviving names carry the two highest sequence numbers.
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "watchdog-00000"+"1") || strings.HasPrefix(e.Name(), "watchdog-000002") {
			t.Fatalf("old bundle %s survived pruning", e.Name())
		}
	}
}

func TestWatchdogNilAndLifecycle(t *testing.T) {
	var wd *Watchdog
	wd.AddProbe(WatchdogProbe{Name: "p"})
	wd.AddDump("d", func() string { return "" })
	wd.Poll()
	wd.Start()
	wd.Stop()
	if got := wd.Trips(); got != 0 {
		t.Fatalf("nil Trips() = %d, want 0", got)
	}

	// Start/Stop on a real watchdog terminates cleanly, and Stop without
	// Start does not hang.
	live := NewWatchdog(WatchdogConfig{Stall: 50 * time.Millisecond})
	live.Start()
	live.Stop()
	live.Stop() // idempotent

	idle := NewWatchdog(WatchdogConfig{})
	idle.Stop() // never started
}
