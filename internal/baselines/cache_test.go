package baselines

import (
	"testing"
	"time"

	"hfetch/internal/core/seg"
)

func cid(i int64) seg.ID { return seg.ID{File: "f", Index: i} }

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRUCache(3, nil)
	for i := int64(0); i < 3; i++ {
		c.put(cid(i), []byte{byte(i)})
	}
	c.get(cid(0)) // refresh 0
	c.put(cid(3), []byte{3})
	if c.contains(cid(1)) {
		t.Fatal("LRU must evict the least recently used (1)")
	}
	if !c.contains(cid(0)) || !c.contains(cid(3)) {
		t.Fatal("refreshed and new entries must survive")
	}
}

func TestLRFUKeepsFrequentOverRecent(t *testing.T) {
	c := newCache(2, nil, EvictLRFU, 0.5)
	// Entry 0 accessed many times; entry 1 accessed once, more recently.
	c.put(cid(0), []byte{0})
	for i := 0; i < 10; i++ {
		c.get(cid(0))
	}
	c.put(cid(1), []byte{1})
	// Insert 2: LRFU evicts the low-CRF entry 1, not the frequent 0
	// (plain LRU would evict 0, the least *recently* used).
	c.put(cid(2), []byte{2})
	if !c.contains(cid(0)) {
		t.Fatal("LRFU must keep the frequent entry")
	}
	if c.contains(cid(1)) {
		t.Fatal("LRFU must evict the one-shot entry")
	}
}

func TestLRFUDecayForgetsStaleFrequency(t *testing.T) {
	c := newCache(2, nil, EvictLRFU, 50) // aggressive decay for the test
	c.put(cid(0), []byte{0})
	for i := 0; i < 10; i++ {
		c.get(cid(0))
	}
	time.Sleep(120 * time.Millisecond) // CRF of 0 decays hard
	c.put(cid(1), []byte{1})
	c.get(cid(1))
	c.put(cid(2), []byte{2})
	if c.contains(cid(0)) && !c.contains(cid(1)) {
		t.Fatal("decayed frequency must not outrank fresh accesses")
	}
}

func TestCacheRejectsOversizedPayload(t *testing.T) {
	c := newLRUCache(4, nil)
	c.put(cid(0), []byte{1, 2, 3, 4, 5})
	if c.contains(cid(0)) {
		t.Fatal("payload larger than the cache must be ignored")
	}
}

func TestBeginFetchDeduplicates(t *testing.T) {
	c := newLRUCache(16, nil)
	done, ok := c.beginFetch(cid(0))
	if !ok {
		t.Fatal("first beginFetch must succeed")
	}
	if _, ok := c.beginFetch(cid(0)); ok {
		t.Fatal("concurrent beginFetch must be rejected")
	}
	waited := make(chan bool, 1)
	go func() { waited <- c.waitFor(cid(0)) }()
	time.Sleep(5 * time.Millisecond)
	c.put(cid(0), []byte{1})
	done()
	if !<-waited {
		t.Fatal("waitFor must report an in-flight fetch")
	}
	if c.waitFor(cid(0)) {
		t.Fatal("waitFor with nothing in flight must return false")
	}
}

func TestDropFile(t *testing.T) {
	c := newLRUCache(64, nil)
	c.put(seg.ID{File: "a", Index: 0}, []byte{1})
	c.put(seg.ID{File: "a", Index: 1}, []byte{2})
	c.put(seg.ID{File: "b", Index: 0}, []byte{3})
	c.dropFile("a")
	used, n, _ := c.stats()
	if used != 1 || n != 1 {
		t.Fatalf("after dropFile: used=%d n=%d", used, n)
	}
	if !c.contains(seg.ID{File: "b", Index: 0}) {
		t.Fatal("other files must survive dropFile")
	}
}
