// Package baselines re-implements the read-acceleration systems HFetch
// is evaluated against in the paper:
//
//   - None — no prefetching; every read goes to the PFS (the paper's
//     native-storage baseline).
//   - Serial — a single-tier (RAM) prefetcher whose one worker fetches a
//     segment at a time (Fig 4a).
//   - Parallel — the same with N workers overlapping fetches (Fig 4a).
//   - InMemOptimal — per-process private in-memory caches with perfect
//     (own-stream) readahead (Fig 4b).
//   - InMemNaive — one shared in-memory cache all processes compete for,
//     with LRU eviction and uncoordinated readahead (Fig 4b).
//   - AppCentric — per-application pattern-detecting prefetchers sharing
//     one cache: the client-pull model whose pollution/redundancy HFetch
//     removes (Fig 5).
//   - Stacker — an online learn-as-you-go prefetcher modeling Subedi et
//     al. (SC'18): a Markov transition table over segments drives
//     prefetching, built up during the run (Fig 6).
//   - KnowAc — a history-based prefetcher modeling He et al.
//     (Cluster'12): a profiling pass records the exact access sequence,
//     then prefetching follows it perfectly; the profiling cost is
//     charged separately (Fig 6).
//
// All systems serve reads through the System/Handle interface the
// experiment harness drives, and use the same pfs/tiers/devsim
// substrates as HFetch so comparisons measure policy, not plumbing.
package baselines

import (
	"hfetch/internal/metrics"
)

// Handle is an open file within a System.
type Handle interface {
	ReadAt(p []byte, off int64) (int, error)
	Close() error
}

// System is a read-acceleration system under test.
type System interface {
	// Name identifies the system in result tables.
	Name() string
	// Open opens a file for a process belonging to the named
	// application (systems that don't distinguish applications ignore
	// app).
	Open(app, file string) (Handle, error)
	// Stats aggregates hit/miss statistics across all handles.
	Stats() *metrics.IOStats
	// Stop tears the system down.
	Stop()
}
