package baselines

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// InMemConfig configures the Figure 4(b) in-memory comparators.
type InMemConfig struct {
	// CacheBytes is the total RAM prefetching cache.
	CacheBytes int64
	// CacheDevice models the cache medium (nil = free RAM).
	CacheDevice *devsim.Device
	// SegmentSize is the prefetch grain (default 1 MiB).
	SegmentSize int64
	// Depth is the per-process readahead distance (default 4).
	Depth int
	// Processes is the expected process count; InMemOptimal divides
	// CacheBytes into that many private partitions.
	Processes int
}

// InMemOptimal models the paper's "in-memory optimal" prefetcher: each
// process owns a private slice of the cache and prefetches its own
// stream into it, so processes never evict each other's data. It is
// optimal for the single-tier, client-pull design point.
type InMemOptimal struct {
	fs    *pfs.FS
	segr  *seg.Segmenter
	cfg   InMemConfig
	stats *metrics.IOStats

	mu      sync.Mutex
	handles int
	wg      sync.WaitGroup
}

// NewInMemOptimal builds the system.
func NewInMemOptimal(fs *pfs.FS, cfg InMemConfig) *InMemOptimal {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = seg.DefaultSize
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.Processes <= 0 {
		cfg.Processes = 1
	}
	return &InMemOptimal{
		fs:    fs,
		segr:  seg.NewSegmenter(cfg.SegmentSize),
		cfg:   cfg,
		stats: metrics.NewIOStats(),
	}
}

// Name implements System.
func (s *InMemOptimal) Name() string { return "inmem-optimal" }

// Stats implements System.
func (s *InMemOptimal) Stats() *metrics.IOStats { return s.stats }

// Stop implements System.
func (s *InMemOptimal) Stop() { s.wg.Wait() }

// Open implements System. Every handle is one process with a private
// cache partition and a private prefetch worker.
func (s *InMemOptimal) Open(app, file string) (Handle, error) {
	fi, err := s.fs.Stat(file)
	if err != nil {
		return nil, fmt.Errorf("inmem-optimal: %w", err)
	}
	quota := s.cfg.CacheBytes / int64(s.cfg.Processes)
	// An optimal per-process prefetcher never reads further ahead than
	// its own cache can hold: that would evict its not-yet-consumed
	// prefetches.
	depth := s.cfg.Depth
	if max := int(quota/s.segr.Size()) - 1; depth > max {
		depth = max
	}
	if depth < 1 {
		depth = 1 // pipelining floor: always one segment in flight
	}
	h := &optimalHandle{
		sys:   s,
		file:  file,
		size:  fi.Size,
		depth: depth,
		cache: newLRUCache(quota, s.cfg.CacheDevice),
		queue: make(chan fetchReq, 256),
	}
	s.wg.Add(1)
	go h.worker()
	return h, nil
}

type optimalHandle struct {
	sys   *InMemOptimal
	file  string
	size  int64
	depth int
	cache *lruCache
	queue chan fetchReq
	once  sync.Once

	// consumed is the highest segment index the process has read in its
	// current sweep; queued prefetches at or below it are stale and are
	// skipped instead of wasting PFS bandwidth on duplicate fetches.
	consumed atomic.Int64
}

func (h *optimalHandle) worker() {
	defer h.sys.wg.Done()
	for req := range h.queue {
		if req.id.Index <= h.consumed.Load() || h.cache.contains(req.id) {
			continue
		}
		done, ok := h.cache.beginFetch(req.id)
		if !ok {
			continue
		}
		buf := make([]byte, req.size)
		n, _, err := h.sys.fs.ReadAt(req.id.File, req.id.Index*h.sys.segr.Size(), buf)
		if err == nil && n > 0 {
			h.cache.put(req.id, buf[:n])
		}
		done()
	}
}

func (h *optimalHandle) ReadAt(p []byte, off int64) (int, error) {
	return readViaCache(readCtx{
		file: h.file, size: h.size, segr: h.sys.segr,
		cache: h.cache, fs: h.sys.fs, stats: h.sys.stats,
		onAccess: func(idx int64) {
			// A lower index restarts the sweep (next time step).
			h.consumed.Store(idx)
			count := h.sys.segr.Count(h.size)
			for i := int64(1); i <= int64(h.depth); i++ {
				next := idx + i
				if next >= count {
					break
				}
				id := seg.ID{File: h.file, Index: next}
				if h.cache.contains(id) {
					continue
				}
				select {
				case h.queue <- fetchReq{id: id, size: h.sys.segr.RangeOf(id, h.size).Len}:
				default:
				}
			}
		},
	}, p, off)
}

func (h *optimalHandle) Close() error {
	h.once.Do(func() { close(h.queue) })
	return nil
}

// InMemNaive models the paper's "in-memory naive" prefetcher: one shared
// LRU cache that every process's readahead competes for. At scale, the
// prefetch workers and the application threads also compete for the PFS,
// producing the interference that makes it slower than no prefetching.
type InMemNaive struct {
	pf *Prefetcher
}

// NewInMemNaive builds the system (a shared readahead prefetcher with as
// many workers as processes, uncoordinated).
func NewInMemNaive(fs *pfs.FS, cfg InMemConfig) *InMemNaive {
	workers := cfg.Processes
	if workers <= 0 {
		workers = 4
	}
	if workers > 64 {
		workers = 64
	}
	return &InMemNaive{pf: NewPrefetcher(fs, PrefetcherConfig{
		CacheBytes:  cfg.CacheBytes,
		CacheDevice: cfg.CacheDevice,
		SegmentSize: cfg.SegmentSize,
		Depth:       cfg.Depth,
		Workers:     workers,
		QueueLen:    4096,
	})}
}

// Name implements System.
func (s *InMemNaive) Name() string { return "inmem-naive" }

// Stats implements System.
func (s *InMemNaive) Stats() *metrics.IOStats { return s.pf.Stats() }

// Stop implements System.
func (s *InMemNaive) Stop() { s.pf.Stop() }

// Cache exposes cache statistics (used, entries, evictions).
func (s *InMemNaive) Cache() (int64, int, int64) { return s.pf.Cache() }

// Open implements System.
func (s *InMemNaive) Open(app, file string) (Handle, error) { return s.pf.Open(app, file) }
