package baselines

import (
	"fmt"
	"sync"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// AppCentricConfig configures the application-centric comparator.
type AppCentricConfig struct {
	// CacheBytes is the total prefetching cache capacity, divided into
	// Apps private partitions.
	CacheBytes int64
	// CacheDevice models the cache medium.
	CacheDevice *devsim.Device
	// SegmentSize is the prefetch grain (default 1 MiB).
	SegmentSize int64
	// Depth is the prediction distance (default 4).
	Depth int
	// Workers is the fetch thread pool size (default 4).
	Workers int
	// Apps is the expected number of applications; the cache is split
	// into that many private partitions (default 4).
	Apps int
}

// AppCentric models the client-pull, application-centric prefetcher of
// Figure 5: every application runs its own access-pattern detector
// (sequential and strided detection, the standard client-side design)
// and prefetches into its own private slice of the cache. Because the
// applications do not coordinate, the same shared data is fetched and
// cached once per application (cache redundancy), each partition is too
// small for its app's working set (unwanted evictions), and wrong
// per-app predictions waste origin bandwidth (pollution).
type AppCentric struct {
	fs    *pfs.FS
	segr  *seg.Segmenter
	cfg   AppCentricConfig
	stats *metrics.IOStats

	queue chan appFetchReq
	wg    sync.WaitGroup
	once  sync.Once

	mu        sync.Mutex
	caches    map[string]*lruCache
	detectors map[string]*strideDetector // key: app|file
	redundant int64                      // fetches already cached by another app
}

type appFetchReq struct {
	app string
	fetchReq
}

type strideDetector struct {
	lastIdx    int64
	delta      int64
	confidence int
	seen       bool
}

// observe feeds one access and returns the predicted next indices.
func (d *strideDetector) observe(idx int64, depth int, count int64) []int64 {
	if d.seen {
		delta := idx - d.lastIdx
		if delta == d.delta {
			d.confidence++
		} else {
			d.delta = delta
			d.confidence = 1
		}
	}
	d.lastIdx = idx
	d.seen = true
	if d.confidence < 1 || d.delta == 0 {
		return nil
	}
	var out []int64
	for i := int64(1); i <= int64(depth); i++ {
		next := idx + i*d.delta
		if next < 0 || next >= count {
			break
		}
		out = append(out, next)
	}
	return out
}

// NewAppCentric builds and starts the system.
func NewAppCentric(fs *pfs.FS, cfg AppCentricConfig) *AppCentric {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = seg.DefaultSize
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Apps <= 0 {
		cfg.Apps = 4
	}
	s := &AppCentric{
		fs:        fs,
		segr:      seg.NewSegmenter(cfg.SegmentSize),
		cfg:       cfg,
		stats:     metrics.NewIOStats(),
		queue:     make(chan appFetchReq, 4096),
		caches:    make(map[string]*lruCache),
		detectors: make(map[string]*strideDetector),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Name implements System.
func (s *AppCentric) Name() string { return "app-centric" }

// Stats implements System.
func (s *AppCentric) Stats() *metrics.IOStats { return s.stats }

// Stop implements System.
func (s *AppCentric) Stop() {
	s.once.Do(func() { close(s.queue) })
	s.wg.Wait()
}

// cacheFor returns (creating if needed) app's private partition.
func (s *AppCentric) cacheFor(app string) *lruCache {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.caches[app]
	if c == nil {
		c = newLRUCache(s.cfg.CacheBytes/int64(s.cfg.Apps), s.cfg.CacheDevice)
		s.caches[app] = c
	}
	return c
}

// Evictions sums evictions across all partitions.
func (s *AppCentric) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, c := range s.caches {
		_, _, ev := c.stats()
		t += ev
	}
	return t
}

// Redundant returns the number of prefetches of segments some other
// application had already cached (cross-application redundancy).
func (s *AppCentric) Redundant() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.redundant
}

func (s *AppCentric) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		cache := s.cacheFor(req.app)
		if cache.contains(req.id) {
			continue
		}
		done, ok := cache.beginFetch(req.id)
		if !ok {
			continue
		}
		buf := make([]byte, req.size)
		n, _, err := s.fs.ReadAt(req.id.File, req.id.Index*s.segr.Size(), buf)
		if err == nil && n > 0 {
			cache.put(req.id, buf[:n])
			// Cross-application redundancy accounting: another app also
			// paid for this segment, but the app-centric design cannot
			// share copies across partitions.
			s.mu.Lock()
			for app, c := range s.caches {
				if app != req.app && c.contains(req.id) {
					s.redundant++
					break
				}
			}
			s.mu.Unlock()
		}
		done()
	}
}

func (s *AppCentric) predict(app, file string, idx, size int64) {
	key := app + "|" + file
	s.mu.Lock()
	d := s.detectors[key]
	if d == nil {
		d = &strideDetector{}
		s.detectors[key] = d
	}
	next := d.observe(idx, s.cfg.Depth, s.segr.Count(size))
	s.mu.Unlock()
	for _, n := range next {
		id := seg.ID{File: file, Index: n}
		select {
		case s.queue <- appFetchReq{app: app, fetchReq: fetchReq{id: id, size: s.segr.RangeOf(id, size).Len}}:
		default:
		}
	}
}

// Open implements System.
func (s *AppCentric) Open(app, file string) (Handle, error) {
	fi, err := s.fs.Stat(file)
	if err != nil {
		return nil, fmt.Errorf("app-centric: %w", err)
	}
	return &appCentricHandle{sys: s, app: app, file: file, size: fi.Size}, nil
}

type appCentricHandle struct {
	sys  *AppCentric
	app  string
	file string
	size int64
}

func (h *appCentricHandle) ReadAt(p []byte, off int64) (int, error) {
	return readViaCache(readCtx{
		file: h.file, size: h.size, segr: h.sys.segr,
		cache: h.sys.cacheFor(h.app), fs: h.sys.fs, stats: h.sys.stats,
		onAccess: func(idx int64) { h.sys.predict(h.app, h.file, idx, h.size) },
	}, p, off)
}

func (h *appCentricHandle) Close() error { return nil }
