package baselines

import (
	"fmt"
	"sync"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// KnowAcConfig configures the history-based comparator.
type KnowAcConfig struct {
	// CacheBytes is the prefetching cache capacity.
	CacheBytes int64
	// CacheDevice models the cache medium.
	CacheDevice *devsim.Device
	// SegmentSize is the prefetch grain (default 1 MiB).
	SegmentSize int64
	// Workers is the fetch thread pool size (default 4).
	Workers int
	// Window is how far ahead of consumption the prefetcher may run, in
	// recorded accesses (default 64).
	Window int
}

// KnowAc models KnowAc (He, Sun, Thakur — Cluster'12): I/O prefetching
// via accumulated knowledge. A profiling pass records the exact global
// access sequence; the production run replays that knowledge, streaming
// the recorded segments into the cache just ahead of consumption. Its
// read time is the best of all comparators — the prefetcher knows
// exactly what comes next — but the profiling pass is real end-to-end
// cost the paper charges it for ("profile-cost plus run time").
type KnowAc struct {
	fs    *pfs.FS
	segr  *seg.Segmenter
	cfg   KnowAcConfig
	cache *lruCache
	stats *metrics.IOStats

	mu        sync.Mutex
	profiling bool
	history   []fetchReq
	pos       map[seg.ID][]int // id -> positions in history
	consumed  int              // highest matched history position

	stopCh  chan struct{}
	wakeCh  chan struct{}
	wg      sync.WaitGroup
	started bool
	once    sync.Once
}

// NewKnowAc builds the system; call StartProfile/FinishProfile around a
// profiling pass before the measured run.
func NewKnowAc(fs *pfs.FS, cfg KnowAcConfig) *KnowAc {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = seg.DefaultSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	return &KnowAc{
		fs:     fs,
		segr:   seg.NewSegmenter(cfg.SegmentSize),
		cfg:    cfg,
		cache:  newLRUCache(cfg.CacheBytes, cfg.CacheDevice),
		stats:  metrics.NewIOStats(),
		pos:    make(map[seg.ID][]int),
		stopCh: make(chan struct{}),
		wakeCh: make(chan struct{}, 1),
	}
}

// Name implements System.
func (k *KnowAc) Name() string { return "knowac" }

// Stats implements System.
func (k *KnowAc) Stats() *metrics.IOStats { return k.stats }

// Stop implements System.
func (k *KnowAc) Stop() {
	k.once.Do(func() { close(k.stopCh) })
	k.wg.Wait()
}

// StartProfile switches the system into recording mode: reads are served
// from the PFS (no prefetching) and the access sequence is accumulated.
func (k *KnowAc) StartProfile() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.profiling = true
	k.history = nil
}

// FinishProfile ends recording, indexes the history, resets statistics,
// and launches the replay prefetcher for the measured run.
func (k *KnowAc) FinishProfile() {
	k.mu.Lock()
	k.profiling = false
	k.pos = make(map[seg.ID][]int, len(k.history))
	for i, req := range k.history {
		k.pos[req.id] = append(k.pos[req.id], i)
	}
	k.consumed = -1
	started := k.started
	k.started = true
	k.mu.Unlock()
	k.stats = metrics.NewIOStats()
	if !started {
		for w := 0; w < k.cfg.Workers; w++ {
			k.wg.Add(1)
			go k.replayWorker(w)
		}
	}
	k.wake()
}

// HistoryLen returns the recorded access count.
func (k *KnowAc) HistoryLen() int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return len(k.history)
}

func (k *KnowAc) wake() {
	select {
	case k.wakeCh <- struct{}{}:
	default:
	}
}

// replayWorker streams history entries into the cache, staying within
// Window of the consumption cursor. Workers stripe the history by index.
func (k *KnowAc) replayWorker(worker int) {
	defer k.wg.Done()
	next := worker
	for {
		k.mu.Lock()
		limit := k.consumed + k.cfg.Window
		hlen := len(k.history)
		var req fetchReq
		ready := next < hlen && next <= limit
		if ready {
			req = k.history[next]
		}
		k.mu.Unlock()
		if !ready {
			select {
			case <-k.stopCh:
				return
			case <-k.wakeCh:
				k.wake() // cascade to sibling workers
				continue
			}
		}
		next += k.cfg.Workers
		if k.cache.contains(req.id) {
			continue
		}
		done, ok := k.cache.beginFetch(req.id)
		if !ok {
			continue
		}
		buf := make([]byte, req.size)
		n, _, err := k.fs.ReadAt(req.id.File, req.id.Index*k.segr.Size(), buf)
		if err == nil && n > 0 {
			k.cache.put(req.id, buf[:n])
		}
		done()
	}
}

// onAccess records (profiling) or advances the consumption cursor
// (replay).
func (k *KnowAc) onAccess(file string, idx, size int64) {
	id := seg.ID{File: file, Index: idx}
	k.mu.Lock()
	if k.profiling {
		k.history = append(k.history, fetchReq{id: id, size: k.segr.RangeOf(id, size).Len})
		k.mu.Unlock()
		return
	}
	// Advance the cursor to the first unconsumed occurrence of id.
	for _, p := range k.pos[id] {
		if p > k.consumed {
			k.consumed = p
			break
		}
	}
	k.mu.Unlock()
	k.wake()
}

// Open implements System.
func (k *KnowAc) Open(app, file string) (Handle, error) {
	fi, err := k.fs.Stat(file)
	if err != nil {
		return nil, fmt.Errorf("knowac: %w", err)
	}
	return &knowacHandle{sys: k, file: file, size: fi.Size}, nil
}

type knowacHandle struct {
	sys  *KnowAc
	file string
	size int64
}

func (h *knowacHandle) ReadAt(p []byte, off int64) (int, error) {
	return readViaCache(readCtx{
		file: h.file, size: h.size, segr: h.sys.segr,
		cache: h.sys.cache, fs: h.sys.fs, stats: h.sys.stats,
		onAccess: func(idx int64) { h.sys.onAccess(h.file, idx, h.size) },
	}, p, off)
}

func (h *knowacHandle) Close() error { return nil }
