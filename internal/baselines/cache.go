package baselines

import (
	"container/list"
	"math"
	"sync"
	"time"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
)

// EvictionPolicy selects how the prefetching cache chooses victims.
type EvictionPolicy int

// Cache eviction policies. LRFU (Lee et al. [51], the paper's stated
// inspiration for segment scoring) subsumes LRU and LFU through a
// combined recency-frequency value CRF(t) = Σ (1/2)^{λ(t-t_i)}: λ→1
// behaves like LRU, λ→0 like LFU.
const (
	EvictLRU EvictionPolicy = iota
	EvictLRFU
)

// lruCache is the in-memory prefetching cache the single-tier baselines
// share: capacity-bounded segment payloads with LRU eviction, charged
// against a device model. Unlike HFetch's score-driven exclusive tiers,
// entries are evicted purely by recency — which is exactly what produces
// the pollution and unwanted evictions the paper attributes to
// client-pull prefetchers.
type lruCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	entries  map[seg.ID]*list.Element
	order    *list.List // front = most recent
	dev      *devsim.Device
	inflight map[seg.ID]chan struct{}

	policy EvictionPolicy
	lambda float64 // LRFU decay per second

	evictions int64
}

type lruEntry struct {
	id      seg.ID
	payload []byte
	crf     float64   // LRFU combined recency-frequency
	touched time.Time // last CRF fold time
}

func newLRUCache(capacity int64, dev *devsim.Device) *lruCache {
	return newCache(capacity, dev, EvictLRU, 0)
}

// newCache creates a cache with an explicit eviction policy. lambda is
// the LRFU decay rate per second (default 0.5 when zero).
func newCache(capacity int64, dev *devsim.Device, policy EvictionPolicy, lambda float64) *lruCache {
	if lambda <= 0 {
		lambda = 0.5
	}
	return &lruCache{
		capacity: capacity,
		entries:  make(map[seg.ID]*list.Element),
		order:    list.New(),
		dev:      dev,
		inflight: make(map[seg.ID]chan struct{}),
		policy:   policy,
		lambda:   lambda,
	}
}

// touch folds an entry's CRF forward to now and adds one access.
func (c *lruCache) touch(e *lruEntry) {
	now := time.Now()
	if !e.touched.IsZero() {
		dt := now.Sub(e.touched).Seconds()
		e.crf *= math.Exp2(-c.lambda * dt)
	}
	e.crf++
	e.touched = now
}

// evictVictim removes one entry according to the policy and returns its
// size; 0 when the cache is empty.
func (c *lruCache) evictVictim() int64 {
	if c.policy == EvictLRU {
		back := c.order.Back()
		if back == nil {
			return 0
		}
		ent := back.Value.(*lruEntry)
		c.order.Remove(back)
		delete(c.entries, ent.id)
		c.evictions++
		return int64(len(ent.payload))
	}
	// LRFU: evict the minimum-CRF entry (folded to a common instant).
	now := time.Now()
	var victim *list.Element
	best := math.Inf(1)
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		crf := e.crf
		if !e.touched.IsZero() {
			crf *= math.Exp2(-c.lambda * now.Sub(e.touched).Seconds())
		}
		if crf < best {
			best, victim = crf, el
		}
	}
	if victim == nil {
		return 0
	}
	ent := victim.Value.(*lruEntry)
	c.order.Remove(victim)
	delete(c.entries, ent.id)
	c.evictions++
	return int64(len(ent.payload))
}

// beginFetch registers an in-flight fetch for id. ok is false when the
// segment is already being fetched (the caller should skip); otherwise
// the caller must invoke done() once the payload is in the cache (or the
// fetch failed).
func (c *lruCache) beginFetch(id seg.ID) (done func(), ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.inflight[id]; dup {
		return nil, false
	}
	ch := make(chan struct{})
	c.inflight[id] = ch
	return func() {
		c.mu.Lock()
		delete(c.inflight, id)
		c.mu.Unlock()
		close(ch)
	}, true
}

// waitFor blocks until an in-flight fetch of id completes; it reports
// false immediately when no fetch is in flight. Readers use it to join a
// prefetch that is about to land instead of issuing a duplicate origin
// read.
func (c *lruCache) waitFor(id seg.ID) bool {
	c.mu.Lock()
	ch, ok := c.inflight[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	<-ch
	return true
}

// get returns the payload and refreshes recency.
func (c *lruCache) get(id seg.ID) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[id]
	var payload []byte
	if ok {
		c.order.MoveToFront(el)
		ent := el.Value.(*lruEntry)
		c.touch(ent)
		payload = ent.payload
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	if c.dev != nil {
		c.dev.Access(int64(len(payload)))
	}
	return payload, true
}

// contains reports residency without a device charge or recency bump.
func (c *lruCache) contains(id seg.ID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[id]
	return ok
}

// put inserts a payload, evicting LRU entries to fit. Payloads larger
// than the whole cache are ignored.
func (c *lruCache) put(id seg.ID, payload []byte) {
	size := int64(len(payload))
	if size > c.capacity {
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[id]; ok {
		old := el.Value.(*lruEntry)
		c.used += size - int64(len(old.payload))
		old.payload = payload
		c.touch(old)
		c.order.MoveToFront(el)
	} else {
		ent := &lruEntry{id: id, payload: payload}
		c.touch(ent)
		c.entries[id] = c.order.PushFront(ent)
		c.used += size
	}
	for c.used > c.capacity {
		freed := c.evictVictim()
		if freed == 0 {
			break
		}
		c.used -= freed
	}
	c.mu.Unlock()
	if c.dev != nil {
		c.dev.Access(size)
	}
}

// dropFile removes every segment of the named file.
func (c *lruCache) dropFile(file string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*lruEntry)
		if ent.id.File == file {
			c.order.Remove(el)
			delete(c.entries, ent.id)
			c.used -= int64(len(ent.payload))
		}
		el = next
	}
}

// residentOf counts resident segments of the named file.
func (c *lruCache) residentOf(file string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; el = el.Next() {
		if el.Value.(*lruEntry).id.File == file {
			n++
		}
	}
	return n
}

// stats returns (bytes used, entry count, evictions so far).
func (c *lruCache) stats() (int64, int, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used, len(c.entries), c.evictions
}
