package baselines

import (
	"fmt"
	"sync"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// StackerConfig configures the online learned comparator.
type StackerConfig struct {
	// CacheBytes is the staging (RAM) cache capacity.
	CacheBytes int64
	// CacheDevice models the cache medium.
	CacheDevice *devsim.Device
	// SegmentSize is the prefetch grain (default 1 MiB).
	SegmentSize int64
	// Depth is how many predicted steps to prefetch (default 2).
	Depth int
	// Workers is the fetch thread pool size (default 4).
	Workers int
	// MinCount is the observation count a transition needs before it is
	// trusted (the model-convergence warm-up; default 2).
	MinCount int
}

// Stacker models Stacker (Subedi et al., SC'18): an autonomic,
// learn-as-you-go data movement engine. It builds a first-order Markov
// model over segment transitions while the workload runs and prefetches
// the most probable successors of each accessed segment. It needs no
// offline profiling, but pays a warm-up: until transitions have been
// seen enough times, nothing is prefetched — the paper's "lower hit
// ratio due to some cache conflicts and unwanted data evictions".
type Stacker struct {
	fs    *pfs.FS
	segr  *seg.Segmenter
	cfg   StackerConfig
	cache *lruCache
	stats *metrics.IOStats

	queue chan fetchReq
	wg    sync.WaitGroup
	once  sync.Once

	mu    sync.Mutex
	trans map[seg.ID]map[int64]int // observed successor counts
	last  map[string]int64         // file -> last accessed index
}

// NewStacker builds and starts the system.
func NewStacker(fs *pfs.FS, cfg StackerConfig) *Stacker {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = seg.DefaultSize
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.MinCount <= 0 {
		cfg.MinCount = 2
	}
	s := &Stacker{
		fs:    fs,
		segr:  seg.NewSegmenter(cfg.SegmentSize),
		cfg:   cfg,
		cache: newLRUCache(cfg.CacheBytes, cfg.CacheDevice),
		stats: metrics.NewIOStats(),
		queue: make(chan fetchReq, 4096),
		trans: make(map[seg.ID]map[int64]int),
		last:  make(map[string]int64),
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Name implements System.
func (s *Stacker) Name() string { return "stacker" }

// Stats implements System.
func (s *Stacker) Stats() *metrics.IOStats { return s.stats }

// Stop implements System.
func (s *Stacker) Stop() {
	s.once.Do(func() { close(s.queue) })
	s.wg.Wait()
}

func (s *Stacker) worker() {
	defer s.wg.Done()
	for req := range s.queue {
		if s.cache.contains(req.id) {
			continue
		}
		done, ok := s.cache.beginFetch(req.id)
		if !ok {
			continue
		}
		buf := make([]byte, req.size)
		n, _, err := s.fs.ReadAt(req.id.File, req.id.Index*s.segr.Size(), buf)
		if err == nil && n > 0 {
			s.cache.put(req.id, buf[:n])
		}
		done()
	}
}

// learnAndPredict records the transition into idx and returns the
// learned successor chain starting from idx.
func (s *Stacker) learnAndPredict(file string, idx, size int64) []int64 {
	s.mu.Lock()
	if prev, ok := s.last[file]; ok && prev != idx {
		pid := seg.ID{File: file, Index: prev}
		m := s.trans[pid]
		if m == nil {
			m = make(map[int64]int)
			s.trans[pid] = m
		}
		m[idx]++
	}
	s.last[file] = idx

	var preds []int64
	cur := idx
	for step := 0; step < s.cfg.Depth; step++ {
		m := s.trans[seg.ID{File: file, Index: cur}]
		best, bestN := int64(-1), 0
		for next, n := range m {
			if n > bestN {
				best, bestN = next, n
			}
		}
		if best < 0 || bestN < s.cfg.MinCount {
			break
		}
		preds = append(preds, best)
		cur = best
	}
	s.mu.Unlock()
	return preds
}

// ModelSize returns the number of segments with learned transitions.
func (s *Stacker) ModelSize() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.trans)
}

// Open implements System.
func (s *Stacker) Open(app, file string) (Handle, error) {
	fi, err := s.fs.Stat(file)
	if err != nil {
		return nil, fmt.Errorf("stacker: %w", err)
	}
	return &stackerHandle{sys: s, file: file, size: fi.Size}, nil
}

type stackerHandle struct {
	sys  *Stacker
	file string
	size int64
}

func (h *stackerHandle) ReadAt(p []byte, off int64) (int, error) {
	return readViaCache(readCtx{
		file: h.file, size: h.size, segr: h.sys.segr,
		cache: h.sys.cache, fs: h.sys.fs, stats: h.sys.stats,
		onAccess: func(idx int64) {
			for _, next := range h.sys.learnAndPredict(h.file, idx, h.size) {
				id := seg.ID{File: h.file, Index: next}
				if h.sys.cache.contains(id) {
					continue
				}
				select {
				case h.sys.queue <- fetchReq{id: id, size: h.sys.segr.RangeOf(id, h.size).Len}:
				default:
				}
			}
		},
	}, p, off)
}

func (h *stackerHandle) Close() error { return nil }
