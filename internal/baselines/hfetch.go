package baselines

import (
	"hfetch/internal/core/agent"
	"hfetch/internal/core/server"
	"hfetch/internal/metrics"
)

// HFetch adapts an HFetch server node to the System interface so the
// experiment harness can drive it alongside the comparators.
type HFetch struct {
	srv   *server.Server
	stats *metrics.IOStats
	owned bool
}

// NewHFetch wraps a started server. When owned is true, Stop tears the
// server down too.
func NewHFetch(srv *server.Server, owned bool) *HFetch {
	return &HFetch{srv: srv, stats: metrics.NewIOStats(), owned: owned}
}

// Name implements System.
func (h *HFetch) Name() string { return "hfetch" }

// Stats implements System.
func (h *HFetch) Stats() *metrics.IOStats { return h.stats }

// Stop implements System.
func (h *HFetch) Stop() {
	if h.owned {
		h.srv.Stop()
	}
}

// Server exposes the wrapped server.
func (h *HFetch) Server() *server.Server { return h.srv }

// Open implements System.
func (h *HFetch) Open(app, file string) (Handle, error) {
	a := agent.New(h.srv, h.srv.FS(), h.stats)
	return a.Open(file)
}
