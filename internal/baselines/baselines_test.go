package baselines

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"hfetch/internal/core/placement"
	"hfetch/internal/core/server"
	"hfetch/internal/pfs"
	"hfetch/internal/tiers"
)

const testSeg = 1024

func testFS(t *testing.T, size int64) *pfs.FS {
	t.Helper()
	fs := pfs.New(nil)
	fs.Create("f", size)
	return fs
}

// verifyIntegrity reads the whole file through the handle and compares
// with the PFS oracle.
func verifyIntegrity(t *testing.T, fs *pfs.FS, h Handle, file string, size int64) {
	t.Helper()
	want := make([]byte, size)
	fs.ReadAt(file, 0, want)
	got := make([]byte, size)
	for off := int64(0); off < size; off += testSeg {
		end := off + testSeg
		if end > size {
			end = size
		}
		if _, err := h.ReadAt(got[off:end], off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
	}
	if !bytes.Equal(got, want) {
		t.Fatal("handle served corrupted data")
	}
}

// drainPrefetch waits briefly so async prefetch workers settle.
func drainPrefetch() { time.Sleep(20 * time.Millisecond) }

func TestNoneAllMisses(t *testing.T) {
	fs := testFS(t, 16*testSeg)
	sys := NewNone(fs)
	defer sys.Stop()
	h, err := sys.Open("a", "f")
	if err != nil {
		t.Fatal(err)
	}
	verifyIntegrity(t, fs, h, "f", 16*testSeg)
	if sys.Stats().Hits() != 0 || sys.Stats().Misses() == 0 {
		t.Fatalf("none must only miss: %s", sys.Stats())
	}
	if _, err := sys.Open("a", "ghost"); err == nil {
		t.Fatal("missing file must fail")
	}
	h.Close()
}

func TestSerialPrefetcherHitsOnSequential(t *testing.T) {
	fs := testFS(t, 64*testSeg)
	sys := NewPrefetcher(fs, PrefetcherConfig{
		CacheBytes: 64 * testSeg, SegmentSize: testSeg, Depth: 8, Workers: 1,
	})
	defer sys.Stop()
	if sys.Name() != "serial" {
		t.Fatalf("name = %q", sys.Name())
	}
	h, _ := sys.Open("a", "f")
	buf := make([]byte, testSeg)
	for off := int64(0); off < 64*testSeg; off += testSeg {
		h.ReadAt(buf, off)
		drainPrefetch()
	}
	if sys.Stats().HitRatio() < 0.5 {
		t.Fatalf("sequential readahead hit ratio = %.2f, want > 0.5", sys.Stats().HitRatio())
	}
	h.Close()
}

func TestParallelPrefetcherNameAndHits(t *testing.T) {
	fs := testFS(t, 64*testSeg)
	sys := NewPrefetcher(fs, PrefetcherConfig{
		CacheBytes: 64 * testSeg, SegmentSize: testSeg, Depth: 8, Workers: 4,
	})
	defer sys.Stop()
	if sys.Name() != "parallel" {
		t.Fatalf("name = %q", sys.Name())
	}
	h, _ := sys.Open("a", "f")
	verifyIntegrity(t, fs, h, "f", 64*testSeg)
	h.Close()
}

func TestPrefetcherCacheBounded(t *testing.T) {
	fs := testFS(t, 256*testSeg)
	sys := NewPrefetcher(fs, PrefetcherConfig{
		CacheBytes: 8 * testSeg, SegmentSize: testSeg, Depth: 8, Workers: 2,
	})
	defer sys.Stop()
	h, _ := sys.Open("a", "f")
	buf := make([]byte, testSeg)
	for off := int64(0); off < 256*testSeg; off += testSeg {
		h.ReadAt(buf, off)
	}
	drainPrefetch()
	used, _, _ := sys.Cache()
	if used > 8*testSeg {
		t.Fatalf("cache over capacity: %d", used)
	}
	h.Close()
}

func TestInMemOptimalPrivatePartitions(t *testing.T) {
	fs := testFS(t, 64*testSeg)
	sys := NewInMemOptimal(fs, InMemConfig{
		CacheBytes: 64 * testSeg, SegmentSize: testSeg, Depth: 8, Processes: 2,
	})
	defer sys.Stop()
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := sys.Open("a", "f")
			if err != nil {
				t.Error(err)
				return
			}
			defer h.Close()
			buf := make([]byte, testSeg)
			for off := int64(0); off < 64*testSeg; off += testSeg {
				h.ReadAt(buf, off)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if sys.Stats().HitRatio() < 0.5 {
		t.Fatalf("optimal hit ratio = %.2f, want > 0.5", sys.Stats().HitRatio())
	}
}

func TestInMemNaiveIntegrityUnderCompetition(t *testing.T) {
	fs := testFS(t, 64*testSeg)
	sys := NewInMemNaive(fs, InMemConfig{
		CacheBytes: 8 * testSeg, SegmentSize: testSeg, Depth: 4, Processes: 4,
	})
	defer sys.Stop()
	want := make([]byte, 64*testSeg)
	fs.ReadAt("f", 0, want)
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, _ := sys.Open("a", "f")
			defer h.Close()
			got := make([]byte, testSeg)
			for off := int64(0); off < 64*testSeg; off += testSeg {
				h.ReadAt(got, off)
				if !bytes.Equal(got, want[off:off+testSeg]) {
					t.Error("corrupted data under competition")
					return
				}
			}
		}()
	}
	wg.Wait()
	_, _, evictions := sys.Cache()
	if evictions == 0 {
		t.Fatal("competing processes over a tiny cache must cause evictions")
	}
}

func TestAppCentricDetectsStride(t *testing.T) {
	fs := testFS(t, 128*testSeg)
	sys := NewAppCentric(fs, AppCentricConfig{
		CacheBytes: 128 * testSeg, SegmentSize: testSeg, Depth: 4, Workers: 2,
	})
	defer sys.Stop()
	h, _ := sys.Open("app1", "f")
	defer h.Close()
	buf := make([]byte, testSeg)
	// Strided access: every 4th segment.
	for idx := int64(0); idx < 128; idx += 4 {
		h.ReadAt(buf, idx*testSeg)
		drainPrefetch()
	}
	if sys.Stats().HitRatio() < 0.4 {
		t.Fatalf("strided hit ratio = %.2f, want > 0.4", sys.Stats().HitRatio())
	}
}

func TestAppCentricPollutionBetweenApps(t *testing.T) {
	fs := testFS(t, 512*testSeg)
	// Cache fits only a quarter of the file; two apps with different
	// patterns compete.
	sys := NewAppCentric(fs, AppCentricConfig{
		CacheBytes: 128 * testSeg, SegmentSize: testSeg, Depth: 8, Workers: 4, Apps: 2,
	})
	defer sys.Stop()
	var wg sync.WaitGroup
	for _, app := range []string{"app1", "app2"} {
		wg.Add(1)
		go func(app string) {
			defer wg.Done()
			if app == "app2" {
				time.Sleep(5 * time.Millisecond) // skew the stages
			}
			h, _ := sys.Open(app, "f")
			defer h.Close()
			buf := make([]byte, testSeg)
			for round := 0; round < 2; round++ {
				for idx := int64(0); idx < 512; idx++ {
					h.ReadAt(buf, idx*testSeg)
					time.Sleep(20 * time.Microsecond)
				}
			}
		}(app)
	}
	wg.Wait()
	if sys.Evictions() == 0 {
		t.Fatal("undersized partitions must evict under two competing apps")
	}
	if sys.Redundant() == 0 {
		t.Fatal("two apps reading the same data must fetch redundantly")
	}
}

func TestStackerLearnsRepetitivePattern(t *testing.T) {
	fs := testFS(t, 32*testSeg)
	sys := NewStacker(fs, StackerConfig{
		CacheBytes: 32 * testSeg, SegmentSize: testSeg, Depth: 2, Workers: 2, MinCount: 2,
	})
	defer sys.Stop()
	h, _ := sys.Open("a", "f")
	defer h.Close()
	buf := make([]byte, testSeg)
	// Repetitive pattern: the same sequence four times; the Markov model
	// converges after the first two rounds.
	for round := 0; round < 4; round++ {
		for idx := int64(0); idx < 32; idx++ {
			h.ReadAt(buf, idx*testSeg)
			drainPrefetch()
		}
	}
	if sys.ModelSize() == 0 {
		t.Fatal("stacker learned nothing")
	}
	if sys.Stats().HitRatio() < 0.3 {
		t.Fatalf("repetitive hit ratio = %.2f, want > 0.3", sys.Stats().HitRatio())
	}
}

func TestKnowAcProfileThenReplay(t *testing.T) {
	fs := testFS(t, 64*testSeg)
	sys := NewKnowAc(fs, KnowAcConfig{
		CacheBytes: 64 * testSeg, SegmentSize: testSeg, Workers: 2, Window: 16,
	})
	defer sys.Stop()

	// The reader is paced slightly (think time); with free devices an
	// unpaced reader outruns any prefetcher by construction.
	script := func() {
		h, _ := sys.Open("a", "f")
		defer h.Close()
		buf := make([]byte, testSeg)
		for idx := int64(0); idx < 64; idx++ {
			h.ReadAt(buf, idx*testSeg)
			time.Sleep(500 * time.Microsecond)
		}
	}

	sys.StartProfile()
	script()
	if sys.HistoryLen() != 64 {
		t.Fatalf("history = %d, want 64", sys.HistoryLen())
	}
	sys.FinishProfile()

	// Measured run: the replay prefetcher should produce a high hit
	// ratio (give it a brief head start, as the real system would).
	time.Sleep(50 * time.Millisecond)
	script()
	if sys.Stats().HitRatio() < 0.7 {
		t.Fatalf("replay hit ratio = %.2f, want > 0.7", sys.Stats().HitRatio())
	}
}

func TestHFetchAdapter(t *testing.T) {
	fs := testFS(t, 32*testSeg)
	ram := tiers.NewStore("ram", 1<<20, nil)
	hier := tiers.NewHierarchy(ram)
	stats, maps := server.NewLocalMaps("n0")
	srv, err := server.New(server.Config{
		SegmentSize: testSeg,
		Engine:      placement.Config{UpdateThreshold: placement.High},
	}, fs, hier, stats, maps)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	sys := NewHFetch(srv, true)
	defer sys.Stop()
	if sys.Name() != "hfetch" || sys.Server() != srv {
		t.Fatal("adapter accessors wrong")
	}
	h, err := sys.Open("a", "f")
	if err != nil {
		t.Fatal(err)
	}
	verifyIntegrity(t, fs, h, "f", 32*testSeg)
	srv.Flush()
	verifyIntegrity(t, fs, h, "f", 32*testSeg)
	if sys.Stats().Hits() == 0 {
		t.Fatalf("hfetch adapter second pass must hit: %s", sys.Stats())
	}
	h.Close()
}

func TestAllSystemsServeIdenticalBytes(t *testing.T) {
	const size = 32 * testSeg
	for _, mk := range []func(*pfs.FS) System{
		func(fs *pfs.FS) System { return NewNone(fs) },
		func(fs *pfs.FS) System {
			return NewPrefetcher(fs, PrefetcherConfig{CacheBytes: size, SegmentSize: testSeg, Workers: 2})
		},
		func(fs *pfs.FS) System {
			return NewInMemOptimal(fs, InMemConfig{CacheBytes: size, SegmentSize: testSeg, Processes: 1})
		},
		func(fs *pfs.FS) System {
			return NewInMemNaive(fs, InMemConfig{CacheBytes: size, SegmentSize: testSeg, Processes: 2})
		},
		func(fs *pfs.FS) System {
			return NewAppCentric(fs, AppCentricConfig{CacheBytes: size, SegmentSize: testSeg})
		},
		func(fs *pfs.FS) System {
			return NewStacker(fs, StackerConfig{CacheBytes: size, SegmentSize: testSeg})
		},
		func(fs *pfs.FS) System {
			return NewKnowAc(fs, KnowAcConfig{CacheBytes: size, SegmentSize: testSeg})
		},
	} {
		fs := testFS(t, size)
		sys := mk(fs)
		h, err := sys.Open("a", "f")
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		t.Run(fmt.Sprintf("system=%s", sys.Name()), func(t *testing.T) {
			verifyIntegrity(t, fs, h, "f", size)
			verifyIntegrity(t, fs, h, "f", size) // warm pass
		})
		h.Close()
		sys.Stop()
	}
}

func TestReadViaCacheEdgeCases(t *testing.T) {
	fs := testFS(t, 10*testSeg)
	sys := NewPrefetcher(fs, PrefetcherConfig{CacheBytes: testSeg, SegmentSize: testSeg})
	defer sys.Stop()
	h, _ := sys.Open("a", "f")
	defer h.Close()
	buf := make([]byte, testSeg)
	if _, err := h.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset must error")
	}
	n, err := h.ReadAt(buf, 10*testSeg)
	if err != nil || n != 0 {
		t.Fatalf("read at EOF = %d %v", n, err)
	}
	n, err = h.ReadAt(buf, 10*testSeg-100)
	if err != nil || n != 100 {
		t.Fatalf("short read = %d %v", n, err)
	}
}

func TestStrideDetector(t *testing.T) {
	d := &strideDetector{}
	if got := d.observe(0, 4, 100); got != nil {
		t.Fatalf("first observation must predict nothing: %v", got)
	}
	d.observe(2, 4, 100)
	preds := d.observe(4, 4, 100)
	if len(preds) != 4 || preds[0] != 6 || preds[3] != 12 {
		t.Fatalf("stride-2 predictions = %v", preds)
	}
	// Pattern break resets confidence but keeps predicting the new delta
	// after it repeats.
	if got := d.observe(50, 4, 100); len(got) == 0 {
		t.Log("single observation of new delta may or may not predict; tolerated")
	}
	preds = d.observe(51, 4, 100)
	if len(preds) == 0 || preds[0] != 52 {
		t.Fatalf("sequential predictions after break = %v", preds)
	}
	// Predictions are clipped at file end.
	preds = d.observe(98, 4, 100)
	for _, p := range preds {
		if p >= 100 {
			t.Fatalf("prediction beyond EOF: %v", preds)
		}
	}
}
