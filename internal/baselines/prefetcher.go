package baselines

import (
	"fmt"
	"sync"

	"hfetch/internal/core/seg"
	"hfetch/internal/devsim"
	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// PrefetcherConfig configures the single-tier readahead prefetchers.
type PrefetcherConfig struct {
	// CacheBytes is the RAM prefetching cache capacity.
	CacheBytes int64
	// CacheDevice models the cache medium (nil = free RAM).
	CacheDevice *devsim.Device
	// SegmentSize is the prefetch grain (default 1 MiB).
	SegmentSize int64
	// Depth is the readahead distance in segments (default 4).
	Depth int
	// Workers is the number of fetch threads: 1 = the paper's serial
	// prefetcher, >1 = the parallel prefetcher (default 1).
	Workers int
	// QueueLen bounds the readahead queue (default 1024).
	QueueLen int
	// Eviction selects the cache replacement policy (default LRU; LRFU
	// weighs frequency as well, the Lee et al. policy the paper's
	// segment scoring draws on).
	Eviction EvictionPolicy
	// Lambda is the LRFU decay rate per second (default 0.5).
	Lambda float64
}

// Prefetcher is the classic single-tier readahead prefetcher: on every
// access, the next Depth segments are queued; Workers threads fetch them
// from the PFS into an LRU RAM cache. With Workers == 1 it is the
// paper's "serial" comparator, with Workers > 1 the "parallel" one.
type Prefetcher struct {
	name  string
	fs    *pfs.FS
	segr  *seg.Segmenter
	cache *lruCache
	stats *metrics.IOStats

	queue chan fetchReq
	depth int
	wg    sync.WaitGroup
	once  sync.Once

	mu    sync.Mutex
	sizes map[string]int64 // file -> size, for readahead clipping
}

type fetchReq struct {
	id   seg.ID
	size int64
}

// NewPrefetcher builds and starts the prefetcher.
func NewPrefetcher(fs *pfs.FS, cfg PrefetcherConfig) *Prefetcher {
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = seg.DefaultSize
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	name := "serial"
	if cfg.Workers > 1 {
		name = "parallel"
	}
	p := &Prefetcher{
		name:  name,
		fs:    fs,
		segr:  seg.NewSegmenter(cfg.SegmentSize),
		cache: newCache(cfg.CacheBytes, cfg.CacheDevice, cfg.Eviction, cfg.Lambda),
		stats: metrics.NewIOStats(),
		queue: make(chan fetchReq, cfg.QueueLen),
		depth: cfg.Depth,
		sizes: make(map[string]int64),
	}
	for w := 0; w < cfg.Workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Name implements System.
func (p *Prefetcher) Name() string { return p.name }

// Stats implements System.
func (p *Prefetcher) Stats() *metrics.IOStats { return p.stats }

// Stop implements System.
func (p *Prefetcher) Stop() {
	p.once.Do(func() { close(p.queue) })
	p.wg.Wait()
}

// Cache exposes cache statistics (used, entries, evictions).
func (p *Prefetcher) Cache() (int64, int, int64) { return p.cache.stats() }

// ResidentOf counts cached segments of the named file (ablation metric).
func (p *Prefetcher) ResidentOf(file string) int { return p.cache.residentOf(file) }

func (p *Prefetcher) worker() {
	defer p.wg.Done()
	for req := range p.queue {
		if p.cache.contains(req.id) {
			continue
		}
		done, ok := p.cache.beginFetch(req.id)
		if !ok {
			continue // another worker is already fetching it
		}
		buf := make([]byte, req.size)
		n, _, err := p.fs.ReadAt(req.id.File, req.id.Index*p.segr.Size(), buf)
		if err == nil && n > 0 {
			p.cache.put(req.id, buf[:n])
		}
		done()
	}
}

// onAccess queues readahead for the segments following idx.
func (p *Prefetcher) onAccess(file string, idx, fileSize int64) {
	count := p.segr.Count(fileSize)
	for i := int64(1); i <= int64(p.depth); i++ {
		next := idx + i
		if next >= count {
			break
		}
		id := seg.ID{File: file, Index: next}
		if p.cache.contains(id) {
			continue
		}
		size := p.segr.RangeOf(id, fileSize).Len
		select {
		case p.queue <- fetchReq{id: id, size: size}:
		default: // queue saturated: drop the hint
		}
	}
}

// Open implements System.
func (p *Prefetcher) Open(app, file string) (Handle, error) {
	fi, err := p.fs.Stat(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.name, err)
	}
	p.mu.Lock()
	p.sizes[file] = fi.Size
	p.mu.Unlock()
	return &prefetchHandle{sys: p, file: file, size: fi.Size}, nil
}

type prefetchHandle struct {
	sys  *Prefetcher
	file string
	size int64
}

func (h *prefetchHandle) ReadAt(p []byte, off int64) (int, error) {
	return readViaCache(readCtx{
		file: h.file, size: h.size, segr: h.sys.segr,
		cache: h.sys.cache, fs: h.sys.fs, stats: h.sys.stats,
		onAccess: func(idx int64) { h.sys.onAccess(h.file, idx, h.size) },
	}, p, off)
}

func (h *prefetchHandle) Close() error { return nil }

// readCtx bundles what a cache-fronted segment read needs; shared by
// every single-tier baseline.
type readCtx struct {
	file     string
	size     int64
	segr     *seg.Segmenter
	cache    *lruCache
	fs       *pfs.FS
	stats    *metrics.IOStats
	onAccess func(idx int64)
	tierName string
}

// readViaCache serves [off, off+len(p)) segment by segment: cache hits
// from the LRU cache, misses from the PFS. onAccess fires once per
// covered segment after it is served.
func readViaCache(ctx readCtx, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("baselines: negative offset %d", off)
	}
	want := int64(len(p))
	if off >= ctx.size {
		return 0, nil
	}
	if off+want > ctx.size {
		want = ctx.size - off
	}
	tier := ctx.tierName
	if tier == "" {
		tier = "ram"
	}
	t := metrics.StartTimer()
	n := int64(0)
	for n < want {
		cur := off + n
		idx := ctx.segr.IndexOf(cur)
		id := seg.ID{File: ctx.file, Index: idx}
		segStart := idx * ctx.segr.Size()
		segEnd := ctx.segr.RangeOf(id, ctx.size).End()
		chunk := segEnd - cur
		if chunk > want-n {
			chunk = want - n
		}
		if chunk <= 0 {
			break
		}
		payload, ok := ctx.cache.get(id)
		if !ok && ctx.cache.waitFor(id) {
			// A prefetch of this segment was in flight: join it rather
			// than issuing a duplicate origin read.
			payload, ok = ctx.cache.get(id)
		}
		if ok && cur-segStart < int64(len(payload)) {
			copied := copy(p[n:n+chunk], payload[cur-segStart:])
			ctx.stats.Hit(tier, int64(copied))
			n += int64(copied)
		} else {
			got, _, err := ctx.fs.ReadAt(ctx.file, cur, p[n:n+chunk])
			if err != nil {
				return int(n), err
			}
			ctx.stats.Miss(int64(got))
			n += int64(got)
			if int64(got) < chunk {
				break
			}
		}
		if ctx.onAccess != nil {
			ctx.onAccess(idx)
		}
	}
	ctx.stats.ObserveRead(t.Elapsed())
	return int(n), nil
}
