package baselines

import (
	"fmt"

	"hfetch/internal/metrics"
	"hfetch/internal/pfs"
)

// None is the no-prefetching baseline: every read is a PFS read.
type None struct {
	fs    *pfs.FS
	stats *metrics.IOStats
}

// NewNone creates the baseline over the shared PFS.
func NewNone(fs *pfs.FS) *None {
	return &None{fs: fs, stats: metrics.NewIOStats()}
}

// Name implements System.
func (n *None) Name() string { return "none" }

// Stats implements System.
func (n *None) Stats() *metrics.IOStats { return n.stats }

// Stop implements System.
func (n *None) Stop() {}

// Open implements System.
func (n *None) Open(app, file string) (Handle, error) {
	if _, err := n.fs.Stat(file); err != nil {
		return nil, fmt.Errorf("none: %w", err)
	}
	return &noneHandle{sys: n, file: file}, nil
}

type noneHandle struct {
	sys  *None
	file string
}

func (h *noneHandle) ReadAt(p []byte, off int64) (int, error) {
	t := metrics.StartTimer()
	got, _, err := h.sys.fs.ReadAt(h.file, off, p)
	if err != nil {
		return 0, err
	}
	h.sys.stats.Miss(int64(got))
	h.sys.stats.ObserveRead(t.Elapsed())
	return got, nil
}

func (h *noneHandle) Close() error { return nil }
