package events

import (
	"sync"
	"testing"
	"time"
)

func TestRegistryFirstAndLast(t *testing.T) {
	r := NewRegistry()
	if !r.AddWatch("f") {
		t.Fatal("first AddWatch must report creation")
	}
	if r.AddWatch("f") {
		t.Fatal("second AddWatch must not report creation")
	}
	if !r.Watched("f") {
		t.Fatal("file should be watched")
	}
	if r.RemoveWatch("f") {
		t.Fatal("first RemoveWatch of two refs must not remove")
	}
	if !r.RemoveWatch("f") {
		t.Fatal("last RemoveWatch must remove")
	}
	if r.Watched("f") {
		t.Fatal("file should no longer be watched")
	}
}

func TestRegistryRemoveUnknown(t *testing.T) {
	r := NewRegistry()
	if r.RemoveWatch("nope") {
		t.Fatal("removing unknown watch must report false")
	}
}

func TestRegistryLen(t *testing.T) {
	r := NewRegistry()
	r.AddWatch("a")
	r.AddWatch("b")
	r.AddWatch("a")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.AddWatch("f")
		}()
	}
	wg.Wait()
	for i := 0; i < 49; i++ {
		if r.RemoveWatch("f") {
			t.Fatal("premature removal")
		}
	}
	if !r.RemoveWatch("f") {
		t.Fatal("final removal must succeed")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(8, false)
	for i := 0; i < 5; i++ {
		q.Post(Event{Offset: int64(i)})
	}
	for i := 0; i < 5; i++ {
		ev, ok := q.Take()
		if !ok || ev.Offset != int64(i) {
			t.Fatalf("Take %d = %+v %v", i, ev, ok)
		}
	}
}

func TestQueueWrapsAround(t *testing.T) {
	q := NewQueue(4, false)
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			q.Post(Event{Offset: int64(round*4 + i)})
		}
		for i := 0; i < 4; i++ {
			ev, _ := q.Take()
			if ev.Offset != int64(round*4+i) {
				t.Fatalf("round %d idx %d: got %d", round, i, ev.Offset)
			}
		}
	}
}

func TestQueueBlockingBackpressure(t *testing.T) {
	q := NewQueue(1, false)
	q.Post(Event{Offset: 1})
	done := make(chan struct{})
	go func() {
		q.Post(Event{Offset: 2}) // blocks until a Take
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Post should have blocked on full queue")
	case <-time.After(20 * time.Millisecond):
	}
	q.Take()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Post did not unblock")
	}
}

func TestQueueDropPolicy(t *testing.T) {
	q := NewQueue(2, true)
	if !q.Post(Event{}) || !q.Post(Event{}) {
		t.Fatal("first two posts must succeed")
	}
	if q.Post(Event{}) {
		t.Fatal("third post must be dropped")
	}
	posted, dropped := q.Stats()
	if posted != 2 || dropped != 1 {
		t.Fatalf("stats = %d posted %d dropped, want 2/1", posted, dropped)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := NewQueue(4, false)
	q.Post(Event{Offset: 7})
	q.Close()
	if ok := q.Post(Event{}); ok {
		t.Fatal("post after close must fail")
	}
	ev, ok := q.Take()
	if !ok || ev.Offset != 7 {
		t.Fatal("pending event must still drain after close")
	}
	if _, ok := q.Take(); ok {
		t.Fatal("drained closed queue must report !ok")
	}
}

func TestQueueCloseUnblocksConsumers(t *testing.T) {
	q := NewQueue(4, false)
	done := make(chan bool)
	go func() {
		_, ok := q.Take()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Take on closed empty queue must report !ok")
		}
	case <-time.After(time.Second):
		t.Fatal("Take did not unblock on close")
	}
}

func TestQueueTakeBatch(t *testing.T) {
	q := NewQueue(16, false)
	for i := 0; i < 10; i++ {
		q.Post(Event{Offset: int64(i)})
	}
	buf := make([]Event, 4)
	n, ok := q.TakeBatch(buf)
	if !ok || n != 4 {
		t.Fatalf("TakeBatch = %d %v, want 4 true", n, ok)
	}
	for i := 0; i < 4; i++ {
		if buf[i].Offset != int64(i) {
			t.Fatalf("batch order wrong at %d: %d", i, buf[i].Offset)
		}
	}
	if q.Len() != 6 {
		t.Fatalf("Len after batch = %d, want 6", q.Len())
	}
}

func TestQueueTakeBatchEmptyDst(t *testing.T) {
	q := NewQueue(4, false)
	n, ok := q.TakeBatch(nil)
	if n != 0 || !ok {
		t.Fatalf("TakeBatch(nil) = %d %v, want 0 true", n, ok)
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue(32, false)
	const producers, perProducer = 8, 500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Post(Event{Op: OpRead})
			}
		}()
	}
	var consumed int64
	var cwg sync.WaitGroup
	var mu sync.Mutex
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			local := int64(0)
			for {
				if _, ok := q.Take(); !ok {
					break
				}
				local++
			}
			mu.Lock()
			consumed += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if consumed != producers*perProducer {
		t.Fatalf("consumed %d, want %d", consumed, producers*perProducer)
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpCapacity.String() != "capacity" {
		t.Fatal("Op.String mismatch")
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op must still stringify")
	}
}

func TestDirectoryWatches(t *testing.T) {
	r := NewRegistry()
	if !r.AddDirWatch("data") {
		t.Fatal("first AddDirWatch must create")
	}
	if !r.Covered("data/sub/file.bin") {
		t.Fatal("nested file must be covered by the directory watch")
	}
	if !r.Covered("data/x") {
		t.Fatal("direct child must be covered")
	}
	if r.Covered("database/x") {
		t.Fatal("sibling prefix must NOT be covered (data != database)")
	}
	if r.Covered("data") {
		t.Fatal("the directory name itself is not a watched file")
	}
	r.AddWatch("plain")
	if !r.Covered("plain") {
		t.Fatal("file watches still work through Covered")
	}
	if !r.RemoveDirWatch("data") {
		t.Fatal("RemoveDirWatch must remove")
	}
	if r.Covered("data/x") {
		t.Fatal("coverage must end with the watch")
	}
}
