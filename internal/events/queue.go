package events

import (
	"sync"
	"sync/atomic"
)

// Queue is the in-memory event queue hosted by the HFetch server's
// hardware monitor. Each tier (and the client I/O layer) pushes events
// into it; a pool of daemon threads consumes it.
//
// The queue is a bounded MPMC ring guarded by a mutex with condition
// variables. When full, the posting policy decides between blocking the
// producer (default, provides backpressure like a saturated kernel queue)
// and dropping the event (counted, mirroring inotify's IN_Q_OVERFLOW).
type Queue struct {
	mu      sync.Mutex
	notFull *sync.Cond
	notEmpt *sync.Cond
	buf     []Event
	head    int
	n       int
	closed  bool
	drop    bool

	posted  atomic.Int64
	dropped atomic.Int64
}

// NewQueue creates a queue with the given capacity (minimum 1). If drop
// is true, Post discards events when the queue is full instead of
// blocking.
func NewQueue(capacity int, drop bool) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{buf: make([]Event, capacity), drop: drop}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpt = sync.NewCond(&q.mu)
	return q
}

// Post enqueues an event. It reports false when the event was dropped
// (drop policy and queue full) or the queue is closed.
func (q *Queue) Post(ev Event) bool {
	q.mu.Lock()
	for q.n == len(q.buf) && !q.closed && !q.drop {
		q.notFull.Wait()
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) { // drop policy
		q.mu.Unlock()
		q.dropped.Add(1)
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	q.notEmpt.Signal()
	q.mu.Unlock()
	q.posted.Add(1)
	return true
}

// Take dequeues one event, blocking until one is available or the queue
// is closed and drained. ok is false only on close-and-drained.
func (q *Queue) Take() (ev Event, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpt.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return Event{}, false
	}
	ev = q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	q.mu.Unlock()
	return ev, true
}

// TakeBatch dequeues up to max events in one lock acquisition, blocking
// until at least one is available or the queue is closed and drained.
func (q *Queue) TakeBatch(dst []Event) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpt.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	for n < len(dst) && q.n > 0 {
		dst[n] = q.buf[q.head]
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		n++
	}
	q.notFull.Broadcast()
	q.mu.Unlock()
	return n, true
}

// Close marks the queue closed. Pending events can still be drained;
// blocked producers and consumers are released.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpt.Broadcast()
	q.mu.Unlock()
}

// Len returns the number of queued events.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Stats returns the cumulative posted and dropped counts.
func (q *Queue) Stats() (posted, dropped int64) {
	return q.posted.Load(), q.dropped.Load()
}
