package events

import (
	"sync"
	"sync/atomic"
	"time"

	"hfetch/internal/telemetry"
)

// Queue is the in-memory event queue hosted by the HFetch server's
// hardware monitor. Each tier (and the client I/O layer) pushes events
// into it; a pool of daemon threads consumes it.
//
// The queue is a bounded MPMC ring guarded by a mutex with condition
// variables. When full, the posting policy decides between blocking the
// producer (default, provides backpressure like a saturated kernel queue)
// and dropping the event (counted, mirroring inotify's IN_Q_OVERFLOW).
type Queue struct {
	mu      sync.Mutex
	notFull *sync.Cond
	notEmpt *sync.Cond
	buf     []Event
	head    int
	n       int
	closed  bool
	drop    bool

	// exactWake makes TakeBatch wake min(freed slots, blocked producers)
	// instead of broadcasting to all of them. A shard of a ShardedQueue
	// has one drainer and potentially thousands of blocked producers;
	// broadcasting on every drained batch wakes the whole herd only for
	// most of it to find the ring full again and go back to sleep.
	exactWake bool
	// prodWait counts producers blocked in Post (guarded by mu); it
	// bounds the exact-wake signal count.
	prodWait int

	posted  atomic.Int64
	dropped atomic.Int64

	// tele, when set, times each event's stay in the queue (the
	// queue_wait pipeline stage); times holds per-slot enqueue stamps.
	tele  *telemetry.Registry
	times []int64
}

// NewQueue creates a queue with the given capacity (minimum 1). If drop
// is true, Post discards events when the queue is full instead of
// blocking.
func NewQueue(capacity int, drop bool) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{buf: make([]Event, capacity), drop: drop}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpt = sync.NewCond(&q.mu)
	return q
}

// newShardQueue is NewQueue with exact-wake draining, used for the rings
// of a ShardedQueue (single drainer per ring).
func newShardQueue(capacity int, drop bool) *Queue {
	q := NewQueue(capacity, drop)
	q.exactWake = true
	return q
}

// SetTelemetry attaches a registry: the queue exports its depth and
// posted/dropped totals and times sampled events' wait between Post and
// dequeue as the queue_wait pipeline stage (see Registry.TimeSample).
// Call before Start/Post traffic; a nil registry is ignored.
func (q *Queue) SetTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	q.AttachTelemetry(reg)
	reg.GaugeFunc("hfetch_event_queue_depth", "events currently queued", func() int64 { return int64(q.Len()) })
	reg.CounterFunc("hfetch_events_posted_total", "events accepted into the queue", q.posted.Load)
	reg.CounterFunc("hfetch_events_dropped_total", "events dropped on overflow (IN_Q_OVERFLOW)", q.dropped.Load)
}

// AttachTelemetry enables queue-wait span timing without registering any
// metric families. ShardedQueue uses it for its per-shard rings, which
// share the registry-level metric names and must not re-register them.
func (q *Queue) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	q.mu.Lock()
	q.tele = reg
	if q.times == nil {
		q.times = make([]int64, len(q.buf))
	}
	q.mu.Unlock()
}

// Post enqueues an event. It reports false when the event was dropped
// (drop policy and queue full) or the queue is closed.
func (q *Queue) Post(ev Event) bool {
	return q.postRef(&ev)
}

// postRef is Post without the value copy at the call boundary; the
// sharded router uses it so an event is copied once into the ring, not
// once per call layer. ev is only read, never retained.
//
//hfetch:hotpath
func (q *Queue) postRef(ev *Event) bool {
	q.mu.Lock()
	for q.n == len(q.buf) && !q.closed && !q.drop {
		q.prodWait++
		q.notFull.Wait()
		q.prodWait--
	}
	if q.closed {
		q.mu.Unlock()
		return false
	}
	if q.n == len(q.buf) { // drop policy
		q.mu.Unlock()
		q.dropped.Add(1)
		return false
	}
	slot := (q.head + q.n) % len(q.buf)
	q.buf[slot] = *ev
	if q.times != nil {
		var stamp int64
		if q.tele.TimeSample() {
			stamp = time.Now().UnixNano()
		}
		q.times[slot] = stamp
	}
	q.n++
	q.notEmpt.Signal()
	q.mu.Unlock()
	q.posted.Add(1)
	return true
}

// takeStamp clears and returns the enqueue stamp of slot; called with
// q.mu held. Zero means telemetry is off or the slot predates it.
func (q *Queue) takeStamp(slot int) int64 {
	if q.times == nil {
		return 0
	}
	enq := q.times[slot]
	q.times[slot] = 0
	return enq
}

// spanWait records the queue_wait span outside the queue lock.
//
//hfetch:hotpath
func (q *Queue) spanWait(ev Event, enq int64) {
	if enq == 0 {
		return
	}
	start := time.Unix(0, enq)
	//lint:allow hotpath enq is nonzero only for posts that passed TimeSample; Since completes that sampled span
	q.tele.Span(telemetry.StageQueueWait, ev.File, -1, ev.Tier, start, time.Since(start))
}

// Take dequeues one event, blocking until one is available or the queue
// is closed and drained. ok is false only on close-and-drained.
//
//hfetch:hotpath
func (q *Queue) Take() (ev Event, ok bool) {
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpt.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return Event{}, false
	}
	ev = q.buf[q.head]
	enq := q.takeStamp(q.head)
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	q.mu.Unlock()
	q.spanWait(ev, enq)
	return ev, true
}

// TakeBatch dequeues up to max events in one lock acquisition, blocking
// until at least one is available or the queue is closed and drained.
//
//hfetch:hotpath
func (q *Queue) TakeBatch(dst []Event) (n int, ok bool) {
	if len(dst) == 0 {
		return 0, true
	}
	q.mu.Lock()
	for q.n == 0 && !q.closed {
		q.notEmpt.Wait()
	}
	if q.n == 0 {
		q.mu.Unlock()
		return 0, false
	}
	var stamps []int64
	if q.times != nil {
		stamps = make([]int64, 0, len(dst))
	}
	for n < len(dst) && q.n > 0 {
		dst[n] = q.buf[q.head]
		if stamps != nil {
			stamps = append(stamps, q.takeStamp(q.head))
		}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
		n++
	}
	if q.exactWake {
		// Wake min(freed slots, blocked producers): each admitted producer
		// frees nothing, so no wake chain is needed beyond n. When every
		// waiter gets a slot, one Broadcast beats n runtime calls.
		if wake := q.prodWait; wake > 0 {
			if wake <= n {
				q.notFull.Broadcast()
			} else {
				for i := 0; i < n; i++ {
					q.notFull.Signal()
				}
			}
		}
	} else {
		q.notFull.Broadcast()
	}
	q.mu.Unlock()
	for i, enq := range stamps {
		q.spanWait(dst[i], enq)
	}
	return n, true
}

// Close marks the queue closed. Pending events can still be drained;
// blocked producers and consumers are released.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpt.Broadcast()
	q.mu.Unlock()
}

// Len returns the number of queued events.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Stats returns the cumulative posted and dropped counts.
func (q *Queue) Stats() (posted, dropped int64) {
	return q.posted.Load(), q.dropped.Load()
}
